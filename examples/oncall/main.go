// Oncall: a sixth scenario exercising the extensions on top of the
// taxonomy — the temporal query language, valid-time join, timeline
// aggregation, and backlog persistence. An on-call rota is a contiguous
// interval relation (every hour has an owner); incidents are a retroactive
// event relation (logged after they happen). Joining them answers "who
// owned each incident", the timeline checks rota coverage, and the rota
// round-trips through the persistent backlog format.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	ts "repro"
)

func main() {
	weekStart := ts.Date(1992, 3, 2) // a Monday
	day := int64(86400)

	// --- The rota: per-relation contiguous day shifts. ---
	rota := ts.NewRelation(ts.Schema{
		Name:        "rota",
		ValidTime:   ts.IntervalStamp,
		Granularity: ts.Second,
		Invariant:   []ts.Column{{Name: "engineer", Type: ts.KindString}},
	}, ts.NewLogicalClock(weekStart.Add(-7*day), 3600))
	dayReg, err := ts.StrictVTIntervalRegularSpec(ts.Days(1))
	if err != nil {
		log.Fatal(err)
	}
	ts.Declare(rota, ts.PerRelation,
		ts.InterIntervalConstraint{Spec: ts.ContiguousSpec()},
		ts.IntervalRegularConstraint{Spec: dayReg},
	)
	for i, eng := range []string{"ann", "bob", "cod", "ann", "bob", "cod", "ann"} {
		if _, err := rota.Insert(ts.Insertion{
			VT:        ts.SpanOf(weekStart.Add(int64(i)*day), weekStart.Add(int64(i+1)*day)),
			Invariant: []ts.Value{ts.String(eng)},
		}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("rota: %d contiguous day shifts\n", rota.Len())

	// --- Incidents: retroactive events logged after they fire. ---
	incidents := ts.NewRelation(ts.Schema{
		Name:        "incidents",
		ValidTime:   ts.EventStamp,
		Granularity: ts.Second,
		Invariant:   []ts.Column{{Name: "id", Type: ts.KindString}},
		Varying:     []ts.Column{{Name: "sev", Type: ts.KindInt}},
	}, ts.NewLogicalClock(weekStart, 3600))
	ts.Declare(incidents, ts.PerRelation, ts.EventConstraint{Spec: ts.RetroactiveSpec()})
	for i, inc := range []struct {
		hoursIn int64
		sev     int64
	}{{5, 2}, {30, 1}, {31, 3}, {77, 1}, {130, 2}} {
		incidents.Clock().(*ts.LogicalClock).AdvanceTo(weekStart.Add(inc.hoursIn*3600 + 600))
		if _, err := incidents.Insert(ts.Insertion{
			VT:        ts.EventAt(weekStart.Add(inc.hoursIn * 3600)),
			Invariant: []ts.Value{ts.String(fmt.Sprintf("INC-%d", i+1))},
			Varying:   []ts.Value{ts.Int(inc.sev)},
		}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("incidents: %d logged (all retroactive)\n\n", incidents.Len())

	// --- Valid-time join: who owned each incident? ---
	pairs := ts.TemporalJoin(rota.Current(), incidents.Current(), nil)
	fmt.Println("incident ownership (valid-time join):")
	for _, p := range pairs {
		eng, _ := p.Left.Invariant[0].Str()
		id, _ := p.Right.Invariant[0].Str()
		sev, _ := p.Right.Varying[0].IntVal()
		fmt.Printf("  %s (sev %d) at %v → %s\n", id, sev, p.Right.VT, eng)
	}

	// --- Timeline: is the week fully covered, exactly once? ---
	steps := ts.Timeline(rota.Current())
	fmt.Println("\nrota coverage profile:")
	for _, st := range steps {
		fmt.Printf("  %v: %d engineer(s) on call\n", st.Span, st.Count)
	}
	cov := ts.CoverageSet(rota.Current())
	if gaps := cov.Complement(weekStart, weekStart.Add(7*day)); gaps.Empty() {
		fmt.Println("no coverage gaps")
	} else {
		fmt.Printf("COVERAGE GAPS: %v\n", gaps)
	}
	if peak, span := ts.MaxConcurrent(rota.Current()); peak > 1 {
		fmt.Printf("double coverage at %v\n", span)
	}

	// --- Coalescing: each engineer's total on-call time as maximal spans. ---
	fmt.Println("\ncoalesced on-call spans per engineer:")
	byEngineer := func(e *ts.Element) string {
		name, _ := e.Invariant[0].Str()
		return name
	}
	for _, fact := range ts.Coalesce(rota.Current(), byEngineer) {
		name, _ := fact.Representative.Invariant[0].Str()
		fmt.Printf("  %s: %v (%d day(s) total)\n", name, fact.When, fact.When.Duration()/day)
	}

	// --- The query language over both relations. ---
	lookup := func(name string) (*ts.Relation, bool) {
		switch name {
		case "rota":
			return rota, true
		case "incidents":
			return incidents, true
		}
		return nil, false
	}
	fmt.Println("\nsevere incidents on Tuesday (temporal SELECT):")
	res, err := ts.RunQuery(
		"select id, sev from incidents when valid during ['1992-03-03', '1992-03-04') where sev <= 2", lookup)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Format())

	fmt.Println("\nwho is on call Wednesday (Allen: the shift contains the day's first hour)?")
	res, err = ts.RunQuery(
		"select engineer from rota when started-by ['1992-03-04', '1992-03-04 01:00:00')", lookup)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Format())

	// --- Persistence: the rota round-trips through the backlog format. ---
	dir, err := os.MkdirTemp("", "oncall")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "rota.tsbl")
	if err := ts.SaveBacklog(path, rota); err != nil {
		log.Fatal(err)
	}
	restored, err := ts.LoadBacklog(path, ts.NewLogicalClock(weekStart, 3600))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npersisted and restored the rota: %d element(s), classification preserved: %v\n",
		restored.Len(),
		ts.Classify(restored.Versions(), ts.TTInsertion, ts.Second).Has(ts.GloballyContiguous))
}
