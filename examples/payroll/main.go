// Payroll: the paper's direct-deposit example (§3.1). The company wants
// checks valid on the first of the month but sends the tape as late as
// possible — at most one week before — while the bank needs it at least
// three days in advance: an *early strongly predictively bounded* relation.
// The second half shows the *determined* variant: deposits that become
// valid at the next 8:00 a.m. (mapping function m3), so the valid time is
// computable rather than stored.
package main

import (
	"fmt"
	"log"

	ts "repro"
)

func main() {
	schema := ts.Schema{
		Name:        "deposits",
		ValidTime:   ts.EventStamp,
		Granularity: ts.Second,
		Invariant:   []ts.Column{{Name: "account", Type: ts.KindString}},
		Varying:     []ts.Column{{Name: "amount", Type: ts.KindFloat}},
	}
	// The clock advances one day per transaction, starting Jan 20 1992.
	r := ts.NewRelation(schema, ts.NewLogicalClock(ts.Date(1992, 1, 20), 86400))

	spec, err := ts.EarlyStronglyPredictivelyBoundedSpec(ts.Days(3), ts.Days(7))
	if err != nil {
		log.Fatal(err)
	}
	ts.Declare(r, ts.PerRelation, ts.EventConstraint{Spec: spec})
	fmt.Printf("declared: %v\n\n", spec)

	payday := ts.Date(1992, 2, 1)
	pay := func(account string, amount float64) {
		e, err := r.Insert(ts.Insertion{
			VT:        ts.EventAt(payday),
			Invariant: []ts.Value{ts.String(account)},
			Varying:   []ts.Value{ts.Float(amount)},
		})
		if err != nil {
			fmt.Printf("rejected: %v\n", err)
			return
		}
		fmt.Printf("scheduled %s: $%.2f valid %v (recorded %v, lead %d days)\n",
			account, amount, e.VT, e.TTStart, payday.Sub(e.TTStart)/86400)
	}

	// tt advances one day per transaction starting Jan 21.
	pay("acct-001", 2500) // Jan 21: 11 days early — too early? No: 11 > 7 — rejected.
	pay("acct-002", 3100) // Jan 22: 10 days early — rejected.
	// Advance the clock to the tape-cutting window.
	r.Clock().(*ts.LogicalClock).AdvanceTo(ts.Date(1992, 1, 26))
	pay("acct-003", 2750) // Jan 27: 5 days early — accepted.
	pay("acct-004", 1980) // Jan 28: 4 days early — accepted.
	pay("acct-005", 2200) // Jan 29: 3 days early — accepted (boundary).
	pay("acct-006", 2600) // Jan 30: 2 days early — rejected (bank needs 3).

	rep := ts.Classify(r.Versions(), ts.TTInsertion, ts.Second)
	fmt.Println("\ninferred most-specific classes:")
	for _, f := range rep.MostSpecific() {
		fmt.Printf("  %v\n", f)
	}

	// ---- Determined variant: valid from the next 8:00 a.m. ----
	fmt.Println("\n--- determined deposits (valid from the next 8:00 a.m., mapping m3) ---")
	atm := ts.NewRelation(ts.Schema{
		Name:        "atm_deposits",
		ValidTime:   ts.EventStamp,
		Granularity: ts.Second,
		Varying:     []ts.Column{{Name: "amount", Type: ts.KindFloat}},
	}, ts.NewLogicalClock(ts.DateTime(1992, 1, 15, 14, 30, 0), 3600))
	ts.Declare(atm, ts.PerRelation, ts.DeterminedConstraint{
		Spec: ts.DeterminedSpec{M: ts.M3(), Base: ts.PredictiveSpec()},
	})

	deposit := func(vt ts.Chronon, amount float64) {
		e, err := atm.Insert(ts.Insertion{
			VT:      ts.EventAt(vt),
			Varying: []ts.Value{ts.Float(amount)},
		})
		if err != nil {
			fmt.Printf("rejected: %v\n", err)
			return
		}
		fmt.Printf("deposit $%.2f at %v becomes available %v\n", amount, e.TTStart, e.VT)
	}
	// tt = Jan 15 15:30 ⇒ the mapping demands vt = Jan 16 08:00.
	deposit(ts.DateTime(1992, 1, 16, 8, 0, 0), 120) // matches m3 — accepted
	deposit(ts.DateTime(1992, 1, 16, 9, 0, 0), 80)  // wrong valid time — rejected

	// The valid times are fully determined, so they need not be stored at
	// all; Determine verifies the mapping against the extension.
	if err := ts.Determine(ts.M3(), atm.Versions(), ts.TTInsertion, ts.VTStart); err != nil {
		log.Fatalf("relation is not m3-determined: %v", err)
	}
	fmt.Println("extension verified m3-determined: valid time is derivable, not stored")
}
