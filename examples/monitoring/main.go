// Monitoring: the paper's chemical-plant example (§1, §3.1). Temperature
// and pressure are sampled periodically and arrive after a transmission
// delay that always exceeds 30 seconds — a *delayed retroactive* relation,
// in fact *delayed strongly retroactively bounded* once the maximum delay
// is known, and *globally sequential* because samples never overtake each
// other. The example declares all of that, simulates a day of production,
// and shows how the declarations pay off at query time.
package main

import (
	"fmt"
	"log"
	"math/rand"

	ts "repro"
)

func main() {
	schema := ts.Schema{
		Name:        "plant",
		ValidTime:   ts.EventStamp,
		Granularity: ts.Second,
		Invariant:   []ts.Column{{Name: "probe", Type: ts.KindString}},
		Varying: []ts.Column{
			{Name: "celsius", Type: ts.KindFloat},
			{Name: "bar", Type: ts.KindFloat},
		},
	}
	start := ts.DateTime(1992, 2, 3, 6, 0, 0)
	r := ts.NewRelation(schema, ts.NewLogicalClock(start, 360))

	minDelay, maxDelay := ts.Seconds(30), ts.Seconds(300)
	bounded, err := ts.DelayedStronglyRetroactivelyBoundedSpec(minDelay, maxDelay)
	if err != nil {
		log.Fatal(err)
	}
	ts.Declare(r, ts.PerRelation,
		ts.EventConstraint{Spec: bounded},
		ts.InterEventConstraint{Spec: ts.SequentialEventsSpec()},
	)
	fmt.Printf("declared: %v + sequential\n\n", bounded)

	// A day of six-minute samples, each arriving 31-300 s late.
	rng := rand.New(rand.NewSource(1992))
	probe := r.NewObject()
	sampleTime := start
	for i := 0; i < 240; i++ {
		sampleTime = sampleTime.Add(360)
		delay := 31 + rng.Int63n(269)
		if _, err := r.Insert(ts.Insertion{
			Object:    probe,
			VT:        ts.EventAt(sampleTime.Add(-delay)),
			Invariant: []ts.Value{ts.String("T-101")},
			Varying:   []ts.Value{ts.Float(80 + rng.Float64()*5), ts.Float(2 + rng.Float64())},
		}); err != nil {
			log.Fatalf("sample %d: %v", i, err)
		}
	}
	fmt.Printf("stored %d samples\n", r.Len())

	// A faulty probe reporting instantly (delay 0) is caught.
	if _, err := r.Insert(ts.Insertion{
		Object:    probe,
		VT:        ts.EventAt(r.Clock().Now().Add(360)),
		Invariant: []ts.Value{ts.String("T-101")},
		Varying:   []ts.Value{ts.Float(85), ts.Float(2.5)},
	}); err != nil {
		fmt.Printf("\nfaulty probe rejected:\n  %v\n", err)
	}

	// Classification recovers the declared semantics (and more) from the
	// data alone, synthesizing the tightest observed bounds.
	rep := ts.Classify(r.Versions(), ts.TTInsertion, ts.Second)
	fmt.Println("\ninferred most-specific classes (with synthesized bounds):")
	for _, f := range rep.MostSpecific() {
		fmt.Printf("  %v\n", f)
	}

	// Sequentiality means the arrival log doubles as a valid-time index:
	// historical queries binary-search instead of scanning.
	en, advice, err := ts.EngineForRelation(r, rep.Classes())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nadvised store: %v\n", advice.Store)
	for _, reason := range advice.Reasons {
		fmt.Printf("  - %s\n", reason)
	}
	q := start.Add(120 * 360)
	res := en.VTRange(q, q.Add(3600))
	fmt.Printf("\nreadings valid in the hour after %v: %d, plan %q, touched %d of %d\n",
		q, len(res.Elements), res.Plan, res.Touched, r.Len())

	// The declared *bound* yields a second strategy that needs no ordering
	// at all: delays in [30 s, 300 s] mean a reading valid at q was stored
	// with tt ∈ [q+30, q+300], a window the plain arrival log
	// binary-searches.
	ttlog := ts.NewTTLogStore()
	for _, e := range r.Versions() {
		if err := ttlog.Insert(e); err != nil {
			log.Fatal(err)
		}
	}
	pd := ts.NewQueryEngine(ttlog, nil)
	if err := ts.EnableBoundedPushdown(pd, r, bounded); err != nil {
		log.Fatal(err)
	}
	sample := r.Versions()[120].VT.Start()
	res = pd.Timeslice(sample)
	fmt.Printf("bounded pushdown at %v: %d reading(s), plan %q, touched %d of %d\n",
		sample, len(res.Elements), res.Plan, res.Touched, r.Len())
}
