// Quickstart: create a temporal relation, declare a temporal
// specialization on it, watch a violating transaction get rejected,
// classify the extension, and run the three temporal query kinds.
package main

import (
	"fmt"
	"log"

	ts "repro"
)

func main() {
	// A relation of sensor readings: event-stamped at second granularity,
	// one time-invariant key, one time-varying value.
	schema := ts.Schema{
		Name:        "readings",
		ValidTime:   ts.EventStamp,
		Granularity: ts.Second,
		Invariant:   []ts.Column{{Name: "sensor", Type: ts.KindString}},
		Varying:     []ts.Column{{Name: "celsius", Type: ts.KindFloat}},
	}
	// Transaction times come from the system; a logical clock advancing
	// 60 s per transaction keeps this example deterministic.
	r := ts.NewRelation(schema, ts.NewLogicalClock(ts.Date(1992, 2, 3), 60))

	// Declare the relation retroactive: readings must have occurred before
	// they are stored (vt ≤ tt). The engine enforces this on every insert.
	ts.Declare(r, ts.PerRelation, ts.EventConstraint{Spec: ts.RetroactiveSpec()})

	base := ts.Date(1992, 2, 3)
	insert := func(vt ts.Chronon, temp float64) {
		e, err := r.Insert(ts.Insertion{
			VT:        ts.EventAt(vt),
			Invariant: []ts.Value{ts.String("reactor-1")},
			Varying:   []ts.Value{ts.Float(temp)},
		})
		if err != nil {
			fmt.Printf("rejected: %v\n", err)
			return
		}
		fmt.Printf("stored %v: valid %v, recorded %v\n", e.ES, e.VT, e.TTStart)
	}

	insert(base.Add(30), 21.5)   // tt = base+60: 30 s late — fine
	insert(base.Add(100), 22.0)  // tt = base+120: 20 s late — fine
	insert(base.Add(10000), 9.9) // far future — violates retroactivity

	// Classify the extension: which specializations does it satisfy?
	rep := ts.Classify(r.Versions(), ts.TTInsertion, ts.Second)
	fmt.Println("\nmost specific classes:")
	for _, f := range rep.MostSpecific() {
		fmt.Printf("  %v\n", f)
	}

	// Ask the advisor for a physical design and query through it.
	en, advice, err := ts.EngineForRelation(r, rep.Classes())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstorage advice: %v\n", advice.Store)

	res := en.Timeslice(base.Add(30))
	fmt.Printf("historical query at %v: %d element(s), plan %q\n",
		base.Add(30), len(res.Elements), res.Plan)

	roll := en.Rollback(base.Add(90))
	fmt.Printf("rollback to %v: %d element(s) were stored then\n",
		base.Add(90), len(roll.Elements))

	cur := en.Current()
	fmt.Printf("current state: %d element(s)\n", len(cur.Elements))
}
