// Assignments: the paper's interval examples (§3.3, §3.4). Employees have
// week-long project assignments: each employee's life-line is *globally
// contiguous* (successive transaction time meets — one week ends exactly
// where the next begins) and *strict valid time interval regular* (every
// assignment lasts exactly one week). The properties hold per partition
// (per employee), not across the whole relation, demonstrating the paper's
// per-surrogate basis; and the example exercises Allen's relations on the
// stored intervals.
package main

import (
	"fmt"
	"log"

	ts "repro"
)

func main() {
	schema := ts.Schema{
		Name:        "assignments",
		ValidTime:   ts.IntervalStamp,
		Granularity: ts.Second,
		Invariant:   []ts.Column{{Name: "emp", Type: ts.KindString}},
		Varying:     []ts.Column{{Name: "project", Type: ts.KindString}},
	}
	start := ts.Date(1992, 1, 5) // a Sunday
	r := ts.NewRelation(schema, ts.NewLogicalClock(start, 3600))

	weekReg, err := ts.StrictVTIntervalRegularSpec(ts.Weeks(1))
	if err != nil {
		log.Fatal(err)
	}
	// Contiguity is a property of each employee's life-line: per partition.
	ts.Declare(r, ts.PerPartition, ts.InterIntervalConstraint{Spec: ts.ContiguousSpec()})
	// Regularity holds relation-wide.
	ts.Declare(r, ts.PerRelation, ts.IntervalRegularConstraint{Spec: weekReg})

	ann, bob := r.NewObject(), r.NewObject()
	week := int64(7 * 86400)
	monday := ts.Date(1992, 1, 6)

	assign := func(who ts.Surrogate, name string, weekNo int, project string) {
		vs := monday.Add(int64(weekNo) * week)
		e, err := r.Insert(ts.Insertion{
			Object:    who,
			VT:        ts.SpanOf(vs, vs.Add(week)),
			Invariant: []ts.Value{ts.String(name)},
			Varying:   []ts.Value{ts.String(project)},
		})
		if err != nil {
			fmt.Printf("rejected: %v\n", err)
			return
		}
		fmt.Printf("%s works on %-8s %v\n", name, project, e.VT)
	}

	// Interleaved recording: Ann and Bob alternate, weeks stay contiguous
	// within each life-line.
	assign(ann, "ann", 0, "apollo")
	assign(bob, "bob", 0, "dune")
	assign(ann, "ann", 1, "apollo")
	assign(bob, "bob", 1, "cascade")
	assign(ann, "ann", 2, "borealis")
	assign(bob, "bob", 2, "cascade")

	// A gap in Ann's life-line (skipping week 3) is rejected...
	assign(ann, "ann", 4, "apollo")
	// ...as is a ten-day assignment (violates strict weekly regularity).
	if _, err := r.Insert(ts.Insertion{
		Object:    ann,
		VT:        ts.SpanOf(monday.Add(3*week), monday.Add(3*week+10*86400)),
		Invariant: []ts.Value{ts.String("ann")},
		Varying:   []ts.Value{ts.String("apollo")},
	}); err != nil {
		fmt.Printf("rejected: %v\n", err)
	}
	// The correct week 3 is accepted.
	assign(ann, "ann", 3, "apollo")

	// Per-partition classification recovers the declared structure.
	rep := ts.ClassifyPerPartition(r.Partitions(), ts.TTInsertion, ts.Second)
	fmt.Println("\nclasses holding in every life-line:")
	for _, f := range rep.Findings {
		if f.Class.Category() == ts.CategoryInterInterval {
			fmt.Printf("  %v\n", f)
		}
	}

	// Allen's relations over the stored intervals: how do Ann's and Bob's
	// current assignments relate?
	fmt.Println("\nAllen relations between Ann's and Bob's assignments:")
	annLine, bobLine := r.History(ann), r.History(bob)
	for i := 0; i < 3; i++ {
		a, _ := annLine[i].VT.Interval()
		b, _ := bobLine[i].VT.Interval()
		fmt.Printf("  week %d: ann %v bob\n", i, ts.Relate(a, b))
	}
	a0, _ := annLine[0].VT.Interval()
	b1, _ := bobLine[1].VT.Interval()
	fmt.Printf("  ann week 0 %v bob week 1\n", ts.Relate(a0, b1))

	// And the composition algebra predicts relations transitively: if
	// X = relate(a, b) and Y = relate(b, c) then relate(a, c) ∈ X;Y.
	b0, _ := bobLine[0].VT.Interval()
	a1, _ := annLine[1].VT.Interval()
	x, y := ts.Relate(a0, b0), ts.Relate(b0, a1)
	fmt.Printf("\ncomposition check: (%v ; %v) = %v, actual %v\n",
		x, y, ts.Compose(x, y), ts.Relate(a0, a1))
}
