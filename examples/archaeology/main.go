// Archaeology: the paper's globally non-increasing example (§3.2). "As
// transaction time proceeds, we enter information that is valid further
// and further into the past: an archeological relation that records
// information about progressively earlier periods uncovered as excavation
// proceeds." The example also shows how rollback and historical queries
// answer different questions — what did the database believe on a given
// dig day, versus what was true in a given century — and how a correction
// (a modification) changes one but not the other.
package main

import (
	"fmt"
	"log"

	ts "repro"
)

func main() {
	schema := ts.Schema{
		Name:        "strata",
		ValidTime:   ts.EventStamp,
		Granularity: ts.Day,
		Invariant:   []ts.Column{{Name: "stratum", Type: ts.KindString}},
		Varying:     []ts.Column{{Name: "culture", Type: ts.KindString}},
	}
	digStart := ts.Date(1991, 6, 1)
	r := ts.NewRelation(schema, ts.NewLogicalClock(digStart, 7*86400))

	// Declare the excavation order. Note the basis: the constraint governs
	// the raw *extension order*; corrections (modifications) re-insert with
	// the same valid time, which non-increasing permits.
	ts.Declare(r, ts.PerRelation, ts.InterEventConstraint{Spec: ts.NonIncreasingEventsSpec()})

	dig := func(stratum string, year int, culture string) *ts.Element {
		e, err := r.Insert(ts.Insertion{
			VT:        ts.EventAt(ts.Date(year, 1, 1)),
			Invariant: []ts.Value{ts.String(stratum)},
			Varying:   []ts.Value{ts.String(culture)},
		})
		if err != nil {
			fmt.Printf("rejected: %v\n", err)
			return nil
		}
		fmt.Printf("week of %v: stratum %s dated to year %d (%s)\n",
			e.TTStart, stratum, year, culture)
		return e
	}

	dig("I", 1450, "late-medieval")
	dig("II", 1200, "high-medieval")
	third := dig("III", 950, "viking-age")
	// Trying to log a *later* period than what is already recorded breaks
	// the excavation order:
	dig("IIb", 1300, "intrusive-fill")

	// Week 4: re-dating stratum III after lab results — a modification
	// (logical delete + insert at one transaction time).
	if _, err := r.Modify(third.ES, ts.EventAt(ts.Date(920, 1, 1)),
		[]ts.Value{ts.String("early-viking-age")}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nweek 4: stratum III re-dated to 920 (early-viking-age)")

	// Rollback: what did the database say at the end of week 2?
	asOfWeek2 := digStart.Add(2 * 7 * 86400)
	fmt.Printf("\nrollback to %v (the week-2 state):\n", asOfWeek2)
	for _, e := range r.Rollback(asOfWeek2) {
		culture, _ := e.Varying[0].Str()
		fmt.Printf("  %v: %s\n", e.VT, culture)
	}

	// Historical query: what does the *current* record say about the
	// tenth century?
	fmt.Println("\ncurrent beliefs about the tenth century (timeslice sweep):")
	for y := 900; y <= 990; y += 10 {
		for _, e := range r.Timeslice(ts.Date(y, 1, 1)) {
			culture, _ := e.Varying[0].Str()
			fmt.Printf("  year %d: %s\n", y, culture)
		}
	}

	// The bitemporal query combines both: in week 3 — after the dig but
	// before the lab re-dating — the database believed the viking stratum
	// dated to 950, not 920.
	asOfWeek3 := digStart.Add(3 * 7 * 86400)
	fmt.Println("\nas of week 3, what was believed about year 950?")
	for _, e := range r.TimesliceAsOf(ts.Date(950, 1, 1), asOfWeek3) {
		culture, _ := e.Varying[0].Str()
		fmt.Printf("  %s (stored %v)\n", culture, e.TTStart)
	}

	rep := ts.Classify(r.Versions(), ts.TTInsertion, ts.Day)
	fmt.Println("\ninferred inter-event classes:")
	for _, f := range rep.Findings {
		if f.Class.Category() == ts.CategoryInterEventOrder {
			fmt.Printf("  %v\n", f)
		}
	}
}
