// Benchmarks regenerating the paper's figures and claims (see DESIGN.md
// for the experiment index). The paper has no quantitative evaluation; the
// figures are taxonomy structures and the claims are algebraic, so the
// benchmarks measure (a) the cost of validating each specialization —
// Figures 1 and 3-5, (b) the cost of taxonomy operations — Figure 2 and
// claim C1, and (c) the query-cost separation that declared
// specializations buy — claim C6, the paper's optimization argument.
package temporalspec_test

import (
	"bytes"
	"fmt"
	"testing"

	ts "repro"
)

func mustEvent(b *testing.B, s ts.EventSpec, err error) ts.EventSpec {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// figure1Specs returns the spec matching each isolated-event class at the
// workload generator's representative bounds.
func figure1Specs(b *testing.B) map[ts.Class]ts.EventSpec {
	b.Helper()
	inner, outer := ts.WorkloadBounds()
	m := map[ts.Class]ts.EventSpec{
		ts.General:     ts.GeneralSpec(),
		ts.Retroactive: ts.RetroactiveSpec(),
		ts.Predictive:  ts.PredictiveSpec(),
	}
	var s ts.EventSpec
	var err error
	s, err = ts.DelayedRetroactiveSpec(inner)
	m[ts.DelayedRetroactive] = mustEvent(b, s, err)
	s, err = ts.EarlyPredictiveSpec(inner)
	m[ts.EarlyPredictive] = mustEvent(b, s, err)
	s, err = ts.RetroactivelyBoundedSpec(inner)
	m[ts.RetroactivelyBounded] = mustEvent(b, s, err)
	s, err = ts.StronglyRetroactivelyBoundedSpec(inner)
	m[ts.StronglyRetroactivelyBounded] = mustEvent(b, s, err)
	s, err = ts.DelayedStronglyRetroactivelyBoundedSpec(inner, outer)
	m[ts.DelayedStronglyRetroactivelyBounded] = mustEvent(b, s, err)
	s, err = ts.PredictivelyBoundedSpec(inner)
	m[ts.PredictivelyBounded] = mustEvent(b, s, err)
	s, err = ts.StronglyPredictivelyBoundedSpec(inner)
	m[ts.StronglyPredictivelyBounded] = mustEvent(b, s, err)
	s, err = ts.EarlyStronglyPredictivelyBoundedSpec(inner, outer)
	m[ts.EarlyStronglyPredictivelyBounded] = mustEvent(b, s, err)
	s, err = ts.StronglyBoundedSpec(inner, inner)
	m[ts.StronglyBounded] = mustEvent(b, s, err)
	s, err = ts.DegenerateSpec(ts.Second)
	m[ts.Degenerate] = mustEvent(b, s, err)
	return m
}

// BenchmarkFigure1 measures validation throughput for each isolated-event
// specialization over a 10k-element extension drawn from its own region.
func BenchmarkFigure1(b *testing.B) {
	specs := figure1Specs(b)
	for _, cls := range ts.EventClasses() {
		spec := specs[cls]
		stamps := ts.EventStampsWorkload(cls, ts.WorkloadConfig{Seed: 1, N: 10000})
		b.Run(cls.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := spec.CheckAll(stamps); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure2Inference measures classification of an extension into
// the event-based taxonomy (most-specific class inference over the
// Figure 2 lattice).
func BenchmarkFigure2Inference(b *testing.B) {
	r, err := ts.MonitoringWorkload(ts.WorkloadConfig{Seed: 1, N: 1000})
	if err != nil {
		b.Fatal(err)
	}
	es := r.Versions()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := ts.Classify(es, ts.TTInsertion, ts.Second)
		if len(rep.MostSpecific()) == 0 {
			b.Fatal("no findings")
		}
	}
}

// BenchmarkFigure3Orderings measures the inter-event ordering checkers.
func BenchmarkFigure3Orderings(b *testing.B) {
	stamps := ts.EventStampsWorkload(ts.Degenerate, ts.WorkloadConfig{Seed: 1, N: 10000})
	for _, spec := range []ts.InterEventSpec{
		ts.NonDecreasingEventsSpec(), ts.NonIncreasingEventsSpec(), ts.SequentialEventsSpec(),
	} {
		use := stamps
		if spec.Class() == ts.GloballyNonIncreasingEvents {
			// Reverse valid-time order: negate the offsets.
			rev := make([]ts.Stamp, len(stamps))
			for i, st := range stamps {
				rev[i] = ts.Stamp{TT: st.TT, VT: -st.VT}
			}
			use = rev
		}
		b.Run(spec.Class().String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := spec.CheckAll(use); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure4Regularity measures the regularity checkers over a
// perfectly periodic 10k-element extension.
func BenchmarkFigure4Regularity(b *testing.B) {
	stamps := ts.EventStampsWorkload(ts.Degenerate, ts.WorkloadConfig{Seed: 1, N: 10000, Step: 60})
	unit := ts.Seconds(60)
	mk := func(s ts.InterEventSpec, err error) ts.InterEventSpec {
		if err != nil {
			b.Fatal(err)
		}
		return s
	}
	specs := []ts.InterEventSpec{
		mk(ts.TTEventRegularSpec(unit)),
		mk(ts.VTEventRegularSpec(unit)),
		mk(ts.TemporalEventRegularSpec(unit)),
		mk(ts.StrictTTEventRegularSpec(unit)),
		mk(ts.StrictVTEventRegularSpec(unit)),
		mk(ts.StrictTemporalEventRegularSpec(unit)),
	}
	for _, spec := range specs {
		b.Run(spec.Class().String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := spec.CheckAll(stamps); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure5InterInterval measures the successive-transaction-time
// checkers over a 2k-week contiguous assignment history.
func BenchmarkFigure5InterInterval(b *testing.B) {
	r, err := ts.AssignmentsWorkload(ts.WorkloadConfig{Seed: 1, N: 2000}, 1)
	if err != nil {
		b.Fatal(err)
	}
	es := r.Versions()
	stamps := make([]ts.IntervalStampPair, 0, len(es))
	for _, e := range es {
		iv, _ := e.VT.Interval()
		stamps = append(stamps, ts.IntervalStampPair{TT: e.TTStart, VT: iv})
	}
	// The assignments workload is contiguous but recorded ahead of time;
	// sequentiality needs intervals recorded as they end. Build that
	// fixture separately.
	week := int64(7 * 86400)
	seqStamps := make([]ts.IntervalStampPair, 0, len(stamps))
	for w := 0; w < len(stamps); w++ {
		start := ts.Epoch.Add(int64(w) * week)
		end := start.Add(week)
		seqStamps = append(seqStamps, ts.IntervalStampPair{
			TT: end, VT: ts.MakeInterval(start, end),
		})
	}
	for _, c := range []struct {
		spec   ts.InterIntervalSpec
		stamps []ts.IntervalStampPair
	}{
		{ts.NonDecreasingIntervalsSpec(), stamps},
		{ts.SequentialIntervalsSpec(), seqStamps},
		{ts.ContiguousSpec(), stamps},
	} {
		spec, use := c.spec, c.stamps
		b.Run(spec.Class().String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := spec.CheckAll(use); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkClaimC1Enumeration measures the completeness enumeration of
// §3.1 (eleven specializations + general).
func BenchmarkClaimC1Enumeration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := ts.EnumerateRegions()
		if c.Specializations() != 11 {
			b.Fatalf("specializations = %d", c.Specializations())
		}
	}
}

// buildSequential builds an n-element sequential monitoring relation and
// returns engines over the advised (vt-ordered) and general (heap) stores.
func buildSequential(b *testing.B, n int) (spec, general *ts.QueryEngine, mid ts.Chronon) {
	b.Helper()
	r, err := ts.MonitoringWorkload(ts.WorkloadConfig{Seed: 1, N: n})
	if err != nil {
		b.Fatal(err)
	}
	specEng, advice, err := ts.EngineForRelation(r, []ts.Class{ts.GloballySequentialEvents})
	if err != nil {
		b.Fatal(err)
	}
	if advice.Store != ts.VTOrderedStore {
		b.Fatalf("advice = %v", advice.Store)
	}
	// The general engine stores the same elements in a heap with no
	// exploitable order — the honest baseline for a relation whose
	// specializations were never declared.
	heap := ts.NewHeapStore()
	for _, e := range r.Versions() {
		if err := heap.Insert(e); err != nil {
			b.Fatal(err)
		}
	}
	heapEng := ts.NewQueryEngine(heap, nil)
	es := r.Versions()
	mid = es[len(es)/2].VT.Start()
	return specEng, heapEng, mid
}

// BenchmarkClaimC6Timeslice contrasts historical (time-slice) queries on
// the advised store for a declared-sequential relation vs. the general
// organization — the measurable form of "valid time can be approximated
// with transaction time, yielding an append-only relation that can support
// historical queries". The speedup should grow roughly as n / log n.
func BenchmarkClaimC6Timeslice(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		spec, general, mid := buildSequential(b, n)
		b.Run(fmt.Sprintf("specialized/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := spec.Timeslice(mid)
				if len(res.Elements) != 1 {
					b.Fatalf("found %d", len(res.Elements))
				}
			}
		})
		b.Run(fmt.Sprintf("general/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := general.Timeslice(mid)
				if len(res.Elements) != 1 {
					b.Fatalf("found %d", len(res.Elements))
				}
			}
		})
	}
}

// BenchmarkClaimC6Rollback contrasts rollback on the tt-ordered log
// (binary-searched prefix) vs. a heap scan, for an early rollback point —
// the degenerate/rollback-relation observation of §3.1.
func BenchmarkClaimC6Rollback(b *testing.B) {
	const n = 100000
	spec, general, _ := buildSequential(b, n)
	// Roll back to 1% into the history: the prefix is small.
	early := ts.Epoch.Add(int64(n) / 100 * 360)
	b.Run("specialized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			spec.Rollback(early)
		}
	})
	b.Run("general", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			general.Rollback(early)
		}
	})
}

// BenchmarkAblationIncrementalVsBatch contrasts the incremental per-
// transaction sequentiality check (O(1) state) against re-validating the
// whole extension on every insert — the enforcement design DESIGN.md calls
// out.
func BenchmarkAblationIncrementalVsBatch(b *testing.B) {
	const n = 2000
	stamps := ts.EventStampsWorkload(ts.Degenerate, ts.WorkloadConfig{Seed: 1, N: n})
	spec := ts.SequentialEventsSpec()
	b.Run("incremental", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ck := spec.NewChecker()
			for _, st := range stamps {
				if err := ck.Check(st); err != nil {
					b.Fatal(err)
				}
				ck.Note(st)
			}
		}
	})
	b.Run("batch-recheck", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j := 1; j <= n; j += n / 50 { // sample every 2% to keep O(n²) feasible
				if err := spec.CheckAll(stamps[:j]); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkAblationPerPartition contrasts per-partition enforcement (one
// small checker per life-line) with per-relation enforcement over the same
// interleaved multi-object stream.
func BenchmarkAblationPerPartition(b *testing.B) {
	for _, employees := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("employees=%d", employees), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ts.AssignmentsWorkload(ts.WorkloadConfig{Seed: 1, N: 2048 / employees}, employees); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationBacklogVsCurrent contrasts answering a current query
// from the materialized current state against reconstructing it from the
// backlog (rollback at now).
func BenchmarkAblationBacklogVsCurrent(b *testing.B) {
	r, err := ts.MonitoringWorkload(ts.WorkloadConfig{Seed: 1, N: 20000})
	if err != nil {
		b.Fatal(err)
	}
	now := r.Clock().Now()
	b.Run("materialized-current", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if len(r.Current()) == 0 {
				b.Fatal("empty")
			}
		}
	})
	b.Run("backlog-rollback", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if len(r.Rollback(now)) == 0 {
				b.Fatal("empty")
			}
		}
	})
}

// BenchmarkAblationIndexMaintenance prices the general relation's
// alternative to order sharing: a separate B-tree valid-time index. Insert
// throughput is compared for the bare heap (no historical access path),
// the indexed heap (pays tree maintenance), and the vt-ordered log (gets
// the access path for free from the declared ordering).
func BenchmarkAblationIndexMaintenance(b *testing.B) {
	const n = 20000
	shuffled := make([]ts.Chronon, n)
	for i := range shuffled {
		shuffled[i] = ts.Chronon((int64(i) * 7919) % 100003)
	}
	mkElems := func(vts func(int) ts.Chronon) []*ts.Element {
		es := make([]*ts.Element, n)
		for i := range es {
			es[i] = &ts.Element{
				ES: ts.Surrogate(i + 1), OS: 1,
				TTStart: ts.Chronon(int64(i) * 10), TTEnd: ts.Forever,
				VT: ts.EventAt(vts(i)),
			}
		}
		return es
	}
	general := mkElems(func(i int) ts.Chronon { return shuffled[i] })
	ordered := mkElems(func(i int) ts.Chronon { return ts.Chronon(int64(i) * 10) })
	load := func(b *testing.B, mk func() ts.Store, es []*ts.Element) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			st := mk()
			for _, e := range es {
				if err := st.Insert(e); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("heap/no-vt-access-path", func(b *testing.B) { load(b, ts.NewHeapStore, general) })
	b.Run("heap+btree-index", func(b *testing.B) { load(b, ts.NewIndexedEventStore, general) })
	b.Run("vt-ordered-log/declared", func(b *testing.B) { load(b, ts.NewVTLogStore, ordered) })
}

// BenchmarkAblationIndexedQuery compares time-slice queries across the
// three physical designs: heap scan (O(n)), B-tree index (O(log n), with
// maintenance paid at insert), and vt-ordered log (O(log n), no
// maintenance).
func BenchmarkAblationIndexedQuery(b *testing.B) {
	const n = 100000
	heap, idx, vtlog := ts.NewHeapStore(), ts.NewIndexedEventStore(), ts.NewVTLogStore()
	for i := 0; i < n; i++ {
		shuffledVT := ts.Chronon((int64(i) * 7919) % 1000003)
		e := &ts.Element{ES: ts.Surrogate(i + 1), OS: 1,
			TTStart: ts.Chronon(int64(i) * 10), TTEnd: ts.Forever, VT: ts.EventAt(shuffledVT)}
		if err := heap.Insert(e); err != nil {
			b.Fatal(err)
		}
		if err := idx.Insert(e); err != nil {
			b.Fatal(err)
		}
		oe := &ts.Element{ES: ts.Surrogate(i + 1), OS: 1,
			TTStart: ts.Chronon(int64(i) * 10), TTEnd: ts.Forever, VT: ts.EventAt(ts.Chronon(int64(i) * 10))}
		if err := vtlog.Insert(oe); err != nil {
			b.Fatal(err)
		}
	}
	q := ts.Chronon((int64(n/2) * 7919) % 1000003)
	oq := ts.Chronon(int64(n/2) * 10)
	b.Run("heap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if got, _ := heap.Timeslice(q); len(got) == 0 {
				b.Fatal("not found")
			}
		}
	})
	b.Run("heap+btree-index", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if got, _ := idx.Timeslice(q); len(got) == 0 {
				b.Fatal("not found")
			}
		}
	})
	b.Run("vt-ordered-log", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if got, _ := vtlog.Timeslice(oq); len(got) == 0 {
				b.Fatal("not found")
			}
		}
	})
}

// BenchmarkBacklogPersistence measures serializing and reloading a 10k-
// transaction relation through the checksummed backlog format.
func BenchmarkBacklogPersistence(b *testing.B) {
	r, err := ts.MonitoringWorkload(ts.WorkloadConfig{Seed: 1, N: 10000})
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	b.Run("write", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := ts.WriteBacklog(&buf, r); err != nil {
				b.Fatal(err)
			}
		}
	})
	if buf.Len() == 0 {
		if err := ts.WriteBacklog(&buf, r); err != nil {
			b.Fatal(err)
		}
	}
	data := buf.Bytes()
	b.Run("read+replay", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			schema, records, err := ts.ReadBacklog(bytes.NewReader(data))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := ts.Replay(schema, ts.NewLogicalClock(0, 10), records); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTSQL measures parse and end-to-end evaluation of a bitemporal
// query over a 10k-element relation.
func BenchmarkTSQL(b *testing.B) {
	r, err := ts.MonitoringWorkload(ts.WorkloadConfig{Seed: 1, N: 10000})
	if err != nil {
		b.Fatal(err)
	}
	lookup := func(string) (*ts.Relation, bool) { return r, true }
	const q = "select id, value from plant_temps as of 1800000 when valid during [100000, 200000) where value > 25"
	b.Run("parse", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ts.ParseQuery(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("run", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ts.RunQuery(q, lookup); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEnforcedInsert measures transaction throughput with
// specialization enforcement attached (monitoring workload: one event
// constraint plus one inter-event constraint per insert).
func BenchmarkEnforcedInsert(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ts.MonitoringWorkload(ts.WorkloadConfig{Seed: 1, N: 1000}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllenCompose measures the interval algebra's composition table
// lookups (built once, then O(1)).
func BenchmarkAllenCompose(b *testing.B) {
	rels := ts.AllenRelations()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := rels[i%13]
		s := rels[(i/13)%13]
		if ts.Compose(r, s) == 0 {
			b.Fatal("empty composition")
		}
	}
}

// BenchmarkAblationBoundedPushdown measures the second specialization-
// driven strategy: a declared two-sided bound (delayed strongly
// retroactively bounded, delays in [30 s, 300 s]) converts time-slice
// queries into 270 s transaction-time windows on the plain arrival log.
func BenchmarkAblationBoundedPushdown(b *testing.B) {
	r, err := ts.MonitoringWorkload(ts.WorkloadConfig{Seed: 9, N: 50000})
	if err != nil {
		b.Fatal(err)
	}
	spec, err := ts.DelayedStronglyRetroactivelyBoundedSpec(ts.Seconds(30), ts.Seconds(300))
	if err != nil {
		b.Fatal(err)
	}
	ttlog := ts.NewTTLogStore()
	heap := ts.NewHeapStore()
	for _, e := range r.Versions() {
		if err := ttlog.Insert(e); err != nil {
			b.Fatal(err)
		}
		if err := heap.Insert(e); err != nil {
			b.Fatal(err)
		}
	}
	pushdown := ts.NewQueryEngine(ttlog, nil)
	if err := ts.EnableBoundedPushdown(pushdown, r, spec); err != nil {
		b.Fatal(err)
	}
	scan := ts.NewQueryEngine(heap, nil)
	q := r.Versions()[25000].VT.Start()
	b.Run("tt-window-pushdown", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if res := pushdown.Timeslice(q); len(res.Elements) != 1 {
				b.Fatal("wrong result")
			}
		}
	})
	b.Run("heap-scan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if res := scan.Timeslice(q); len(res.Elements) != 1 {
				b.Fatal("wrong result")
			}
		}
	})
}
