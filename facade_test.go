package temporalspec_test

import (
	"testing"

	ts "repro"
)

// TestFacadeSpecConstructors sweeps every specialization constructor the
// facade re-exports, so the public API surface stays wired to the core.
func TestFacadeSpecConstructors(t *testing.T) {
	dt, dt2 := ts.Seconds(10), ts.Seconds(30)
	okEvent := []func() (ts.EventSpec, error){
		func() (ts.EventSpec, error) { return ts.DelayedRetroactiveSpec(dt) },
		func() (ts.EventSpec, error) { return ts.EarlyPredictiveSpec(dt) },
		func() (ts.EventSpec, error) { return ts.RetroactivelyBoundedSpec(dt) },
		func() (ts.EventSpec, error) { return ts.StronglyRetroactivelyBoundedSpec(dt) },
		func() (ts.EventSpec, error) { return ts.DelayedStronglyRetroactivelyBoundedSpec(dt, dt2) },
		func() (ts.EventSpec, error) { return ts.PredictivelyBoundedSpec(dt) },
		func() (ts.EventSpec, error) { return ts.StronglyPredictivelyBoundedSpec(dt) },
		func() (ts.EventSpec, error) { return ts.EarlyStronglyPredictivelyBoundedSpec(dt, dt2) },
		func() (ts.EventSpec, error) { return ts.StronglyBoundedSpec(dt, dt2) },
		func() (ts.EventSpec, error) { return ts.DegenerateSpec(ts.Second) },
	}
	for i, f := range okEvent {
		if _, err := f(); err != nil {
			t.Errorf("event constructor %d: %v", i, err)
		}
	}
	for _, f := range []func() (ts.InterEventSpec, error){
		func() (ts.InterEventSpec, error) { return ts.TTEventRegularSpec(dt) },
		func() (ts.InterEventSpec, error) { return ts.VTEventRegularSpec(dt) },
		func() (ts.InterEventSpec, error) { return ts.TemporalEventRegularSpec(dt) },
		func() (ts.InterEventSpec, error) { return ts.StrictTTEventRegularSpec(dt) },
		func() (ts.InterEventSpec, error) { return ts.StrictVTEventRegularSpec(dt) },
		func() (ts.InterEventSpec, error) { return ts.StrictTemporalEventRegularSpec(dt) },
	} {
		if _, err := f(); err != nil {
			t.Errorf("inter-event constructor: %v", err)
		}
	}
	for _, f := range []func() (ts.IntervalRegularSpec, error){
		func() (ts.IntervalRegularSpec, error) { return ts.TTIntervalRegularSpec(dt) },
		func() (ts.IntervalRegularSpec, error) { return ts.VTIntervalRegularSpec(dt) },
		func() (ts.IntervalRegularSpec, error) { return ts.TemporalIntervalRegularSpec(dt) },
		func() (ts.IntervalRegularSpec, error) { return ts.StrictTTIntervalRegularSpec(dt) },
		func() (ts.IntervalRegularSpec, error) { return ts.StrictVTIntervalRegularSpec(dt) },
		func() (ts.IntervalRegularSpec, error) { return ts.StrictTemporalIntervalRegularSpec(dt) },
	} {
		if _, err := f(); err != nil {
			t.Errorf("interval-regular constructor: %v", err)
		}
	}
	if ts.SequentialIntervalsSpec().Class() != ts.GloballySequentialIntervals {
		t.Error("sequential intervals wrong class")
	}
	if ts.NonDecreasingIntervalsSpec().Class() != ts.GloballyNonDecreasingIntervals {
		t.Error("non-decreasing intervals wrong class")
	}
	if ts.NonIncreasingIntervalsSpec().Class() != ts.GloballyNonIncreasingIntervals {
		t.Error("non-increasing intervals wrong class")
	}
	if ts.SuccessiveTTSpec(ts.Overlaps).Class() != ts.STOverlaps {
		t.Error("successive-tt wrong class")
	}
	if ts.NonIncreasingEventsSpec().Class() != ts.GloballyNonIncreasingEvents {
		t.Error("non-increasing events wrong class")
	}
}

func TestFacadeLatticeAndClasses(t *testing.T) {
	if len(ts.Classes()) == 0 || len(ts.EventClasses()) != 13 {
		t.Error("class lists wrong")
	}
	if len(ts.Children(ts.General)) == 0 {
		t.Error("no children of general")
	}
	if len(ts.Parents(ts.Degenerate)) == 0 {
		t.Error("no parents of degenerate")
	}
	if len(ts.Ancestors(ts.Degenerate)) == 0 || len(ts.Descendants(ts.Retroactive)) == 0 {
		t.Error("lattice walks empty")
	}
}

func TestFacadeMappingsAndStamps(t *testing.T) {
	r, err := ts.MonitoringWorkload(ts.WorkloadConfig{Seed: 8, N: 10})
	if err != nil {
		t.Fatal(err)
	}
	stamps := ts.StampsOf(r.Versions(), ts.TTInsertion, ts.VTStart)
	if len(stamps) != 10 {
		t.Fatalf("stamps = %d", len(stamps))
	}
	if ts.M1(ts.Seconds(5)).Name == "" || ts.M2(ts.Seconds(5)).Name == "" || ts.M3().Name == "" {
		t.Error("mapping names empty")
	}
	if err := ts.Determine(ts.M1(ts.Seconds(5)), r.Versions(), ts.TTInsertion, ts.VTStart); err == nil {
		t.Error("random workload should not be m1(5s)-determined")
	}
}

func TestFacadeStoresAndEnforcer(t *testing.T) {
	if ts.NewHeapStore().Kind() != ts.HeapStore {
		t.Error("heap store kind")
	}
	if ts.NewTTLogStore().Kind() != ts.TTOrderedStore {
		t.Error("tt log store kind")
	}
	if ts.NewVTLogStore().Kind() != ts.VTOrderedStore {
		t.Error("vt log store kind")
	}
	if ts.NewIndexedEventStore().Kind() != ts.HeapStore {
		t.Error("indexed store kind")
	}
	en := ts.NewEnforcer(ts.PerPartition, ts.EventConstraint{Spec: ts.RetroactiveSpec()})
	if en.Scope() != ts.PerPartition || len(en.Constraints()) != 1 {
		t.Error("enforcer accessors")
	}
}

func TestFacadeWorkloadsSweep(t *testing.T) {
	builders := map[string]func() (*ts.Relation, error){
		"payroll":     func() (*ts.Relation, error) { return ts.PayrollWorkload(ts.WorkloadConfig{Seed: 1, N: 10}) },
		"accounting":  func() (*ts.Relation, error) { return ts.AccountingWorkload(ts.WorkloadConfig{Seed: 1, N: 10}) },
		"orders":      func() (*ts.Relation, error) { return ts.OrdersWorkload(ts.WorkloadConfig{Seed: 1, N: 10}) },
		"archaeology": func() (*ts.Relation, error) { return ts.ArchaeologyWorkload(ts.WorkloadConfig{Seed: 1, N: 10}) },
		"assignments": func() (*ts.Relation, error) { return ts.AssignmentsWorkload(ts.WorkloadConfig{Seed: 1, N: 4}, 2) },
	}
	for name, f := range builders {
		r, err := f()
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if r.Len() == 0 {
			t.Errorf("%s: empty", name)
		}
	}
}

func TestFacadeVacuumAndScriptedClock(t *testing.T) {
	clock := ts.NewScriptedClock(10, 20, 30)
	r := ts.NewRelation(ts.Schema{Name: "v", ValidTime: ts.EventStamp, Granularity: ts.Second}, clock)
	e, err := r.Insert(ts.Insertion{VT: ts.EventAt(1)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Insert(ts.Insertion{VT: ts.EventAt(2)}); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete(e.ES); err != nil {
		t.Fatal(err)
	}
	removed, err := r.Vacuum(35)
	if err != nil || removed != 1 {
		t.Fatalf("vacuum: %d, %v", removed, err)
	}
	if !r.CanRollbackTo(35) || r.CanRollbackTo(30) {
		t.Error("rollback horizon wrong")
	}
}

func TestFacadeClassifyPerPartition(t *testing.T) {
	r, err := ts.AssignmentsWorkload(ts.WorkloadConfig{Seed: 2, N: 5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	rep := ts.ClassifyPerPartition(r.Partitions(), ts.TTInsertion, ts.Second)
	if !rep.Has(ts.GloballyContiguous) {
		t.Errorf("per-partition contiguity missing: %v", rep.Findings)
	}
}

func TestFacadeLockedRelationAndSystemClock(t *testing.T) {
	r := ts.NewRelation(ts.Schema{Name: "c", ValidTime: ts.EventStamp, Granularity: ts.Second},
		ts.NewSystemClock())
	l := ts.NewLockedRelation(r)
	if _, err := l.Insert(ts.Insertion{VT: ts.EventAt(0)}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Insert(ts.Insertion{VT: ts.EventAt(1)}); err != nil {
		t.Fatal(err)
	}
	es := l.Current()
	if len(es) != 2 {
		t.Fatalf("current = %d", len(es))
	}
	if es[1].TTStart <= es[0].TTStart {
		t.Error("system clock stamps not strictly increasing")
	}
}

func TestFacadeBoundedPushdown(t *testing.T) {
	r, err := ts.MonitoringWorkload(ts.WorkloadConfig{Seed: 11, N: 500})
	if err != nil {
		t.Fatal(err)
	}
	spec, err := ts.DelayedStronglyRetroactivelyBoundedSpec(ts.Seconds(30), ts.Seconds(300))
	if err != nil {
		t.Fatal(err)
	}
	ttlog := ts.NewTTLogStore()
	for _, e := range r.Versions() {
		if err := ttlog.Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	en := ts.NewQueryEngine(ttlog, nil)
	if err := ts.EnableBoundedPushdown(en, r, spec); err != nil {
		t.Fatal(err)
	}
	q := r.Versions()[250].VT.Start()
	res := en.Timeslice(q)
	if len(res.Elements) != 1 || res.Touched > 10 {
		t.Errorf("pushdown: %d elements, touched %d", len(res.Elements), res.Touched)
	}
	// One-sided specs have no window.
	if err := ts.EnableBoundedPushdown(en, r, ts.RetroactiveSpec()); err == nil {
		t.Error("one-sided spec accepted")
	}
	// Interval relations are rejected.
	iv, err := ts.AssignmentsWorkload(ts.WorkloadConfig{Seed: 1, N: 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.EnableBoundedPushdown(en, iv, spec); err == nil {
		t.Error("interval relation accepted")
	}
}
