GO ?= go

# Packages whose tests exercise shared mutable state across goroutines;
# these run a second time under the race detector in `make ci`.
RACE_PKGS = ./internal/relation ./internal/catalog ./internal/server ./internal/tx ./client

.PHONY: ci build vet test race fuzz bench clean

# ci is the tier-1 gate: everything must build, vet clean, pass tests, and
# pass the race detector on the concurrency-bearing packages.
ci: vet build test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# Short smoke runs of the server decode fuzzers (they run as plain tests in
# `make test`; this gives the mutation engine a little time on each).
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzDecodeTransaction -fuzztime=20s ./internal/server
	$(GO) test -run=NONE -fuzz=FuzzDecodeQuery -fuzztime=20s ./internal/server

# Regenerate every figure/claim table plus the serving benchmark
# (writes BENCH_serving.json in the working directory).
bench:
	$(GO) run ./cmd/benchrunner

clean:
	rm -f BENCH_*.json
	$(GO) clean ./...
