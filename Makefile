GO ?= go

# Packages whose tests exercise shared mutable state across goroutines;
# these run a second time under the race detector in `make ci`.
RACE_PKGS = ./internal/relation ./internal/catalog ./internal/core ./internal/server ./internal/storage ./internal/qcache ./internal/tx ./internal/wal ./internal/repl ./internal/vec ./internal/integrity ./client

.PHONY: ci build vet fmt test race chaos e2e-cluster e2e-integrity fuzz fuzz-smoke bench bench-smoke clean

# ci is the tier-1 gate: everything must build, vet and gofmt clean, pass
# tests, pass the race detector on the concurrency-bearing packages, keep
# the read-path microbenchmarks compiling and running, boot a real
# 1-primary + 2-follower cluster end to end, and prove the integrity
# subsystem over the wire.
ci: vet fmt build test race bench-smoke e2e-cluster e2e-integrity

# fmt fails if any file needs gofmt (prints the offenders).
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# -shuffle=on randomizes test order within each package so accidental
# inter-test state dependence surfaces in CI instead of in the field.
test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race -shuffle=on $(RACE_PKGS)

# The resilience acceptance tests: idempotent retry through connection
# resets, WAL poisoning to read-only, crash recovery to exactly the acked
# set, and graceful drain — all under the race detector.
chaos:
	$(GO) test -race -run 'Chaos|Drain' -v ./internal/server

# The replication acceptance tests: a WAL-shipping primary with two live
# followers on ephemeral loopback ports — replicated reads with staleness
# bounds, typed read-only refusals, fan-out routing, and the
# kill-and-catch-up chaos path, all under the race detector.
e2e-cluster:
	$(GO) test -race -run 'ClusterE2E|FollowerCatchUp' -v ./internal/server

# The integrity acceptance tests: client-verified inclusion/consistency
# proofs across restart and follower replay, bit-flip detection with
# quarantine and repair, and the kill-mid-scrub chaos path — all under
# the race detector.
e2e-integrity:
	$(GO) test -race -run 'IntegrityE2E' -v ./internal/server

# Short smoke runs of the server decode fuzzers (they run as plain tests in
# `make test`; this gives the mutation engine a little time on each).
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzDecodeTransaction -fuzztime=20s ./internal/server
	$(GO) test -run=NONE -fuzz=FuzzDecodeQuery -fuzztime=20s ./internal/server

# fuzz-smoke gives every fuzz target in the repo 5s of mutation each —
# cheap enough to run before a release. Anchored patterns: go test allows
# one -fuzz target per package invocation.
fuzz-smoke:
	$(GO) test -run=NONE -fuzz='^FuzzDecodeTransaction$$' -fuzztime=5s ./internal/server
	$(GO) test -run=NONE -fuzz='^FuzzDecodeQuery$$' -fuzztime=5s ./internal/server
	$(GO) test -run=NONE -fuzz='^FuzzParse$$' -fuzztime=5s ./internal/tsql
	$(GO) test -run=NONE -fuzz='^FuzzParseExplain$$' -fuzztime=5s ./internal/tsql
	$(GO) test -run=NONE -fuzz='^FuzzParseDuration$$' -fuzztime=5s ./internal/chronon
	$(GO) test -run=NONE -fuzz='^FuzzParseCivil$$' -fuzztime=5s ./internal/chronon
	$(GO) test -run=NONE -fuzz='^FuzzParseGranularity$$' -fuzztime=5s ./internal/chronon
	$(GO) test -run=NONE -fuzz='^FuzzRead$$' -fuzztime=5s ./internal/backlog
	$(GO) test -run=NONE -fuzz='^FuzzWALReplay$$' -fuzztime=5s ./internal/wal
	$(GO) test -run=NONE -fuzz='^FuzzDecodeKeyed$$' -fuzztime=5s ./internal/catalog
	$(GO) test -run=NONE -fuzz='^FuzzDecodeRespecialize$$' -fuzztime=5s ./internal/catalog
	$(GO) test -run=NONE -fuzz='^FuzzRespecializeReplay$$' -fuzztime=5s ./internal/catalog
	$(GO) test -run=NONE -fuzz='^FuzzParseAggregate$$' -fuzztime=5s ./internal/tsql
	$(GO) test -run=NONE -fuzz='^FuzzColumnarRunDecode$$' -fuzztime=5s ./internal/storage
	$(GO) test -run=NONE -fuzz='^FuzzDecodeProof$$' -fuzztime=5s ./internal/integrity
	$(GO) test -run=NONE -fuzz='^FuzzMerkleConsistency$$' -fuzztime=5s ./internal/integrity
	$(GO) test -run=NONE -fuzz='^FuzzDecodeBatchFrame$$' -fuzztime=5s ./internal/catalog
	$(GO) test -run=NONE -fuzz='^FuzzBatchInsertRequest$$' -fuzztime=5s ./internal/server

# Regenerate every figure/claim table plus the serving, durability, and
# overload benchmarks (writes BENCH_*.json in the working directory).
bench:
	$(GO) run ./cmd/benchrunner

# A trimmed benchmark pass: locked vs snapshot vs cache-hit time-slices,
# the auto-specialization before/after pair, and the columnar batch
# scan/aggregate microbenchmarks, at -benchtime=100ms. Fast enough for
# ci; the full concurrent-reader experiment is
# `go run ./cmd/benchrunner -exp S4`, the physical-design one -exp S6,
# the batch-execution one -exp S7.
bench-smoke:
	$(GO) test -run=NONE -bench='^(BenchmarkReadPath|BenchmarkAutoSpecialize|BenchmarkInsertBatch)' -benchtime=100ms ./internal/catalog
	$(GO) test -run=NONE -bench='^(BenchmarkColumnarScan|BenchmarkTemporalAggregate)' -benchtime=100ms ./internal/storage

clean:
	rm -f BENCH_*.json
	$(GO) clean ./...
