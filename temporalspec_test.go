package temporalspec_test

import (
	"strings"
	"testing"

	ts "repro"
)

// TestEndToEndMonitoring drives the whole public API the way a downstream
// user would: declare a schema with specializations, run transactions, see
// violations rejected, classify the extension, get storage advice, and
// query through the engine.
func TestEndToEndMonitoring(t *testing.T) {
	schema := ts.Schema{
		Name:        "plant",
		ValidTime:   ts.EventStamp,
		Granularity: ts.Second,
		Invariant:   []ts.Column{{Name: "sensor", Type: ts.KindString}},
		Varying:     []ts.Column{{Name: "celsius", Type: ts.KindFloat}},
	}
	r := ts.NewRelation(schema, ts.NewLogicalClock(ts.Date(1992, 2, 3), 60))

	delayed, err := ts.DelayedRetroactiveSpec(ts.Seconds(30))
	if err != nil {
		t.Fatal(err)
	}
	ts.Declare(r, ts.PerRelation,
		ts.EventConstraint{Spec: delayed},
		ts.InterEventConstraint{Spec: ts.SequentialEventsSpec()},
	)

	base := ts.Date(1992, 2, 3)
	// Three good samples, each valid 45 s before its storage time.
	for i := int64(1); i <= 3; i++ {
		_, err := r.Insert(ts.Insertion{
			VT:        ts.EventAt(base.Add(i*60 - 45)),
			Invariant: []ts.Value{ts.String("r1")},
			Varying:   []ts.Value{ts.Float(21.5)},
		})
		if err != nil {
			t.Fatalf("sample %d rejected: %v", i, err)
		}
	}
	// A sample arriving too fast (delay 10 s < 30 s) is rejected.
	if _, err := r.Insert(ts.Insertion{
		VT:        ts.EventAt(base.Add(4*60 - 10)),
		Invariant: []ts.Value{ts.String("r1")},
		Varying:   []ts.Value{ts.Float(22)},
	}); err == nil {
		t.Fatal("under-delayed sample accepted")
	}

	rep := ts.Classify(r.Versions(), ts.TTInsertion, ts.Second)
	if !rep.Has(ts.DelayedRetroactive) || !rep.Has(ts.GloballySequentialEvents) {
		t.Errorf("classification missing expected classes: %v", rep.Findings)
	}

	advice := ts.Advise(rep.Classes(), ts.EventStamp)
	if advice.Store != ts.VTOrderedStore {
		t.Errorf("advice = %v, want vt-ordered", advice.Store)
	}

	en, _, err := ts.EngineForRelation(r, rep.Classes())
	if err != nil {
		t.Fatal(err)
	}
	res := en.Timeslice(base.Add(60 - 45))
	if len(res.Elements) != 1 {
		t.Fatalf("timeslice found %d elements", len(res.Elements))
	}
	if !strings.Contains(res.Plan, "binary search") {
		t.Errorf("plan = %q", res.Plan)
	}
}

func TestPublicTaxonomyQueries(t *testing.T) {
	if !ts.IsSpecializationOf(ts.Degenerate, ts.Retroactive) {
		t.Error("degenerate should specialize retroactive")
	}
	c := ts.EnumerateRegions()
	if c.Specializations() != 11 {
		t.Errorf("completeness = %d, want 11", c.Specializations())
	}
	if got := ts.MostSpecificClasses([]ts.Class{ts.General, ts.Retroactive}); len(got) != 1 || got[0] != ts.Retroactive {
		t.Errorf("MostSpecificClasses = %v", got)
	}
	if out := ts.RenderLattice(ts.CategoryIsolatedEvent); !strings.Contains(out, "degenerate") {
		t.Error("lattice render incomplete")
	}
	if out := ts.RenderRegion(ts.RetroactiveSpec(), 5); !strings.Contains(out, "#") {
		t.Error("region render empty")
	}
}

func TestPublicAllenAlgebra(t *testing.T) {
	a := ts.MakeInterval(0, 10)
	b := ts.MakeInterval(10, 20)
	if ts.Relate(a, b) != ts.Meets {
		t.Error("Relate wrong")
	}
	if got := ts.Compose(ts.Meets, ts.Meets); !got.Has(ts.Before) || got.Len() != 1 {
		t.Errorf("Compose = %v", got)
	}
	if len(ts.AllenRelations()) != 13 {
		t.Error("relation count wrong")
	}
}

func TestPublicTimeDomain(t *testing.T) {
	d, err := ts.ParseDuration("1mo2d")
	if err != nil || d != ts.Months(1).Plus(ts.Days(2)) {
		t.Errorf("ParseDuration = %v, %v", d, err)
	}
	if ts.GCD(28, 6) != 2 {
		t.Error("GCD wrong")
	}
	cv, err := ts.ParseCivil("1992-02-29")
	if err != nil || cv.Chronon() != ts.Date(1992, 2, 29) {
		t.Errorf("ParseCivil = %v, %v", cv, err)
	}
	g, err := ts.ParseGranularity("minute")
	if err != nil || g != ts.Minute {
		t.Errorf("ParseGranularity = %v, %v", g, err)
	}
}

func TestPublicWorkloads(t *testing.T) {
	r, err := ts.MonitoringWorkload(ts.WorkloadConfig{Seed: 1, N: 20})
	if err != nil || r.Len() != 20 {
		t.Fatalf("monitoring workload: %v, len %d", err, r.Len())
	}
	stamps := ts.EventStampsWorkload(ts.Retroactive, ts.WorkloadConfig{Seed: 1, N: 10})
	if len(stamps) != 10 {
		t.Error("stamp workload wrong size")
	}
	inner, outer := ts.WorkloadBounds()
	if inner.IsZero() || outer.IsZero() {
		t.Error("workload bounds zero")
	}
}

func TestPublicDeterminedMapping(t *testing.T) {
	schema := ts.Schema{Name: "deposits", ValidTime: ts.EventStamp, Granularity: ts.Second}
	r := ts.NewRelation(schema, ts.NewLogicalClock(ts.DateTime(1992, 1, 1, 15, 0, 0), 3600))
	// Deposits valid from the next 8:00 a.m. (mapping m3).
	ts.Declare(r, ts.PerRelation, ts.DeterminedConstraint{
		Spec: ts.DeterminedSpec{M: ts.M3(), Base: ts.PredictiveSpec()},
	})
	// tt = 16:00 ⇒ vt must be next day 08:00.
	if _, err := r.Insert(ts.Insertion{VT: ts.EventAt(ts.DateTime(1992, 1, 2, 8, 0, 0))}); err != nil {
		t.Fatalf("determined deposit rejected: %v", err)
	}
	if _, err := r.Insert(ts.Insertion{VT: ts.EventAt(ts.DateTime(1992, 1, 2, 9, 0, 0))}); err == nil {
		t.Fatal("mis-mapped deposit accepted")
	}
}

func TestPublicIntervalSets(t *testing.T) {
	a := ts.NewIntervalSet(ts.MakeInterval(0, 10), ts.MakeInterval(20, 30))
	b := ts.NewIntervalSet(ts.MakeInterval(5, 25))
	if got := a.Union(b); got.Len() != 1 || got.Hull() != ts.MakeInterval(0, 30) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b); got.Duration() != 10 {
		t.Errorf("Intersect = %v", got)
	}
	if !a.Contains(25) || a.Contains(15) {
		t.Error("Contains wrong")
	}
}

func TestPublicBacklogPersistence(t *testing.T) {
	r, err := ts.MonitoringWorkload(ts.WorkloadConfig{Seed: 3, N: 50})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/plant.tsbl"
	if err := ts.SaveBacklog(path, r); err != nil {
		t.Fatal(err)
	}
	restored, err := ts.LoadBacklog(path, ts.NewLogicalClock(0, 360))
	if err != nil {
		t.Fatal(err)
	}
	if restored.Len() != r.Len() {
		t.Fatalf("restored %d of %d elements", restored.Len(), r.Len())
	}
	// The restored relation classifies identically.
	a := ts.Classify(r.Versions(), ts.TTInsertion, ts.Second)
	b := ts.Classify(restored.Versions(), ts.TTInsertion, ts.Second)
	if len(a.Findings) != len(b.Findings) {
		t.Fatalf("classification drift: %d vs %d findings", len(a.Findings), len(b.Findings))
	}
}

func TestPublicTemporalQuery(t *testing.T) {
	r, err := ts.PayrollWorkload(ts.WorkloadConfig{Seed: 4, N: 30})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ts.RunQuery(
		"select id, value from payroll where value > 3000",
		func(string) (*ts.Relation, bool) { return r, true })
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 || len(res.Rows) == 30 {
		t.Errorf("predicate did not filter: %d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		v, _ := row[1].FloatVal()
		if v <= 3000 {
			t.Errorf("row violates predicate: %v", v)
		}
	}
	q, err := ts.ParseQuery("select * from payroll as of 100 when valid at 200")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ts.EvalQuery(q, r); err != nil {
		t.Fatal(err)
	}
	if res.Format() == "" {
		t.Error("empty format")
	}
}
