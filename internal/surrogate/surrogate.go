// Package surrogate provides system-generated surrogate identifiers.
//
// The paper's conceptual model (§2) gives each temporal element an element
// surrogate — "a system-generated, unique identifier of an element that can
// be referenced and compared for equality, but not displayed to the user" —
// and each modeled real-world object an object surrogate that partitions a
// relation into life-lines (the per-surrogate partitioning).
package surrogate

import (
	"fmt"
	"sync/atomic"
)

// Surrogate is an opaque unique identifier. The zero value None denotes
// "no surrogate". Surrogates support only equality comparison and use as
// map keys; their numeric content is an implementation detail and is never
// shown to end users (String renders a debugging form only).
type Surrogate uint64

// None is the absent surrogate.
const None Surrogate = 0

// IsNone reports whether the surrogate is absent.
func (s Surrogate) IsNone() bool { return s == None }

// String renders a debugging form. Per the paper, surrogates are not
// displayed to users; this form exists for logs and tests only.
func (s Surrogate) String() string {
	if s == None {
		return "⊥"
	}
	return fmt.Sprintf("σ%d", uint64(s))
}

// Generator produces unique surrogates. It is safe for concurrent use.
type Generator struct {
	last atomic.Uint64
}

// NewGenerator returns a generator whose first surrogate is 1.
func NewGenerator() *Generator { return &Generator{} }

// Next returns a fresh surrogate, distinct from all previously returned by
// this generator.
func (g *Generator) Next() Surrogate {
	return Surrogate(g.last.Add(1))
}

// Issued returns how many surrogates the generator has handed out.
func (g *Generator) Issued() uint64 { return g.last.Load() }

// Reserve advances the generator past n, so that surrogates up to and
// including n are never issued again. Used when replaying a persisted
// backlog whose elements already carry surrogates.
func (g *Generator) Reserve(n uint64) {
	for {
		cur := g.last.Load()
		if cur >= n || g.last.CompareAndSwap(cur, n) {
			return
		}
	}
}
