package surrogate

import (
	"sync"
	"testing"
)

func TestGeneratorUnique(t *testing.T) {
	g := NewGenerator()
	seen := make(map[Surrogate]bool)
	for i := 0; i < 1000; i++ {
		s := g.Next()
		if s.IsNone() {
			t.Fatal("generator issued None")
		}
		if seen[s] {
			t.Fatalf("duplicate surrogate %v", s)
		}
		seen[s] = true
	}
	if g.Issued() != 1000 {
		t.Errorf("Issued = %d, want 1000", g.Issued())
	}
}

func TestGeneratorConcurrent(t *testing.T) {
	g := NewGenerator()
	const workers, per = 8, 500
	out := make([][]Surrogate, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				out[w] = append(out[w], g.Next())
			}
		}(w)
	}
	wg.Wait()
	seen := make(map[Surrogate]bool)
	for _, batch := range out {
		for _, s := range batch {
			if seen[s] {
				t.Fatalf("duplicate surrogate %v under concurrency", s)
			}
			seen[s] = true
		}
	}
	if len(seen) != workers*per {
		t.Errorf("got %d surrogates, want %d", len(seen), workers*per)
	}
}

func TestNone(t *testing.T) {
	if !None.IsNone() {
		t.Error("None should be none")
	}
	if None.String() != "⊥" {
		t.Errorf("None.String() = %q", None.String())
	}
	if Surrogate(3).String() != "σ3" {
		t.Errorf("String = %q", Surrogate(3).String())
	}
}

func TestReserve(t *testing.T) {
	g := NewGenerator()
	g.Reserve(100)
	if s := g.Next(); s != Surrogate(101) {
		t.Errorf("Next after Reserve(100) = %v, want σ101", s)
	}
	// Reserving below the watermark is a no-op.
	g.Reserve(50)
	if s := g.Next(); s != Surrogate(102) {
		t.Errorf("Next after backward Reserve = %v, want σ102", s)
	}
	if g.Issued() != 102 {
		t.Errorf("Issued = %d", g.Issued())
	}
}

func TestReserveConcurrent(t *testing.T) {
	g := NewGenerator()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(n uint64) {
			defer wg.Done()
			g.Reserve(n)
		}(uint64(100 * (w + 1)))
	}
	wg.Wait()
	if s := g.Next(); s != Surrogate(801) {
		t.Errorf("Next after concurrent reserves = %v, want σ801", s)
	}
}
