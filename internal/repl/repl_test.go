package repl_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/chronon"
	"repro/internal/element"
	"repro/internal/relation"
	"repro/internal/repl"
	"repro/internal/tx"
	"repro/internal/wal"
	"repro/internal/wire"
)

func openLog(t *testing.T) *wal.Log {
	t.Helper()
	l, err := wal.Open(wal.Options{Dir: t.TempDir(), Sync: wal.SyncAlways, SegmentBytes: 1 << 20})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func TestStreamerTailServesDurablePrefix(t *testing.T) {
	l := openLog(t)
	s := repl.NewStreamer(l)
	for i := 0; i < 3; i++ {
		if _, err := l.Append(3, "emp", []byte{byte(i)}); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	resp, err := s.Tail(context.Background(), 1, 100, 0)
	if err != nil {
		t.Fatalf("tail: %v", err)
	}
	if len(resp.Frames) != 3 || resp.DurableLSN != 3 {
		t.Fatalf("tail = %d frames durable %d, want 3/3", len(resp.Frames), resp.DurableLSN)
	}
	for i, fr := range resp.Frames {
		if fr.LSN != uint64(i+1) || fr.Rel != "emp" || fr.Payload[0] != byte(i) {
			t.Fatalf("frame %d = %+v", i, fr)
		}
	}
	if st := s.Stats(); st.TailRequests != 1 || st.FramesShipped != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestStreamerTailLongPollsUntilDurable(t *testing.T) {
	l := openLog(t)
	s := repl.NewStreamer(l)
	go func() {
		time.Sleep(30 * time.Millisecond)
		l.Append(3, "emp", []byte("late"))
	}()
	start := time.Now()
	resp, err := s.Tail(context.Background(), 1, 100, 2*time.Second)
	if err != nil {
		t.Fatalf("tail: %v", err)
	}
	if len(resp.Frames) != 1 {
		t.Fatalf("long poll returned %d frames, want the 1 appended mid-wait", len(resp.Frames))
	}
	if time.Since(start) >= 2*time.Second {
		t.Fatal("long poll waited out the full window despite a new durable record")
	}
}

func TestStreamerTailTruncated(t *testing.T) {
	// Small segments: force rolls, then truncate the oldest away.
	l, err := wal.Open(wal.Options{Dir: t.TempDir(), Sync: wal.SyncAlways, SegmentBytes: 128})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer l.Close()
	s := repl.NewStreamer(l)
	for i := 0; i < 40; i++ {
		if _, err := l.Append(3, "emp", []byte("payload-payload")); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if _, err := l.TruncateBelow(l.DurableLSN()); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	_, err = s.Tail(context.Background(), 1, 100, 0)
	if !repl.IsTruncated(err) {
		t.Fatalf("tail from 1 after truncation = %v, want truncated", err)
	}
}

// tailServer is a hand-rolled primary: it serves scripted tail replies
// so the follower loop can be driven through catch-up and truncation
// without a full server stack. Once the script runs out it answers
// empty caught-up batches at defaultDurable.
type tailServer struct {
	mu             sync.Mutex
	batches        []tailReply
	defaultDurable uint64
	calls          atomic.Int64
}

type tailReply struct {
	status int
	body   any
}

func (ts *tailServer) push(status int, body any) {
	ts.mu.Lock()
	ts.batches = append(ts.batches, tailReply{status, body})
	ts.mu.Unlock()
}

func (ts *tailServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	ts.calls.Add(1)
	ts.mu.Lock()
	var rep tailReply
	if len(ts.batches) > 0 {
		rep = ts.batches[0]
		ts.batches = ts.batches[1:]
	} else {
		rep = tailReply{http.StatusOK, wire.ReplTailResponse{DurableLSN: ts.defaultDurable}}
	}
	ts.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(rep.status)
	json.NewEncoder(w).Encode(rep.body)
}

func followerCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	c := catalog.New(catalog.Config{
		NewClock: func() tx.Clock { return tx.NewLogicalClock(0, 10) },
		Follower: true,
	})
	if err := c.Open(); err != nil {
		t.Fatalf("catalog.Open: %v", err)
	}
	return c
}

// primaryFrames builds a real WAL-backed primary catalog, applies muts to
// it, and returns the shipped wire frames plus the source catalog.
func primaryFrames(t *testing.T, muts func(c *catalog.Catalog)) ([]wire.ReplFrame, *catalog.Catalog) {
	t.Helper()
	l := openLog(t)
	c := catalog.New(catalog.Config{
		NewClock: func() tx.Clock { return tx.NewLogicalClock(0, 10) },
		WAL:      l,
	})
	if err := c.Open(); err != nil {
		t.Fatalf("catalog.Open: %v", err)
	}
	muts(c)
	recs, durable, err := l.IterateFrom(1, 10_000)
	if err != nil {
		t.Fatalf("iterate: %v", err)
	}
	if uint64(len(recs)) == 0 || recs[len(recs)-1].LSN != durable {
		t.Fatalf("primary shipped %d records, durable %d", len(recs), durable)
	}
	frames := make([]wire.ReplFrame, len(recs))
	for i, rec := range recs {
		frames[i] = wire.ReplFrame{LSN: rec.LSN, Kind: uint8(rec.Kind), Rel: rec.Rel, Payload: rec.Payload}
	}
	return frames, c
}

func eventSchema(name string) relation.Schema {
	return relation.Schema{
		Name:        name,
		ValidTime:   element.EventStamp,
		Granularity: chronon.Second,
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestFollowerAppliesAndReportsStaleness(t *testing.T) {
	const idemKey = "repl-key-1"
	frames, pcat := primaryFrames(t, func(c *catalog.Catalog) {
		e, err := c.Create(eventSchema("emp"))
		if err != nil {
			t.Fatalf("create: %v", err)
		}
		for i := 0; i < 3; i++ {
			if _, err := e.Insert(relation.Insertion{VT: element.EventAt(chronon.Chronon(100 + i))}); err != nil {
				t.Fatalf("insert: %v", err)
			}
		}
		if _, err := e.InsertKeyed(context.Background(), relation.Insertion{VT: element.EventAt(500)}, idemKey); err != nil {
			t.Fatalf("keyed insert: %v", err)
		}
	})
	last := frames[len(frames)-1].LSN

	ts := &tailServer{defaultDurable: last}
	ts.push(http.StatusOK, wire.ReplTailResponse{Frames: frames, DurableLSN: last})
	hs := httptest.NewServer(ts)
	defer hs.Close()

	fcat := followerCatalog(t)
	f := repl.NewFollower(repl.FollowerConfig{
		Primary: hs.URL, Catalog: fcat, Wait: 10 * time.Millisecond,
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- f.Run(ctx) }()

	waitFor(t, "first sync", func() bool { return f.Stats().Synced })

	st := f.Stats()
	if st.AppliedLSN != last || st.PrimaryDurableLSN != last {
		t.Fatalf("stats = %+v, want applied=durable=%d", st, last)
	}
	if ms, ok := f.StalenessMs(time.Now()); !ok || ms < 0 {
		t.Fatalf("staleness = %d,%v after sync, want a bound", ms, ok)
	}

	fe, err := fcat.Get("emp")
	if err != nil {
		t.Fatalf("follower Get: %v", err)
	}
	pe, _ := pcat.Get("emp")
	want := pe.Current().Elements
	got := fe.Current().Elements
	if len(got) != len(want) {
		t.Fatalf("follower holds %d current elements, want %d", len(got), len(want))
	}
	if !fe.HasIdemKey(idemKey) {
		t.Fatal("follower dedup window is missing the shipped idempotency key")
	}
	if fe.AppliedLSN() != last {
		t.Fatalf("relation applied lsn %d, want %d", fe.AppliedLSN(), last)
	}

	// The replica is read-only: every mutation path fails typed.
	if _, err := fe.Insert(relation.Insertion{VT: element.EventAt(900)}); !errors.Is(err, catalog.ErrReadOnly) {
		t.Fatalf("follower insert = %v, want ErrReadOnly", err)
	}
	if _, err := fcat.Create(eventSchema("dept")); !errors.Is(err, catalog.ErrReadOnly) {
		t.Fatalf("follower create = %v, want ErrReadOnly", err)
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Run after cancel = %v, want nil", err)
	}
}

func TestFollowerReconnectsThroughTransportErrors(t *testing.T) {
	frames, _ := primaryFrames(t, func(c *catalog.Catalog) {
		if _, err := c.Create(eventSchema("emp")); err != nil {
			t.Fatalf("create: %v", err)
		}
	})
	last := frames[len(frames)-1].LSN

	ts := &tailServer{defaultDurable: last}
	ts.push(http.StatusServiceUnavailable, wire.ErrorBody{Error: wire.ErrorDetail{
		Code: wire.CodeUnavailable, Message: "primary draining",
	}})
	ts.push(http.StatusOK, wire.ReplTailResponse{Frames: frames, DurableLSN: last})
	hs := httptest.NewServer(ts)
	defer hs.Close()

	f := repl.NewFollower(repl.FollowerConfig{
		Primary: hs.URL, Catalog: followerCatalog(t),
		Wait: 10 * time.Millisecond, MaxBackoff: 20 * time.Millisecond,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go f.Run(ctx)

	waitFor(t, "sync after reconnect", func() bool { return f.Stats().Synced })
	if st := f.Stats(); st.Reconnects == 0 {
		t.Fatalf("stats = %+v, want at least one reconnect", st)
	}
}

func TestFollowerStopsFatallyOnTruncation(t *testing.T) {
	ts := &tailServer{}
	ts.push(http.StatusGone, wire.ErrorBody{Error: wire.ErrorDetail{
		Code: wire.CodeTruncated, Message: "oldest retained lsn is 900",
	}})
	hs := httptest.NewServer(ts)
	defer hs.Close()

	f := repl.NewFollower(repl.FollowerConfig{Primary: hs.URL, Catalog: followerCatalog(t)})
	err := f.Run(context.Background())
	if err == nil || !repl.IsTruncated(err) {
		t.Fatalf("Run against a truncated primary = %v, want truncated", err)
	}
	if f.Stats().Synced {
		t.Fatal("follower claims synced after fatal truncation")
	}
}
