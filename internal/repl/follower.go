package repl

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/integrity"
	"repro/internal/wal"
	"repro/internal/wire"
)

// FollowerConfig parameterizes a follower's tail loop.
type FollowerConfig struct {
	// Primary is the primary's base URL (e.g. "http://10.0.0.1:8080").
	Primary string
	// Catalog is the local read-only catalog frames are applied to. It
	// must have been built with catalog.Config.Follower set.
	Catalog *catalog.Catalog
	// HTTP is the transport; nil uses a client with sane timeouts.
	HTTP *http.Client
	// BatchMax bounds frames per tail poll; 0 means 512.
	BatchMax int
	// Wait is the long-poll window per tail request; 0 means 2s.
	Wait time.Duration
	// MaxBackoff caps the reconnect backoff; 0 means 5s.
	MaxBackoff time.Duration
}

// Follower tails a primary's replication feed and replays the shipped
// frames into the local catalog. One goroutine runs the loop (Run); the
// stats methods are safe from any goroutine, which is how the server
// stamps staleness headers and the /metrics replication section.
type Follower struct {
	cfg FollowerConfig

	appliedLSN     atomic.Uint64
	primaryDurable atomic.Uint64
	framesApplied  atomic.Uint64
	reconnects     atomic.Uint64
	leafFailures   atomic.Uint64
	synced         atomic.Bool

	mu        sync.Mutex
	freshAsOf time.Time // local receipt time of the last caught-up poll
	lastErr   string
}

// NewFollower builds a follower over cfg. Call Run to start tailing.
func NewFollower(cfg FollowerConfig) *Follower {
	if cfg.Catalog == nil || !cfg.Catalog.Follower() {
		panic("repl: follower requires a catalog built with Config.Follower")
	}
	if cfg.HTTP == nil {
		cfg.HTTP = &http.Client{Timeout: 30 * time.Second}
	}
	if cfg.BatchMax <= 0 {
		cfg.BatchMax = 512
	}
	if cfg.Wait <= 0 {
		cfg.Wait = 2 * time.Second
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 5 * time.Second
	}
	f := &Follower{cfg: cfg}
	f.appliedLSN.Store(cfg.Catalog.MaxAppliedLSN())
	return f
}

// Run tails the primary until ctx is done (returns nil) or a fatal
// condition stops replication: the primary truncated the follower's
// resume point away (ErrTruncated — reseed from a snapshot) or a frame
// failed to apply (divergence; never expected from a healthy primary).
// Transport errors are not fatal: the loop backs off exponentially with
// jitter and reconnects, so a primary restart just shows up as a few
// reconnects and a staleness spike.
//
// The resume point comes from the catalog, not from memory: the minimum
// persisted per-relation watermark. Everything from there forward is
// re-requested, and relations already ahead skip the duplicates (replay
// is idempotent), so crash-restart needs no replication-specific state.
func (f *Follower) Run(ctx context.Context) error {
	from := f.cfg.Catalog.ResumeLSN() + 1
	backoff := 50 * time.Millisecond
	for ctx.Err() == nil {
		resp, err := f.poll(ctx, from)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			if IsTruncated(err) {
				f.setErr(err)
				return fmt.Errorf("repl: cannot catch up: %w (reseed the follower from a primary snapshot)", err)
			}
			f.reconnects.Add(1)
			f.setErr(err)
			select {
			case <-ctx.Done():
				return nil
			case <-time.After(backoff + time.Duration(rand.Int63n(int64(backoff)))):
			}
			if backoff *= 2; backoff > f.cfg.MaxBackoff {
				backoff = f.cfg.MaxBackoff
			}
			continue
		}
		backoff = 50 * time.Millisecond
		if len(resp.Frames) > 0 {
			// Verify each frame's shipped leaf hash against the frame body
			// before applying anything: a mismatch means the frame was
			// corrupted in flight or on the primary's disk, so the whole
			// batch is dropped and re-fetched — never applied. This is the
			// follower half of the repair loop: the re-fetch gets a clean
			// copy once the primary's scrubber has repaired its log.
			if bad := verifyFrameLeaves(resp.Frames); bad >= 0 {
				fr := resp.Frames[bad]
				f.leafFailures.Add(1)
				f.setErr(fmt.Errorf("repl: frame lsn %d (%s) failed leaf verification; batch dropped for re-fetch", fr.LSN, fr.Rel))
				select {
				case <-ctx.Done():
					return nil
				case <-time.After(backoff + time.Duration(rand.Int63n(int64(backoff)))):
				}
				continue
			}
			recs := make([]wal.Record, len(resp.Frames))
			for i, fr := range resp.Frames {
				recs[i] = wal.Record{LSN: fr.LSN, Kind: wal.Kind(fr.Kind), Rel: fr.Rel, Payload: fr.Payload}
			}
			if err := f.cfg.Catalog.ApplyReplicated(recs); err != nil {
				f.setErr(err)
				return fmt.Errorf("repl: applying shipped frames: %w", err)
			}
			last := recs[len(recs)-1].LSN
			f.framesApplied.Add(uint64(len(recs)))
			f.appliedLSN.Store(last)
			from = last + 1
		}
		f.primaryDurable.Store(resp.DurableLSN)
		if from > resp.DurableLSN {
			// Caught up: everything durable on the primary at the moment it
			// answered is applied here. This receipt time is the follower's
			// freshness anchor — staleness is measured from it.
			f.mu.Lock()
			f.freshAsOf = time.Now()
			f.lastErr = ""
			f.mu.Unlock()
			f.synced.Store(true)
		}
	}
	return nil
}

// verifyFrameLeaves recomputes each shipped frame's integrity leaf and
// returns the index of the first mismatch, or -1 when the batch is
// clean. Frames without a leaf (a primary running with integrity
// disabled) are not checked.
func verifyFrameLeaves(frames []wire.ReplFrame) int {
	for i, fr := range frames {
		if len(fr.Leaf) == 0 {
			continue
		}
		got := integrity.LeafHash(wal.FrameBody(fr.LSN, wal.Kind(fr.Kind), fr.Rel, fr.Payload))
		if !bytes.Equal(fr.Leaf, got[:]) {
			return i
		}
	}
	return -1
}

// poll issues one tail request and decodes the batch.
func (f *Follower) poll(ctx context.Context, from uint64) (wire.ReplTailResponse, error) {
	q := url.Values{}
	q.Set("from_lsn", strconv.FormatUint(from, 10))
	q.Set("max", strconv.Itoa(f.cfg.BatchMax))
	q.Set("wait_ms", strconv.FormatInt(f.cfg.Wait.Milliseconds(), 10))
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		f.cfg.Primary+"/v1/repl/tail?"+q.Encode(), nil)
	if err != nil {
		return wire.ReplTailResponse{}, err
	}
	res, err := f.cfg.HTTP.Do(req)
	if err != nil {
		return wire.ReplTailResponse{}, err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(res.Body, 1<<16))
		_ = res.Body.Close()
	}()
	if res.StatusCode != http.StatusOK {
		var eb wire.ErrorBody
		_ = json.NewDecoder(res.Body).Decode(&eb)
		if eb.Error.Code == wire.CodeTruncated {
			return wire.ReplTailResponse{}, fmt.Errorf("%w: %s", wal.ErrTruncated, eb.Error.Message)
		}
		return wire.ReplTailResponse{}, fmt.Errorf("repl: tail: primary answered %d (%s: %s)",
			res.StatusCode, eb.Error.Code, eb.Error.Message)
	}
	var out wire.ReplTailResponse
	if err := json.NewDecoder(res.Body).Decode(&out); err != nil {
		return wire.ReplTailResponse{}, fmt.Errorf("repl: tail: decoding batch: %w", err)
	}
	return out, nil
}

func (f *Follower) setErr(err error) {
	f.mu.Lock()
	f.lastErr = err.Error()
	f.mu.Unlock()
}

// FollowerStats is the follower's replication gauge set.
type FollowerStats struct {
	Primary           string
	AppliedLSN        uint64
	PrimaryDurableLSN uint64
	FramesApplied     uint64
	Reconnects        uint64
	// LeafFailures counts shipped frames that failed leaf verification;
	// each one dropped its batch for re-fetch instead of applying.
	LeafFailures uint64
	Synced       bool
	FreshAsOf    time.Time
	LastError    string
}

// Stats snapshots the follower's gauges.
func (f *Follower) Stats() FollowerStats {
	f.mu.Lock()
	fresh, lastErr := f.freshAsOf, f.lastErr
	f.mu.Unlock()
	return FollowerStats{
		Primary:           f.cfg.Primary,
		AppliedLSN:        f.appliedLSN.Load(),
		PrimaryDurableLSN: f.primaryDurable.Load(),
		FramesApplied:     f.framesApplied.Load(),
		Reconnects:        f.reconnects.Load(),
		LeafFailures:      f.leafFailures.Load(),
		Synced:            f.synced.Load(),
		FreshAsOf:         fresh,
		LastError:         lastErr,
	}
}

// StalenessMs bounds how far this follower's state may trail the
// primary, in milliseconds as of now: the time since the follower last
// observed itself caught up to the primary's durable watermark. The
// bound is one-sided and conservative — the follower may well be
// current (nothing was written since), but every mutation durable on
// the primary more than StalenessMs ago is guaranteed visible here.
// ok is false until the follower has completed its first caught-up
// poll; before that no bound exists and reads should not claim one.
func (f *Follower) StalenessMs(now time.Time) (ms int64, ok bool) {
	if !f.synced.Load() {
		return 0, false
	}
	f.mu.Lock()
	fresh := f.freshAsOf
	f.mu.Unlock()
	if fresh.IsZero() {
		return 0, false
	}
	if d := now.Sub(fresh); d > 0 {
		ms = d.Milliseconds()
	}
	return ms, true
}
