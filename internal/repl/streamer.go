// Package repl is the WAL-shipping replication layer: a primary-side
// Streamer that serves the log's sealed segments and a long-polling tail
// of durable frames, and a follower-side Follower that replays shipped
// frames into a read-only catalog.
//
// The design leans on two invariants the lower layers already provide.
// First, the durable bound: the streamer never ships a record past the
// primary's fsync watermark, so a replica can never hold state the
// primary could lose in a crash — follower state is always a prefix of
// acknowledged history. Second, idempotent replay: the follower applies
// frames through the same per-relation-watermark-guarded path boot
// recovery uses, so re-shipping after a reconnect, restart, or partial
// batch is harmless. Between them, the protocol needs no acknowledgments
// and no session state on the primary: a follower is just a reader that
// remembers how far it got.
package repl

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"repro/internal/integrity"
	"repro/internal/wal"
	"repro/internal/wire"
)

// ErrTruncated re-exports the log's truncation error: the follower asked
// for an LSN below the oldest retained segment and must be reseeded.
var ErrTruncated = wal.ErrTruncated

// tailPollInterval is how often a waiting Tail re-checks the durable
// watermark. Durability waits are already batched by the group-commit
// syncer, so a short poll costs one atomic load per tick.
const tailPollInterval = 5 * time.Millisecond

// Streamer is the primary-side replication feed over a live WAL.
type Streamer struct {
	log *wal.Log

	tailRequests  atomic.Uint64
	framesShipped atomic.Uint64
}

// NewStreamer serves the given log. The log must outlive the streamer.
func NewStreamer(log *wal.Log) *Streamer { return &Streamer{log: log} }

// Segments enumerates the primary's retained WAL segments with the LSN
// bounds a follower needs to plan a catch-up.
func (s *Streamer) Segments() wire.ReplSegmentsResponse {
	segs := s.log.Segments()
	out := wire.ReplSegmentsResponse{
		Segments:   make([]wire.ReplSegment, len(segs)),
		OldestLSN:  s.log.OldestLSN(),
		DurableLSN: s.log.DurableLSN(),
	}
	for i, seg := range segs {
		out.Segments[i] = wire.ReplSegment{
			Name: seg.Name, Base: seg.Base, Last: seg.Last, Sealed: seg.Sealed,
		}
	}
	return out
}

// Tail reads up to max durable records starting at LSN from. When the
// log holds nothing new it long-polls: the call blocks until a record
// becomes durable, the wait elapses, or ctx is done — so a caught-up
// follower ships new mutations within one poll tick of their fsync
// instead of hammering an empty feed. Returns ErrTruncated (wrapped)
// when from precedes the oldest retained segment.
func (s *Streamer) Tail(ctx context.Context, from uint64, max int, wait time.Duration) (wire.ReplTailResponse, error) {
	s.tailRequests.Add(1)
	deadline := time.Now().Add(wait)
	for {
		recs, durable, err := s.log.IterateFrom(from, max)
		if err != nil {
			return wire.ReplTailResponse{}, err
		}
		if len(recs) > 0 || wait <= 0 || time.Now().After(deadline) || ctx.Err() != nil {
			resp := wire.ReplTailResponse{
				DurableLSN: durable,
				OldestLSN:  s.log.OldestLSN(),
			}
			if len(recs) > 0 {
				resp.Frames = make([]wire.ReplFrame, len(recs))
				for i, rec := range recs {
					// Each frame ships with its integrity leaf hash, computed
					// from the frame as read back from the log, so the follower
					// can refuse a frame corrupted in flight or on this disk.
					leaf := integrity.LeafHash(wal.FrameBody(rec.LSN, rec.Kind, rec.Rel, rec.Payload))
					resp.Frames[i] = wire.ReplFrame{
						LSN: rec.LSN, Kind: uint8(rec.Kind), Rel: rec.Rel, Payload: rec.Payload,
						Leaf: leaf[:],
					}
				}
				s.framesShipped.Add(uint64(len(recs)))
			}
			return resp, nil
		}
		select {
		case <-ctx.Done():
			// Loop once more; the ctx.Err() check above returns the empty
			// batch (a clean response, not an error — the poll just ended).
		case <-time.After(tailPollInterval):
		}
	}
}

// StreamerStats is the primary's replication gauge set.
type StreamerStats struct {
	TailRequests  uint64
	FramesShipped uint64
}

// Stats snapshots the streamer's lifetime counters.
func (s *Streamer) Stats() StreamerStats {
	return StreamerStats{
		TailRequests:  s.tailRequests.Load(),
		FramesShipped: s.framesShipped.Load(),
	}
}

// IsTruncated reports whether err means the requested LSN is below the
// primary's retention horizon (reseed required).
func IsTruncated(err error) bool { return errors.Is(err, wal.ErrTruncated) }
