package storage

import (
	"encoding/binary"
	"hash/crc32"
	"sort"

	"repro/internal/chronon"
	"repro/internal/element"
)

// runCastagnoli checksums sealed-run images (same polynomial as the WAL).
var runCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// Class-scheduled compaction: the log organizations can seal their stable
// prefix into fixed-size runs. A sealed run carries
//
//   - min/max envelope metadata (tt⊢, tt⊣, valid time, liveness), which the
//     query paths use as a zone map — a run provably disjoint from the
//     query's window, or wholly dead at the rollback instant, costs one
//     metadata probe instead of runSize element visits; and
//
//   - a delta-encoded columnar image of the run's timestamps (packed), the
//     representation a disk-resident layout would store. Its byte size is
//     what StoreBytes reports for sealed history, making the space side of
//     the paper's append-only claim measurable: an ordered, slowly-varying
//     timestamp column delta-encodes to a small fraction of its flat width.
//
// Sealing never rewrites elements, so queries over a compacted store return
// pointer-identical results; only the touched accounting changes. Envelope
// staleness is one-directional by construction: after sealing, an element
// can only move from open to closed (the copy-on-close Replace), which makes
// a recorded maxTTEnd of Forever or anyCurrent of true conservative — a
// stale run is scanned, never wrongly skipped. Valid times and tt⊢ are
// immutable, so those bounds stay exact.
//
// Compaction is scheduled by class: the catalog's advisor loop seals runs
// only on relations whose live organization is the vt-ordered log — the
// append-only designs of §3.1/§3.2, where the prefix is stable by promise.
// General relations keep today's behavior (no runs unless a caller opts in).

// runSize is how many elements a sealed run covers. Large enough that the
// per-run metadata is amortized, small enough that a zone-map miss wastes
// little work.
const runSize = 256

// runMeta is one sealed run: elements [start, start+n) of the backing log.
type runMeta struct {
	start, n int
	ttLo     chronon.Chronon // min tt⊢ (first element; logs are tt-ordered)
	ttHi     chronon.Chronon // max tt⊢ (last element)
	maxTTEnd chronon.Chronon // max tt⊣ at seal time (Forever while any open)
	vtLo     chronon.Chronon // min valid-time start
	vtHi     chronon.Chronon // max exclusive valid-time end
	anyOpen  bool            // any element still current at seal time
	packed   []byte          // delta-encoded timestamp columns
	sum      uint32          // CRC32C of packed, fixed at seal time
}

// snapRuns full-caps the sealed-run slice for a snapshot, so a later Compact
// on the live store appends outside the snapshot's view.
func snapRuns(runs []runMeta) []runMeta {
	n := len(runs)
	return runs[:n:n]
}

// covered reports how many leading elements the sealed runs account for.
func covered(runs []runMeta) int {
	if len(runs) == 0 {
		return 0
	}
	last := runs[len(runs)-1]
	return last.start + last.n
}

// sealRun builds the metadata and packed image for elems[start : start+n].
func sealRun(elems []*element.Element, start, n int) runMeta {
	r := runMeta{
		start: start, n: n,
		ttLo:     elems[start].TTStart,
		ttHi:     elems[start+n-1].TTStart,
		maxTTEnd: chronon.MinChronon,
		vtLo:     chronon.MaxChronon,
		vtHi:     chronon.MinChronon,
	}
	for _, e := range elems[start : start+n] {
		r.maxTTEnd = chronon.Max(r.maxTTEnd, e.TTEnd)
		r.vtLo = chronon.Min(r.vtLo, e.VT.Start())
		r.vtHi = chronon.Max(r.vtHi, exclusiveEnd(e))
		if e.Current() {
			r.anyOpen = true
		}
	}
	r.packed = packColumns(elems[start : start+n])
	r.sum = crc32.Checksum(r.packed, runCastagnoli)
	return r
}

// packColumns delta-encodes the (tt⊢, tt⊣, vt⊢, vt⊣) columns of a run:
// per column, the first value is absolute and the rest are zigzag-varint
// deltas from their predecessor. Columnar order keeps each delta stream
// homogeneous — the tt column of a log is sorted, so its deltas are small
// and positive.
func packColumns(run []*element.Element) []byte {
	cols := [4]func(*element.Element) int64{
		func(e *element.Element) int64 { return int64(e.TTStart) },
		func(e *element.Element) int64 { return int64(e.TTEnd) },
		func(e *element.Element) int64 { return int64(e.VT.Start()) },
		func(e *element.Element) int64 { return int64(e.VT.End()) },
	}
	buf := make([]byte, 0, len(run)*6)
	var tmp [binary.MaxVarintLen64]byte
	for _, col := range cols {
		prev := int64(0)
		for i, e := range run {
			v := col(e)
			d := v - prev
			if i == 0 {
				d = v
			}
			buf = append(buf, tmp[:binary.PutVarint(tmp[:], d)]...)
			prev = v
		}
	}
	return buf
}

// unpackColumns inverts packColumns; n is the run length. It exists to prove
// the packed image is lossless (and to size a future disk format), not to
// serve queries — those read the elements directly.
func unpackColumns(packed []byte, n int) ([][4]int64, error) {
	tts, tte := make([]int64, n), make([]int64, n)
	vts, vte := make([]int64, n), make([]int64, n)
	if err := DecodeRunColumns(packed, n, tts, tte, vts, vte); err != nil {
		return nil, err
	}
	out := make([][4]int64, n)
	for i := range out {
		out[i] = [4]int64{tts[i], tte[i], vts[i], vte[i]}
	}
	return out, nil
}

// compactLog seals as many full runs as the uncovered prefix allows,
// returning how many elements were newly sealed. The tail shorter than
// runSize stays unsealed — it is still growing.
func compactLog(elems []*element.Element, runs *[]runMeta) int {
	sealed := 0
	for start := covered(*runs); len(elems)-start >= runSize; start += runSize {
		*runs = append(*runs, sealRun(elems, start, runSize))
		sealed += runSize
	}
	return sealed
}

// Compact seals full runs over the stable prefix. Frozen snapshots refuse:
// they inherit the live store's runs instead.
func (s *TTLogStore) Compact() int {
	if s.frozen {
		return 0
	}
	return compactLog(s.elems, &s.runs)
}

// Compact seals full runs over the stable prefix.
func (s *VTLogStore) Compact() int {
	if s.frozen {
		return 0
	}
	return compactLog(s.elems, &s.runs)
}

// rollbackWithRuns is the run-aware shared rollback path: n is the length of
// the tt⊢ ≤ tt prefix (found by the caller's binary search). A sealed run
// whose recorded maximum tt⊣ is ≤ tt held only elements already closed by
// tt — nothing in it is present — so it is skipped for one probe.
func rollbackWithRuns(elems []*element.Element, runs []runMeta, tt chronon.Chronon, n int) ([]*element.Element, int) {
	var out []*element.Element
	touched := 0
	for _, r := range runs {
		if r.start >= n {
			return out, touched
		}
		if r.maxTTEnd <= tt {
			touched++
			continue
		}
		end := r.start + r.n
		if end > n {
			end = n
		}
		for _, e := range elems[r.start:end] {
			touched++
			if e.PresentAt(tt) {
				out = append(out, e)
			}
		}
	}
	if tail := covered(runs); tail < n {
		for _, e := range elems[tail:n] {
			touched++
			if e.PresentAt(tt) {
				out = append(out, e)
			}
		}
	}
	return out, touched
}

// vtRangeZoneMap is the run-aware valid-time scan for stores with no useful
// vt order (the tt log): runs whose valid-time envelope misses [lo, hi), or
// that held no open element when sealed, are skipped; everything else is
// scanned exactly as the flat path would.
func vtRangeZoneMap(elems []*element.Element, runs []runMeta, lo, hi chronon.Chronon) ([]*element.Element, int) {
	var out []*element.Element
	touched := 0
	for _, r := range runs {
		if !r.anyOpen || r.vtLo >= hi || r.vtHi <= lo {
			touched++
			continue
		}
		for _, e := range elems[r.start : r.start+r.n] {
			touched++
			if e.Current() && validAtRange(e, lo, hi) {
				out = append(out, e)
			}
		}
	}
	for _, e := range elems[covered(runs):] {
		touched++
		if e.Current() && validAtRange(e, lo, hi) {
			out = append(out, e)
		}
	}
	return out, touched
}

// vtRangeOrderedRuns is the run-aware valid-time search for the vt-ordered
// log. It binary-searches the elements for the start position exactly like
// the flat path (so the probe cost is unchanged), then during the forward
// walk skips any sealed run that held no open element when sealed, and
// stops early when a run's minimum start already passes hi.
func vtRangeOrderedRuns(elems []*element.Element, runs []runMeta, lo, hi chronon.Chronon) ([]*element.Element, int) {
	n := len(elems)
	start := sort.Search(n, func(i int) bool { return exclusiveEnd(elems[i]) > lo })
	var out []*element.Element
	touched := 1 // the binary-search probe
	cov := covered(runs)
	ri := sort.Search(len(runs), func(i int) bool { return runs[i].start+runs[i].n > start })
	i := start
	for i < n {
		if i < cov {
			r := runs[ri]
			ri++
			if r.vtLo >= hi {
				return out, touched
			}
			if !r.anyOpen {
				touched++
				i = r.start + r.n
				continue
			}
			for end := r.start + r.n; i < end; i++ {
				e := elems[i]
				touched++
				if e.VT.Start() >= hi {
					return out, touched
				}
				if e.Current() && validAtRange(e, lo, hi) {
					out = append(out, e)
				}
			}
			continue
		}
		e := elems[i]
		touched++
		if e.VT.Start() >= hi {
			break
		}
		if e.Current() && validAtRange(e, lo, hi) {
			out = append(out, e)
		}
		i++
	}
	return out, touched
}

// Compacter is implemented by stores that can seal frozen runs.
type Compacter interface {
	// Compact seals full runs over the stable prefix and returns how many
	// elements were newly sealed.
	Compact() int
}

// CompactionStats reports a store's sealing state.
type CompactionStats struct {
	Runs        int   // sealed runs
	Sealed      int   // elements inside sealed runs
	PackedBytes int64 // delta-encoded size of the sealed timestamp columns
}

// Compaction reports the sealing state of st (zero for organizations that
// do not seal).
func Compaction(st Store) CompactionStats {
	var runs []runMeta
	switch s := st.(type) {
	case *TTLogStore:
		runs = s.runs
	case *VTLogStore:
		runs = s.runs
	default:
		return CompactionStats{}
	}
	cs := CompactionStats{Runs: len(runs), Sealed: covered(runs)}
	for _, r := range runs {
		cs.PackedBytes += int64(len(r.packed))
	}
	return cs
}

// flatStampBytes is the uncompacted width of one element's four timestamps.
const flatStampBytes = 4 * 8

// StoreBytes reports the store's timestamp-column footprint in bytes: sealed
// runs cost their delta-encoded size, unsealed elements their flat width.
// This is the byte measure the S6 experiment records per class — it is the
// portion of the layout that physical design actually changes (tuple data is
// organization-independent).
func StoreBytes(st Store) int64 {
	cs := Compaction(st)
	return cs.PackedBytes + int64(st.Len()-cs.Sealed)*flatStampBytes
}
