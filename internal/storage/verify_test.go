package storage

import (
	"testing"

	"repro/internal/chronon"
	"repro/internal/element"
	"repro/internal/surrogate"
)

func sealedTTLog(t *testing.T, n int) *TTLogStore {
	t.Helper()
	st := NewTTLog()
	for i := 0; i < n; i++ {
		tt := chronon.Chronon(10 * (i + 1))
		e := &element.Element{ES: surrogate.Surrogate(i + 1), OS: 1,
			TTStart: tt, TTEnd: chronon.Forever, VT: element.EventAt(tt)}
		if err := st.Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	if sealed := st.Compact(); sealed == 0 {
		t.Fatal("nothing sealed")
	}
	return st
}

// TestVerifyRunsCorruptionMatrix is the frozen-run leg of the corruption
// matrix: flipping one bit of every byte of every sealed run's packed
// image must be detected, and pristine runs must pass.
func TestVerifyRunsCorruptionMatrix(t *testing.T) {
	st := sealedTTLog(t, 3*runSize+17)
	if bad := VerifyRuns(st); len(bad) != 0 {
		t.Fatalf("false positive on clean store: %v", bad)
	}
	nruns := Compaction(st).Runs
	if nruns != 3 {
		t.Fatalf("runs = %d", nruns)
	}
	for ri := 0; ri < nruns; ri++ {
		size := int(SealedBytes(st)) / nruns
		for off := 0; off < size; off++ {
			if !CorruptRun(st, ri, off, uint8(off%8)) {
				t.Fatalf("corrupt run %d failed", ri)
			}
			bad := VerifyRuns(st)
			if len(bad) != 1 || bad[0].Run != ri {
				t.Fatalf("run %d byte %d: flips detected = %v", ri, off, bad)
			}
			// Repair rebuilds from the elements and the store passes again.
			if n := ResealRuns(st, []int{ri}); n != 1 {
				t.Fatalf("reseal repaired %d runs", n)
			}
			if bad := VerifyRuns(st); len(bad) != 0 {
				t.Fatalf("run %d byte %d: damage survived reseal: %v", ri, off, bad)
			}
		}
	}
}

// TestVerifyRunsPostRepairAnswers proves the repaired store answers
// exactly like an undamaged twin (history equals the acked prefix).
func TestVerifyRunsPostRepairAnswers(t *testing.T) {
	st := sealedTTLog(t, 2*runSize)
	twin := sealedTTLog(t, 2*runSize)
	CorruptRun(st, 1, 7, 3)
	bad := VerifyRuns(st)
	if len(bad) != 1 {
		t.Fatalf("bad = %v", bad)
	}
	ResealRuns(st, []int{bad[0].Run})
	if got := VerifyRuns(st); len(got) != 0 {
		t.Fatalf("still damaged: %v", got)
	}
	gotTS, _ := st.Timeslice(chronon.Chronon(10 * runSize))
	wantTS, _ := twin.Timeslice(chronon.Chronon(10 * runSize))
	if !sameIDs(elemIDs(gotTS), elemIDs(wantTS)) {
		t.Fatal("timeslice diverged after repair")
	}
	gotRB, _ := st.Rollback(chronon.Chronon(10 * runSize))
	wantRB, _ := twin.Rollback(chronon.Chronon(10 * runSize))
	if !sameIDs(elemIDs(gotRB), elemIDs(wantRB)) {
		t.Fatal("rollback diverged after repair")
	}
}

func TestVerifyRunsNonSealingStores(t *testing.T) {
	st := NewHeap()
	if VerifyRuns(st) != nil || ResealRuns(st, []int{0}) != 0 || SealedBytes(st) != 0 {
		t.Fatal("heap store reported sealed-run state")
	}
	if CorruptRun(st, 0, 0, 0) {
		t.Fatal("corrupted a run on a non-sealing store")
	}
}
