package storage

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/chronon"
	"repro/internal/element"
	"repro/internal/surrogate"
)

func TestBtreeInsertAndScanAll(t *testing.T) {
	tr := newBtree()
	const n = 1000
	perm := rand.New(rand.NewSource(3)).Perm(n)
	for _, v := range perm {
		e := ev(int64(v), int64(v))
		tr.insert(chronon.Chronon(v), e)
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d", tr.Len())
	}
	var got []int64
	tr.scanRange(chronon.MinChronon, chronon.MaxChronon, func(e *element.Element) bool {
		got = append(got, int64(e.VT.Start()))
		return true
	})
	if len(got) != n {
		t.Fatalf("scan returned %d entries", len(got))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("scan not in key order")
	}
}

func TestBtreeDuplicateVTs(t *testing.T) {
	tr := newBtree()
	for i := 0; i < 100; i++ {
		tr.insert(42, ev(int64(i), 42))
	}
	count := 0
	tr.scanRange(42, 43, func(*element.Element) bool {
		count++
		return true
	})
	if count != 100 {
		t.Fatalf("found %d of 100 duplicates", count)
	}
}

func TestBtreeRangeAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := newBtree()
	var ref []int64
	for i := 0; i < 3000; i++ {
		v := int64(rng.Intn(500))
		tr.insert(chronon.Chronon(v), ev(int64(i), v))
		ref = append(ref, v)
	}
	sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
	for trial := 0; trial < 200; trial++ {
		lo := int64(rng.Intn(520) - 10)
		hi := lo + int64(rng.Intn(100))
		want := 0
		for _, v := range ref {
			if v >= lo && v < hi {
				want++
			}
		}
		got := 0
		touched := tr.scanRange(chronon.Chronon(lo), chronon.Chronon(hi), func(*element.Element) bool {
			got++
			return true
		})
		if got != want {
			t.Fatalf("range [%d,%d): got %d, want %d", lo, hi, got, want)
		}
		if touched > want+64 {
			t.Fatalf("range [%d,%d): touched %d for %d results", lo, hi, touched, want)
		}
	}
}

func TestBtreeScanEarlyStop(t *testing.T) {
	tr := newBtree()
	for i := 0; i < 200; i++ {
		tr.insert(chronon.Chronon(i), ev(int64(i), int64(i)))
	}
	count := 0
	tr.scanRange(0, 200, func(*element.Element) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestIndexedEventStore(t *testing.T) {
	idx := NewIndexedEvent()
	heap := NewHeap()
	const n = 2000
	for i := int64(0); i < n; i++ {
		// Shuffled valid times: a general (unordered) relation.
		vt := (i * 7919) % 10007
		e := ev(i*10, vt)
		if err := idx.Insert(e); err != nil {
			t.Fatal(err)
		}
		if err := heap.Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	if idx.Len() != n || idx.Kind() != Heap {
		t.Fatal("Len/Kind wrong")
	}
	for _, q := range []int64{0, 5003, 9999, 12345} {
		a, aTouched := idx.Timeslice(chronon.Chronon(q))
		b, bTouched := heap.Timeslice(chronon.Chronon(q))
		if !sameElems(a, b) {
			t.Fatalf("timeslice(%d) disagrees with heap", q)
		}
		if aTouched >= bTouched {
			t.Errorf("timeslice(%d): index touched %d ≥ heap %d", q, aTouched, bTouched)
		}
	}
	a, _ := idx.VTRange(1000, 2000)
	b, _ := heap.VTRange(1000, 2000)
	if !sameElems(a, b) {
		t.Fatal("range disagrees with heap")
	}
	ra, _ := idx.Rollback(5000)
	rb, _ := heap.Rollback(5000)
	if !sameElems(ra, rb) {
		t.Fatal("rollback disagrees with heap")
	}
	cnt := 0
	idx.Scan(func(*element.Element) bool { cnt++; return true })
	if cnt != n {
		t.Fatalf("scan visited %d", cnt)
	}
}

func TestIndexedEventStoreRejectsIntervals(t *testing.T) {
	idx := NewIndexedEvent()
	e := &element.Element{ES: surrogate.Surrogate(1), OS: 1, TTStart: 0,
		TTEnd: chronon.Forever, VT: element.SpanOf(0, 10)}
	if err := idx.Insert(e); err == nil {
		t.Fatal("interval element accepted")
	}
	if errIntervalIndexed.Error() == "" {
		t.Fatal("error message empty")
	}
}

func TestIndexedStoreSeesDeletions(t *testing.T) {
	idx := NewIndexedEvent()
	e := ev(10, 100)
	if err := idx.Insert(e); err != nil {
		t.Fatal(err)
	}
	if got, _ := idx.Timeslice(100); len(got) != 1 {
		t.Fatal("element not found")
	}
	e.TTEnd = 20 // logical deletion
	if got, _ := idx.Timeslice(100); len(got) != 0 {
		t.Fatal("deleted element still visible in timeslice")
	}
	if got, _ := idx.Rollback(15); len(got) != 1 {
		t.Fatal("rollback before deletion lost the element")
	}
}
