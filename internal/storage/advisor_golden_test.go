package storage_test

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/element"
	"repro/internal/storage"
)

// referenceAdvise is a frozen transcription of the advisor's original
// declaration-driven switch. The advisor now derives its choice from the
// planner's cost model; this reference pins the decision (store and
// reasons) so a cost-model change that silently flips any advice fails
// loudly here instead of surfacing as a plan regression downstream.
func referenceAdvise(classes []core.Class, stampKind element.TimestampKind) storage.Advice {
	has := make(map[core.Class]bool, len(classes))
	for _, c := range classes {
		has[c] = true
		for _, a := range core.Ancestors(c) {
			has[a] = true
		}
	}
	switch {
	case has[core.Degenerate]:
		return storage.Advice{Store: storage.VTOrdered, Reasons: []string{
			"degenerate: vt = tt, so the relation is append-only in a single shared order",
			"treat as a rollback relation; the tt log doubles as a vt index",
		}}
	case stampKind == element.EventStamp && has[core.GloballySequentialEvents]:
		return storage.Advice{Store: storage.VTOrdered, Reasons: []string{
			"globally sequential: valid time approximates transaction time",
			"append-only log supports historical as well as rollback queries",
		}}
	case stampKind == element.EventStamp && has[core.GloballyNonDecreasingEvents]:
		return storage.Advice{Store: storage.VTOrdered, Reasons: []string{
			"globally non-decreasing: elements arrive in valid time-stamp order",
		}}
	case stampKind == element.IntervalStamp && has[core.GloballySequentialIntervals]:
		return storage.Advice{Store: storage.VTOrdered, Reasons: []string{
			"globally sequential intervals: non-overlapping and entered in order",
			"interval starts and ends are both non-decreasing; binary search is sound",
		}}
	}
	reasons := []string{
		"no valid-time ordering declared: valid-time queries must scan",
		"tt-ordered arrival log still accelerates rollback",
	}
	if stampKind == element.EventStamp && has[core.StronglyBounded] {
		reasons = append(reasons,
			"two-sided bound declared: enable tt-window pushdown for valid-time queries (EnableBoundedPushdown)")
	}
	return storage.Advice{Store: storage.TTOrdered, Reasons: reasons}
}

// TestAdviseGolden walks the powerset of the classes that drive the
// advisor's decision — plus a few that must not — crossed with both stamp
// kinds, and requires the cost-driven advisor to reproduce the reference
// decision exactly.
func TestAdviseGolden(t *testing.T) {
	drivers := []core.Class{
		core.Degenerate,
		core.StronglyBounded,
		core.GloballySequentialEvents,
		core.GloballyNonDecreasingEvents,
		core.GloballySequentialIntervals,
	}
	// Inert passengers: these never change the advice on their own but
	// ride along to prove set membership, not set size, drives the choice.
	passengers := [][]core.Class{
		nil,
		{core.Retroactive},
		{core.TTEventRegular, core.STMeets},
	}
	for mask := 0; mask < 1<<len(drivers); mask++ {
		var base []core.Class
		for i, c := range drivers {
			if mask&(1<<i) != 0 {
				base = append(base, c)
			}
		}
		for _, extra := range passengers {
			classes := append(append([]core.Class{}, base...), extra...)
			for _, stamp := range []element.TimestampKind{element.EventStamp, element.IntervalStamp} {
				name := fmt.Sprintf("mask=%05b/extra=%d/stamp=%v", mask, len(extra), stamp)
				t.Run(name, func(t *testing.T) {
					got := storage.Advise(classes, stamp)
					want := referenceAdvise(classes, stamp)
					if got.Store != want.Store {
						t.Fatalf("Advise(%v, %v).Store = %v, want %v", classes, stamp, got.Store, want.Store)
					}
					if !reflect.DeepEqual(got.Reasons, want.Reasons) {
						t.Errorf("Advise(%v, %v).Reasons =\n  %q\nwant\n  %q", classes, stamp, got.Reasons, want.Reasons)
					}
				})
			}
		}
	}
}

// TestAdviseSpecializationImplication checks that declaring a class
// specialized below a driver still triggers the driver's rule: the
// delayed strongly-retroactively-bounded class generalizes to strongly
// bounded, which licenses the pushdown on the general store.
func TestAdviseSpecializationImplication(t *testing.T) {
	a := storage.Advise([]core.Class{core.DelayedStronglyRetroactivelyBounded}, element.EventStamp)
	if a.Store != storage.TTOrdered {
		t.Fatalf("store = %v, want %v", a.Store, storage.TTOrdered)
	}
	found := false
	for _, r := range a.Reasons {
		if r == "two-sided bound declared: enable tt-window pushdown for valid-time queries (EnableBoundedPushdown)" {
			found = true
		}
	}
	if !found {
		t.Errorf("pushdown reason missing from %q", a.Reasons)
	}
}
