package storage

import (
	"sort"

	"repro/internal/chronon"
	"repro/internal/element"
)

// btree is an in-memory B-tree over (valid time, element surrogate) keys —
// the secondary valid-time index a *general* temporal relation must
// maintain to answer historical queries in logarithmic time. Specialized
// relations get the same access path for free from their arrival order
// (see VTLogStore); the B-tree exists to price the alternative honestly:
// every insert pays tree maintenance, every query pays tree descent.
type btree struct {
	root *bnode
	size int
}

// degree is the minimum number of children of an internal node (except the
// root); nodes hold between degree-1 and 2*degree-1 keys.
const degree = 16

type bkey struct {
	vt chronon.Chronon
	es uint64 // tiebreaker: surrogates are unique
}

func (a bkey) less(b bkey) bool {
	if a.vt != b.vt {
		return a.vt < b.vt
	}
	return a.es < b.es
}

type bnode struct {
	keys     []bkey
	vals     []*element.Element
	children []*bnode // nil for leaves
}

func (n *bnode) leaf() bool { return n.children == nil }

func newBtree() *btree { return &btree{root: &bnode{}} }

// Len reports the number of stored entries.
func (t *btree) Len() int { return t.size }

// insert adds an entry. Keys are unique by construction (the surrogate
// tiebreaker), so duplicates cannot arise.
func (t *btree) insert(vt chronon.Chronon, e *element.Element) {
	k := bkey{vt: vt, es: uint64(e.ES)}
	if len(t.root.keys) == 2*degree-1 {
		old := t.root
		t.root = &bnode{children: []*bnode{old}}
		t.root.splitChild(0)
	}
	t.root.insertNonFull(k, e)
	t.size++
}

// splitChild splits the full child at index i, lifting its median into n.
func (n *bnode) splitChild(i int) {
	child := n.children[i]
	mid := degree - 1
	right := &bnode{
		keys: append([]bkey(nil), child.keys[mid+1:]...),
		vals: append([]*element.Element(nil), child.vals[mid+1:]...),
	}
	if !child.leaf() {
		right.children = append([]*bnode(nil), child.children[mid+1:]...)
		child.children = child.children[:mid+1]
	}
	upKey, upVal := child.keys[mid], child.vals[mid]
	child.keys = child.keys[:mid]
	child.vals = child.vals[:mid]

	n.keys = append(n.keys, bkey{})
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = upKey
	n.vals = append(n.vals, nil)
	copy(n.vals[i+1:], n.vals[i:])
	n.vals[i] = upVal
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
}

func (n *bnode) insertNonFull(k bkey, e *element.Element) {
	i := len(n.keys)
	for i > 0 && k.less(n.keys[i-1]) {
		i--
	}
	if n.leaf() {
		n.keys = append(n.keys, bkey{})
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = k
		n.vals = append(n.vals, nil)
		copy(n.vals[i+1:], n.vals[i:])
		n.vals[i] = e
		return
	}
	if len(n.children[i].keys) == 2*degree-1 {
		n.splitChild(i)
		if n.keys[i].less(k) {
			i++
		}
	}
	n.children[i].insertNonFull(k, e)
}

// replace swaps the value stored under k for e. Keys are unique (surrogate
// tiebreaker) so at most one slot changes; a missing key is a no-op.
func (t *btree) replace(k bkey, e *element.Element) {
	for n := t.root; n != nil; {
		i := sort.Search(len(n.keys), func(j int) bool { return !n.keys[j].less(k) })
		if i < len(n.keys) && n.keys[i] == k {
			n.vals[i] = e
			return
		}
		if n.leaf() {
			return
		}
		n = n.children[i]
	}
}

// scanRange visits entries with lo ≤ vt < hi in key order, calling visit
// for each; it returns the number of keys examined (the query's cost). The
// visit function returns false to stop early.
func (t *btree) scanRange(lo, hi chronon.Chronon, visit func(*element.Element) bool) int {
	touched := 0
	var walk func(n *bnode) bool
	walk = func(n *bnode) bool {
		// Find the first key that might be ≥ lo.
		i := 0
		for i < len(n.keys) && n.keys[i].vt < lo {
			i++
			touched++
		}
		for ; i <= len(n.keys); i++ {
			if !n.leaf() {
				if !walk(n.children[i]) {
					return false
				}
			}
			if i == len(n.keys) {
				break
			}
			touched++
			if n.keys[i].vt >= hi {
				return false
			}
			if !visit(n.vals[i]) {
				return false
			}
		}
		return true
	}
	walk(t.root)
	return touched
}

// IndexedEventStore is a heap store for *event* relations augmented with a
// B-tree valid-time index — the physical design a general relation needs
// to make historical queries fast. It answers time-slice and range queries
// in O(log n + answer) like the specialized vt-ordered log, but pays index
// maintenance on every insert and stores the index alongside the data.
type IndexedEventStore struct {
	heap  HeapStore
	index *btree
}

// NewIndexedEvent returns an empty indexed store.
func NewIndexedEvent() *IndexedEventStore {
	return &IndexedEventStore{index: newBtree()}
}

// Kind reports Heap: logically the data sits in a heap; the index is an
// auxiliary structure.
func (s *IndexedEventStore) Kind() Kind { return Heap }

// Len reports the number of stored elements.
func (s *IndexedEventStore) Len() int { return s.heap.Len() }

// Insert appends the element and maintains the index. Interval-stamped
// elements are rejected: a start-keyed index cannot answer interval
// stabbing queries (that would need an augmented structure), and the
// advisor never pairs this store with interval relations.
func (s *IndexedEventStore) Insert(e *element.Element) error {
	vt, ok := e.VT.Event()
	if !ok {
		return errIntervalIndexed
	}
	if err := s.heap.Insert(e); err != nil {
		return err
	}
	s.index.insert(vt, e)
	return nil
}

var errIntervalIndexed = errInterval{}

type errInterval struct{}

func (errInterval) Error() string {
	return "storage: indexed event store cannot hold interval-stamped elements"
}

// Scan visits every element in arrival order.
func (s *IndexedEventStore) Scan(visit func(*element.Element) bool) int {
	return s.heap.Scan(visit)
}

// Timeslice answers via the index.
func (s *IndexedEventStore) Timeslice(vt chronon.Chronon) ([]*element.Element, int) {
	return s.VTRange(vt, vt.Add(1))
}

// VTRange answers via the index.
func (s *IndexedEventStore) VTRange(lo, hi chronon.Chronon) ([]*element.Element, int) {
	var out []*element.Element
	touched := s.index.scanRange(lo, hi, func(e *element.Element) bool {
		if e.Current() {
			out = append(out, e)
		}
		return true
	})
	return out, touched
}

// Rollback scans the heap (arrival order is tt order, so the prefix trick
// of TTLogStore would apply; the heap keeps this store's baseline honest).
func (s *IndexedEventStore) Rollback(tt chronon.Chronon) ([]*element.Element, int) {
	return s.heap.Rollback(tt)
}

// Snapshot shares the heap's backing array O(1) and rebuilds a private
// B-tree over it. The rebuild is O(n log n), acceptable because the
// advisor never selects this organization (it exists to price the
// general-relation alternative); only explicit engine overrides pay it.
func (s *IndexedEventStore) Snapshot() Store {
	s.heap.shared = true
	cp := &IndexedEventStore{
		heap:  HeapStore{elems: snapTail(s.heap.elems), frozen: true},
		index: newBtree(),
	}
	for _, e := range cp.heap.elems {
		if vt, ok := e.VT.Event(); ok {
			cp.index.insert(vt, e)
		}
	}
	return cp
}

// Replace swaps repl for old in the heap and repoints the index slot in
// place. Snapshots carry private B-trees, so the in-place index edit is
// invisible to any pinned view.
func (s *IndexedEventStore) Replace(old, repl *element.Element) {
	s.heap.Replace(old, repl)
	if vt, ok := old.VT.Event(); ok {
		s.index.replace(bkey{vt: vt, es: uint64(old.ES)}, repl)
	}
}
