// Package storage provides physical organizations for temporal relations
// and an advisor that selects among them based on declared temporal
// specializations.
//
// This realizes the paper's claimed benefit (§1): "The additional
// semantics, when captured by an appropriately extended database system,
// may be used for selecting appropriate storage structures, indexing
// techniques, and query processing strategies" — and the concrete §3.1
// observation that "at the implementation level, a degenerate temporal
// relation can be advantageously treated as a rollback relation due to the
// fact that relations are append-only and elements are entered in
// time-stamp order", plus the §3.2 observation that in globally sequential
// relations "valid time can be approximated with transaction time,
// yielding an append-only relation that can support historical (as well as
// transaction time) queries."
//
// Every access path reports how many elements it touched, so the benefit
// of a specialized organization is directly measurable.
package storage

import (
	"fmt"
	"sort"

	"repro/internal/chronon"
	"repro/internal/element"
)

// Kind identifies a physical organization.
type Kind uint8

const (
	// Heap stores elements in arrival order and assumes nothing: every
	// query scans the whole store. This is the only safe organization for
	// a general temporal relation without auxiliary indexes.
	Heap Kind = iota
	// TTOrdered keeps elements ordered by insertion transaction time
	// (which the engine produces naturally): rollback queries binary-
	// search the prefix; valid-time queries still scan.
	TTOrdered
	// VTOrdered additionally relies on a declared non-decreasing
	// specialization: elements arrive in valid-time order, so the store
	// is simultaneously tt- and vt-ordered and valid-time queries
	// binary-search. Interval relations additionally need sequentiality
	// (non-overlap) for point lookups to be complete.
	VTOrdered
)

// String names the kind. Unknown values yield the stable token "unknown"
// rather than a formatted ordinal, so the name can cross the wire and come
// back through ParseKind without the two ends having to agree on the enum's
// width.
func (k Kind) String() string {
	switch k {
	case Heap:
		return "heap"
	case TTOrdered:
		return "tt-ordered log"
	case VTOrdered:
		return "vt-ordered log"
	}
	return "unknown"
}

// Kinds lists every physical organization, in preference-neutral order.
func Kinds() []Kind { return []Kind{Heap, TTOrdered, VTOrdered} }

// ParseKind inverts String: it maps a wire token back to the kind. The
// "unknown" token (and anything else unrecognized) is an error — a client
// must not mistake a newer server's organization for one it knows.
func ParseKind(s string) (Kind, error) {
	for _, k := range Kinds() {
		if k.String() == s {
			return k, nil
		}
	}
	return Heap, fmt.Errorf("storage: unknown organization %q", s)
}

// Store is a physical organization of a temporal relation's elements.
// Implementations are not safe for concurrent mutation.
type Store interface {
	Kind() Kind
	Len() int
	// Insert appends a newly stored element. Elements must arrive in
	// non-decreasing tt⊢ order (the engine's natural order); VTOrdered
	// additionally requires non-decreasing valid-time order and returns an
	// error when the assumption its specialization promised is broken.
	Insert(e *element.Element) error
	// Scan visits every element; it returns the number touched.
	Scan(visit func(*element.Element) bool) int
	// Timeslice returns the current elements valid at vt and the number of
	// elements touched to find them.
	Timeslice(vt chronon.Chronon) ([]*element.Element, int)
	// VTRange returns the current elements whose valid time intersects
	// [lo, hi) and the number touched.
	VTRange(lo, hi chronon.Chronon) ([]*element.Element, int)
	// Rollback returns the elements present at transaction time tt and the
	// number touched.
	Rollback(tt chronon.Chronon) ([]*element.Element, int)
	// Snapshot returns an immutable view of the store's current contents.
	// The snapshot shares the backing array with the live store (O(1) for
	// the log organizations); subsequent Inserts on the live store append
	// past the snapshot's bound and subsequent Replaces copy the backing
	// first, so the snapshot never observes a mutation. Inserting into a
	// snapshot is an error; Replacing in one panics.
	Snapshot() Store
	// Replace substitutes repl for old (matched by pointer identity) in
	// place. The engine uses it to publish copied-on-close elements: a
	// logical delete clones the element, finalizes TTEnd on the clone, and
	// swaps the clone in, leaving the original — still open — for any
	// pinned snapshot. A missing old is a no-op.
	Replace(old, repl *element.Element)
}

// errFrozenInsert rejects appends to a snapshot.
var errFrozenInsert = fmt.Errorf("storage: insert into a frozen snapshot")

// snapTail full-caps the prefix so a live-side append can never land
// inside the snapshot's view.
func snapTail(elems []*element.Element) []*element.Element {
	n := len(elems)
	return elems[:n:n]
}

// replaceShared performs the copy-when-shared pointer swap common to the
// slice-backed stores. Replacing inside a frozen snapshot is a bug in the
// caller (snapshots are immutable), so it trips loudly.
func replaceShared(elems []*element.Element, shared *bool, frozen bool, old, repl *element.Element) []*element.Element {
	if frozen {
		panic("storage: replace in a frozen snapshot")
	}
	if *shared {
		elems = append([]*element.Element(nil), elems...)
		*shared = false
	}
	for i, e := range elems {
		if e == old {
			elems[i] = repl
			break
		}
	}
	return elems
}

// Elements returns the store's elements in arrival order. For the
// slice-backed organizations this is the backing slice itself — callers
// must treat it as read-only, which is exactly the contract a Snapshot
// provides. Unknown implementations fall back to a Scan copy.
func Elements(st Store) []*element.Element {
	switch s := st.(type) {
	case *HeapStore:
		return s.elems
	case *TTLogStore:
		return s.elems
	case *VTLogStore:
		return s.elems
	case *IndexedEventStore:
		return s.heap.elems
	}
	out := make([]*element.Element, 0, st.Len())
	st.Scan(func(e *element.Element) bool { out = append(out, e); return true })
	return out
}

// exclusiveEnd returns the first chronon after the element's valid time:
// end for intervals, the event chronon plus one for events.
func exclusiveEnd(e *element.Element) chronon.Chronon {
	if c, ok := e.VT.Event(); ok {
		return c.Add(1)
	}
	return e.VT.End()
}

// validAtRange reports whether the element's valid time intersects [lo, hi).
func validAtRange(e *element.Element, lo, hi chronon.Chronon) bool {
	if c, ok := e.VT.Event(); ok {
		return lo <= c && c < hi
	}
	iv, _ := e.VT.Interval()
	return iv.Start < hi && lo < iv.End
}

// HeapStore is the general-purpose organization: arrival order, full scans.
type HeapStore struct {
	elems  []*element.Element
	shared bool // backing array visible to a snapshot; copy before in-place edits
	frozen bool // this store is a snapshot; mutation is a caller bug
}

// NewHeap returns an empty heap store.
func NewHeap() *HeapStore { return &HeapStore{} }

// Kind reports Heap.
func (s *HeapStore) Kind() Kind { return Heap }

// Len reports the number of stored elements.
func (s *HeapStore) Len() int { return len(s.elems) }

// Insert appends the element.
func (s *HeapStore) Insert(e *element.Element) error {
	if s.frozen {
		return errFrozenInsert
	}
	s.elems = append(s.elems, e)
	return nil
}

// Snapshot shares the backing array, O(1).
func (s *HeapStore) Snapshot() Store {
	s.shared = true
	return &HeapStore{elems: snapTail(s.elems), frozen: true}
}

// Replace swaps repl for old by pointer identity, copying the backing
// array first if a snapshot shares it.
func (s *HeapStore) Replace(old, repl *element.Element) {
	s.elems = replaceShared(s.elems, &s.shared, s.frozen, old, repl)
}

// Scan visits every element.
func (s *HeapStore) Scan(visit func(*element.Element) bool) int {
	for i, e := range s.elems {
		if !visit(e) {
			return i + 1
		}
	}
	return len(s.elems)
}

// Timeslice scans the whole store.
func (s *HeapStore) Timeslice(vt chronon.Chronon) ([]*element.Element, int) {
	return s.VTRange(vt, vt.Add(1))
}

// VTRange scans the whole store.
func (s *HeapStore) VTRange(lo, hi chronon.Chronon) ([]*element.Element, int) {
	var out []*element.Element
	for _, e := range s.elems {
		if e.Current() && validAtRange(e, lo, hi) {
			out = append(out, e)
		}
	}
	return out, len(s.elems)
}

// Rollback scans the whole store.
func (s *HeapStore) Rollback(tt chronon.Chronon) ([]*element.Element, int) {
	var out []*element.Element
	for _, e := range s.elems {
		if e.PresentAt(tt) {
			out = append(out, e)
		}
	}
	return out, len(s.elems)
}

// TTLogStore keeps elements in tt⊢ order (the engine's arrival order) and
// exploits it for rollback: the candidates are exactly the prefix with
// tt⊢ ≤ tt, found by binary search.
type TTLogStore struct {
	elems  []*element.Element
	shared bool
	frozen bool
	// runs are sealed, delta-encoded prefixes produced by Compact; their
	// min/max metadata lets queries skip whole runs (see compact.go).
	runs []runMeta
}

// NewTTLog returns an empty tt-ordered log store.
func NewTTLog() *TTLogStore { return &TTLogStore{} }

// Kind reports TTOrdered.
func (s *TTLogStore) Kind() Kind { return TTOrdered }

// Len reports the number of stored elements.
func (s *TTLogStore) Len() int { return len(s.elems) }

// Insert appends the element, verifying tt order.
func (s *TTLogStore) Insert(e *element.Element) error {
	if s.frozen {
		return errFrozenInsert
	}
	if n := len(s.elems); n > 0 && e.TTStart < s.elems[n-1].TTStart {
		return fmt.Errorf("storage: tt-ordered insert out of order (%v after %v)",
			e.TTStart, s.elems[n-1].TTStart)
	}
	s.elems = append(s.elems, e)
	return nil
}

// Snapshot shares the backing array, O(1). Sealed runs carry over (full-
// capped, so a later Compact on the live store appends past the snapshot's
// view): the published read path keeps the run-skipping benefit.
func (s *TTLogStore) Snapshot() Store {
	s.shared = true
	return &TTLogStore{elems: snapTail(s.elems), frozen: true, runs: snapRuns(s.runs)}
}

// Replace swaps repl for old by pointer identity; tt⊢ order is unchanged
// because a closed clone keeps its TTStart.
func (s *TTLogStore) Replace(old, repl *element.Element) {
	s.elems = replaceShared(s.elems, &s.shared, s.frozen, old, repl)
}

// Scan visits every element.
func (s *TTLogStore) Scan(visit func(*element.Element) bool) int {
	for i, e := range s.elems {
		if !visit(e) {
			return i + 1
		}
	}
	return len(s.elems)
}

// Timeslice scans the whole store: tt order says nothing about vt.
func (s *TTLogStore) Timeslice(vt chronon.Chronon) ([]*element.Element, int) {
	return s.VTRange(vt, vt.Add(1))
}

// VTRange scans the store; sealed runs act as zone maps — a run whose
// recorded valid-time envelope misses [lo, hi), or that held no current
// element when sealed, is skipped at the cost of one metadata probe.
func (s *TTLogStore) VTRange(lo, hi chronon.Chronon) ([]*element.Element, int) {
	if len(s.runs) == 0 {
		var out []*element.Element
		for _, e := range s.elems {
			if e.Current() && validAtRange(e, lo, hi) {
				out = append(out, e)
			}
		}
		return out, len(s.elems)
	}
	return vtRangeZoneMap(s.elems, s.runs, lo, hi)
}

// Rollback binary-searches for the prefix with tt⊢ ≤ tt and filters it for
// elements still present at tt. Without runs, touched is the prefix length;
// sealed runs whose every element was already closed by tt are skipped for
// one metadata probe each.
func (s *TTLogStore) Rollback(tt chronon.Chronon) ([]*element.Element, int) {
	n := sort.Search(len(s.elems), func(i int) bool { return s.elems[i].TTStart > tt })
	if len(s.runs) == 0 {
		var out []*element.Element
		for _, e := range s.elems[:n] {
			if e.PresentAt(tt) {
				out = append(out, e)
			}
		}
		return out, n
	}
	return rollbackWithRuns(s.elems, s.runs, tt, n)
}

// TTWindow returns the elements with lo ≤ tt⊢ ≤ hi, found by binary search
// on the insertion order. The touched count is the window size plus the
// probe. This is the access path that bounded specializations unlock: a
// declared lo ≤ vt − tt ≤ hi turns a valid-time predicate into exactly
// such a transaction-time window.
func (s *TTLogStore) TTWindow(lo, hi chronon.Chronon) ([]*element.Element, int) {
	start := sort.Search(len(s.elems), func(i int) bool { return s.elems[i].TTStart >= lo })
	var out []*element.Element
	touched := 1
	for i := start; i < len(s.elems) && s.elems[i].TTStart <= hi; i++ {
		out = append(out, s.elems[i])
		touched++
	}
	return out, touched
}

// VTLogStore relies on a declared non-decreasing specialization: arrival
// order is simultaneously tt order and valid-time order, so one append-only
// structure serves transaction-time and valid-time queries alike — the
// paper's append-only relation "that can support historical (as well as
// transaction time) queries". Insert enforces the promised order and fails
// loudly if the declaration was wrong.
type VTLogStore struct {
	elems  []*element.Element
	shared bool
	frozen bool
	// runs are sealed, delta-encoded prefixes produced by Compact; both the
	// tt and vt envelopes are valid binary-search keys here because the
	// store enforces both orders (see compact.go).
	runs []runMeta
}

// NewVTLog returns an empty vt-ordered log store.
func NewVTLog() *VTLogStore { return &VTLogStore{} }

// Kind reports VTOrdered.
func (s *VTLogStore) Kind() Kind { return VTOrdered }

// Len reports the number of stored elements.
func (s *VTLogStore) Len() int { return len(s.elems) }

// Snapshot shares the backing array, O(1); sealed runs carry over.
func (s *VTLogStore) Snapshot() Store {
	s.shared = true
	return &VTLogStore{elems: snapTail(s.elems), frozen: true, runs: snapRuns(s.runs)}
}

// Replace swaps repl for old by pointer identity; both orders are
// unchanged because a closed clone keeps its TTStart and valid time.
func (s *VTLogStore) Replace(old, repl *element.Element) {
	s.elems = replaceShared(s.elems, &s.shared, s.frozen, old, repl)
}

// Insert appends the element, verifying both orders.
func (s *VTLogStore) Insert(e *element.Element) error {
	if s.frozen {
		return errFrozenInsert
	}
	if n := len(s.elems); n > 0 {
		last := s.elems[n-1]
		if e.TTStart < last.TTStart {
			return fmt.Errorf("storage: vt-ordered insert out of tt order (%v after %v)",
				e.TTStart, last.TTStart)
		}
		if e.VT.Start() < last.VT.Start() {
			return fmt.Errorf("storage: vt-ordered insert out of vt order (%v after %v); "+
				"the non-decreasing declaration is violated", e.VT.Start(), last.VT.Start())
		}
	}
	s.elems = append(s.elems, e)
	return nil
}

// Scan visits every element.
func (s *VTLogStore) Scan(visit func(*element.Element) bool) int {
	for i, e := range s.elems {
		if !visit(e) {
			return i + 1
		}
	}
	return len(s.elems)
}

// Timeslice binary-searches the valid-time order.
func (s *VTLogStore) Timeslice(vt chronon.Chronon) ([]*element.Element, int) {
	return s.VTRange(vt, vt.Add(1))
}

// VTRange binary-searches for the first element that could intersect
// [lo, hi) and walks forward until starts pass hi. For interval elements
// the walk starts at the beginning of the run of intervals that may still
// cover lo; with a sequential (non-overlapping) relation that run has
// length ≤ 1, keeping the touched count near the answer size.
func (s *VTLogStore) VTRange(lo, hi chronon.Chronon) ([]*element.Element, int) {
	if len(s.runs) > 0 {
		return vtRangeOrderedRuns(s.elems, s.runs, lo, hi)
	}
	n := len(s.elems)
	// First index whose valid time may reach past lo. An event at c covers
	// the half-open [c, c+1), so its exclusive end is c+1; an interval's
	// end is already exclusive. For sequential intervals ends are
	// non-decreasing, so the predicate is monotone and binary search is
	// sound.
	start := sort.Search(n, func(i int) bool { return exclusiveEnd(s.elems[i]) > lo })
	var out []*element.Element
	touched := 0
	for i := start; i < n; i++ {
		e := s.elems[i]
		touched++
		if e.VT.Start() >= hi {
			break
		}
		if e.Current() && validAtRange(e, lo, hi) {
			out = append(out, e)
		}
	}
	return out, touched + 1 // +1 accounts for the binary-search probe cost
}

// Rollback binary-searches the tt order (shared with arrival order),
// skipping sealed runs that were wholly dead by tt.
func (s *VTLogStore) Rollback(tt chronon.Chronon) ([]*element.Element, int) {
	n := sort.Search(len(s.elems), func(i int) bool { return s.elems[i].TTStart > tt })
	if len(s.runs) == 0 {
		var out []*element.Element
		for _, e := range s.elems[:n] {
			if e.PresentAt(tt) {
				out = append(out, e)
			}
		}
		return out, n
	}
	return rollbackWithRuns(s.elems, s.runs, tt, n)
}
