package storage

import (
	"fmt"
	"hash/crc32"

	"repro/internal/element"
)

// Sealed-run verification and repair. A sealed run's packed image is
// checksummed at seal time; VerifyRuns re-checks every run against its
// recorded CRC and against a fresh decode, so bit rot in the packed
// columns is detected instead of silently mis-sizing StoreBytes or (in
// a future disk-resident layout) mis-answering queries. Because the
// elements themselves remain the ground truth, a damaged run is
// repairable in place: ResealRuns rebuilds it from the elements it
// covers.

// RunVerifyError describes one damaged sealed run.
type RunVerifyError struct {
	Run    int // index into the store's sealed-run sequence
	Reason string
}

func (e RunVerifyError) Error() string {
	return fmt.Sprintf("storage: sealed run %d: %s", e.Run, e.Reason)
}

// storeRuns exposes the sealed-run slice of the organizations that seal.
func storeRuns(st Store) *[]runMeta {
	switch s := st.(type) {
	case *TTLogStore:
		return &s.runs
	case *VTLogStore:
		return &s.runs
	}
	return nil
}

// VerifyRuns checks every sealed run of st: the packed image must match
// its seal-time CRC, decode cleanly, and agree element-for-element with
// the timestamps of the elements it covers. It returns one error per
// damaged run (empty for stores that do not seal). RunBytes the scrubber
// charges come from SealedBytes.
func VerifyRuns(st Store) []RunVerifyError {
	runsp := storeRuns(st)
	if runsp == nil {
		return nil
	}
	elems := Elements(st)
	var bad []RunVerifyError
	for i, r := range *runsp {
		if reason := verifyRun(r, elems); reason != "" {
			bad = append(bad, RunVerifyError{Run: i, Reason: reason})
		}
	}
	return bad
}

func verifyRun(r runMeta, elems []*element.Element) string {
	if crc32.Checksum(r.packed, runCastagnoli) != r.sum {
		return "packed image fails its checksum"
	}
	if r.start+r.n > len(elems) {
		return fmt.Sprintf("covers [%d,%d) beyond %d elements", r.start, r.start+r.n, len(elems))
	}
	cols, err := unpackColumns(r.packed, r.n)
	if err != nil {
		return fmt.Sprintf("packed image undecodable: %v", err)
	}
	for j, e := range elems[r.start : r.start+r.n] {
		got := cols[j]
		if got[0] != int64(e.TTStart) || got[1] != int64(e.TTEnd) ||
			got[2] != int64(e.VT.Start()) || got[3] != int64(e.VT.End()) {
			return fmt.Sprintf("row %d decodes to different timestamps", j)
		}
	}
	return ""
}

// ResealRuns rebuilds the given runs (by index) from the elements they
// cover — the elements are the ground truth, the packed image is a
// derived representation — and returns how many were rebuilt. Indexes
// out of range are ignored.
func ResealRuns(st Store, bad []int) int {
	runsp := storeRuns(st)
	if runsp == nil || len(bad) == 0 {
		return 0
	}
	elems := Elements(st)
	rebuilt := 0
	for _, i := range bad {
		if i < 0 || i >= len(*runsp) {
			continue
		}
		r := (*runsp)[i]
		if r.start+r.n > len(elems) {
			continue
		}
		(*runsp)[i] = sealRun(elems, r.start, r.n)
		rebuilt++
	}
	return rebuilt
}

// SealedBytes reports the packed-image byte size of st's sealed runs,
// the cost basis the scrubber's rate limiter charges for verifying them.
func SealedBytes(st Store) int64 {
	runsp := storeRuns(st)
	if runsp == nil {
		return 0
	}
	var n int64
	for _, r := range *runsp {
		n += int64(len(r.packed))
	}
	return n
}

// CorruptRun flips one bit inside the packed image of run i — a test
// hook for the corruption matrix and repair drills (the packed image is
// unexported, so tests cannot reach it directly). It reports whether a
// sealed run existed to corrupt.
func CorruptRun(st Store, i int, byteOff int, bit uint8) bool {
	runsp := storeRuns(st)
	if runsp == nil || i < 0 || i >= len(*runsp) {
		return false
	}
	r := (*runsp)[i]
	if len(r.packed) == 0 {
		return false
	}
	// Copy-on-write: snapshots may share the slice with the live store.
	p := append([]byte(nil), r.packed...)
	p[byteOff%len(p)] ^= 1 << (bit % 8)
	(*runsp)[i].packed = p
	return true
}
