package storage

// Snapshot semantics: a snapshot is an O(1) freeze of the store's current
// extension. Live inserts after the freeze never appear in it, a live
// Replace (copy-on-close of a deleted element) copies the shared backing
// instead of mutating what the snapshot sees, and the snapshot itself
// refuses mutation.

import (
	"testing"

	"repro/internal/chronon"
	"repro/internal/element"
)

func allStores() map[string]Store {
	return map[string]Store{
		"heap":    NewHeap(),
		"tt-log":  NewTTLog(),
		"vt-log":  NewVTLog(),
		"indexed": NewIndexedEvent(),
	}
}

func scanAll(s Store) []*element.Element {
	var out []*element.Element
	s.Scan(func(e *element.Element) bool {
		out = append(out, e)
		return true
	})
	return out
}

func TestSnapshotExcludesLaterInserts(t *testing.T) {
	for name, s := range allStores() {
		fill(t, s, ev(10, 1), ev(20, 2))
		snap := s.Snapshot()
		fill(t, s, ev(30, 3))
		if snap.Len() != 2 {
			t.Errorf("%s: snapshot Len = %d after live insert, want 2", name, snap.Len())
		}
		if s.Len() != 3 {
			t.Errorf("%s: live Len = %d, want 3", name, s.Len())
		}
	}
}

func TestSnapshotUnaffectedByLiveReplace(t *testing.T) {
	for name, s := range allStores() {
		open := ev(10, 1)
		fill(t, s, open, ev(20, 2))
		snap := s.Snapshot()

		// Copy-on-close: the live store swaps in the closed clone; the
		// snapshot must keep serving the open original.
		closed := open.Clone()
		closed.TTEnd = chronon.Chronon(30)
		s.Replace(open, closed)

		for _, e := range scanAll(snap) {
			if e == closed {
				t.Errorf("%s: snapshot sees the live replacement", name)
			}
		}
		found := false
		for _, e := range scanAll(s) {
			if e == closed {
				found = true
			}
			if e == open {
				t.Errorf("%s: live store still holds the replaced element", name)
			}
		}
		if !found {
			t.Errorf("%s: live store lost the replacement", name)
		}
	}
}

func TestSnapshotRefusesMutation(t *testing.T) {
	for name, s := range allStores() {
		fill(t, s, ev(10, 1))
		snap := s.Snapshot()
		if err := snap.Insert(ev(20, 2)); err == nil {
			t.Errorf("%s: Insert into frozen snapshot succeeded", name)
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Replace on frozen snapshot did not panic", name)
				}
			}()
			snap.Replace(ev(10, 1), ev(10, 1))
		}()
	}
}

func TestSnapshotAnswersQueriesLikeTheLiveStore(t *testing.T) {
	for name, s := range allStores() {
		fill(t, s, ev(10, 1), ev(20, 2), ev(30, 3))
		snap := s.Snapshot()
		live, _ := s.VTRange(0, 10)
		frozen, _ := snap.VTRange(0, 10)
		if !sameElems(live, frozen) {
			t.Errorf("%s: snapshot VTRange %v != live %v", name, ids(frozen), ids(live))
		}
		lr, _ := s.Rollback(25)
		fr, _ := snap.Rollback(25)
		if !sameElems(lr, fr) {
			t.Errorf("%s: snapshot Rollback %v != live %v", name, ids(fr), ids(lr))
		}
	}
}

func TestElementsReturnsBacking(t *testing.T) {
	for name, s := range allStores() {
		fill(t, s, ev(10, 1), ev(20, 2))
		els := Elements(s)
		if len(els) != 2 {
			t.Errorf("%s: Elements returned %d, want 2", name, len(els))
		}
	}
}
