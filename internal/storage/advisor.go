package storage

import (
	"repro/internal/core"
	"repro/internal/element"
	"repro/internal/plan"
)

// Advice is the advisor's physical-design recommendation for a relation
// with the given specializations. Source records what licensed the choice:
// "declared" (a declaration promises the ordering, the store may enforce
// it), "inferred" (only the observed extension exhibits it — sound for the
// data already stored, revocable by a future insert), or "default" (no
// specialization helped; the general organization won on cost alone).
type Advice struct {
	Store   Kind
	Reasons []string
	Source  string
}

// Advice sources.
const (
	SourceDeclared = "declared"
	SourceInferred = "inferred"
	SourceDefault  = "default"
)

// New instantiates the advised store.
func (a Advice) New() Store {
	switch a.Store {
	case VTOrdered:
		return NewVTLog()
	case TTOrdered:
		return NewTTLog()
	}
	return NewHeap()
}

// PlanOrg maps the storage kind onto the planner's organization
// vocabulary.
func (k Kind) PlanOrg() plan.Org {
	switch k {
	case TTOrdered:
		return plan.OrgTTLog
	case VTOrdered:
		return plan.OrgVTLog
	}
	return plan.OrgHeap
}

// adviseN is the representative relation size the advisor costs candidate
// organizations at. Any size large enough to separate logarithmic from
// linear access paths yields the same ranking.
const adviseN = 1 << 17

// nominalBoundSpan stands in for the (unknown at advise time) width of a
// declared offset bound's tt window: narrow enough that the pushdown beats
// a scan, wide enough that it never beats a true valid-time order.
const nominalBoundSpan = 1 << 10

// candidate is one physical organization the declarations license, with
// the paper's reasons for it.
type candidate struct {
	store    Kind
	reasons  []string
	bounded  bool // tt-window pushdown available (declared two-sided bound)
	inferred bool // licensed only by the observed extension, not a declaration
}

// mixCost prices the advisor's representative query mix — one historical
// time-slice plus one rollback — on the candidate via the shared planner,
// so the advice is derived from the very cost model the engine executes
// against and the two can never drift.
func (c candidate) mixCost() int {
	a := plan.Access{Org: c.store.PlanOrg(), N: adviseN}
	if c.bounded {
		a.HasOffsetBounds, a.OffsetLo, a.OffsetHi = true, 0, nominalBoundSpan
	}
	ts := plan.Build(a, plan.Query{Kind: plan.QTimeslice, VTLo: 0, VTHi: 1})
	rb := plan.Build(a, plan.Query{Kind: plan.QRollback})
	return ts.Leaf().Est + rb.Leaf().Est
}

// Advise maps declared specialization classes to a physical organization,
// following the paper's optimization remarks:
//
//   - A degenerate relation is append-only in a single shared order
//     (vt = tt), so one vt-ordered log serves every query kind (§3.1).
//   - A globally sequential or non-decreasing relation is entered in valid
//     time-stamp order, so the arrival log is simultaneously vt-ordered and
//     historical queries can binary-search it (§3.2). Interval relations
//     need sequentiality (non-overlap); mere non-decrease only orders the
//     starts, which suffices for events.
//   - Any other relation still benefits from the tt-ordered arrival log
//     for rollback queries, but valid-time queries must scan (or maintain
//     a separate index, whose cost the general design pays and the
//     specialized ones avoid).
//
// The declarations determine which organizations are sound; the choice
// among the sound ones is made by pricing a representative query mix with
// the planner's cost estimator (internal/plan), ties keeping the earlier,
// more specialized candidate. stampKind says whether the relation is
// event- or interval-stamped.
func Advise(classes []core.Class, stampKind element.TimestampKind) Advice {
	return AdviseAuto(classes, nil, stampKind)
}

// closure expands a class list into the set it implies: each class plus
// every generalization of it in the lattice.
func closure(classes []core.Class) map[core.Class]bool {
	has := make(map[core.Class]bool, len(classes))
	for _, c := range classes {
		has[c] = true
		for _, a := range core.Ancestors(c) {
			has[a] = true
		}
	}
	return has
}

// AdviseAuto is Advise with a second evidence channel: observed classes the
// extension tracker has verified hold for every element actually stored,
// without having been declared. Observed evidence licenses the same ordered
// organizations a declaration would — the data on hand provably satisfies
// the order — but it is weaker in two ways the result records: the advice is
// marked SourceInferred (a future insert may break the property, at which
// point the catalog re-advises and migrates back), and observed offset
// bounds never enable the tt-window pushdown, because a pushdown driven by
// a non-promise would silently miss out-of-bound elements.
func AdviseAuto(declared, observed []core.Class, stampKind element.TimestampKind) Advice {
	decl := closure(declared)
	has := closure(append(append([]core.Class{}, declared...), observed...))
	// spec builds the specialized candidate for the first rule that fires,
	// marking it inferred when no declaration licenses that rule's class.
	spec := func(c core.Class, reasons ...string) candidate {
		cand := candidate{store: VTOrdered, reasons: reasons, inferred: !decl[c]}
		if cand.inferred {
			cand.reasons = append(cand.reasons,
				"licensed by the observed extension, not a declaration (revocable)")
		}
		return cand
	}
	var cands []candidate
	// At most one rule licenses the vt-ordered log; the rule that fires
	// carries its own reasons.
	switch {
	case has[core.Degenerate]:
		cands = append(cands, spec(core.Degenerate,
			"degenerate: vt = tt, so the relation is append-only in a single shared order",
			"treat as a rollback relation; the tt log doubles as a vt index",
		))
	case stampKind == element.EventStamp && has[core.GloballySequentialEvents]:
		cands = append(cands, spec(core.GloballySequentialEvents,
			"globally sequential: valid time approximates transaction time",
			"append-only log supports historical as well as rollback queries",
		))
	case stampKind == element.EventStamp && has[core.GloballyNonDecreasingEvents]:
		cands = append(cands, spec(core.GloballyNonDecreasingEvents,
			"globally non-decreasing: elements arrive in valid time-stamp order",
		))
	case stampKind == element.IntervalStamp && has[core.GloballySequentialIntervals]:
		cands = append(cands, spec(core.GloballySequentialIntervals,
			"globally sequential intervals: non-overlapping and entered in order",
			"interval starts and ends are both non-decreasing; binary search is sound",
		))
	}
	// The general organizations are always sound: the tt-ordered arrival
	// log (with the pushdown when a two-sided bound is declared) and the
	// heap.
	general := candidate{store: TTOrdered, reasons: []string{
		"no valid-time ordering declared: valid-time queries must scan",
		"tt-ordered arrival log still accelerates rollback",
	}}
	if stampKind == element.EventStamp && decl[core.StronglyBounded] {
		general.bounded = true
		general.reasons = append(general.reasons,
			"two-sided bound declared: enable tt-window pushdown for valid-time queries (EnableBoundedPushdown)")
	}
	cands = append(cands, general, candidate{store: Heap})

	best := cands[0]
	bestCost := best.mixCost()
	for _, c := range cands[1:] {
		if cost := c.mixCost(); cost < bestCost {
			best, bestCost = c, cost
		}
	}
	source := SourceDefault
	switch {
	case best.inferred:
		source = SourceInferred
	case len(best.reasons) > 0 && best.store == VTOrdered, best.bounded:
		source = SourceDeclared
	}
	return Advice{Store: best.store, Reasons: best.reasons, Source: source}
}
