package storage

import (
	"repro/internal/core"
	"repro/internal/element"
)

// Advice is the advisor's physical-design recommendation for a relation
// with the given declared specializations.
type Advice struct {
	Store   Kind
	Reasons []string
}

// New instantiates the advised store.
func (a Advice) New() Store {
	switch a.Store {
	case VTOrdered:
		return NewVTLog()
	case TTOrdered:
		return NewTTLog()
	}
	return NewHeap()
}

// Advise maps declared specialization classes to a physical organization,
// following the paper's optimization remarks:
//
//   - A degenerate relation is append-only in a single shared order
//     (vt = tt), so one vt-ordered log serves every query kind (§3.1).
//   - A globally sequential or non-decreasing relation is entered in valid
//     time-stamp order, so the arrival log is simultaneously vt-ordered and
//     historical queries can binary-search it (§3.2). Interval relations
//     need sequentiality (non-overlap); mere non-decrease only orders the
//     starts, which suffices for events.
//   - Any other relation still benefits from the tt-ordered arrival log
//     for rollback queries, but valid-time queries must scan (or maintain
//     a separate index, whose cost the general design pays and the
//     specialized ones avoid).
//
// stampKind says whether the relation is event- or interval-stamped.
func Advise(classes []core.Class, stampKind element.TimestampKind) Advice {
	has := make(map[core.Class]bool, len(classes))
	for _, c := range classes {
		has[c] = true
		// Declaring a specialization implies every generalization of it.
		for _, a := range core.Ancestors(c) {
			has[a] = true
		}
	}
	switch {
	case has[core.Degenerate]:
		return Advice{Store: VTOrdered, Reasons: []string{
			"degenerate: vt = tt, so the relation is append-only in a single shared order",
			"treat as a rollback relation; the tt log doubles as a vt index",
		}}
	case stampKind == element.EventStamp && has[core.GloballySequentialEvents]:
		return Advice{Store: VTOrdered, Reasons: []string{
			"globally sequential: valid time approximates transaction time",
			"append-only log supports historical as well as rollback queries",
		}}
	case stampKind == element.EventStamp && has[core.GloballyNonDecreasingEvents]:
		return Advice{Store: VTOrdered, Reasons: []string{
			"globally non-decreasing: elements arrive in valid time-stamp order",
		}}
	case stampKind == element.IntervalStamp && has[core.GloballySequentialIntervals]:
		return Advice{Store: VTOrdered, Reasons: []string{
			"globally sequential intervals: non-overlapping and entered in order",
			"interval starts and ends are both non-decreasing; binary search is sound",
		}}
	default:
		reasons := []string{
			"no valid-time ordering declared: valid-time queries must scan",
			"tt-ordered arrival log still accelerates rollback",
		}
		if stampKind == element.EventStamp && has[core.StronglyBounded] {
			reasons = append(reasons,
				"two-sided bound declared: enable tt-window pushdown for valid-time queries (EnableBoundedPushdown)")
		}
		return Advice{Store: TTOrdered, Reasons: reasons}
	}
}
