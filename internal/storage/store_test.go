package storage

import (
	"strings"
	"testing"

	"repro/internal/chronon"
	"repro/internal/core"
	"repro/internal/element"
	"repro/internal/surrogate"
)

var esCounter uint64

func ev(tt, vt int64) *element.Element {
	esCounter++
	return &element.Element{
		ES: surrogate.Surrogate(esCounter), OS: 1,
		TTStart: chronon.Chronon(tt), TTEnd: chronon.Forever,
		VT: element.EventAt(chronon.Chronon(vt)),
	}
}

func iv(tt, vs, ve int64) *element.Element {
	esCounter++
	return &element.Element{
		ES: surrogate.Surrogate(esCounter), OS: 1,
		TTStart: chronon.Chronon(tt), TTEnd: chronon.Forever,
		VT: element.SpanOf(chronon.Chronon(vs), chronon.Chronon(ve)),
	}
}

func fill(t *testing.T, s Store, es ...*element.Element) {
	t.Helper()
	for _, e := range es {
		if err := s.Insert(e); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
}

func ids(es []*element.Element) []uint64 {
	out := make([]uint64, len(es))
	for i, e := range es {
		out[i] = uint64(e.ES)
	}
	return out
}

func sameElems(a, b []*element.Element) bool {
	if len(a) != len(b) {
		return false
	}
	seen := make(map[*element.Element]int)
	for _, e := range a {
		seen[e]++
	}
	for _, e := range b {
		if seen[e] == 0 {
			return false
		}
		seen[e]--
	}
	return true
}

func TestStoresAgreeOnResults(t *testing.T) {
	// A sequential event workload: all three stores must return identical
	// answers; only the touched counts differ.
	build := func() []*element.Element {
		var es []*element.Element
		for i := int64(0); i < 100; i++ {
			es = append(es, ev(100+i*10, 95+i*10))
		}
		return es
	}
	heap, ttlog, vtlog := NewHeap(), NewTTLog(), NewVTLog()
	for _, e := range build() {
		if err := heap.Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	fill(t, ttlog, heap.elems...)
	for _, e := range heap.elems {
		if err := vtlog.Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	// Mark a few deleted.
	heap.elems[10].TTEnd = 500
	heap.elems[50].TTEnd = 800

	queries := []int64{0, 95, 95 + 37*10, 95 + 99*10, 5000}
	for _, q := range queries {
		hRes, hTouched := heap.Timeslice(chronon.Chronon(q))
		tRes, _ := ttlog.Timeslice(chronon.Chronon(q))
		vRes, vTouched := vtlog.Timeslice(chronon.Chronon(q))
		if !sameElems(hRes, tRes) || !sameElems(hRes, vRes) {
			t.Errorf("timeslice(%d) disagrees: heap=%v tt=%v vt=%v", q, ids(hRes), ids(tRes), ids(vRes))
		}
		if hTouched != 100 {
			t.Errorf("heap touched %d, want full scan", hTouched)
		}
		if vTouched > 5 {
			t.Errorf("vt log touched %d for a point query", vTouched)
		}
	}
	for _, q := range []int64{0, 100, 550, 2000} {
		hRes, hTouched := heap.Rollback(chronon.Chronon(q))
		tRes, tTouched := ttlog.Rollback(chronon.Chronon(q))
		vRes, _ := vtlog.Rollback(chronon.Chronon(q))
		if !sameElems(hRes, tRes) || !sameElems(hRes, vRes) {
			t.Errorf("rollback(%d) disagrees", q)
		}
		if tTouched > hTouched {
			t.Errorf("tt log touched %d > heap %d", tTouched, hTouched)
		}
	}
}

func TestVTRangeOnOrderedStore(t *testing.T) {
	vtlog := NewVTLog()
	for i := int64(0); i < 50; i++ {
		if err := vtlog.Insert(ev(i*10, i*10)); err != nil {
			t.Fatal(err)
		}
	}
	got, touched := vtlog.VTRange(100, 150)
	if len(got) != 5 {
		t.Errorf("range returned %d elements, want 5 (%v)", len(got), ids(got))
	}
	if touched > 8 {
		t.Errorf("range touched %d, want near answer size", touched)
	}
	heap := NewHeap()
	fill(t, heap, vtlog.elems...)
	hGot, hTouched := heap.VTRange(100, 150)
	if !sameElems(got, hGot) {
		t.Error("heap and vt log disagree on range")
	}
	if hTouched != 50 {
		t.Errorf("heap touched %d, want 50", hTouched)
	}
}

func TestVTLogIntervalTimeslice(t *testing.T) {
	// Sequential (contiguous) shifts: starts and ends both non-decreasing.
	vtlog := NewVTLog()
	for i := int64(0); i < 20; i++ {
		if err := vtlog.Insert(iv(100+i*10, i*8, (i+1)*8)); err != nil {
			t.Fatal(err)
		}
	}
	got, touched := vtlog.Timeslice(43)
	if len(got) != 1 {
		t.Fatalf("timeslice returned %d elements (%v)", len(got), ids(got))
	}
	if iv, _ := got[0].VT.Interval(); !iv.Contains(43) {
		t.Errorf("wrong interval %v", iv)
	}
	if touched > 4 {
		t.Errorf("touched %d", touched)
	}
	// Out of range.
	if got, _ := vtlog.Timeslice(500); len(got) != 0 {
		t.Errorf("timeslice(500) = %v", ids(got))
	}
}

func TestVTLogRejectsDisorder(t *testing.T) {
	vtlog := NewVTLog()
	if err := vtlog.Insert(ev(100, 100)); err != nil {
		t.Fatal(err)
	}
	if err := vtlog.Insert(ev(110, 90)); err == nil {
		t.Error("vt disorder accepted")
	}
	if err := vtlog.Insert(ev(90, 200)); err == nil {
		t.Error("tt disorder accepted")
	}
}

func TestTTLogRejectsDisorder(t *testing.T) {
	ttlog := NewTTLog()
	if err := ttlog.Insert(ev(100, 0)); err != nil {
		t.Fatal(err)
	}
	if err := ttlog.Insert(ev(90, 0)); err == nil {
		t.Error("tt disorder accepted")
	}
}

func TestScanEarlyStop(t *testing.T) {
	for _, s := range []Store{NewHeap(), NewTTLog(), NewVTLog()} {
		for i := int64(0); i < 10; i++ {
			if err := s.Insert(ev(i, i)); err != nil {
				t.Fatal(err)
			}
		}
		count := 0
		touched := s.Scan(func(*element.Element) bool {
			count++
			return count < 3
		})
		if touched != 3 || count != 3 {
			t.Errorf("%v: early stop touched %d, visited %d", s.Kind(), touched, count)
		}
		if s.Len() != 10 {
			t.Errorf("%v: Len = %d", s.Kind(), s.Len())
		}
	}
}

func TestKindStrings(t *testing.T) {
	if Heap.String() != "heap" || TTOrdered.String() != "tt-ordered log" || VTOrdered.String() != "vt-ordered log" {
		t.Error("kind names wrong")
	}
	if Kind(9).String() != "unknown" {
		t.Error("fallback name wrong")
	}
	for _, k := range Kinds() {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", k.String(), got, err, k)
		}
	}
	if _, err := ParseKind("unknown"); err == nil {
		t.Error("ParseKind accepted the unknown token")
	}
	if _, err := ParseKind("b-tree forest"); err == nil {
		t.Error("ParseKind accepted garbage")
	}
}

func TestAdvise(t *testing.T) {
	cases := []struct {
		name    string
		classes []core.Class
		stamp   element.TimestampKind
		want    Kind
	}{
		{"degenerate", []core.Class{core.Degenerate}, element.EventStamp, VTOrdered},
		{"sequential events", []core.Class{core.GloballySequentialEvents}, element.EventStamp, VTOrdered},
		{"non-decreasing events", []core.Class{core.GloballyNonDecreasingEvents}, element.EventStamp, VTOrdered},
		{"sequential intervals", []core.Class{core.GloballySequentialIntervals}, element.IntervalStamp, VTOrdered},
		{"non-decreasing intervals only", []core.Class{core.GloballyNonDecreasingIntervals}, element.IntervalStamp, TTOrdered},
		{"retroactive only", []core.Class{core.Retroactive}, element.EventStamp, TTOrdered},
		{"general", nil, element.EventStamp, TTOrdered},
	}
	for _, c := range cases {
		a := Advise(c.classes, c.stamp)
		if a.Store != c.want {
			t.Errorf("%s: advised %v, want %v", c.name, a.Store, c.want)
		}
		if len(a.Reasons) == 0 {
			t.Errorf("%s: no reasons given", c.name)
		}
		if a.New().Kind() != c.want {
			t.Errorf("%s: New built wrong store", c.name)
		}
	}
}

func TestAdviseClosesOverAncestors(t *testing.T) {
	// Declaring degenerate implies sequential (C5); the advisor must treat
	// the declaration set as closed under generalization.
	a := Advise([]core.Class{core.Degenerate}, element.EventStamp)
	if a.Store != VTOrdered {
		t.Errorf("degenerate advice = %v", a.Store)
	}
}

func TestAdviceNewHeapDefault(t *testing.T) {
	if (Advice{Store: Heap}).New().Kind() != Heap {
		t.Error("heap advice built wrong store")
	}
}

func TestAdviseMentionsPushdownForBoundedClasses(t *testing.T) {
	a := Advise([]core.Class{core.DelayedStronglyRetroactivelyBounded}, element.EventStamp)
	if a.Store != TTOrdered {
		t.Fatalf("store = %v", a.Store)
	}
	found := false
	for _, r := range a.Reasons {
		if strings.Contains(r, "pushdown") {
			found = true
		}
	}
	if !found {
		t.Errorf("bounded class advice lacks pushdown hint: %v", a.Reasons)
	}
	// An unbounded class gets no such hint.
	b := Advise([]core.Class{core.Retroactive}, element.EventStamp)
	for _, r := range b.Reasons {
		if strings.Contains(r, "pushdown") {
			t.Errorf("unbounded class advice mentions pushdown")
		}
	}
}
