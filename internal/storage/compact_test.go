package storage

import (
	"math/rand"
	"testing"

	"repro/internal/chronon"
	"repro/internal/core"
	"repro/internal/element"
	"repro/internal/surrogate"
)

// workload is a deterministic element sequence in arrival (tt) order, with
// some elements closed afterwards the way the engine closes them: a clone
// carries the finalized tt⊣ and Replace swaps it in.
type workload struct {
	name  string
	kind  element.TimestampKind
	elems []*element.Element       // arrival order, post-close pointers
	close map[int]*element.Element // index → original open element
}

func mkWorkload(name string, kind element.TimestampKind, n int, gen func(i int, rng *rand.Rand) *element.Element, closeFrac float64, seed int64) workload {
	rng := rand.New(rand.NewSource(seed))
	w := workload{name: name, kind: kind, close: map[int]*element.Element{}}
	for i := 0; i < n; i++ {
		w.elems = append(w.elems, gen(i, rng))
	}
	// Close a fraction by cloning with a finalized TTEnd, exactly like the
	// engine's copy-on-close delete.
	lastTT := w.elems[n-1].TTStart
	for i := range w.elems {
		if rng.Float64() >= closeFrac {
			continue
		}
		orig := w.elems[i]
		closed := *orig
		closed.TTEnd = lastTT.Add(1 + int64(i%7))
		w.close[i] = orig
		w.elems[i] = &closed
	}
	return w
}

func buildStores(t *testing.T, w workload) map[Kind]Store {
	t.Helper()
	stores := map[Kind]Store{}
	for _, k := range Kinds() {
		st := Advice{Store: k}.New()
		ok := true
		for i := range w.elems {
			// Insert the original (open) element, then Replace with the
			// closed clone, mirroring the engine's mutation order.
			ins := w.elems[i]
			if orig := w.close[i]; orig != nil {
				ins = orig
			}
			if err := st.Insert(ins); err != nil {
				ok = false
				break
			}
		}
		if !ok {
			continue // this organization is not legal for the workload
		}
		for i, orig := range w.close {
			st.Replace(orig, w.elems[i])
		}
		stores[k] = st
	}
	return stores
}

func elemIDs(es []*element.Element) []uint64 {
	out := make([]uint64, len(es))
	for i, e := range es {
		out[i] = uint64(e.ES)
	}
	return out
}

func sameIDs(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// classWorkloads builds one workload per specialization-class shape the
// advisor distinguishes (the powerset collapses to these generators: what
// matters for migration legality is which orders the data satisfies).
func classWorkloads(n int) []workload {
	seq := func(i int, rng *rand.Rand) *element.Element {
		tt := chronon.Chronon(10 * (i + 1))
		return &element.Element{ES: surrogate.Surrogate(i + 1), OS: 1,
			TTStart: tt, TTEnd: chronon.Forever, VT: element.EventAt(tt)}
	}
	nondec := func(i int, rng *rand.Rand) *element.Element {
		tt := chronon.Chronon(10 * (i + 1))
		return &element.Element{ES: surrogate.Surrogate(i + 1), OS: 1,
			TTStart: tt, TTEnd: chronon.Forever,
			VT: element.EventAt(chronon.Chronon(5*(i+1) + rng.Intn(3)))}
	}
	general := func(i int, rng *rand.Rand) *element.Element {
		tt := chronon.Chronon(10 * (i + 1))
		return &element.Element{ES: surrogate.Surrogate(i + 1), OS: 1,
			TTStart: tt, TTEnd: chronon.Forever,
			VT: element.EventAt(chronon.Chronon(rng.Intn(10 * n)))}
	}
	seqIv := func(i int, rng *rand.Rand) *element.Element {
		tt := chronon.Chronon(10 * (i + 1))
		return &element.Element{ES: surrogate.Surrogate(i + 1), OS: 1,
			TTStart: tt, TTEnd: chronon.Forever,
			VT: element.SpanOf(tt, tt.Add(int64(1+rng.Intn(8))))}
	}
	genIv := func(i int, rng *rand.Rand) *element.Element {
		tt := chronon.Chronon(10 * (i + 1))
		vs := chronon.Chronon(rng.Intn(10 * n))
		return &element.Element{ES: surrogate.Surrogate(i + 1), OS: 1,
			TTStart: tt, TTEnd: chronon.Forever,
			VT: element.SpanOf(vs, vs.Add(int64(1+rng.Intn(30))))}
	}
	return []workload{
		mkWorkload("degenerate", element.EventStamp, n, seq, 0.2, 1),
		mkWorkload("non-decreasing events", element.EventStamp, n, nondec, 0.2, 2),
		mkWorkload("general events", element.EventStamp, n, general, 0.3, 3),
		mkWorkload("sequential intervals", element.IntervalStamp, n, seqIv, 0.2, 4),
		mkWorkload("general intervals", element.IntervalStamp, n, genIv, 0.3, 5),
	}
}

// TestMigrationEquivalence is the powerset-of-classes property: for every
// workload shape and every pair of legal organizations (a migration is a
// rebuild of the target from the source's elements), timeslice, VTRange and
// rollback answers are identical element for element — touched counts
// aside — and stay identical after the target seals frozen runs.
func TestMigrationEquivalence(t *testing.T) {
	const n = 700 // > 2·runSize so compaction seals multiple runs
	for _, w := range classWorkloads(n) {
		t.Run(w.name, func(t *testing.T) {
			stores := buildStores(t, w)
			if len(stores) < 2 {
				t.Fatalf("workload %s: only %d legal organization(s)", w.name, len(stores))
			}
			base := stores[Heap] // Heap accepts everything
			probes := []chronon.Chronon{0, 5, 37, 100, 1234, 3500, 7001, chronon.Chronon(10 * n)}

			check := func(label string, st Store) {
				t.Helper()
				for _, p := range probes {
					if got, _ := st.Timeslice(p); !sameIDs(elemIDs(got), func() []uint64 { g, _ := base.Timeslice(p); return elemIDs(g) }()) {
						t.Fatalf("%s: Timeslice(%v) diverges from heap", label, p)
					}
					if got, _ := st.Rollback(p); !sameIDs(elemIDs(got), func() []uint64 { g, _ := base.Rollback(p); return elemIDs(g) }()) {
						t.Fatalf("%s: Rollback(%v) diverges from heap", label, p)
					}
					hi := p.Add(97)
					if got, _ := st.VTRange(p, hi); !sameIDs(elemIDs(got), func() []uint64 { g, _ := base.VTRange(p, hi); return elemIDs(g) }()) {
						t.Fatalf("%s: VTRange(%v, %v) diverges from heap", label, p, hi)
					}
				}
			}

			for k, st := range stores {
				check(k.String(), st)
				// Migrations: rebuild every other legal organization from
				// this store's elements and check it answers identically.
				for k2 := range stores {
					if k2 == k {
						continue
					}
					target := Advice{Store: k2}.New()
					for _, e := range Elements(st) {
						if err := target.Insert(e); err != nil {
							t.Fatalf("migrate %v→%v: %v", k, k2, err)
						}
					}
					check(k.String()+"→"+k2.String(), target)
				}
				// Sealed runs must not change answers (only touched).
				if c, ok := st.(Compacter); ok {
					if sealed := c.Compact(); sealed == 0 {
						t.Fatalf("%v: Compact sealed nothing at n=%d", k, n)
					}
					check(k.String()+" compacted", st)
					check(k.String()+" compacted snapshot", st.Snapshot())
				}
			}
		})
	}
}

// Compacted answers must also survive post-seal mutation: closes after
// sealing make run metadata stale in the conservative direction only.
func TestCompactThenClose(t *testing.T) {
	st := NewVTLog()
	var elems []*element.Element
	for i := 0; i < 600; i++ {
		e := &element.Element{ES: surrogate.Surrogate(i + 1), OS: 1,
			TTStart: chronon.Chronon(i + 1), TTEnd: chronon.Forever,
			VT: element.EventAt(chronon.Chronon(i + 1))}
		elems = append(elems, e)
		if err := st.Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	if st.Compact() != 512 {
		t.Fatalf("sealed %d, want 512", Compaction(st).Sealed)
	}
	snap := st.Snapshot() // pins pre-close state
	// Close element 100 (inside run 0) after sealing.
	closed := *elems[100]
	closed.TTEnd = 700
	st.Replace(elems[100], &closed)

	if got, _ := st.Timeslice(101); len(got) != 0 {
		t.Fatalf("closed element still current: %v", elemIDs(got))
	}
	if got, _ := snap.(*VTLogStore).Timeslice(101); len(got) != 1 || got[0] != elems[100] {
		t.Fatalf("snapshot lost the pinned open element: %v", elemIDs(got))
	}
	// Rollback at tt=650 must still see it (present until 700) despite the
	// run metadata having been sealed while it was open.
	if got, _ := st.Rollback(650); len(got) != 600 {
		t.Fatalf("Rollback(650) = %d elements, want 600", len(got))
	}
	if got, _ := st.Rollback(701); len(got) != 599 {
		t.Fatalf("Rollback(701) = %d elements, want 599", len(got))
	}
}

// Run skipping must actually reduce touched work on the shapes it targets.
func TestRunSkippingReducesTouched(t *testing.T) {
	st := NewVTLog()
	var open []*element.Element
	for i := 0; i < 1024; i++ {
		e := &element.Element{ES: surrogate.Surrogate(i + 1), OS: 1,
			TTStart: chronon.Chronon(i + 1), TTEnd: chronon.Forever,
			VT: element.EventAt(chronon.Chronon(i + 1))}
		open = append(open, e)
		if err := st.Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	// Close the first half, then seal.
	for i := 0; i < 512; i++ {
		closed := *open[i]
		closed.TTEnd = 2000
		st.Replace(open[i], &closed)
	}
	if st.Compact() == 0 {
		t.Fatal("no runs sealed")
	}
	// A rollback far in the future sees only the open half; the two dead
	// runs cost one probe each instead of 512 visits.
	_, touched := st.Rollback(5000)
	if touched > 514 {
		t.Fatalf("Rollback touched %d, want ≤ 514 with dead runs skipped", touched)
	}
	// Timeslice near the end must not scan the sealed prefix — the binary
	// search lands next to the answer exactly as it would uncompacted.
	_, touched = st.Timeslice(1000)
	if touched > 8 {
		t.Fatalf("Timeslice touched %d, want the probe plus the answer", touched)
	}
	// A range over the dead half crosses two sealed all-closed runs: each
	// costs one metadata probe instead of 256 visits.
	got, touched := st.VTRange(10, 400)
	if len(got) != 0 {
		t.Fatalf("VTRange over closed half returned %d elements", len(got))
	}
	if touched > 6 {
		t.Fatalf("VTRange touched %d, want dead runs skipped", touched)
	}
}

func TestPackedColumnsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var run []*element.Element
	for i := 0; i < runSize; i++ {
		e := &element.Element{ES: surrogate.Surrogate(i + 1), OS: 1,
			TTStart: chronon.Chronon(1000 + 3*i), TTEnd: chronon.Forever,
			VT: element.SpanOf(chronon.Chronon(990+3*i), chronon.Chronon(995+3*i+rng.Intn(4)))}
		if rng.Intn(4) == 0 {
			e.TTEnd = chronon.Chronon(5000 + i)
		}
		run = append(run, e)
	}
	packed := packColumns(run)
	if len(packed) >= runSize*flatStampBytes {
		t.Fatalf("packed %d bytes ≥ flat %d — delta encoding bought nothing", len(packed), runSize*flatStampBytes)
	}
	rows, err := unpackColumns(packed, runSize)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range run {
		want := [4]int64{int64(e.TTStart), int64(e.TTEnd), int64(e.VT.Start()), int64(e.VT.End())}
		if rows[i] != want {
			t.Fatalf("row %d: unpacked %v, want %v", i, rows[i], want)
		}
	}
	if _, err := unpackColumns(packed[:len(packed)-1], runSize); err == nil {
		t.Fatal("truncated packed run decoded without error")
	}
}

func TestStoreBytesShrinksOnCompact(t *testing.T) {
	st := NewVTLog()
	for i := 0; i < 512; i++ {
		e := &element.Element{ES: surrogate.Surrogate(i + 1), OS: 1,
			TTStart: chronon.Chronon(i + 1), TTEnd: chronon.Forever,
			VT: element.EventAt(chronon.Chronon(i + 1))}
		if err := st.Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	before := StoreBytes(st)
	if before != 512*flatStampBytes {
		t.Fatalf("flat StoreBytes = %d", before)
	}
	st.Compact()
	after := StoreBytes(st)
	if after*4 > before {
		t.Fatalf("compaction: %d → %d bytes; want ≥ 4× reduction on a regular log", before, after)
	}
	if StoreBytes(NewHeap()) != 0 {
		t.Fatal("empty heap has nonzero StoreBytes")
	}
}

// AdviseAuto sanity: observed classes license the same organizations as
// declarations, are marked inferred, and never enable the bounded pushdown.
func TestAdviseAutoSources(t *testing.T) {
	a := AdviseAuto(nil, []core.Class{core.GloballySequentialEvents}, element.EventStamp)
	if a.Store != VTOrdered || a.Source != SourceInferred {
		t.Fatalf("observed sequential: %+v", a)
	}
	d := AdviseAuto([]core.Class{core.GloballySequentialEvents}, nil, element.EventStamp)
	if d.Store != VTOrdered || d.Source != SourceDeclared {
		t.Fatalf("declared sequential: %+v", d)
	}
	if d.Reasons[len(d.Reasons)-1] == a.Reasons[len(a.Reasons)-1] {
		t.Fatal("inferred advice not annotated as revocable")
	}
	// Observed strongly-bounded evidence must not enable the pushdown.
	ob := AdviseAuto(nil, []core.Class{core.StronglyBounded}, element.EventStamp)
	for _, r := range ob.Reasons {
		if r == "two-sided bound declared: enable tt-window pushdown for valid-time queries (EnableBoundedPushdown)" {
			t.Fatal("observed bound enabled the pushdown")
		}
	}
	def := AdviseAuto(nil, nil, element.EventStamp)
	if def.Source != SourceDefault {
		t.Fatalf("no classes: source %q", def.Source)
	}
	// Declared evidence wins the provenance tie when both channels license.
	both := AdviseAuto([]core.Class{core.Degenerate}, []core.Class{core.Degenerate}, element.EventStamp)
	if both.Source != SourceDeclared {
		t.Fatalf("declared+observed: source %q", both.Source)
	}
}
