package storage

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/chronon"
	"repro/internal/element"
	"repro/internal/surrogate"
	"repro/internal/vec"
)

// TestDecodeRunColumnsRoundTrip packs element runs exactly like sealing
// does and asserts the decode reproduces every column bit for bit.
func TestDecodeRunColumnsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	run := make([]*element.Element, runSize)
	for i := range run {
		e := &element.Element{
			ES: surrogate.Surrogate(i + 1), OS: 1,
			TTStart: chronon.Chronon(10*i + rng.Intn(5)),
			TTEnd:   chronon.Forever,
		}
		if i%3 == 0 {
			e.TTEnd = e.TTStart.Add(int64(1 + rng.Intn(100)))
		}
		if i%2 == 0 {
			e.VT = element.EventAt(chronon.Chronon(rng.Intn(1000)))
		} else {
			lo := chronon.Chronon(rng.Intn(1000))
			e.VT = element.SpanOf(lo, lo.Add(int64(1+rng.Intn(50))))
		}
		run[i] = e
	}
	packed := packColumns(run)
	var tts, tte, vts, vte [runSize]int64
	if err := DecodeRunColumns(packed, runSize, tts[:], tte[:], vts[:], vte[:]); err != nil {
		t.Fatalf("DecodeRunColumns: %v", err)
	}
	for i, e := range run {
		if tts[i] != int64(e.TTStart) || tte[i] != int64(e.TTEnd) {
			t.Fatalf("row %d tt [%d, %d), want [%d, %d)", i, tts[i], tte[i], e.TTStart, e.TTEnd)
		}
		if vts[i] != int64(e.VT.Start()) || vte[i] != int64(e.VT.End()) {
			t.Fatalf("row %d vt [%d, %d), want [%d, %d)", i, vts[i], vte[i], e.VT.Start(), e.VT.End())
		}
	}
}

func TestDecodeRunColumnsCorrupt(t *testing.T) {
	var cols [4][runSize]int64
	decode := func(b []byte, n int) error {
		return DecodeRunColumns(b, n, cols[0][:], cols[1][:], cols[2][:], cols[3][:])
	}
	if err := decode(nil, 1); err == nil {
		t.Fatal("empty input decoded")
	}
	if err := decode([]byte{0x80}, 1); err == nil {
		t.Fatal("dangling continuation byte decoded")
	}
	run := []*element.Element{{ES: 1, TTStart: 5, TTEnd: chronon.Forever, VT: element.EventAt(9)}}
	packed := packColumns(run)
	if err := decode(packed[:len(packed)-1], 1); err == nil {
		t.Fatal("truncated run decoded")
	}
	if err := decode(append(packed, 0), 1); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	if err := DecodeRunColumns(packed, 1, nil, cols[1][:], cols[2][:], cols[3][:]); err == nil {
		t.Fatal("short destination accepted")
	}
}

// batchElems drains a reader, returning the elements its batches carry
// and checking the columns against each element's own timestamps.
func batchElems(t *testing.T, r *BatchReader, event bool) []*element.Element {
	t.Helper()
	var out []*element.Element
	var b vec.Batch
	for {
		ok, err := r.Next(&b)
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if !ok {
			return out
		}
		for i := 0; i < b.N; i++ {
			e := b.Elems[i]
			if b.TTStart[i] != int64(e.TTStart) || b.TTEnd[i] != int64(e.TTEnd) {
				t.Fatalf("batch tt [%d, %d) disagrees with element [%d, %d)",
					b.TTStart[i], b.TTEnd[i], e.TTStart, e.TTEnd)
			}
			wantEnd := int64(e.VT.End())
			if event {
				wantEnd = int64(e.VT.Start()) + 1
			}
			if b.VTStart[i] != int64(e.VT.Start()) || b.VTEnd[i] != wantEnd {
				t.Fatalf("batch vt [%d, %d) disagrees with element", b.VTStart[i], b.VTEnd[i])
			}
			out = append(out, e)
		}
	}
}

// TestBatchReaderStreamsArrivalOrder holds the reader to the ES-order
// contract over a part-sealed, part-tail log, including after deletes
// made a sealed run's tt⊣ column stale.
func TestBatchReaderStreamsArrivalOrder(t *testing.T) {
	st := &TTLogStore{}
	const n = 3*runSize + 57
	for i := 0; i < n; i++ {
		if err := st.Insert(&element.Element{
			ES: surrogate.Surrogate(i + 1), OS: 1,
			TTStart: chronon.Chronon(10 * (i + 1)), TTEnd: chronon.Forever,
			VT: element.EventAt(chronon.Chronon(10 * (i + 1))),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if sealed := st.Compact(); sealed != 3*runSize {
		t.Fatalf("sealed %d, want %d", sealed, 3*runSize)
	}
	// Close some elements inside sealed runs: the packed tt⊣ goes stale
	// and the reader must re-gather it from the live rows.
	for _, i := range []int{3, runSize + 9, 2*runSize + 100} {
		orig := st.elems[i]
		closed := *orig
		closed.TTEnd = chronon.Chronon(1_000_000)
		st.Replace(orig, &closed)
	}
	got := batchElems(t, NewBatchReader(st, true), true)
	want := Elements(st)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("reader returned %d elements in wrong order/content (want %d)", len(got), len(want))
	}
}

// TestBatchReaderZoneMapSkips checks every pruning rule skips only runs
// that cannot contribute: the surviving element stream must equal the
// filtered full stream.
func TestBatchReaderZoneMapSkips(t *testing.T) {
	st := &VTLogStore{}
	const n = 4 * runSize
	for i := 0; i < n; i++ {
		e := &element.Element{
			ES: surrogate.Surrogate(i + 1), OS: 1,
			TTStart: chronon.Chronon(10 * (i + 1)), TTEnd: chronon.Forever,
			VT: element.EventAt(chronon.Chronon(100 * i)),
		}
		if err := st.Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	// Fully close the second run so current-only can prune it.
	for i := runSize; i < 2*runSize; i++ {
		orig := st.elems[i]
		closed := *orig
		closed.TTEnd = chronon.Chronon(999_999)
		st.Replace(orig, &closed)
	}
	if st.Compact() == 0 {
		t.Fatal("nothing sealed")
	}

	t.Run("vt-window", func(t *testing.T) {
		r := NewBatchReader(st, true)
		lo, hi := chronon.Chronon(100*runSize), chronon.Chronon(100*(2*runSize))
		r.SetVTWindow(lo, hi)
		got := batchElems(t, r, true)
		if r.Skipped() == 0 {
			t.Error("no runs skipped by vt zone map")
		}
		seen := map[surrogate.Surrogate]bool{}
		for _, e := range got {
			seen[e.ES] = true
		}
		for i := runSize; i < 2*runSize; i++ {
			if !seen[surrogate.Surrogate(i+1)] {
				t.Fatalf("element %d inside the window was pruned", i+1)
			}
		}
	})
	t.Run("current-only", func(t *testing.T) {
		r := NewBatchReader(st, true)
		r.SetCurrentOnly()
		got := batchElems(t, r, true)
		if r.Skipped() == 0 {
			t.Error("fully-closed run not skipped")
		}
		for _, e := range got {
			if e.ES > surrogate.Surrogate(runSize) && e.ES <= surrogate.Surrogate(2*runSize) {
				t.Fatalf("closed-run element %d survived current-only pruning", e.ES)
			}
		}
	})
	t.Run("as-of", func(t *testing.T) {
		r := NewBatchReader(st, true)
		r.SetAsOf(5) // before every insertion
		got := batchElems(t, r, true)
		for _, e := range got {
			if e.PresentAt(5) {
				// Skipping is allowed to be conservative; presence must
				// still be decided by the filter, so just sanity-check
				// the envelope did not drop a present element.
				t.Fatalf("element %d present at 5 but envelope says skip-all", e.ES)
			}
		}
	})
}

func TestSealedInfo(t *testing.T) {
	st := &TTLogStore{}
	if s, r := SealedInfo(st); s != 0 || r != 0 {
		t.Fatalf("empty store: %d/%d", s, r)
	}
	for i := 0; i < runSize+5; i++ {
		if err := st.Insert(&element.Element{
			ES: surrogate.Surrogate(i + 1), OS: 1,
			TTStart: chronon.Chronon(i + 1), TTEnd: chronon.Forever,
			VT: element.EventAt(chronon.Chronon(i + 1)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	st.Compact()
	if s, r := SealedInfo(st); s != runSize || r != 1 {
		t.Fatalf("SealedInfo = %d/%d, want %d/1", s, r, runSize)
	}
	if s, r := SealedInfo(&HeapStore{}); s != 0 || r != 0 {
		t.Fatalf("heap store: %d/%d", s, r)
	}
}

// FuzzColumnarRunDecode holds DecodeRunColumns to its no-panic contract
// on arbitrary bytes, and to exact round-trips on packColumns output.
func FuzzColumnarRunDecode(f *testing.F) {
	run := make([]*element.Element, 8)
	for i := range run {
		run[i] = &element.Element{
			ES: surrogate.Surrogate(i + 1), TTStart: chronon.Chronon(i * 3),
			TTEnd: chronon.Forever, VT: element.EventAt(chronon.Chronon(i * 7)),
		}
	}
	f.Add(packColumns(run), 8)
	f.Add([]byte{}, 1)
	f.Add([]byte{0x80, 0x80, 0x80}, 2)
	f.Fuzz(func(t *testing.T, packed []byte, n int) {
		if n < 0 || n > runSize {
			return
		}
		var tts, tte, vts, vte [runSize]int64
		// Must never panic, whatever the bytes.
		err := DecodeRunColumns(packed, n, tts[:n], tte[:n], vts[:n], vte[:n])
		if err != nil {
			return
		}
		// A successful decode must re-encode losslessly: rebuild elements
		// carrying the decoded columns and compare the packed forms.
		// Arbitrary bytes can decode to vt columns no timestamp represents
		// (end before start); those have no element form to repack.
		rebuilt := make([]*element.Element, n)
		for i := 0; i < n; i++ {
			e := &element.Element{TTStart: chronon.Chronon(tts[i]), TTEnd: chronon.Chronon(tte[i])}
			switch {
			case vte[i] == vts[i]:
				e.VT = element.EventAt(chronon.Chronon(vts[i]))
			case vte[i] > vts[i]:
				e.VT = element.SpanOf(chronon.Chronon(vts[i]), chronon.Chronon(vte[i]))
			default:
				return
			}
			rebuilt[i] = e
		}
		repacked := packColumns(rebuilt)
		var tts2, tte2, vts2, vte2 [runSize]int64
		if err := DecodeRunColumns(repacked, n, tts2[:n], tte2[:n], vts2[:n], vte2[:n]); err != nil {
			t.Fatalf("repack failed to decode: %v", err)
		}
		for i := 0; i < n; i++ {
			if tts[i] != tts2[i] || tte[i] != tte2[i] || vts[i] != vts2[i] || vte[i] != vte2[i] {
				t.Fatalf("row %d not stable under repack", i)
			}
		}
	})
}

// BenchmarkColumnarScanSealed streams a fully sealed vt-ordered log
// through the batch reader; BenchmarkColumnarScanTail does the same over
// an unsealed tail, bounding the decode path's advantage.
func BenchmarkColumnarScanSealed(b *testing.B) { benchColumnarScan(b, true) }
func BenchmarkColumnarScanTail(b *testing.B)   { benchColumnarScan(b, false) }

func benchColumnarScan(b *testing.B, compact bool) {
	st := benchStore(b, 64*runSize)
	if compact {
		st.Compact()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewBatchReader(st, true)
		var batch vec.Batch
		rows := 0
		for {
			ok, err := r.Next(&batch)
			if err != nil {
				b.Fatal(err)
			}
			if !ok {
				break
			}
			rows += batch.N
		}
		if rows != st.Len() {
			b.Fatalf("streamed %d rows, want %d", rows, st.Len())
		}
	}
}

func benchStore(b *testing.B, n int) *VTLogStore {
	b.Helper()
	st := &VTLogStore{}
	for i := 0; i < n; i++ {
		if err := st.Insert(&element.Element{
			ES: surrogate.Surrogate(i + 1), OS: 1,
			TTStart: chronon.Chronon(i + 1), TTEnd: chronon.Forever,
			VT:      element.EventAt(chronon.Chronon(5 * i)),
			Varying: []element.Value{element.Int(int64(i % 1000))},
		}); err != nil {
			b.Fatal(err)
		}
	}
	return st
}

// BenchmarkTemporalAggregateColumnar and ...Row compare the two engines
// on the same tumbling COUNT/SUM over a sealed vt-ordered relation — the
// S7 experiment's microcosm.
func BenchmarkTemporalAggregateColumnar(b *testing.B) { benchAggregate(b, true) }
func BenchmarkTemporalAggregateRow(b *testing.B)      { benchAggregate(b, false) }

func benchAggregate(b *testing.B, columnar bool) {
	st := benchStore(b, 64*runSize)
	st.Compact()
	spec := &vec.Spec{Width: 1000, Aggs: []vec.AggCall{
		{Kind: vec.AggCount},
		{Kind: vec.AggSum, Col: "v", Get: func(e *element.Element) element.Value { return e.Varying[0] }},
	}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var res *vec.AggResult
		var err error
		if columnar {
			agg, aerr := vec.NewColAgg(spec)
			if aerr != nil {
				b.Fatal(aerr)
			}
			r := NewBatchReader(st, true)
			r.SetCurrentOnly()
			var batch vec.Batch
			var stats vec.ExecStats
			for {
				ok, nerr := r.Next(&batch)
				if nerr != nil {
					b.Fatal(nerr)
				}
				if !ok {
					break
				}
				if cerr := agg.Consume(&batch, &stats); cerr != nil {
					b.Fatal(cerr)
				}
			}
			res, err = agg.Result()
		} else {
			res, err = vec.RowAggregate(context.Background(), spec, Elements(st))
		}
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Start) == 0 {
			b.Fatal("no windows")
		}
	}
}
