package storage

// Columnar batch reading: stream a store's extension as vec.Batch
// struct-of-arrays without materializing elements row by row. Sealed
// delta-encoded runs (compact.go) decode straight into the batch's
// int64 columns — one run is exactly one batch — and the run envelopes
// double as zone maps, so whole batches are skipped before a single
// varint is read. The unsealed tail and non-log stores fall back to
// gathering the columns from the elements in BatchSize chunks.

import (
	"encoding/binary"
	"fmt"

	"repro/internal/chronon"
	"repro/internal/element"
	"repro/internal/vec"
)

// DecodeRunColumns decodes a packed delta run (packColumns' format) into
// the four timestamp columns in place: per column the first value is
// absolute, the rest zigzag-varint deltas. Each destination slice must
// have length n. It never panics on corrupt input — the fuzz target
// FuzzColumnarRunDecode holds it to that.
func DecodeRunColumns(packed []byte, n int, tts, tte, vts, vte []int64) error {
	if len(tts) < n || len(tte) < n || len(vts) < n || len(vte) < n {
		return fmt.Errorf("storage: decode columns shorter than run length %d", n)
	}
	cols := [4][]int64{tts, tte, vts, vte}
	off := 0
	for c := 0; c < 4; c++ {
		col := cols[c]
		prev := int64(0)
		for i := 0; i < n; i++ {
			d, w := binary.Varint(packed[off:])
			if w <= 0 {
				return fmt.Errorf("storage: truncated packed run (col %d, row %d)", c, i)
			}
			off += w
			if i == 0 {
				prev = d
			} else {
				prev += d
			}
			col[i] = prev
		}
	}
	if off != len(packed) {
		return fmt.Errorf("storage: %d trailing byte(s) in packed run", len(packed)-off)
	}
	return nil
}

// BatchReader streams a store's elements as columnar batches in arrival
// (ES) order — the same order Elements returns, so batch consumers see
// the exact row order the reference engine does. Construct with
// NewBatchReader, optionally narrow with the Set* methods, then call
// Next until it reports false.
type BatchReader struct {
	elems []*element.Element
	runs  []runMeta
	event bool

	// Zone-map pruning knobs.
	hasVT       bool
	vtLo, vtHi  chronon.Chronon
	currentOnly bool
	asOf        bool
	tt          chronon.Chronon

	ri, pos int
	skipped int
}

// NewBatchReader builds a reader over st. event marks an event-stamped
// relation: packed runs store vt⊣ = vt⊢ for events, so the reader
// rewrites the column to the exclusive vt⊢+1 every operator expects.
func NewBatchReader(st Store, event bool) *BatchReader {
	r := &BatchReader{event: event}
	switch s := st.(type) {
	case *TTLogStore:
		r.elems, r.runs = s.elems, s.runs
	case *VTLogStore:
		r.elems, r.runs = s.elems, s.runs
	default:
		r.elems = Elements(st)
	}
	return r
}

// SetVTWindow prunes runs whose valid-time envelope misses [lo, hi).
func (r *BatchReader) SetVTWindow(lo, hi chronon.Chronon) {
	r.hasVT, r.vtLo, r.vtHi = true, lo, hi
}

// SetCurrentOnly prunes runs sealed with every element already closed —
// closed elements never reopen, so no row in them can be current.
func (r *BatchReader) SetCurrentOnly() { r.currentOnly = true }

// SetAsOf prunes runs whose existence-interval envelope misses tt. The
// envelope is safe: tt⊢ is immutable and a run with any open element
// seals with maxTTEnd = Forever.
func (r *BatchReader) SetAsOf(tt chronon.Chronon) { r.asOf, r.tt = true, tt }

// Skipped reports how many sealed runs the zone maps pruned.
func (r *BatchReader) Skipped() int { return r.skipped }

func (r *BatchReader) skipRun(run *runMeta) bool {
	if r.hasVT && (run.vtLo >= r.vtHi || run.vtHi <= r.vtLo) {
		return true
	}
	if r.currentOnly && !run.anyOpen {
		return true
	}
	if r.asOf && (run.ttLo > r.tt || run.maxTTEnd <= r.tt) {
		return true
	}
	return false
}

// decodeRun fills b from a sealed run's packed columns. tt⊣ is the one
// column that can go stale after sealing (copy-on-close deletes swap in
// closed clones), so runs sealed with open elements re-gather it from
// the live rows; fully-closed runs are immutable and decode as sealed.
func (r *BatchReader) decodeRun(run *runMeta, b *vec.Batch) error {
	n := run.n
	if err := DecodeRunColumns(run.packed, n,
		b.TTStart[:n], b.TTEnd[:n], b.VTStart[:n], b.VTEnd[:n]); err != nil {
		return err
	}
	els := r.elems[run.start : run.start+n]
	b.N, b.Elems = n, els
	if r.event {
		for i := 0; i < n; i++ {
			b.VTEnd[i] = b.VTStart[i] + 1
		}
	}
	if run.anyOpen {
		for i, e := range els {
			b.TTEnd[i] = int64(e.TTEnd)
		}
	}
	return nil
}

// fillBatch gathers columns from materialized elements (unsealed tail,
// heap and tt-log tails, indexed stores).
func fillBatch(b *vec.Batch, els []*element.Element, event bool) {
	b.N, b.Elems = len(els), els
	for i, e := range els {
		b.TTStart[i] = int64(e.TTStart)
		b.TTEnd[i] = int64(e.TTEnd)
		vts := int64(e.VT.Start())
		b.VTStart[i] = vts
		if event {
			b.VTEnd[i] = vts + 1
		} else {
			b.VTEnd[i] = int64(e.VT.End())
		}
	}
}

// Next fills b with the next batch, reporting whether one was produced.
func (r *BatchReader) Next(b *vec.Batch) (bool, error) {
	for r.pos < len(r.elems) {
		if r.ri < len(r.runs) && r.pos == r.runs[r.ri].start {
			run := &r.runs[r.ri]
			r.ri++
			r.pos = run.start + run.n
			if r.skipRun(run) {
				r.skipped++
				continue
			}
			if err := r.decodeRun(run, b); err != nil {
				return false, err
			}
			return true, nil
		}
		// Flat region: up to the next sealed run (there is none once ri
		// is exhausted — runs cover a prefix), in BatchSize chunks.
		end := len(r.elems)
		if r.ri < len(r.runs) && r.runs[r.ri].start < end {
			end = r.runs[r.ri].start
		}
		n := end - r.pos
		if n > vec.BatchSize {
			n = vec.BatchSize
		}
		fillBatch(b, r.elems[r.pos:r.pos+n], r.event)
		r.pos += n
		return true, nil
	}
	return false, nil
}

// SealedInfo reports how many leading elements sit in sealed runs and
// how many runs hold them, without walking the runs' payloads. O(1).
func SealedInfo(st Store) (sealed, runs int) {
	switch s := st.(type) {
	case *TTLogStore:
		return covered(s.runs), len(s.runs)
	case *VTLogStore:
		return covered(s.runs), len(s.runs)
	}
	return 0, 0
}
