package element

import (
	"fmt"
	"strings"

	"repro/internal/chronon"
	"repro/internal/interval"
	"repro/internal/surrogate"
)

// Element is a temporal element: the paper's unit of storage (§2). An
// element records one or more facts about a real-world object together with
// when those facts are true in reality (the valid time-stamp) and when they
// were stored in the relation (the transaction-time existence interval).
//
// TTEnd is chronon.Forever while the element is current; a logical deletion
// sets it to the deleting transaction's time. A modification is a deletion
// followed by an insertion of a new element with a fresh element surrogate,
// so insertion and deletion points remain unambiguous.
type Element struct {
	ES surrogate.Surrogate // element surrogate (unique per stored element)
	OS surrogate.Surrogate // object surrogate (shared along a life-line)

	TTStart chronon.Chronon // tt⊢: transaction time of insertion
	TTEnd   chronon.Chronon // tt⊣: transaction time of logical deletion

	VT Timestamp // valid time-stamp (event or interval)

	Invariant []Value           // time-invariant attribute values (e.g. keys)
	Varying   []Value           // time-varying attribute values
	UserTimes []chronon.Chronon // user-defined times (no system semantics)
}

// Existence returns the transaction-time existence interval [tt⊢, tt⊣).
func (e *Element) Existence() interval.Interval {
	return interval.Interval{Start: e.TTStart, End: e.TTEnd}
}

// Current reports whether the element has not been logically deleted.
func (e *Element) Current() bool { return e.TTEnd == chronon.Forever }

// PresentAt reports whether the element is part of the historical state at
// transaction time tt — i.e. tt falls inside the existence interval.
func (e *Element) PresentAt(tt chronon.Chronon) bool {
	return e.TTStart <= tt && tt < e.TTEnd
}

// ValidAt reports whether the element's facts are true in reality at valid
// time vt.
func (e *Element) ValidAt(vt chronon.Chronon) bool { return e.VT.Covers(vt) }

// Clone returns a deep copy of the element.
func (e *Element) Clone() *Element {
	c := *e
	c.Invariant = append([]Value(nil), e.Invariant...)
	c.Varying = append([]Value(nil), e.Varying...)
	c.UserTimes = append([]chronon.Chronon(nil), e.UserTimes...)
	return &c
}

// String renders the element for logs and debugging.
func (e *Element) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v/%v tt=[%v,%v) vt=%v", e.ES, e.OS, e.TTStart, e.TTEnd, e.VT)
	if len(e.Invariant) > 0 {
		fmt.Fprintf(&b, " inv=%v", e.Invariant)
	}
	if len(e.Varying) > 0 {
		fmt.Fprintf(&b, " var=%v", e.Varying)
	}
	return b.String()
}
