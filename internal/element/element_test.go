package element

import (
	"testing"

	"repro/internal/chronon"
	"repro/internal/interval"
)

func TestTimestampEvent(t *testing.T) {
	ts := EventAt(42)
	if !ts.IsEvent() || ts.Kind() != EventStamp {
		t.Error("EventAt should build an event stamp")
	}
	if c, ok := ts.Event(); !ok || c != 42 {
		t.Errorf("Event = %v, %v", c, ok)
	}
	if _, ok := ts.Interval(); ok {
		t.Error("Interval on event stamp should fail")
	}
	if ts.Start() != 42 || ts.End() != 42 {
		t.Errorf("Start/End = %v/%v", ts.Start(), ts.End())
	}
	if !ts.Covers(42) || ts.Covers(43) {
		t.Error("Covers misbehaves for events")
	}
}

func TestTimestampInterval(t *testing.T) {
	ts := SpanOf(10, 20)
	if ts.IsEvent() || ts.Kind() != IntervalStamp {
		t.Error("SpanOf should build an interval stamp")
	}
	if iv, ok := ts.Interval(); !ok || iv != interval.Of(10, 20) {
		t.Errorf("Interval = %v, %v", iv, ok)
	}
	if _, ok := ts.Event(); ok {
		t.Error("Event on interval stamp should fail")
	}
	if ts.Start() != 10 || ts.End() != 20 {
		t.Errorf("Start/End = %v/%v", ts.Start(), ts.End())
	}
	if !ts.Covers(10) || !ts.Covers(19) || ts.Covers(20) || ts.Covers(9) {
		t.Error("Covers misbehaves for intervals")
	}
}

func TestSpanEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty span should panic")
		}
	}()
	SpanOf(5, 5)
}

func TestTimestampKindString(t *testing.T) {
	if EventStamp.String() != "event" || IntervalStamp.String() != "interval" {
		t.Error("kind names wrong")
	}
	if TimestampKind(9).String() != "TimestampKind(9)" {
		t.Error("out-of-range kind name wrong")
	}
}

func TestElementExistenceAndPresence(t *testing.T) {
	e := &Element{ES: 1, OS: 2, TTStart: 100, TTEnd: chronon.Forever, VT: EventAt(50)}
	if !e.Current() {
		t.Error("element with Forever end should be current")
	}
	if !e.PresentAt(100) || !e.PresentAt(1<<40) || e.PresentAt(99) {
		t.Error("PresentAt misbehaves for current element")
	}
	e.TTEnd = 200
	if e.Current() {
		t.Error("deleted element reported current")
	}
	if !e.PresentAt(199) || e.PresentAt(200) {
		t.Error("PresentAt misbehaves at deletion boundary")
	}
	if got := e.Existence(); got != interval.Of(100, 200) {
		t.Errorf("Existence = %v", got)
	}
}

func TestElementValidAt(t *testing.T) {
	ev := &Element{VT: EventAt(50)}
	if !ev.ValidAt(50) || ev.ValidAt(51) {
		t.Error("ValidAt misbehaves for event element")
	}
	iv := &Element{VT: SpanOf(10, 20)}
	if !iv.ValidAt(15) || iv.ValidAt(20) {
		t.Error("ValidAt misbehaves for interval element")
	}
}

func TestElementClone(t *testing.T) {
	e := &Element{
		ES: 1, OS: 2, TTStart: 10, TTEnd: chronon.Forever,
		VT:        SpanOf(0, 5),
		Invariant: []Value{String_("ssn-1")},
		Varying:   []Value{Int(7)},
		UserTimes: []chronon.Chronon{99},
	}
	c := e.Clone()
	if c == e {
		t.Fatal("Clone returned the same pointer")
	}
	c.Invariant[0] = String_("changed")
	c.Varying[0] = Int(8)
	c.UserTimes[0] = 1
	if s, _ := e.Invariant[0].Str(); s != "ssn-1" {
		t.Error("Clone shares invariant slice")
	}
	if i, _ := e.Varying[0].IntVal(); i != 7 {
		t.Error("Clone shares varying slice")
	}
	if e.UserTimes[0] != 99 {
		t.Error("Clone shares user-times slice")
	}
}

func TestElementString(t *testing.T) {
	e := &Element{ES: 1, OS: 2, TTStart: 0, TTEnd: chronon.Forever, VT: EventAt(0),
		Invariant: []Value{Int(1)}, Varying: []Value{Int(2)}}
	s := e.String()
	if s == "" {
		t.Error("String empty")
	}
	for _, want := range []string{"σ1", "σ2", "forever", "inv=", "var="} {
		if !contains(s, want) {
			t.Errorf("String %q missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
