package element

import (
	"fmt"

	"repro/internal/chronon"
	"repro/internal/interval"
)

// TimestampKind discriminates valid time-stamps: an element of an event
// relation carries a single valid time value; an element of an interval
// relation carries an interval of two valid time values (§2).
type TimestampKind uint8

const (
	// EventStamp marks a single-instant valid time-stamp.
	EventStamp TimestampKind = iota
	// IntervalStamp marks an interval valid time-stamp [vt⊢, vt⊣).
	IntervalStamp
)

// String names the kind.
func (k TimestampKind) String() string {
	switch k {
	case EventStamp:
		return "event"
	case IntervalStamp:
		return "interval"
	}
	return fmt.Sprintf("TimestampKind(%d)", uint8(k))
}

// Timestamp is a valid time-stamp: either an event (a single chronon vt) or
// an interval ([vt⊢, vt⊣)).
type Timestamp struct {
	kind TimestampKind
	span interval.Interval // events use span.Start only
}

// EventAt builds an event time-stamp at the given chronon.
func EventAt(c chronon.Chronon) Timestamp {
	return Timestamp{kind: EventStamp, span: interval.Interval{Start: c, End: c}}
}

// Span builds an interval time-stamp from a non-empty interval. It panics
// on an empty or malformed interval: the paper's interval elements denote
// facts true "for a duration of time".
func Span(iv interval.Interval) Timestamp {
	if iv.Empty() {
		panic(fmt.Sprintf("element: empty valid-time interval %v", iv))
	}
	return Timestamp{kind: IntervalStamp, span: iv}
}

// SpanOf builds an interval time-stamp from endpoints.
func SpanOf(start, end chronon.Chronon) Timestamp {
	return Span(interval.Make(start, end))
}

// Kind reports whether the stamp is an event or an interval.
func (ts Timestamp) Kind() TimestampKind { return ts.kind }

// IsEvent reports whether the stamp is an event.
func (ts Timestamp) IsEvent() bool { return ts.kind == EventStamp }

// Event returns the event chronon; ok is false for interval stamps.
func (ts Timestamp) Event() (chronon.Chronon, bool) {
	return ts.span.Start, ts.kind == EventStamp
}

// Interval returns the interval; ok is false for event stamps.
func (ts Timestamp) Interval() (interval.Interval, bool) {
	return ts.span, ts.kind == IntervalStamp
}

// Start returns vt for an event stamp and vt⊢ for an interval stamp. The
// isolated-interval taxonomy (§3.3) applies event characterizations to
// either endpoint, so both are always accessible.
func (ts Timestamp) Start() chronon.Chronon { return ts.span.Start }

// End returns vt for an event stamp and vt⊣ for an interval stamp.
func (ts Timestamp) End() chronon.Chronon {
	if ts.kind == EventStamp {
		return ts.span.Start
	}
	return ts.span.End
}

// Covers reports whether the valid time-stamp includes chronon c: equality
// for events, half-open membership for intervals.
func (ts Timestamp) Covers(c chronon.Chronon) bool {
	if ts.kind == EventStamp {
		return ts.span.Start == c
	}
	return ts.span.Contains(c)
}

// String renders the stamp.
func (ts Timestamp) String() string {
	if ts.kind == EventStamp {
		return ts.span.Start.String()
	}
	return ts.span.String()
}
