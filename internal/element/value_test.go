package element

import (
	"testing"

	"repro/internal/chronon"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	if !Null().IsNull() || Null().Kind() != KindNull {
		t.Error("Null misbehaves")
	}
	if s, ok := String_("hi").Str(); !ok || s != "hi" {
		t.Error("String_ misbehaves")
	}
	if i, ok := Int(42).IntVal(); !ok || i != 42 {
		t.Error("Int misbehaves")
	}
	if f, ok := Float(2.5).FloatVal(); !ok || f != 2.5 {
		t.Error("Float misbehaves")
	}
	if b, ok := Bool(true).BoolVal(); !ok || !b {
		t.Error("Bool(true) misbehaves")
	}
	if b, ok := Bool(false).BoolVal(); !ok || b {
		t.Error("Bool(false) misbehaves")
	}
	if c, ok := Time(chronon.Chronon(7)).TimeVal(); !ok || c != 7 {
		t.Error("Time misbehaves")
	}
	// Wrong-kind accessors report !ok.
	if _, ok := Int(1).Str(); ok {
		t.Error("Str on int should fail")
	}
	if _, ok := String_("x").IntVal(); ok {
		t.Error("IntVal on string should fail")
	}
	if _, ok := Int(1).FloatVal(); ok {
		t.Error("FloatVal on int should fail")
	}
	if _, ok := Int(1).BoolVal(); ok {
		t.Error("BoolVal on int should fail")
	}
	if _, ok := Int(1).TimeVal(); ok {
		t.Error("TimeVal on int should fail")
	}
}

func TestValueEqual(t *testing.T) {
	if !Int(3).Equal(Int(3)) {
		t.Error("equal ints differ")
	}
	if Int(3).Equal(Int(4)) {
		t.Error("distinct ints equal")
	}
	if Int(3).Equal(Float(3)) {
		t.Error("cross-kind values equal")
	}
	if !Null().Equal(Null()) {
		t.Error("nulls differ")
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(1), 1},
		{Int(2), Int(2), 0},
		{String_("a"), String_("b"), -1},
		{String_("b"), String_("a"), 1},
		{String_("a"), String_("a"), 0},
		{Float(1.5), Float(2.5), -1},
		{Float(2.5), Float(1.5), 1},
		{Float(2.5), Float(2.5), 0},
		{Bool(false), Bool(true), -1},
		{Time(1), Time(2), -1},
		{Null(), Null(), 0},
		{Null(), Int(0), -1},
		{Int(0), Null(), 1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestValueCompareCrossKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("cross-kind Compare should panic")
		}
	}()
	Int(1).Compare(String_("x"))
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null(), "null"},
		{String_("hi"), `"hi"`},
		{Int(-3), "-3"},
		{Float(2.5), "2.5"},
		{Bool(true), "true"},
		{Bool(false), "false"},
		{Time(0), "1970-01-01 00:00:00"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

func TestValueKindString(t *testing.T) {
	names := map[ValueKind]string{
		KindNull: "null", KindString: "string", KindInt: "int",
		KindFloat: "float", KindBool: "bool", KindTime: "time",
	}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
}
