// Package element implements the temporal element of the paper's conceptual
// model (§2): the unit of storage in a temporal relation, carrying an
// element surrogate, an object surrogate, a transaction-time existence
// interval, a valid time-stamp (event or interval), time-invariant and
// time-varying attribute values, and user-defined times.
package element

import (
	"fmt"
	"strconv"

	"repro/internal/chronon"
)

// ValueKind discriminates attribute value types.
type ValueKind uint8

// The supported attribute value kinds. User-defined times (§2) are stored
// as KindTime values: the system gives them no temporal semantics.
const (
	KindNull ValueKind = iota
	KindString
	KindInt
	KindFloat
	KindBool
	KindTime
)

// String names the kind.
func (k ValueKind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	case KindTime:
		return "time"
	}
	return fmt.Sprintf("ValueKind(%d)", uint8(k))
}

// Value is a single attribute value: a small tagged union over the
// supported kinds. The zero Value is null.
type Value struct {
	kind ValueKind
	s    string
	i    int64
	f    float64
}

// Null returns the null value.
func Null() Value { return Value{} }

// String_ builds a string value. (Named with a trailing underscore to leave
// the String method free for fmt.Stringer.)
func String_(s string) Value { return Value{kind: KindString, s: s} }

// Int builds an integer value.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Float builds a floating-point value.
func Float(f float64) Value { return Value{kind: KindFloat, f: f} }

// Bool builds a boolean value.
func Bool(b bool) Value {
	var i int64
	if b {
		i = 1
	}
	return Value{kind: KindBool, i: i}
}

// Time builds a user-defined time value. The system interprets it as an
// ordinary comparable value, per §2.
func Time(c chronon.Chronon) Value { return Value{kind: KindTime, i: int64(c)} }

// Kind reports the value's kind.
func (v Value) Kind() ValueKind { return v.kind }

// IsNull reports whether the value is null.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Str returns the string content; ok is false for non-string values.
func (v Value) Str() (string, bool) { return v.s, v.kind == KindString }

// IntVal returns the integer content; ok is false for non-int values.
func (v Value) IntVal() (int64, bool) { return v.i, v.kind == KindInt }

// FloatVal returns the float content; ok is false for non-float values.
func (v Value) FloatVal() (float64, bool) { return v.f, v.kind == KindFloat }

// BoolVal returns the boolean content; ok is false for non-bool values.
func (v Value) BoolVal() (bool, bool) { return v.i != 0, v.kind == KindBool }

// TimeVal returns the time content; ok is false for non-time values.
func (v Value) TimeVal() (chronon.Chronon, bool) {
	return chronon.Chronon(v.i), v.kind == KindTime
}

// Equal reports whether two values have the same kind and content.
func (v Value) Equal(w Value) bool { return v == w }

// Compare orders two values of the same kind: -1, 0, or +1. Nulls compare
// equal to each other and less than everything else. Comparing values of
// different non-null kinds panics, as the schema layer prevents it.
func (v Value) Compare(w Value) int {
	if v.kind == KindNull || w.kind == KindNull {
		switch {
		case v.kind == w.kind:
			return 0
		case v.kind == KindNull:
			return -1
		}
		return 1
	}
	if v.kind != w.kind {
		panic(fmt.Sprintf("element: comparing %v to %v", v.kind, w.kind))
	}
	switch v.kind {
	case KindString:
		switch {
		case v.s < w.s:
			return -1
		case v.s > w.s:
			return 1
		}
		return 0
	case KindFloat:
		switch {
		case v.f < w.f:
			return -1
		case v.f > w.f:
			return 1
		}
		return 0
	default: // int, bool, time share the integer payload
		switch {
		case v.i < w.i:
			return -1
		case v.i > w.i:
			return 1
		}
		return 0
	}
}

// String renders the value for display.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "null"
	case KindString:
		return strconv.Quote(v.s)
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	case KindTime:
		return chronon.Chronon(v.i).String()
	}
	return fmt.Sprintf("Value(%d)", v.kind)
}
