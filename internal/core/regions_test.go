package core

import (
	"strings"
	"testing"

	"repro/internal/chronon"
)

func TestCompletenessEnumeration(t *testing.T) {
	// Claim C1, the paper's completeness argument: "With zero lines ... a
	// general temporal event relation. With one line, there are two
	// distinct regions for each of the three line-types, resulting in six
	// distinct specialized temporal event relations ... With two lines,
	// there are five possibilities ... The result is a total of eleven
	// types of specialized temporal relations."
	c := EnumerateRegions()
	if c.ZeroLines != 1 {
		t.Errorf("zero-line regions = %d, want 1", c.ZeroLines)
	}
	if c.OneLine != 6 {
		t.Errorf("one-line regions = %d, want 6", c.OneLine)
	}
	if c.TwoLines != 5 {
		t.Errorf("two-line regions = %d, want 5", c.TwoLines)
	}
	if got := c.Specializations(); got != 11 {
		t.Errorf("specializations = %d, want 11", got)
	}
	if len(c.Classes) != 12 {
		t.Errorf("distinct classes = %d, want 12", len(c.Classes))
	}
	// The twelve classes are exactly the event classes minus degenerate.
	want := make(map[Class]bool)
	for _, cls := range EventClasses() {
		if cls != Degenerate {
			want[cls] = true
		}
	}
	for _, cls := range c.Classes {
		if !want[cls] {
			t.Errorf("unexpected class %v in enumeration", cls)
		}
		delete(want, cls)
	}
	for cls := range want {
		t.Errorf("class %v missing from enumeration", cls)
	}
}

func TestRegionFeasibility(t *testing.T) {
	cases := []struct {
		r    Region
		want bool
	}{
		{Region{}, true},
		{Region{HasLower: true, Lower: OffsetZero}, true},
		{Region{HasLower: true, Lower: OffsetNegative, HasUpper: true, Upper: OffsetPositive}, true},
		{Region{HasLower: true, Lower: OffsetNegative, HasUpper: true, Upper: OffsetNegative}, true},
		{Region{HasLower: true, Lower: OffsetPositive, HasUpper: true, Upper: OffsetPositive}, true},
		{Region{HasLower: true, Lower: OffsetZero, HasUpper: true, Upper: OffsetZero}, false},
		{Region{HasLower: true, Lower: OffsetPositive, HasUpper: true, Upper: OffsetZero}, false},
		{Region{HasLower: true, Lower: OffsetPositive, HasUpper: true, Upper: OffsetNegative}, false},
		{Region{HasLower: true, Lower: OffsetZero, HasUpper: true, Upper: OffsetNegative}, false},
	}
	for _, c := range cases {
		if got := c.r.Feasible(); got != c.want {
			t.Errorf("Feasible(%+v) = %v, want %v", c.r, got, c.want)
		}
	}
	if _, ok := (Region{HasLower: true, Lower: OffsetPositive, HasUpper: true, Upper: OffsetZero}).Class(); ok {
		t.Error("infeasible region classified")
	}
}

func TestSpecRegionsMatchClassifier(t *testing.T) {
	// Every event spec's region must classify back to the spec's own class.
	specs := allEventSpecs(t)
	for cls, spec := range specs {
		r, ok := spec.Region()
		if cls == Degenerate {
			if ok {
				t.Error("degenerate should have no 2D region")
			}
			continue
		}
		if !ok {
			t.Errorf("%v has no region", cls)
			continue
		}
		got, ok := r.Class()
		if !ok || got != cls {
			t.Errorf("region of %v classifies to %v (ok=%v)", cls, got, ok)
		}
	}
}

func TestBoundSignString(t *testing.T) {
	if OffsetZero.String() != "vt = tt" {
		t.Errorf("OffsetZero = %q", OffsetZero.String())
	}
	if !strings.Contains(OffsetNegative.String(), "−") || !strings.Contains(OffsetPositive.String(), "+") {
		t.Error("offset line names wrong")
	}
	if BoundSign(5).String() != "BoundSign(5)" {
		t.Error("fallback name wrong")
	}
}

func TestRegionLines(t *testing.T) {
	if (Region{}).Lines() != 0 {
		t.Error("empty region has lines")
	}
	if (Region{HasLower: true}).Lines() != 1 {
		t.Error("one-bound region line count wrong")
	}
	if (Region{HasLower: true, HasUpper: true}).Lines() != 2 {
		t.Error("two-bound region line count wrong")
	}
}

func TestRenderRegion(t *testing.T) {
	// The retroactive panel of Figure 1: everything on or below vt = tt.
	out := RenderRegion(RetroactiveSpec(), 4)
	if !strings.Contains(out, "retroactive") {
		t.Errorf("render lacks title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// lines[0] title, lines[1..4] vt=3..0, lines[5] axis.
	if len(lines) != 6 {
		t.Fatalf("render has %d lines:\n%s", len(lines), out)
	}
	// At vt=0 (bottom row) every tt ≥ 0 passes.
	if got := strings.Count(lines[4], "#"); got != 4 {
		t.Errorf("bottom row has %d #, want 4:\n%s", got, out)
	}
	// At vt=3 (top row) only tt=3 passes.
	if got := strings.Count(lines[1], "#"); got != 1 {
		t.Errorf("top row has %d #, want 1:\n%s", got, out)
	}
	// The general panel is all '#'.
	gen := RenderRegion(GeneralSpec(), 3)
	if strings.Contains(gen, "·") {
		t.Errorf("general region has forbidden cells:\n%s", gen)
	}
}

func TestRenderRegionAllClasses(t *testing.T) {
	// Smoke-test every panel of Figure 1 (and the degenerate limit): each
	// must contain at least one permitted and, except general, one
	// forbidden cell over a 30×30 grid (Δt values are 10 and 30).
	for cls, spec := range allEventSpecs(t) {
		out := RenderRegion(spec, 31)
		hasAllowed := strings.Contains(out, "#")
		hasForbidden := strings.Contains(out, "·")
		if !hasAllowed {
			t.Errorf("%v panel has no permitted cells", cls)
		}
		if cls != General && !hasForbidden {
			t.Errorf("%v panel has no forbidden cells", cls)
		}
	}
}

func TestOffsetSign(t *testing.T) {
	if offsetSign(chronon.Duration{}) != OffsetZero {
		t.Error("zero offset sign wrong")
	}
	if offsetSign(chronon.Seconds(-5)) != OffsetNegative {
		t.Error("negative offset sign wrong")
	}
	if offsetSign(chronon.Seconds(5)) != OffsetPositive {
		t.Error("positive offset sign wrong")
	}
	if offsetSign(chronon.Months(1)) != OffsetPositive {
		t.Error("calendric positive offset sign wrong")
	}
	if offsetSign(chronon.Months(-1)) != OffsetNegative {
		t.Error("calendric negative offset sign wrong")
	}
}
