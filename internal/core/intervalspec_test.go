package core

import (
	"strings"
	"testing"

	"repro/internal/chronon"
)

func mustIR(s IntervalRegularSpec, err error) IntervalRegularSpec {
	if err != nil {
		panic(err)
	}
	return s
}

func TestEndpointSpec(t *testing.T) {
	// "If an interval is stored as soon as it terminates, the relation is
	// vt⊢-retroactive and vt⊣-degenerate."
	e := intervalElem(200, int64(chronon.Forever), 100, 200)
	startRetro := EndpointSpec{Event: RetroactiveSpec(), Endpoint: VTStart}
	endDegen := EndpointSpec{Event: mustSpec(DegenerateSpec(chronon.Second)), Endpoint: VTEnd}
	if err := startRetro.Check(e); err != nil {
		t.Errorf("vt⊢-retroactive: %v", err)
	}
	if err := endDegen.Check(e); err != nil {
		t.Errorf("vt⊣-degenerate: %v", err)
	}
	// An interval stored before it begins fails vt⊢-retroactive.
	future := intervalElem(50, int64(chronon.Forever), 100, 200)
	if err := startRetro.Check(future); err == nil {
		t.Error("future interval should fail vt⊢-retroactive")
	}
}

func TestEndpointSpecDeletionBasis(t *testing.T) {
	spec := EndpointSpec{Event: RetroactiveSpec(), Basis: TTDeletion, Endpoint: VTEnd}
	cur := intervalElem(10, int64(chronon.Forever), 0, 5)
	if err := spec.Check(cur); err != nil {
		t.Errorf("current element should vacuously pass deletion-basis: %v", err)
	}
	deleted := intervalElem(10, 20, 0, 5)
	if err := spec.Check(deleted); err != nil {
		t.Errorf("deleted element with vt⊣ ≤ tt⊣: %v", err)
	}
	lateValid := intervalElem(10, 20, 0, 25)
	if err := spec.Check(lateValid); err == nil {
		t.Error("vt⊣ after deletion time should fail deletion-retroactive")
	}
}

func TestBothEndpoints(t *testing.T) {
	pair := BothEndpoints(RetroactiveSpec(), TTInsertion)
	if pair[0].Endpoint != VTStart || pair[1].Endpoint != VTEnd {
		t.Error("BothEndpoints endpoints wrong")
	}
	// "If the relation is vt⊢-retroactive and vt⊣-retroactive, it may
	// simply be termed retroactive."
	e := intervalElem(300, int64(chronon.Forever), 100, 200)
	for _, s := range pair {
		if err := s.Check(e); err != nil {
			t.Errorf("%v: %v", s, err)
		}
	}
}

func TestEndpointSpecCheckAllAndString(t *testing.T) {
	spec := EndpointSpec{Event: RetroactiveSpec(), Endpoint: VTStart}
	good := elems(intervalElem(200, int64(chronon.Forever), 100, 300))
	if err := spec.CheckAll(good); err != nil {
		t.Errorf("CheckAll: %v", err)
	}
	bad := elems(intervalElem(50, int64(chronon.Forever), 100, 300))
	if err := spec.CheckAll(bad); err == nil {
		t.Error("CheckAll accepted a violation")
	}
	if got := spec.String(); got != "vt⊢-retroactive (insertion basis)" {
		t.Errorf("String = %q", got)
	}
}

func TestVTIntervalRegular(t *testing.T) {
	week := mustIR(VTIntervalRegularSpec(chronon.Weeks(1)))
	one := intervalElem(0, int64(chronon.Forever), 0, 7*86400)
	three := intervalElem(0, int64(chronon.Forever), 0, 3*7*86400)
	ragged := intervalElem(0, int64(chronon.Forever), 0, 8*86400)
	if err := week.Check(one); err != nil {
		t.Errorf("one-week interval: %v", err)
	}
	if err := week.Check(three); err != nil {
		t.Errorf("three-week interval: %v", err)
	}
	if err := week.Check(ragged); err == nil {
		t.Error("eight-day interval accepted at weekly unit")
	}
	strict := mustIR(StrictVTIntervalRegularSpec(chronon.Weeks(1)))
	if err := strict.Check(one); err != nil {
		t.Errorf("strict one-week: %v", err)
	}
	if err := strict.Check(three); err == nil {
		t.Error("strict accepted a three-week interval")
	}
}

func TestVTIntervalRegularCalendric(t *testing.T) {
	// The hires-and-terminations example: effective periods lasting whole
	// calendar months.
	mo := mustIR(VTIntervalRegularSpec(chronon.Months(1)))
	jan := intervalElem(0, int64(chronon.Forever),
		int64(chronon.Date(1992, 1, 1)), int64(chronon.Date(1992, 2, 1)))
	q1 := intervalElem(0, int64(chronon.Forever),
		int64(chronon.Date(1992, 1, 1)), int64(chronon.Date(1992, 4, 1)))
	broken := intervalElem(0, int64(chronon.Forever),
		int64(chronon.Date(1992, 1, 1)), int64(chronon.Date(1992, 2, 15)))
	if err := mo.Check(jan); err != nil {
		t.Errorf("January: %v", err)
	}
	if err := mo.Check(q1); err != nil {
		t.Errorf("Q1: %v", err)
	}
	if err := mo.Check(broken); err == nil {
		t.Error("six-week interval accepted at monthly unit")
	}
	strict := mustIR(StrictVTIntervalRegularSpec(chronon.Months(1)))
	if err := strict.Check(jan); err != nil {
		t.Errorf("strict January: %v", err)
	}
	if err := strict.Check(q1); err == nil {
		t.Error("strict accepted a quarter")
	}
}

func TestTTIntervalRegular(t *testing.T) {
	day := mustIR(TTIntervalRegularSpec(chronon.Days(1)))
	// Current elements vacuously satisfy transaction-time regularity.
	cur := intervalElem(0, int64(chronon.Forever), 0, 100)
	if err := day.Check(cur); err != nil {
		t.Errorf("current element: %v", err)
	}
	deleted := intervalElem(0, 2*86400, 0, 100)
	if err := day.Check(deleted); err != nil {
		t.Errorf("two-day existence: %v", err)
	}
	ragged := intervalElem(0, 86400+1, 0, 100)
	if err := day.Check(ragged); err == nil {
		t.Error("ragged existence accepted")
	}
}

func TestTemporalIntervalRegular(t *testing.T) {
	spec := mustIR(TemporalIntervalRegularSpec(chronon.Days(1)))
	both := intervalElem(0, 86400, 0, 2*86400)
	if err := spec.Check(both); err != nil {
		t.Errorf("both regular: %v", err)
	}
	vtOnly := intervalElem(0, 86400+5, 0, 2*86400)
	if err := spec.Check(vtOnly); err == nil {
		t.Error("irregular existence accepted by temporal interval regular")
	}
	ttOnly := intervalElem(0, 86400, 0, 86400+5)
	if err := spec.Check(ttOnly); err == nil {
		t.Error("irregular valid interval accepted by temporal interval regular")
	}
	strict := mustIR(StrictTemporalIntervalRegularSpec(chronon.Days(1)))
	exact := intervalElem(0, 86400, 100, 100+86400)
	if err := strict.Check(exact); err != nil {
		t.Errorf("strict exact: %v", err)
	}
	if err := strict.Check(both); err == nil {
		t.Error("strict accepted a two-day valid interval")
	}
}

func TestIntervalRegularOnEventElement(t *testing.T) {
	spec := mustIR(VTIntervalRegularSpec(chronon.Days(1)))
	if err := spec.Check(eventElem(0, int64(chronon.Forever), 5)); err == nil {
		t.Error("event-stamped element accepted by interval regularity")
	}
}

func TestIntervalRegularValidation(t *testing.T) {
	if _, err := VTIntervalRegularSpec(chronon.Duration{}); err == nil {
		t.Error("zero unit accepted")
	}
	if _, err := TTIntervalRegularSpec(chronon.Seconds(-1)); err == nil {
		t.Error("negative unit accepted")
	}
	if _, err := VTIntervalRegularSpec(chronon.Months(-1)); err == nil {
		t.Error("negative calendric unit accepted")
	}
	if _, err := VTIntervalRegularSpec(chronon.Months(1)); err != nil {
		t.Error("calendric unit should be allowed for interval regularity")
	}
}

func TestIntervalRegularCheckAllAndStrings(t *testing.T) {
	spec := mustIR(VTIntervalRegularSpec(chronon.Days(1)))
	if spec.Class() != VTIntervalRegular {
		t.Error("Class wrong")
	}
	if spec.Unit() != chronon.Days(1) {
		t.Error("Unit wrong")
	}
	if !strings.Contains(spec.String(), "valid time interval regular") {
		t.Errorf("String = %q", spec.String())
	}
	good := elems(intervalElem(0, int64(chronon.Forever), 0, 86400))
	if err := spec.CheckAll(good); err != nil {
		t.Errorf("CheckAll: %v", err)
	}
	bad := append(good, intervalElem(0, int64(chronon.Forever), 0, 100))
	err := spec.CheckAll(bad)
	if err == nil {
		t.Fatal("CheckAll accepted irregular interval")
	}
	if _, ok := err.(*IntervalViolation); !ok {
		t.Errorf("error type %T", err)
	}
}
