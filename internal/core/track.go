package core

import (
	"repro/internal/chronon"
	"repro/internal/element"
)

// Tracker is the observed-extension inference state for one relation: a
// constant-space summary of every insertion seen so far, from which the
// ordering classes of §3.2/§3.4 (and the degenerate limit of §3.1) can be
// read off in O(1). It is the incremental counterpart of Classify for the
// classes the storage advisor consumes: instead of re-walking the extension,
// the catalog feeds each arriving element to Observe and asks Classes when
// it re-advises.
//
// All tracked properties are monotone under observation — once an ordering
// violation or an overlap is seen it can never be unseen — so the tracker is
// a sound (never over-claiming) witness of what the extension actually
// satisfies, with the violation counters preserved as evidence. Physically
// removing history (vacuum) may re-establish a property; the catalog rebuilds
// the tracker whenever it rebuilds the store, which re-observes exactly the
// surviving versions.
//
// Elements must be observed in arrival (insertion transaction time) order,
// which is the order relation.Versions yields. Elements sharing a
// transaction time form one group and are unconstrained against each other,
// mirroring the strict tt inequality in every §3.2/§3.4 definition (the
// deletion and insertion halves of a modification share a tt).
type Tracker struct {
	kind element.TimestampKind
	gran chronon.Granularity

	n int

	// Current equal-tt group aggregates, folded into prev* when a later
	// transaction time arrives.
	curTT    chronon.Chronon
	curMaxVT chronon.Chronon // max vt start in the group
	curMinVT chronon.Chronon // min vt start in the group
	curHigh  chronon.Chronon // max(tt, vt end) in the group

	// Aggregates over all strictly earlier groups.
	prevMaxVT chronon.Chronon
	prevMinVT chronon.Chronon
	prevHigh  chronon.Chronon

	// Monotone class flags (true until violated).
	nonDecreasing bool
	nonIncreasing bool
	sequential    bool
	degenerate    bool // events only: vt = tt at the granularity

	// Violation evidence.
	ttViolations uint64 // arrival out of tt order (a caller bug, counted loudly)
	vtViolations uint64 // vt-start order regressions (kills non-decreasing)
	overlaps     uint64 // begins before a prior element completed (kills sequential)

	// Observed vt − tt offset bounds (event stamps; interval starts for
	// interval stamps). These are observations, not promises: the advisor
	// must not drive the bounded tt-window pushdown off them, but they are
	// the Δt evidence the paper's bounded classes would be declared with.
	offLo, offHi int64

	// Valid-time regularity delta: the gcd of vt-start differences from the
	// first observed stamp (0 while all coincide or n < 2) — the largest
	// unit under which the extension is vt event regular so far.
	vtAnchor chronon.Chronon
	vtUnit   int64
}

// NewTracker returns an empty tracker for a relation with the given stamp
// kind and granularity (the granularity drives the degenerate test).
func NewTracker(kind element.TimestampKind, gran chronon.Granularity) *Tracker {
	return &Tracker{
		kind:          kind,
		gran:          gran,
		nonDecreasing: true,
		nonIncreasing: true,
		sequential:    true,
		degenerate:    kind == element.EventStamp,
	}
}

// Observe feeds one stored element (an insertion) to the tracker. Elements
// must arrive in non-decreasing transaction-time order.
func (t *Tracker) Observe(e *element.Element) {
	tt := e.TTStart
	vtStart := e.VT.Start()
	vtEnd := vtStart // events: the instant; overwritten for intervals
	if iv, ok := e.VT.Interval(); ok {
		vtStart, vtEnd = iv.Start, iv.End
	}

	if t.n == 0 {
		t.curTT = tt
		t.curMaxVT, t.curMinVT = vtStart, vtStart
		t.curHigh = chronon.Max(tt, vtEnd)
		t.prevMaxVT, t.prevMinVT = chronon.MinChronon, chronon.MaxChronon
		t.prevHigh = chronon.MinChronon
		t.offLo = vtStart.Sub(tt)
		t.offHi = t.offLo
		t.vtAnchor = vtStart
	} else {
		switch {
		case tt < t.curTT:
			// Arrival order broken — the engine never does this, but a
			// tracker fed out of order must not silently over-claim.
			t.ttViolations++
			t.nonDecreasing, t.nonIncreasing, t.sequential = false, false, false
		case tt > t.curTT:
			t.foldGroup()
			t.curTT = tt
			t.curMaxVT, t.curMinVT = vtStart, vtStart
			t.curHigh = chronon.Max(tt, vtEnd)
		default: // same group
			t.curMaxVT = chronon.Max(t.curMaxVT, vtStart)
			t.curMinVT = chronon.Min(t.curMinVT, vtStart)
			t.curHigh = chronon.Max(t.curHigh, chronon.Max(tt, vtEnd))
		}
		// Check this stamp against the strictly earlier groups only.
		if vtStart < t.prevMaxVT {
			t.vtViolations++
			t.nonDecreasing = false
		}
		if vtStart > t.prevMinVT {
			t.nonIncreasing = false
		}
		if chronon.Min(tt, vtStart) < t.prevHigh {
			t.overlaps++
			t.sequential = false
		}
		if off := vtStart.Sub(tt); off < t.offLo {
			t.offLo = off
		} else if off > t.offHi {
			t.offHi = off
		}
		t.vtUnit = chronon.GCD(t.vtUnit, vtStart.Sub(t.vtAnchor))
	}
	if t.degenerate && !t.gran.SameTick(vtStart, tt) {
		t.degenerate = false
	}
	t.n++
}

// foldGroup merges the current equal-tt group into the earlier-group
// aggregates.
func (t *Tracker) foldGroup() {
	t.prevMaxVT = chronon.Max(t.prevMaxVT, t.curMaxVT)
	t.prevMinVT = chronon.Min(t.prevMinVT, t.curMinVT)
	t.prevHigh = chronon.Max(t.prevHigh, t.curHigh)
}

// Len reports how many elements have been observed.
func (t *Tracker) Len() int { return t.n }

// Classes lists the specializations the observed extension satisfies, among
// those the storage advisor consumes: Degenerate and the global orderings.
// An empty extension claims nothing — there is no evidence yet.
func (t *Tracker) Classes() []Class {
	if t.n == 0 {
		return nil
	}
	var out []Class
	if t.kind == element.EventStamp {
		if t.degenerate {
			out = append(out, Degenerate)
		}
		if t.sequential {
			out = append(out, GloballySequentialEvents)
		}
		if t.nonDecreasing {
			out = append(out, GloballyNonDecreasingEvents)
		}
		if t.nonIncreasing {
			out = append(out, GloballyNonIncreasingEvents)
		}
	} else {
		if t.sequential {
			out = append(out, GloballySequentialIntervals)
		}
		if t.nonDecreasing {
			out = append(out, GloballyNonDecreasingIntervals)
		}
		if t.nonIncreasing {
			out = append(out, GloballyNonIncreasingIntervals)
		}
	}
	return out
}

// TrackerStats is the tracker's evidence, for metrics and the shell.
type TrackerStats struct {
	Elements     int
	TTViolations uint64
	VTViolations uint64
	Overlaps     uint64
	// OffsetLo/OffsetHi are the observed vt − tt bounds in chronons
	// (meaningless while Elements is 0).
	OffsetLo, OffsetHi int64
	// VTUnit is the observed valid-time regularity delta in chronons: the
	// gcd of vt differences (0 while all observed vt coincide).
	VTUnit int64
}

// Stats reports the tracker's evidence counters and synthesized bounds.
func (t *Tracker) Stats() TrackerStats {
	return TrackerStats{
		Elements:     t.n,
		TTViolations: t.ttViolations,
		VTViolations: t.vtViolations,
		Overlaps:     t.overlaps,
		OffsetLo:     t.offLo,
		OffsetHi:     t.offHi,
		VTUnit:       t.vtUnit,
	}
}
