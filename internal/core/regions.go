package core

import (
	"fmt"
	"strings"

	"repro/internal/chronon"
)

// This file models Figure 1 — the regions of the two-dimensional
// (transaction time, valid time) space that the isolated-event
// specializations restrict stamps to — and the completeness argument of
// §3.1: under the paper's five assumptions (undetermined relationships,
// boundaries parallel to the line vt = tt, relative restrictions only,
// ≤-versions, connected regions), at most two boundary lines describe any
// region, yielding exactly eleven specialized relations plus the general
// one.

// BoundSign classifies a boundary line vt = tt + δ by the sign of its
// offset δ — the three kinds of line of §3.1: (1) δ > 0, (2) δ = 0,
// (3) δ < 0.
type BoundSign int8

// The three line types.
const (
	OffsetNegative BoundSign = -1 // vt = tt − δ, δ > 0
	OffsetZero     BoundSign = 0  // vt = tt
	OffsetPositive BoundSign = 1  // vt = tt + δ, δ > 0
)

// String names the line type.
func (s BoundSign) String() string {
	switch s {
	case OffsetNegative:
		return "vt = tt − Δt"
	case OffsetZero:
		return "vt = tt"
	case OffsetPositive:
		return "vt = tt + Δt"
	}
	return fmt.Sprintf("BoundSign(%d)", int8(s))
}

// Region is a connected region of the (tt, vt) plane bounded by at most two
// lines parallel to vt = tt: { (tt, vt) : lo ≤ vt − tt ≤ hi }, where either
// bound may be absent and only the signs of lo and hi matter for
// classification.
type Region struct {
	HasLower bool
	Lower    BoundSign // sign of lo when HasLower
	HasUpper bool
	Upper    BoundSign // sign of hi when HasUpper
}

// Lines reports how many boundary lines the region uses.
func (r Region) Lines() int {
	n := 0
	if r.HasLower {
		n++
	}
	if r.HasUpper {
		n++
	}
	return n
}

// Feasible reports whether the region is non-degenerate: with two bounds it
// must admit lo < hi, which the sign pair must not contradict. Two lines of
// the same non-zero sign are feasible (two distinct parallel lines on the
// same side of vt = tt); two zero lines are not (they coincide).
func (r Region) Feasible() bool {
	if !r.HasLower || !r.HasUpper {
		return true
	}
	if r.Lower > r.Upper {
		return false
	}
	if r.Lower == r.Upper {
		return r.Lower != OffsetZero
	}
	return true
}

// Class maps a feasible region to its specialization class, reproducing the
// §3.1 case analysis: zero lines give the general relation; one line gives
// six classes (two sides × three line types); two lines give five.
func (r Region) Class() (Class, bool) {
	if !r.Feasible() {
		return 0, false
	}
	switch {
	case !r.HasLower && !r.HasUpper:
		return General, true
	case r.HasLower && !r.HasUpper:
		switch r.Lower {
		case OffsetPositive:
			return EarlyPredictive, true
		case OffsetZero:
			return Predictive, true
		default:
			return RetroactivelyBounded, true
		}
	case !r.HasLower && r.HasUpper:
		switch r.Upper {
		case OffsetPositive:
			return PredictivelyBounded, true
		case OffsetZero:
			return Retroactive, true
		default:
			return DelayedRetroactive, true
		}
	}
	switch [2]BoundSign{r.Lower, r.Upper} {
	case [2]BoundSign{OffsetPositive, OffsetPositive}:
		return EarlyStronglyPredictivelyBounded, true
	case [2]BoundSign{OffsetZero, OffsetPositive}:
		return StronglyPredictivelyBounded, true
	case [2]BoundSign{OffsetNegative, OffsetPositive}:
		return StronglyBounded, true
	case [2]BoundSign{OffsetNegative, OffsetZero}:
		return StronglyRetroactivelyBounded, true
	case [2]BoundSign{OffsetNegative, OffsetNegative}:
		return DelayedStronglyRetroactivelyBounded, true
	}
	return 0, false
}

// Region reports the Figure 1 region of an event specialization. Degenerate
// has no two-dimensional region: it is the limiting line vt = tt itself and
// lies outside the completeness enumeration; ok is false for it.
func (s EventSpec) Region() (Region, bool) {
	if s.class == Degenerate {
		return Region{}, false
	}
	var r Region
	if s.lower != nil {
		r.HasLower = true
		r.Lower = offsetSign(*s.lower)
	}
	if s.upper != nil {
		r.HasUpper = true
		r.Upper = offsetSign(*s.upper)
	}
	return r, true
}

func offsetSign(d chronon.Duration) BoundSign {
	switch {
	case d.IsZero():
		return OffsetZero
	case d.Negative():
		return OffsetNegative
	default:
		return OffsetPositive
	}
}

// Completeness is the result of enumerating all feasible regions: the count
// per number of boundary lines and the classes realized.
type Completeness struct {
	ZeroLines int
	OneLine   int
	TwoLines  int
	Classes   []Class
}

// Specializations reports the number of specialized (non-general) relation
// types realized — the paper's "total of eleven types".
func (c Completeness) Specializations() int {
	return c.ZeroLines + c.OneLine + c.TwoLines - 1
}

// EnumerateRegions performs the completeness enumeration of §3.1:
// it generates every region describable with zero, one, or two boundary
// lines drawn from the three line types, discards infeasible sign pairs,
// and maps the survivors to classes. The paper's count — 1 (general) +
// 6 (one line) + 5 (two lines) = 12 region types, i.e. eleven specialized
// relations — falls out of the enumeration.
func EnumerateRegions() Completeness {
	signs := []BoundSign{OffsetNegative, OffsetZero, OffsetPositive}
	var regions []Region
	// Zero lines.
	regions = append(regions, Region{})
	// One line, used as a lower or an upper bound.
	for _, s := range signs {
		regions = append(regions,
			Region{HasLower: true, Lower: s},
			Region{HasUpper: true, Upper: s})
	}
	// Two lines.
	for _, lo := range signs {
		for _, hi := range signs {
			regions = append(regions, Region{HasLower: true, Lower: lo, HasUpper: true, Upper: hi})
		}
	}

	var out Completeness
	seen := make(map[Class]bool)
	for _, r := range regions {
		cls, ok := r.Class()
		if !ok {
			continue
		}
		if seen[cls] {
			continue // the same class cannot arise from two region shapes
		}
		seen[cls] = true
		out.Classes = append(out.Classes, cls)
		switch r.Lines() {
		case 0:
			out.ZeroLines++
		case 1:
			out.OneLine++
		default:
			out.TwoLines++
		}
	}
	return out
}

// RenderRegion draws the specialization's region as an ASCII plot over a
// size×size corner of the (tt, vt) plane — a textual reproduction of one
// panel of Figure 1. '#' marks permitted stamps, '·' forbidden ones; the
// horizontal axis is tt, the vertical axis vt (increasing upward).
func RenderRegion(s EventSpec, size int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", s)
	for vt := size - 1; vt >= 0; vt-- {
		b.WriteString("vt ")
		for tt := 0; tt < size; tt++ {
			if s.Check(Stamp{TT: chronon.Chronon(tt), VT: chronon.Chronon(vt)}) == nil {
				b.WriteByte('#')
			} else {
				b.WriteString("·")
			}
		}
		b.WriteByte('\n')
	}
	b.WriteString("   ")
	b.WriteString(strings.Repeat("-", size))
	b.WriteString(" tt\n")
	return b.String()
}
