package core

import (
	"strings"
	"testing"

	"repro/internal/chronon"
	"repro/internal/element"
	"repro/internal/surrogate"
)

func findingClasses(fs []Finding) map[Class]bool {
	out := make(map[Class]bool)
	for _, f := range fs {
		out[f.Class] = true
	}
	return out
}

func TestInferEventClassesRetroactive(t *testing.T) {
	// Monitoring data: always stored 30-60 seconds after sampling.
	stamps := mkStamps(100, 60, 200, 150, 300, 255)
	got := findingClasses(InferEventClasses(stamps, chronon.Second))
	for _, want := range []Class{General, Retroactive, DelayedRetroactive,
		StronglyRetroactivelyBounded, DelayedStronglyRetroactivelyBounded,
		RetroactivelyBounded, PredictivelyBounded, StronglyBounded} {
		if !got[want] {
			t.Errorf("missing %v", want)
		}
	}
	for _, not := range []Class{Predictive, EarlyPredictive, Degenerate,
		StronglyPredictivelyBounded, EarlyStronglyPredictivelyBounded} {
		if got[not] {
			t.Errorf("unexpected %v", not)
		}
	}
}

func TestInferEventClassesBoundsSynthesis(t *testing.T) {
	// Delays are 40 and 45: tightest delayed-retroactive Δt is 40; tightest
	// strongly-retroactively-bounded Δt is 45.
	stamps := mkStamps(100, 60, 200, 155)
	fs := InferEventClasses(stamps, chronon.Second)
	details := make(map[Class]string)
	for _, f := range fs {
		details[f.Class] = f.Detail
	}
	if got := details[DelayedRetroactive]; got != "Δt=40s" {
		t.Errorf("delayed retroactive detail = %q", got)
	}
	if got := details[StronglyRetroactivelyBounded]; got != "Δt=45s" {
		t.Errorf("strongly retroactively bounded detail = %q", got)
	}
	if got := details[DelayedStronglyRetroactivelyBounded]; got != "Δt₁=40s, Δt₂=45s" {
		t.Errorf("delayed strongly detail = %q", got)
	}
	if got := details[StronglyBounded]; got != "Δt₁=45s, Δt₂=0s" {
		t.Errorf("strongly bounded detail = %q", got)
	}
}

func TestInferEventClassesDegenerate(t *testing.T) {
	stamps := mkStamps(100, 100, 200, 200)
	got := findingClasses(InferEventClasses(stamps, chronon.Second))
	if !got[Degenerate] {
		t.Error("degenerate extension not recognized")
	}
	// Degenerate at a coarse granularity only: 100 and 110 share the
	// minute tick [60, 120), as do 200 and 215 in [180, 240).
	coarse := mkStamps(100, 110, 200, 215)
	if findingClasses(InferEventClasses(coarse, chronon.Second))[Degenerate] {
		t.Error("non-degenerate at second granularity misclassified")
	}
	if !findingClasses(InferEventClasses(coarse, chronon.Minute))[Degenerate] {
		t.Error("degenerate at minute granularity not recognized")
	}
}

func TestInferEventClassesPredictive(t *testing.T) {
	// Payroll: recorded 3-7 days ahead.
	day := int64(86400)
	stamps := mkStamps(0, 3*day, 100, 100+7*day)
	got := findingClasses(InferEventClasses(stamps, chronon.Second))
	for _, want := range []Class{Predictive, EarlyPredictive,
		StronglyPredictivelyBounded, EarlyStronglyPredictivelyBounded} {
		if !got[want] {
			t.Errorf("missing %v", want)
		}
	}
	if got[Retroactive] || got[DelayedRetroactive] {
		t.Error("predictive extension misclassified as retroactive")
	}
}

func TestInferEventClassesClosedUnderAncestors(t *testing.T) {
	// Whatever classes inference reports, every event-class ancestor must
	// be reported too (the lattice is a true generalization hierarchy).
	fixtures := [][]int64{
		{100, 60, 200, 150},
		{0, 0, 10, 10},
		{0, 5, 10, 25},
		{0, -5, 10, 5},
		{42, 42},
	}
	for _, raw := range fixtures {
		got := findingClasses(InferEventClasses(mkStamps(raw...), chronon.Second))
		for c := range got {
			for _, a := range Ancestors(c) {
				if a.Category() == CategoryIsolatedEvent && !got[a] {
					t.Errorf("fixture %v: %v found but ancestor %v missing", raw, c, a)
				}
			}
		}
	}
}

func TestInferInterEventClasses(t *testing.T) {
	// A degenerate periodic sampler: sequential, non-decreasing, and
	// regular in every sense.
	stamps := mkStamps(100, 100, 110, 110, 120, 120)
	got := findingClasses(InferInterEventClasses(stamps))
	for _, want := range []Class{GloballyNonDecreasingEvents, GloballySequentialEvents,
		TTEventRegular, VTEventRegular, TemporalEventRegular,
		StrictTTEventRegular, StrictVTEventRegular, StrictTemporalEventRegular} {
		if !got[want] {
			t.Errorf("missing %v", want)
		}
	}
	if got[GloballyNonIncreasingEvents] {
		t.Error("increasing extension reported non-increasing")
	}
}

func TestInferInterEventUnits(t *testing.T) {
	// tts 28s apart, vts 6s apart (both anchored): units synthesized as
	// gcds.
	stamps := mkStamps(0, 0, 28, 6, 56, 12)
	fs := InferInterEventClasses(stamps)
	details := make(map[Class]string)
	for _, f := range fs {
		details[f.Class] = f.Detail
	}
	if got := details[TTEventRegular]; got != "Δt=28s" {
		t.Errorf("tt regular detail = %q", got)
	}
	if got := details[VTEventRegular]; got != "Δt=6s" {
		t.Errorf("vt regular detail = %q", got)
	}
	if _, ok := details[TemporalEventRegular]; ok {
		t.Error("temporal regular requires constant offset; none here")
	}
}

func TestInferInterEventClosedUnderAncestors(t *testing.T) {
	fixtures := [][]int64{
		{100, 100, 110, 110, 120, 120},
		{0, 0, 28, 6, 56, 12},
		{10, 5, 20, 15, 30, 25},
		{10, 100, 20, 50},
		{5, 5},
	}
	for _, raw := range fixtures {
		got := findingClasses(InferInterEventClasses(mkStamps(raw...)))
		for c := range got {
			for _, a := range Ancestors(c) {
				if a == General {
					continue
				}
				if (a.Category() == CategoryInterEventOrder || a.Category() == CategoryInterEventRegular) && !got[a] {
					t.Errorf("fixture %v: %v found but ancestor %v missing", raw, c, a)
				}
			}
		}
	}
}

func TestInferIntervalRegularity(t *testing.T) {
	day := int64(86400)
	es := elems(
		intervalElem(0, day, 0, 2*day),
		intervalElem(0, 3*day, 100, 100+4*day),
	)
	fs := InferIntervalRegularity(es)
	got := findingClasses(fs)
	for _, want := range []Class{VTIntervalRegular, TTIntervalRegular, TemporalIntervalRegular} {
		if !got[want] {
			t.Errorf("missing %v", want)
		}
	}
	if got[StrictVTIntervalRegular] {
		t.Error("unequal durations reported strict")
	}
	// All durations equal: strict everything.
	strict := elems(
		intervalElem(0, day, 0, day),
		intervalElem(0, day, 50, 50+day),
	)
	got = findingClasses(InferIntervalRegularity(strict))
	for _, want := range []Class{StrictVTIntervalRegular, StrictTTIntervalRegular, StrictTemporalIntervalRegular} {
		if !got[want] {
			t.Errorf("missing %v", want)
		}
	}
}

func TestClassifyEventRelation(t *testing.T) {
	es := elems(
		eventElem(100, int64(chronon.Forever), 60),
		eventElem(200, int64(chronon.Forever), 150),
	)
	rep := Classify(es, TTInsertion, chronon.Second)
	if !rep.Has(Retroactive) || !rep.Has(GloballyNonDecreasingEvents) {
		t.Errorf("Classify missing classes: %v", rep.Findings)
	}
	ms := rep.MostSpecific()
	if len(ms) == 0 {
		t.Fatal("no most-specific findings")
	}
	for _, f := range ms {
		if f.Class == General {
			t.Error("general survived most-specific filtering despite specializations")
		}
	}
}

func TestClassifyIntervalRelation(t *testing.T) {
	es := elems(
		intervalElem(20, int64(chronon.Forever), 0, 10),
		intervalElem(40, int64(chronon.Forever), 10, 20),
		intervalElem(60, int64(chronon.Forever), 20, 30),
	)
	rep := Classify(es, TTInsertion, chronon.Second)
	if !rep.Has(GloballyContiguous) {
		t.Errorf("contiguous shifts not recognized: %v", rep.Findings)
	}
	if !rep.Has(StrictVTIntervalRegular) {
		t.Errorf("strict vt interval regularity not recognized: %v", rep.Findings)
	}
	// Endpoint findings carry their endpoint.
	sawStart, sawEnd := false, false
	for _, f := range rep.Findings {
		if f.Class == Retroactive && f.HasEndpoint {
			if f.Endpoint == VTStart {
				sawStart = true
			} else {
				sawEnd = true
			}
		}
	}
	if !sawStart {
		t.Error("vt⊢-retroactive not reported")
	}
	// Every interval also ends before it is stored, so the relation is
	// vt⊣-retroactive too — the paper's shorthand "retroactive" applies.
	if !sawEnd {
		t.Error("vt⊣-retroactive not reported")
	}
}

func TestClassifyEmpty(t *testing.T) {
	rep := Classify(nil, TTInsertion, chronon.Second)
	if len(rep.Findings) != 0 {
		t.Errorf("empty extension classified: %v", rep.Findings)
	}
	if rep.Has(General) {
		t.Error("empty report has classes")
	}
}

func TestClassifyPerPartition(t *testing.T) {
	// Claim C4 setting: two partitions, each regular with its own anchor.
	// Per-partition regularity holds; global regularity holds too for the
	// non-strict variant (units compose); global strictness fails.
	day := int64(86400)
	p1 := elems(
		eventElem(0, int64(chronon.Forever), 0),
		eventElem(10*day, int64(chronon.Forever), 10*day),
	)
	p2 := elems(
		eventElem(3, int64(chronon.Forever), 3),
		eventElem(3+10*day, int64(chronon.Forever), 3+10*day),
	)
	rep := ClassifyPerPartition(map[surrogate.Surrogate][]*element.Element{
		1: p1, 2: p2,
	}, TTInsertion, chronon.Second)
	if !rep.Has(Degenerate) {
		t.Errorf("per-partition degenerate missing: %v", rep.Findings)
	}
	if !rep.Has(StrictTTEventRegular) {
		t.Errorf("per-partition strict regularity missing: %v", rep.Findings)
	}
	for _, f := range rep.Findings {
		if f.Detail != "per partition" {
			t.Errorf("finding %v lacks per-partition detail", f)
		}
	}
}

func TestClassifyPerPartitionIntersection(t *testing.T) {
	// One retroactive partition, one predictive: only their common
	// ancestors survive.
	p1 := elems(eventElem(100, int64(chronon.Forever), 50))
	p2 := elems(eventElem(100, int64(chronon.Forever), 150))
	rep := ClassifyPerPartition(map[surrogate.Surrogate][]*element.Element{1: p1, 2: p2}, TTInsertion, chronon.Second)
	if rep.Has(Retroactive) || rep.Has(Predictive) {
		t.Errorf("non-common class survived intersection: %v", rep.Findings)
	}
	if !rep.Has(General) || !rep.Has(StronglyBounded) {
		t.Errorf("common classes missing: %v", rep.Findings)
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{Class: Retroactive, Detail: "Δt=5s"}
	if got := f.String(); got != "retroactive (Δt=5s)" {
		t.Errorf("String = %q", got)
	}
	f2 := Finding{Class: Retroactive, HasEndpoint: true, Endpoint: VTEnd}
	if got := f2.String(); got != "vt⊣-retroactive" {
		t.Errorf("String = %q", got)
	}
}

func TestReportClasses(t *testing.T) {
	rep := Report{Findings: []Finding{
		{Class: Retroactive}, {Class: Retroactive, HasEndpoint: true, Endpoint: VTEnd}, {Class: General},
	}}
	cs := rep.Classes()
	if len(cs) != 2 || cs[0] != General || cs[1] != Retroactive {
		t.Errorf("Classes = %v", cs)
	}
}

func TestTTBasisVTEndpointStrings(t *testing.T) {
	if TTInsertion.String() != "insertion" || TTDeletion.String() != "deletion" {
		t.Error("basis names wrong")
	}
	if VTStart.String() != "vt⊢" || VTEnd.String() != "vt⊣" {
		t.Error("endpoint names wrong")
	}
	if !strings.Contains((EndpointSpec{Event: RetroactiveSpec(), Basis: TTDeletion, Endpoint: VTEnd}).String(), "deletion") {
		t.Error("endpoint spec string lacks basis")
	}
}
