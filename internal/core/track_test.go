package core

import (
	"math/rand"
	"testing"

	"repro/internal/chronon"
	"repro/internal/element"
	"repro/internal/surrogate"
)

func trackEv(es uint64, tt, vt int64) *element.Element {
	return &element.Element{
		ES: surrogate.Surrogate(es), OS: 1,
		TTStart: chronon.Chronon(tt), TTEnd: chronon.Forever,
		VT: element.EventAt(chronon.Chronon(vt)),
	}
}

func trackIv(es uint64, tt, vs, ve int64) *element.Element {
	return &element.Element{
		ES: surrogate.Surrogate(es), OS: 1,
		TTStart: chronon.Chronon(tt), TTEnd: chronon.Forever,
		VT: element.SpanOf(chronon.Chronon(vs), chronon.Chronon(ve)),
	}
}

// The tracker must agree exactly with the batch specs (the declaration
// enforcers) on every ordering class it claims, over random event extensions
// — including equal-tt groups, duplicates, and adversarial mixes.
func TestTrackerMatchesBatchSpecsEvents(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 400; trial++ {
		n := rng.Intn(24)
		tr := NewTracker(element.EventStamp, chronon.Second)
		es := make([]*element.Element, 0, n)
		tt := int64(rng.Intn(4))
		for i := 0; i < n; i++ {
			// Non-decreasing arrival tt with occasional equal-tt groups.
			if rng.Intn(3) > 0 {
				tt += int64(rng.Intn(3))
			}
			var vt int64
			switch rng.Intn(4) {
			case 0:
				vt = tt // degenerate-ish
			case 1:
				vt = tt + int64(rng.Intn(4)) // near future
			case 2:
				vt = tt - int64(rng.Intn(4)) // near past
			default:
				vt = int64(rng.Intn(40)) // anywhere
			}
			e := trackEv(uint64(i+1), tt, vt)
			es = append(es, e)
			tr.Observe(e)
		}

		stamps := StampsOf(es, TTInsertion, VTStart)
		want := map[Class]bool{
			GloballySequentialEvents:    SequentialEventsSpec().CheckAll(stamps) == nil,
			GloballyNonDecreasingEvents: NonDecreasingEventsSpec().CheckAll(stamps) == nil,
			GloballyNonIncreasingEvents: NonIncreasingEventsSpec().CheckAll(stamps) == nil,
		}
		deg := true
		for _, st := range stamps {
			if !chronon.Second.SameTick(st.VT, st.TT) {
				deg = false
				break
			}
		}
		want[Degenerate] = deg

		got := map[Class]bool{}
		for _, c := range tr.Classes() {
			got[c] = true
		}
		if n == 0 {
			if len(got) != 0 {
				t.Fatalf("trial %d: empty extension claimed %v", trial, tr.Classes())
			}
			continue
		}
		for c, w := range want {
			if got[c] != w {
				t.Fatalf("trial %d (n=%d): class %v: tracker=%v batch=%v\nstamps=%v",
					trial, n, c, got[c], w, stamps)
			}
		}
	}
}

func TestTrackerMatchesBatchSpecsIntervals(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 400; trial++ {
		n := rng.Intn(20)
		tr := NewTracker(element.IntervalStamp, chronon.Second)
		es := make([]*element.Element, 0, n)
		tt := int64(rng.Intn(4))
		for i := 0; i < n; i++ {
			if rng.Intn(3) > 0 {
				tt += int64(rng.Intn(3))
			}
			vs := tt + int64(rng.Intn(9)) - 4
			ve := vs + 1 + int64(rng.Intn(5))
			e := trackIv(uint64(i+1), tt, vs, ve)
			es = append(es, e)
			tr.Observe(e)
		}

		stamps := IntervalStampsOf(es, TTInsertion)
		want := map[Class]bool{
			GloballySequentialIntervals:    SequentialIntervalsSpec().CheckAll(stamps) == nil,
			GloballyNonDecreasingIntervals: NonDecreasingIntervalsSpec().CheckAll(stamps) == nil,
			GloballyNonIncreasingIntervals: NonIncreasingIntervalsSpec().CheckAll(stamps) == nil,
		}
		got := map[Class]bool{}
		for _, c := range tr.Classes() {
			got[c] = true
		}
		if n == 0 {
			if len(got) != 0 {
				t.Fatalf("trial %d: empty extension claimed %v", trial, tr.Classes())
			}
			continue
		}
		for c, w := range want {
			if got[c] != w {
				t.Fatalf("trial %d (n=%d): class %v: tracker=%v batch=%v",
					trial, n, c, got[c], w)
			}
		}
	}
}

// Tracked properties are monotone: once a class drops out of Classes it never
// reappears under further observation.
func TestTrackerMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := NewTracker(element.EventStamp, chronon.Second)
	lost := map[Class]bool{}
	tt := int64(0)
	for i := 0; i < 300; i++ {
		tt += int64(rng.Intn(2))
		e := trackEv(uint64(i+1), tt, int64(rng.Intn(50)))
		tr.Observe(e)
		have := map[Class]bool{}
		for _, c := range tr.Classes() {
			have[c] = true
		}
		for c := range lost {
			if have[c] {
				t.Fatalf("step %d: class %v reappeared after being lost", i, c)
			}
		}
		for _, c := range []Class{Degenerate, GloballySequentialEvents,
			GloballyNonDecreasingEvents, GloballyNonIncreasingEvents} {
			if !have[c] {
				lost[c] = true
			}
		}
	}
}

// Out-of-order arrival must be counted and must poison the ordering claims
// rather than silently over-claiming.
func TestTrackerArrivalViolation(t *testing.T) {
	tr := NewTracker(element.EventStamp, chronon.Second)
	tr.Observe(trackEv(1, 10, 10))
	tr.Observe(trackEv(2, 5, 5)) // tt regression
	st := tr.Stats()
	if st.TTViolations != 1 {
		t.Fatalf("TTViolations = %d, want 1", st.TTViolations)
	}
	for _, c := range tr.Classes() {
		if c == GloballySequentialEvents || c == GloballyNonDecreasingEvents ||
			c == GloballyNonIncreasingEvents {
			t.Fatalf("ordering class %v claimed after tt regression", c)
		}
	}
}

func TestTrackerStatsBounds(t *testing.T) {
	tr := NewTracker(element.EventStamp, chronon.Second)
	tr.Observe(trackEv(1, 100, 97))  // off −3
	tr.Observe(trackEv(2, 110, 115)) // off +5
	tr.Observe(trackEv(3, 120, 121)) // off +1
	st := tr.Stats()
	if st.OffsetLo != -3 || st.OffsetHi != 5 {
		t.Fatalf("offsets = [%d, %d], want [-3, 5]", st.OffsetLo, st.OffsetHi)
	}
	// vt deltas from anchor 97: 18, 24 → gcd 6.
	if st.VTUnit != 6 {
		t.Fatalf("VTUnit = %d, want 6", st.VTUnit)
	}
	if st.Elements != 3 || st.VTViolations != 0 {
		t.Fatalf("stats = %+v", st)
	}
}
