package core

import (
	"fmt"

	"repro/internal/chronon"
)

// TTBasis selects which transaction time an isolated-event specialization
// is relative to. Per §3.1, "each property is relative to one of these two
// times": a relation may, for example, be deletion retroactive but not
// insertion retroactive. A relation that has a property on both bases may
// also be considered to have it on a modification basis, since a
// modification is a deletion followed by an insertion.
type TTBasis uint8

const (
	// TTInsertion bases the property on tt⊢, the insertion time.
	TTInsertion TTBasis = iota
	// TTDeletion bases the property on tt⊣, the logical deletion time.
	TTDeletion
)

// String names the basis.
func (b TTBasis) String() string {
	if b == TTInsertion {
		return "insertion"
	}
	return "deletion"
}

// VTEndpoint selects which valid-time endpoint an event specialization is
// applied to when the relation is interval-stamped (§3.3): a designer may
// state that an interval relation is vt⊢-retroactive and vt⊣-degenerate.
// For event-stamped relations both endpoints coincide with vt.
type VTEndpoint uint8

const (
	// VTStart applies the property to vt⊢ (or vt for event relations).
	VTStart VTEndpoint = iota
	// VTEnd applies the property to vt⊣ (or vt for event relations).
	VTEnd
)

// String names the endpoint.
func (p VTEndpoint) String() string {
	if p == VTStart {
		return "vt⊢"
	}
	return "vt⊣"
}

// Stamp is the (transaction time, valid time) pair of one element under a
// chosen basis and endpoint — the coordinates of Figure 1's two-dimensional
// space.
type Stamp struct {
	TT chronon.Chronon
	VT chronon.Chronon
}

// EventSpec is an isolated-event specialization of §3.1: a restriction on
// the (tt, vt) pair of each element in isolation. All twelve classes are
// expressible as offset bounds on vt relative to tt:
//
//	lower ≤ vt − tt ≤ upper
//
// where either bound may be absent and offsets may be calendric (e.g. one
// month). Degenerate additionally ties vt to tt's granularity tick.
// Construct EventSpecs with the per-class constructors, which validate the
// bound signs the paper requires.
type EventSpec struct {
	class Class
	lower *chronon.Duration // vt ≥ lower.AddTo(tt) when non-nil
	upper *chronon.Duration // vt ≤ upper.AddTo(tt) when non-nil
	gran  chronon.Granularity
}

// Class reports the specialization's class.
func (s EventSpec) Class() Class { return s.class }

// Bounds reports the offset bounds (nil when absent).
func (s EventSpec) Bounds() (lower, upper *chronon.Duration) { return s.lower, s.upper }

// Granularity reports the degenerate spec's granularity (zero for other
// classes).
func (s EventSpec) Granularity() chronon.Granularity { return s.gran }

// OffsetBounds reports the spec's restriction as fixed offsets:
// lo ≤ vt − tt ≤ hi. ok is false when either bound is absent or calendric
// (calendric bounds vary with the anchor date, so no fixed window exists).
// Degenerate reports [−g+1, g−1] at its granularity g: two chronons in the
// same tick differ by less than one tick.
//
// A two-sided bound lets a query processor convert a valid-time predicate
// into a transaction-time window (tt ∈ [vt−hi, vt−lo]) — the
// specialization-driven strategy selection the paper's §1 promises.
func (s EventSpec) OffsetBounds() (lo, hi int64, ok bool) {
	if s.class == Degenerate {
		g := int64(s.gran)
		return -(g - 1), g - 1, true
	}
	if s.lower == nil || s.upper == nil {
		return 0, 0, false
	}
	loSec, okLo := s.lower.FixedSeconds()
	hiSec, okHi := s.upper.FixedSeconds()
	if !okLo || !okHi {
		return 0, 0, false
	}
	return loSec, hiSec, true
}

// String renders the spec with its parameters.
func (s EventSpec) String() string {
	switch s.class {
	case General, Retroactive, Predictive:
		return s.class.String()
	case Degenerate:
		return fmt.Sprintf("%s (granularity %v)", s.class, s.gran)
	case DelayedRetroactive:
		return fmt.Sprintf("%s (Δt=%v)", s.class, s.upper.Neg())
	case EarlyPredictive:
		return fmt.Sprintf("%s (Δt=%v)", s.class, *s.lower)
	case RetroactivelyBounded:
		return fmt.Sprintf("%s (Δt=%v)", s.class, s.lower.Neg())
	case PredictivelyBounded:
		return fmt.Sprintf("%s (Δt=%v)", s.class, *s.upper)
	case StronglyRetroactivelyBounded:
		return fmt.Sprintf("%s (Δt=%v)", s.class, s.lower.Neg())
	case StronglyPredictivelyBounded:
		return fmt.Sprintf("%s (Δt=%v)", s.class, *s.upper)
	case DelayedStronglyRetroactivelyBounded:
		return fmt.Sprintf("%s (Δt₁=%v, Δt₂=%v)", s.class, s.upper.Neg(), s.lower.Neg())
	case EarlyStronglyPredictivelyBounded:
		return fmt.Sprintf("%s (Δt₁=%v, Δt₂=%v)", s.class, *s.lower, *s.upper)
	case StronglyBounded:
		return fmt.Sprintf("%s (Δt₁=%v, Δt₂=%v)", s.class, s.lower.Neg(), *s.upper)
	}
	return s.class.String()
}

// Check tests one stamp against the specialization. A nil return means the
// stamp satisfies the restriction.
func (s EventSpec) Check(st Stamp) error {
	if s.class == Degenerate {
		if !s.gran.SameTick(st.VT, st.TT) {
			return &EventViolation{Spec: s, Stamp: st,
				Reason: fmt.Sprintf("vt %v and tt %v differ at granularity %v", st.VT, st.TT, s.gran)}
		}
		return nil
	}
	if s.lower != nil {
		if lo := s.lower.AddTo(st.TT); st.VT < lo {
			return &EventViolation{Spec: s, Stamp: st,
				Reason: fmt.Sprintf("vt %v precedes lower bound %v (tt %v %+v)", st.VT, lo, st.TT, *s.lower)}
		}
	}
	if s.upper != nil {
		if hi := s.upper.AddTo(st.TT); st.VT > hi {
			return &EventViolation{Spec: s, Stamp: st,
				Reason: fmt.Sprintf("vt %v exceeds upper bound %v (tt %v %+v)", st.VT, hi, st.TT, *s.upper)}
		}
	}
	return nil
}

// CheckAll tests every stamp of an extension, returning the first
// violation. This realizes the intensional definition of §3: a relation has
// the type only if every possible extension satisfies it, so the database
// must validate every stored element.
func (s EventSpec) CheckAll(stamps []Stamp) error {
	for _, st := range stamps {
		if err := s.Check(st); err != nil {
			return err
		}
	}
	return nil
}

// EventViolation reports an element whose stamps fall outside the
// specialization's region.
type EventViolation struct {
	Spec   EventSpec
	Stamp  Stamp
	Reason string
}

func (v *EventViolation) Error() string {
	return fmt.Sprintf("core: %s violated: %s", v.Spec, v.Reason)
}

func zero() *chronon.Duration { d := chronon.Duration{}; return &d }

func dur(d chronon.Duration) *chronon.Duration { return &d }

// GeneralSpec places no restriction on stamps.
func GeneralSpec() EventSpec { return EventSpec{class: General} }

// RetroactiveSpec restricts vt ≤ tt: the event occurred before it was
// stored — e.g. temperature monitoring with transmission delays (§1).
func RetroactiveSpec() EventSpec {
	return EventSpec{class: Retroactive, upper: zero()}
}

// DelayedRetroactiveSpec restricts vt ≤ tt − Δt for Δt > 0: a minimum
// recording delay, e.g. temperature samples always arriving more than 30
// seconds late.
func DelayedRetroactiveSpec(dt chronon.Duration) (EventSpec, error) {
	if err := positive("delayed retroactive", dt); err != nil {
		return EventSpec{}, err
	}
	return EventSpec{class: DelayedRetroactive, upper: dur(dt.Neg())}, nil
}

// PredictiveSpec restricts vt ≥ tt: facts are stored before they become
// valid — e.g. direct-deposit payroll checks.
func PredictiveSpec() EventSpec {
	return EventSpec{class: Predictive, lower: zero()}
}

// EarlyPredictiveSpec restricts vt ≥ tt + Δt for Δt > 0: a minimum lead,
// e.g. the bank requiring the payroll tape three days in advance.
func EarlyPredictiveSpec(dt chronon.Duration) (EventSpec, error) {
	if err := positive("early predictive", dt); err != nil {
		return EventSpec{}, err
	}
	return EventSpec{class: EarlyPredictive, lower: dur(dt)}, nil
}

// RetroactivelyBoundedSpec restricts vt ≥ tt − Δt for Δt ≥ 0: facts may be
// recorded late, but never more than Δt late (future facts are allowed) —
// e.g. project assignments recorded at most one month after taking effect.
func RetroactivelyBoundedSpec(dt chronon.Duration) (EventSpec, error) {
	if err := nonNegative("retroactively bounded", dt); err != nil {
		return EventSpec{}, err
	}
	return EventSpec{class: RetroactivelyBounded, lower: dur(dt.Neg())}, nil
}

// StronglyRetroactivelyBoundedSpec restricts tt − Δt ≤ vt ≤ tt: boundedly
// late and never in the future.
func StronglyRetroactivelyBoundedSpec(dt chronon.Duration) (EventSpec, error) {
	if err := nonNegative("strongly retroactively bounded", dt); err != nil {
		return EventSpec{}, err
	}
	return EventSpec{class: StronglyRetroactivelyBounded, lower: dur(dt.Neg()), upper: zero()}, nil
}

// DelayedStronglyRetroactivelyBoundedSpec restricts
// tt − maxDelay ≤ vt ≤ tt − minDelay with 0 ≤ minDelay < maxDelay: a
// minimum and a maximum recording delay — e.g. assignments recorded at
// least two days and at most one month after they finish.
func DelayedStronglyRetroactivelyBoundedSpec(minDelay, maxDelay chronon.Duration) (EventSpec, error) {
	if err := orderedBounds("delayed strongly retroactively bounded", minDelay, maxDelay); err != nil {
		return EventSpec{}, err
	}
	return EventSpec{
		class: DelayedStronglyRetroactivelyBounded,
		lower: dur(maxDelay.Neg()),
		upper: dur(minDelay.Neg()),
	}, nil
}

// PredictivelyBoundedSpec restricts vt ≤ tt + Δt for Δt ≥ 0: only the past
// and the near-term future may be stored — e.g. pending orders at most 30
// days out.
func PredictivelyBoundedSpec(dt chronon.Duration) (EventSpec, error) {
	if err := nonNegative("predictively bounded", dt); err != nil {
		return EventSpec{}, err
	}
	return EventSpec{class: PredictivelyBounded, upper: dur(dt)}, nil
}

// StronglyPredictivelyBoundedSpec restricts tt ≤ vt ≤ tt + Δt: boundedly in
// the future and never in the past.
func StronglyPredictivelyBoundedSpec(dt chronon.Duration) (EventSpec, error) {
	if err := nonNegative("strongly predictively bounded", dt); err != nil {
		return EventSpec{}, err
	}
	return EventSpec{class: StronglyPredictivelyBounded, lower: zero(), upper: dur(dt)}, nil
}

// EarlyStronglyPredictivelyBoundedSpec restricts
// tt + minLead ≤ vt ≤ tt + maxLead with 0 ≤ minLead < maxLead — e.g. the
// payroll tape sent at least three days and at most one week before the
// checks are valid.
func EarlyStronglyPredictivelyBoundedSpec(minLead, maxLead chronon.Duration) (EventSpec, error) {
	if err := orderedBounds("early strongly predictively bounded", minLead, maxLead); err != nil {
		return EventSpec{}, err
	}
	return EventSpec{
		class: EarlyStronglyPredictivelyBounded,
		lower: dur(minLead),
		upper: dur(maxLead),
	}, nil
}

// StronglyBoundedSpec restricts tt − Δt₁ ≤ vt ≤ tt + Δt₂: vt deviates from
// tt within bounds on both sides — e.g. an accounting relation holding only
// the current month's transactions.
func StronglyBoundedSpec(dt1, dt2 chronon.Duration) (EventSpec, error) {
	if err := nonNegative("strongly bounded", dt1); err != nil {
		return EventSpec{}, err
	}
	if err := nonNegative("strongly bounded", dt2); err != nil {
		return EventSpec{}, err
	}
	return EventSpec{class: StronglyBounded, lower: dur(dt1.Neg()), upper: dur(dt2)}, nil
}

// DegenerateSpec restricts vt = tt within the given granularity: no delay
// between sampling a value and storing it.
func DegenerateSpec(g chronon.Granularity) (EventSpec, error) {
	if !g.Valid() {
		return EventSpec{}, fmt.Errorf("core: degenerate: invalid granularity %d", g)
	}
	return EventSpec{class: Degenerate, gran: g}, nil
}

func positive(class string, d chronon.Duration) error {
	if d.IsZero() || d.Negative() || (d.Seconds < 0 || d.Months < 0) {
		return fmt.Errorf("core: %s: bound %v must be positive", class, d)
	}
	return nil
}

func nonNegative(class string, d chronon.Duration) error {
	if d.Seconds < 0 || d.Months < 0 {
		return fmt.Errorf("core: %s: bound %v must be non-negative", class, d)
	}
	return nil
}

// orderedBounds validates 0 ≤ lo < hi. Calendric and fixed components are
// compared separately, which is sound because months and seconds are
// independently monotone.
func orderedBounds(class string, lo, hi chronon.Duration) error {
	if err := nonNegative(class, lo); err != nil {
		return err
	}
	if err := positive(class, hi); err != nil {
		return err
	}
	if lo.Months > hi.Months || (lo.Months == hi.Months && lo.Seconds >= hi.Seconds) {
		return fmt.Errorf("core: %s: bounds %v and %v must satisfy Δt₁ < Δt₂", class, lo, hi)
	}
	return nil
}
