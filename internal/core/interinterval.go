package core

import (
	"fmt"
	"sort"

	"repro/internal/chronon"
	"repro/internal/element"
	"repro/internal/interval"
)

// IntervalStamp is the (transaction time, valid interval) pair of one
// element of an interval relation under a chosen transaction-time basis.
type IntervalStamp struct {
	TT chronon.Chronon
	VT interval.Interval
}

// IntervalStampsOf extracts interval stamps from an extension under basis
// b, skipping event-stamped elements and elements with no stamp under the
// basis.
func IntervalStampsOf(es []*element.Element, b TTBasis) []IntervalStamp {
	out := make([]IntervalStamp, 0, len(es))
	for _, e := range es {
		iv, ok := e.VT.Interval()
		if !ok {
			continue
		}
		tt := e.TTStart
		if b == TTDeletion {
			if e.Current() {
				continue
			}
			tt = e.TTEnd
		}
		out = append(out, IntervalStamp{TT: tt, VT: iv})
	}
	return out
}

// InterIntervalSpec is an inter-interval specialization of §3.4: a
// restriction on how the valid intervals of elements successive in
// transaction time relate. The successive-transaction-time-X classes cover
// all thirteen Allen relations; STMeets is the paper's globally contiguous
// relation, and the ordering and sequentiality properties carry over from
// events.
type InterIntervalSpec struct {
	class Class
}

// Class reports the specialization's class.
func (s InterIntervalSpec) Class() Class { return s.class }

// String names the spec.
func (s InterIntervalSpec) String() string { return s.class.String() }

// SequentialIntervalsSpec restricts each interval to occur and be stored
// before the next interval commences: for tt_e < tt_e',
// max(tt_e, vt⊣_e) ≤ min(tt_e', vt⊢_e') — e.g. weekly assignments recorded
// during the weekend.
func SequentialIntervalsSpec() InterIntervalSpec {
	return InterIntervalSpec{class: GloballySequentialIntervals}
}

// NonDecreasingIntervalsSpec restricts elements to be entered in valid
// time-stamp order: for tt_e < tt_e', vt⊢_e ≤ vt⊢_e'. (The paper's
// Thursday example — next week's assignment recorded during the current
// week — satisfies this but not sequentiality.)
func NonDecreasingIntervalsSpec() InterIntervalSpec {
	return InterIntervalSpec{class: GloballyNonDecreasingIntervals}
}

// NonIncreasingIntervalsSpec restricts elements to be entered in reverse
// valid time-stamp order: for tt_e < tt_e', vt⊢_e' ≤ vt⊢_e.
func NonIncreasingIntervalsSpec() InterIntervalSpec {
	return InterIntervalSpec{class: GloballyNonIncreasingIntervals}
}

// SuccessiveTTSpec restricts elements successive in transaction time to
// have valid intervals related by rel: for every element e, either some
// element e' with the next transaction time satisfies vt_e rel vt_e', or e
// has the latest transaction time. For example, SuccessiveTTSpec(Overlaps)
// "ensures that the next element began before the previous one completed."
func SuccessiveTTSpec(rel interval.Relation) InterIntervalSpec {
	return InterIntervalSpec{class: STBefore + Class(rel)}
}

// ContiguousSpec is the paper's globally contiguous relation: the end of
// one interval coincides with the start of the next stored — i.e.
// successive transaction time meets.
func ContiguousSpec() InterIntervalSpec { return SuccessiveTTSpec(interval.Meets) }

// AllenRelation reports the Allen relation of a successive-transaction-time
// class; ok is false for the ordering and sequentiality classes.
func (s InterIntervalSpec) AllenRelation() (interval.Relation, bool) {
	if s.class >= STBefore && s.class <= STFinishedBy {
		return interval.Relation(s.class - STBefore), true
	}
	return 0, false
}

// InterIntervalViolation reports stamps violating an inter-interval
// restriction.
type InterIntervalViolation struct {
	Spec   InterIntervalSpec
	Reason string
}

func (v *InterIntervalViolation) Error() string {
	return fmt.Sprintf("core: %s violated: %s", v.Spec, v.Reason)
}

func (s InterIntervalSpec) violation(format string, args ...any) error {
	return &InterIntervalViolation{Spec: s, Reason: fmt.Sprintf(format, args...)}
}

// CheckAll tests a whole extension. Stamps may be in any order; stamps
// sharing a transaction time form one group (the paper's definitions use
// strict tt inequality, and "nothing in between" ranges over strictly
// intermediate transaction times).
func (s InterIntervalSpec) CheckAll(stamps []IntervalStamp) error {
	if len(stamps) == 0 {
		return nil
	}
	sorted := append([]IntervalStamp(nil), stamps...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].TT < sorted[j].TT })
	groups := groupByTT(sorted)
	switch s.class {
	case GloballyNonDecreasingIntervals:
		prevMax := chronon.MinChronon
		for _, g := range groups {
			for _, st := range g {
				if st.VT.Start < prevMax {
					return s.violation("interval %v at tt %v starts before a prior element's start %v", st.VT, st.TT, prevMax)
				}
			}
			for _, st := range g {
				prevMax = chronon.Max(prevMax, st.VT.Start)
			}
		}
	case GloballyNonIncreasingIntervals:
		prevMin := chronon.MaxChronon
		for _, g := range groups {
			for _, st := range g {
				if st.VT.Start > prevMin {
					return s.violation("interval %v at tt %v starts after a prior element's start %v", st.VT, st.TT, prevMin)
				}
			}
			for _, st := range g {
				prevMin = chronon.Min(prevMin, st.VT.Start)
			}
		}
	case GloballySequentialIntervals:
		prevHigh := chronon.MinChronon
		for _, g := range groups {
			for _, st := range g {
				if low := chronon.Min(st.TT, st.VT.Start); low < prevHigh {
					return s.violation("interval %v at tt %v commences (min(tt,vt⊢)=%v) before a prior interval completed (max(tt,vt⊣)=%v)",
						st.VT, st.TT, low, prevHigh)
				}
			}
			for _, st := range g {
				prevHigh = chronon.Max(prevHigh, chronon.Max(st.TT, st.VT.End))
			}
		}
	default:
		rel, ok := s.AllenRelation()
		if !ok {
			return fmt.Errorf("core: %v is not an inter-interval class", s.class)
		}
		// Each element must relate by rel to some element of the next
		// transaction-time group, unless it is in the last group.
		for gi := 0; gi+1 < len(groups); gi++ {
			next := groups[gi+1]
			for _, st := range groups[gi] {
				found := false
				for _, nx := range next {
					if interval.Relate(st.VT, nx.VT) == rel {
						found = true
						break
					}
				}
				if !found {
					return s.violation("interval %v at tt %v is not %v its successor %v at tt %v",
						st.VT, st.TT, rel, next[0].VT, next[0].TT)
				}
			}
		}
	}
	return nil
}

func groupByTT(sorted []IntervalStamp) [][]IntervalStamp {
	var groups [][]IntervalStamp
	start := 0
	for i := 1; i <= len(sorted); i++ {
		if i == len(sorted) || sorted[i].TT != sorted[start].TT {
			groups = append(groups, sorted[start:i])
			start = i
		}
	}
	return groups
}

// NewChecker returns an incremental checker. Stamps must arrive in
// non-decreasing transaction-time order. For the successive-transaction-
// time classes the checker requires every element of the previous group to
// relate to the first element of the new group — exact when transaction
// times are unique (each group is a singleton, which is how single-
// operation transactions behave) and conservative otherwise.
func (s InterIntervalSpec) NewChecker() *InterIntervalChecker {
	return &InterIntervalChecker{spec: s, prevMax: chronon.MinChronon,
		prevMin: chronon.MaxChronon, prevHigh: chronon.MinChronon}
}

// InterIntervalChecker validates interval stamps one at a time.
type InterIntervalChecker struct {
	spec InterIntervalSpec
	n    int

	groupTT   chronon.Chronon
	group     []interval.Interval // open group's intervals
	prevGroup []interval.Interval // the group before the open one

	prevMax  chronon.Chronon // max vt⊢ over closed groups
	prevMin  chronon.Chronon // min vt⊢ over closed groups
	prevHigh chronon.Chronon // max(tt, vt⊣) over closed groups

	groupMax  chronon.Chronon
	groupMin  chronon.Chronon
	groupHigh chronon.Chronon
}

// Spec returns the specialization the checker enforces.
func (c *InterIntervalChecker) Spec() InterIntervalSpec { return c.spec }

// Check reports whether st can be added without violating the
// specialization; it does not modify the checker.
func (c *InterIntervalChecker) Check(st IntervalStamp) error {
	s := c.spec
	if c.n > 0 && st.TT < c.groupTT {
		return s.violation("stamps offered out of transaction-time order (%v after %v)", st.TT, c.groupTT)
	}
	if c.n == 0 {
		return nil
	}
	newGroup := st.TT > c.groupTT
	prevMax, prevMin, prevHigh := c.prevMax, c.prevMin, c.prevHigh
	if newGroup {
		prevMax = chronon.Max(prevMax, c.groupMax)
		prevMin = chronon.Min(prevMin, c.groupMin)
		prevHigh = chronon.Max(prevHigh, c.groupHigh)
	}
	switch s.class {
	case GloballyNonDecreasingIntervals:
		if st.VT.Start < prevMax {
			return s.violation("interval %v at tt %v starts before a prior element's start %v", st.VT, st.TT, prevMax)
		}
	case GloballyNonIncreasingIntervals:
		if st.VT.Start > prevMin {
			return s.violation("interval %v at tt %v starts after a prior element's start %v", st.VT, st.TT, prevMin)
		}
	case GloballySequentialIntervals:
		if low := chronon.Min(st.TT, st.VT.Start); low < prevHigh {
			return s.violation("interval %v at tt %v commences (min(tt,vt⊢)=%v) before a prior interval completed (max(tt,vt⊣)=%v)",
				st.VT, st.TT, low, prevHigh)
		}
	default:
		rel, ok := s.AllenRelation()
		if !ok {
			return fmt.Errorf("core: %v is not an inter-interval class", s.class)
		}
		if newGroup {
			// The open group becomes the predecessor group: each of its
			// members must relate to this first member of the new group.
			for _, prev := range c.group {
				if interval.Relate(prev, st.VT) != rel {
					return s.violation("interval %v is not %v its successor %v at tt %v", prev, rel, st.VT, st.TT)
				}
			}
		}
	}
	return nil
}

// Note commits st to the checker's state. Callers must have verified the
// stamp with Check first.
func (c *InterIntervalChecker) Note(st IntervalStamp) {
	if c.n == 0 || st.TT > c.groupTT {
		if c.n > 0 {
			c.prevMax = chronon.Max(c.prevMax, c.groupMax)
			c.prevMin = chronon.Min(c.prevMin, c.groupMin)
			c.prevHigh = chronon.Max(c.prevHigh, c.groupHigh)
			c.prevGroup = c.group
		}
		c.groupTT = st.TT
		c.group = []interval.Interval{st.VT}
		c.groupMax, c.groupMin = st.VT.Start, st.VT.Start
		c.groupHigh = chronon.Max(st.TT, st.VT.End)
	} else {
		c.group = append(c.group, st.VT)
		c.groupMax = chronon.Max(c.groupMax, st.VT.Start)
		c.groupMin = chronon.Min(c.groupMin, st.VT.Start)
		c.groupHigh = chronon.Max(c.groupHigh, chronon.Max(st.TT, st.VT.End))
	}
	c.n++
}
