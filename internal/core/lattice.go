package core

import (
	"fmt"
	"sort"
	"strings"
)

// The generalization/specialization structure of the taxonomy (Figures 2,
// 3, 4, and 5). An edge parent → child means child is a specialization of
// parent: "a relation type can be specialized into any of the successor
// relation types, and a relation type inherits all the properties of its
// predecessor relation types."
//
// Figure 2 includes only undetermined relation types; determined
// counterparts exist for every node (attach a Mapping via DeterminedSpec).
// Figure 5 as printed draws a representative subset of the successive-
// transaction-time classes; here the full thirteen are placed under the
// ordering classes their Allen relation implies (X forces vt⊢_e ≤ vt⊢_e'
// and/or vt⊢_e ≥ vt⊢_e' for successive elements, which by transitivity
// yields the global ordering when transaction times are unique).
var latticeChildren = map[Class][]Class{
	// Figure 2 — isolated events.
	General:                      {RetroactivelyBounded, PredictivelyBounded},
	RetroactivelyBounded:         {Predictive, StronglyBounded},
	PredictivelyBounded:          {StronglyBounded, Retroactive},
	Predictive:                   {EarlyPredictive, StronglyPredictivelyBounded},
	StronglyBounded:              {StronglyPredictivelyBounded, StronglyRetroactivelyBounded},
	Retroactive:                  {StronglyRetroactivelyBounded, DelayedRetroactive},
	EarlyPredictive:              {EarlyStronglyPredictivelyBounded},
	StronglyPredictivelyBounded:  {EarlyStronglyPredictivelyBounded, Degenerate},
	StronglyRetroactivelyBounded: {Degenerate, DelayedStronglyRetroactivelyBounded},
	DelayedRetroactive:           {DelayedStronglyRetroactivelyBounded},

	// Figure 3 — inter-event orderings.
	GloballyNonDecreasingEvents: {GloballySequentialEvents},

	// Figure 4 — inter-event regularity.
	TTEventRegular:       {TemporalEventRegular, StrictTTEventRegular},
	VTEventRegular:       {TemporalEventRegular, StrictVTEventRegular},
	TemporalEventRegular: {StrictTemporalEventRegular},
	StrictTTEventRegular: {StrictTemporalEventRegular},
	StrictVTEventRegular: {StrictTemporalEventRegular},

	// §3.3 — isolated-interval regularity ("the structure is identical to
	// that of the previous section, with 'event' replaced by 'interval'").
	TTIntervalRegular:       {TemporalIntervalRegular, StrictTTIntervalRegular},
	VTIntervalRegular:       {TemporalIntervalRegular, StrictVTIntervalRegular},
	TemporalIntervalRegular: {StrictTemporalIntervalRegular},
	StrictTTIntervalRegular: {StrictTemporalIntervalRegular},
	StrictVTIntervalRegular: {StrictTemporalIntervalRegular},

	// Figure 5 — inter-interval. Successive-transaction-time classes whose
	// Allen relation forces starts forward sit under non-decreasing; those
	// forcing starts backward sit under non-increasing; the equal-start
	// relations sit under both.
	GloballyNonDecreasingIntervals: {
		GloballySequentialIntervals,
		STBefore, STMeets, STOverlaps, STContains, STFinishedBy,
		STStarts, STStartedBy, STEqual,
	},
	GloballyNonIncreasingIntervals: {
		STAfter, STMetBy, STOverlappedBy, STDuring, STFinishes,
		STStarts, STStartedBy, STEqual,
	},
}

// latticeExtraGeneralChildren lists the roots of the non-event taxonomies,
// all of which specialize the general relation directly.
var latticeExtraGeneralChildren = []Class{
	GloballyNonDecreasingEvents, GloballyNonIncreasingEvents,
	TTEventRegular, VTEventRegular,
	TTIntervalRegular, VTIntervalRegular,
	GloballyNonDecreasingIntervals, GloballyNonIncreasingIntervals,
}

// Children returns the immediate specializations of a class.
func Children(c Class) []Class {
	out := append([]Class(nil), latticeChildren[c]...)
	if c == General {
		out = append(out, latticeExtraGeneralChildren...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Parents returns the immediate generalizations of a class.
func Parents(c Class) []Class {
	var out []Class
	for _, p := range Classes() {
		for _, ch := range Children(p) {
			if ch == c {
				out = append(out, p)
				break
			}
		}
	}
	return out
}

// Ancestors returns every strict generalization of c, in ascending class
// order.
func Ancestors(c Class) []Class {
	seen := make(map[Class]bool)
	var walk func(Class)
	walk = func(x Class) {
		for _, p := range Parents(x) {
			if !seen[p] {
				seen[p] = true
				walk(p)
			}
		}
	}
	walk(c)
	return setToSlice(seen)
}

// Descendants returns every strict specialization of c, in ascending class
// order.
func Descendants(c Class) []Class {
	seen := make(map[Class]bool)
	var walk func(Class)
	walk = func(x Class) {
		for _, ch := range Children(x) {
			if !seen[ch] {
				seen[ch] = true
				walk(ch)
			}
		}
	}
	walk(c)
	return setToSlice(seen)
}

// IsSpecializationOf reports whether c is (reflexively, transitively) a
// specialization of p: an extension of class c has every property of p.
func IsSpecializationOf(c, p Class) bool {
	if c == p {
		return true
	}
	for _, a := range Ancestors(c) {
		if a == p {
			return true
		}
	}
	return false
}

// MostSpecific filters a set of satisfied classes down to the ones with no
// satisfied strict specialization — the tightest description of an
// extension within the taxonomy.
func MostSpecific(classes []Class) []Class {
	in := make(map[Class]bool, len(classes))
	for _, c := range classes {
		in[c] = true
	}
	var out []Class
	for _, c := range classes {
		dominated := false
		for _, d := range Descendants(c) {
			if in[d] {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func setToSlice(seen map[Class]bool) []Class {
	out := make([]Class, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RenderLattice renders the generalization/specialization structure of one
// category as an indented tree rooted at General, reproducing the figure
// for that category (Figure 2, 3, 4, or 5; CategoryIntervalRegular renders
// the §3.3 structure).
func RenderLattice(cat Category) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s taxonomy\n", cat)
	expanded := make(map[Class]bool)
	var walk func(c Class, depth int)
	walk = func(c Class, depth int) {
		indent := strings.Repeat("  ", depth)
		if expanded[c] {
			// Diamond in the lattice: the node was expanded under an
			// earlier parent; show it again without repeating its subtree.
			fmt.Fprintf(&b, "%s%s ^\n", indent, c)
			return
		}
		expanded[c] = true
		fmt.Fprintf(&b, "%s%s\n", indent, c)
		for _, ch := range Children(c) {
			if ch.Category() == cat {
				walk(ch, depth+1)
			}
		}
	}
	fmt.Fprintln(&b, "general")
	for _, ch := range Children(General) {
		if ch.Category() == cat {
			walk(ch, 1)
		}
	}
	return b.String()
}
