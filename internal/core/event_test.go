package core

import (
	"strings"
	"testing"

	"repro/internal/chronon"
)

func mustSpec(s EventSpec, err error) EventSpec {
	if err != nil {
		panic(err)
	}
	return s
}

// allEventSpecs returns one representative spec per isolated-event class,
// with Δt = 10s (and 30s where a second bound is needed).
func allEventSpecs(t *testing.T) map[Class]EventSpec {
	t.Helper()
	dt := chronon.Seconds(10)
	dt2 := chronon.Seconds(30)
	m := map[Class]EventSpec{
		General:     GeneralSpec(),
		Retroactive: RetroactiveSpec(),
		Predictive:  PredictiveSpec(),
	}
	var err error
	add := func(c Class, s EventSpec, e error) {
		if e != nil {
			t.Fatalf("%v: %v", c, e)
		}
		m[c] = s
	}
	var s EventSpec
	s, err = DelayedRetroactiveSpec(dt)
	add(DelayedRetroactive, s, err)
	s, err = EarlyPredictiveSpec(dt)
	add(EarlyPredictive, s, err)
	s, err = RetroactivelyBoundedSpec(dt)
	add(RetroactivelyBounded, s, err)
	s, err = StronglyRetroactivelyBoundedSpec(dt)
	add(StronglyRetroactivelyBounded, s, err)
	s, err = DelayedStronglyRetroactivelyBoundedSpec(dt, dt2)
	add(DelayedStronglyRetroactivelyBounded, s, err)
	s, err = PredictivelyBoundedSpec(dt)
	add(PredictivelyBounded, s, err)
	s, err = StronglyPredictivelyBoundedSpec(dt)
	add(StronglyPredictivelyBounded, s, err)
	s, err = EarlyStronglyPredictivelyBoundedSpec(dt, dt2)
	add(EarlyStronglyPredictivelyBounded, s, err)
	s, err = StronglyBoundedSpec(dt, dt2)
	add(StronglyBounded, s, err)
	s, err = DegenerateSpec(chronon.Second)
	add(Degenerate, s, err)
	return m
}

func TestEventSpecPredicates(t *testing.T) {
	specs := allEventSpecs(t)
	const tt = 1000
	// For each class: stamps that must pass and stamps that must fail
	// (vt offsets from tt). Δt = 10s, Δt₂ = 30s as built above.
	cases := map[Class]struct{ pass, fail []int64 }{
		General:                             {pass: []int64{-100, 0, 100}, fail: nil},
		Retroactive:                         {pass: []int64{-100, -1, 0}, fail: []int64{1, 50}},
		DelayedRetroactive:                  {pass: []int64{-100, -10}, fail: []int64{-9, 0, 5}},
		Predictive:                          {pass: []int64{0, 1, 100}, fail: []int64{-1, -50}},
		EarlyPredictive:                     {pass: []int64{10, 50}, fail: []int64{9, 0, -5}},
		RetroactivelyBounded:                {pass: []int64{-10, 0, 500}, fail: []int64{-11, -100}},
		StronglyRetroactivelyBounded:        {pass: []int64{-10, -5, 0}, fail: []int64{-11, 1}},
		DelayedStronglyRetroactivelyBounded: {pass: []int64{-30, -20, -10}, fail: []int64{-31, -9, 0, 5}},
		PredictivelyBounded:                 {pass: []int64{-500, 0, 10}, fail: []int64{11, 100}},
		StronglyPredictivelyBounded:         {pass: []int64{0, 5, 10}, fail: []int64{-1, 11}},
		EarlyStronglyPredictivelyBounded:    {pass: []int64{10, 20, 30}, fail: []int64{9, 0, 31}},
		StronglyBounded:                     {pass: []int64{-10, 0, 30}, fail: []int64{-11, 31}},
		Degenerate:                          {pass: []int64{0}, fail: []int64{-1, 1}},
	}
	for cls, c := range cases {
		spec := specs[cls]
		for _, off := range c.pass {
			st := Stamp{TT: tt, VT: chronon.Chronon(tt + off)}
			if err := spec.Check(st); err != nil {
				t.Errorf("%v: offset %d should pass: %v", cls, off, err)
			}
		}
		for _, off := range c.fail {
			st := Stamp{TT: tt, VT: chronon.Chronon(tt + off)}
			if err := spec.Check(st); err == nil {
				t.Errorf("%v: offset %d should fail", cls, off)
			}
		}
	}
}

func TestEventSpecConstructorValidation(t *testing.T) {
	neg := chronon.Seconds(-1)
	zero := chronon.Duration{}
	ten := chronon.Seconds(10)
	five := chronon.Seconds(5)

	if _, err := DelayedRetroactiveSpec(zero); err == nil {
		t.Error("delayed retroactive with Δt=0 accepted")
	}
	if _, err := DelayedRetroactiveSpec(neg); err == nil {
		t.Error("delayed retroactive with Δt<0 accepted")
	}
	if _, err := EarlyPredictiveSpec(zero); err == nil {
		t.Error("early predictive with Δt=0 accepted")
	}
	if _, err := RetroactivelyBoundedSpec(neg); err == nil {
		t.Error("retroactively bounded with Δt<0 accepted")
	}
	if _, err := RetroactivelyBoundedSpec(zero); err != nil {
		t.Error("retroactively bounded with Δt=0 rejected (the paper allows Δt ≥ 0)")
	}
	if _, err := StronglyRetroactivelyBoundedSpec(neg); err == nil {
		t.Error("strongly retroactively bounded with Δt<0 accepted")
	}
	if _, err := DelayedStronglyRetroactivelyBoundedSpec(ten, five); err == nil {
		t.Error("delayed strongly retroactively bounded with Δt₁ > Δt₂ accepted")
	}
	if _, err := DelayedStronglyRetroactivelyBoundedSpec(ten, ten); err == nil {
		t.Error("delayed strongly retroactively bounded with Δt₁ = Δt₂ accepted")
	}
	if _, err := DelayedStronglyRetroactivelyBoundedSpec(zero, ten); err != nil {
		t.Error("Δt₁ = 0 should be allowed for delayed strongly retroactively bounded")
	}
	if _, err := EarlyStronglyPredictivelyBoundedSpec(ten, five); err == nil {
		t.Error("early strongly predictively bounded with Δt₁ > Δt₂ accepted")
	}
	if _, err := StronglyBoundedSpec(neg, ten); err == nil {
		t.Error("strongly bounded with negative Δt₁ accepted")
	}
	if _, err := StronglyBoundedSpec(ten, neg); err == nil {
		t.Error("strongly bounded with negative Δt₂ accepted")
	}
	if _, err := DegenerateSpec(0); err == nil {
		t.Error("degenerate with invalid granularity accepted")
	}
}

func TestEventSpecCalendricBounds(t *testing.T) {
	// Assignments recorded at most one month after taking effect: the bound
	// is calendric, so it covers 28-31 days depending on the anchor.
	spec := mustSpec(RetroactivelyBoundedSpec(chronon.Months(1)))
	tt := chronon.Date(1992, 3, 31) // one month back is Feb 29 (leap year)
	if err := spec.Check(Stamp{TT: tt, VT: chronon.Date(1992, 2, 29)}); err != nil {
		t.Errorf("Feb 29 should be within one month of Mar 31: %v", err)
	}
	if err := spec.Check(Stamp{TT: tt, VT: chronon.Date(1992, 2, 28)}); err == nil {
		t.Error("Feb 28 should be more than one calendric month before Mar 31")
	}
}

func TestEventSpecDegenerateGranularity(t *testing.T) {
	spec := mustSpec(DegenerateSpec(chronon.Minute))
	if err := spec.Check(Stamp{TT: 125, VT: 179}); err != nil {
		t.Errorf("same minute tick should pass: %v", err)
	}
	if err := spec.Check(Stamp{TT: 125, VT: 180}); err == nil {
		t.Error("different minute ticks should fail")
	}
}

func TestEventSpecCheckAll(t *testing.T) {
	spec := RetroactiveSpec()
	good := []Stamp{{TT: 10, VT: 5}, {TT: 20, VT: 20}}
	if err := spec.CheckAll(good); err != nil {
		t.Errorf("CheckAll(good): %v", err)
	}
	bad := append(good, Stamp{TT: 30, VT: 31})
	err := spec.CheckAll(bad)
	if err == nil {
		t.Fatal("CheckAll(bad) passed")
	}
	var ev *EventViolation
	if !asViolation(err, &ev) {
		t.Fatalf("error type %T, want *EventViolation", err)
	}
	if ev.Stamp.TT != 30 {
		t.Errorf("violation at tt %v, want 30", ev.Stamp.TT)
	}
	if !strings.Contains(err.Error(), "retroactive") {
		t.Errorf("violation message %q lacks class name", err.Error())
	}
}

func asViolation(err error, target **EventViolation) bool {
	v, ok := err.(*EventViolation)
	if ok {
		*target = v
	}
	return ok
}

func TestEventSpecStrings(t *testing.T) {
	specs := allEventSpecs(t)
	want := map[Class]string{
		General:                             "general",
		Retroactive:                         "retroactive",
		DelayedRetroactive:                  "delayed retroactive (Δt=10s)",
		Predictive:                          "predictive",
		EarlyPredictive:                     "early predictive (Δt=10s)",
		RetroactivelyBounded:                "retroactively bounded (Δt=10s)",
		StronglyRetroactivelyBounded:        "strongly retroactively bounded (Δt=10s)",
		DelayedStronglyRetroactivelyBounded: "delayed strongly retroactively bounded (Δt₁=10s, Δt₂=30s)",
		PredictivelyBounded:                 "predictively bounded (Δt=10s)",
		StronglyPredictivelyBounded:         "strongly predictively bounded (Δt=10s)",
		EarlyStronglyPredictivelyBounded:    "early strongly predictively bounded (Δt₁=10s, Δt₂=30s)",
		StronglyBounded:                     "strongly bounded (Δt₁=10s, Δt₂=30s)",
		Degenerate:                          "degenerate (granularity second)",
	}
	for cls, w := range want {
		if got := specs[cls].String(); got != w {
			t.Errorf("%v.String() = %q, want %q", cls, got, w)
		}
	}
}

func TestStampOfBases(t *testing.T) {
	specs := allEventSpecs(t)
	// A relation can be deletion retroactive but not insertion retroactive:
	// an element stored before its event occurs (insertion-predictive) but
	// deleted after (deletion-retroactive).
	e := eventElem(100, 300, 200)
	ins, ok := StampOf(e, TTInsertion, VTStart)
	if !ok || ins.TT != 100 || ins.VT != 200 {
		t.Fatalf("insertion stamp = %+v, %v", ins, ok)
	}
	del, ok := StampOf(e, TTDeletion, VTStart)
	if !ok || del.TT != 300 || del.VT != 200 {
		t.Fatalf("deletion stamp = %+v, %v", del, ok)
	}
	if err := specs[Retroactive].Check(ins); err == nil {
		t.Error("insertion stamp should not be retroactive")
	}
	if err := specs[Retroactive].Check(del); err != nil {
		t.Errorf("deletion stamp should be retroactive: %v", err)
	}
	if err := specs[Predictive].Check(ins); err != nil {
		t.Errorf("insertion stamp should be predictive: %v", err)
	}
}

func TestStampOfCurrentElementHasNoDeletionStamp(t *testing.T) {
	e := eventElem(100, int64(chronon.Forever), 50)
	if _, ok := StampOf(e, TTDeletion, VTStart); ok {
		t.Error("current element should have no deletion stamp")
	}
	stamps := StampsOf(elems(e, eventElem(10, 20, 5)), TTDeletion, VTStart)
	if len(stamps) != 1 {
		t.Errorf("StampsOf skipped wrong count: %d", len(stamps))
	}
}

func TestClassStringsAndCategories(t *testing.T) {
	for _, c := range Classes() {
		if strings.HasPrefix(c.String(), "Class(") {
			t.Errorf("class %d has no name", c)
		}
	}
	if Class(200).String() != "Class(200)" {
		t.Error("unknown class name fallback broken")
	}
	cats := map[Class]Category{
		Retroactive:              CategoryIsolatedEvent,
		GloballySequentialEvents: CategoryInterEventOrder,
		StrictVTEventRegular:     CategoryInterEventRegular,
		TemporalIntervalRegular:  CategoryIntervalRegular,
		STOverlaps:               CategoryInterInterval,
		GloballyContiguous:       CategoryInterInterval,
	}
	for c, want := range cats {
		if got := c.Category(); got != want {
			t.Errorf("%v.Category() = %v, want %v", c, got, want)
		}
	}
	for _, cat := range []Category{CategoryIsolatedEvent, CategoryInterEventOrder,
		CategoryInterEventRegular, CategoryIntervalRegular, CategoryInterInterval} {
		if strings.HasPrefix(cat.String(), "Category(") {
			t.Errorf("category %d has no name", cat)
		}
	}
	if GloballyContiguous != STMeets {
		t.Error("globally contiguous must be st-meets")
	}
}

func TestEventClassesList(t *testing.T) {
	ecs := EventClasses()
	if len(ecs) != 13 {
		t.Fatalf("EventClasses has %d entries, want 13", len(ecs))
	}
	if ecs[0] != General {
		t.Error("General must come first")
	}
	for _, c := range ecs {
		if c.Category() != CategoryIsolatedEvent {
			t.Errorf("%v is not an isolated-event class", c)
		}
	}
}
