package core

import (
	"testing"

	"repro/internal/chronon"
	"repro/internal/element"
)

// TestDeterminedCounterpartsForEveryClass pins the Figure 2 note: "there
// exist determined counterparts for all the undetermined specialized
// temporal relations." For each event class we pick a mapping function
// whose output lands inside the class's region and verify the determined
// spec accepts exactly the elements the mapping produces.
func TestDeterminedCounterpartsForEveryClass(t *testing.T) {
	mk := func(name string, off int64) Mapping {
		return Mapping{Name: name, Fn: func(e *element.Element) chronon.Chronon {
			return e.TTStart.Add(off)
		}}
	}
	// Mapping offsets inside each class's region at bounds Δt=10, Δt₂=30.
	offsets := map[Class]int64{
		General:                             17,
		Retroactive:                         -5,
		DelayedRetroactive:                  -15,
		Predictive:                          5,
		EarlyPredictive:                     15,
		RetroactivelyBounded:                -5,
		StronglyRetroactivelyBounded:        -5,
		DelayedStronglyRetroactivelyBounded: -20,
		PredictivelyBounded:                 5,
		StronglyPredictivelyBounded:         5,
		EarlyStronglyPredictivelyBounded:    20,
		StronglyBounded:                     0,
		Degenerate:                          0,
	}
	specs := allEventSpecs(t)
	for cls, base := range specs {
		off := offsets[cls]
		m := mk(cls.String(), off)
		det := DeterminedSpec{M: m, Base: base}
		good := eventElem(1000, int64(chronon.Forever), 1000+off)
		if err := det.Check(good); err != nil {
			t.Errorf("%v determined: matching element rejected: %v", cls, err)
		}
		// An element whose stored vt disagrees with the mapping fails,
		// even when the vt is still inside the base region.
		bad := eventElem(1000, int64(chronon.Forever), 1000+off-1)
		if err := det.Check(bad); err == nil && cls != General {
			// For General the base accepts everything but the determined
			// requirement vt = m(e) must still fail.
			t.Errorf("%v determined: mismatched element accepted", cls)
		}
		if cls == General {
			if err := det.Check(bad); err == nil {
				t.Error("general determined: mismatched element accepted")
			}
		}
	}
}

// TestDeterminedBaseRejectsOutOfRegionMapping verifies the other failure
// mode: the stored vt matches the mapping but the mapping's output violates
// the base class — the "retroactively determined" requirement m(e) ≤ tt.
func TestDeterminedBaseRejectsOutOfRegionMapping(t *testing.T) {
	future := Mapping{Name: "future", Fn: func(e *element.Element) chronon.Chronon {
		return e.TTStart.Add(60)
	}}
	det := DeterminedSpec{M: future, Base: RetroactiveSpec()}
	e := eventElem(1000, int64(chronon.Forever), 1060)
	if err := det.Check(e); err == nil {
		t.Error("retroactively determined accepted a future-valued mapping")
	}
}
