package core

import (
	"strings"
	"testing"

	"repro/internal/interval"
)

func TestInterIntervalOrderings(t *testing.T) {
	nd := NonDecreasingIntervalsSpec()
	ni := NonIncreasingIntervalsSpec()
	seq := SequentialIntervalsSpec()

	// The weekly-assignments example: workweek intervals with weekend gaps,
	// each week's assignment recorded during the weekend before it
	// commences (after the prior week ends, before the next begins).
	weekly := mkIStamps(
		5, 10, 16,
		16, 17, 23,
		23, 24, 30,
	)
	if err := seq.CheckAll(weekly); err != nil {
		t.Errorf("weekend-recorded assignments should be sequential: %v", err)
	}
	if err := nd.CheckAll(weekly); err != nil {
		t.Errorf("sequential extension should be non-decreasing: %v", err)
	}

	// The Thursday example: next week's assignment recorded during the
	// current week's interval — non-decreasing but not sequential.
	thursday := mkIStamps(
		5, 10, 17,
		14, 17, 24, // tt=14 lies inside [10, 17)
		21, 24, 31,
	)
	if err := nd.CheckAll(thursday); err != nil {
		t.Errorf("Thursday recording should be non-decreasing: %v", err)
	}
	if err := seq.CheckAll(thursday); err == nil {
		t.Error("Thursday recording should not be sequential (tt inside prior interval)")
	}

	// Archaeology with intervals: progressively earlier periods.
	dig := mkIStamps(
		10, 800, 900,
		20, 600, 700,
		30, 300, 500,
	)
	if err := ni.CheckAll(dig); err != nil {
		t.Errorf("excavation should be non-increasing: %v", err)
	}
	if err := nd.CheckAll(dig); err == nil {
		t.Error("excavation should not be non-decreasing")
	}
}

func TestSuccessiveTTRelations(t *testing.T) {
	// For each Allen relation, build a three-element chain where every
	// successive pair satisfies exactly that relation, and verify the
	// checker accepts it and rejects a broken chain.
	chains := map[interval.Relation][]int64{
		interval.Before:       {10, 0, 10, 20, 20, 30, 30, 40, 50},
		interval.Meets:        {10, 0, 10, 20, 10, 20, 30, 20, 30},
		interval.Overlaps:     {10, 0, 10, 20, 5, 15, 30, 10, 20},
		interval.Starts:       {10, 0, 10, 20, 0, 20, 30, 0, 30},
		interval.During:       {10, 40, 50, 20, 30, 60, 30, 20, 70},
		interval.Finishes:     {10, 40, 50, 20, 30, 50, 30, 20, 50},
		interval.Equal:        {10, 0, 10, 20, 0, 10, 30, 0, 10},
		interval.After:        {10, 40, 50, 20, 20, 30, 30, 0, 10},
		interval.MetBy:        {10, 20, 30, 20, 10, 20, 30, 0, 10},
		interval.OverlappedBy: {10, 10, 20, 20, 5, 15, 30, 0, 10},
		interval.StartedBy:    {10, 0, 30, 20, 0, 20, 30, 0, 10},
		interval.Contains:     {10, 0, 100, 20, 10, 90, 30, 20, 80},
		interval.FinishedBy:   {10, 0, 50, 20, 20, 50, 30, 30, 50},
	}
	for rel, raw := range chains {
		spec := SuccessiveTTSpec(rel)
		stamps := mkIStamps(raw...)
		if err := spec.CheckAll(stamps); err != nil {
			t.Errorf("st-%v chain rejected: %v", rel, err)
			continue
		}
		if got, ok := spec.AllenRelation(); !ok || got != rel {
			t.Errorf("AllenRelation = %v, %v", got, ok)
		}
		// Breaking the chain: replace the last interval with one far away
		// that relates by Before (or After for Before itself).
		broken := append(append([]IntervalStamp(nil), stamps[:2]...),
			IntervalStamp{TT: stamps[2].TT, VT: interval.Of(100000, 100001)})
		if rel == interval.Before {
			broken[2].VT = interval.Of(-100001, -100000)
		}
		if err := spec.CheckAll(broken); err == nil {
			t.Errorf("st-%v accepted a broken chain", rel)
		}
	}
}

func TestContiguousIsSTMeets(t *testing.T) {
	spec := ContiguousSpec()
	if spec.Class() != GloballyContiguous {
		t.Errorf("ContiguousSpec class = %v", spec.Class())
	}
	// Contiguous shifts: each interval ends exactly where the next starts.
	shifts := mkIStamps(
		10, 0, 8,
		20, 8, 16,
		30, 16, 24,
	)
	if err := spec.CheckAll(shifts); err != nil {
		t.Errorf("contiguous shifts rejected: %v", err)
	}
	gap := mkIStamps(
		10, 0, 8,
		20, 9, 16,
	)
	if err := spec.CheckAll(gap); err == nil {
		t.Error("gapped shifts accepted as contiguous")
	}
}

func TestInterIntervalLastElementExempt(t *testing.T) {
	// The tt-latest element needs no successor.
	spec := SuccessiveTTSpec(interval.Before)
	single := mkIStamps(10, 0, 5)
	if err := spec.CheckAll(single); err != nil {
		t.Errorf("singleton rejected: %v", err)
	}
}

func TestInterIntervalEqualTTGroups(t *testing.T) {
	// Two elements stored by one transaction: each earlier element must
	// relate to some member of the next group.
	spec := SuccessiveTTSpec(interval.Before)
	ok := mkIStamps(
		10, 0, 5,
		20, 10, 15,
		20, 6, 9, // same tt as previous; [0,5) before both
	)
	if err := spec.CheckAll(ok); err != nil {
		t.Errorf("group chain rejected: %v", err)
	}
	bad := mkIStamps(
		10, 0, 5,
		20, 3, 9, // overlaps, not before
	)
	if err := spec.CheckAll(bad); err == nil {
		t.Error("non-before successor accepted")
	}
}

func TestInterIntervalCheckerMatchesBatch(t *testing.T) {
	specs := []InterIntervalSpec{
		NonDecreasingIntervalsSpec(), NonIncreasingIntervalsSpec(),
		SequentialIntervalsSpec(),
		SuccessiveTTSpec(interval.Before), SuccessiveTTSpec(interval.Meets),
		SuccessiveTTSpec(interval.Overlaps), SuccessiveTTSpec(interval.After),
	}
	streams := [][]int64{
		{5, 10, 17, 12, 17, 24, 19, 24, 31},
		{5, 10, 17, 14, 17, 24, 21, 24, 31},
		{10, 800, 900, 20, 600, 700},
		{10, 0, 10, 20, 20, 30, 30, 40, 50},
		{10, 0, 10, 20, 5, 15},
		{10, 0, 10, 20, 0, 10},
		{10, 40, 50, 20, 20, 30, 30, 0, 10},
	}
	for _, spec := range specs {
		for _, raw := range streams {
			stream := mkIStamps(raw...)
			ck := spec.NewChecker()
			incOK := true
			for _, st := range stream {
				if err := ck.Check(st); err != nil {
					incOK = false
					break
				}
				ck.Note(st)
			}
			batchOK := true
			for i := 1; i <= len(stream); i++ {
				if spec.CheckAll(stream[:i]) != nil {
					batchOK = false
					break
				}
			}
			if incOK != batchOK {
				t.Errorf("%v: incremental=%v batch=%v for %v", spec, incOK, batchOK, raw)
			}
		}
	}
}

func TestInterIntervalCheckerOutOfOrder(t *testing.T) {
	ck := NonDecreasingIntervalsSpec().NewChecker()
	ck.Note(mkIStamps(100, 0, 5)[0])
	if err := ck.Check(mkIStamps(50, 10, 15)[0]); err == nil {
		t.Error("out-of-order tt accepted")
	}
	if ck.Spec().Class() != GloballyNonDecreasingIntervals {
		t.Error("Spec accessor wrong")
	}
}

func TestInterIntervalWrongClass(t *testing.T) {
	bad := InterIntervalSpec{class: Retroactive}
	if err := bad.CheckAll(mkIStamps(1, 0, 1, 2, 1, 2)); err == nil {
		t.Error("non-inter-interval class accepted")
	}
	if err := bad.NewChecker().Check(mkIStamps(5, 0, 1)[0]); err != nil {
		t.Error("first stamp should always pass")
	}
}

func TestIntervalStampsOf(t *testing.T) {
	es := elems(
		intervalElem(10, 100, 0, 5),
		eventElem(20, 100, 3), // skipped: event-stamped
		intervalElem(30, int64(forever()), 10, 15),
	)
	ins := IntervalStampsOf(es, TTInsertion)
	if len(ins) != 2 || ins[0].TT != 10 || ins[1].TT != 30 {
		t.Errorf("insertion stamps = %v", ins)
	}
	del := IntervalStampsOf(es, TTDeletion)
	if len(del) != 1 || del[0].TT != 100 {
		t.Errorf("deletion stamps = %v", del)
	}
}

func forever() int64 { return int64(1)<<62 - 1 }

func TestInterIntervalViolationMessage(t *testing.T) {
	spec := SequentialIntervalsSpec()
	err := spec.CheckAll(mkIStamps(10, 20, 30, 15, 0, 5))
	if err == nil {
		t.Fatal("expected violation")
	}
	if !strings.Contains(err.Error(), "globally sequential") {
		t.Errorf("message %q lacks class name", err.Error())
	}
	var v *InterIntervalViolation
	if vv, ok := err.(*InterIntervalViolation); ok {
		v = vv
	}
	if v == nil {
		t.Errorf("error type %T", err)
	}
}
