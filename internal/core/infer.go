package core

import (
	"fmt"
	"sort"

	"repro/internal/chronon"
	"repro/internal/element"
	"repro/internal/surrogate"
)

// Finding reports one specialization an extension satisfies, together with
// the tightest parameters that make it hold. For isolated-event findings on
// interval relations, Endpoint records which valid-time endpoint the event
// property was applied to (§3.3).
type Finding struct {
	Class       Class
	HasEndpoint bool
	Endpoint    VTEndpoint
	Detail      string
}

// String renders the finding.
func (f Finding) String() string {
	s := f.Class.String()
	if f.HasEndpoint {
		s = f.Endpoint.String() + "-" + s
	}
	if f.Detail != "" {
		s += " (" + f.Detail + ")"
	}
	return s
}

// Report is the classification of one relation extension: every satisfied
// specialization under one transaction-time basis.
type Report struct {
	Basis    TTBasis
	Findings []Finding
}

// Classes lists the satisfied classes (without endpoint distinction),
// de-duplicated, in ascending order.
func (r Report) Classes() []Class {
	seen := make(map[Class]bool)
	for _, f := range r.Findings {
		seen[f.Class] = true
	}
	return setToSlice(seen)
}

// Has reports whether the report contains the class (on any endpoint).
func (r Report) Has(c Class) bool {
	for _, f := range r.Findings {
		if f.Class == c {
			return true
		}
	}
	return false
}

// MostSpecific filters the findings to those with no satisfied strict
// specialization, per endpoint group.
func (r Report) MostSpecific() []Finding {
	var out []Finding
	for _, f := range r.Findings {
		dominated := false
		for _, g := range r.Findings {
			if g.HasEndpoint == f.HasEndpoint && g.Endpoint == f.Endpoint &&
				g.Class != f.Class && IsSpecializationOf(g.Class, f.Class) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, f)
		}
	}
	return out
}

// InferEventClasses classifies the isolated-event stamps of an extension:
// which of the twelve regions of Figure 1 the stamps fit into, with the
// tightest bounds synthesized. The granularity is used for the degenerate
// test. Every finite extension trivially fits some bounded region; the
// value of the finding is the synthesized Δt.
func InferEventClasses(stamps []Stamp, gran chronon.Granularity) []Finding {
	out := []Finding{{Class: General}}
	if len(stamps) == 0 {
		return out
	}
	minDiff, maxDiff := int64(1<<62), int64(-1<<62)
	degenerate := true
	for _, st := range stamps {
		d := st.VT.Sub(st.TT)
		if d < minDiff {
			minDiff = d
		}
		if d > maxDiff {
			maxDiff = d
		}
		if !gran.SameTick(st.VT, st.TT) {
			degenerate = false
		}
	}
	sec := func(n int64) string { return chronon.Seconds(n).String() }
	add := func(c Class, detail string) {
		out = append(out, Finding{Class: c, Detail: detail})
	}
	if maxDiff <= 0 {
		add(Retroactive, "")
		add(StronglyRetroactivelyBounded, "Δt="+sec(-minDiff))
	}
	if maxDiff < 0 {
		add(DelayedRetroactive, "Δt="+sec(-maxDiff))
		hi := -minDiff
		if hi == -maxDiff {
			hi++ // the class requires Δt₁ < Δt₂; widen the outer bound
		}
		add(DelayedStronglyRetroactivelyBounded, fmt.Sprintf("Δt₁=%s, Δt₂=%s", sec(-maxDiff), sec(hi)))
	}
	if minDiff >= 0 {
		add(Predictive, "")
		add(StronglyPredictivelyBounded, "Δt="+sec(maxDiff))
	}
	if minDiff > 0 {
		add(EarlyPredictive, "Δt="+sec(minDiff))
		hi := maxDiff
		if hi == minDiff {
			hi++
		}
		add(EarlyStronglyPredictivelyBounded, fmt.Sprintf("Δt₁=%s, Δt₂=%s", sec(minDiff), sec(hi)))
	}
	add(RetroactivelyBounded, "Δt="+sec(max64(0, -minDiff)))
	add(PredictivelyBounded, "Δt="+sec(max64(0, maxDiff)))
	add(StronglyBounded, fmt.Sprintf("Δt₁=%s, Δt₂=%s", sec(max64(0, -minDiff)), sec(max64(0, maxDiff))))
	if degenerate {
		add(Degenerate, fmt.Sprintf("granularity %v", gran))
	}
	return out
}

// InferInterEventClasses classifies the inter-event properties of an event
// extension: orderings and regularity, with the largest time units
// synthesized (the unit of a regular extension is the gcd of its stamp
// differences).
func InferInterEventClasses(stamps []Stamp) []Finding {
	var out []Finding
	if len(stamps) == 0 {
		return out
	}
	for _, spec := range []InterEventSpec{
		NonDecreasingEventsSpec(), NonIncreasingEventsSpec(), SequentialEventsSpec(),
	} {
		if spec.CheckAll(stamps) == nil {
			out = append(out, Finding{Class: spec.Class()})
		}
	}

	sorted := append([]Stamp(nil), stamps...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].TT < sorted[j].TT })

	ttUnit, ttAny := congruenceUnit(sorted, func(s Stamp) chronon.Chronon { return s.TT })
	vtUnit, vtAny := congruenceUnit(sorted, func(s Stamp) chronon.Chronon { return s.VT })
	unitDetail := func(u int64, any bool) string {
		if any {
			return "any Δt"
		}
		return "Δt=" + chronon.Seconds(u).String()
	}
	if ttAny || ttUnit > 0 {
		out = append(out, Finding{Class: TTEventRegular, Detail: unitDetail(ttUnit, ttAny)})
	}
	if vtAny || vtUnit > 0 {
		out = append(out, Finding{Class: VTEventRegular, Detail: unitDetail(vtUnit, vtAny)})
	}
	if offsetConstant(sorted) && (ttAny || ttUnit > 0) {
		out = append(out, Finding{Class: TemporalEventRegular, Detail: unitDetail(ttUnit, ttAny)})
	}

	ttStrict, ttStrictAny := strictUnit(sorted, func(s Stamp) chronon.Chronon { return s.TT }, true)
	vtStrict, vtStrictAny := strictUnit(sorted, func(s Stamp) chronon.Chronon { return s.VT }, false)
	if ttStrictAny || ttStrict > 0 {
		out = append(out, Finding{Class: StrictTTEventRegular, Detail: unitDetail(ttStrict, ttStrictAny)})
	}
	if vtStrictAny || vtStrict > 0 {
		out = append(out, Finding{Class: StrictVTEventRegular, Detail: unitDetail(vtStrict, vtStrictAny)})
	}
	if u, any, ok := strictTemporalUnit(sorted); ok {
		out = append(out, Finding{Class: StrictTemporalEventRegular, Detail: unitDetail(u, any)})
	}
	return out
}

// congruenceUnit returns the largest unit under which all coordinates are
// congruent: the gcd of differences from the first stamp. any is true when
// all coordinates coincide (every unit works).
func congruenceUnit(sorted []Stamp, coord func(Stamp) chronon.Chronon) (unit int64, any bool) {
	anchor := coord(sorted[0])
	g := int64(0)
	for _, st := range sorted[1:] {
		g = chronon.GCD(g, coord(st).Sub(anchor))
	}
	return g, g == 0
}

// offsetConstant reports whether tt − vt is the same for every stamp.
func offsetConstant(sorted []Stamp) bool {
	off := sorted[0].TT.Sub(sorted[0].VT)
	for _, st := range sorted[1:] {
		if st.TT.Sub(st.VT) != off {
			return false
		}
	}
	return true
}

// strictUnit returns the spacing if the distinct sorted coordinate values
// form an evenly spaced chain (0, false if not). any is true when there is
// a single distinct value. dupsOK tolerates duplicate values (transaction
// time); otherwise duplicates fail (valid time).
func strictUnit(stamps []Stamp, coord func(Stamp) chronon.Chronon, dupsOK bool) (unit int64, any bool) {
	vals := make([]int64, 0, len(stamps))
	for _, st := range stamps {
		vals = append(vals, int64(coord(st)))
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	uniq := vals[:1]
	for _, v := range vals[1:] {
		if v == uniq[len(uniq)-1] {
			if !dupsOK {
				return 0, false
			}
			continue
		}
		uniq = append(uniq, v)
	}
	if len(uniq) == 1 {
		return 0, true
	}
	d := uniq[1] - uniq[0]
	for i := 2; i < len(uniq); i++ {
		if uniq[i]-uniq[i-1] != d {
			return 0, false
		}
	}
	return d, false
}

// strictTemporalUnit checks the strict temporal chain over tt-sorted stamps.
func strictTemporalUnit(sorted []Stamp) (unit int64, any, ok bool) {
	if len(sorted) == 1 {
		return 0, true, true
	}
	d := sorted[1].TT.Sub(sorted[0].TT)
	if d <= 0 {
		return 0, false, false
	}
	for i := 1; i < len(sorted); i++ {
		if sorted[i].TT.Sub(sorted[i-1].TT) != d || sorted[i].VT.Sub(sorted[i-1].VT) != d {
			return 0, false, false
		}
	}
	return d, false, true
}

// InferInterIntervalClasses classifies the inter-interval properties of an
// interval extension (§3.4).
func InferInterIntervalClasses(stamps []IntervalStamp) []Finding {
	var out []Finding
	if len(stamps) == 0 {
		return out
	}
	specs := []InterIntervalSpec{
		NonDecreasingIntervalsSpec(), NonIncreasingIntervalsSpec(), SequentialIntervalsSpec(),
	}
	for r := 0; r < 13; r++ {
		specs = append(specs, InterIntervalSpec{class: STBefore + Class(r)})
	}
	for _, spec := range specs {
		if spec.CheckAll(stamps) == nil {
			out = append(out, Finding{Class: spec.Class()})
		}
	}
	return out
}

// InferIntervalRegularity classifies the isolated-interval regularity of an
// extension (§3.3), synthesizing the largest fixed unit for each property.
// (Calendric units such as one month are declarable but not synthesized:
// inference reports the fixed gcd.)
func InferIntervalRegularity(es []*element.Element) []Finding {
	var out []Finding
	var vtG, ttG int64
	vtSeen, ttSeen := false, false
	vtStrict, ttStrict := int64(-1), int64(-1)
	for _, e := range es {
		if iv, ok := e.VT.Interval(); ok {
			d := iv.Duration()
			vtG = chronon.GCD(vtG, d)
			if !vtSeen {
				vtStrict = d
			} else if vtStrict != d {
				vtStrict = 0
			}
			vtSeen = true
		}
		if !e.Current() {
			d := e.TTEnd.Sub(e.TTStart)
			ttG = chronon.GCD(ttG, d)
			if !ttSeen {
				ttStrict = d
			} else if ttStrict != d {
				ttStrict = 0
			}
			ttSeen = true
		}
	}
	det := func(u int64) string { return "Δt=" + chronon.Seconds(u).String() }
	if vtSeen && vtG > 0 {
		out = append(out, Finding{Class: VTIntervalRegular, Detail: det(vtG)})
	}
	if ttSeen && ttG > 0 {
		out = append(out, Finding{Class: TTIntervalRegular, Detail: det(ttG)})
	}
	if vtSeen && ttSeen && vtG > 0 && ttG > 0 {
		g := chronon.GCD(vtG, ttG)
		out = append(out, Finding{Class: TemporalIntervalRegular, Detail: det(g)})
	}
	if vtSeen && vtStrict > 0 {
		out = append(out, Finding{Class: StrictVTIntervalRegular, Detail: det(vtStrict)})
	}
	if ttSeen && ttStrict > 0 {
		out = append(out, Finding{Class: StrictTTIntervalRegular, Detail: det(ttStrict)})
	}
	if vtSeen && ttSeen && vtStrict > 0 && vtStrict == ttStrict {
		out = append(out, Finding{Class: StrictTemporalIntervalRegular, Detail: det(vtStrict)})
	}
	return out
}

// Classify produces the full classification of an extension under the
// given transaction-time basis. Event-stamped extensions get the isolated-
// event and inter-event findings; interval-stamped extensions get endpoint-
// applied event findings for vt⊢ and vt⊣, interval regularity, and the
// inter-interval findings.
func Classify(es []*element.Element, basis TTBasis, gran chronon.Granularity) Report {
	rep := Report{Basis: basis}
	if len(es) == 0 {
		return rep
	}
	if es[0].VT.IsEvent() {
		stamps := StampsOf(es, basis, VTStart)
		rep.Findings = append(rep.Findings, InferEventClasses(stamps, gran)...)
		rep.Findings = append(rep.Findings, InferInterEventClasses(stamps)...)
		return rep
	}
	for _, p := range []VTEndpoint{VTStart, VTEnd} {
		stamps := StampsOf(es, basis, p)
		for _, f := range InferEventClasses(stamps, gran) {
			f.HasEndpoint = true
			f.Endpoint = p
			rep.Findings = append(rep.Findings, f)
		}
	}
	rep.Findings = append(rep.Findings, InferIntervalRegularity(es)...)
	rep.Findings = append(rep.Findings, InferInterIntervalClasses(IntervalStampsOf(es, basis))...)
	return rep
}

// ClassifyPerPartition classifies each partition of a per-surrogate
// partitioning separately and returns the classes every partition
// satisfies: per §3, "a relation satisfies a specialization on a per
// partition basis if every partition in turn satisfies the specialization
// on a per relation basis." Parameters may differ between partitions, so
// findings carry no Detail.
func ClassifyPerPartition(parts map[surrogate.Surrogate][]*element.Element, basis TTBasis, gran chronon.Granularity) Report {
	rep := Report{Basis: basis}
	type key struct {
		c  Class
		he bool
		ep VTEndpoint
	}
	var common map[key]bool
	n := 0
	for _, es := range parts {
		sub := Classify(es, basis, gran)
		cur := make(map[key]bool)
		for _, f := range sub.Findings {
			cur[key{f.Class, f.HasEndpoint, f.Endpoint}] = true
		}
		if n == 0 {
			common = cur
		} else {
			for k := range common {
				if !cur[k] {
					delete(common, k)
				}
			}
		}
		n++
	}
	keys := make([]key, 0, len(common))
	for k := range common {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].c != keys[j].c {
			return keys[i].c < keys[j].c
		}
		return keys[i].ep < keys[j].ep
	})
	for _, k := range keys {
		rep.Findings = append(rep.Findings, Finding{Class: k.c, HasEndpoint: k.he, Endpoint: k.ep, Detail: "per partition"})
	}
	return rep
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
