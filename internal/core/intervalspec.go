package core

import (
	"fmt"

	"repro/internal/chronon"
	"repro/internal/element"
)

// EndpointSpec applies an isolated-event specialization to one valid-time
// endpoint of an interval relation, under a transaction-time basis (§3.3):
// "if an interval is stored as soon as it terminates, a designer may state
// that the interval relation is vt⊢-retroactive and vt⊣-degenerate." A
// relation that satisfies the same event specialization on both endpoints
// may simply be termed by the event class name (e.g. "retroactive").
type EndpointSpec struct {
	Event    EventSpec
	Basis    TTBasis
	Endpoint VTEndpoint
}

// String renders the spec, e.g. "vt⊢-retroactive (insertion basis)".
func (s EndpointSpec) String() string {
	return fmt.Sprintf("%v-%v (%v basis)", s.Endpoint, s.Event, s.Basis)
}

// Check tests one element. Elements with no stamp under the basis (e.g.
// current elements under the deletion basis) vacuously satisfy the spec.
func (s EndpointSpec) Check(e *element.Element) error {
	st, ok := StampOf(e, s.Basis, s.Endpoint)
	if !ok {
		return nil
	}
	return s.Event.Check(st)
}

// CheckAll tests an extension, returning the first violation.
func (s EndpointSpec) CheckAll(es []*element.Element) error {
	for _, e := range es {
		if err := s.Check(e); err != nil {
			return fmt.Errorf("core: %v: %w", s.Endpoint, err)
		}
	}
	return nil
}

// BothEndpoints builds the pair of endpoint specs for an event class
// applied to vt⊢ and vt⊣ alike — the paper's shorthand "if the relation is
// vt⊢-retroactive and vt⊣-retroactive, it may simply be termed retroactive."
func BothEndpoints(ev EventSpec, basis TTBasis) [2]EndpointSpec {
	return [2]EndpointSpec{
		{Event: ev, Basis: basis, Endpoint: VTStart},
		{Event: ev, Basis: basis, Endpoint: VTEnd},
	}
}

// IntervalRegularSpec is an isolated-interval regularity specialization of
// §3.3: the duration of each element's transaction-time and/or valid-time
// interval is an integral multiple of the time unit (or exactly the unit,
// for the strict variants). Unlike event regularity these properties
// "concern durations rather than starting events", so the unit may be
// calendric-specific, e.g. one month — covering the company-policy example
// where hires and terminations take effect on the first or fifteenth of a
// month.
type IntervalRegularSpec struct {
	class Class
	unit  chronon.Duration
}

// Class reports the specialization's class.
func (s IntervalRegularSpec) Class() Class { return s.class }

// Unit reports the time unit.
func (s IntervalRegularSpec) Unit() chronon.Duration { return s.unit }

// String renders the spec.
func (s IntervalRegularSpec) String() string {
	return fmt.Sprintf("%s (Δt=%v)", s.class, s.unit)
}

func intervalRegular(class Class, unit chronon.Duration) (IntervalRegularSpec, error) {
	if unit.IsZero() || unit.Negative() || unit.Seconds < 0 || unit.Months < 0 {
		return IntervalRegularSpec{}, fmt.Errorf("core: %v: time unit %v must be positive", class, unit)
	}
	return IntervalRegularSpec{class: class, unit: unit}, nil
}

// TTIntervalRegularSpec restricts every (closed) existence interval
// [tt⊢, tt⊣) to last an integral multiple of the unit.
func TTIntervalRegularSpec(unit chronon.Duration) (IntervalRegularSpec, error) {
	return intervalRegular(TTIntervalRegular, unit)
}

// VTIntervalRegularSpec restricts every valid-time interval to last an
// integral multiple of the unit.
func VTIntervalRegularSpec(unit chronon.Duration) (IntervalRegularSpec, error) {
	return intervalRegular(VTIntervalRegular, unit)
}

// TemporalIntervalRegularSpec restricts both interval durations to
// multiples of one unit.
func TemporalIntervalRegularSpec(unit chronon.Duration) (IntervalRegularSpec, error) {
	return intervalRegular(TemporalIntervalRegular, unit)
}

// StrictTTIntervalRegularSpec restricts every existence interval to last
// exactly the unit (the multiple k fixed at 1).
func StrictTTIntervalRegularSpec(unit chronon.Duration) (IntervalRegularSpec, error) {
	return intervalRegular(StrictTTIntervalRegular, unit)
}

// StrictVTIntervalRegularSpec restricts every valid interval to last
// exactly the unit.
func StrictVTIntervalRegularSpec(unit chronon.Duration) (IntervalRegularSpec, error) {
	return intervalRegular(StrictVTIntervalRegular, unit)
}

// StrictTemporalIntervalRegularSpec restricts both intervals to last
// exactly the unit.
func StrictTemporalIntervalRegularSpec(unit chronon.Duration) (IntervalRegularSpec, error) {
	return intervalRegular(StrictTemporalIntervalRegular, unit)
}

// IntervalViolation reports an element whose interval duration breaks the
// regularity.
type IntervalViolation struct {
	Spec   IntervalRegularSpec
	Reason string
}

func (v *IntervalViolation) Error() string {
	return fmt.Sprintf("core: %s violated: %s", v.Spec, v.Reason)
}

// maxCalendricSteps bounds the search when verifying that a calendric unit
// tiles an interval; 120,000 months is ten millennia.
const maxCalendricSteps = 120000

// spansExactly reports whether repeatedly adding the unit to start reaches
// end after exactly one step (strict) or after any positive number of steps.
func (s IntervalRegularSpec) spansExactly(start, end chronon.Chronon, strict bool) bool {
	if end <= start {
		return false
	}
	if secs, ok := s.unit.FixedSeconds(); ok {
		d := end.Sub(start)
		if strict {
			return d == secs
		}
		return d%secs == 0
	}
	c := start
	for steps := 0; steps < maxCalendricSteps; steps++ {
		c = s.unit.AddTo(c)
		if c == end {
			return !strict || steps == 0
		}
		if c > end {
			return false
		}
	}
	return false
}

// Check tests one element. Transaction-time regularity applies only once
// the element has been logically deleted (the restriction concerns the
// closed existence interval); current elements vacuously satisfy it.
func (s IntervalRegularSpec) Check(e *element.Element) error {
	strict := s.class >= StrictTTIntervalRegular
	checkTT := s.class == TTIntervalRegular || s.class == TemporalIntervalRegular ||
		s.class == StrictTTIntervalRegular || s.class == StrictTemporalIntervalRegular
	checkVT := s.class == VTIntervalRegular || s.class == TemporalIntervalRegular ||
		s.class == StrictVTIntervalRegular || s.class == StrictTemporalIntervalRegular
	if checkTT && !e.Current() {
		if !s.spansExactly(e.TTStart, e.TTEnd, strict) {
			return &IntervalViolation{Spec: s, Reason: fmt.Sprintf(
				"existence interval [%v, %v) is not %s of %v",
				e.TTStart, e.TTEnd, multiplePhrase(strict), s.unit)}
		}
	}
	if checkVT {
		iv, ok := e.VT.Interval()
		if !ok {
			return &IntervalViolation{Spec: s, Reason: "element is event-stamped, not interval-stamped"}
		}
		if !s.spansExactly(iv.Start, iv.End, strict) {
			return &IntervalViolation{Spec: s, Reason: fmt.Sprintf(
				"valid interval %v is not %s of %v", iv, multiplePhrase(strict), s.unit)}
		}
	}
	return nil
}

func multiplePhrase(strict bool) string {
	if strict {
		return "exactly one unit"
	}
	return "an integral multiple"
}

// CheckAll tests an extension, returning the first violation.
func (s IntervalRegularSpec) CheckAll(es []*element.Element) error {
	for _, e := range es {
		if err := s.Check(e); err != nil {
			return err
		}
	}
	return nil
}
