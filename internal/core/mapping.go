package core

import (
	"fmt"

	"repro/internal/chronon"
	"repro/internal/element"
)

// Mapping is the paper's mapping function m (§3.1): it computes a valid
// time-stamp from an element's other attributes — "excluding vt, but
// including the surrogate and transaction time-stamp attributes". A
// temporal relation is determined when such a function correctly computes
// the valid time-stamps of all its elements; the database can then derive
// vt instead of storing it.
type Mapping struct {
	// Name identifies the mapping in diagnostics, e.g. "m1(Δt=30s)".
	Name string
	// Fn computes the valid time from the element. Implementations must
	// not read e.VT.
	Fn func(e *element.Element) chronon.Chronon
}

// M1 is the paper's m1(e) = tt⊢ + Δt: valid after a fixed delay.
func M1(dt chronon.Duration) Mapping {
	return Mapping{
		Name: fmt.Sprintf("m1(Δt=%v)", dt),
		Fn:   func(e *element.Element) chronon.Chronon { return dt.AddTo(e.TTStart) },
	}
}

// M2 is the paper's m2(e) = ⌊tt⊢ − Δt⌋ʰʳˢ: valid from the most recent hour
// (before a fixed offset).
func M2(dt chronon.Duration) Mapping {
	return Mapping{
		Name: fmt.Sprintf("m2(Δt=%v)", dt),
		Fn: func(e *element.Element) chronon.Chronon {
			return chronon.Hour.Truncate(dt.SubFrom(e.TTStart))
		},
	}
}

// M3 is the paper's m3(e) = ⌈tt⊢⌉ᵈᵃʸ + 8ʰʳˢ: valid from the next closest
// 8:00 a.m. — relevant to banking deposits effective the next business day.
func M3() Mapping {
	return Mapping{
		Name: "m3",
		Fn: func(e *element.Element) chronon.Chronon {
			return chronon.Day.Ceil(e.TTStart).Add(8 * 3600)
		},
	}
}

// DeterminedSpec is a determined specialization of §3.1: the relation's
// valid time-stamps are exactly those computed by the mapping function, and
// the computed stamps additionally satisfy the base event specialization.
// With Base = GeneralSpec() this is the plain "determined" relation; with
// Base = RetroactiveSpec() it is "retroactively determined"
// (vt = m(e) ∧ m(e) ≤ tt), and so on for every event class — the paper's
// "determined counterparts for all the undetermined specialized temporal
// relations".
type DeterminedSpec struct {
	M        Mapping
	Base     EventSpec
	Basis    TTBasis
	Endpoint VTEndpoint
}

// String renders the spec.
func (s DeterminedSpec) String() string {
	if s.Base.Class() == General {
		return fmt.Sprintf("determined with %s", s.M.Name)
	}
	return fmt.Sprintf("%s determined with %s", s.Base, s.M.Name)
}

// Check verifies that the element's valid time equals the mapping's output
// and that the output satisfies the base specialization relative to the
// element's transaction time under the chosen basis.
func (s DeterminedSpec) Check(e *element.Element) error {
	st, ok := StampOf(e, s.Basis, s.Endpoint)
	if !ok {
		return nil // no stamp under this basis yet (e.g. not deleted)
	}
	want := s.M.Fn(e)
	if st.VT != want {
		return &DeterminedViolation{Spec: s, Got: st.VT, Want: want}
	}
	if err := s.Base.Check(Stamp{TT: st.TT, VT: want}); err != nil {
		return fmt.Errorf("core: determined base violated: %w", err)
	}
	return nil
}

// CheckAll verifies an extension, returning the first violation.
func (s DeterminedSpec) CheckAll(es []*element.Element) error {
	for _, e := range es {
		if err := s.Check(e); err != nil {
			return err
		}
	}
	return nil
}

// Determine infers whether a candidate mapping determines the extension:
// it returns nil if vt = m(e) for every element (under the spec's basis and
// endpoint). A relation is undetermined if no such function exists; in
// practice one tests the candidates the application suggests.
func Determine(m Mapping, es []*element.Element, basis TTBasis, p VTEndpoint) error {
	return DeterminedSpec{M: m, Base: GeneralSpec(), Basis: basis, Endpoint: p}.CheckAll(es)
}

// DeterminedViolation reports an element whose stored valid time disagrees
// with the mapping function.
type DeterminedViolation struct {
	Spec DeterminedSpec
	Got  chronon.Chronon
	Want chronon.Chronon
}

func (v *DeterminedViolation) Error() string {
	return fmt.Sprintf("core: %s violated: stored vt %v, computed %v", v.Spec, v.Got, v.Want)
}
