package core

import (
	"repro/internal/chronon"
	"repro/internal/element"
	"repro/internal/interval"
	"repro/internal/surrogate"
)

var nextES surrogate.Surrogate

// eventElem builds an event-stamped element with the given transaction
// existence interval and valid time. Pass int64(chronon.Forever) for a
// current element.
func eventElem(ttStart, ttEnd, vt int64) *element.Element {
	nextES++
	return &element.Element{
		ES:      nextES,
		OS:      1,
		TTStart: chronon.Chronon(ttStart),
		TTEnd:   chronon.Chronon(ttEnd),
		VT:      element.EventAt(chronon.Chronon(vt)),
	}
}

// intervalElem builds an interval-stamped element.
func intervalElem(ttStart, ttEnd, vs, ve int64) *element.Element {
	nextES++
	return &element.Element{
		ES:      nextES,
		OS:      1,
		TTStart: chronon.Chronon(ttStart),
		TTEnd:   chronon.Chronon(ttEnd),
		VT:      element.SpanOf(chronon.Chronon(vs), chronon.Chronon(ve)),
	}
}

func elems(es ...*element.Element) []*element.Element { return es }

// mkStamps builds stamps from (tt, vt) pairs.
func mkStamps(pairs ...int64) []Stamp {
	if len(pairs)%2 != 0 {
		panic("mkStamps needs pairs")
	}
	out := make([]Stamp, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		out = append(out, Stamp{TT: chronon.Chronon(pairs[i]), VT: chronon.Chronon(pairs[i+1])})
	}
	return out
}

// mkIStamps builds interval stamps from (tt, vtStart, vtEnd) triples.
func mkIStamps(triples ...int64) []IntervalStamp {
	if len(triples)%3 != 0 {
		panic("mkIStamps needs triples")
	}
	out := make([]IntervalStamp, 0, len(triples)/3)
	for i := 0; i < len(triples); i += 3 {
		out = append(out, IntervalStamp{
			TT: chronon.Chronon(triples[i]),
			VT: interval.Of(triples[i+1], triples[i+2]),
		})
	}
	return out
}
