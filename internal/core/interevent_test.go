package core

import (
	"testing"

	"repro/internal/chronon"
)

func mustIE(s InterEventSpec, err error) InterEventSpec {
	if err != nil {
		panic(err)
	}
	return s
}

func TestInterEventOrderings(t *testing.T) {
	cases := []struct {
		name string
		spec InterEventSpec
		pass [][]int64 // each: tt,vt pairs
		fail [][]int64
	}{
		{
			name: "non-decreasing",
			spec: NonDecreasingEventsSpec(),
			pass: [][]int64{
				{},
				{10, 5},
				{10, 5, 20, 5, 30, 7},
				{10, 100, 20, 100},
				// Equal tts are unconstrained against each other.
				{10, 50, 20, 100, 20, 90, 30, 100},
			},
			fail: [][]int64{
				{10, 5, 20, 4},
				{10, 100, 20, 50, 30, 60},
			},
		},
		{
			name: "non-increasing",
			spec: NonIncreasingEventsSpec(),
			pass: [][]int64{
				{10, 100, 20, 100, 30, 50},
				// Archeology: later transactions record earlier periods.
				{10, -100, 20, -200, 30, -300},
			},
			fail: [][]int64{
				{10, 5, 20, 6},
			},
		},
		{
			name: "sequential",
			spec: SequentialEventsSpec(),
			pass: [][]int64{
				{10, 5, 20, 15, 30, 25}, // retroactive sequential
				{10, 12, 20, 22},        // predictive sequential
				{10, 10, 20, 20},        // degenerate is sequential
			},
			fail: [][]int64{
				{10, 15, 20, 12},       // next stored before prior event valid
				{10, 25, 20, 22},       // vt of first exceeds min of second
				{10, 5, 20, 8, 30, 19}, // vt 19 < tt 20 of prior element
			},
		},
	}
	for _, c := range cases {
		for _, p := range c.pass {
			if err := c.spec.CheckAll(mkStamps(p...)); err != nil {
				t.Errorf("%s: %v should pass: %v", c.name, p, err)
			}
		}
		for _, f := range c.fail {
			if err := c.spec.CheckAll(mkStamps(f...)); err == nil {
				t.Errorf("%s: %v should fail", c.name, f)
			}
		}
	}
}

func TestSequentialImpliesNonDecreasing(t *testing.T) {
	// Claim C2: sequentiality is stronger than non-decreasing.
	seqs := [][]int64{
		{10, 5, 20, 15, 30, 25},
		{10, 12, 20, 22, 30, 32},
		{10, 10, 20, 20},
		{100, 50},
	}
	nd := NonDecreasingEventsSpec()
	seq := SequentialEventsSpec()
	for _, s := range seqs {
		stamps := mkStamps(s...)
		if err := seq.CheckAll(stamps); err != nil {
			t.Fatalf("fixture %v is not sequential: %v", s, err)
		}
		if err := nd.CheckAll(stamps); err != nil {
			t.Errorf("sequential extension %v is not non-decreasing: %v", s, err)
		}
	}
	// And for degenerate relations the two coincide: a degenerate
	// non-decreasing extension is sequential.
	deg := mkStamps(10, 10, 20, 20, 35, 35)
	if err := nd.CheckAll(deg); err != nil {
		t.Fatal(err)
	}
	if err := seq.CheckAll(deg); err != nil {
		t.Errorf("degenerate non-decreasing extension should be sequential: %v", err)
	}
}

func TestEventRegularity(t *testing.T) {
	u := chronon.Seconds(10)
	ttReg := mustIE(TTEventRegularSpec(u))
	vtReg := mustIE(VTEventRegularSpec(u))
	tReg := mustIE(TemporalEventRegularSpec(u))

	// tts multiples of 10 apart (not evenly spaced), vts too.
	stamps := mkStamps(100, 7, 120, 27, 150, 57)
	if err := ttReg.CheckAll(stamps); err != nil {
		t.Errorf("tt regular: %v", err)
	}
	if err := vtReg.CheckAll(stamps); err != nil {
		t.Errorf("vt regular: %v", err)
	}
	if err := tReg.CheckAll(stamps); err != nil {
		t.Errorf("temporal regular: %v", err)
	}

	// tt regular but vt not.
	s2 := mkStamps(100, 7, 120, 13)
	if err := ttReg.CheckAll(s2); err != nil {
		t.Errorf("tt regular: %v", err)
	}
	if err := vtReg.CheckAll(s2); err == nil {
		t.Error("vt regular should fail (diff 6)")
	}
	if err := tReg.CheckAll(s2); err == nil {
		t.Error("temporal regular should fail")
	}

	// Both regular but with different multipliers: tt diff 10, vt diff 20.
	s3 := mkStamps(100, 0, 110, 20)
	if err := ttReg.CheckAll(s3); err != nil {
		t.Errorf("tt regular: %v", err)
	}
	if err := vtReg.CheckAll(s3); err != nil {
		t.Errorf("vt regular: %v", err)
	}
	if err := tReg.CheckAll(s3); err == nil {
		t.Error("temporal regular must fail when multipliers differ")
	}
}

func TestRegularityGCDComposition(t *testing.T) {
	// Claim C3, the paper's example: tt event regular with Δt₁ = 28s and vt
	// event regular with Δt₂ = 6s imply temporal event regular with the
	// common divisor 2s.
	tt28 := mustIE(TTEventRegularSpec(chronon.Seconds(28)))
	vt6 := mustIE(VTEventRegularSpec(chronon.Seconds(6)))
	t2 := mustIE(TemporalEventRegularSpec(chronon.Seconds(2)))

	// Note the paper's subtlety: temporal regularity requires the *same*
	// multiplier for tt and vt, so the composed relation holds only for
	// extensions where tt−vt is constant modulo nothing — i.e. the claim is
	// about the unit: any extension that is temporal regular at any unit
	// compatible with both is temporal regular at gcd. Build one.
	stamps := mkStamps(
		0, 0,
		28*6, 28*6, // +168, a multiple of 28, 6, and 2 with equal offsets
		28*6*2, 28*6*2,
	)
	if err := tt28.CheckAll(stamps); err != nil {
		t.Fatalf("tt 28s: %v", err)
	}
	if err := vt6.CheckAll(stamps); err != nil {
		t.Fatalf("vt 6s: %v", err)
	}
	if err := t2.CheckAll(stamps); err != nil {
		t.Errorf("temporal 2s (gcd) should hold: %v", err)
	}
	if g := chronon.GCD(28, 6); g != 2 {
		t.Errorf("gcd(28, 6) = %d, want 2", g)
	}
}

func TestStrictRegularity(t *testing.T) {
	u := chronon.Seconds(10)
	sTT := mustIE(StrictTTEventRegularSpec(u))
	sVT := mustIE(StrictVTEventRegularSpec(u))
	sT := mustIE(StrictTemporalEventRegularSpec(u))

	chain := mkStamps(100, 7, 110, 17, 120, 27)
	for name, spec := range map[string]InterEventSpec{"strict tt": sTT, "strict vt": sVT, "strict temporal": sT} {
		if err := spec.CheckAll(chain); err != nil {
			t.Errorf("%s on perfect chain: %v", name, err)
		}
	}

	// Gap in tt.
	gap := mkStamps(100, 7, 120, 17)
	if err := sTT.CheckAll(gap); err == nil {
		t.Error("strict tt should fail on gap")
	}
	// Strict vt with duplicate valid times is disallowed.
	dupVT := mkStamps(100, 7, 110, 7)
	if err := sVT.CheckAll(dupVT); err == nil {
		t.Error("strict vt should fail on duplicate vt")
	}
	// Strict tt tolerates duplicate tts (a modification transaction).
	dupTT := mkStamps(100, 7, 100, 9, 110, 17)
	if err := sTT.CheckAll(dupTT); err != nil {
		t.Errorf("strict tt should tolerate duplicate tt: %v", err)
	}
	if err := sT.CheckAll(dupTT); err == nil {
		t.Error("strict temporal should reject duplicate tt")
	}
	// Strict vt accepts out-of-tt-order chains (vt sorted independently).
	outOfOrder := mkStamps(100, 27, 110, 7, 120, 17)
	if err := sVT.CheckAll(outOfOrder); err != nil {
		t.Errorf("strict vt is about the vt chain only: %v", err)
	}
	if err := sT.CheckAll(outOfOrder); err == nil {
		t.Error("strict temporal requires aligned successors")
	}
}

func TestStrictDoesNotComposeToStrictTemporal(t *testing.T) {
	// Claim C3, second half: "for the strict case, valid and transaction
	// time event regularity does not imply temporal event regularity."
	// tts strictly 10 apart, vts strictly 20 apart: both strict regular,
	// but no single unit makes the extension strict temporal regular.
	stamps := mkStamps(100, 0, 110, 20, 120, 40)
	sTT := mustIE(StrictTTEventRegularSpec(chronon.Seconds(10)))
	sVT := mustIE(StrictVTEventRegularSpec(chronon.Seconds(20)))
	if err := sTT.CheckAll(stamps); err != nil {
		t.Fatal(err)
	}
	if err := sVT.CheckAll(stamps); err != nil {
		t.Fatal(err)
	}
	for _, unit := range []int64{2, 10, 20} {
		sT := mustIE(StrictTemporalEventRegularSpec(chronon.Seconds(unit)))
		if err := sT.CheckAll(stamps); err == nil {
			t.Errorf("strict temporal with unit %ds should fail", unit)
		}
	}
}

func TestRegularSpecValidation(t *testing.T) {
	if _, err := TTEventRegularSpec(chronon.Duration{}); err == nil {
		t.Error("zero unit accepted")
	}
	if _, err := VTEventRegularSpec(chronon.Seconds(-5)); err == nil {
		t.Error("negative unit accepted")
	}
	if _, err := TemporalEventRegularSpec(chronon.Months(1)); err == nil {
		t.Error("calendric unit accepted for event regularity")
	}
}

func TestInterEventCheckerMatchesBatch(t *testing.T) {
	// The incremental checker accepts a stream iff every prefix satisfies
	// the batch definition (the intensional reading).
	specs := []InterEventSpec{
		NonDecreasingEventsSpec(), NonIncreasingEventsSpec(), SequentialEventsSpec(),
		mustIE(TTEventRegularSpec(chronon.Seconds(10))),
		mustIE(VTEventRegularSpec(chronon.Seconds(10))),
		mustIE(TemporalEventRegularSpec(chronon.Seconds(10))),
		mustIE(StrictTTEventRegularSpec(chronon.Seconds(10))),
		mustIE(StrictVTEventRegularSpec(chronon.Seconds(10))),
		mustIE(StrictTemporalEventRegularSpec(chronon.Seconds(10))),
	}
	streams := [][]int64{
		{10, 5, 20, 15, 30, 25},
		{10, 20, 20, 30, 30, 40},
		{10, 5, 20, 4, 30, 3},
		{100, 7, 110, 17, 120, 27},
		{100, 7, 120, 27, 110, 17}, // out of tt order: checker must reject
		{100, 7, 110, 17, 110, 20}, // duplicate tt group
		{100, 100, 110, 90, 120, 80},
		{100, 0, 110, 20, 120, 40},
		{0, 0, 168, 168, 336, 336},
	}
	for _, spec := range specs {
		for _, raw := range streams {
			stream := mkStamps(raw...)
			ck := spec.NewChecker()
			incOK := true
			accepted := stream[:0:0]
			for _, st := range stream {
				if err := ck.Check(st); err != nil {
					incOK = false
					break
				}
				ck.Note(st)
				accepted = append(accepted, st)
			}
			// Determine whether every prefix passes the batch check AND
			// arrives in tt order.
			batchOK := true
			for i := 1; i <= len(stream); i++ {
				if stream[i-1].TT < maxTT(stream[:i-1]) {
					batchOK = false
					break
				}
				if spec.CheckAll(stream[:i]) != nil {
					batchOK = false
					break
				}
			}
			// One exception: the strict-vt incremental checker is stricter
			// than per-prefix batch checks in one documented way — it only
			// extends chains at the ends, which per-prefix batch checking
			// also enforces, so they agree. Verify agreement.
			if incOK != batchOK {
				t.Errorf("%v: incremental=%v batch-prefix=%v for %v (accepted %d)",
					spec, incOK, batchOK, raw, len(accepted))
			}
		}
	}
}

func maxTT(stamps []Stamp) chronon.Chronon {
	m := chronon.MinChronon
	for _, st := range stamps {
		m = chronon.Max(m, st.TT)
	}
	return m
}

func TestInterEventCheckerOutOfOrderRejected(t *testing.T) {
	ck := NonDecreasingEventsSpec().NewChecker()
	ck.Note(Stamp{TT: 100, VT: 1})
	if err := ck.Check(Stamp{TT: 50, VT: 2}); err == nil {
		t.Error("out-of-order tt accepted")
	}
}

func TestInterEventCheckerEqualTTGroup(t *testing.T) {
	// Stamps in the same transaction (equal tt) are unconstrained against
	// each other but constrained against strictly earlier stamps.
	ck := NonDecreasingEventsSpec().NewChecker()
	for _, st := range mkStamps(10, 100, 20, 200, 20, 150) {
		if err := ck.Check(st); err != nil {
			t.Fatalf("stamp %+v rejected: %v", st, err)
		}
		ck.Note(st)
	}
	// vt 99 is below the closed group's max (100): reject.
	if err := ck.Check(Stamp{TT: 30, VT: 99}); err == nil {
		t.Error("vt below closed-group max accepted")
	}
	// vt 160 is above 100 but below open group's 200; once tt 20 closes it
	// must be rejected too.
	if err := ck.Check(Stamp{TT: 30, VT: 160}); err == nil {
		t.Error("vt below open-group max accepted at new tt")
	}
}

func TestInterEventSpecString(t *testing.T) {
	if got := SequentialEventsSpec().String(); got != "globally sequential (events)" {
		t.Errorf("String = %q", got)
	}
	s := mustIE(TTEventRegularSpec(chronon.Seconds(10)))
	if got := s.String(); got != "transaction time event regular (Δt=10s)" {
		t.Errorf("String = %q", got)
	}
	if s.Unit() != chronon.Seconds(10) {
		t.Errorf("Unit = %v", s.Unit())
	}
	if s.Class() != TTEventRegular {
		t.Errorf("Class = %v", s.Class())
	}
}

func TestInterEventWrongClass(t *testing.T) {
	bad := InterEventSpec{class: Retroactive}
	if err := bad.CheckAll(mkStamps(1, 1)); err == nil {
		t.Error("non-inter-event class accepted")
	}
}
