package core

import (
	"fmt"
	"sort"

	"repro/internal/chronon"
)

// InterEventSpec is an inter-event specialization of §3.2: a restriction on
// the interrelationship of the stamps of distinct elements. The ordering
// classes (Figure 3) restrict how valid time progresses as transaction time
// does; the regularity classes (Figure 4) restrict stamps to integral
// multiples of a time unit.
//
// Regularity units must be fixed durations: event regularity is a modular
// congruence, which has no meaning for calendar-varying units. (Calendric
// units appear in the *interval* regularity of §3.3, where they measure
// durations anchored at a date.)
type InterEventSpec struct {
	class Class
	unit  int64 // seconds; 0 for ordering classes
}

// Class reports the specialization's class.
func (s InterEventSpec) Class() Class { return s.class }

// Unit reports the regularity time unit (zero for ordering classes).
func (s InterEventSpec) Unit() chronon.Duration { return chronon.Seconds(s.unit) }

// String renders the spec with its parameters.
func (s InterEventSpec) String() string {
	if s.unit == 0 {
		return s.class.String()
	}
	return fmt.Sprintf("%s (Δt=%v)", s.class, chronon.Seconds(s.unit))
}

// SequentialEventsSpec restricts each event to occur and be stored before
// the next event occurs or is stored: valid time can then be approximated
// with transaction time, yielding an append-only relation that supports
// historical queries.
func SequentialEventsSpec() InterEventSpec {
	return InterEventSpec{class: GloballySequentialEvents}
}

// NonDecreasingEventsSpec restricts elements to be entered in valid
// time-stamp order.
func NonDecreasingEventsSpec() InterEventSpec {
	return InterEventSpec{class: GloballyNonDecreasingEvents}
}

// NonIncreasingEventsSpec restricts elements to be entered in reverse valid
// time-stamp order — e.g. an archeological relation recording progressively
// earlier periods as excavation proceeds.
func NonIncreasingEventsSpec() InterEventSpec {
	return InterEventSpec{class: GloballyNonIncreasingEvents}
}

func regularSpec(class Class, unit chronon.Duration) (InterEventSpec, error) {
	secs, ok := unit.FixedSeconds()
	if !ok {
		return InterEventSpec{}, fmt.Errorf("core: %v: calendric unit %v not allowed for event regularity", class, unit)
	}
	if secs <= 0 {
		return InterEventSpec{}, fmt.Errorf("core: %v: time unit %v must be positive", class, unit)
	}
	return InterEventSpec{class: class, unit: secs}, nil
}

// TTEventRegularSpec restricts transaction times of all elements to be
// separated by integral multiples of the unit — e.g. periodic sampling of a
// physical variable (the "synchronous method" of [Tho91]).
func TTEventRegularSpec(unit chronon.Duration) (InterEventSpec, error) {
	return regularSpec(TTEventRegular, unit)
}

// VTEventRegularSpec restricts valid times likewise; a valid time-stamp
// granularity of one second is equivalently valid time event regularity
// with unit one second.
func VTEventRegularSpec(unit chronon.Duration) (InterEventSpec, error) {
	return regularSpec(VTEventRegular, unit)
}

// TemporalEventRegularSpec restricts both times with the same multiplier
// per element pair: more restrictive than transaction and valid time
// regularity together. A periodic degenerate relation is trivially temporal
// event regular.
func TemporalEventRegularSpec(unit chronon.Duration) (InterEventSpec, error) {
	return regularSpec(TemporalEventRegular, unit)
}

// StrictTTEventRegularSpec restricts successive transaction times to differ
// by exactly the unit.
func StrictTTEventRegularSpec(unit chronon.Duration) (InterEventSpec, error) {
	return regularSpec(StrictTTEventRegular, unit)
}

// StrictVTEventRegularSpec restricts successive valid times to differ by
// exactly the unit, with identical valid times disallowed.
func StrictVTEventRegularSpec(unit chronon.Duration) (InterEventSpec, error) {
	return regularSpec(StrictVTEventRegular, unit)
}

// StrictTemporalEventRegularSpec restricts the successor in transaction
// time to also be the successor in valid time, both at distance unit.
func StrictTemporalEventRegularSpec(unit chronon.Duration) (InterEventSpec, error) {
	return regularSpec(StrictTemporalEventRegular, unit)
}

// InterEventViolation reports a pair (or run) of stamps violating an
// inter-event restriction.
type InterEventViolation struct {
	Spec   InterEventSpec
	Reason string
}

func (v *InterEventViolation) Error() string {
	return fmt.Sprintf("core: %s violated: %s", v.Spec, v.Reason)
}

func (s InterEventSpec) violation(format string, args ...any) error {
	return &InterEventViolation{Spec: s, Reason: fmt.Sprintf(format, args...)}
}

// CheckAll tests a whole extension against the specialization. The stamps
// may be in any order; elements with equal transaction times (e.g. the
// deletion and insertion halves of a modification) are unconstrained
// against each other, per the strict inequality tt_e < tt_e' in every
// definition.
func (s InterEventSpec) CheckAll(stamps []Stamp) error {
	if len(stamps) == 0 {
		return nil
	}
	sorted := append([]Stamp(nil), stamps...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].TT < sorted[j].TT })
	switch s.class {
	case GloballyNonDecreasingEvents, GloballyNonIncreasingEvents, GloballySequentialEvents:
		return s.checkOrdering(sorted)
	case TTEventRegular:
		return s.checkCongruent(sorted, func(st Stamp) chronon.Chronon { return st.TT }, "tt")
	case VTEventRegular:
		return s.checkCongruent(sorted, func(st Stamp) chronon.Chronon { return st.VT }, "vt")
	case TemporalEventRegular:
		return s.checkTemporalRegular(sorted)
	case StrictTTEventRegular:
		return s.checkStrictChain(sorted, func(st Stamp) chronon.Chronon { return st.TT }, "tt", true)
	case StrictVTEventRegular:
		return s.checkStrictChain(sorted, func(st Stamp) chronon.Chronon { return st.VT }, "vt", false)
	case StrictTemporalEventRegular:
		return s.checkStrictTemporal(sorted)
	}
	return fmt.Errorf("core: %v is not an inter-event class", s.class)
}

// checkOrdering handles the three ordering classes over tt-sorted stamps.
func (s InterEventSpec) checkOrdering(sorted []Stamp) error {
	// prev* aggregate stamps with tt strictly less than the current group's.
	prevMax := chronon.MinChronon  // max vt of earlier groups
	prevMin := chronon.MaxChronon  // min vt of earlier groups
	prevHigh := chronon.MinChronon // max(tt, vt) of earlier groups (sequential)
	groupStart := 0
	for i := 0; i <= len(sorted); i++ {
		if i < len(sorted) && sorted[i].TT == sorted[groupStart].TT {
			continue
		}
		// Close the group [groupStart, i).
		for _, st := range sorted[groupStart:i] {
			switch s.class {
			case GloballyNonDecreasingEvents:
				if st.VT < prevMax {
					return s.violation("element at tt %v has vt %v earlier than a prior element's vt %v", st.TT, st.VT, prevMax)
				}
			case GloballyNonIncreasingEvents:
				if st.VT > prevMin {
					return s.violation("element at tt %v has vt %v later than a prior element's vt %v", st.TT, st.VT, prevMin)
				}
			case GloballySequentialEvents:
				if low := chronon.Min(st.TT, st.VT); low < prevHigh {
					return s.violation("element at tt %v begins (min(tt,vt)=%v) before a prior element completed (max(tt,vt)=%v)", st.TT, low, prevHigh)
				}
			}
		}
		for _, st := range sorted[groupStart:i] {
			prevMax = chronon.Max(prevMax, st.VT)
			prevMin = chronon.Min(prevMin, st.VT)
			prevHigh = chronon.Max(prevHigh, chronon.Max(st.TT, st.VT))
		}
		groupStart = i
	}
	return nil
}

// checkCongruent verifies that the selected coordinate of every stamp is
// congruent modulo the unit.
func (s InterEventSpec) checkCongruent(sorted []Stamp, coord func(Stamp) chronon.Chronon, name string) error {
	anchor := coord(sorted[0])
	for _, st := range sorted[1:] {
		if diff := coord(st).Sub(anchor); diff%s.unit != 0 {
			return s.violation("%s %v is not a multiple of %v from %s %v", name, coord(st), chronon.Seconds(s.unit), name, anchor)
		}
	}
	return nil
}

// checkTemporalRegular verifies the same-multiplier regularity: tt − vt is
// constant across elements and tt values are congruent modulo the unit.
func (s InterEventSpec) checkTemporalRegular(sorted []Stamp) error {
	offset := sorted[0].TT.Sub(sorted[0].VT)
	anchor := sorted[0].TT
	for _, st := range sorted[1:] {
		if st.TT.Sub(st.VT) != offset {
			return s.violation("element at tt %v has tt−vt = %ds, others have %ds (multipliers differ)",
				st.TT, st.TT.Sub(st.VT), offset)
		}
		if diff := st.TT.Sub(anchor); diff%s.unit != 0 {
			return s.violation("tt %v is not a multiple of %v from tt %v", st.TT, chronon.Seconds(s.unit), anchor)
		}
	}
	return nil
}

// checkStrictChain verifies that the distinct values of the selected
// coordinate form a chain spaced exactly unit apart. For transaction time
// duplicates are tolerated (they arise only from modification transactions
// and the definition's strict inequality skips them); for valid time
// duplicates are disallowed, per the paper's strict valid time definition.
func (s InterEventSpec) checkStrictChain(sorted []Stamp, coord func(Stamp) chronon.Chronon, name string, dupsOK bool) error {
	vals := make([]int64, 0, len(sorted))
	for _, st := range sorted {
		vals = append(vals, int64(coord(st)))
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	prev := vals[0]
	for _, v := range vals[1:] {
		switch {
		case v == prev:
			if !dupsOK {
				return s.violation("duplicate %s %v", name, chronon.Chronon(v))
			}
		case v-prev != s.unit:
			return s.violation("%s %v does not follow %s %v by exactly %v",
				name, chronon.Chronon(v), name, chronon.Chronon(prev), chronon.Seconds(s.unit))
		}
		prev = v
	}
	return nil
}

// checkStrictTemporal verifies that the successor in transaction time is
// the successor in valid time, both at distance unit.
func (s InterEventSpec) checkStrictTemporal(sorted []Stamp) error {
	for i := 1; i < len(sorted); i++ {
		prev, cur := sorted[i-1], sorted[i]
		if cur.TT == prev.TT {
			return s.violation("duplicate tt %v", cur.TT)
		}
		if cur.TT.Sub(prev.TT) != s.unit {
			return s.violation("tt %v does not follow tt %v by exactly %v", cur.TT, prev.TT, chronon.Seconds(s.unit))
		}
		if cur.VT.Sub(prev.VT) != s.unit {
			return s.violation("vt %v does not follow vt %v by exactly %v", cur.VT, prev.VT, chronon.Seconds(s.unit))
		}
	}
	return nil
}

// NewChecker returns an incremental checker for the specialization.
// Incremental checking relies on the intensional reading of §3: every
// historical state must satisfy the definition, so each new stamp can be
// validated against summary state of the already-stored ones. Stamps must
// be offered in non-decreasing transaction-time order, which is how a
// relation produces them.
func (s InterEventSpec) NewChecker() *InterEventChecker {
	return &InterEventChecker{spec: s, prevMin: chronon.MaxChronon, prevMax: chronon.MinChronon,
		prevHigh: chronon.MinChronon, vtMin: chronon.MaxChronon, vtMax: chronon.MinChronon}
}

// InterEventChecker validates stamps one at a time in O(1) state. Check
// reports whether adding the stamp would violate the specialization; Note
// commits it. The same-tt group semantics of the definitions are honored:
// stamps sharing a transaction time are checked only against strictly
// earlier ones.
type InterEventChecker struct {
	spec InterEventSpec
	n    int

	// Ordering state: aggregates over stamps with tt < groupTT, plus the
	// open group at groupTT.
	groupTT   chronon.Chronon
	prevMax   chronon.Chronon // max vt, strictly earlier groups
	prevMin   chronon.Chronon
	prevHigh  chronon.Chronon
	groupMax  chronon.Chronon
	groupMin  chronon.Chronon
	groupHigh chronon.Chronon
	groupOpen bool

	// Regularity state.
	anchorTT chronon.Chronon
	anchorVT chronon.Chronon
	offset   int64 // tt − vt for temporal regularity
	lastTT   chronon.Chronon
	lastVT   chronon.Chronon
	vtMin    chronon.Chronon // strict vt chain bounds
	vtMax    chronon.Chronon
}

// Spec returns the specialization the checker enforces.
func (c *InterEventChecker) Spec() InterEventSpec { return c.spec }

// Check reports whether st can be added without violating the
// specialization. It does not modify the checker.
func (c *InterEventChecker) Check(st Stamp) error {
	if c.n > 0 && st.TT < c.groupTT {
		return c.spec.violation("stamps offered out of transaction-time order (%v after %v)", st.TT, c.groupTT)
	}
	if c.n == 0 {
		return nil
	}
	s := c.spec
	// Aggregates over stamps strictly earlier than st.TT.
	prevMax, prevMin, prevHigh := c.prevMax, c.prevMin, c.prevHigh
	if c.groupOpen && st.TT > c.groupTT {
		prevMax = chronon.Max(prevMax, c.groupMax)
		prevMin = chronon.Min(prevMin, c.groupMin)
		prevHigh = chronon.Max(prevHigh, c.groupHigh)
	}
	switch s.class {
	case GloballyNonDecreasingEvents:
		if st.VT < prevMax {
			return s.violation("element at tt %v has vt %v earlier than a prior element's vt %v", st.TT, st.VT, prevMax)
		}
	case GloballyNonIncreasingEvents:
		if st.VT > prevMin {
			return s.violation("element at tt %v has vt %v later than a prior element's vt %v", st.TT, st.VT, prevMin)
		}
	case GloballySequentialEvents:
		if low := chronon.Min(st.TT, st.VT); low < prevHigh {
			return s.violation("element at tt %v begins (min(tt,vt)=%v) before a prior element completed (max(tt,vt)=%v)", st.TT, low, prevHigh)
		}
	case TTEventRegular:
		if st.TT.Sub(c.anchorTT)%s.unit != 0 {
			return s.violation("tt %v is not a multiple of %v from tt %v", st.TT, chronon.Seconds(s.unit), c.anchorTT)
		}
	case VTEventRegular:
		if st.VT.Sub(c.anchorVT)%s.unit != 0 {
			return s.violation("vt %v is not a multiple of %v from vt %v", st.VT, chronon.Seconds(s.unit), c.anchorVT)
		}
	case TemporalEventRegular:
		if st.TT.Sub(st.VT) != c.offset {
			return s.violation("element at tt %v has tt−vt = %ds, others have %ds (multipliers differ)", st.TT, st.TT.Sub(st.VT), c.offset)
		}
		if st.TT.Sub(c.anchorTT)%s.unit != 0 {
			return s.violation("tt %v is not a multiple of %v from tt %v", st.TT, chronon.Seconds(s.unit), c.anchorTT)
		}
	case StrictTTEventRegular:
		if st.TT != c.lastTT && st.TT.Sub(c.lastTT) != s.unit {
			return s.violation("tt %v does not follow tt %v by exactly %v", st.TT, c.lastTT, chronon.Seconds(s.unit))
		}
	case StrictVTEventRegular:
		// A new stamp may only extend the chain at either end: any other
		// value leaves the *current* state in violation, which the
		// intensional definition forbids.
		if st.VT != c.vtMax.Add(s.unit) && st.VT != c.vtMin.Add(-s.unit) {
			return s.violation("vt %v does not extend the strict chain [%v, %v] by %v", st.VT, c.vtMin, c.vtMax, chronon.Seconds(s.unit))
		}
	case StrictTemporalEventRegular:
		if st.TT == c.lastTT {
			return s.violation("duplicate tt %v", st.TT)
		}
		if st.TT.Sub(c.lastTT) != s.unit {
			return s.violation("tt %v does not follow tt %v by exactly %v", st.TT, c.lastTT, chronon.Seconds(s.unit))
		}
		if st.VT.Sub(c.lastVT) != s.unit {
			return s.violation("vt %v does not follow vt %v by exactly %v", st.VT, c.lastVT, chronon.Seconds(s.unit))
		}
	}
	return nil
}

// Note commits st to the checker's state. Callers must have verified the
// stamp with Check first; Note does not re-validate.
func (c *InterEventChecker) Note(st Stamp) {
	if c.n == 0 {
		c.groupTT = st.TT
		c.groupMax, c.groupMin = st.VT, st.VT
		c.groupHigh = chronon.Max(st.TT, st.VT)
		c.groupOpen = true
		c.anchorTT, c.anchorVT = st.TT, st.VT
		c.offset = st.TT.Sub(st.VT)
		c.lastTT, c.lastVT = st.TT, st.VT
		c.vtMin, c.vtMax = st.VT, st.VT
		c.n = 1
		return
	}
	if st.TT > c.groupTT {
		c.prevMax = chronon.Max(c.prevMax, c.groupMax)
		c.prevMin = chronon.Min(c.prevMin, c.groupMin)
		c.prevHigh = chronon.Max(c.prevHigh, c.groupHigh)
		c.groupTT = st.TT
		c.groupMax, c.groupMin = st.VT, st.VT
		c.groupHigh = chronon.Max(st.TT, st.VT)
	} else {
		c.groupMax = chronon.Max(c.groupMax, st.VT)
		c.groupMin = chronon.Min(c.groupMin, st.VT)
		c.groupHigh = chronon.Max(c.groupHigh, chronon.Max(st.TT, st.VT))
	}
	c.lastTT, c.lastVT = st.TT, st.VT
	c.vtMin = chronon.Min(c.vtMin, st.VT)
	c.vtMax = chronon.Max(c.vtMax, st.VT)
	c.n++
}
