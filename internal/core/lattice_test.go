package core

import (
	"strings"
	"testing"

	"repro/internal/chronon"
)

func TestFigure2Edges(t *testing.T) {
	// The generalization/specialization structure of the event-based
	// taxonomy, exactly as Figure 2 draws it.
	edges := map[Class][]Class{
		General:                      {RetroactivelyBounded, PredictivelyBounded},
		RetroactivelyBounded:         {Predictive, StronglyBounded},
		PredictivelyBounded:          {StronglyBounded, Retroactive},
		Predictive:                   {EarlyPredictive, StronglyPredictivelyBounded},
		StronglyBounded:              {StronglyPredictivelyBounded, StronglyRetroactivelyBounded},
		Retroactive:                  {StronglyRetroactivelyBounded, DelayedRetroactive},
		EarlyPredictive:              {EarlyStronglyPredictivelyBounded},
		StronglyPredictivelyBounded:  {EarlyStronglyPredictivelyBounded, Degenerate},
		StronglyRetroactivelyBounded: {Degenerate, DelayedStronglyRetroactivelyBounded},
		DelayedRetroactive:           {DelayedStronglyRetroactivelyBounded},
	}
	for parent, children := range edges {
		got := Children(parent)
		for _, want := range children {
			found := false
			for _, c := range got {
				if c == want {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("Children(%v) lacks %v", parent, want)
			}
		}
	}
	// Leaves of Figure 2 have no event-class children.
	for _, leaf := range []Class{EarlyStronglyPredictivelyBounded, Degenerate, DelayedStronglyRetroactivelyBounded} {
		for _, c := range Children(leaf) {
			if c.Category() == CategoryIsolatedEvent {
				t.Errorf("leaf %v has event child %v", leaf, c)
			}
		}
	}
}

func TestLatticeEdgesAreSemanticallySound(t *testing.T) {
	// Every Figure 2 edge parent → child must be a true implication: any
	// stamp satisfying the child spec satisfies the parent spec *for
	// suitably related parameters*. The parameters below nest correctly:
	// inner bounds at 10s, outer bounds at 30s, so each child's region is
	// contained in every ancestor's region.
	specs := map[Class]EventSpec{
		General:                             GeneralSpec(),
		Retroactive:                         RetroactiveSpec(),
		Predictive:                          PredictiveSpec(),
		DelayedRetroactive:                  mustSpec(DelayedRetroactiveSpec(chronon.Seconds(10))),
		EarlyPredictive:                     mustSpec(EarlyPredictiveSpec(chronon.Seconds(10))),
		RetroactivelyBounded:                mustSpec(RetroactivelyBoundedSpec(chronon.Seconds(30))),
		PredictivelyBounded:                 mustSpec(PredictivelyBoundedSpec(chronon.Seconds(30))),
		StronglyRetroactivelyBounded:        mustSpec(StronglyRetroactivelyBoundedSpec(chronon.Seconds(30))),
		StronglyPredictivelyBounded:         mustSpec(StronglyPredictivelyBoundedSpec(chronon.Seconds(30))),
		DelayedStronglyRetroactivelyBounded: mustSpec(DelayedStronglyRetroactivelyBoundedSpec(chronon.Seconds(10), chronon.Seconds(30))),
		EarlyStronglyPredictivelyBounded:    mustSpec(EarlyStronglyPredictivelyBoundedSpec(chronon.Seconds(10), chronon.Seconds(30))),
		StronglyBounded:                     mustSpec(StronglyBoundedSpec(chronon.Seconds(30), chronon.Seconds(30))),
		Degenerate:                          mustSpec(DegenerateSpec(chronon.Second)),
	}
	for child, spec := range specs {
		for _, parent := range Ancestors(child) {
			pSpec, ok := specs[parent]
			if !ok || parent.Category() != CategoryIsolatedEvent {
				continue
			}
			for off := int64(-60); off <= 60; off++ {
				st := Stamp{TT: 1000, VT: chronon.Chronon(1000 + off)}
				if spec.Check(st) == nil && pSpec.Check(st) != nil {
					t.Errorf("edge unsound: %v passes %v but fails ancestor %v at offset %d",
						st, child, parent, off)
				}
			}
		}
	}
}

func TestAncestorsDescendants(t *testing.T) {
	anc := Ancestors(Degenerate)
	wantAnc := []Class{General, Retroactive, Predictive, RetroactivelyBounded,
		StronglyRetroactivelyBounded, PredictivelyBounded,
		StronglyPredictivelyBounded, StronglyBounded}
	if len(anc) != len(wantAnc) {
		t.Fatalf("Ancestors(Degenerate) = %v, want %v", anc, wantAnc)
	}
	for i, a := range wantAnc {
		if anc[i] != a {
			t.Errorf("Ancestors(Degenerate)[%d] = %v, want %v", i, anc[i], a)
		}
	}
	desc := Descendants(Retroactive)
	wantDesc := map[Class]bool{
		DelayedRetroactive: true, StronglyRetroactivelyBounded: true,
		Degenerate: true, DelayedStronglyRetroactivelyBounded: true,
	}
	if len(desc) != len(wantDesc) {
		t.Fatalf("Descendants(Retroactive) = %v", desc)
	}
	for _, d := range desc {
		if !wantDesc[d] {
			t.Errorf("unexpected descendant %v", d)
		}
	}
}

func TestIsSpecializationOf(t *testing.T) {
	cases := []struct {
		c, p Class
		want bool
	}{
		{Degenerate, General, true},
		{Degenerate, Retroactive, true},
		{Degenerate, Predictive, true},
		{Degenerate, Degenerate, true},
		{Retroactive, Predictive, false},
		{General, Degenerate, false},
		{GloballySequentialEvents, GloballyNonDecreasingEvents, true},
		{GloballySequentialEvents, GloballyNonIncreasingEvents, false},
		{StrictTemporalEventRegular, TTEventRegular, true},
		{StrictTemporalEventRegular, VTEventRegular, true},
		{TemporalEventRegular, StrictTTEventRegular, false},
		{StrictTemporalIntervalRegular, VTIntervalRegular, true},
		{STMeets, GloballyNonDecreasingIntervals, true},
		{STAfter, GloballyNonIncreasingIntervals, true},
		{STEqual, GloballyNonDecreasingIntervals, true},
		{STEqual, GloballyNonIncreasingIntervals, true},
		{GloballySequentialIntervals, GloballyNonDecreasingIntervals, true},
		{STBefore, GloballyNonIncreasingIntervals, false},
	}
	for _, c := range cases {
		if got := IsSpecializationOf(c.c, c.p); got != c.want {
			t.Errorf("IsSpecializationOf(%v, %v) = %v, want %v", c.c, c.p, got, c.want)
		}
	}
}

func TestEveryClassDescendsFromGeneral(t *testing.T) {
	for _, c := range Classes() {
		if c == General {
			continue
		}
		if !IsSpecializationOf(c, General) {
			t.Errorf("%v does not descend from general", c)
		}
	}
}

func TestLatticeIsAcyclic(t *testing.T) {
	for _, c := range Classes() {
		for _, d := range Descendants(c) {
			if d == c {
				t.Errorf("cycle through %v", c)
			}
		}
	}
}

func TestMostSpecific(t *testing.T) {
	got := MostSpecific([]Class{General, Retroactive, StronglyRetroactivelyBounded, PredictivelyBounded})
	if len(got) != 1 || got[0] != StronglyRetroactivelyBounded {
		t.Errorf("MostSpecific = %v", got)
	}
	// Two incomparable classes both survive.
	got = MostSpecific([]Class{General, Retroactive, GloballySequentialEvents})
	want := map[Class]bool{Retroactive: true, GloballySequentialEvents: true}
	if len(got) != 2 {
		t.Fatalf("MostSpecific = %v", got)
	}
	for _, c := range got {
		if !want[c] {
			t.Errorf("unexpected %v", c)
		}
	}
	if got := MostSpecific(nil); len(got) != 0 {
		t.Errorf("MostSpecific(nil) = %v", got)
	}
}

func TestParentsInverseOfChildren(t *testing.T) {
	for _, p := range Classes() {
		for _, c := range Children(p) {
			found := false
			for _, q := range Parents(c) {
				if q == p {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("Parents(%v) lacks %v", c, p)
			}
		}
	}
}

func TestRenderLattice(t *testing.T) {
	for _, cat := range []Category{CategoryIsolatedEvent, CategoryInterEventOrder,
		CategoryInterEventRegular, CategoryIntervalRegular, CategoryInterInterval} {
		out := RenderLattice(cat)
		if !strings.Contains(out, "general") {
			t.Errorf("%v lattice lacks general root:\n%s", cat, out)
		}
	}
	ev := RenderLattice(CategoryIsolatedEvent)
	for _, want := range []string{"retroactively bounded", "degenerate", "strongly bounded"} {
		if !strings.Contains(ev, want) {
			t.Errorf("event lattice lacks %q:\n%s", want, ev)
		}
	}
	ii := RenderLattice(CategoryInterInterval)
	if !strings.Contains(ii, "globally contiguous") {
		t.Errorf("inter-interval lattice lacks contiguous:\n%s", ii)
	}
}
