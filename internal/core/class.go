// Package core implements the paper's primary contribution: the taxonomy of
// temporal specializations (§3). It provides
//
//   - the isolated-event specializations of §3.1 (retroactive, predictive,
//     bounded, degenerate, determined, ... — Figures 1 and 2),
//   - the inter-event specializations of §3.2 (orderings and regularity —
//     Figures 3 and 4),
//   - the isolated-interval specializations of §3.3 (endpoint-applied event
//     specializations and interval regularity),
//   - the inter-interval specializations of §3.4 (successive-transaction-
//     time Allen relations — Figure 5),
//   - the generalization/specialization lattice connecting them,
//   - inference of the specializations satisfied by a relation extension,
//     with parameter synthesis (tightest bounds, largest regular units), and
//   - the completeness enumeration of §3.1 (eleven isolated-event
//     specializations plus the general relation).
//
// All specializations can be evaluated per relation or per partition (the
// per-surrogate partitioning of §2).
package core

import "fmt"

// Class identifies a specialization in the taxonomy. Classes are grouped by
// the section of the paper that defines them; Category reports the group.
type Class uint8

// Isolated-event classes (§3.1, Figures 1 and 2). Each undetermined class
// has a determined counterpart expressed by attaching a mapping function
// (see DeterminedSpec); the lattice includes only the undetermined classes,
// mirroring Figure 2.
const (
	// General is the unrestricted temporal relation.
	General Class = iota
	// Retroactive: vt ≤ tt — facts are valid before they are stored.
	Retroactive
	// DelayedRetroactive: vt ≤ tt − Δt for a fixed Δt > 0.
	DelayedRetroactive
	// Predictive: vt ≥ tt — facts are stored before they become valid.
	Predictive
	// EarlyPredictive: vt ≥ tt + Δt for a fixed Δt > 0.
	EarlyPredictive
	// RetroactivelyBounded: vt ≥ tt − Δt for a fixed Δt ≥ 0 (vt may
	// exceed tt).
	RetroactivelyBounded
	// StronglyRetroactivelyBounded: tt − Δt ≤ vt ≤ tt.
	StronglyRetroactivelyBounded
	// DelayedStronglyRetroactivelyBounded: tt − Δt₂ ≤ vt ≤ tt − Δt₁ with
	// 0 ≤ Δt₁ < Δt₂ (a minimum and a maximum recording delay).
	DelayedStronglyRetroactivelyBounded
	// PredictivelyBounded: vt ≤ tt + Δt for a fixed Δt ≥ 0 (vt may
	// precede tt).
	PredictivelyBounded
	// StronglyPredictivelyBounded: tt ≤ vt ≤ tt + Δt.
	StronglyPredictivelyBounded
	// EarlyStronglyPredictivelyBounded: tt + Δt₁ ≤ vt ≤ tt + Δt₂ with
	// 0 ≤ Δt₁ < Δt₂ (a minimum and a maximum lead).
	EarlyStronglyPredictivelyBounded
	// StronglyBounded: tt − Δt₁ ≤ vt ≤ tt + Δt₂.
	StronglyBounded
	// Degenerate: vt = tt within the relation's granularity.
	Degenerate

	// Inter-event ordering classes (§3.2, Figure 3).

	// GloballyNonDecreasingEvents: elements are entered in valid
	// time-stamp order.
	GloballyNonDecreasingEvents
	// GloballyNonIncreasingEvents: elements are entered in reverse valid
	// time-stamp order.
	GloballyNonIncreasingEvents
	// GloballySequentialEvents: each event occurs and is stored before
	// the next occurs or is stored.
	GloballySequentialEvents

	// Inter-event regularity classes (§3.2, Figure 4).

	// TTEventRegular: all transaction times are congruent modulo Δt.
	TTEventRegular
	// VTEventRegular: all valid times are congruent modulo Δt.
	VTEventRegular
	// TemporalEventRegular: transaction and valid times are congruent
	// modulo Δt with the same multiplier for each pair of elements.
	TemporalEventRegular
	// StrictTTEventRegular: successive transaction times differ by
	// exactly Δt.
	StrictTTEventRegular
	// StrictVTEventRegular: successive valid times differ by exactly Δt.
	StrictVTEventRegular
	// StrictTemporalEventRegular: the successor in transaction time is
	// also the successor in valid time, both at distance Δt.
	StrictTemporalEventRegular

	// Isolated-interval regularity classes (§3.3).

	// TTIntervalRegular: each element's existence interval has a duration
	// that is a multiple of Δt.
	TTIntervalRegular
	// VTIntervalRegular: each element's valid interval has a duration
	// that is a multiple of Δt.
	VTIntervalRegular
	// TemporalIntervalRegular: both durations are multiples of one Δt.
	TemporalIntervalRegular
	// StrictTTIntervalRegular: every existence interval lasts exactly Δt.
	StrictTTIntervalRegular
	// StrictVTIntervalRegular: every valid interval lasts exactly Δt.
	StrictVTIntervalRegular
	// StrictTemporalIntervalRegular: both intervals last exactly Δt.
	StrictTemporalIntervalRegular

	// Inter-interval classes (§3.4, Figure 5).

	// GloballyNonDecreasingIntervals: elements are entered in valid
	// time-stamp (interval start) order.
	GloballyNonDecreasingIntervals
	// GloballyNonIncreasingIntervals: elements are entered in reverse
	// valid time-stamp order.
	GloballyNonIncreasingIntervals
	// GloballySequentialIntervals: each interval occurs and is stored
	// before the next interval commences.
	GloballySequentialIntervals
	// STBefore .. STFinishedBy: elements successive in transaction time
	// have valid intervals related by the named Allen relation. STMeets is
	// the paper's "globally contiguous".
	STBefore
	STMeets // globally contiguous
	STOverlaps
	STStarts
	STDuring
	STFinishes
	STEqual
	STAfter
	STMetBy
	STOverlappedBy
	STStartedBy
	STContains
	STFinishedBy

	numClasses
)

// GloballyContiguous is the paper's name for STMeets: "the end of one event
// coincides with the start of the next that is stored" (§3.4).
const GloballyContiguous = STMeets

// Category groups classes by the taxonomy section that defines them.
type Category uint8

// The four sub-taxonomies of §3 (isolated-interval endpoint specializations
// reuse the isolated-event classes, so they carry CategoryIsolatedEvent).
const (
	CategoryIsolatedEvent     Category = iota // §3.1
	CategoryInterEventOrder                   // §3.2 part I
	CategoryInterEventRegular                 // §3.2 part II
	CategoryIntervalRegular                   // §3.3
	CategoryInterInterval                     // §3.4
)

// String names the category.
func (c Category) String() string {
	switch c {
	case CategoryIsolatedEvent:
		return "isolated-event"
	case CategoryInterEventOrder:
		return "inter-event ordering"
	case CategoryInterEventRegular:
		return "inter-event regularity"
	case CategoryIntervalRegular:
		return "isolated-interval regularity"
	case CategoryInterInterval:
		return "inter-interval"
	}
	return fmt.Sprintf("Category(%d)", uint8(c))
}

// Category reports which sub-taxonomy the class belongs to.
func (c Class) Category() Category {
	switch {
	case c <= Degenerate:
		return CategoryIsolatedEvent
	case c <= GloballySequentialEvents:
		return CategoryInterEventOrder
	case c <= StrictTemporalEventRegular:
		return CategoryInterEventRegular
	case c <= StrictTemporalIntervalRegular:
		return CategoryIntervalRegular
	default:
		return CategoryInterInterval
	}
}

var classNames = map[Class]string{
	General:                             "general",
	Retroactive:                         "retroactive",
	DelayedRetroactive:                  "delayed retroactive",
	Predictive:                          "predictive",
	EarlyPredictive:                     "early predictive",
	RetroactivelyBounded:                "retroactively bounded",
	StronglyRetroactivelyBounded:        "strongly retroactively bounded",
	DelayedStronglyRetroactivelyBounded: "delayed strongly retroactively bounded",
	PredictivelyBounded:                 "predictively bounded",
	StronglyPredictivelyBounded:         "strongly predictively bounded",
	EarlyStronglyPredictivelyBounded:    "early strongly predictively bounded",
	StronglyBounded:                     "strongly bounded",
	Degenerate:                          "degenerate",

	GloballyNonDecreasingEvents: "globally non-decreasing (events)",
	GloballyNonIncreasingEvents: "globally non-increasing (events)",
	GloballySequentialEvents:    "globally sequential (events)",

	TTEventRegular:             "transaction time event regular",
	VTEventRegular:             "valid time event regular",
	TemporalEventRegular:       "temporal event regular",
	StrictTTEventRegular:       "strict transaction time event regular",
	StrictVTEventRegular:       "strict valid time event regular",
	StrictTemporalEventRegular: "strict temporal event regular",

	TTIntervalRegular:             "transaction time interval regular",
	VTIntervalRegular:             "valid time interval regular",
	TemporalIntervalRegular:       "temporal interval regular",
	StrictTTIntervalRegular:       "strict transaction time interval regular",
	StrictVTIntervalRegular:       "strict valid time interval regular",
	StrictTemporalIntervalRegular: "strict temporal interval regular",

	GloballyNonDecreasingIntervals: "globally non-decreasing (intervals)",
	GloballyNonIncreasingIntervals: "globally non-increasing (intervals)",
	GloballySequentialIntervals:    "globally sequential (intervals)",
	STBefore:                       "successive transaction time before",
	STMeets:                        "globally contiguous (st-meets)",
	STOverlaps:                     "successive transaction time overlaps",
	STStarts:                       "successive transaction time starts",
	STDuring:                       "successive transaction time during",
	STFinishes:                     "successive transaction time finishes",
	STEqual:                        "successive transaction time equal",
	STAfter:                        "successive transaction time inverse before",
	STMetBy:                        "successive transaction time inverse meets",
	STOverlappedBy:                 "successive transaction time inverse overlaps",
	STStartedBy:                    "successive transaction time inverse starts",
	STContains:                     "successive transaction time inverse during",
	STFinishedBy:                   "successive transaction time inverse finishes",
}

// String names the class as the paper does.
func (c Class) String() string {
	if n, ok := classNames[c]; ok {
		return n
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// Classes lists every class in the taxonomy in declaration order.
func Classes() []Class {
	out := make([]Class, numClasses)
	for i := range out {
		out[i] = Class(i)
	}
	return out
}

// EventClasses lists the isolated-event classes of §3.1, General first —
// the twelve regions of Figure 1 plus the degenerate limit.
func EventClasses() []Class {
	return []Class{
		General, Retroactive, DelayedRetroactive, Predictive, EarlyPredictive,
		RetroactivelyBounded, StronglyRetroactivelyBounded,
		DelayedStronglyRetroactivelyBounded, PredictivelyBounded,
		StronglyPredictivelyBounded, EarlyStronglyPredictivelyBounded,
		StronglyBounded, Degenerate,
	}
}
