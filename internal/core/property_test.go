package core

import (
	"testing"
	"testing/quick"

	"repro/internal/chronon"
)

// TestEventSpecMatchesRegionArithmetic cross-checks every bounded event
// predicate against direct offset arithmetic: for fixed bounds, Check must
// accept exactly lower ≤ vt−tt ≤ upper.
func TestEventSpecMatchesRegionArithmetic(t *testing.T) {
	specs := allEventSpecs(t)
	f := func(ttRaw int32, offRaw int16) bool {
		tt := chronon.Chronon(int64(ttRaw))
		off := int64(offRaw) % 100
		st := Stamp{TT: tt, VT: tt.Add(off)}
		for cls, spec := range specs {
			if cls == Degenerate {
				if (spec.Check(st) == nil) != (off == 0) {
					return false
				}
				continue
			}
			lower, upper := spec.Bounds()
			want := true
			if lower != nil {
				lo, _ := lower.FixedSeconds()
				want = want && off >= lo
			}
			if upper != nil {
				hi, _ := upper.FixedSeconds()
				want = want && off <= hi
			}
			if (spec.Check(st) == nil) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestMostSpecificIdempotent: filtering twice changes nothing, and the
// result is an antichain (no member specializes another).
func TestMostSpecificIdempotent(t *testing.T) {
	f := func(raw []uint8) bool {
		var classes []Class
		for _, r := range raw {
			classes = append(classes, Class(int(r)%int(numClasses)))
		}
		once := MostSpecific(classes)
		twice := MostSpecific(once)
		if len(once) != len(twice) {
			return false
		}
		for i := range once {
			if once[i] != twice[i] {
				return false
			}
		}
		for _, a := range once {
			for _, b := range once {
				if a != b && IsSpecializationOf(a, b) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestAncestorsDescendantsDual: b ∈ Ancestors(a) iff a ∈ Descendants(b).
func TestAncestorsDescendantsDual(t *testing.T) {
	for _, a := range Classes() {
		for _, b := range Ancestors(a) {
			found := false
			for _, d := range Descendants(b) {
				if d == a {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("%v ∈ Ancestors(%v) but %v ∉ Descendants(%v)", b, a, a, b)
			}
		}
	}
}

// TestInferenceSoundness: every class Classify reports is actually
// satisfied by the extension, checked against the batch predicates with
// the synthesized parameters where the class is parameterless.
func TestInferenceSoundness(t *testing.T) {
	f := func(seed int64) bool {
		// Build a random monotone-tt extension.
		n := 20
		stamps := make([]Stamp, n)
		x := seed
		next := func() int64 {
			x = x*6364136223846793005 + 1442695040888963407
			return x >> 33
		}
		tt := chronon.Chronon(0)
		for i := range stamps {
			tt = tt.Add(1 + (next()%50+50)%50)
			stamps[i] = Stamp{TT: tt, VT: tt.Add((next() % 200) - 100)}
		}
		got := InferEventClasses(stamps, chronon.Second)
		for _, fi := range got {
			switch fi.Class {
			case Retroactive:
				if RetroactiveSpec().CheckAll(stamps) != nil {
					return false
				}
			case Predictive:
				if PredictiveSpec().CheckAll(stamps) != nil {
					return false
				}
			case General, Degenerate:
			}
		}
		inter := InferInterEventClasses(stamps)
		for _, fi := range inter {
			switch fi.Class {
			case GloballySequentialEvents:
				if SequentialEventsSpec().CheckAll(stamps) != nil {
					return false
				}
			case GloballyNonDecreasingEvents:
				if NonDecreasingEventsSpec().CheckAll(stamps) != nil {
					return false
				}
			case GloballyNonIncreasingEvents:
				if NonIncreasingEventsSpec().CheckAll(stamps) != nil {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
