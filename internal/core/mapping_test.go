package core

import (
	"strings"
	"testing"

	"repro/internal/chronon"
)

func TestMappingM1(t *testing.T) {
	m := M1(chronon.Seconds(30))
	e := eventElem(100, int64(chronon.Forever), 0)
	if got := m.Fn(e); got != 130 {
		t.Errorf("m1 = %v, want 130", got)
	}
	if !strings.Contains(m.Name, "m1") {
		t.Errorf("name %q", m.Name)
	}
}

func TestMappingM2(t *testing.T) {
	// m2(e) = ⌊tt⊢ − Δt⌋ hours: valid from the most recent hour.
	m := M2(chronon.Seconds(600))
	e := eventElem(int64(chronon.DateTime(1992, 1, 1, 10, 30, 0)), int64(chronon.Forever), 0)
	want := chronon.DateTime(1992, 1, 1, 10, 0, 0) // 10:20 floored to the hour
	if got := m.Fn(e); got != want {
		t.Errorf("m2 = %v, want %v", got, want)
	}
}

func TestMappingM3(t *testing.T) {
	// m3(e) = ⌈tt⊢⌉ day + 8h: the next closest 8:00 a.m.
	m := M3()
	e := eventElem(int64(chronon.DateTime(1992, 1, 1, 15, 0, 0)), int64(chronon.Forever), 0)
	want := chronon.DateTime(1992, 1, 2, 8, 0, 0)
	if got := m.Fn(e); got != want {
		t.Errorf("m3 = %v, want %v", got, want)
	}
	// A deposit at exactly midnight is valid the same day at 8:00.
	e2 := eventElem(int64(chronon.Date(1992, 1, 5)), int64(chronon.Forever), 0)
	want2 := chronon.DateTime(1992, 1, 5, 8, 0, 0)
	if got := m.Fn(e2); got != want2 {
		t.Errorf("m3 at midnight = %v, want %v", got, want2)
	}
}

func TestDeterminedSpecCheck(t *testing.T) {
	m := M1(chronon.Seconds(30))
	spec := DeterminedSpec{M: m, Base: GeneralSpec()}
	good := eventElem(100, int64(chronon.Forever), 130)
	if err := spec.Check(good); err != nil {
		t.Errorf("determined element rejected: %v", err)
	}
	bad := eventElem(100, int64(chronon.Forever), 131)
	err := spec.Check(bad)
	if err == nil {
		t.Fatal("non-determined element accepted")
	}
	if _, ok := err.(*DeterminedViolation); !ok {
		t.Errorf("error type %T", err)
	}
}

func TestDeterminedWithBase(t *testing.T) {
	// Predictively determined: vt = m(e) ∧ m(e) ≥ tt. M1 with positive
	// delay is predictive by construction; M2 (past hour) is retroactive.
	predictive := DeterminedSpec{M: M1(chronon.Seconds(30)), Base: PredictiveSpec()}
	if err := predictive.Check(eventElem(100, int64(chronon.Forever), 130)); err != nil {
		t.Errorf("predictively determined rejected: %v", err)
	}
	retro := DeterminedSpec{M: M2(chronon.Seconds(0)), Base: RetroactiveSpec()}
	tt := chronon.DateTime(1992, 1, 1, 10, 30, 0)
	vt := chronon.DateTime(1992, 1, 1, 10, 0, 0)
	if err := retro.Check(eventElem(int64(tt), int64(chronon.Forever), int64(vt))); err != nil {
		t.Errorf("retroactively determined rejected: %v", err)
	}
	// A mapping violating the base: m1 under a retroactive base.
	wrongBase := DeterminedSpec{M: M1(chronon.Seconds(30)), Base: RetroactiveSpec()}
	if err := wrongBase.Check(eventElem(100, int64(chronon.Forever), 130)); err == nil {
		t.Error("base violation accepted")
	}
}

func TestDeterminedCheckAllAndDetermine(t *testing.T) {
	m := M1(chronon.Seconds(10))
	es := elems(
		eventElem(100, int64(chronon.Forever), 110),
		eventElem(200, int64(chronon.Forever), 210),
	)
	if err := Determine(m, es, TTInsertion, VTStart); err != nil {
		t.Errorf("Determine: %v", err)
	}
	es = append(es, eventElem(300, int64(chronon.Forever), 999))
	if err := Determine(m, es, TTInsertion, VTStart); err == nil {
		t.Error("undetermined extension accepted")
	}
}

func TestDeterminedDeletionBasisSkipsCurrent(t *testing.T) {
	spec := DeterminedSpec{M: M1(chronon.Seconds(0)), Base: GeneralSpec(), Basis: TTDeletion}
	cur := eventElem(100, int64(chronon.Forever), 42)
	if err := spec.Check(cur); err != nil {
		t.Errorf("current element should vacuously satisfy deletion-basis spec: %v", err)
	}
}

func TestDeterminedString(t *testing.T) {
	plain := DeterminedSpec{M: M3(), Base: GeneralSpec()}
	if got := plain.String(); got != "determined with m3" {
		t.Errorf("String = %q", got)
	}
	based := DeterminedSpec{M: M3(), Base: PredictiveSpec()}
	if got := based.String(); got != "predictive determined with m3" {
		t.Errorf("String = %q", got)
	}
}
