package core

import (
	"repro/internal/chronon"
	"repro/internal/element"
)

// StampOf extracts the (tt, vt) stamp of an element under transaction-time
// basis b and valid-time endpoint p. ok is false when the element has no
// stamp under the basis — a deletion-basis stamp exists only once the
// element has been logically deleted.
func StampOf(e *element.Element, b TTBasis, p VTEndpoint) (Stamp, bool) {
	var tt chronon.Chronon
	switch b {
	case TTInsertion:
		tt = e.TTStart
	case TTDeletion:
		if e.Current() {
			return Stamp{}, false
		}
		tt = e.TTEnd
	}
	vt := e.VT.Start()
	if p == VTEnd {
		vt = e.VT.End()
	}
	return Stamp{TT: tt, VT: vt}, true
}

// StampsOf extracts the stamps of an extension under basis b and endpoint
// p, skipping elements that have no stamp under the basis. The result is in
// the extension's order (tt⊢ order for a relation's Versions).
func StampsOf(es []*element.Element, b TTBasis, p VTEndpoint) []Stamp {
	out := make([]Stamp, 0, len(es))
	for _, e := range es {
		if st, ok := StampOf(e, b, p); ok {
			out = append(out, st)
		}
	}
	return out
}
