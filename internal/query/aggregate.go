package query

import (
	"context"
	"sort"

	"repro/internal/chronon"
	"repro/internal/element"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/vec"
)

// batchCheckEvery is how many batches the columnar loop consumes between
// cooperative cancellation checks.
const batchCheckEvery = 8

// AggregateCtx executes a compiled window-aggregate plan: the columnar
// batch engine when the planner (or a USING hint) chose the ColumnarScan
// leaf, the row reference engine otherwise. Both executions fold
// elements in arrival (ES) order, so floating-point accumulation is
// bit-identical across the two engines — the invariant the differential
// harness asserts. pq is the planner's view of the query (for access-
// path entry on the row side), event whether the relation is
// event-stamped, and the returned stats feed the batch counters.
func (en *Engine) AggregateCtx(ctx context.Context, node *plan.Node, pq plan.Query, spec *vec.Spec, event bool) (*vec.AggResult, vec.ExecStats, error) {
	var stats vec.ExecStats
	leaf := node.Leaf()
	if leaf.Kind == plan.ColumnarScan {
		r := storage.NewBatchReader(en.store, event)
		if spec.Filter.HasVT {
			r.SetVTWindow(chronon.Chronon(spec.Filter.VTLo), chronon.Chronon(spec.Filter.VTHi))
		}
		if spec.Filter.AsOf {
			r.SetAsOf(chronon.Chronon(spec.Filter.TT))
		} else {
			r.SetCurrentOnly()
		}
		agg, err := vec.NewColAgg(spec)
		if err != nil {
			return nil, stats, err
		}
		var b vec.Batch
		for {
			ok, err := r.Next(&b)
			if err != nil {
				return nil, stats, err
			}
			if !ok {
				break
			}
			if err := agg.Consume(&b, &stats); err != nil {
				return nil, stats, err
			}
			if stats.Batches%batchCheckEvery == 0 {
				if err := ctx.Err(); err != nil {
					return nil, stats, err
				}
			}
		}
		res, err := agg.Result()
		if err != nil {
			return nil, stats, err
		}
		en.record(node, int(stats.Rows))
		return res, stats, nil
	}
	elems, touched := en.aggregateCandidates(leaf, pq)
	stats.Rows = int64(touched)
	res, err := vec.RowAggregate(ctx, spec, elems)
	if err != nil {
		return nil, stats, err
	}
	en.record(node, touched)
	return res, stats, nil
}

// aggregateCandidates materializes the row engine's input through the
// planned access path. The spec re-applies every predicate, so a
// superset is always sound; what matters is arrival (ES) order, which
// the log-backed paths yield naturally and the vt-index path restores
// by sorting — float sums must accumulate in the same order as the
// columnar engine's batch stream.
func (en *Engine) aggregateCandidates(leaf *plan.Node, pq plan.Query) ([]*element.Element, int) {
	switch leaf.Kind {
	case plan.TTWindowPushdown, plan.VTBinarySearch:
		return en.execute(leaf, pq)
	case plan.BTreeIndexSeek:
		els, touched := en.execute(leaf, pq)
		sorted := append([]*element.Element(nil), els...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].ES < sorted[j].ES })
		return sorted, touched
	}
	els := storage.Elements(en.store)
	return els, len(els)
}
