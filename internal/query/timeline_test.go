package query

import (
	"math/rand"
	"testing"

	"repro/internal/chronon"
	"repro/internal/element"
	"repro/internal/interval"
	"repro/internal/surrogate"
)

var testES uint64

func evElem(vt int64) *element.Element {
	testES++
	return &element.Element{ES: surrogate.Surrogate(testES), OS: 1,
		TTStart: chronon.Chronon(testES), TTEnd: chronon.Forever,
		VT: element.EventAt(chronon.Chronon(vt))}
}

func ivElem(vs, ve int64) *element.Element {
	testES++
	return &element.Element{ES: surrogate.Surrogate(testES), OS: 1,
		TTStart: chronon.Chronon(testES), TTEnd: chronon.Forever,
		VT: element.SpanOf(chronon.Chronon(vs), chronon.Chronon(ve))}
}

func TestTimelineBasic(t *testing.T) {
	es := []*element.Element{ivElem(0, 10), ivElem(5, 15), ivElem(20, 25)}
	steps := Timeline(es)
	want := []TimelineStep{
		{Span: interval.Of(0, 5), Count: 1},
		{Span: interval.Of(5, 10), Count: 2},
		{Span: interval.Of(10, 15), Count: 1},
		{Span: interval.Of(20, 25), Count: 1},
	}
	if len(steps) != len(want) {
		t.Fatalf("steps = %v", steps)
	}
	for i, w := range want {
		if steps[i] != w {
			t.Errorf("step %d = %v, want %v", i, steps[i], w)
		}
	}
}

func TestTimelineEvents(t *testing.T) {
	es := []*element.Element{evElem(5), evElem(5), evElem(6)}
	steps := Timeline(es)
	want := []TimelineStep{
		{Span: interval.Of(5, 6), Count: 2},
		{Span: interval.Of(6, 7), Count: 1},
	}
	if len(steps) != len(want) {
		t.Fatalf("steps = %v", steps)
	}
	for i, w := range want {
		if steps[i] != w {
			t.Errorf("step %d = %v, want %v", i, steps[i], w)
		}
	}
}

func TestTimelineEmpty(t *testing.T) {
	if got := Timeline(nil); got != nil {
		t.Errorf("Timeline(nil) = %v", got)
	}
}

func TestTimelineAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var es []*element.Element
	for i := 0; i < 60; i++ {
		s := int64(rng.Intn(80))
		es = append(es, ivElem(s, s+1+int64(rng.Intn(20))))
	}
	steps := Timeline(es)
	// Steps must tile: positive counts, non-overlapping, increasing.
	prevEnd := chronon.MinChronon
	for _, st := range steps {
		if st.Count <= 0 {
			t.Fatalf("non-positive step %v", st)
		}
		if st.Span.Start < prevEnd {
			t.Fatalf("overlapping steps at %v", st)
		}
		prevEnd = st.Span.End
	}
	// Point-check against brute force.
	for c := int64(-2); c < 110; c++ {
		want := 0
		for _, e := range es {
			if e.ValidAt(chronon.Chronon(c)) {
				want++
			}
		}
		got := 0
		for _, st := range steps {
			if st.Span.Contains(chronon.Chronon(c)) {
				got = st.Count
				break
			}
		}
		if got != want {
			t.Fatalf("count at %d = %d, want %d", c, got, want)
		}
	}
}

func TestCoverageSet(t *testing.T) {
	es := []*element.Element{ivElem(0, 10), ivElem(5, 15), evElem(20)}
	cov := CoverageSet(es)
	want := interval.NewSet(interval.Of(0, 15), interval.Of(20, 21))
	if !cov.Equal(want) {
		t.Errorf("CoverageSet = %v, want %v", cov, want)
	}
	if !CoverageSet(nil).Empty() {
		t.Error("empty coverage not empty")
	}
}

func TestMaxConcurrent(t *testing.T) {
	es := []*element.Element{ivElem(0, 10), ivElem(5, 15), ivElem(7, 9)}
	n, span := MaxConcurrent(es)
	if n != 3 {
		t.Fatalf("max = %d", n)
	}
	if span != interval.Of(7, 9) {
		t.Errorf("span = %v", span)
	}
	if n, _ := MaxConcurrent(nil); n != 0 {
		t.Errorf("empty max = %d", n)
	}
}

func TestTemporalJoinBasic(t *testing.T) {
	// Shifts vs incidents: which incident happened during whose shift?
	shifts := []*element.Element{ivElem(0, 100), ivElem(100, 200)}
	incidents := []*element.Element{evElem(50), evElem(150), evElem(250)}
	pairs := TemporalJoin(shifts, incidents, nil)
	if len(pairs) != 2 {
		t.Fatalf("pairs = %d", len(pairs))
	}
	for _, p := range pairs {
		span := validSpan(p.Left)
		c, _ := p.Right.VT.Event()
		if !span.Contains(c) {
			t.Errorf("joined pair does not overlap: %v vs %v", span, c)
		}
		if p.Overlap.Duration() != 1 {
			t.Errorf("overlap = %v", p.Overlap)
		}
	}
}

func TestTemporalJoinWithPredicate(t *testing.T) {
	a := ivElem(0, 100)
	a.OS = 7
	b := ivElem(50, 150)
	b.OS = 7
	c := ivElem(50, 150)
	c.OS = 8
	sameObject := func(l, r *element.Element) bool { return l.OS == r.OS }
	pairs := TemporalJoin([]*element.Element{a}, []*element.Element{b, c}, sameObject)
	if len(pairs) != 1 || pairs[0].Right != b {
		t.Fatalf("pairs = %v", pairs)
	}
	if pairs[0].Overlap != interval.Of(50, 100) {
		t.Errorf("overlap = %v", pairs[0].Overlap)
	}
}

func TestTemporalJoinAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	mk := func(n int) []*element.Element {
		var out []*element.Element
		for i := 0; i < n; i++ {
			s := int64(rng.Intn(100))
			out = append(out, ivElem(s, s+1+int64(rng.Intn(30))))
		}
		return out
	}
	left, right := mk(40), mk(40)
	got := TemporalJoin(left, right, nil)
	want := 0
	for _, l := range left {
		for _, r := range right {
			if _, ok := validSpan(l).Intersect(validSpan(r)); ok {
				want++
			}
		}
	}
	if len(got) != want {
		t.Fatalf("join produced %d pairs, brute force %d", len(got), want)
	}
	seen := make(map[[2]*element.Element]bool)
	for _, p := range got {
		key := [2]*element.Element{p.Left, p.Right}
		if seen[key] {
			t.Fatalf("duplicate pair %v", key)
		}
		seen[key] = true
		ov, ok := validSpan(p.Left).Intersect(validSpan(p.Right))
		if !ok || ov != p.Overlap {
			t.Fatalf("wrong overlap: %v vs %v", ov, p.Overlap)
		}
	}
}

func TestTemporalJoinEmptySides(t *testing.T) {
	if got := TemporalJoin(nil, []*element.Element{evElem(1)}, nil); len(got) != 0 {
		t.Error("join with empty left produced pairs")
	}
	if got := TemporalJoin([]*element.Element{evElem(1)}, nil, nil); len(got) != 0 {
		t.Error("join with empty right produced pairs")
	}
}

func TestTimelineCoalescesContiguous(t *testing.T) {
	// Contiguous intervals with equal counts collapse into one step.
	es := []*element.Element{ivElem(0, 10), ivElem(10, 20), ivElem(20, 30)}
	steps := Timeline(es)
	if len(steps) != 1 || steps[0].Span != interval.Of(0, 30) || steps[0].Count != 1 {
		t.Fatalf("steps = %v", steps)
	}
	// A count change still splits.
	es = append(es, ivElem(10, 20))
	steps = Timeline(es)
	want := []TimelineStep{
		{Span: interval.Of(0, 10), Count: 1},
		{Span: interval.Of(10, 20), Count: 2},
		{Span: interval.Of(20, 30), Count: 1},
	}
	if len(steps) != len(want) {
		t.Fatalf("steps = %v", steps)
	}
	for i, w := range want {
		if steps[i] != w {
			t.Errorf("step %d = %v, want %v", i, steps[i], w)
		}
	}
}
