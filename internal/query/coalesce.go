package query

import (
	"sort"
	"strings"

	"repro/internal/element"
	"repro/internal/interval"
)

// CoalescedFact is the result of temporal coalescing: one group of
// value-equivalent elements with the canonical set of chronons during
// which the fact holds.
type CoalescedFact struct {
	// Representative is the first element (in valid-time order) of the
	// group; its attribute values represent the whole group.
	Representative *element.Element
	// When is the union of the group's valid times, as a canonical
	// interval set (adjacent and overlapping spans merged).
	When interval.Set
}

// Coalesce performs temporal coalescing — the canonical-form operation of
// temporal algebras: elements whose values are equivalent under the key
// function are merged, and their valid times are unioned into maximal
// intervals. The paper's conceptual model stores one element per stored
// fact; coalescing recovers the value-oriented view ([Gad88]'s homogeneous
// tuples, whose attributes carry finite unions of intervals).
//
// key maps an element to its grouping key; a nil key groups by the
// rendering of the time-invariant and time-varying values. The result is
// ordered by each group's earliest valid chronon; groups starting together
// order by their hull's end, then by representative element surrogate, so
// the output is a pure function of the element set — the same facts in any
// input order coalesce to the same sequence.
func Coalesce(es []*element.Element, key func(*element.Element) string) []CoalescedFact {
	if key == nil {
		key = defaultKey
	}
	type group struct {
		rep *element.Element
		ivs []interval.Interval
	}
	groups := make(map[string]*group)
	var order []string
	for _, e := range es {
		k := key(e)
		g, ok := groups[k]
		if !ok {
			g = &group{rep: e}
			groups[k] = g
			order = append(order, k)
		}
		g.ivs = append(g.ivs, validSpan(e))
		if s, rs := validSpan(e), validSpan(g.rep); s.Start < rs.Start ||
			(s.Start == rs.Start && e.ES < g.rep.ES) {
			g.rep = e
		}
	}
	out := make([]CoalescedFact, 0, len(groups))
	for _, k := range order {
		g := groups[k]
		out = append(out, CoalescedFact{
			Representative: g.rep,
			When:           interval.NewSet(g.ivs...),
		})
	}
	sort.SliceStable(out, func(i, j int) bool {
		hi, hj := out[i].When.Hull(), out[j].When.Hull()
		if hi.Start != hj.Start {
			return hi.Start < hj.Start
		}
		if hi.End != hj.End {
			return hi.End < hj.End
		}
		return out[i].Representative.ES < out[j].Representative.ES
	})
	return out
}

// defaultKey renders an element's attribute values (not its time-stamps or
// surrogates) as a grouping key.
func defaultKey(e *element.Element) string {
	var b strings.Builder
	for _, v := range e.Invariant {
		b.WriteString(v.String())
		b.WriteByte('\x1f')
	}
	b.WriteByte('\x1e')
	for _, v := range e.Varying {
		b.WriteString(v.String())
		b.WriteByte('\x1f')
	}
	return b.String()
}
