package query

import (
	"sort"
	"strings"

	"repro/internal/element"
	"repro/internal/interval"
)

// CoalescedFact is the result of temporal coalescing: one group of
// value-equivalent elements with the canonical set of chronons during
// which the fact holds.
type CoalescedFact struct {
	// Representative is the first element (in valid-time order) of the
	// group; its attribute values represent the whole group.
	Representative *element.Element
	// When is the union of the group's valid times, as a canonical
	// interval set (adjacent and overlapping spans merged).
	When interval.Set
}

// Coalesce performs temporal coalescing — the canonical-form operation of
// temporal algebras: elements whose values are equivalent under the key
// function are merged, and their valid times are unioned into maximal
// intervals. The paper's conceptual model stores one element per stored
// fact; coalescing recovers the value-oriented view ([Gad88]'s homogeneous
// tuples, whose attributes carry finite unions of intervals).
//
// key maps an element to its grouping key; a nil key groups by the
// rendering of the time-invariant and time-varying values. The result is
// ordered by each group's earliest valid chronon.
func Coalesce(es []*element.Element, key func(*element.Element) string) []CoalescedFact {
	if key == nil {
		key = defaultKey
	}
	type group struct {
		rep *element.Element
		ivs []interval.Interval
	}
	groups := make(map[string]*group)
	var order []string
	for _, e := range es {
		k := key(e)
		g, ok := groups[k]
		if !ok {
			g = &group{rep: e}
			groups[k] = g
			order = append(order, k)
		}
		g.ivs = append(g.ivs, validSpan(e))
		if validSpan(e).Start < validSpan(g.rep).Start {
			g.rep = e
		}
	}
	out := make([]CoalescedFact, 0, len(groups))
	for _, k := range order {
		g := groups[k]
		out = append(out, CoalescedFact{
			Representative: g.rep,
			When:           interval.NewSet(g.ivs...),
		})
	}
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].When.Hull().Start < out[j].When.Hull().Start
	})
	return out
}

// defaultKey renders an element's attribute values (not its time-stamps or
// surrogates) as a grouping key.
func defaultKey(e *element.Element) string {
	var b strings.Builder
	for _, v := range e.Invariant {
		b.WriteString(v.String())
		b.WriteByte('\x1f')
	}
	b.WriteByte('\x1e')
	for _, v := range e.Varying {
		b.WriteString(v.String())
		b.WriteByte('\x1f')
	}
	return b.String()
}
