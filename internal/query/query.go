// Package query executes the three kinds of queries the paper requires of
// temporal relations (§1) — current, historical (time-slice), and rollback
// — over a physical store chosen by the storage advisor, and reports which
// strategy each query used and how much data it touched. Strategy selection
// is delegated to the shared planner (internal/plan): the engine describes
// its store's capabilities as a plan.Access, the planner picks the cheapest
// sound access path, and the engine executes the resulting typed plan tree.
// The contrast between plans on specialized vs. general organizations is
// the measurable form of the paper's claim that specializations enable
// better "query processing strategies".
package query

import (
	"fmt"
	"sync/atomic"

	"repro/internal/chronon"
	"repro/internal/core"
	"repro/internal/element"
	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/storage"
)

// Result is a query answer together with its plan and cost.
type Result struct {
	Elements []*element.Element
	// Plan names the strategy used, e.g. "binary search (vt-ordered log)".
	// It is the one-line rendering of Node and is golden-pinned by tests.
	Plan string
	// Node is the typed plan tree the engine executed.
	Node *plan.Node
	// Touched is the number of stored elements examined.
	Touched int
}

// Engine executes temporal queries over a store. Queries are safe to run
// concurrently as long as the store is not being mutated (the catalog layer
// serializes writers against readers); the lifetime counters are atomic so
// concurrent readers never race.
type Engine struct {
	store   storage.Store
	classes []core.Class
	queries atomic.Int64
	touched atomic.Int64
	plans   plan.Recorder

	// Bounded-specialization pushdown: when the relation is declared with
	// a two-sided fixed bound lo ≤ vt − tt ≤ hi, a valid-time predicate
	// converts to the transaction-time window [vt − hi, vt − lo], which the
	// tt-ordered log binary-searches. Set via UseVTOffsetBounds.
	boundLo, boundHi int64
	hasBounds        bool
}

// UseVTOffsetBounds enables bounded-specialization pushdown with the given
// fixed offsets (lo ≤ vt − tt ≤ hi), typically obtained from a declared
// EventSpec's OffsetBounds. It has effect only over a tt-ordered store.
// Inverted bounds are a declaration bug and are rejected with an error.
func (en *Engine) UseVTOffsetBounds(lo, hi int64) error {
	if lo > hi {
		return fmt.Errorf("query: inverted offset bounds [%d, %d]", lo, hi)
	}
	en.boundLo, en.boundHi, en.hasBounds = lo, hi, true
	return nil
}

// Stats accumulates engine-lifetime counters.
type Stats struct {
	Queries int
	Touched int
}

// New builds an engine over a store built for the given declared classes.
func New(store storage.Store, classes []core.Class) *Engine {
	return &Engine{store: store, classes: classes}
}

// ForRelation builds an engine for a relation: it asks the advisor for the
// right store given the declared classes, loads the relation's versions
// into it, and returns the engine with the advice.
func ForRelation(r *relation.Relation, classes []core.Class) (*Engine, storage.Advice, error) {
	advice := storage.Advise(classes, r.Schema().ValidTime)
	st := advice.New()
	for _, e := range r.Versions() {
		if err := st.Insert(e); err != nil {
			return nil, advice, fmt.Errorf("query: loading %s store: %w", advice.Store, err)
		}
	}
	return New(st, classes), advice, nil
}

// Store exposes the underlying store.
func (en *Engine) Store() storage.Store { return en.store }

// Snapshot returns an engine over an immutable snapshot of the store,
// carrying the same declared classes and pushdown bounds. The snapshot
// engine is safe for fully concurrent queries (its store never mutates
// and its counters are atomic); the catalog publishes one per mutation
// epoch so readers never block behind writers.
func (en *Engine) Snapshot() *Engine {
	return &Engine{
		store:     en.store.Snapshot(),
		classes:   en.classes,
		boundLo:   en.boundLo,
		boundHi:   en.boundHi,
		hasBounds: en.hasBounds,
	}
}

// Stats reports engine-lifetime counters.
func (en *Engine) Stats() Stats {
	return Stats{Queries: int(en.queries.Load()), Touched: int(en.touched.Load())}
}

// PlanStats reports engine-lifetime touched counts per plan kind.
func (en *Engine) PlanStats() map[string]plan.KindStats { return en.plans.Snapshot() }

// Access describes the store's capabilities to the planner.
func (en *Engine) Access() plan.Access {
	a := plan.Access{N: en.store.Len()}
	switch en.store.Kind() {
	case storage.TTOrdered:
		a.Org = plan.OrgTTLog
	case storage.VTOrdered:
		a.Org = plan.OrgVTLog
	default:
		a.Org = plan.OrgHeap
	}
	if _, ok := en.store.(*storage.IndexedEventStore); ok {
		a.VTIndex = true
	}
	if en.hasBounds {
		a.HasOffsetBounds, a.OffsetLo, a.OffsetHi = true, en.boundLo, en.boundHi
	}
	a.Sealed, a.Runs = storage.SealedInfo(en.store)
	if a.Org == plan.OrgVTLog && a.N > 0 {
		// The vt-ordered log's first and last elements bound its observed
		// valid-time extent (starts are sorted; the last end is an
		// estimate), which the aggregate costing uses for clamp coverage.
		els := storage.Elements(en.store)
		first, last := els[0], els[len(els)-1]
		a.VTMin = int64(first.VT.Start())
		if c, ok := last.VT.Event(); ok {
			a.VTMax = int64(c) + 1
		} else {
			a.VTMax = int64(last.VT.End())
		}
		a.HasVTExtent = a.VTMax > a.VTMin
	}
	return a
}

// Plan builds, without executing, the plan the engine would run for q —
// the EXPLAIN entry point.
func (en *Engine) Plan(q plan.Query) *plan.Node { return plan.Build(en.Access(), q) }

func (en *Engine) record(n *plan.Node, touched int) {
	en.queries.Add(1)
	en.touched.Add(int64(touched))
	en.plans.Record(n.Leaf().Kind, touched)
}

// run plans the query, executes the chosen access path, and accounts it.
func (en *Engine) run(q plan.Query) Result {
	node := plan.Build(en.Access(), q)
	els, touched := en.execute(node, q)
	en.record(node, touched)
	return Result{Elements: els, Plan: node.String(), Node: node, Touched: touched}
}

// execute runs the plan's access-path leaf against the store. The leaf's
// result already satisfies the query's temporal predicates (the stores
// filter as they read), so decorators need no separate pass here.
func (en *Engine) execute(node *plan.Node, q plan.Query) ([]*element.Element, int) {
	leaf := node.Leaf()
	switch leaf.Kind {
	case plan.TTWindowPushdown:
		tlog := en.store.(*storage.TTLogStore)
		cands, touched := tlog.TTWindow(chronon.Chronon(leaf.WinLo), chronon.Chronon(leaf.WinHi))
		var out []*element.Element
		for _, e := range cands {
			if e.Current() && validInRange(e, chronon.Chronon(q.VTLo), chronon.Chronon(q.VTHi)) {
				out = append(out, e)
			}
		}
		return out, touched
	case plan.TTBinarySearch:
		return en.store.Rollback(chronon.Chronon(q.TT))
	case plan.VTBinarySearch, plan.BTreeIndexSeek:
		return en.store.VTRange(chronon.Chronon(q.VTLo), chronon.Chronon(q.VTHi))
	}
	// Full scan, shaped by the query kind.
	switch q.Kind {
	case plan.QCurrent:
		var out []*element.Element
		touched := en.store.Scan(func(e *element.Element) bool {
			if e.Current() {
				out = append(out, e)
			}
			return true
		})
		return out, touched
	case plan.QRollback:
		return en.store.Rollback(chronon.Chronon(q.TT))
	default:
		return en.store.VTRange(chronon.Chronon(q.VTLo), chronon.Chronon(q.VTHi))
	}
}

// Timeslice answers the historical query: current elements valid at vt.
func (en *Engine) Timeslice(vt chronon.Chronon) Result {
	return en.run(plan.Query{Kind: plan.QTimeslice, VTLo: int64(vt), VTHi: int64(vt) + 1})
}

// VTRange answers a historical range query: current elements valid during
// any part of [lo, hi).
func (en *Engine) VTRange(lo, hi chronon.Chronon) Result {
	return en.run(plan.Query{Kind: plan.QVTRange, VTLo: int64(lo), VTHi: int64(hi)})
}

// validInRange reports whether the element's valid time intersects
// [lo, hi).
func validInRange(e *element.Element, lo, hi chronon.Chronon) bool {
	if c, ok := e.VT.Event(); ok {
		return lo <= c && c < hi
	}
	iv, _ := e.VT.Interval()
	return iv.Start < hi && lo < iv.End
}

// Rollback answers the rollback query: elements present at transaction
// time tt.
func (en *Engine) Rollback(tt chronon.Chronon) Result {
	return en.run(plan.Query{Kind: plan.QRollback, TT: int64(tt)})
}

// Current answers the conventional query: the elements of the current
// state. Every organization answers it with a scan of live elements.
func (en *Engine) Current() Result {
	return en.run(plan.Query{Kind: plan.QCurrent})
}
