// Package query executes the three kinds of queries the paper requires of
// temporal relations (§1) — current, historical (time-slice), and rollback
// — over a physical store chosen by the storage advisor, and reports which
// strategy each query used and how much data it touched. The contrast
// between plans on specialized vs. general organizations is the measurable
// form of the paper's claim that specializations enable better "query
// processing strategies".
package query

import (
	"fmt"
	"sync/atomic"

	"repro/internal/chronon"
	"repro/internal/core"
	"repro/internal/element"
	"repro/internal/relation"
	"repro/internal/storage"
)

// Result is a query answer together with its plan and cost.
type Result struct {
	Elements []*element.Element
	// Plan names the strategy used, e.g. "binary search (vt-ordered log)".
	Plan string
	// Touched is the number of stored elements examined.
	Touched int
}

// Engine executes temporal queries over a store. Queries are safe to run
// concurrently as long as the store is not being mutated (the catalog layer
// serializes writers against readers); the lifetime counters are atomic so
// concurrent readers never race.
type Engine struct {
	store   storage.Store
	classes []core.Class
	queries atomic.Int64
	touched atomic.Int64

	// Bounded-specialization pushdown: when the relation is declared with
	// a two-sided fixed bound lo ≤ vt − tt ≤ hi, a valid-time predicate
	// converts to the transaction-time window [vt − hi, vt − lo], which the
	// tt-ordered log binary-searches. Set via UseVTOffsetBounds.
	boundLo, boundHi int64
	hasBounds        bool
}

// UseVTOffsetBounds enables bounded-specialization pushdown with the given
// fixed offsets (lo ≤ vt − tt ≤ hi), typically obtained from a declared
// EventSpec's OffsetBounds. It has effect only over a tt-ordered store.
func (en *Engine) UseVTOffsetBounds(lo, hi int64) {
	if lo > hi {
		panic("query: inverted offset bounds")
	}
	en.boundLo, en.boundHi, en.hasBounds = lo, hi, true
}

// Stats accumulates engine-lifetime counters.
type Stats struct {
	Queries int
	Touched int
}

// New builds an engine over a store built for the given declared classes.
func New(store storage.Store, classes []core.Class) *Engine {
	return &Engine{store: store, classes: classes}
}

// ForRelation builds an engine for a relation: it asks the advisor for the
// right store given the declared classes, loads the relation's versions
// into it, and returns the engine with the advice.
func ForRelation(r *relation.Relation, classes []core.Class) (*Engine, storage.Advice, error) {
	advice := storage.Advise(classes, r.Schema().ValidTime)
	st := advice.New()
	for _, e := range r.Versions() {
		if err := st.Insert(e); err != nil {
			return nil, advice, fmt.Errorf("query: loading %s store: %w", advice.Store, err)
		}
	}
	return New(st, classes), advice, nil
}

// Store exposes the underlying store.
func (en *Engine) Store() storage.Store { return en.store }

// Stats reports engine-lifetime counters.
func (en *Engine) Stats() Stats {
	return Stats{Queries: int(en.queries.Load()), Touched: int(en.touched.Load())}
}

func (en *Engine) record(touched int) {
	en.queries.Add(1)
	en.touched.Add(int64(touched))
}

func (en *Engine) planName(indexed bool) string {
	if indexed {
		return fmt.Sprintf("binary search (%v)", en.store.Kind())
	}
	return fmt.Sprintf("full scan (%v)", en.store.Kind())
}

// Timeslice answers the historical query: current elements valid at vt.
func (en *Engine) Timeslice(vt chronon.Chronon) Result {
	if res, ok := en.boundedWindow(vt, vt.Add(1)); ok {
		return res
	}
	es, touched := en.store.Timeslice(vt)
	en.record(touched)
	return Result{Elements: es, Plan: en.planName(en.store.Kind() == storage.VTOrdered), Touched: touched}
}

// VTRange answers a historical range query: current elements valid during
// any part of [lo, hi).
func (en *Engine) VTRange(lo, hi chronon.Chronon) Result {
	if res, ok := en.boundedWindow(lo, hi); ok {
		return res
	}
	es, touched := en.store.VTRange(lo, hi)
	en.record(touched)
	return Result{Elements: es, Plan: en.planName(en.store.Kind() == storage.VTOrdered), Touched: touched}
}

// boundedWindow answers a valid-time query through the bounded-
// specialization pushdown when it applies: event elements satisfying
// lo ≤ vt − tt ≤ hi and valid in [vlo, vhi) were necessarily inserted with
// tt ∈ [vlo − hi, vhi − 1 − lo], a window the tt log binary-searches.
func (en *Engine) boundedWindow(vlo, vhi chronon.Chronon) (Result, bool) {
	tlog, ok := en.store.(*storage.TTLogStore)
	if !ok || !en.hasBounds {
		return Result{}, false
	}
	cands, touched := tlog.TTWindow(vlo.Add(-en.boundHi), vhi.Add(-1-en.boundLo))
	var out []*element.Element
	for _, e := range cands {
		if e.Current() && validInRange(e, vlo, vhi) {
			out = append(out, e)
		}
	}
	en.record(touched)
	return Result{
		Elements: out,
		Plan:     "tt-window binary search (bounded specialization)",
		Touched:  touched,
	}, true
}

// validInRange reports whether the element's valid time intersects
// [lo, hi).
func validInRange(e *element.Element, lo, hi chronon.Chronon) bool {
	if c, ok := e.VT.Event(); ok {
		return lo <= c && c < hi
	}
	iv, _ := e.VT.Interval()
	return iv.Start < hi && lo < iv.End
}

// Rollback answers the rollback query: elements present at transaction
// time tt.
func (en *Engine) Rollback(tt chronon.Chronon) Result {
	es, touched := en.store.Rollback(tt)
	en.record(touched)
	return Result{Elements: es, Plan: en.planName(en.store.Kind() != storage.Heap), Touched: touched}
}

// Current answers the conventional query: the elements of the current
// state. Every organization answers it with a scan of live elements.
func (en *Engine) Current() Result {
	var out []*element.Element
	touched := en.store.Scan(func(e *element.Element) bool {
		if e.Current() {
			out = append(out, e)
		}
		return true
	})
	en.record(touched)
	return Result{Elements: out, Plan: en.planName(false), Touched: touched}
}
