package query

import (
	"sort"

	"repro/internal/chronon"
	"repro/internal/element"
	"repro/internal/interval"
)

// TimelineStep is one piece of a step function over valid time: Count
// facts are valid throughout Span.
type TimelineStep struct {
	Span  interval.Interval
	Count int
}

// Timeline computes the valid-time profile of an extension: a step
// function giving, for every chronon, how many of the supplied elements
// are valid then — the classic temporal aggregation (COUNT over valid
// time). Events contribute the single chronon [vt, vt+1); intervals their
// span. Zero-count gaps between steps are omitted.
//
// The sweep is O(n log n) in the number of elements and independent of the
// time line's extent.
func Timeline(es []*element.Element) []TimelineStep {
	type edge struct {
		at    chronon.Chronon
		delta int
	}
	edges := make([]edge, 0, 2*len(es))
	for _, e := range es {
		var lo, hi chronon.Chronon
		if c, ok := e.VT.Event(); ok {
			lo, hi = c, c.Add(1)
		} else {
			iv, _ := e.VT.Interval()
			lo, hi = iv.Start, iv.End
		}
		edges = append(edges, edge{at: lo, delta: 1}, edge{at: hi, delta: -1})
	}
	if len(edges) == 0 {
		return nil
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].at < edges[j].at })

	var out []TimelineStep
	count := 0
	prev := edges[0].at
	i := 0
	for i < len(edges) {
		at := edges[i].at
		if count > 0 && at > prev {
			// Coalesce with the previous step when the count is unchanged
			// across an edge position that nets to zero (e.g. contiguous
			// intervals meeting).
			if n := len(out); n > 0 && out[n-1].Count == count && out[n-1].Span.End == prev {
				out[n-1].Span.End = at
			} else {
				out = append(out, TimelineStep{Span: interval.Interval{Start: prev, End: at}, Count: count})
			}
		}
		for i < len(edges) && edges[i].at == at {
			count += edges[i].delta
			i++
		}
		prev = at
	}
	return out
}

// CoverageSet returns the set of chronons during which at least one of the
// elements is valid, as a canonical interval set (a temporal element in
// the [Gad88] sense).
func CoverageSet(es []*element.Element) interval.Set {
	ivs := make([]interval.Interval, 0, len(es))
	for _, e := range es {
		if c, ok := e.VT.Event(); ok {
			ivs = append(ivs, interval.Interval{Start: c, End: c.Add(1)})
		} else {
			iv, _ := e.VT.Interval()
			ivs = append(ivs, iv)
		}
	}
	return interval.NewSet(ivs...)
}

// MaxConcurrent reports the largest step count in the timeline (0 for an
// empty extension) and one span where it occurs.
func MaxConcurrent(es []*element.Element) (int, interval.Interval) {
	best := 0
	var span interval.Interval
	for _, st := range Timeline(es) {
		if st.Count > best {
			best = st.Count
			span = st.Span
		}
	}
	return best, span
}
