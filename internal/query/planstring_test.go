package query

import (
	"testing"

	"repro/internal/chronon"
	"repro/internal/core"
	"repro/internal/element"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/surrogate"
)

// planFixture loads n event elements (vt = tt, increasing) into the store,
// an order every organization accepts.
func planFixture(t *testing.T, st storage.Store, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		tt := chronon.Chronon(int64(i+1) * 10)
		e := &element.Element{
			ES: surrogate.Surrogate(i + 1), OS: 1,
			TTStart: tt, TTEnd: chronon.Forever,
			VT: element.EventAt(tt),
		}
		if err := st.Insert(e); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPlanStringStability pins the one-line plan rendering for every
// (store kind, query kind, pushdown) combination. These strings are the
// engine's public vocabulary — the wire carries them, the benchmarks label
// series with them — so any planner change that alters one is a break, not
// a refactor.
func TestPlanStringStability(t *testing.T) {
	cases := []struct {
		name     string
		store    func() storage.Store
		bounds   bool
		want     map[string]string // query kind -> plan string
		wantLeaf map[string]plan.NodeKind
	}{
		{
			name:  "heap",
			store: func() storage.Store { return storage.NewHeap() },
			want: map[string]string{
				"current":   "full scan (heap)",
				"timeslice": "full scan (heap)",
				"vtrange":   "full scan (heap)",
				"rollback":  "full scan (heap)",
			},
			wantLeaf: map[string]plan.NodeKind{
				"current": plan.FullScan, "timeslice": plan.FullScan,
				"vtrange": plan.FullScan, "rollback": plan.FullScan,
			},
		},
		{
			name:  "ttlog",
			store: func() storage.Store { return storage.NewTTLog() },
			want: map[string]string{
				"current":   "full scan (tt-ordered log)",
				"timeslice": "full scan (tt-ordered log)",
				"vtrange":   "full scan (tt-ordered log)",
				"rollback":  "binary search (tt-ordered log)",
			},
			wantLeaf: map[string]plan.NodeKind{
				"current": plan.FullScan, "timeslice": plan.FullScan,
				"vtrange": plan.FullScan, "rollback": plan.TTBinarySearch,
			},
		},
		{
			name:   "ttlog+pushdown",
			store:  func() storage.Store { return storage.NewTTLog() },
			bounds: true,
			want: map[string]string{
				"current":   "full scan (tt-ordered log)",
				"timeslice": "tt-window binary search (bounded specialization)",
				"vtrange":   "tt-window binary search (bounded specialization)",
				"rollback":  "binary search (tt-ordered log)",
			},
			wantLeaf: map[string]plan.NodeKind{
				"current": plan.FullScan, "timeslice": plan.TTWindowPushdown,
				"vtrange": plan.TTWindowPushdown, "rollback": plan.TTBinarySearch,
			},
		},
		{
			name:  "vtlog",
			store: func() storage.Store { return storage.NewVTLog() },
			want: map[string]string{
				"current":   "full scan (vt-ordered log)",
				"timeslice": "binary search (vt-ordered log)",
				"vtrange":   "binary search (vt-ordered log)",
				"rollback":  "binary search (vt-ordered log)",
			},
			wantLeaf: map[string]plan.NodeKind{
				"current": plan.FullScan, "timeslice": plan.VTBinarySearch,
				"vtrange": plan.VTBinarySearch, "rollback": plan.TTBinarySearch,
			},
		},
		{
			name:  "indexed-heap",
			store: func() storage.Store { return storage.NewIndexedEvent() },
			want: map[string]string{
				"current":   "full scan (heap)",
				"timeslice": "b-tree index seek (vt index)",
				"vtrange":   "b-tree index seek (vt index)",
				"rollback":  "full scan (heap)",
			},
			wantLeaf: map[string]plan.NodeKind{
				"current": plan.FullScan, "timeslice": plan.BTreeIndexSeek,
				"vtrange": plan.BTreeIndexSeek, "rollback": plan.FullScan,
			},
		},
	}
	// Plans must be stable across sizes: an empty store, a store smaller
	// than a binary search's probe cost, and a populated one must all pick
	// the same (specialized) strategy, because the declaration — not the
	// extension — licenses it.
	for _, n := range []int{0, 2, 64} {
		for _, tc := range cases {
			st := tc.store()
			planFixture(t, st, n)
			en := New(st, nil)
			if tc.bounds {
				if err := en.UseVTOffsetBounds(-10, 0); err != nil {
					t.Fatal(err)
				}
			}
			run := map[string]func() Result{
				"current":   en.Current,
				"timeslice": func() Result { return en.Timeslice(100) },
				"vtrange":   func() Result { return en.VTRange(100, 200) },
				"rollback":  func() Result { return en.Rollback(100) },
			}
			for kind, want := range tc.want {
				res := run[kind]()
				if res.Plan != want {
					t.Errorf("n=%d %s/%s: plan = %q, want %q", n, tc.name, kind, res.Plan, want)
				}
				if res.Node == nil {
					t.Fatalf("n=%d %s/%s: nil plan node", n, tc.name, kind)
				}
				if got := res.Node.Leaf().Kind; got != tc.wantLeaf[kind] {
					t.Errorf("n=%d %s/%s: leaf = %v, want %v", n, tc.name, kind, got, tc.wantLeaf[kind])
				}
				if res.Node.String() != res.Plan {
					t.Errorf("n=%d %s/%s: Node.String() = %q diverges from Plan %q",
						n, tc.name, kind, res.Node.String(), res.Plan)
				}
			}
		}
	}
}

// TestPlanAgreesWithAdvice closes the loop the refactor promises: for every
// declared specialization set, the store the advisor picks and the plan the
// engine then runs must tell one consistent story — the engine of an
// advised vt-ordered store binary-searches, the bounded tt-ordered store
// (once armed) pushes valid-time predicates down, and the general store
// scans.
func TestPlanAgreesWithAdvice(t *testing.T) {
	cases := []struct {
		name      string
		classes   []core.Class
		armBounds bool
		wantStore storage.Kind
		wantLeaf  plan.NodeKind // timeslice leaf
	}{
		{"general", nil, false, storage.TTOrdered, plan.FullScan},
		{"degenerate", []core.Class{core.Degenerate}, false, storage.VTOrdered, plan.VTBinarySearch},
		{"sequential", []core.Class{core.GloballySequentialEvents}, false, storage.VTOrdered, plan.VTBinarySearch},
		{"non-decreasing", []core.Class{core.GloballyNonDecreasingEvents}, false, storage.VTOrdered, plan.VTBinarySearch},
		{"strongly-bounded", []core.Class{core.StronglyBounded}, true, storage.TTOrdered, plan.TTWindowPushdown},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			advice := storage.Advise(tc.classes, element.EventStamp)
			if advice.Store != tc.wantStore {
				t.Fatalf("advised store = %v, want %v", advice.Store, tc.wantStore)
			}
			st := advice.New()
			planFixture(t, st, 32)
			en := New(st, tc.classes)
			if tc.armBounds {
				if err := en.UseVTOffsetBounds(-10, 10); err != nil {
					t.Fatal(err)
				}
			}
			res := en.Timeslice(100)
			if got := res.Node.Leaf().Kind; got != tc.wantLeaf {
				t.Errorf("timeslice leaf = %v, want %v (plan %q)", got, tc.wantLeaf, res.Plan)
			}
		})
	}
}
