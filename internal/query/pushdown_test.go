package query

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/chronon"
	"repro/internal/core"
	"repro/internal/element"
	"repro/internal/storage"
	"repro/internal/surrogate"
)

// boundedFixture builds n event elements with vt − tt uniformly inside
// [lo, hi], plus a heap for ground truth.
func boundedFixture(t *testing.T, n int, lo, hi int64, seed int64) (*storage.TTLogStore, *storage.HeapStore) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tlog := storage.NewTTLog()
	heap := storage.NewHeap()
	for i := 0; i < n; i++ {
		tt := chronon.Chronon(int64(i+1) * 10)
		off := lo + rng.Int63n(hi-lo+1)
		e := &element.Element{
			ES: surrogate.Surrogate(i + 1), OS: 1,
			TTStart: tt, TTEnd: chronon.Forever,
			VT: element.EventAt(tt.Add(off)),
		}
		if err := tlog.Insert(e); err != nil {
			t.Fatal(err)
		}
		if err := heap.Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	return tlog, heap
}

func TestBoundedPushdownCorrect(t *testing.T) {
	const n = 5000
	lo, hi := int64(-300), int64(-30) // delayed strongly retroactively bounded
	tlog, heap := boundedFixture(t, n, lo, hi, 42)
	en := New(tlog, nil)
	en.UseVTOffsetBounds(lo, hi)

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		q := chronon.Chronon(rng.Int63n(int64(n)*10 + 1000))
		got := en.Timeslice(q)
		want, _ := heap.Timeslice(q)
		if !sameSet(got.Elements, want) {
			t.Fatalf("timeslice(%v): pushdown %d vs heap %d elements", q, len(got.Elements), len(want))
		}
		if !strings.Contains(got.Plan, "bounded specialization") {
			t.Fatalf("plan = %q", got.Plan)
		}
		if got.Touched > int(hi-lo)/10+3 {
			t.Fatalf("touched %d exceeds the window size", got.Touched)
		}
		// Range queries too.
		span := chronon.Chronon(rng.Int63n(500) + 1)
		gotR := en.VTRange(q, q+span)
		wantR, _ := heap.VTRange(q, q+span)
		if !sameSet(gotR.Elements, wantR) {
			t.Fatalf("range(%v, %v): pushdown %d vs heap %d", q, q+span, len(gotR.Elements), len(wantR))
		}
	}
}

func TestBoundedPushdownSeesDeletions(t *testing.T) {
	tlog, _ := boundedFixture(t, 100, -50, 0, 1)
	en := New(tlog, nil)
	en.UseVTOffsetBounds(-50, 0)
	var victim *element.Element
	tlog.Scan(func(e *element.Element) bool { victim = e; return false })
	vt := victim.VT.Start()
	if got := en.Timeslice(vt); len(got.Elements) == 0 {
		t.Fatal("element not found before deletion")
	}
	victim.TTEnd = victim.TTStart.Add(1)
	if got := en.Timeslice(vt); len(got.Elements) != 0 {
		found := false
		for _, e := range got.Elements {
			if e == victim {
				found = true
			}
		}
		if found {
			t.Fatal("deleted element visible through pushdown")
		}
	}
}

func TestBoundedPushdownOnlyOnTTLog(t *testing.T) {
	heap := storage.NewHeap()
	en := New(heap, nil)
	en.UseVTOffsetBounds(-10, 0)
	e := &element.Element{ES: 1, OS: 1, TTStart: 10, TTEnd: chronon.Forever, VT: element.EventAt(5)}
	if err := heap.Insert(e); err != nil {
		t.Fatal(err)
	}
	res := en.Timeslice(5)
	if strings.Contains(res.Plan, "bounded") {
		t.Errorf("pushdown used on a heap: %q", res.Plan)
	}
	if len(res.Elements) != 1 {
		t.Errorf("heap fallback lost the element")
	}
}

func TestUseVTOffsetBoundsValidation(t *testing.T) {
	en := New(storage.NewTTLog(), nil)
	err := en.UseVTOffsetBounds(5, -5)
	if err == nil {
		t.Fatal("inverted bounds accepted")
	}
	if !strings.Contains(err.Error(), "inverted offset bounds") {
		t.Errorf("error = %q, want it to name the inverted bounds", err)
	}
	// Inverted bounds must not arm the pushdown.
	if a := en.Access(); a.HasOffsetBounds {
		t.Error("inverted bounds armed the pushdown")
	}
	if err := en.UseVTOffsetBounds(-5, 5); err != nil {
		t.Fatalf("valid bounds refused: %v", err)
	}
	if a := en.Access(); !a.HasOffsetBounds || a.OffsetLo != -5 || a.OffsetHi != 5 {
		t.Errorf("Access() = %+v after valid bounds", en.Access())
	}
}

func sameSet(a, b []*element.Element) bool {
	if len(a) != len(b) {
		return false
	}
	seen := make(map[*element.Element]bool, len(a))
	for _, e := range a {
		seen[e] = true
	}
	for _, e := range b {
		if !seen[e] {
			return false
		}
	}
	return true
}

func TestCoreOffsetBounds(t *testing.T) {
	spec, err := core.DelayedStronglyRetroactivelyBoundedSpec(chronon.Seconds(30), chronon.Seconds(300))
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, ok := spec.OffsetBounds()
	if !ok || lo != -300 || hi != -30 {
		t.Errorf("OffsetBounds = %d, %d, %v", lo, hi, ok)
	}
	if _, _, ok := core.RetroactiveSpec().OffsetBounds(); ok {
		t.Error("one-sided spec reported bounds")
	}
	cal, err := core.StronglyBoundedSpec(chronon.Months(1), chronon.Months(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := cal.OffsetBounds(); ok {
		t.Error("calendric spec reported fixed bounds")
	}
	deg, err := core.DegenerateSpec(chronon.Minute)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, ok = deg.OffsetBounds()
	if !ok || lo != -59 || hi != 59 {
		t.Errorf("degenerate bounds = %d, %d, %v", lo, hi, ok)
	}
}
