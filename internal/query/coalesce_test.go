package query

import (
	"testing"

	"repro/internal/element"
	"repro/internal/interval"
)

func named(name string, vs, ve int64) *element.Element {
	e := ivElem(vs, ve)
	e.Varying = []element.Value{element.String_(name)}
	return e
}

func TestCoalesceMergesAdjacentAndOverlapping(t *testing.T) {
	es := []*element.Element{
		named("apollo", 0, 10),
		named("apollo", 10, 20), // adjacent: merge
		named("apollo", 15, 30), // overlapping: merge
		named("apollo", 50, 60), // gap: second span
		named("dune", 5, 25),    // different value: own group
	}
	facts := Coalesce(es, nil)
	if len(facts) != 2 {
		t.Fatalf("facts = %d", len(facts))
	}
	ap := facts[0]
	if v, _ := ap.Representative.Varying[0].Str(); v != "apollo" {
		t.Fatalf("first group = %q", v)
	}
	want := interval.NewSet(interval.Of(0, 30), interval.Of(50, 60))
	if !ap.When.Equal(want) {
		t.Errorf("apollo When = %v, want %v", ap.When, want)
	}
	du := facts[1]
	if !du.When.Equal(interval.NewSet(interval.Of(5, 25))) {
		t.Errorf("dune When = %v", du.When)
	}
}

func TestCoalesceCustomKey(t *testing.T) {
	a := named("x", 0, 10)
	a.OS = 1
	b := named("y", 10, 20)
	b.OS = 1
	c := named("x", 5, 15)
	c.OS = 2
	byObject := func(e *element.Element) string { return e.OS.String() }
	facts := Coalesce([]*element.Element{a, b, c}, byObject)
	if len(facts) != 2 {
		t.Fatalf("facts = %d", len(facts))
	}
	if !facts[0].When.Equal(interval.NewSet(interval.Of(0, 20))) {
		t.Errorf("object 1 When = %v", facts[0].When)
	}
}

func TestCoalesceEvents(t *testing.T) {
	es := []*element.Element{}
	for _, vt := range []int64{5, 6, 7, 20} {
		e := evElem(vt)
		e.Varying = []element.Value{element.String_("ping")}
		es = append(es, e)
	}
	facts := Coalesce(es, nil)
	if len(facts) != 1 {
		t.Fatalf("facts = %d", len(facts))
	}
	want := interval.NewSet(interval.Of(5, 8), interval.Of(20, 21))
	if !facts[0].When.Equal(want) {
		t.Errorf("When = %v, want %v", facts[0].When, want)
	}
}

func TestCoalesceOrderAndRepresentative(t *testing.T) {
	late := named("late", 100, 110)
	early := named("early", 0, 10)
	facts := Coalesce([]*element.Element{late, early}, nil)
	if v, _ := facts[0].Representative.Varying[0].Str(); v != "early" {
		t.Errorf("first fact = %q, want earliest", v)
	}
	// The representative is the group's earliest element.
	second := named("early", -5, 0)
	facts = Coalesce([]*element.Element{early, second}, nil)
	if facts[0].Representative != second {
		t.Error("representative should be the earliest element of the group")
	}
}

func TestCoalesceEmpty(t *testing.T) {
	if got := Coalesce(nil, nil); len(got) != 0 {
		t.Errorf("Coalesce(nil) = %v", got)
	}
}

// TestCoalesceDeterministicOrder is the regression test for the ordering
// contract: the coalesced sequence is a pure function of the element set.
// Groups share a hull start here, so without explicit tie-breaking the
// order would leak the input permutation.
func TestCoalesceDeterministicOrder(t *testing.T) {
	build := func() []*element.Element {
		a := named("short", 0, 10)
		a.ES = 1
		b := named("long", 0, 40)
		b.ES = 2
		c := named("late", 20, 30)
		c.ES = 3
		return []*element.Element{a, b, c}
	}
	perms := [][]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	want := []string{"short", "long", "late"} // start 0 end 10, start 0 end 40, start 20
	for _, p := range perms {
		base := build()
		es := []*element.Element{base[p[0]], base[p[1]], base[p[2]]}
		facts := Coalesce(es, nil)
		if len(facts) != len(want) {
			t.Fatalf("perm %v: facts = %d, want %d", p, len(facts), len(want))
		}
		for i, f := range facts {
			if v, _ := f.Representative.Varying[0].Str(); v != want[i] {
				t.Errorf("perm %v: facts[%d] = %q, want %q", p, i, v, want[i])
			}
		}
	}
}

// TestCoalesceRepresentativeTieBreak pins the representative choice when a
// group has several elements starting at the same chronon: the lowest
// element surrogate wins regardless of input order.
func TestCoalesceRepresentativeTieBreak(t *testing.T) {
	a := named("v", 0, 10)
	a.ES = 7
	b := named("v", 0, 20)
	b.ES = 2
	for _, es := range [][]*element.Element{{a, b}, {b, a}} {
		facts := Coalesce(es, nil)
		if len(facts) != 1 {
			t.Fatalf("facts = %d, want 1", len(facts))
		}
		if facts[0].Representative.ES != 2 {
			t.Errorf("representative ES = %v, want 2", facts[0].Representative.ES)
		}
	}
}
