package query

import (
	"sort"

	"repro/internal/element"
	"repro/internal/interval"
)

// JoinedPair is one result of a valid-time join: two elements whose facts
// hold simultaneously, with the span of chronons during which both hold.
type JoinedPair struct {
	Left    *element.Element
	Right   *element.Element
	Overlap interval.Interval
}

// validSpan returns the half-open span an element's facts cover.
func validSpan(e *element.Element) interval.Interval {
	if c, ok := e.VT.Event(); ok {
		return interval.Interval{Start: c, End: c.Add(1)}
	}
	iv, _ := e.VT.Interval()
	return iv
}

// joinItem is one sweep entry of TemporalJoin.
type joinItem struct {
	e     *element.Element
	span  interval.Interval
	right bool
}

// TemporalJoin computes the valid-time join of two extensions: every pair
// (l, r) with l from left and r from right whose valid times intersect and
// for which the match predicate holds, together with the intersection
// span. Pass nil to match every overlapping pair (a pure temporal cross
// join). This is the standard valid-time join of temporal algebras (e.g.
// [Gad88], [Sno87]).
//
// The implementation sweeps both sides in valid-start order, keeping
// active sets, so the cost is O((n+m) log(n+m) + pairs examined).
func TemporalJoin(left, right []*element.Element, match func(l, r *element.Element) bool) []JoinedPair {
	items := make([]joinItem, 0, len(left)+len(right))
	for _, e := range left {
		items = append(items, joinItem{e: e, span: validSpan(e)})
	}
	for _, e := range right {
		items = append(items, joinItem{e: e, span: validSpan(e), right: true})
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].span.Start != items[j].span.Start {
			return items[i].span.Start < items[j].span.Start
		}
		// Lefts before rights at equal starts, for deterministic output.
		return !items[i].right && items[j].right
	})
	var out []JoinedPair
	var activeL, activeR []joinItem
	for _, it := range items {
		activeL = expireJoinItems(activeL, it)
		activeR = expireJoinItems(activeR, it)
		if it.right {
			for _, l := range activeL {
				if ov, ok := l.span.Intersect(it.span); ok && (match == nil || match(l.e, it.e)) {
					out = append(out, JoinedPair{Left: l.e, Right: it.e, Overlap: ov})
				}
			}
			activeR = append(activeR, it)
		} else {
			for _, r := range activeR {
				if ov, ok := it.span.Intersect(r.span); ok && (match == nil || match(it.e, r.e)) {
					out = append(out, JoinedPair{Left: it.e, Right: r.e, Overlap: ov})
				}
			}
			activeL = append(activeL, it)
		}
	}
	return out
}

// expireJoinItems drops items whose span ends at or before the sweep
// position (they can no longer overlap anything starting now or later).
func expireJoinItems(active []joinItem, cur joinItem) []joinItem {
	kept := active[:0]
	for _, a := range active {
		if a.span.End > cur.span.Start {
			kept = append(kept, a)
		}
	}
	return kept
}
