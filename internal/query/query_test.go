package query

import (
	"strings"
	"testing"

	"repro/internal/chronon"
	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/element"
	"repro/internal/relation"
	"repro/internal/storage"
	"repro/internal/tx"
)

func sequentialRelation(t *testing.T, n int) *relation.Relation {
	t.Helper()
	r := relation.New(relation.Schema{
		Name:        "temps",
		ValidTime:   element.EventStamp,
		Granularity: chronon.Second,
		Varying:     []relation.Column{{Name: "celsius", Type: element.KindFloat}},
	}, tx.NewLogicalClock(0, 10))
	constraint.Attach(r, constraint.PerRelation,
		constraint.InterEvent{Spec: core.SequentialEventsSpec()})
	for i := 0; i < n; i++ {
		// tt = 10(i+1), vt = tt − 5: sequential and retroactive.
		if _, err := r.Insert(relation.Insertion{
			VT:      element.EventAt(chronon.Chronon(10*(i+1) - 5)),
			Varying: []element.Value{element.Float(float64(i))},
		}); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestForRelationPicksAdvisedStore(t *testing.T) {
	r := sequentialRelation(t, 100)
	en, advice, err := ForRelation(r, []core.Class{core.GloballySequentialEvents})
	if err != nil {
		t.Fatal(err)
	}
	if advice.Store != storage.VTOrdered {
		t.Errorf("advice = %v, want vt-ordered", advice.Store)
	}
	if en.Store().Kind() != storage.VTOrdered {
		t.Errorf("engine store = %v", en.Store().Kind())
	}
	gen, _, err := ForRelation(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	if gen.Store().Kind() != storage.TTOrdered {
		t.Errorf("general store = %v", gen.Store().Kind())
	}
}

func TestTimeslicePlansAndAgreement(t *testing.T) {
	r := sequentialRelation(t, 200)
	spec, general := enginePair(t, r)

	for _, vt := range []int64{5, 995, 1995, 3000} {
		rs := spec.Timeslice(chronon.Chronon(vt))
		rg := general.Timeslice(chronon.Chronon(vt))
		if len(rs.Elements) != len(rg.Elements) {
			t.Errorf("timeslice(%d): specialized %d vs general %d elements",
				vt, len(rs.Elements), len(rg.Elements))
		}
		if !strings.Contains(rs.Plan, "binary search") {
			t.Errorf("specialized plan = %q", rs.Plan)
		}
		if !strings.Contains(rg.Plan, "full scan") {
			t.Errorf("general plan = %q", rg.Plan)
		}
		if rs.Touched >= rg.Touched {
			t.Errorf("timeslice(%d): specialized touched %d ≥ general %d",
				vt, rs.Touched, rg.Touched)
		}
	}
}

func enginePair(t *testing.T, r *relation.Relation) (spec, general *Engine) {
	t.Helper()
	spec, _, err := ForRelation(r, []core.Class{core.GloballySequentialEvents})
	if err != nil {
		t.Fatal(err)
	}
	// The general engine deliberately ignores the specialization: it
	// models the same data stored without the declaration. Heap is the
	// honest baseline for vt queries.
	heap := storage.NewHeap()
	for _, e := range r.Versions() {
		if err := heap.Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	return spec, New(heap, nil)
}

func TestVTRange(t *testing.T) {
	r := sequentialRelation(t, 100)
	spec, general := enginePair(t, r)
	rs := spec.VTRange(100, 200)
	rg := general.VTRange(100, 200)
	if len(rs.Elements) != len(rg.Elements) {
		t.Errorf("range: %d vs %d elements", len(rs.Elements), len(rg.Elements))
	}
	if len(rs.Elements) == 0 {
		t.Error("range returned nothing")
	}
	if rs.Touched >= rg.Touched {
		t.Errorf("range: specialized touched %d ≥ general %d", rs.Touched, rg.Touched)
	}
}

func TestRollback(t *testing.T) {
	r := sequentialRelation(t, 100)
	spec, general := enginePair(t, r)
	rs := spec.Rollback(500)
	rg := general.Rollback(500)
	if len(rs.Elements) != len(rg.Elements) || len(rs.Elements) != 50 {
		t.Errorf("rollback: %d vs %d elements, want 50", len(rs.Elements), len(rg.Elements))
	}
	if rs.Touched > rg.Touched {
		t.Errorf("rollback: specialized touched %d > general %d", rs.Touched, rg.Touched)
	}
}

func TestCurrentAndStats(t *testing.T) {
	r := sequentialRelation(t, 10)
	en, _, err := ForRelation(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := en.Current()
	if len(res.Elements) != 10 {
		t.Errorf("current = %d elements", len(res.Elements))
	}
	en.Timeslice(5)
	st := en.Stats()
	if st.Queries != 2 {
		t.Errorf("Queries = %d", st.Queries)
	}
	if st.Touched != res.Touched+10 {
		t.Errorf("Touched = %d", st.Touched)
	}
}

func TestForRelationLoadFailure(t *testing.T) {
	// A relation whose extension is NOT non-decreasing, loaded with a
	// (false) sequential declaration: the vt-ordered store must refuse.
	r := relation.New(relation.Schema{
		Name:        "x",
		ValidTime:   element.EventStamp,
		Granularity: chronon.Second,
	}, tx.NewLogicalClock(0, 10))
	for _, vt := range []int64{100, 50} {
		if _, err := r.Insert(relation.Insertion{VT: element.EventAt(chronon.Chronon(vt))}); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := ForRelation(r, []core.Class{core.GloballySequentialEvents}); err == nil {
		t.Error("false declaration loaded successfully")
	}
}

func TestQueryAfterDeletion(t *testing.T) {
	r := sequentialRelation(t, 20)
	victim := r.Current()[3]
	if err := r.Delete(victim.ES); err != nil {
		t.Fatal(err)
	}
	en, _, err := ForRelation(r, []core.Class{core.GloballySequentialEvents})
	if err != nil {
		t.Fatal(err)
	}
	vt, _ := victim.VT.Event()
	if res := en.Timeslice(vt); len(res.Elements) != 0 {
		t.Error("deleted element visible in timeslice")
	}
	if res := en.Rollback(victim.TTStart); len(res.Elements) != 4 {
		t.Errorf("rollback before deletion sees %d elements, want 4", len(res.Elements))
	}
}
