// Package shell implements the tsdb interactive/batch session: a small
// bitemporal database shell with declarable temporal specializations,
// temporal queries, and backlog persistence. It lives apart from the main
// package so the whole command surface is unit-testable.
package shell

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	ts "repro"
)

// Session is one tsdb shell session: a set of named relations and an
// output sink.
type Session struct {
	rels  map[string]*ts.Relation
	decls map[string][]ts.ConstraintDescriptor
	out   *bufio.Writer
	rem   *remoteSession // non-nil while connected to a tsdbd server
}

// New creates a session writing to out.
func New(out io.Writer) *Session {
	return &Session{
		rels:  make(map[string]*ts.Relation),
		decls: make(map[string][]ts.ConstraintDescriptor),
		out:   bufio.NewWriter(out),
	}
}

// Relation returns a session relation by name, for tests and embedding.
func (s *Session) Relation(name string) (*ts.Relation, bool) {
	r, ok := s.rels[name]
	return r, ok
}

// Run processes commands from in until EOF or "quit". When interactive is
// true a banner and prompts are printed. Errors — including rejected
// transactions, which are a normal outcome under enforcement — are
// reported and the session continues.
func (s *Session) Run(in io.Reader, interactive bool) {
	defer s.out.Flush()
	sc := bufio.NewScanner(in)
	if interactive {
		fmt.Fprintln(s.out, "tsdb — temporal specialization shell. Type 'help'.")
		s.out.Flush()
	}
	for {
		if interactive {
			fmt.Fprint(s.out, "tsdb> ")
			s.out.Flush()
		}
		if !sc.Scan() {
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if line == "quit" || line == "exit" {
			return
		}
		if err := s.Exec(line); err != nil {
			fmt.Fprintf(s.out, "error: %v\n", err)
		}
		s.out.Flush()
	}
}

// Exec runs one command line.
func (s *Session) Exec(line string) error {
	fields := strings.Fields(line)
	cmd, args := fields[0], fields[1:]
	switch cmd {
	case "help":
		s.help()
		return nil
	case "connect":
		return s.connect(args)
	case "disconnect":
		return s.disconnect()
	}
	if s.rem != nil {
		return s.execRemote(cmd, args, line)
	}
	switch cmd {
	case "create":
		return s.create(args)
	case "declare":
		return s.declare(args)
	case "insert":
		return s.insert(args)
	case "delete":
		return s.delete(args)
	case "current":
		return s.query(args, "current")
	case "rollback":
		return s.query(args, "rollback")
	case "timeslice":
		return s.query(args, "timeslice")
	case "classify":
		return s.classify(args)
	case "advise":
		return s.advise(args)
	case "physical":
		return s.physical(args)
	case "clock":
		return s.clock(args)
	case "dump":
		return s.dump(args)
	case "select", "explain":
		return s.selectQuery(line)
	case "save":
		return s.save(args)
	case "load":
		return s.load(args)
	case "vacuum":
		return s.vacuum(args)
	case "verify":
		return fmt.Errorf("'verify' needs a connected server ('connect <addr>'); the server owns durable artifacts and their checksums")
	}
	return fmt.Errorf("unknown command %q (try 'help')", cmd)
}

func (s *Session) help() {
	fmt.Fprint(s.out, `commands:
  create <rel> event|interval <granularity>
  declare <rel> per-relation|per-partition <spec> [args] [<spec> ...]
      event specs:   retroactive predictive degenerate
                     delayed-retroactive <Δt>   early-predictive <Δt>
                     retro-bounded <Δt>         pred-bounded <Δt>
                     strongly-retro-bounded <Δt> strongly-pred-bounded <Δt>
                     strongly-bounded <Δt> <Δt>
      inter-event:   sequential non-decreasing non-increasing
                     tt-regular <Δt> vt-regular <Δt> temporal-regular <Δt>
      intervals:     contiguous st-<allen relation> vt-interval-regular <Δt>
  insert <rel> [os=<n>] vt=<t>            (event relation)
  insert <rel> [os=<n>] vt=[<t>,<t>)      (interval relation)
  delete <rel> <element-surrogate>
  current <rel> | rollback <rel> <tt> | timeslice <rel> <vt>
  classify <rel> | advise <rel>
  physical <rel>   show the live physical design: organization, declared
      vs inferred classes, advisor reasons, and (remote) migration history
      plus merkle provenance and quarantine state
  verify <rel>     (remote) scrub every durable artifact covering the
      relation against its checksums and repair what the server can
  select ...  temporal query, e.g.:
      select * from temps
      select name, salary from emp as of 25 when valid at 100 where salary > 150
      select who from shifts when meets [100, 120)
      select name from emp order by salary desc limit 10
      window aggregates (count/sum/min/max over valid-time windows):
      select count(*), sum(salary) from emp group by window(100)
      select max(temp) from temps group by window(60, rolling 3) using columnar
      (window modes: tumbling (default) | rolling <k> | cumulative;
       using row|columnar forces the execution engine)
  explain select ...   show the typed query plan instead of running it, e.g.:
      explain select * from temps when valid at 100
  save <rel> <file> | load <rel> <file>   (checksummed backlog format)
  clock <rel> advance <seconds>
  vacuum <rel> <horizon-tt>
  dump <rel>
  connect <addr> | disconnect        (remote mode against a tsdbd server;
      create/declare/insert/delete/queries/select/classify run server-side,
      'save' snapshots the server catalog, 'list' and 'metrics' inspect it,
      'load <rel> <file>' streams header-driven CSV into the bulk loader)
  quit
`)
}

func (s *Session) rel(name string) (*ts.Relation, error) {
	r, ok := s.rels[name]
	if !ok {
		return nil, fmt.Errorf("no relation %q", name)
	}
	return r, nil
}

func (s *Session) create(args []string) error {
	if len(args) != 3 {
		return fmt.Errorf("usage: create <rel> event|interval <granularity>")
	}
	name := args[0]
	if _, exists := s.rels[name]; exists {
		return fmt.Errorf("relation %q already exists", name)
	}
	var kind ts.TimestampKind
	switch args[1] {
	case "event":
		kind = ts.EventStamp
	case "interval":
		kind = ts.IntervalStamp
	default:
		return fmt.Errorf("unknown stamp kind %q", args[1])
	}
	gran, err := ts.ParseGranularity(args[2])
	if err != nil {
		return err
	}
	s.rels[name] = ts.NewRelation(ts.Schema{
		Name: name, ValidTime: kind, Granularity: gran,
	}, ts.NewLogicalClock(0, 10))
	fmt.Fprintf(s.out, "created %s (%s-stamped, granularity %v)\n", name, args[1], gran)
	return nil
}

func (s *Session) declare(args []string) error {
	if len(args) < 3 {
		return fmt.Errorf("usage: declare <rel> per-relation|per-partition <spec>...")
	}
	r, err := s.rel(args[0])
	if err != nil {
		return err
	}
	var scope ts.Scope
	switch args[1] {
	case "per-relation":
		scope = ts.PerRelation
	case "per-partition":
		scope = ts.PerPartition
	default:
		return fmt.Errorf("unknown scope %q", args[1])
	}
	cs, err := parseConstraints(args[2:])
	if err != nil {
		return err
	}
	ts.Declare(r, scope, cs...)
	for _, c := range cs {
		fmt.Fprintf(s.out, "declared %v (%v)\n", c, scope)
		if d, ok := ts.DescribeConstraint(c, scope); ok {
			s.decls[args[0]] = append(s.decls[args[0]], d)
		} else {
			fmt.Fprintf(s.out, "note: %v cannot be persisted (save will omit it)\n", c)
		}
	}
	return nil
}

func parseConstraints(words []string) ([]ts.Constraint, error) {
	var out []ts.Constraint
	i := 0
	next := func() (ts.Duration, error) {
		if i >= len(words) {
			return ts.Duration{}, fmt.Errorf("missing duration argument")
		}
		d, err := ts.ParseDuration(words[i])
		i++
		return d, err
	}
	for i < len(words) {
		w := words[i]
		i++
		var c ts.Constraint
		var err error
		switch w {
		case "retroactive":
			c = ts.EventConstraint{Spec: ts.RetroactiveSpec()}
		case "predictive":
			c = ts.EventConstraint{Spec: ts.PredictiveSpec()}
		case "degenerate":
			var spec ts.EventSpec
			spec, err = ts.DegenerateSpec(ts.Second)
			c = ts.EventConstraint{Spec: spec}
		case "delayed-retroactive":
			c, err = eventWithOne(ts.DelayedRetroactiveSpec, next)
		case "early-predictive":
			c, err = eventWithOne(ts.EarlyPredictiveSpec, next)
		case "retro-bounded":
			c, err = eventWithOne(ts.RetroactivelyBoundedSpec, next)
		case "pred-bounded":
			c, err = eventWithOne(ts.PredictivelyBoundedSpec, next)
		case "strongly-retro-bounded":
			c, err = eventWithOne(ts.StronglyRetroactivelyBoundedSpec, next)
		case "strongly-pred-bounded":
			c, err = eventWithOne(ts.StronglyPredictivelyBoundedSpec, next)
		case "strongly-bounded":
			var d1, d2 ts.Duration
			if d1, err = next(); err == nil {
				if d2, err = next(); err == nil {
					var spec ts.EventSpec
					spec, err = ts.StronglyBoundedSpec(d1, d2)
					c = ts.EventConstraint{Spec: spec}
				}
			}
		case "sequential":
			c = ts.InterEventConstraint{Spec: ts.SequentialEventsSpec()}
		case "non-decreasing":
			c = ts.InterEventConstraint{Spec: ts.NonDecreasingEventsSpec()}
		case "non-increasing":
			c = ts.InterEventConstraint{Spec: ts.NonIncreasingEventsSpec()}
		case "tt-regular":
			c, err = interEventWithUnit(ts.TTEventRegularSpec, next)
		case "vt-regular":
			c, err = interEventWithUnit(ts.VTEventRegularSpec, next)
		case "temporal-regular":
			c, err = interEventWithUnit(ts.TemporalEventRegularSpec, next)
		case "contiguous":
			c = ts.InterIntervalConstraint{Spec: ts.ContiguousSpec()}
		case "sequential-intervals":
			c = ts.InterIntervalConstraint{Spec: ts.SequentialIntervalsSpec()}
		case "vt-interval-regular":
			var d ts.Duration
			if d, err = next(); err == nil {
				var spec ts.IntervalRegularSpec
				spec, err = ts.VTIntervalRegularSpec(d)
				c = ts.IntervalRegularConstraint{Spec: spec}
			}
		default:
			if rel, perr := parseAllen(w); perr == nil {
				c = ts.InterIntervalConstraint{Spec: ts.SuccessiveTTSpec(rel)}
			} else {
				return nil, fmt.Errorf("unknown specialization %q", w)
			}
		}
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no specializations given")
	}
	return out, nil
}

func parseAllen(w string) (ts.AllenRelation, error) {
	if !strings.HasPrefix(w, "st-") {
		return 0, fmt.Errorf("not an st- spec")
	}
	for _, r := range ts.AllenRelations() {
		if "st-"+r.String() == w {
			return r, nil
		}
	}
	return 0, fmt.Errorf("unknown Allen relation in %q", w)
}

func eventWithOne(build func(ts.Duration) (ts.EventSpec, error), next func() (ts.Duration, error)) (ts.Constraint, error) {
	d, err := next()
	if err != nil {
		return nil, err
	}
	spec, err := build(d)
	if err != nil {
		return nil, err
	}
	return ts.EventConstraint{Spec: spec}, nil
}

func interEventWithUnit(build func(ts.Duration) (ts.InterEventSpec, error), next func() (ts.Duration, error)) (ts.Constraint, error) {
	d, err := next()
	if err != nil {
		return nil, err
	}
	spec, err := build(d)
	if err != nil {
		return nil, err
	}
	return ts.InterEventConstraint{Spec: spec}, nil
}

func (s *Session) insert(args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("usage: insert <rel> [os=<n>] vt=<t> | vt=[<t>,<t>)")
	}
	r, err := s.rel(args[0])
	if err != nil {
		return err
	}
	ins := ts.Insertion{}
	for _, a := range args[1:] {
		switch {
		case strings.HasPrefix(a, "os="):
			n, err := strconv.ParseUint(a[3:], 10, 64)
			if err != nil {
				return fmt.Errorf("bad object surrogate: %v", err)
			}
			ins.Object = ts.Surrogate(n)
		case strings.HasPrefix(a, "vt=["):
			body := strings.TrimSuffix(strings.TrimPrefix(a, "vt=["), ")")
			parts := strings.Split(body, ",")
			if len(parts) != 2 {
				return fmt.Errorf("bad interval %q", a)
			}
			lo, err := parseTime(parts[0])
			if err != nil {
				return err
			}
			hi, err := parseTime(parts[1])
			if err != nil {
				return err
			}
			if hi <= lo {
				return fmt.Errorf("empty or inverted interval %q", a)
			}
			ins.VT = ts.SpanOf(lo, hi)
		case strings.HasPrefix(a, "vt="):
			c, err := parseTime(a[3:])
			if err != nil {
				return err
			}
			ins.VT = ts.EventAt(c)
		default:
			return fmt.Errorf("unknown argument %q", a)
		}
	}
	e, err := r.Insert(ins)
	if err != nil {
		return err
	}
	fmt.Fprintf(s.out, "inserted %v at tt %v (vt %v)\n", e.ES, e.TTStart, e.VT)
	return nil
}

func (s *Session) delete(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: delete <rel> <element-surrogate>")
	}
	r, err := s.rel(args[0])
	if err != nil {
		return err
	}
	n, err := strconv.ParseUint(strings.TrimPrefix(args[1], "σ"), 10, 64)
	if err != nil {
		return fmt.Errorf("bad element surrogate %q", args[1])
	}
	if err := r.Delete(ts.Surrogate(n)); err != nil {
		return err
	}
	fmt.Fprintf(s.out, "deleted σ%d\n", n)
	return nil
}

func (s *Session) query(args []string, kind string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: %s <rel> [time]", kind)
	}
	r, err := s.rel(args[0])
	if err != nil {
		return err
	}
	var es []*ts.Element
	switch kind {
	case "current":
		es = r.Current()
	case "rollback", "timeslice":
		if len(args) != 2 {
			return fmt.Errorf("usage: %s <rel> <time>", kind)
		}
		t, err := parseTime(args[1])
		if err != nil {
			return err
		}
		if kind == "rollback" {
			es = r.Rollback(t)
		} else {
			es = r.Timeslice(t)
		}
	}
	fmt.Fprintf(s.out, "%d element(s)\n", len(es))
	for _, e := range es {
		fmt.Fprintf(s.out, "  %v\n", e)
	}
	return nil
}

func (s *Session) classify(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: classify <rel>")
	}
	r, err := s.rel(args[0])
	if err != nil {
		return err
	}
	if r.Len() == 0 {
		return fmt.Errorf("relation %q is empty", args[0])
	}
	rep := ts.Classify(r.Versions(), ts.TTInsertion, r.Schema().Granularity)
	fmt.Fprintln(s.out, "satisfied specializations:")
	for _, f := range rep.Findings {
		fmt.Fprintf(s.out, "  %v\n", f)
	}
	fmt.Fprintln(s.out, "most specific:")
	for _, f := range rep.MostSpecific() {
		fmt.Fprintf(s.out, "  %v\n", f)
	}
	if parts := r.Partitions(); len(parts) > 1 {
		prep := ts.ClassifyPerPartition(parts, ts.TTInsertion, r.Schema().Granularity)
		fmt.Fprintf(s.out, "per partition (%d life-lines):\n", len(parts))
		for _, f := range prep.Findings {
			fmt.Fprintf(s.out, "  %v\n", f)
		}
	}
	return nil
}

func (s *Session) advise(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: advise <rel>")
	}
	r, err := s.rel(args[0])
	if err != nil {
		return err
	}
	var classes []ts.Class
	if r.Len() > 0 {
		classes = ts.Classify(r.Versions(), ts.TTInsertion, r.Schema().Granularity).Classes()
	}
	a := ts.Advise(classes, r.Schema().ValidTime)
	fmt.Fprintf(s.out, "storage advice: %v\n", a.Store)
	for _, reason := range a.Reasons {
		fmt.Fprintf(s.out, "  - %s\n", reason)
	}
	return nil
}

// physical shows the relation's physical design as the advisor sees it:
// what the declarations license, what the observed extension would
// license without a declaration, and which organization wins. The local
// shell has no catalog, so there is no migration history here — connect
// to a tsdbd server for the live view.
func (s *Session) physical(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: physical <rel>")
	}
	name := args[0]
	r, err := s.rel(name)
	if err != nil {
		return err
	}
	var declared []ts.Class
	for _, d := range s.decls[name] {
		if d.Scope == ts.PerRelation {
			declared = append(declared, d.Class)
		}
	}
	var observed []ts.Class
	if r.Len() > 0 {
		observed = ts.Classify(r.Versions(), ts.TTInsertion, r.Schema().Granularity).Classes()
	}
	a := ts.AdviseAuto(declared, observed, r.Schema().ValidTime)
	fmt.Fprintf(s.out, "organization: %v (%s)\n", a.Store, a.Source)
	if len(declared) > 0 {
		fmt.Fprintln(s.out, "declared classes:")
		for _, c := range declared {
			fmt.Fprintf(s.out, "  %v\n", c)
		}
	}
	if len(observed) > 0 {
		fmt.Fprintln(s.out, "inferred from the extension:")
		for _, c := range observed {
			fmt.Fprintf(s.out, "  %v\n", c)
		}
	}
	for _, reason := range a.Reasons {
		fmt.Fprintf(s.out, "  - %s\n", reason)
	}
	return nil
}

func (s *Session) clock(args []string) error {
	if len(args) != 3 || args[1] != "advance" {
		return fmt.Errorf("usage: clock <rel> advance <seconds>")
	}
	r, err := s.rel(args[0])
	if err != nil {
		return err
	}
	n, err := strconv.ParseInt(args[2], 10, 64)
	if err != nil || n < 0 {
		return fmt.Errorf("bad advance %q", args[2])
	}
	lc, ok := r.Clock().(*ts.LogicalClock)
	if !ok {
		return fmt.Errorf("relation clock is not advanceable")
	}
	lc.Advance(n)
	fmt.Fprintf(s.out, "clock now %v\n", lc.Now())
	return nil
}

func (s *Session) dump(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: dump <rel>")
	}
	r, err := s.rel(args[0])
	if err != nil {
		return err
	}
	fmt.Fprintf(s.out, "%s: %d stored element version(s)\n", args[0], r.Len())
	for _, e := range r.Versions() {
		fmt.Fprintf(s.out, "  %v\n", e)
	}
	names := make([]string, 0, len(s.rels))
	for n := range s.rels {
		names = append(names, n)
	}
	sort.Strings(names)
	return nil
}

func (s *Session) selectQuery(line string) error {
	res, err := ts.RunQuery(line, func(name string) (*ts.Relation, bool) {
		r, ok := s.rels[name]
		return r, ok
	})
	if err != nil {
		return err
	}
	fmt.Fprint(s.out, res.Format())
	return nil
}

func (s *Session) save(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: save <rel> <file>")
	}
	r, err := s.rel(args[0])
	if err != nil {
		return err
	}
	decls := s.decls[args[0]]
	if err := ts.SaveBacklogWithDeclarations(args[1], r, decls); err != nil {
		return err
	}
	fmt.Fprintf(s.out, "saved %s (%d backlog records, %d declarations) to %s\n",
		args[0], len(r.Backlog()), len(decls), args[1])
	return nil
}

func (s *Session) load(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: load <rel> <file>")
	}
	if _, exists := s.rels[args[0]]; exists {
		return fmt.Errorf("relation %q already exists", args[0])
	}
	r, decls, err := ts.LoadBacklogWithDeclarations(args[1], ts.NewLogicalClock(0, 10))
	if err != nil {
		return err
	}
	s.rels[args[0]] = r
	s.decls[args[0]] = decls
	fmt.Fprintf(s.out, "loaded %s: %d element version(s), %d declaration(s) re-attached\n",
		args[0], r.Len(), len(decls))
	return nil
}

func (s *Session) vacuum(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: vacuum <rel> <horizon-tt>")
	}
	r, err := s.rel(args[0])
	if err != nil {
		return err
	}
	h, err := parseTime(args[1])
	if err != nil {
		return err
	}
	removed, err := r.Vacuum(h)
	if err != nil {
		return err
	}
	fmt.Fprintf(s.out, "vacuumed %d version(s); rollback faithful from %v\n", removed, r.VacuumHorizon())
	return nil
}

func parseTime(s string) (ts.Chronon, error) {
	s = strings.TrimSpace(s)
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return ts.Chronon(n), nil
	}
	cv, err := ts.ParseCivil(s)
	if err != nil {
		return 0, fmt.Errorf("bad time %q", s)
	}
	return cv.Chronon(), nil
}
