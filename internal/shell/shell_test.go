package shell

import (
	"path/filepath"
	"strings"
	"testing"
)

// runScript executes a sequence of commands in a fresh session and returns
// the combined output.
func runScript(t *testing.T, lines ...string) (*Session, string) {
	t.Helper()
	var sb strings.Builder
	s := New(&sb)
	s.Run(strings.NewReader(strings.Join(lines, "\n")), false)
	return s, sb.String()
}

func TestCreateInsertQuery(t *testing.T) {
	_, out := runScript(t,
		"create temps event second",
		"insert temps vt=5",
		"insert temps vt=15",
		"current temps",
		"timeslice temps 5",
		"rollback temps 10",
	)
	for _, want := range []string{
		"created temps",
		"inserted σ1",
		"inserted σ2",
		"2 element(s)",
		"1 element(s)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestDeclareAndReject(t *testing.T) {
	_, out := runScript(t,
		"create temps event second",
		"declare temps per-relation retroactive sequential",
		"insert temps vt=5",
		"insert temps vt=9999999",
	)
	if !strings.Contains(out, "declared retroactive") {
		t.Errorf("missing declaration echo:\n%s", out)
	}
	if !strings.Contains(out, "error:") || !strings.Contains(out, "retroactive violated") {
		t.Errorf("violation not reported:\n%s", out)
	}
}

func TestDeclareAllSpecKinds(t *testing.T) {
	s, out := runScript(t,
		"create ev event second",
		"declare ev per-relation delayed-retroactive 30s",
		"declare ev per-relation early-predictive 1d",
		"declare ev per-relation retro-bounded 1mo",
		"declare ev per-relation pred-bounded 30d",
		"declare ev per-relation strongly-retro-bounded 2d",
		"declare ev per-relation strongly-pred-bounded 2d",
		"declare ev per-relation strongly-bounded 1d 2d",
		"declare ev per-relation degenerate",
		"declare ev per-relation non-decreasing non-increasing",
		"declare ev per-relation tt-regular 60s vt-regular 60s temporal-regular 60s",
		"create iv interval second",
		"declare iv per-partition contiguous",
		"declare iv per-relation st-before",
		"declare iv per-relation sequential-intervals",
		"declare iv per-relation vt-interval-regular 1w",
	)
	if strings.Contains(out, "error:") {
		t.Fatalf("declaration errors:\n%s", out)
	}
	if _, ok := s.Relation("ev"); !ok {
		t.Fatal("relation lost")
	}
}

func TestDeclareErrors(t *testing.T) {
	_, out := runScript(t,
		"create ev event second",
		"declare ev per-relation sideways",
		"declare ev somewhere retroactive",
		"declare ev per-relation delayed-retroactive",
		"declare ev per-relation",
		"declare ghost per-relation retroactive",
		"declare ev per-relation st-diagonal",
	)
	if got := strings.Count(out, "error:"); got != 6 {
		t.Errorf("expected 6 errors, saw %d:\n%s", got, out)
	}
}

func TestIntervalInsertAndAllenQuery(t *testing.T) {
	_, out := runScript(t,
		"create shifts interval second",
		"insert shifts vt=[0,100)",
		"insert shifts vt=[100,200)",
		"select * from shifts when meets [100, 150)",
	)
	if !strings.Contains(out, "(1 row(s))") {
		t.Errorf("Allen select wrong:\n%s", out)
	}
}

func TestObjectSurrogates(t *testing.T) {
	s, out := runScript(t,
		"create ev event second",
		"insert ev os=7 vt=1",
		"insert ev os=7 vt=2",
		"classify ev",
	)
	r, _ := s.Relation("ev")
	if got := len(r.Objects()); got != 1 {
		t.Errorf("objects = %d, want 1", got)
	}
	if !strings.Contains(out, "most specific:") {
		t.Errorf("classify output missing:\n%s", out)
	}
}

func TestAdviseAndClock(t *testing.T) {
	_, out := runScript(t,
		"create ev event second",
		"insert ev vt=10",
		"clock ev advance 1000",
		"insert ev vt=500",
		"advise ev",
	)
	if !strings.Contains(out, "storage advice:") {
		t.Errorf("advise output missing:\n%s", out)
	}
	if !strings.Contains(out, "clock now") {
		t.Errorf("clock output missing:\n%s", out)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ev.tsbl")
	s, out := runScript(t,
		"create ev event second",
		"insert ev vt=5",
		"insert ev vt=15",
		"delete ev 1",
		"save ev "+path,
		"load ev2 "+path,
		"current ev2",
	)
	if !strings.Contains(out, "saved ev (3 backlog records, 0 declarations)") {
		t.Errorf("save output wrong:\n%s", out)
	}
	if !strings.Contains(out, "loaded ev2: 2 element version(s), 0 declaration(s) re-attached") {
		t.Errorf("load output wrong:\n%s", out)
	}
	r2, ok := s.Relation("ev2")
	if !ok || len(r2.Current()) != 1 {
		t.Fatal("restored relation wrong")
	}
	// Loading over an existing name fails.
	if err := s.Exec("load ev2 " + path); err == nil {
		t.Error("load over existing relation accepted")
	}
}

func TestVacuumCommand(t *testing.T) {
	s, out := runScript(t,
		"create ev event second",
		"insert ev vt=1",
		"insert ev vt=2",
		"delete ev 1",
		"vacuum ev 100",
	)
	if !strings.Contains(out, "vacuumed 1 version(s)") {
		t.Errorf("vacuum output wrong:\n%s", out)
	}
	r, _ := s.Relation("ev")
	if r.Len() != 1 {
		t.Errorf("Len after vacuum = %d", r.Len())
	}
	if err := s.Exec("vacuum ev 50"); err == nil {
		t.Error("regressing vacuum accepted")
	}
}

func TestDateTimeArguments(t *testing.T) {
	_, out := runScript(t,
		"create ev event day",
		"clock ev advance 700000000",
		"insert ev vt=1992-02-03",
		"timeslice ev 1992-02-03",
	)
	if !strings.Contains(out, "1 element(s)") {
		t.Errorf("date-time args failed:\n%s", out)
	}
}

func TestErrorsAndHelp(t *testing.T) {
	_, out := runScript(t,
		"help",
		"frobnicate",
		"create",
		"create ev sideways second",
		"create ev event second",
		"create ev event second", // duplicate
		"insert ghost vt=1",
		"insert ev",
		"insert ev vt=[5,2)",
		"insert ev novalue",
		"delete ev σ99",
		"delete ev notanumber",
		"current ghost",
		"timeslice ev",
		"rollback ev notatime",
		"classify ev",
		"clock ev advance -5",
		"clock ev backward 5",
		"dump ghost",
		"select * from ghost",
	)
	if !strings.Contains(out, "commands:") {
		t.Error("help missing")
	}
	// Count only genuine failures; `classify ev` fails because the
	// relation is empty.
	if got := strings.Count(out, "error:"); got < 15 {
		t.Errorf("expected many errors, saw %d:\n%s", got, out)
	}
}

func TestCommentsAndBlankLinesSkipped(t *testing.T) {
	_, out := runScript(t,
		"# a comment",
		"",
		"create ev event second",
		"   ",
		"quit",
		"create never event second",
	)
	if strings.Contains(out, "created never") {
		t.Error("commands after quit executed")
	}
	if !strings.Contains(out, "created ev") {
		t.Error("session did not run")
	}
}

func TestDumpShowsVersions(t *testing.T) {
	_, out := runScript(t,
		"create ev event second",
		"insert ev vt=1",
		"delete ev 1",
		"dump ev",
	)
	if !strings.Contains(out, "1 stored element version(s)") {
		t.Errorf("dump output wrong:\n%s", out)
	}
}

func TestInteractiveBanner(t *testing.T) {
	var sb strings.Builder
	s := New(&sb)
	s.Run(strings.NewReader("create ev event second\n"), true)
	if !strings.Contains(sb.String(), "tsdb — temporal specialization shell") {
		t.Error("banner missing")
	}
	if !strings.Contains(sb.String(), "tsdb>") {
		t.Error("prompt missing")
	}
}

func TestSaveLoadDeclarationsRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "decl.tsbl")
	s, out := runScript(t,
		"create ev event second",
		"declare ev per-relation retroactive sequential",
		"insert ev vt=5",
		"insert ev vt=15",
		"save ev "+path,
		"load ev2 "+path,
		// The restored relation must still enforce both declarations.
		"insert ev2 vt=99999999",
		"insert ev2 vt=10",
		"insert ev2 vt=25",
	)
	if !strings.Contains(out, "2 declarations)") {
		t.Errorf("save did not persist declarations:\n%s", out)
	}
	if !strings.Contains(out, "2 declaration(s) re-attached") {
		t.Errorf("load did not restore declarations:\n%s", out)
	}
	if got := strings.Count(out, "error:"); got != 2 {
		t.Errorf("expected 2 enforcement rejections after load, saw %d:\n%s", got, out)
	}
	r2, _ := s.Relation("ev2")
	if len(r2.Current()) != 3 {
		t.Errorf("valid continuation missing: %d current", len(r2.Current()))
	}
}

func TestLocalExplain(t *testing.T) {
	_, out := runScript(t,
		"create temps event second",
		"insert temps vt=5",
		"insert temps vt=15",
		"explain select * from temps when valid at 5",
	)
	// Local relations sit on the general heap: a timeslice plans as a
	// full scan under current-state, rendered as a one-column result.
	for _, want := range []string{
		"plan",
		"current-state",
		"-> full-scan on heap (est. touched 2)",
		"row(s))",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
}
