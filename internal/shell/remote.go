package shell

// Remote mode: `connect <addr>` switches the session from the embedded
// engine to a tsdbd server reached through the typed client. The same
// command surface applies where it makes sense — create, declare, insert,
// delete, the temporal queries, select, classify, advise — with `save`
// mapped to a server snapshot and `list`/`dump` backed by the server's
// catalog. Commands that only make sense against in-process state (load,
// clock, vacuum) report an error instead of silently doing the wrong
// thing.

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	ts "repro"
	"repro/client"
	"repro/internal/wire"
)

// remoteSession is the connected half of a Session.
type remoteSession struct {
	addr string
	cli  *client.Client
}

func (s *Session) connect(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: connect <addr>   (e.g. connect localhost:7070)")
	}
	addr := args[0]
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	cli := client.New(addr)
	ctx, cancel := s.remoteCtx()
	defer cancel()
	h, err := cli.Health(ctx)
	if err != nil {
		return fmt.Errorf("connecting to %s: %w", addr, err)
	}
	s.rem = &remoteSession{addr: addr, cli: cli}
	fmt.Fprintf(s.out, "connected to %s (%s, %d relation(s))\n", addr, h.Status, h.Relations)
	return nil
}

func (s *Session) disconnect() error {
	if s.rem == nil {
		return fmt.Errorf("not connected")
	}
	fmt.Fprintf(s.out, "disconnected from %s\n", s.rem.addr)
	s.rem = nil
	return nil
}

func (s *Session) remoteCtx() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), 10*time.Second)
}

// execRemote routes one command line to the connected server.
func (s *Session) execRemote(cmd string, args []string, line string) error {
	ctx, cancel := s.remoteCtx()
	defer cancel()
	switch cmd {
	case "create":
		return s.remoteCreate(ctx, args)
	case "declare":
		return s.remoteDeclare(ctx, args)
	case "insert":
		return s.remoteInsert(ctx, args)
	case "delete":
		return s.remoteDelete(ctx, args)
	case "current", "rollback", "timeslice":
		return s.remoteQuery(ctx, cmd, args)
	case "classify":
		return s.remoteClassify(ctx, args)
	case "advise", "dump":
		return s.remoteInfo(ctx, args)
	case "physical":
		return s.remotePhysical(ctx, args)
	case "verify":
		return s.remoteVerify(ctx, args)
	case "list":
		return s.remoteList(ctx)
	case "select":
		return s.remoteSelect(ctx, line)
	case "explain":
		return s.remoteExplain(ctx, line)
	case "save":
		return s.remoteSnapshot(ctx)
	case "metrics":
		return s.remoteMetrics(ctx)
	case "load":
		return s.remoteLoad(args)
	case "clock", "vacuum":
		return fmt.Errorf("%q is not available in remote mode (the server owns persistence and clocks); 'disconnect' to work locally", cmd)
	}
	return fmt.Errorf("unknown command %q (try 'help')", cmd)
}

func (s *Session) remoteCreate(ctx context.Context, args []string) error {
	if len(args) != 3 {
		return fmt.Errorf("usage: create <rel> event|interval <granularity>")
	}
	if args[1] != "event" && args[1] != "interval" {
		return fmt.Errorf("unknown stamp kind %q", args[1])
	}
	gran, err := ts.ParseGranularity(args[2])
	if err != nil {
		return err
	}
	info, err := s.rem.cli.Create(ctx, client.Schema{
		Name:        args[0],
		ValidTime:   args[1],
		Granularity: int64(gran),
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(s.out, "created %s (%s-stamped, granularity %v) on %s\n",
		info.Schema.Name, info.Schema.ValidTime, gran, s.rem.addr)
	return nil
}

func (s *Session) remoteDeclare(ctx context.Context, args []string) error {
	if len(args) < 3 {
		return fmt.Errorf("usage: declare <rel> per-relation|per-partition <spec>...")
	}
	var scope ts.Scope
	switch args[1] {
	case "per-relation":
		scope = ts.PerRelation
	case "per-partition":
		scope = ts.PerPartition
	default:
		return fmt.Errorf("unknown scope %q", args[1])
	}
	cs, err := parseConstraints(args[2:])
	if err != nil {
		return err
	}
	var descs []client.Descriptor
	for _, c := range cs {
		d, ok := ts.DescribeConstraint(c, scope)
		if !ok {
			return fmt.Errorf("%v cannot be sent over the wire", c)
		}
		descs = append(descs, wire.FromDescriptor(d))
	}
	resp, err := s.rem.cli.Declare(ctx, args[0], descs...)
	if err != nil {
		return err
	}
	fmt.Fprintf(s.out, "declared %d specialization(s); %s now enforces:\n", resp.Declared, args[0])
	for _, d := range resp.Declarations {
		fmt.Fprintf(s.out, "  %s\n", d.Name)
	}
	return nil
}

func (s *Session) remoteInsert(ctx context.Context, args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("usage: insert <rel> [os=<n>] vt=<t> | vt=[<t>,<t>)")
	}
	req := client.InsertRequest{}
	for _, a := range args[1:] {
		switch {
		case strings.HasPrefix(a, "os="):
			n, err := strconv.ParseUint(a[3:], 10, 64)
			if err != nil {
				return fmt.Errorf("bad object surrogate: %v", err)
			}
			req.Object = n
		case strings.HasPrefix(a, "vt=["):
			body := strings.TrimSuffix(strings.TrimPrefix(a, "vt=["), ")")
			parts := strings.Split(body, ",")
			if len(parts) != 2 {
				return fmt.Errorf("bad interval %q", a)
			}
			lo, err := parseTime(parts[0])
			if err != nil {
				return err
			}
			hi, err := parseTime(parts[1])
			if err != nil {
				return err
			}
			if hi <= lo {
				return fmt.Errorf("empty or inverted interval %q", a)
			}
			req.VT = client.SpanOf(int64(lo), int64(hi))
		case strings.HasPrefix(a, "vt="):
			c, err := parseTime(a[3:])
			if err != nil {
				return err
			}
			req.VT = client.EventAt(int64(c))
		default:
			return fmt.Errorf("unknown argument %q", a)
		}
	}
	el, err := s.rem.cli.Insert(ctx, args[0], req)
	if err != nil {
		return err
	}
	fmt.Fprintf(s.out, "inserted σ%d at tt %d (vt %s)\n", el.ES, el.TTStart, formatWireVT(el.VT))
	return nil
}

func (s *Session) remoteDelete(ctx context.Context, args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: delete <rel> <element-surrogate>")
	}
	n, err := strconv.ParseUint(strings.TrimPrefix(args[1], "σ"), 10, 64)
	if err != nil {
		return fmt.Errorf("bad element surrogate %q", args[1])
	}
	if err := s.rem.cli.Delete(ctx, args[0], n); err != nil {
		return err
	}
	fmt.Fprintf(s.out, "deleted σ%d\n", n)
	return nil
}

func (s *Session) remoteQuery(ctx context.Context, kind string, args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: %s <rel> [time]", kind)
	}
	var (
		resp client.QueryResponse
		err  error
	)
	switch kind {
	case "current":
		resp, err = s.rem.cli.Current(ctx, args[0])
	case "rollback", "timeslice":
		if len(args) != 2 {
			return fmt.Errorf("usage: %s <rel> <time>", kind)
		}
		var t ts.Chronon
		if t, err = parseTime(args[1]); err != nil {
			return err
		}
		if kind == "rollback" {
			resp, err = s.rem.cli.Rollback(ctx, args[0], int64(t))
		} else {
			resp, err = s.rem.cli.Timeslice(ctx, args[0], int64(t))
		}
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(s.out, "%d element(s)  [%s, touched %d]\n", len(resp.Elements), resp.Plan, resp.Touched)
	for _, e := range resp.Elements {
		fmt.Fprintf(s.out, "  %s\n", formatWireElement(e))
	}
	return nil
}

func (s *Session) remoteClassify(ctx context.Context, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: classify <rel>")
	}
	rep, err := s.rem.cli.Classify(ctx, args[0])
	if err != nil {
		return err
	}
	fmt.Fprintln(s.out, "satisfied specializations:")
	for _, f := range rep.Findings {
		fmt.Fprintf(s.out, "  %s\n", f)
	}
	fmt.Fprintln(s.out, "most specific:")
	for _, f := range rep.MostSpecific {
		fmt.Fprintf(s.out, "  %s\n", f)
	}
	return nil
}

func (s *Session) remoteInfo(ctx context.Context, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: advise|dump <rel>")
	}
	info, err := s.rem.cli.Info(ctx, args[0])
	if err != nil {
		return err
	}
	fmt.Fprintf(s.out, "%s: %s-stamped, %d element version(s)\n",
		info.Schema.Name, info.Schema.ValidTime, info.Versions)
	if len(info.Declarations) > 0 {
		fmt.Fprintln(s.out, "declared:")
		for _, d := range info.Declarations {
			fmt.Fprintf(s.out, "  %s\n", d.Name)
		}
	}
	fmt.Fprintf(s.out, "storage advice: %s\n", info.Advice.Store)
	for _, reason := range info.Advice.Reasons {
		fmt.Fprintf(s.out, "  - %s\n", reason)
	}
	return nil
}

// remotePhysical renders the server's live physical design for a
// relation: the organization with its provenance, declared vs inferred
// classes, advisor reasons, compaction gauges, and migration history.
func (s *Session) remotePhysical(ctx context.Context, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: physical <rel>")
	}
	p, err := s.rem.cli.Physical(ctx, args[0])
	if err != nil {
		return err
	}
	fmt.Fprintf(s.out, "organization: %s (%s)\n", p.Org, p.Source)
	if len(p.Declared) > 0 {
		fmt.Fprintf(s.out, "declared classes: %s\n", strings.Join(p.Declared, ", "))
	}
	if len(p.Inferred) > 0 {
		fmt.Fprintf(s.out, "inferred classes: %s\n", strings.Join(p.Inferred, ", "))
	}
	if len(p.Adopted) > 0 {
		fmt.Fprintf(s.out, "adopted (journaled): %s\n", strings.Join(p.Adopted, ", "))
	}
	for _, reason := range p.Reasons {
		fmt.Fprintf(s.out, "  - %s\n", reason)
	}
	fmt.Fprintf(s.out, "store bytes: %d", p.StoreBytes)
	if p.SealedRuns > 0 {
		fmt.Fprintf(s.out, " (%d element(s) sealed in %d run(s), %d packed byte(s))",
			p.SealedElements, p.SealedRuns, p.PackedBytes)
	}
	fmt.Fprintln(s.out)
	if t := p.Tracker; t != nil && (t.TTViolations > 0 || t.VTViolations > 0 || t.Overlaps > 0) {
		fmt.Fprintf(s.out, "tracker: %d tt / %d vt violation(s), %d overlap(s) observed\n",
			t.TTViolations, t.VTViolations, t.Overlaps)
	}
	if p.Migrations > 0 {
		fmt.Fprintf(s.out, "migrations: %d\n", p.Migrations)
		for _, m := range p.History {
			fmt.Fprintf(s.out, "  epoch %d: %s -> %s (%s)\n", m.Epoch, m.From, m.To, m.Source)
		}
	}
	if p.MerkleSize > 0 {
		fmt.Fprintf(s.out, "integrity: %d committed frame(s) under merkle root %x\n",
			p.MerkleSize, p.MerkleRoot)
	}
	if p.Quarantined != "" {
		fmt.Fprintf(s.out, "QUARANTINED (read-only): %s\n", p.Quarantined)
	}
	return nil
}

// remoteVerify runs a synchronous server-side scrub-and-repair pass
// over every artifact covering the relation and reports what it found.
func (s *Session) remoteVerify(ctx context.Context, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: verify <rel>")
	}
	vr, err := s.rem.cli.Verify(ctx, args[0])
	if err != nil {
		return err
	}
	fmt.Fprintf(s.out, "verified %d artifact(s) covering %s\n", vr.Artifacts, vr.Rel)
	if len(vr.Failures) == 0 {
		fmt.Fprintln(s.out, "clean: no corruption detected")
		return nil
	}
	for _, f := range vr.Failures {
		fmt.Fprintf(s.out, "  corrupt: %s\n", f)
	}
	fmt.Fprintf(s.out, "repaired %d of %d\n", vr.Repaired, len(vr.Failures))
	return nil
}

func (s *Session) remoteList(ctx context.Context) error {
	rels, err := s.rem.cli.List(ctx)
	if err != nil {
		return err
	}
	fmt.Fprintf(s.out, "%d relation(s)\n", len(rels))
	for _, r := range rels {
		fmt.Fprintf(s.out, "  %s  %s-stamped, %d version(s), %d declaration(s)\n",
			r.Name, r.ValidTime, r.Versions, r.Declarations)
	}
	return nil
}

func (s *Session) remoteSelect(ctx context.Context, line string) error {
	res, err := s.rem.cli.Select(ctx, line)
	if err != nil {
		return err
	}
	fmt.Fprintln(s.out, strings.Join(res.Columns, "\t"))
	for _, row := range res.Rows {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = formatWireValue(v)
		}
		fmt.Fprintln(s.out, strings.Join(cells, "\t"))
	}
	fmt.Fprintf(s.out, "(%d row(s), touched %d)\n", len(res.Rows), res.Touched)
	return nil
}

func (s *Session) remoteExplain(ctx context.Context, line string) error {
	res, err := s.rem.cli.ExplainSelect(ctx, line)
	if err != nil {
		return err
	}
	fmt.Fprintf(s.out, "%s (store: %s)\n", res.Relation, res.Store)
	fmt.Fprintln(s.out, res.Rendered)
	return nil
}

func (s *Session) remoteSnapshot(ctx context.Context) error {
	n, err := s.rem.cli.Snapshot(ctx)
	if err != nil {
		return err
	}
	fmt.Fprintf(s.out, "server snapshotted %d relation(s)\n", n)
	return nil
}

// remoteLoad streams a local CSV file into the connected server's bulk
// loader — the file is piped, not slurped, so its size is bounded only
// by the server's ingest cap. Bulk loads can outlast the usual remote
// deadline, so it runs under a generous one of its own.
func (s *Session) remoteLoad(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: load <rel> <file>   (header-driven CSV, streamed to the server)")
	}
	f, err := os.Open(args[1])
	if err != nil {
		return err
	}
	defer f.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	start := time.Now()
	res, err := s.rem.cli.IngestCSV(ctx, args[0], f)
	if err != nil {
		return err
	}
	fmt.Fprintf(s.out, "loaded %s: %d row(s) read, %d stored, %d rejected in %d batch(es) (%.1fs)\n",
		args[0], res.Lines, res.Stored, res.Rejected, res.Batches, time.Since(start).Seconds())
	for _, e := range res.Errors {
		fmt.Fprintf(s.out, "  %s\n", e)
	}
	if res.ErrorCount > len(res.Errors) {
		fmt.Fprintf(s.out, "  ... and %d more error(s)\n", res.ErrorCount-len(res.Errors))
	}
	return nil
}

func (s *Session) remoteMetrics(ctx context.Context) error {
	m, err := s.rem.cli.Metrics(ctx)
	if err != nil {
		return err
	}
	fmt.Fprintf(s.out, "uptime %ds, %d request(s), %d error(s)\n", m.UptimeSeconds, m.Requests, m.Errors)
	for name, ep := range m.Endpoints {
		fmt.Fprintf(s.out, "  %-10s %6d req  %5d err  mean %dµs  touched %d\n",
			name, ep.Requests, ep.Errors, ep.MeanUS, ep.Touched)
	}
	if len(m.Plans) > 0 {
		fmt.Fprintln(s.out, "plans:")
		for kind, ps := range m.Plans {
			fmt.Fprintf(s.out, "  %-20s %6d quer(y/ies)  touched %d\n",
				kind, ps.Requests, ps.Touched)
		}
	}
	if in := m.Ingest; in != nil {
		fmt.Fprintf(s.out, "ingest: %d batch(es), %d element(s), mean batch %.1f (flush: %d size / %d time / %d eof)\n",
			in.Batches, in.BatchedElements, in.MeanBatch, in.FlushSize, in.FlushTime, in.FlushEOF)
	}
	if ig := m.Integrity; ig != nil && ig.Enabled {
		fmt.Fprintf(s.out, "integrity: %d relation(s), %d leaf(s), %d detected, %d repaired, %d quarantine(s)\n",
			ig.TrackedRelations, ig.Leaves, ig.Detected, ig.Repaired, ig.Quarantines)
		if ig.ScrubPasses > 0 || ig.ScrubArtifacts > 0 {
			fmt.Fprintf(s.out, "  scrub: %d pass(es), %d artifact(s), %d byte(s), %d failure(s)\n",
				ig.ScrubPasses, ig.ScrubArtifacts, ig.ScrubBytes, ig.ScrubFailures)
		}
		for _, q := range ig.Quarantined {
			fmt.Fprintf(s.out, "  QUARANTINED: %s\n", q)
		}
	}
	return nil
}

func formatWireVT(t client.Timestamp) string {
	if t.Event != nil {
		return strconv.FormatInt(*t.Event, 10)
	}
	if t.Start != nil && t.End != nil {
		return fmt.Sprintf("[%d, %d)", *t.Start, *t.End)
	}
	return "?"
}

func formatWireElement(e client.Element) string {
	status := "current"
	if !e.Current {
		status = fmt.Sprintf("deleted at %d", e.TTEnd)
	}
	return fmt.Sprintf("σ%d (object ω%d) vt %s, tt %d, %s",
		e.ES, e.OS, formatWireVT(e.VT), e.TTStart, status)
}

func formatWireValue(v client.Value) string {
	switch v.Kind {
	case "string":
		return v.Str
	case "int":
		return strconv.FormatInt(v.Int, 10)
	case "float":
		return strconv.FormatFloat(v.Float, 'g', -1, 64)
	case "bool":
		return strconv.FormatBool(v.Bool)
	case "time":
		return strconv.FormatInt(v.Time, 10)
	default:
		return "∅"
	}
}
