package shell

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/integrity"
	"repro/internal/server"
	"repro/internal/tx"
	"repro/internal/wal"
)

// startRemote boots an in-process tsdbd handler and returns its host:port.
func startRemote(t *testing.T) string {
	t.Helper()
	cat := catalog.New(catalog.Config{
		NewClock: func() tx.Clock { return tx.NewLogicalClock(0, 10) },
	})
	srv := server.New(server.Config{Catalog: cat})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return strings.TrimPrefix(hs.URL, "http://")
}

func TestRemoteModeSession(t *testing.T) {
	addr := startRemote(t)
	_, out := runScript(t,
		"connect "+addr,
		"create emp event second",
		"declare emp per-relation retroactive sequential",
		"insert emp vt=5",
		"insert emp vt=15",
		"insert emp vt=12", // violates sequential: rejected server-side
		"current emp",
		"timeslice emp 5",
		"select * from emp",
		"explain select * from emp when valid at 5",
		"classify emp",
		"advise emp",
		"list",
		"metrics",
		"save",
		"disconnect",
	)
	for _, want := range []string{
		"connected to http://" + addr,
		"created emp (event-stamped",
		"declared 2 specialization(s)",
		"inserted σ1 at tt 10 (vt 5)",
		"inserted σ2 at tt 20 (vt 15)",
		"error: tsdbd:", // the rejected insert surfaces as a structured error
		"rejected",
		"2 element(s)",
		"1 element(s)",
		"emp (store: vt-ordered log)", // declared sequential: advisor picked the vt log
		"vt-binary-search on vt-ordered log",
		"satisfied specializations:",
		"storage advice:",
		"1 relation(s)",
		"request(s)",
		"server snapshotted",
		"disconnected from http://" + addr,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Rejected transaction must not have landed.
	if strings.Contains(out, "3 element(s)") {
		t.Errorf("rejected insert appears in query results:\n%s", out)
	}
}

// TestRemoteModeLoad streams a local CSV file through the shell's remote
// `load` into the server's bulk loader, bad rows reported line-by-line,
// and checks the batch counters surface in `metrics`.
func TestRemoteModeLoad(t *testing.T) {
	addr := startRemote(t)
	csv := filepath.Join(t.TempDir(), "rows.csv")
	if err := os.WriteFile(csv, []byte("vt\n5\n15\n25\n35,extra\n45\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, out := runScript(t,
		"connect "+addr,
		"create readings event second",
		"load readings "+csv,
		"current readings",
		"metrics",
	)
	for _, want := range []string{
		"loaded readings: 5 row(s) read, 4 stored, 0 rejected in 1 batch(es)",
		"line 5: row has 2 columns, header has 1",
		"4 element(s)",
		"ingest: 1 batch(es), 4 element(s), mean batch 4.0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRemoteModeGuardsLocalOnlyCommands(t *testing.T) {
	addr := startRemote(t)
	_, out := runScript(t,
		"connect "+addr,
		"clock emp advance 5",
		"vacuum emp 100",
	)
	if got := strings.Count(out, "not available in remote mode"); got != 2 {
		t.Errorf("local-only guard fired %d times, want 2:\n%s", got, out)
	}
}

func TestRemoteModeConnectFailure(t *testing.T) {
	_, out := runScript(t,
		"connect 127.0.0.1:1", // nothing listens on port 1
		"current emp",         // still local mode: unknown relation, not a remote call
	)
	if !strings.Contains(out, "error: connecting to http://127.0.0.1:1") {
		t.Errorf("missing connect failure:\n%s", out)
	}
	if !strings.Contains(out, `no relation "emp"`) {
		t.Errorf("session did not stay in local mode:\n%s", out)
	}
}

// startIntegrityRemote boots a WAL-backed, root-signing server so the
// integrity surface (verify, merkle provenance) is live.
func startIntegrityRemote(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	w, err := wal.Open(wal.Options{Dir: filepath.Join(dir, "wal"), Sync: wal.SyncGroup})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	t.Cleanup(func() { w.Close() })
	signer, err := integrity.LoadOrCreateSigner(filepath.Join(dir, "integrity.ed25519"))
	if err != nil {
		t.Fatalf("LoadOrCreateSigner: %v", err)
	}
	cat := catalog.New(catalog.Config{
		Dir:      filepath.Join(dir, "data"),
		NewClock: func() tx.Clock { return tx.NewLogicalClock(0, 10) },
		WAL:      w,
		Signer:   signer,
	})
	if err := cat.Open(); err != nil {
		t.Fatalf("catalog.Open: %v", err)
	}
	t.Cleanup(func() { cat.Close() })
	srv := server.New(server.Config{Catalog: cat})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return strings.TrimPrefix(hs.URL, "http://")
}

func TestRemoteVerifyAndProvenance(t *testing.T) {
	addr := startIntegrityRemote(t)
	_, out := runScript(t,
		"connect "+addr,
		"create emp event second",
		"insert emp vt=5",
		"insert emp vt=15",
		"save",
		"verify emp",
		"physical emp",
		"metrics",
		"disconnect",
		"verify emp", // local mode: remote-only command
	)
	for _, want := range []string{
		"verified", "covering emp",
		"clean: no corruption detected",
		"committed frame(s) under merkle root",
		"integrity: ",
		"detected, 0 repaired",
		"needs a connected server",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "QUARANTINED") {
		t.Errorf("clean relation reported quarantined:\n%s", out)
	}
}
