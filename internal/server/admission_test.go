package server

// Unit tests for the admission gate: fast-path admission, bounded-queue
// sheds, max-wait sheds, caller-cancellation sheds, and the wait
// histogram's quantile arithmetic.

import (
	"context"
	"testing"
	"time"
)

func TestGateFastPathAndQueueFull(t *testing.T) {
	g := newGate(ClassLimit{Limit: 1, Queue: 1, MaxWait: time.Second})

	ok, _ := g.acquire(context.Background())
	if !ok {
		t.Fatal("first acquire should take the free slot")
	}

	// Second request queues; it will be admitted once we release.
	admitted := make(chan struct{})
	go func() {
		ok, _ := g.acquire(context.Background())
		if ok {
			close(admitted)
		}
	}()
	// Wait until the second request occupies the queue slot.
	deadline := time.Now().Add(2 * time.Second)
	for {
		g.mu.Lock()
		q := len(g.waiters)
		g.mu.Unlock()
		if q == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("second acquire never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// Third request finds the queue full: shed on arrival.
	ok, cause := g.acquire(context.Background())
	if ok || cause != shedQueueFull {
		t.Fatalf("acquire over full queue = (%v, %v), want (false, shedQueueFull)", ok, cause)
	}

	g.release()
	select {
	case <-admitted:
	case <-time.After(2 * time.Second):
		t.Fatal("queued request never admitted after release")
	}
	g.release()

	g.mu.Lock()
	defer g.mu.Unlock()
	if g.admitted != 2 {
		t.Fatalf("admitted = %d, want 2", g.admitted)
	}
	if g.sheds[shedQueueFull] != 1 {
		t.Fatalf("sheds[queueFull] = %d, want 1", g.sheds[shedQueueFull])
	}
	if g.maxQueued != 1 {
		t.Fatalf("maxQueued = %d, want 1", g.maxQueued)
	}
}

func TestGateMaxWaitShed(t *testing.T) {
	g := newGate(ClassLimit{Limit: 1, Queue: 4, MaxWait: 10 * time.Millisecond})
	if ok, _ := g.acquire(context.Background()); !ok {
		t.Fatal("first acquire failed")
	}
	start := time.Now()
	ok, cause := g.acquire(context.Background())
	if ok || cause != shedWait {
		t.Fatalf("acquire = (%v, %v), want (false, shedWait)", ok, cause)
	}
	if waited := time.Since(start); waited < 10*time.Millisecond {
		t.Fatalf("shed after %v, before MaxWait elapsed", waited)
	}
	g.release()
}

func TestGateContextCancelShed(t *testing.T) {
	g := newGate(ClassLimit{Limit: 1, Queue: 4, MaxWait: time.Minute})
	if ok, _ := g.acquire(context.Background()); !ok {
		t.Fatal("first acquire failed")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	ok, cause := g.acquire(ctx)
	if ok || cause != shedCanceled {
		t.Fatalf("acquire = (%v, %v), want (false, shedCanceled)", ok, cause)
	}
	g.release()
}

func TestQuantileUpperBounds(t *testing.T) {
	var hist [32]uint64
	if got := quantile(&hist, 0.99); got != 0 {
		t.Fatalf("empty histogram quantile = %d, want 0", got)
	}
	// 90 waits in bucket 0 ([0,2)µs), 10 in bucket 10 ([1024,2048)µs).
	hist[0] = 90
	hist[10] = 10
	if got := quantile(&hist, 0.50); got != 2 {
		t.Fatalf("p50 = %d, want 2 (bucket 0 upper bound)", got)
	}
	if got := quantile(&hist, 0.99); got != 2048 {
		t.Fatalf("p99 = %d, want 2048 (bucket 10 upper bound)", got)
	}
}

func TestHistBucket(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{time.Microsecond, 0},
		{2 * time.Microsecond, 1},
		{3 * time.Microsecond, 1},
		{1024 * time.Microsecond, 10},
		{time.Hour, 31},
	}
	for _, c := range cases {
		if got := histBucket(c.d); got != c.want {
			t.Fatalf("histBucket(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestAdmissionReportAndSaturated(t *testing.T) {
	a := newAdmission(AdmissionConfig{Write: ClassLimit{Limit: 1, Queue: 2, MaxWait: time.Second}})
	rep := a.report()
	if len(rep) != int(numClasses) {
		t.Fatalf("report has %d classes, want %d", len(rep), numClasses)
	}
	if rep["write"].Limit != 1 {
		t.Fatalf("write limit = %d, want 1", rep["write"].Limit)
	}
	if rep["read"].Limit != classDefaults[ClassRead].Limit {
		t.Fatalf("read limit = %d, want default %d", rep["read"].Limit, classDefaults[ClassRead].Limit)
	}
	if sat := a.saturated(); len(sat) != 0 {
		t.Fatalf("idle controller saturated = %v, want none", sat)
	}

	// Fill the write queue to capacity: saturated must name the class.
	g := a.gates[ClassWrite]
	g.mu.Lock()
	for len(g.waiters) < g.queueCap {
		g.waiters = append(g.waiters, &waiter{ready: make(chan struct{})})
	}
	g.mu.Unlock()
	sat := a.saturated()
	if len(sat) != 1 || sat[0] != "write" {
		t.Fatalf("saturated = %v, want [write]", sat)
	}

	// Disabled controller reports nothing.
	d := newAdmission(AdmissionConfig{Disabled: true})
	if d.report() != nil || d.saturated() != nil {
		t.Fatal("disabled controller must report nil")
	}
}
