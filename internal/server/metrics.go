package server

import (
	"sync"
	"time"

	"repro/internal/wire"
)

// Metrics accumulates per-endpoint request counts, latency summaries, and
// elements-touched counters (the access-path accounting the storage layer
// reports for every query). One registry serves the whole server; /metrics
// renders it as JSON.
type Metrics struct {
	start time.Time

	mu    sync.Mutex
	eps   map[string]*endpointStats
	plans map[string]*planStats
}

type planStats struct {
	requests uint64
	touched  uint64
}

type endpointStats struct {
	requests uint64
	errors   uint64
	touched  uint64
	latTotal time.Duration
	latMin   time.Duration
	latMax   time.Duration
}

// NewMetrics returns an empty registry anchored at now.
func NewMetrics() *Metrics {
	return &Metrics{
		start: time.Now(),
		eps:   make(map[string]*endpointStats),
		plans: make(map[string]*planStats),
	}
}

// RecordPlan accounts one executed query against its plan kind (a
// plan.NodeKind slug — the access-path leaf, not the decorators).
func (m *Metrics) RecordPlan(kind string, touched int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ps, ok := m.plans[kind]
	if !ok {
		ps = &planStats{}
		m.plans[kind] = ps
	}
	ps.requests++
	if touched > 0 {
		ps.touched += uint64(touched)
	}
}

// Record accounts one request against the named endpoint.
func (m *Metrics) Record(endpoint string, d time.Duration, touched int, isErr bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ep, ok := m.eps[endpoint]
	if !ok {
		ep = &endpointStats{latMin: d}
		m.eps[endpoint] = ep
	}
	ep.requests++
	if isErr {
		ep.errors++
	}
	if touched > 0 {
		ep.touched += uint64(touched)
	}
	ep.latTotal += d
	if d < ep.latMin {
		ep.latMin = d
	}
	if d > ep.latMax {
		ep.latMax = d
	}
}

// Report renders the registry for the /metrics endpoint.
func (m *Metrics) Report() wire.MetricsResponse {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := wire.MetricsResponse{
		UptimeSeconds: int64(time.Since(m.start) / time.Second),
		Endpoints:     make(map[string]wire.EndpointMetrics, len(m.eps)),
	}
	for name, ep := range m.eps {
		em := wire.EndpointMetrics{
			Requests:  ep.requests,
			Errors:    ep.errors,
			Touched:   ep.touched,
			LatencyUS: ep.latTotal.Microseconds(),
			MinUS:     ep.latMin.Microseconds(),
			MaxUS:     ep.latMax.Microseconds(),
		}
		if ep.requests > 0 {
			em.MeanUS = (ep.latTotal / time.Duration(ep.requests)).Microseconds()
		}
		out.Endpoints[name] = em
		out.Requests += ep.requests
		out.Errors += ep.errors
	}
	if len(m.plans) > 0 {
		out.Plans = make(map[string]wire.PlanMetrics, len(m.plans))
		for kind, ps := range m.plans {
			out.Plans[kind] = wire.PlanMetrics{Requests: ps.requests, Touched: ps.touched}
		}
	}
	return out
}
