package server_test

// End-to-end acceptance: boot tsdbd's server on a loopback listener, drive
// it through the typed client — create, declare retroactive+sequential,
// insert (including a violating transaction the enforcer must reject),
// tsql SELECT, the temporal queries — then restart the server against the
// same data directory and verify the relation, its declared
// specializations, and their enforcement all survived, and that /metrics
// reflects the requests served.

import (
	"context"
	"errors"
	"net"
	"net/http"
	"net/url"
	"strings"
	"testing"
	"time"

	"repro/client"
	"repro/internal/catalog"
	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/tx"
	"repro/internal/wire"
)

// bootServer starts a server over a fresh catalog on dir, with
// deterministic logical clocks (tt = 10, 20, ... per relation).
func bootServer(t *testing.T, dir string) (*client.Client, func()) {
	t.Helper()
	cat := catalog.New(catalog.Config{
		Dir:      dir,
		NewClock: func() tx.Clock { return tx.NewLogicalClock(0, 10) },
	})
	if err := cat.Open(); err != nil {
		t.Fatalf("catalog.Open: %v", err)
	}
	srv := server.New(server.Config{Catalog: cat})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := cat.Close(); err != nil {
			t.Errorf("catalog.Close: %v", err)
		}
	}
	return client.New("http://" + ln.Addr().String()), stop
}

func empSchema() client.Schema {
	return client.Schema{
		Name:        "emp",
		ValidTime:   "event",
		Granularity: 1,
		Invariant:   []client.Column{{Name: "name", Type: "string"}},
		Varying:     []client.Column{{Name: "salary", Type: "int"}},
	}
}

func mustDescriptor(t *testing.T, c constraint.Constraint) client.Descriptor {
	t.Helper()
	d, ok := constraint.Describe(c, constraint.PerRelation)
	if !ok {
		t.Fatalf("constraint %v is not describable", c)
	}
	return wire.FromDescriptor(d)
}

func insertReq(vt int64, name string, salary int64) client.InsertRequest {
	return client.InsertRequest{
		VT:        client.EventAt(vt),
		Invariant: []client.Value{client.String(name)},
		Varying:   []client.Value{client.Int(salary)},
	}
}

func TestEndToEndServerLifecycle(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	cli, stop := bootServer(t, dir)

	if _, err := cli.Create(ctx, empSchema()); err != nil {
		t.Fatalf("Create: %v", err)
	}
	// Creating the same relation twice is a conflict.
	if _, err := cli.Create(ctx, empSchema()); err == nil {
		t.Fatal("duplicate Create succeeded")
	}

	// Declare retroactive (vt ≤ tt) and globally sequential events
	// (each event occurs and is stored before the next begins).
	retro := mustDescriptor(t, constraint.Event{Spec: core.RetroactiveSpec()})
	seq := mustDescriptor(t, constraint.InterEvent{Spec: core.SequentialEventsSpec()})
	decl, err := cli.Declare(ctx, "emp", retro, seq)
	if err != nil {
		t.Fatalf("Declare: %v", err)
	}
	if decl.Declared != 2 || len(decl.Declarations) != 2 {
		t.Fatalf("Declare = %+v, want 2 declarations", decl)
	}

	// tt=10: vt 5 ≤ 10, first event.
	el1, err := cli.Insert(ctx, "emp", insertReq(5, "merrie", 27000))
	if err != nil {
		t.Fatalf("insert 1: %v", err)
	}
	if el1.TTStart != 10 {
		t.Fatalf("insert 1 tt = %d, want 10", el1.TTStart)
	}
	// tt=20: vt 15 — after max(10, 5), before tt. Fine.
	el2, err := cli.Insert(ctx, "emp", insertReq(15, "tom", 31000))
	if err != nil {
		t.Fatalf("insert 2: %v", err)
	}
	if el2.TTStart != 20 {
		t.Fatalf("insert 2 tt = %d, want 20", el2.TTStart)
	}
	// vt 12 starts before element 2 completed (max(tt,vt)=20): the
	// sequential enforcer must reject the transaction with the distinct
	// "rejected" error code.
	if _, err := cli.Insert(ctx, "emp", insertReq(12, "lindy", 19000)); !client.IsRejected(err) {
		t.Fatalf("violating insert: err = %v, want rejected", err)
	}
	// A later event is fine again; the rejected attempt must not have
	// corrupted enforcement state.
	el3, err := cli.Insert(ctx, "emp", insertReq(25, "lindy", 19000))
	if err != nil {
		t.Fatalf("insert 3: %v", err)
	}
	if el3.TTStart <= el2.TTStart {
		t.Fatalf("insert 3 tt = %d, want > %d", el3.TTStart, el2.TTStart)
	}

	sel, err := cli.Select(ctx, "select name, salary from emp")
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	if len(sel.Rows) != 3 {
		t.Fatalf("Select rows = %d, want 3", len(sel.Rows))
	}

	if q, err := cli.Timeslice(ctx, "emp", 5); err != nil || len(q.Elements) != 1 {
		t.Fatalf("Timeslice(5) = %d elements, %v; want 1", len(q.Elements), err)
	}
	if q, err := cli.Rollback(ctx, "emp", 15); err != nil || len(q.Elements) != 1 {
		t.Fatalf("Rollback(15) = %d elements, %v; want 1", len(q.Elements), err)
	}
	if q, err := cli.TimesliceAsOf(ctx, "emp", 15, 25); err != nil || len(q.Elements) != 1 {
		t.Fatalf("TimesliceAsOf(15, 25) = %d elements, %v; want 1", len(q.Elements), err)
	}
	if q, err := cli.Current(ctx, "emp"); err != nil || len(q.Elements) != 3 {
		t.Fatalf("Current = %d elements, %v; want 3", len(q.Elements), err)
	}

	// Error surface: missing relation and malformed query kind.
	if _, err := cli.Current(ctx, "nobody"); !client.IsNotFound(err) {
		t.Fatalf("Current(nobody) err = %v, want not_found", err)
	}
	if _, err := cli.Query(ctx, "emp", client.QueryRequest{Kind: "sideways"}); err == nil {
		t.Fatal("bad query kind succeeded")
	}

	// Metrics must reflect the traffic: 4 insert attempts, 1 of them an
	// error (the rejected transaction).
	m, err := cli.Metrics(ctx)
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	if m.Requests == 0 {
		t.Fatal("metrics report zero requests")
	}
	ins := m.Endpoints["insert"]
	if ins.Requests != 4 || ins.Errors != 1 {
		t.Fatalf("insert metrics = %d requests / %d errors, want 4 / 1", ins.Requests, ins.Errors)
	}
	if qm := m.Endpoints["query"]; qm.Touched == 0 {
		t.Fatalf("query metrics report no elements touched: %+v", qm)
	}

	if n, err := cli.Snapshot(ctx); err != nil || n < 1 {
		t.Fatalf("Snapshot = %d, %v; want >= 1", n, err)
	}

	stop() // graceful shutdown flushes the catalog

	// Reboot against the same data directory: schema, data, and declared
	// specializations must all survive.
	cli2, stop2 := bootServer(t, dir)
	defer stop2()

	info, err := cli2.Info(ctx, "emp")
	if err != nil {
		t.Fatalf("Info after restart: %v", err)
	}
	if info.Versions != 3 {
		t.Fatalf("restarted versions = %d, want 3", info.Versions)
	}
	if len(info.Declarations) != 2 {
		t.Fatalf("restarted declarations = %d, want 2", len(info.Declarations))
	}
	if q, err := cli2.Timeslice(ctx, "emp", 15); err != nil || len(q.Elements) != 1 {
		t.Fatalf("restarted Timeslice(15) = %d elements, %v; want 1", len(q.Elements), err)
	}
	// Enforcement was re-warmed from the persisted declarations: a
	// violating transaction is still rejected...
	if _, err := cli2.Insert(ctx, "emp", insertReq(1, "eve", 1000)); !client.IsRejected(err) {
		t.Fatalf("post-restart violating insert: err = %v, want rejected", err)
	}
	// ...and a valid one still accepted, at a transaction time past
	// everything replayed.
	el4, err := cli2.Insert(ctx, "emp", insertReq(55, "pat", 40000))
	if err != nil {
		t.Fatalf("post-restart insert: %v", err)
	}
	if el4.TTStart <= el3.TTStart {
		t.Fatalf("post-restart tt = %d, want > %d", el4.TTStart, el3.TTStart)
	}
	m2, err := cli2.Metrics(ctx)
	if err != nil {
		t.Fatalf("Metrics after restart: %v", err)
	}
	if m2.Requests == 0 {
		t.Fatal("restarted metrics report zero requests")
	}
}

// TestExplainOverTheWire drives the explain surfaces end to end: EXPLAIN
// SELECT through /v1/select, the kind-based GET endpoint, the structured
// plan attached to real query responses, and the per-plan-kind /metrics
// aggregation — before and after a declaration flips the chosen plan.
func TestExplainOverTheWire(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	cli, stop := bootServer(t, dir)
	defer stop()

	if _, err := cli.Create(ctx, empSchema()); err != nil {
		t.Fatalf("Create: %v", err)
	}
	for i, vt := range []int64{5, 15, 25} {
		if _, err := cli.Insert(ctx, "emp", insertReq(vt, "w", int64(1000*(i+1)))); err != nil {
			t.Fatalf("insert vt=%d: %v", vt, err)
		}
	}

	// Undeclared: the advisor keeps the general tt-ordered log, and a
	// timeslice can only plan as a full scan under current-state.
	exp, err := cli.ExplainSelect(ctx, "SELECT * FROM emp WHEN VALID AT 15")
	if err != nil {
		t.Fatalf("ExplainSelect: %v", err)
	}
	if exp.Relation != "emp" || exp.Store != "tt-ordered log" {
		t.Fatalf("ExplainSelect = rel %q store %q, want emp / tt-ordered log", exp.Relation, exp.Store)
	}
	if exp.Plan == nil {
		t.Fatal("ExplainSelect returned no structured plan")
	}
	if leaf := exp.Plan.Leaf(); leaf.Kind != "full-scan" || leaf.Org != "tt-ordered log" {
		t.Fatalf("leaf = %s on %s, want full-scan on tt-ordered log", leaf.Kind, leaf.Org)
	}
	for _, want := range []string{"current-state", "full-scan on tt-ordered log"} {
		if !strings.Contains(exp.Rendered, want) {
			t.Errorf("Rendered missing %q:\n%s", want, exp.Rendered)
		}
	}

	// The kind-based endpoint must agree with the statement form.
	exp2, err := cli.Explain(ctx, "emp", client.QueryRequest{Kind: client.QueryTimeslice, VT: 15})
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	if exp2.Plan == nil || exp2.Plan.Leaf().Kind != "full-scan" {
		t.Fatalf("kind-based Explain leaf = %+v, want full-scan", exp2.Plan)
	}

	// Declaring globally non-decreasing events re-advises to the
	// vt-ordered log; the same EXPLAIN now shows a vt binary search.
	nd := mustDescriptor(t, constraint.InterEvent{Spec: core.NonDecreasingEventsSpec()})
	if _, err := cli.Declare(ctx, "emp", nd); err != nil {
		t.Fatalf("Declare: %v", err)
	}
	exp3, err := cli.ExplainSelect(ctx, "explain select name from emp when valid at 15")
	if err != nil {
		t.Fatalf("ExplainSelect after declare: %v", err)
	}
	if exp3.Store != "vt-ordered log" {
		t.Fatalf("store after declare = %q, want vt-ordered log", exp3.Store)
	}
	if leaf := exp3.Plan.Leaf(); leaf.Kind != "vt-binary-search" {
		t.Fatalf("leaf after declare = %s, want vt-binary-search", leaf.Kind)
	}

	// Running the query for real returns the same plan both ways: the
	// legacy one-liner and the structured tree.
	qr, err := cli.Timeslice(ctx, "emp", 15)
	if err != nil {
		t.Fatalf("Timeslice: %v", err)
	}
	if qr.Plan != "binary search (vt-ordered log)" {
		t.Fatalf("Timeslice plan = %q, want binary search (vt-ordered log)", qr.Plan)
	}
	if qr.PlanNode == nil || qr.PlanNode.Leaf().Kind != "vt-binary-search" {
		t.Fatalf("Timeslice plan node = %+v, want vt-binary-search leaf", qr.PlanNode)
	}
	if len(qr.Elements) != 1 {
		t.Fatalf("Timeslice(15) = %d elements, want 1", len(qr.Elements))
	}
	sr, err := cli.Select(ctx, "SELECT * FROM emp WHEN VALID AT 15")
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	if sr.Plan == nil || sr.Plan.Leaf().Kind != "vt-binary-search" {
		t.Fatalf("Select plan = %+v, want vt-binary-search leaf", sr.Plan)
	}

	// /metrics aggregates touched-counts per plan kind; the two executed
	// vt-binary-search queries above must both be booked.
	m, err := cli.Metrics(ctx)
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	vbs, ok := m.Plans["vt-binary-search"]
	if !ok || vbs.Requests < 2 {
		t.Fatalf("metrics plans = %+v, want vt-binary-search with >= 2 requests", m.Plans)
	}

	// Error shapes: an unknown ?kind= and a statement addressed to the
	// wrong relation are both structured bad requests.
	if _, err := cli.Explain(ctx, "emp", client.QueryRequest{Kind: "bogus"}); !isBadRequest(err) {
		t.Fatalf("bogus kind: err = %v, want bad_request", err)
	}
	base := cli.BaseURL()
	resp, err := http.Get(base + "/v1/relations/emp/explain?query=" + url.QueryEscape("SELECT * FROM other"))
	if err != nil {
		t.Fatalf("raw explain GET: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mismatched relation explain status = %d, want 400", resp.StatusCode)
	}
}

func isBadRequest(err error) bool {
	var ae *client.APIError
	return errors.As(err, &ae) && ae.Code == client.CodeBadRequest
}
