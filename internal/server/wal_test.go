package server_test

// Kill-and-recover acceptance: boot the server with a write-ahead log,
// mutate over the wire, stop abruptly WITHOUT the final snapshot flush
// (the kill -9 path — before the WAL, catalog.Close was the only code
// path that persisted the tail of acknowledged transactions), reboot from
// WAL + last snapshot, and assert queries see the full history.

import (
	"context"
	"net"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"repro/client"
	"repro/internal/catalog"
	"repro/internal/server"
	"repro/internal/tx"
	"repro/internal/wal"
)

// bootWALServer starts a server over a WAL-backed catalog. The returned
// kill func stops the HTTP listener but deliberately skips catalog.Close
// and wal.Close — from the data layer's point of view the process died.
func bootWALServer(t *testing.T, root string) (*client.Client, *catalog.Catalog, func()) {
	t.Helper()
	w, err := wal.Open(wal.Options{Dir: filepath.Join(root, "wal"), Sync: wal.SyncGroup})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	cat := catalog.New(catalog.Config{
		Dir:      filepath.Join(root, "data"),
		NewClock: func() tx.Clock { return tx.NewLogicalClock(0, 10) },
		WAL:      w,
	})
	if err := cat.Open(); err != nil {
		t.Fatalf("catalog.Open: %v", err)
	}
	srv := server.New(server.Config{Catalog: cat})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	kill := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = hs.Shutdown(ctx)
	}
	return client.New("http://" + ln.Addr().String()), cat, kill
}

func TestKillAndRecoverOverTheWire(t *testing.T) {
	root := t.TempDir()
	ctx := context.Background()

	cli, _, kill := bootWALServer(t, root)
	if _, err := cli.Create(ctx, empSchema()); err != nil {
		t.Fatalf("Create: %v", err)
	}
	merrie, err := cli.Insert(ctx, "emp", insertReq(100, "merrie", 27000))
	if err != nil {
		t.Fatalf("Insert merrie: %v", err)
	}
	if _, err := cli.Insert(ctx, "emp", insertReq(200, "tad", 31000)); err != nil {
		t.Fatalf("Insert tad: %v", err)
	}
	// A mid-run snapshot, as the periodic flusher would take: recovery must
	// combine it with the log records that follow.
	if _, err := cli.Snapshot(ctx); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if _, err := cli.Insert(ctx, "emp", insertReq(300, "lene", 45000)); err != nil {
		t.Fatalf("Insert lene: %v", err)
	}
	if err := cli.Delete(ctx, "emp", merrie.ES); err != nil {
		t.Fatalf("Delete merrie: %v", err)
	}
	kill() // no catalog.Close, no final flush

	cli2, cat2, kill2 := bootWALServer(t, root)
	defer func() {
		kill2()
		if err := cat2.Close(); err != nil {
			t.Errorf("catalog.Close: %v", err)
		}
	}()

	// The full acknowledged history is back: two current rows...
	cur, err := cli2.Current(ctx, "emp")
	if err != nil {
		t.Fatalf("Current: %v", err)
	}
	if len(cur.Elements) != 2 {
		t.Fatalf("Current returned %d elements, want 2 (post-snapshot insert and delete recovered)", len(cur.Elements))
	}
	// ...and the deleted row still visible to a rollback before the delete.
	rb, err := cli2.Rollback(ctx, "emp", 30)
	if err != nil {
		t.Fatalf("Rollback: %v", err)
	}
	if len(rb.Elements) != 3 {
		t.Fatalf("Rollback(30) returned %d elements, want 3", len(rb.Elements))
	}
	sel, err := cli2.Select(ctx, "SELECT name, salary FROM emp")
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	if len(sel.Rows) != 2 {
		t.Fatalf("SELECT returned %d rows, want 2", len(sel.Rows))
	}
	// The planner works over the recovered store.
	exp, err := cli2.ExplainSelect(ctx, "SELECT name FROM emp WHEN VALID AT 300")
	if err != nil {
		t.Fatalf("ExplainSelect: %v", err)
	}
	if exp.Plan == nil || exp.Plan.Kind == "" {
		t.Fatalf("ExplainSelect returned an empty plan: %+v", exp)
	}
	// The metrics expose the recovery: records were replayed on boot.
	met, err := cli2.Metrics(ctx)
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	if met.WAL == nil {
		t.Fatal("Metrics.WAL missing with durability enabled")
	}
	if met.WAL.ReplayedRecords == 0 {
		t.Fatal("Metrics.WAL.ReplayedRecords = 0, want the post-snapshot records")
	}
	if met.WAL.LastReplayUS <= 0 {
		t.Fatalf("Metrics.WAL.LastReplayUS = %d, want > 0", met.WAL.LastReplayUS)
	}
	// New writes are accepted and durable after recovery.
	if _, err := cli2.Insert(ctx, "emp", insertReq(400, "ole", 52000)); err != nil {
		t.Fatalf("post-recovery Insert: %v", err)
	}
}
