package server

// Replication endpoints and gauges: the primary's WAL-shipping feed
// (segments enumeration + long-polling tail) and the role-aware
// /metrics replication section. See internal/repl for the protocol
// invariants; the handlers here only parse, bound, and map errors.

import (
	"errors"
	"net/http"
	"time"

	"repro/internal/repl"
	"repro/internal/wal"
	"repro/internal/wire"
)

// role names what this node is in a replication topology: "follower"
// when tailing a primary, "primary" when it has a WAL to ship (even
// with no followers attached yet), empty for a WAL-less standalone.
func (s *Server) role() string {
	switch {
	case s.cat.Follower():
		return "follower"
	case s.streamer != nil:
		return "primary"
	default:
		return ""
	}
}

// replicationMetrics builds the /metrics replication section, or nil
// for a WAL-less standalone node.
func (s *Server) replicationMetrics() *wire.ReplicationMetrics {
	if f := s.cfg.Follower; f != nil {
		st := f.Stats()
		out := &wire.ReplicationMetrics{
			Role:              "follower",
			Primary:           st.Primary,
			AppliedLSN:        st.AppliedLSN,
			PrimaryDurableLSN: st.PrimaryDurableLSN,
			Synced:            st.Synced,
			FramesApplied:     st.FramesApplied,
			Reconnects:        st.Reconnects,
			LeafFailures:      st.LeafFailures,
			LastError:         st.LastError,
		}
		if ms, ok := f.StalenessMs(time.Now()); ok {
			out.StalenessMs = ms
		}
		return out
	}
	if s.streamer != nil {
		st := s.streamer.Stats()
		return &wire.ReplicationMetrics{
			Role:          "primary",
			TailRequests:  st.TailRequests,
			FramesShipped: st.FramesShipped,
		}
	}
	return nil
}

// handleReplSegments enumerates the primary's retained WAL segments.
func (s *Server) handleReplSegments(*http.Request) (*response, *apiError) {
	if s.streamer == nil {
		return nil, errUnavailable("replication feed requires a write-ahead log")
	}
	return &response{body: s.streamer.Segments()}, nil
}

// handleReplTail serves one batch of the tailing feed. from_lsn is where
// to resume, max bounds the batch (capped at 4096 frames), and wait_ms
// long-polls an empty feed (capped below the request timeout so the
// poll always answers cleanly rather than tripping the handler
// timeout). An LSN below the retention horizon maps to 410 "truncated":
// the follower cannot catch up from the log and must be reseeded.
func (s *Server) handleReplTail(r *http.Request) (*response, *apiError) {
	if s.streamer == nil {
		return nil, errUnavailable("replication feed requires a write-ahead log")
	}
	params := r.URL.Query()
	from, aerr := parseInt64Param(params.Get("from_lsn"), "from_lsn")
	if aerr != nil {
		return nil, aerr
	}
	if from < 0 {
		return nil, errBadRequest("bad from_lsn %d", from)
	}
	max, aerr := parseInt64Param(params.Get("max"), "max")
	if aerr != nil {
		return nil, aerr
	}
	if max <= 0 || max > 4096 {
		max = 4096
	}
	waitMS, aerr := parseInt64Param(params.Get("wait_ms"), "wait_ms")
	if aerr != nil {
		return nil, aerr
	}
	wait := time.Duration(waitMS) * time.Millisecond
	if lim := s.cfg.RequestTimeout / 2; wait > lim {
		wait = lim
	}
	resp, err := s.streamer.Tail(r.Context(), uint64(from), int(max), wait)
	switch {
	case err == nil:
	case repl.IsTruncated(err):
		return nil, &apiError{http.StatusGone, wire.CodeTruncated, err.Error()}
	case errors.Is(err, wal.ErrClosed):
		return nil, errUnavailable("%s", err.Error())
	default:
		return nil, &apiError{http.StatusInternalServerError, wire.CodeInternal, err.Error()}
	}
	nframes := len(resp.Frames)
	return &response{body: resp, touched: nframes}, nil
}
