package server

// Admission control: the server's overload valve. Every endpoint is
// assigned a class (read, write, admin) and each class owns a gate — a
// fixed number of execution slots plus a bounded, deadline-aware wait
// queue. A request that finds a free slot proceeds immediately; one that
// finds the queue full is shed on arrival with 429 ("overloaded"); one
// that waits past its deadline budget or the class's maximum queue wait
// is shed with 503 ("unavailable"). Shedding early and loudly is the
// point: under sustained overload the server keeps serving at its
// configured capacity instead of collapsing under unbounded queues, and
// clients get a typed, retryable signal with a Retry-After hint.
//
// Probes (/healthz, /readyz, /metrics) bypass admission entirely — an
// overloaded server must still answer "I am overloaded".

import (
	"context"
	"math/bits"
	"sync"
	"time"

	"repro/internal/wire"
)

// AdmissionClass buckets endpoints by the resource they contend for.
type AdmissionClass int

const (
	// ClassRead covers queries: info, list, query, select, explain,
	// classify. They take the shared relation lock.
	ClassRead AdmissionClass = iota
	// ClassWrite covers mutations: create, declare, insert, delete,
	// modify. They take the exclusive relation lock and the WAL.
	ClassWrite
	// ClassAdmin covers snapshot — rare, long-held, whole-catalog work.
	ClassAdmin
	numClasses
)

// String returns the class's metrics key.
func (c AdmissionClass) String() string {
	switch c {
	case ClassRead:
		return "read"
	case ClassWrite:
		return "write"
	case ClassAdmin:
		return "admin"
	}
	return "unknown"
}

// ClassLimit configures one admission class.
type ClassLimit struct {
	// Limit is the number of requests of this class that may execute
	// concurrently. <= 0 takes the class default.
	Limit int
	// Queue bounds how many requests may wait for a slot; arrivals
	// beyond it are shed immediately with "overloaded". <= 0 takes the
	// class default.
	Queue int
	// MaxWait bounds how long one request may wait queued before it is
	// shed with "unavailable". The request's own context deadline still
	// applies when sooner. <= 0 takes the class default.
	MaxWait time.Duration
}

// AdmissionConfig configures the server's admission controller.
type AdmissionConfig struct {
	Read  ClassLimit
	Write ClassLimit
	Admin ClassLimit
	// Disabled turns admission off entirely (no limits, no queue
	// accounting); the deadline-budget header still applies.
	Disabled bool
}

func withDefaults(l ClassLimit, def ClassLimit) ClassLimit {
	if l.Limit <= 0 {
		l.Limit = def.Limit
	}
	if l.Queue <= 0 {
		l.Queue = def.Queue
	}
	if l.MaxWait <= 0 {
		l.MaxWait = def.MaxWait
	}
	return l
}

// Class defaults: reads are cheap and parallel, writes serialize on the
// relation lock and the WAL, admin work is heavyweight and rare.
var classDefaults = [numClasses]ClassLimit{
	ClassRead:  {Limit: 64, Queue: 256, MaxWait: time.Second},
	ClassWrite: {Limit: 16, Queue: 128, MaxWait: time.Second},
	ClassAdmin: {Limit: 2, Queue: 8, MaxWait: 5 * time.Second},
}

// shedCause distinguishes why a request was not admitted.
type shedCause int

const (
	shedQueueFull shedCause = iota // bounced on arrival
	shedWait                       // max queue wait expired
	shedCanceled                   // caller context done while queued
)

// gate is one class's weighted semaphore plus its accounting: a token
// pool of Limit slots and a FIFO wait queue. A plain request costs one
// token; a batch request costs its admission weight (wrapOpts.weight),
// so a 1,000-element batch occupies the write class like the ~N single
// inserts it replaces rather than slipping in as one. Grants are strictly
// FIFO — a wide batch at the head of the queue blocks later narrow
// requests instead of starving behind them.
type gate struct {
	limit    int
	maxWait  time.Duration
	queueCap int

	mu        sync.Mutex
	avail     int       // free tokens
	waiters   []*waiter // FIFO wait queue
	admitted  uint64
	sheds     [3]uint64 // by shedCause
	maxQueued int
	// waitHist buckets observed queue waits by power-of-two microseconds
	// (bucket i covers [2^i, 2^(i+1)) µs; bucket 0 covers [0, 2) µs).
	waitHist [32]uint64
}

// waiter is one queued acquisition. granted flips under the gate mutex
// before ready closes, so a waiter that raced its own timeout can tell a
// grant it must keep from a shed it must count.
type waiter struct {
	n       int
	ready   chan struct{}
	granted bool
}

func newGate(l ClassLimit) *gate {
	return &gate{
		limit:    l.Limit,
		avail:    l.Limit,
		maxWait:  l.MaxWait,
		queueCap: l.Queue,
	}
}

// clamp bounds a request weight to [1, limit] so an oversized batch can
// always eventually be admitted (it just takes the whole class).
func (g *gate) clamp(n int) int {
	if n < 1 {
		return 1
	}
	if n > g.limit {
		return g.limit
	}
	return n
}

// acquire admits a weight-1 request. On admission the caller must
// release().
func (g *gate) acquire(ctx context.Context) (ok bool, cause shedCause) {
	return g.acquireN(ctx, 1)
}

// acquireN admits a request of weight n (clamped to the class limit) or
// reports the shed cause. On admission the caller must releaseN(n).
func (g *gate) acquireN(ctx context.Context, n int) (ok bool, cause shedCause) {
	n = g.clamp(n)
	g.mu.Lock()
	// Fast path: tokens free and nobody queued ahead (FIFO).
	if len(g.waiters) == 0 && g.avail >= n {
		g.avail -= n
		g.admitted++
		g.waitHist[0]++
		g.mu.Unlock()
		return true, 0
	}
	if len(g.waiters) >= g.queueCap {
		g.sheds[shedQueueFull]++
		g.mu.Unlock()
		return false, shedQueueFull
	}
	w := &waiter{n: n, ready: make(chan struct{})}
	g.waiters = append(g.waiters, w)
	if len(g.waiters) > g.maxQueued {
		g.maxQueued = len(g.waiters)
	}
	g.mu.Unlock()

	start := time.Now()
	timer := time.NewTimer(g.maxWait)
	defer timer.Stop()
	select {
	case <-w.ready:
		g.mu.Lock()
		g.admitted++
		g.waitHist[histBucket(time.Since(start))]++
		g.mu.Unlock()
		return true, 0
	case <-ctx.Done():
		cause = shedCanceled
	case <-timer.C:
		cause = shedWait
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if w.granted {
		// The grant won the race against the timeout; keep it — the
		// handler runs against the (possibly canceled) context and fails
		// fast, releasing the tokens on the way out.
		g.admitted++
		g.waitHist[histBucket(time.Since(start))]++
		return true, 0
	}
	for i, q := range g.waiters {
		if q == w {
			g.waiters = append(g.waiters[:i], g.waiters[i+1:]...)
			break
		}
	}
	// Removing a wide head waiter may unblock the narrower ones behind it.
	g.grantLocked()
	g.sheds[cause]++
	return false, cause
}

func (g *gate) release() { g.releaseN(1) }

// releaseN returns n tokens and grants queued waiters in FIFO order.
func (g *gate) releaseN(n int) {
	n = g.clamp(n)
	g.mu.Lock()
	g.avail += n
	if g.avail > g.limit {
		g.avail = g.limit
	}
	g.grantLocked()
	g.mu.Unlock()
}

// grantLocked hands tokens to the queue head while it fits. Caller holds
// the mutex.
func (g *gate) grantLocked() {
	for len(g.waiters) > 0 {
		w := g.waiters[0]
		if g.avail < w.n {
			return
		}
		g.avail -= w.n
		w.granted = true
		close(w.ready)
		g.waiters = g.waiters[1:]
	}
}

// histBucket maps a wait to its power-of-two microsecond bucket.
func histBucket(d time.Duration) int {
	us := d.Microseconds()
	if us < 2 {
		return 0
	}
	b := bits.Len64(uint64(us)) - 1
	if b > 31 {
		b = 31
	}
	return b
}

// quantile returns the upper bound (µs) of the smallest bucket at which
// the cumulative count reaches q of the total — an upper estimate of the
// q-quantile wait, exact to a factor of two.
func quantile(hist *[32]uint64, q float64) int64 {
	var total uint64
	for _, n := range hist {
		total += n
	}
	if total == 0 {
		return 0
	}
	want := uint64(float64(total) * q)
	if want < 1 {
		want = 1
	}
	var cum uint64
	for i, n := range hist {
		cum += n
		if cum >= want {
			return int64(1) << (i + 1) // bucket upper bound in µs
		}
	}
	return int64(1) << 32
}

// admission is the per-server controller: one gate per class.
type admission struct {
	disabled bool
	gates    [numClasses]*gate
}

func newAdmission(cfg AdmissionConfig) *admission {
	a := &admission{disabled: cfg.Disabled}
	for c, l := range map[AdmissionClass]ClassLimit{
		ClassRead:  cfg.Read,
		ClassWrite: cfg.Write,
		ClassAdmin: cfg.Admin,
	} {
		a.gates[c] = newGate(withDefaults(l, classDefaults[c]))
	}
	return a
}

// saturated reports the classes whose wait queue is at capacity — the
// readiness signal: new traffic of that class will be shed on arrival.
func (a *admission) saturated() []string {
	if a == nil || a.disabled {
		return nil
	}
	var out []string
	for c := AdmissionClass(0); c < numClasses; c++ {
		g := a.gates[c]
		g.mu.Lock()
		full := len(g.waiters) >= g.queueCap
		g.mu.Unlock()
		if full {
			out = append(out, c.String())
		}
	}
	return out
}

// report renders the controller for /metrics.
func (a *admission) report() map[string]wire.ClassAdmissionMetrics {
	if a == nil || a.disabled {
		return nil
	}
	out := make(map[string]wire.ClassAdmissionMetrics, numClasses)
	for c := AdmissionClass(0); c < numClasses; c++ {
		g := a.gates[c]
		g.mu.Lock()
		m := wire.ClassAdmissionMetrics{
			Limit:         g.limit,
			Inflight:      g.limit - g.avail,
			Admitted:      g.admitted,
			ShedOverload:  g.sheds[shedQueueFull],
			ShedTimeout:   g.sheds[shedWait],
			ShedCanceled:  g.sheds[shedCanceled],
			QueueDepth:    len(g.waiters),
			MaxQueueDepth: g.maxQueued,
			WaitP50US:     quantile(&g.waitHist, 0.50),
			WaitP95US:     quantile(&g.waitHist, 0.95),
			WaitP99US:     quantile(&g.waitHist, 0.99),
		}
		g.mu.Unlock()
		out[c.String()] = m
	}
	return out
}
