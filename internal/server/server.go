// Package server exposes the temporal-specialization engine over HTTP/JSON
// — the network face of tsdbd. It speaks the wire vocabulary of
// internal/wire, resolves relations through the concurrent catalog
// (internal/catalog), and ships the robustness a traffic-bearing surface
// needs: per-request timeouts, a request body size cap, structured error
// responses, panic containment, and a /metrics endpoint with per-endpoint
// request counts, latency summaries, and the storage layer's
// elements-touched accounting.
//
// Endpoints (all JSON):
//
//	GET  /healthz                            liveness probe (ok/degraded/draining)
//	GET  /readyz                             readiness probe (admission + WAL health)
//	GET  /metrics                            request metrics
//	GET  /v1/relations                       list relations
//	POST /v1/relations                       create a relation
//	GET  /v1/relations/{name}                schema, declarations, advice
//	POST /v1/relations/{name}/declare        attach specializations
//	POST /v1/relations/{name}/insert         insert transaction
//	POST /v1/relations/{name}/elements:batch batched insert (one WAL frame, one epoch)
//	POST /v1/ingest/csv                      streaming CSV bulk load (?relation=...)
//	POST /v1/relations/{name}/delete         logical-delete transaction
//	POST /v1/relations/{name}/modify         modify transaction
//	POST /v1/relations/{name}/query          current/timeslice/rollback/asof
//	GET  /v1/relations/{name}/classify       infer specializations
//	GET  /v1/relations/{name}/explain        plan a query without running it
//	POST /v1/select                          raw tsql SELECT (or EXPLAIN SELECT)
//	GET  /v1/relations/{name}/select         cacheable SELECT (?query=..., epoch ETag)
//	POST /v1/snapshot                        flush dirty relations to disk
//	GET  /v1/relations/{name}/integrity      Merkle tree size + signed root
//	GET  /v1/relations/{name}/integrity/proof        inclusion proof (?index=I)
//	GET  /v1/relations/{name}/integrity/consistency  append-only proof (?from=M)
//	POST /v1/relations/{name}/verify         synchronous scrub + repair
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/chronon"
	"repro/internal/core"
	"repro/internal/element"
	"repro/internal/integrity"
	"repro/internal/plan"
	"repro/internal/qcache"
	"repro/internal/relation"
	"repro/internal/repl"
	"repro/internal/surrogate"
	"repro/internal/tsql"
	"repro/internal/wire"
)

// Config parameterizes a server.
type Config struct {
	// Catalog is the relation catalog to serve. Required.
	Catalog *catalog.Catalog
	// RequestTimeout bounds one request's handling; 0 means 15s.
	RequestTimeout time.Duration
	// MaxBodyBytes caps a request body; 0 means 1 MiB.
	MaxBodyBytes int64
	// IngestMaxBytes caps the streaming CSV ingest body, which is a bulk
	// load by construction and must not sit under the JSON cap; 0 means
	// 1 GiB.
	IngestMaxBytes int64
	// Admission configures the per-class overload valve (admission.go).
	// The zero value enables it with the class defaults.
	Admission AdmissionConfig
	// Follower, when set, marks this server as a read-only replica: every
	// response carries the X-Tsdbd-Staleness-Ms bound once the follower
	// has synced, /readyz stays not-ready until that first sync, and
	// /metrics reports the applying side of replication.
	Follower *repl.Follower
	// ScrubInterval paces the background integrity scrubber (one full
	// pass per interval, started by RunScrubber); 0 disables it.
	ScrubInterval time.Duration
	// ScrubRate caps scrub read bandwidth in bytes/sec; 0 is unlimited.
	ScrubRate int64
}

// Server is the HTTP face of a catalog.
type Server struct {
	cat     *catalog.Catalog
	metrics *Metrics
	cfg     Config
	handler http.Handler
	adm     *admission
	// streamer serves the WAL-shipping replication feed; nil without a WAL.
	streamer *repl.Streamer
	// scrubber walks sealed artifacts against their checksums; nil when
	// the catalog runs with integrity tracking disabled.
	scrubber *integrity.Scrubber
	// draining flips once at the start of graceful shutdown: in-flight
	// requests complete, new non-probe requests get a clean "unavailable".
	draining atomic.Bool
	// CSV-ingest flush-reason counters (ingest.go): batches flushed on
	// the size cap, the time cap, and end of stream.
	ingFlushSize atomic.Uint64
	ingFlushTime atomic.Uint64
	ingFlushEOF  atomic.Uint64
}

// New builds a server over the catalog.
func New(cfg Config) *Server {
	if cfg.Catalog == nil {
		panic("server: nil catalog")
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 15 * time.Second
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.IngestMaxBytes <= 0 {
		cfg.IngestMaxBytes = 1 << 30
	}
	s := &Server{cat: cfg.Catalog, metrics: NewMetrics(), cfg: cfg}
	s.adm = newAdmission(cfg.Admission)
	if w := cfg.Catalog.WAL(); w != nil {
		s.streamer = repl.NewStreamer(w)
	}
	if cfg.Catalog.IntegrityEnabled() {
		s.scrubber = cfg.Catalog.NewScrubber(cfg.ScrubRate)
	}

	// classProbe marks endpoints that bypass admission and draining: an
	// overloaded or shutting-down server must still answer probes.
	const classProbe = AdmissionClass(-1)

	mux := http.NewServeMux()
	mux.Handle("GET /healthz", s.wrap("health", classProbe, s.handleHealth))
	mux.Handle("GET /readyz", s.wrap("ready", classProbe, s.handleReady))
	mux.Handle("GET /metrics", s.wrap("metrics", classProbe, s.handleMetrics))
	mux.Handle("GET /v1/relations", s.wrap("list", ClassRead, s.handleList))
	mux.Handle("POST /v1/relations", s.wrap("create", ClassWrite, s.handleCreate))
	mux.Handle("GET /v1/relations/{name}", s.wrap("info", ClassRead, s.handleInfo))
	mux.Handle("POST /v1/relations/{name}/declare", s.wrap("declare", ClassWrite, s.handleDeclare))
	mux.Handle("POST /v1/relations/{name}/insert", s.wrap("insert", ClassWrite, s.handleInsert))
	mux.Handle("POST /v1/relations/{name}/elements:batch",
		s.wrapOpts("insert_batch", ClassWrite, endpointOpts{weight: batchWeight}, s.handleInsertBatch))
	mux.Handle("POST /v1/ingest/csv",
		s.wrapOpts("ingest_csv", ClassWrite, endpointOpts{weight: batchWeight, bodyCap: cfg.IngestMaxBytes}, s.handleIngestCSV))
	mux.Handle("POST /v1/relations/{name}/delete", s.wrap("delete", ClassWrite, s.handleDelete))
	mux.Handle("POST /v1/relations/{name}/modify", s.wrap("modify", ClassWrite, s.handleModify))
	mux.Handle("POST /v1/relations/{name}/query", s.wrap("query", ClassRead, s.handleQuery))
	mux.Handle("GET /v1/relations/{name}/query", s.wrap("query", ClassRead, s.handleQueryGet))
	mux.Handle("GET /v1/relations/{name}/classify", s.wrap("classify", ClassRead, s.handleClassify))
	mux.Handle("GET /v1/relations/{name}/explain", s.wrap("explain", ClassRead, s.handleExplain))
	mux.Handle("POST /v1/select", s.wrap("select", ClassRead, s.handleSelect))
	mux.Handle("GET /v1/relations/{name}/select", s.wrap("select", ClassRead, s.handleSelectGet))
	mux.Handle("POST /v1/snapshot", s.wrap("snapshot", ClassAdmin, s.handleSnapshot))
	mux.Handle("GET /v1/relations/{name}/integrity", s.wrap("integrity", ClassRead, s.handleIntegrity))
	mux.Handle("GET /v1/relations/{name}/integrity/proof", s.wrap("integrity_proof", ClassRead, s.handleIntegrityProof))
	mux.Handle("GET /v1/relations/{name}/integrity/consistency", s.wrap("integrity_consistency", ClassRead, s.handleIntegrityConsistency))
	mux.Handle("POST /v1/relations/{name}/verify", s.wrap("verify", ClassAdmin, s.handleVerify))
	// Replication is infrastructure traffic: a follower must keep catching
	// up while the primary sheds client load or drains for shutdown, so
	// the feed rides the probe class.
	mux.Handle("GET /v1/repl/segments", s.wrap("repl_segments", classProbe, s.handleReplSegments))
	mux.Handle("GET /v1/repl/tail", s.wrap("repl_tail", classProbe, s.handleReplTail))
	mux.Handle("/", s.wrap("unknown", classProbe, func(*http.Request) (*response, *apiError) {
		return nil, errNotFound("no such endpoint")
	}))

	timeoutBody, _ := json.Marshal(wire.ErrorBody{Error: wire.ErrorDetail{
		Code: wire.CodeInternal, Message: "request timed out",
	}})
	s.handler = http.TimeoutHandler(mux, cfg.RequestTimeout, string(timeoutBody))
	return s
}

// Handler returns the fully wrapped HTTP handler.
func (s *Server) Handler() http.Handler { return s.handler }

// Metrics exposes the server's metrics registry.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Drain flips the server into graceful-shutdown mode: requests already
// executing run to completion, while every new non-probe request is
// refused with a typed "unavailable" (503 + Retry-After) instead of a
// hung or reset connection. Call it before http.Server.Shutdown so the
// listener keeps accepting long enough to answer cleanly.
func (s *Server) Drain() { s.draining.Store(true) }

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// response is a handler's successful answer.
type response struct {
	status  int // 0 means 200
	body    any
	touched int // elements-touched accounting for metrics
	// etag, when set, is the response's cache validator (the relation's
	// mutation epoch). A status of 304 sends it with no body.
	etag string
}

// apiError is a handler failure with its HTTP mapping.
type apiError struct {
	status  int
	code    string
	message string
}

func (e *apiError) Error() string { return e.message }

func errBadRequest(format string, args ...any) *apiError {
	return &apiError{http.StatusBadRequest, wire.CodeBadRequest, fmt.Sprintf(format, args...)}
}
func errNotFound(format string, args ...any) *apiError {
	return &apiError{http.StatusNotFound, wire.CodeNotFound, fmt.Sprintf(format, args...)}
}
func errUnavailable(format string, args ...any) *apiError {
	return &apiError{http.StatusServiceUnavailable, wire.CodeUnavailable, fmt.Sprintf(format, args...)}
}
func errOverloaded(format string, args ...any) *apiError {
	return &apiError{http.StatusTooManyRequests, wire.CodeOverloaded, fmt.Sprintf(format, args...)}
}

// mapError classifies an engine or catalog error into its HTTP form.
// Transactions rejected by a declared specialization are a normal outcome
// under enforcement — they map to 409 with the distinct "rejected" code so
// clients can tell a violation from a concurrency conflict. A poisoned
// WAL maps to 503 "read_only" (mutations are refused until restart), and
// a caller whose deadline expired mid-request gets 503 "unavailable".
func mapError(err error) *apiError {
	switch {
	case errors.Is(err, catalog.ErrReadOnly):
		return &apiError{http.StatusServiceUnavailable, wire.CodeReadOnly, err.Error()}
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return errUnavailable("request abandoned: %s", err.Error())
	case errors.Is(err, catalog.ErrNotFound), errors.Is(err, relation.ErrNoSuchElement):
		return &apiError{http.StatusNotFound, wire.CodeNotFound, err.Error()}
	case errors.Is(err, catalog.ErrExists), errors.Is(err, relation.ErrAlreadyDeleted),
		errors.Is(err, catalog.ErrIdemReuse):
		return &apiError{http.StatusConflict, wire.CodeConflict, err.Error()}
	case errors.Is(err, catalog.ErrBadName), errors.Is(err, relation.ErrWrongStampKind):
		return &apiError{http.StatusBadRequest, wire.CodeBadRequest, err.Error()}
	case strings.Contains(err.Error(), "rejected"),
		strings.Contains(err.Error(), "violates declaration"):
		return &apiError{http.StatusConflict, wire.CodeRejected, err.Error()}
	default:
		return errBadRequest("%s", err.Error())
	}
}

// endpointOpts tunes wrap for endpoints outside the common envelope:
// batch mutations weight their admission by request size, and the CSV
// ingest stream carries a far larger body cap than JSON endpoints.
type endpointOpts struct {
	// weight derives the request's admission weight; nil means 1.
	weight func(*http.Request) int
	// bodyCap overrides Config.MaxBodyBytes for this endpoint; 0 keeps it.
	bodyCap int64
}

// batchWeight estimates a batch request's admission weight from its
// declared body size, before any decoding: roughly one write slot per
// 2 KiB of payload (a handful of JSON-encoded elements), clamped by the
// gate to the class limit. Chunked uploads (unknown length) are assumed
// wide — they are bulk loads by construction.
func batchWeight(r *http.Request) int {
	if r.ContentLength < 0 {
		return 8
	}
	return 1 + int(r.ContentLength/2048)
}

// wrap adds the per-endpoint envelope: the client's deadline budget, the
// draining check, class admission, body size cap, JSON rendering, panic
// containment, and metrics accounting. Probe endpoints (class < 0) skip
// draining and admission so the server can always describe its own state.
func (s *Server) wrap(name string, class AdmissionClass, fn func(*http.Request) (*response, *apiError)) http.Handler {
	return s.wrapOpts(name, class, endpointOpts{}, fn)
}

// wrapOpts is wrap with per-endpoint overrides.
func (s *Server) wrapOpts(name string, class AdmissionClass, o endpointOpts, fn func(*http.Request) (*response, *apiError)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		bodyCap := s.cfg.MaxBodyBytes
		if o.bodyCap > 0 {
			bodyCap = o.bodyCap
		}
		r.Body = http.MaxBytesReader(w, r.Body, bodyCap)

		// A client-sent deadline budget shrinks the request context, so
		// catalog scans stop once the caller has given up waiting.
		if ms, ok := deadlineBudget(r); ok {
			ctx, cancel := context.WithTimeout(r.Context(), time.Duration(ms)*time.Millisecond)
			defer cancel()
			r = r.WithContext(ctx)
		}

		var aerr *apiError
		var res *response
		switch {
		case class >= 0 && s.draining.Load():
			aerr = errUnavailable("server is draining")
		case class >= 0 && !s.adm.disabled:
			g := s.adm.gates[class]
			weight := 1
			if o.weight != nil {
				weight = o.weight(r)
			}
			ok, cause := g.acquireN(r.Context(), weight)
			if !ok {
				switch cause {
				case shedQueueFull:
					aerr = errOverloaded("%s admission queue full", class)
				case shedCanceled:
					aerr = errUnavailable("deadline expired in %s admission queue", class)
				default:
					aerr = errUnavailable("%s admission wait exceeded %s", class, g.maxWait)
				}
				break
			}
			defer g.releaseN(weight)
			fallthrough
		default:
			res, aerr = func() (res *response, aerr *apiError) {
				defer func() {
					if p := recover(); p != nil {
						res = nil
						aerr = &apiError{http.StatusInternalServerError, wire.CodeInternal,
							fmt.Sprintf("internal error: %v", p)}
					}
				}()
				return fn(r)
			}()
		}
		touched := 0
		if res != nil {
			touched = res.touched
		}
		// A follower stamps its staleness bound on every response (success
		// or error) once it has synced; before the first catch-up no bound
		// exists, so no header is sent and routers treat the node as
		// unboundedly stale.
		if f := s.cfg.Follower; f != nil {
			if ms, ok := f.StalenessMs(time.Now()); ok {
				w.Header().Set(wire.HeaderStaleness, strconv.FormatInt(ms, 10))
			}
		}
		if aerr != nil {
			// Shed and degraded responses are retryable after a pause; say so.
			if aerr.status == http.StatusTooManyRequests || aerr.status == http.StatusServiceUnavailable {
				w.Header().Set(wire.HeaderRetryAfter, "1")
			}
			writeJSON(w, aerr.status, wire.ErrorBody{Error: wire.ErrorDetail{
				Code: aerr.code, Message: aerr.message,
			}})
		} else {
			status := res.status
			if status == 0 {
				status = http.StatusOK
			}
			if res.etag != "" {
				w.Header().Set(wire.HeaderETag, res.etag)
			}
			if status == http.StatusNotModified {
				w.WriteHeader(status)
			} else {
				writeJSON(w, status, res.body)
			}
		}
		s.metrics.Record(name, time.Since(start), touched, aerr != nil)
	})
}

// deadlineBudget parses the client's remaining-budget header.
func deadlineBudget(r *http.Request) (int64, bool) {
	h := r.Header.Get(wire.HeaderDeadline)
	if h == "" {
		return 0, false
	}
	ms, err := strconv.ParseInt(h, 10, 64)
	if err != nil || ms <= 0 {
		return 0, false
	}
	return ms, true
}

// idemKey extracts a mutation's idempotency key (empty when absent).
func idemKey(r *http.Request) string {
	return r.Header.Get(wire.HeaderIdempotencyKey)
}

// writeJSON renders the body through a pooled buffer, so the hot read path
// allocates no per-request encoder scratch and every response carries an
// exact Content-Length.
func writeJSON(w http.ResponseWriter, status int, body any) {
	buf := wire.GetBuffer()
	defer wire.PutBuffer(buf)
	if err := json.NewEncoder(buf).Encode(body); err != nil {
		http.Error(w, `{"error":{"code":"internal","message":"response encoding failed"}}`,
			http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
}

// queryETag renders a relation's mutation epoch as an HTTP validator.
func queryETag(name string, epoch uint64) string {
	return `"` + name + `-` + strconv.FormatUint(epoch, 10) + `"`
}

// etagMatch implements the If-None-Match comparison: a wildcard or any
// listed validator equal to the current one.
func etagMatch(header, etag string) bool {
	if header == "*" {
		return true
	}
	for _, part := range strings.Split(header, ",") {
		if strings.TrimSpace(part) == etag {
			return true
		}
	}
	return false
}

// decode reads a JSON request body, mapping oversized bodies to 413 and
// malformed ones to 400. Unknown fields are rejected so client typos fail
// loudly instead of silently dropping options.
func decode(r *http.Request, into any) *apiError {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			return &apiError{http.StatusRequestEntityTooLarge, wire.CodeTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", maxErr.Limit)}
		}
		if errors.Is(err, io.EOF) {
			return errBadRequest("empty request body")
		}
		return errBadRequest("malformed request body: %v", err)
	}
	return nil
}

func (s *Server) entry(r *http.Request) (*catalog.Entry, *apiError) {
	name := r.PathValue("name")
	e, err := s.cat.Get(name)
	if err != nil {
		return nil, mapError(err)
	}
	return e, nil
}

// handleHealth reports actual liveness state, not an unconditional OK:
// "draining" once graceful shutdown began, "degraded" while the WAL is
// poisoned (reads serve, mutations refused), "ok" otherwise. The original
// fields keep their shape; the state fields are additive and omitted when
// healthy.
func (s *Server) handleHealth(*http.Request) (*response, *apiError) {
	out := wire.HealthResponse{
		Status:        "ok",
		Relations:     s.cat.Len(),
		UptimeSeconds: int64(time.Since(s.metrics.start) / time.Second),
		Role:          s.role(),
	}
	if err := s.cat.Degraded(); err != nil {
		out.Status = "degraded"
		out.ReadOnly = true
		out.WAL = err.Error()
	}
	if s.cat.Follower() {
		// Read-only by design, not degraded: the follower is healthy while
		// it serves reads and tails the primary.
		out.ReadOnly = true
	}
	if s.draining.Load() {
		out.Status = "draining"
		out.Draining = true
	}
	return &response{body: out}, nil
}

// handleReady is the readiness probe: 200 while the server should keep
// receiving traffic, 503 (with reasons) when it should be rotated out —
// draining, WAL poisoned, or an admission queue saturated.
func (s *Server) handleReady(*http.Request) (*response, *apiError) {
	out := wire.ReadyResponse{Ready: true, Status: "ok"}
	if err := s.cat.Degraded(); err != nil {
		out.Ready = false
		out.Status = "degraded"
		out.Reasons = append(out.Reasons, err.Error())
	}
	// A follower that has never caught up would serve arbitrarily stale
	// reads with no staleness bound; keep it out of rotation until its
	// first sync. After that it stays ready even through reconnects — the
	// staleness header tells clients how stale is stale.
	if f := s.cfg.Follower; f != nil && !f.Stats().Synced {
		out.Ready = false
		out.Status = "syncing"
		out.Reasons = append(out.Reasons, "follower has not completed its first catch-up")
	}
	if sat := s.adm.saturated(); len(sat) > 0 {
		out.Ready = false
		if out.Status == "ok" {
			out.Status = "saturated"
		}
		for _, c := range sat {
			out.Reasons = append(out.Reasons, fmt.Sprintf("%s admission queue saturated", c))
		}
	}
	if s.draining.Load() {
		out.Ready = false
		out.Status = "draining"
		out.Reasons = append(out.Reasons, "server is draining")
	}
	status := http.StatusOK
	if !out.Ready {
		status = http.StatusServiceUnavailable
	}
	return &response{status: status, body: out}, nil
}

func (s *Server) handleMetrics(*http.Request) (*response, *apiError) {
	rep := s.metrics.Report()
	if w := s.cat.WAL(); w != nil {
		st := w.Stats()
		rep.WAL = &wire.WALMetrics{
			AppendedRecords:   st.Appended,
			Fsyncs:            st.Fsyncs,
			MeanBatch:         st.MeanBatch(),
			MaxBatch:          st.MaxBatch,
			ReplayedRecords:   st.Replayed,
			LastReplayUS:      st.ReplayDuration.Microseconds(),
			Segments:          st.Segments,
			LastLSN:           st.LastLSN,
			DurableLSN:        st.DurableLSN,
			TruncatedSegments: st.TruncatedSegments,
			VerifyFailures:    st.VerifyFailures,
		}
	}
	rep.Admission = s.adm.report()
	if err := s.cat.Degraded(); err != nil {
		rep.Degraded = &wire.DegradedMetrics{ReadOnly: true, Cause: err.Error()}
	}
	rep.Replication = s.replicationMetrics()
	rep.Integrity = s.integrityMetrics()
	var batch wire.BatchMetrics
	var ing wire.IngestMetrics
	for _, name := range s.cat.Names() {
		e, err := s.cat.Get(name)
		if err != nil {
			continue
		}
		if rep.Physical == nil {
			rep.Physical = make(map[string]wire.PhysicalInfo)
		}
		pb := physicalBody(e.Physical())
		integrityProvenance(&pb, e)
		rep.Physical[name] = pb
		bs := e.BatchStats()
		batch.Batches += bs.Batches
		batch.Rows += bs.Rows
		batch.ColumnarPicks += bs.ColumnarPicks
		batch.RowPicks += bs.RowPicks
		is := e.IngestStats()
		ing.Batches += is.Batches
		ing.BatchedElements += is.Elements
	}
	if batch.ColumnarPicks > 0 || batch.RowPicks > 0 {
		if batch.Batches > 0 {
			batch.MeanRowsPerBatch = float64(batch.Rows) / float64(batch.Batches)
		}
		rep.Batch = &batch
	}
	ing.FlushSize = s.ingFlushSize.Load()
	ing.FlushTime = s.ingFlushTime.Load()
	ing.FlushEOF = s.ingFlushEOF.Load()
	if ing.Batches > 0 {
		ing.MeanBatch = float64(ing.BatchedElements) / float64(ing.Batches)
		rep.Ingest = &ing
	}
	if c := s.cat.Cache(); c != nil {
		st := c.Stats()
		rep.QueryCache = &wire.QueryCacheMetrics{
			Hits:      st.Hits,
			Misses:    st.Misses,
			Evictions: st.Evictions,
			Entries:   st.Entries,
			Bytes:     st.Bytes,
			Capacity:  st.Capacity,
		}
	}
	return &response{body: rep}, nil
}

func (s *Server) handleList(*http.Request) (*response, *apiError) {
	out := wire.ListResponse{Relations: []wire.RelationSummary{}}
	for _, name := range s.cat.Names() {
		e, err := s.cat.Get(name)
		if err != nil {
			continue
		}
		info := e.Info()
		out.Relations = append(out.Relations, wire.RelationSummary{
			Name:         name,
			ValidTime:    wire.FromSchema(info.Schema).ValidTime,
			Versions:     info.Versions,
			Declarations: len(info.Declarations),
		})
	}
	return &response{body: out}, nil
}

// classNames renders a class set for the wire.
func classNames(cs []core.Class) []string {
	if len(cs) == 0 {
		return nil
	}
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = c.String()
	}
	return out
}

// physicalBody converts a catalog physical-design snapshot for the wire.
func physicalBody(p catalog.Physical) wire.PhysicalInfo {
	out := wire.PhysicalInfo{
		Org:            p.Org.String(),
		Source:         p.Source,
		Reasons:        p.Reasons,
		Declared:       classNames(p.Declared),
		Inferred:       classNames(p.Inferred),
		Adopted:        classNames(p.Adopted),
		Migrations:     p.Migrations,
		StoreBytes:     p.StoreBytes,
		SealedRuns:     p.Compaction.Runs,
		SealedElements: p.Compaction.Sealed,
		PackedBytes:    p.Compaction.PackedBytes,
		Tracker: &wire.TrackerInfo{
			Elements:     p.Tracker.Elements,
			TTViolations: p.Tracker.TTViolations,
			VTViolations: p.Tracker.VTViolations,
			Overlaps:     p.Tracker.Overlaps,
			OffsetLo:     p.Tracker.OffsetLo,
			OffsetHi:     p.Tracker.OffsetHi,
			VTUnit:       p.Tracker.VTUnit,
		},
	}
	for _, m := range p.History {
		out.History = append(out.History, wire.MigrationInfo{
			Epoch:   m.Epoch,
			From:    m.From.String(),
			To:      m.To.String(),
			Source:  m.Source,
			Reasons: m.Reasons,
		})
	}
	return out
}

func infoBody(e *catalog.Entry) wire.RelationInfo {
	info := e.Info()
	phys := physicalBody(info.Physical)
	integrityProvenance(&phys, e)
	out := wire.RelationInfo{
		Schema:       wire.FromSchema(info.Schema),
		Versions:     info.Versions,
		Declarations: wire.FromDescriptors(info.Declarations),
		Advice: wire.Advice{
			Store:   info.Advice.Store.String(),
			Reasons: info.Advice.Reasons,
			Source:  info.Advice.Source,
		},
		Physical: &phys,
	}
	if len(info.Plans) > 0 {
		out.Plans = make(map[string]wire.PlanMetrics, len(info.Plans))
		for kind, ks := range info.Plans {
			out.Plans[kind] = wire.PlanMetrics{
				Requests: uint64(ks.Queries),
				Touched:  uint64(ks.Touched),
			}
		}
	}
	return out
}

func (s *Server) handleCreate(r *http.Request) (*response, *apiError) {
	var req wire.CreateRequest
	if aerr := decode(r, &req); aerr != nil {
		return nil, aerr
	}
	schema, err := req.Schema.ToSchema()
	if err != nil {
		return nil, errBadRequest("%s", err.Error())
	}
	e, err := s.cat.Create(schema)
	if err != nil {
		return nil, mapError(err)
	}
	return &response{status: http.StatusCreated, body: infoBody(e)}, nil
}

func (s *Server) handleInfo(r *http.Request) (*response, *apiError) {
	e, aerr := s.entry(r)
	if aerr != nil {
		return nil, aerr
	}
	return &response{body: infoBody(e)}, nil
}

func (s *Server) handleDeclare(r *http.Request) (*response, *apiError) {
	e, aerr := s.entry(r)
	if aerr != nil {
		return nil, aerr
	}
	var req wire.DeclareRequest
	if aerr := decode(r, &req); aerr != nil {
		return nil, aerr
	}
	descs, err := wire.ToDescriptors(req.Constraints)
	if err != nil {
		return nil, errBadRequest("%s", err.Error())
	}
	if err := e.Declare(descs); err != nil {
		return nil, mapError(err)
	}
	info := e.Info()
	return &response{body: wire.DeclareResponse{
		Declared:     len(descs),
		Declarations: wire.FromDescriptors(info.Declarations),
	}}, nil
}

func (s *Server) handleInsert(r *http.Request) (*response, *apiError) {
	e, aerr := s.entry(r)
	if aerr != nil {
		return nil, aerr
	}
	var req wire.InsertRequest
	if aerr := decode(r, &req); aerr != nil {
		return nil, aerr
	}
	ins, err := toInsertion(req)
	if err != nil {
		return nil, errBadRequest("%s", err.Error())
	}
	el, err := e.InsertKeyed(r.Context(), ins, idemKey(r))
	if err != nil {
		return nil, mapError(err)
	}
	return &response{
		status:  http.StatusCreated,
		body:    wire.ElementResponse{Element: wire.FromElement(el)},
		touched: 1,
	}, nil
}

func toInsertion(req wire.InsertRequest) (relation.Insertion, error) {
	vt, err := req.VT.ToTimestamp()
	if err != nil {
		return relation.Insertion{}, err
	}
	inv, err := wire.ToValues(req.Invariant)
	if err != nil {
		return relation.Insertion{}, err
	}
	vary, err := wire.ToValues(req.Varying)
	if err != nil {
		return relation.Insertion{}, err
	}
	var uts []chronon.Chronon
	for _, u := range req.UserTimes {
		uts = append(uts, chronon.Chronon(u))
	}
	return relation.Insertion{
		Object:    surrogate.Surrogate(req.Object),
		VT:        vt,
		Invariant: inv,
		Varying:   vary,
		UserTimes: uts,
	}, nil
}

func (s *Server) handleDelete(r *http.Request) (*response, *apiError) {
	e, aerr := s.entry(r)
	if aerr != nil {
		return nil, aerr
	}
	var req wire.DeleteRequest
	if aerr := decode(r, &req); aerr != nil {
		return nil, aerr
	}
	if req.ES == 0 {
		return nil, errBadRequest("missing element surrogate")
	}
	if err := e.DeleteKeyed(r.Context(), surrogate.Surrogate(req.ES), idemKey(r)); err != nil {
		return nil, mapError(err)
	}
	return &response{body: struct{}{}, touched: 1}, nil
}

func (s *Server) handleModify(r *http.Request) (*response, *apiError) {
	e, aerr := s.entry(r)
	if aerr != nil {
		return nil, aerr
	}
	var req wire.ModifyRequest
	if aerr := decode(r, &req); aerr != nil {
		return nil, aerr
	}
	if req.ES == 0 {
		return nil, errBadRequest("missing element surrogate")
	}
	vt, err := req.VT.ToTimestamp()
	if err != nil {
		return nil, errBadRequest("%s", err.Error())
	}
	vary, err := wire.ToValues(req.Varying)
	if err != nil {
		return nil, errBadRequest("%s", err.Error())
	}
	el, err := e.ModifyKeyed(r.Context(), surrogate.Surrogate(req.ES), vt, vary, idemKey(r))
	if err != nil {
		return nil, mapError(err)
	}
	return &response{body: wire.ElementResponse{Element: wire.FromElement(el)}, touched: 2}, nil
}

// runQueryKind dispatches one of the engine's query kinds against an entry.
func (s *Server) runQueryKind(ctx context.Context, e *catalog.Entry, kind string, vt, tt int64) (catalog.QueryResult, *apiError) {
	var res catalog.QueryResult
	var err error
	switch kind {
	case wire.QueryCurrent:
		res, err = e.CurrentCtx(ctx)
	case wire.QueryTimeslice:
		res, err = e.TimesliceCtx(ctx, chronon.Chronon(vt))
	case wire.QueryRollback:
		res, err = e.RollbackCtx(ctx, chronon.Chronon(tt))
	case wire.QueryAsOf:
		res, err = e.TimesliceAsOfCtx(ctx, chronon.Chronon(vt), chronon.Chronon(tt))
	default:
		return catalog.QueryResult{}, errBadRequest("unknown query kind %q (want %s|%s|%s|%s)",
			kind, wire.QueryCurrent, wire.QueryTimeslice, wire.QueryRollback, wire.QueryAsOf)
	}
	if err != nil {
		return catalog.QueryResult{}, mapError(err)
	}
	if res.Node != nil {
		s.metrics.RecordPlan(res.Node.Leaf().Kind.String(), res.Touched)
	}
	return res, nil
}

func queryResponseBody(res catalog.QueryResult) wire.QueryResponse {
	return wire.QueryResponse{
		Elements: wire.FromElements(res.Elements),
		Plan:     res.Plan,
		PlanNode: wire.FromPlanNode(res.Node),
		Touched:  res.Touched,
		Epoch:    res.Epoch,
	}
}

func (s *Server) handleQuery(r *http.Request) (*response, *apiError) {
	e, aerr := s.entry(r)
	if aerr != nil {
		return nil, aerr
	}
	var req wire.QueryRequest
	if aerr := decode(r, &req); aerr != nil {
		return nil, aerr
	}
	res, aerr := s.runQueryKind(r.Context(), e, req.Kind, req.VT, req.TT)
	if aerr != nil {
		return nil, aerr
	}
	return &response{body: queryResponseBody(res), touched: res.Touched}, nil
}

// handleQueryGet is the cache-aware form of the query endpoint: the same
// kinds as POST, addressed by query parameters so intermediaries can cache,
// with the relation's mutation epoch as the ETag validator. A client whose
// If-None-Match still names the current epoch gets 304 and no query runs.
func (s *Server) handleQueryGet(r *http.Request) (*response, *apiError) {
	e, aerr := s.entry(r)
	if aerr != nil {
		return nil, aerr
	}
	name := r.PathValue("name")
	params := r.URL.Query()
	vt, aerr := parseInt64Param(params.Get("vt"), "vt")
	if aerr != nil {
		return nil, aerr
	}
	tt, aerr := parseInt64Param(params.Get("tt"), "tt")
	if aerr != nil {
		return nil, aerr
	}
	if inm := r.Header.Get(wire.HeaderIfNoneMatch); inm != "" {
		if et := queryETag(name, e.Epoch()); etagMatch(inm, et) {
			return &response{status: http.StatusNotModified, etag: et}, nil
		}
	}
	res, aerr := s.runQueryKind(r.Context(), e, params.Get("kind"), vt, tt)
	if aerr != nil {
		return nil, aerr
	}
	return &response{
		body:    queryResponseBody(res),
		touched: res.Touched,
		etag:    queryETag(name, res.Epoch),
	}, nil
}

// parseInt64Param parses an optional integer query parameter ("" is 0).
func parseInt64Param(v, key string) (int64, *apiError) {
	if v == "" {
		return 0, nil
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, errBadRequest("bad %s %q", key, v)
	}
	return n, nil
}

// handleExplain plans a query without running it. The query is given
// either as a full statement (?query=SELECT ...) or as the engine
// vocabulary (?kind=current|timeslice|rollback|asof&vt=...&tt=...).
func (s *Server) handleExplain(r *http.Request) (*response, *apiError) {
	e, aerr := s.entry(r)
	if aerr != nil {
		return nil, aerr
	}
	name := r.PathValue("name")
	params := r.URL.Query()

	// Planning is keyed by the raw parameters and the mutation epoch: a
	// repeat EXPLAIN against an unmutated relation is served from the
	// result cache (and a client that revalidates with If-None-Match gets
	// 304 without planning at all).
	epoch := e.Epoch()
	etag := queryETag(name, epoch)
	if inm := r.Header.Get(wire.HeaderIfNoneMatch); inm != "" && etagMatch(inm, etag) {
		return &response{status: http.StatusNotModified, etag: etag}, nil
	}
	cache := s.cat.Cache()
	ckey := qcache.Key{Rel: name, Fingerprint: "explain:" + params.Encode(), Epoch: epoch}
	if v, ok := cache.Get(ckey); ok {
		return &response{body: v.(wire.ExplainResponse), etag: etag}, nil
	}

	var node *plan.Node
	var echo string
	if src := params.Get("query"); src != "" {
		q, err := tsql.Parse(src)
		if err != nil {
			return nil, errBadRequest("%s", err.Error())
		}
		if q.Rel != name {
			return nil, errBadRequest("statement queries %q, endpoint addresses %q", q.Rel, name)
		}
		node = e.Explain(q)
		echo = src
	} else {
		kind := params.Get("kind")
		vt, aerr := parseInt64Param(params.Get("vt"), "vt")
		if aerr != nil {
			return nil, aerr
		}
		tt, aerr := parseInt64Param(params.Get("tt"), "tt")
		if aerr != nil {
			return nil, aerr
		}
		var pq plan.Query
		switch kind {
		case wire.QueryCurrent:
			pq = plan.Query{Kind: plan.QCurrent}
		case wire.QueryTimeslice:
			pq = plan.Query{Kind: plan.QTimeslice, VTLo: vt, VTHi: vt + 1}
		case wire.QueryRollback:
			pq = plan.Query{Kind: plan.QRollback, TT: tt}
		case wire.QueryAsOf:
			pq = plan.Query{Kind: plan.QAsOf, VTLo: vt, TT: tt}
		default:
			return nil, errBadRequest("need ?query=... or ?kind=%s|%s|%s|%s",
				wire.QueryCurrent, wire.QueryTimeslice, wire.QueryRollback, wire.QueryAsOf)
		}
		node = e.PlanFor(pq)
		echo = fmt.Sprintf("kind=%s vt=%d tt=%d", kind, vt, tt)
	}
	advice := e.Info().Advice
	body := wire.ExplainResponse{
		Relation:    name,
		Query:       echo,
		Store:       advice.Store.String(),
		StoreSource: advice.Source,
		Plan:        wire.FromPlanNode(node),
		Rendered:    node.Render(),
	}
	cache.Put(ckey, body, int64(len(body.Query)+len(body.Rendered))+256)
	return &response{body: body, etag: etag}, nil
}

func (s *Server) handleClassify(r *http.Request) (*response, *apiError) {
	e, aerr := s.entry(r)
	if aerr != nil {
		return nil, aerr
	}
	rep, err := e.Classify()
	if err != nil {
		return nil, mapError(err)
	}
	out := wire.ClassifyResponse{Findings: []string{}, MostSpecific: []string{}}
	for _, f := range rep.Findings {
		out.Findings = append(out.Findings, f.String())
	}
	for _, f := range rep.MostSpecific() {
		out.MostSpecific = append(out.MostSpecific, f.String())
	}
	return &response{body: out, touched: e.Info().Versions}, nil
}

func (s *Server) handleSelect(r *http.Request) (*response, *apiError) {
	var req wire.SelectRequest
	if aerr := decode(r, &req); aerr != nil {
		return nil, aerr
	}
	q, err := tsql.Parse(req.Query)
	if err != nil {
		return nil, errBadRequest("%s", err.Error())
	}
	e, err := s.cat.Get(q.Rel)
	if err != nil {
		return nil, mapError(err)
	}
	if q.Explain {
		node := e.Explain(q)
		advice := e.Info().Advice
		return &response{body: wire.ExplainResponse{
			Relation:    q.Rel,
			Query:       req.Query,
			Store:       advice.Store.String(),
			StoreSource: advice.Source,
			Plan:        wire.FromPlanNode(node),
			Rendered:    node.Render(),
		}}, nil
	}
	res, node, touched, err := e.SelectCtx(r.Context(), q)
	if err != nil {
		return nil, mapError(err)
	}
	if node != nil {
		s.metrics.RecordPlan(node.Leaf().Kind.String(), touched)
	}
	return &response{body: selectBody(q, res, node, touched), touched: touched}, nil
}

// selectBody renders a SELECT result for the wire. Aggregate statements
// also report which engine executed (the plan's leaf tells: a
// ColumnarScan leaf ran batch-at-a-time, anything else ran the row fold).
func selectBody(q *tsql.Query, res *tsql.Result, node *plan.Node, touched int) wire.SelectResponse {
	rows := make([][]wire.Value, len(res.Rows))
	for i, row := range res.Rows {
		rows[i] = wire.FromValues(row)
	}
	out := wire.SelectResponse{
		Columns: res.Columns,
		Rows:    rows,
		Plan:    wire.FromPlanNode(node),
		Touched: touched,
	}
	if q.Group != nil && node != nil {
		if node.Leaf().Kind == plan.ColumnarScan {
			out.Engine = "columnar"
		} else {
			out.Engine = "row"
		}
	}
	return out
}

// handleSelectGet is the cache-aware form of SELECT: the statement rides a
// query parameter so intermediaries can cache, with the relation's mutation
// epoch as the ETag validator — the same protocol as the GET query endpoint.
// A client whose If-None-Match still names the current epoch gets 304 and no
// query runs; aggregates are the intended tenant (their results are windows,
// not elements, so they are cheap to revalidate and expensive to recompute).
func (s *Server) handleSelectGet(r *http.Request) (*response, *apiError) {
	e, aerr := s.entry(r)
	if aerr != nil {
		return nil, aerr
	}
	name := r.PathValue("name")
	src := r.URL.Query().Get("query")
	if src == "" {
		return nil, errBadRequest("need ?query=SELECT ...")
	}
	q, err := tsql.Parse(src)
	if err != nil {
		return nil, errBadRequest("%s", err.Error())
	}
	if q.Rel != name {
		return nil, errBadRequest("statement queries %q, endpoint addresses %q", q.Rel, name)
	}
	if q.Explain {
		return nil, errBadRequest("EXPLAIN is not cacheable; use the explain endpoint")
	}
	if inm := r.Header.Get(wire.HeaderIfNoneMatch); inm != "" {
		if et := queryETag(name, e.Epoch()); etagMatch(inm, et) {
			return &response{status: http.StatusNotModified, etag: et}, nil
		}
	}
	epoch := e.Epoch()
	res, node, touched, err := e.SelectCtx(r.Context(), q)
	if err != nil {
		return nil, mapError(err)
	}
	if node != nil {
		s.metrics.RecordPlan(node.Leaf().Kind.String(), touched)
	}
	return &response{
		body:    selectBody(q, res, node, touched),
		touched: touched,
		etag:    queryETag(name, epoch),
	}, nil
}

func (s *Server) handleSnapshot(*http.Request) (*response, *apiError) {
	n, err := s.cat.Snapshot()
	if err != nil {
		if errors.Is(err, catalog.ErrReadOnly) {
			return nil, mapError(err)
		}
		return nil, &apiError{http.StatusInternalServerError, wire.CodeInternal, err.Error()}
	}
	return &response{body: wire.SnapshotResponse{Saved: n}}, nil
}

// element import keeps the wire package conversions honest for interval
// relations; referenced here to make the dependency explicit.
var _ = element.EventStamp
