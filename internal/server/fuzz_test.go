package server_test

// Fuzzing the HTTP decode surface: arbitrary bytes posted at the
// transaction and query endpoints must always produce a well-formed JSON
// response with a sensible status — never a panic escaping the handler and
// never a 500 from the decode/convert path.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/catalog"
	"repro/internal/server"
	"repro/internal/tx"
	"repro/internal/wire"
)

// newFuzzHandler builds an in-memory server with one event relation to aim
// payloads at.
func newFuzzHandler(f *testing.F) http.Handler {
	f.Helper()
	cat := catalog.New(catalog.Config{
		NewClock: func() tx.Clock { return tx.NewLogicalClock(0, 10) },
	})
	srv := server.New(server.Config{Catalog: cat})
	rec := httptest.NewRecorder()
	body := `{"schema":{"name":"emp","valid_time":"event","granularity":1,` +
		`"invariant":[{"name":"name","type":"string"}],` +
		`"varying":[{"name":"salary","type":"int"}]}}`
	req := httptest.NewRequest("POST", "/v1/relations", bytes.NewReader([]byte(body)))
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusCreated {
		f.Fatalf("seeding relation: status %d: %s", rec.Code, rec.Body)
	}
	return srv.Handler()
}

// post drives one payload through the handler and applies the shared
// invariants: a valid status, JSON out, and no internal error.
func post(t *testing.T, h http.Handler, path string, payload []byte) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", path, bytes.NewReader(payload))
	h.ServeHTTP(rec, req)
	if rec.Code >= 500 {
		t.Fatalf("POST %s %q: status %d: %s", path, payload, rec.Code, rec.Body)
	}
	if !json.Valid(rec.Body.Bytes()) {
		t.Fatalf("POST %s %q: non-JSON response %q", path, payload, rec.Body)
	}
	if rec.Code >= 400 {
		var eb wire.ErrorBody
		if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil || eb.Error.Code == "" {
			t.Fatalf("POST %s %q: error response without code: %s", path, payload, rec.Body)
		}
	}
	return rec
}

func FuzzDecodeTransaction(f *testing.F) {
	h := newFuzzHandler(f)
	f.Add([]byte(`{"vt":{"event":5},"invariant":[{"kind":"string","str":"a"}],"varying":[{"kind":"int","int":1}]}`))
	f.Add([]byte(`{"vt":{"start":5,"end":9}}`))
	f.Add([]byte(`{"vt":{}}`))
	f.Add([]byte(`{"es":1}`))
	f.Add([]byte(`{"es":0,"vt":{"event":-9223372036854775808}}`))
	f.Add([]byte(`{"object":18446744073709551615,"vt":{"event":5}}`))
	f.Add([]byte(`{"vt":{"event":5},"invariant":[{"kind":"zebra"}]}`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Add([]byte(`[`))
	f.Fuzz(func(t *testing.T, payload []byte) {
		post(t, h, "/v1/relations/emp/insert", payload)
		post(t, h, "/v1/relations/emp/delete", payload)
		post(t, h, "/v1/relations/emp/modify", payload)
	})
}

func FuzzDecodeQuery(f *testing.F) {
	h := newFuzzHandler(f)
	f.Add([]byte(`{"kind":"current"}`))
	f.Add([]byte(`{"kind":"timeslice","vt":5}`))
	f.Add([]byte(`{"kind":"rollback","tt":-1}`))
	f.Add([]byte(`{"kind":"asof","vt":9223372036854775807,"tt":5}`))
	f.Add([]byte(`{"kind":"sideways"}`))
	f.Add([]byte(`{"query":"select name from emp"}`))
	f.Add([]byte(`{"query":"select ((("}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`"kind"`))
	f.Fuzz(func(t *testing.T, payload []byte) {
		post(t, h, "/v1/relations/emp/query", payload)
		post(t, h, "/v1/select", payload)
	})
}

func FuzzBatchInsertRequest(f *testing.F) {
	h := newFuzzHandler(f)
	f.Add([]byte(`{"elements":[{"vt":{"event":5},"invariant":[{"kind":"string","str":"a"}],"varying":[{"kind":"int","int":1}]}]}`))
	f.Add([]byte(`{"elements":[{"vt":{"event":5}},{"vt":{"event":9}}],"keys":["a","b"]}`))
	f.Add([]byte(`{"elements":[{"vt":{"event":5}}],"keys":["only"],"atomic":true}`))
	f.Add([]byte(`{"elements":[],"keys":[]}`))
	f.Add([]byte(`{"elements":[{"vt":{}}]}`))
	f.Add([]byte(`{"elements":[{"vt":{"start":9,"end":5}}]}`))
	f.Add([]byte(`{"keys":["orphan"]}`))
	f.Add([]byte(`{"elements":[{"vt":{"event":5}}],"keys":["a","b","c"]}`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Add([]byte(`[`))
	f.Fuzz(func(t *testing.T, payload []byte) {
		post(t, h, "/v1/relations/emp/elements:batch", payload)
	})
}
