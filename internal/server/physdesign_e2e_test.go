package server_test

// Acceptance for the closed specialization loop over the wire: a
// degenerate workload arrives undeclared, the advisor infers the class
// and migrates the live store, the new design shows up in EXPLAIN,
// /metrics, and the typed client, it survives killing and restarting
// the primary (WAL replay), and a follower booted afterwards adopts the
// same organization from the replicated frames — with zero result
// divergence at every step.

import (
	"context"
	"testing"

	"repro/client"
	"repro/internal/catalog"
	"repro/internal/storage"
)

func TestClusterE2EAutoSpecializationSurvivesRestartAndReplicates(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	purl, pcat, pstop := bootPrimary(t, dir)
	pcli := client.New(purl)

	if _, err := pcli.Create(ctx, namedSchema("mon")); err != nil {
		t.Fatalf("create: %v", err)
	}
	// Degenerate workload, never declared: vt equals the tt the logical
	// clock issues (10, 20, ...).
	const n = 32
	for j := 0; j < n; j++ {
		if _, err := pcli.Insert(ctx, "mon", insertReq(int64(10*(j+1)), "sensor", int64(j))); err != nil {
			t.Fatalf("insert %d: %v", j, err)
		}
	}

	before, err := pcli.Physical(ctx, "mon")
	if err != nil {
		t.Fatalf("Physical before: %v", err)
	}
	if before.Org == storage.VTOrdered.String() {
		t.Fatalf("org already %q before any advisor pass", before.Org)
	}
	curBefore, err := pcli.Current(ctx, "mon")
	if err != nil {
		t.Fatalf("Current before: %v", err)
	}

	// One advisor pass — what the -auto-specialize loop runs per tick.
	rep, err := pcat.AdvisePass(catalog.DefaultAdvisorConfig())
	if err != nil {
		t.Fatalf("AdvisePass: %v", err)
	}
	if len(rep.Migrations) != 1 {
		t.Fatalf("advisor migrated %d relations, want 1", len(rep.Migrations))
	}

	phys, err := pcli.Physical(ctx, "mon")
	if err != nil {
		t.Fatalf("Physical after: %v", err)
	}
	if phys.Org != storage.VTOrdered.String() || phys.Source != storage.SourceInferred {
		t.Fatalf("post-migration design %q (%q), want %q (%q)",
			phys.Org, phys.Source, storage.VTOrdered.String(), storage.SourceInferred)
	}
	if phys.Migrations != 1 || len(phys.History) != 1 {
		t.Fatalf("migrations %d, history %d; want 1 and 1", phys.Migrations, len(phys.History))
	}
	found := false
	for _, cl := range phys.Inferred {
		if cl == "degenerate" {
			found = true
		}
	}
	if !found {
		t.Fatalf("inferred classes %v lack \"degenerate\"", phys.Inferred)
	}

	// EXPLAIN carries the provenance; /metrics exposes the per-relation
	// design for scrapers.
	exp, err := pcli.ExplainSelect(ctx, "select * from mon")
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	if exp.StoreSource != storage.SourceInferred {
		t.Fatalf("EXPLAIN store source %q, want %q", exp.StoreSource, storage.SourceInferred)
	}
	met, err := pcli.Metrics(ctx)
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	if mp, ok := met.Physical["mon"]; !ok || mp.Org != storage.VTOrdered.String() {
		t.Fatalf("metrics physical[mon] = %+v (present %v)", met.Physical["mon"], ok)
	}

	curAfter, err := pcli.Current(ctx, "mon")
	if err != nil {
		t.Fatalf("Current after: %v", err)
	}
	if len(curAfter.Elements) != len(curBefore.Elements) {
		t.Fatalf("migration changed results: %d -> %d elements",
			len(curBefore.Elements), len(curAfter.Elements))
	}

	// Kill the primary and bring it back on the same directory: the
	// journaled migration must be re-adopted from WAL replay.
	pstop()
	purl2, pcat2, pstop2 := bootPrimary(t, dir)
	defer pstop2()
	pcli2 := client.New(purl2)
	phys2, err := pcli2.Physical(ctx, "mon")
	if err != nil {
		t.Fatalf("Physical after restart: %v", err)
	}
	if phys2.Org != phys.Org || phys2.Source != phys.Source || phys2.Migrations != phys.Migrations {
		t.Fatalf("restart lost the design: %q (%q) migrations %d, want %q (%q) %d",
			phys2.Org, phys2.Source, phys2.Migrations, phys.Org, phys.Source, phys.Migrations)
	}
	cur2, err := pcli2.Current(ctx, "mon")
	if err != nil {
		t.Fatalf("Current after restart: %v", err)
	}
	if len(cur2.Elements) != n {
		t.Fatalf("restarted primary serves %d elements, want %d", len(cur2.Elements), n)
	}

	// A follower booted against the restarted primary adopts the same
	// organization purely from the replicated frames.
	durable := pcat2.WAL().DurableLSN()
	f := bootFollower(t, t.TempDir(), purl2)
	defer f.stop()
	fcli := client.New(f.url)
	waitUntil(t, "follower caught up", func() bool {
		return f.fol.Stats().AppliedLSN >= durable
	})
	fphys, err := fcli.Physical(ctx, "mon")
	if err != nil {
		t.Fatalf("follower Physical: %v", err)
	}
	if fphys.Org != phys.Org || fphys.Source != phys.Source || fphys.Migrations != phys.Migrations {
		t.Fatalf("follower design %q (%q) migrations %d, want %q (%q) %d",
			fphys.Org, fphys.Source, fphys.Migrations, phys.Org, phys.Source, phys.Migrations)
	}
	fcur, err := fcli.Current(ctx, "mon")
	if err != nil {
		t.Fatalf("follower Current: %v", err)
	}
	if len(fcur.Elements) != n {
		t.Fatalf("follower serves %d elements, want %d", len(fcur.Elements), n)
	}
}
