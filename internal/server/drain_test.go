package server_test

// Graceful drain: after Drain() the listener still answers, but new
// requests get a clean typed "unavailable" while requests already past
// the drain check run to completion. After shutdown the reopened catalog
// holds exactly the acknowledged writes.

import (
	"context"
	"net"
	"net/http"
	"testing"
	"time"

	"repro/client"
	"repro/internal/catalog"
	"repro/internal/relation"
	"repro/internal/server"
	"repro/internal/tx"
)

func TestGracefulDrain(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	cat := catalog.New(catalog.Config{
		Dir:      dir,
		NewClock: func() tx.Clock { return tx.NewLogicalClock(0, 10) },
	})
	if err := cat.Open(); err != nil {
		t.Fatalf("catalog.Open: %v", err)
	}
	srv := server.New(server.Config{Catalog: cat})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	cli := client.New("http://" + ln.Addr().String())

	if _, err := cli.Create(ctx, empSchema()); err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := cli.Insert(ctx, "emp", insertReq(5, "merrie", 27000)); err != nil {
		t.Fatalf("insert before drain: %v", err)
	}

	// Park an insert mid-flight: hold the relation's exclusive lock so
	// the wire request is admitted and blocks inside the catalog, i.e.
	// past the drain check.
	e, err := cat.Get("emp")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	locked := make(chan struct{})
	unlock := make(chan struct{})
	go e.Locked().Exclusive(func(*relation.Relation) error {
		close(locked)
		<-unlock
		return nil
	})
	<-locked

	inflight := make(chan error, 1)
	go func() {
		_, err := cli.Insert(ctx, "emp", insertReq(15, "tom", 31000))
		inflight <- err
	}()
	// Let the in-flight insert reach the lock: once it holds a write
	// admission slot its handler has passed the drain check — it is the
	// "already accepted" work drain must not cut.
	deadline := time.Now().Add(2 * time.Second)
	for {
		m, err := cli.Metrics(ctx)
		if err != nil {
			t.Fatalf("Metrics: %v", err)
		}
		if m.Admission["write"].Inflight >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("in-flight insert never reached the server")
		}
		time.Sleep(time.Millisecond)
	}

	srv.Drain()
	if !srv.Draining() {
		t.Fatal("Draining() = false after Drain()")
	}

	// New work is refused with a clean typed signal; the listener still
	// answers (no connection error).
	if _, err := cli.Insert(ctx, "emp", insertReq(25, "ann", 5000)); !client.IsUnavailable(err) {
		t.Fatalf("insert during drain = %v, want typed unavailable", err)
	}
	if _, err := cli.Current(ctx, "emp"); !client.IsUnavailable(err) {
		t.Fatalf("query during drain = %v, want typed unavailable", err)
	}
	// Probes stay up so orchestration can watch the drain.
	h, err := cli.Health(ctx)
	if err != nil {
		t.Fatalf("Health during drain: %v", err)
	}
	if h.Status != "draining" || !h.Draining {
		t.Fatalf("health = %+v, want draining", h)
	}
	rr, err := cli.Ready(ctx)
	if err != nil {
		t.Fatalf("Ready during drain: %v", err)
	}
	if rr.Ready || rr.Status != "draining" {
		t.Fatalf("ready = %+v, want not-ready draining", rr)
	}

	// Release the lock: the in-flight insert completes successfully.
	close(unlock)
	select {
	case err := <-inflight:
		if err != nil {
			t.Fatalf("in-flight insert after drain: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight insert never completed")
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := cat.Close(); err != nil {
		t.Fatalf("catalog.Close: %v", err)
	}

	// Reopen: exactly the two acknowledged inserts survived — the drain
	// neither lost accepted work nor let refused work slip in.
	cat2 := catalog.New(catalog.Config{Dir: dir})
	if err := cat2.Open(); err != nil {
		t.Fatalf("reopen: %v", err)
	}
	e2, err := cat2.Get("emp")
	if err != nil {
		t.Fatalf("Get after reopen: %v", err)
	}
	if got := len(e2.Current().Elements); got != 2 {
		t.Fatalf("recovered %d current elements, want 2 acked", got)
	}
}
