package server

// Batched and streaming ingest handlers (DESIGN §14).
//
// POST /v1/relations/{name}/elements:batch decodes a BatchInsertRequest
// and commits it through catalog.Entry.InsertBatch: one WAL frame, one
// group-commit entry, one published epoch for the whole batch, with a
// per-item status report. POST /v1/ingest/csv streams a header-driven
// CSV body straight into size/time-capped batches — flush at
// ingestFlushSize elements or ingestFlushAge — without ever
// materializing the file. Both endpoints are admission-weighted by
// request size (batchWeight), so a bulk load occupies the write class
// like the single inserts it replaces.

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/chronon"
	"repro/internal/element"
	"repro/internal/ingest"
	"repro/internal/relation"
	"repro/internal/surrogate"
	"repro/internal/wire"
)

const (
	// ingestFlushSize caps a CSV batch's element count, ingestFlushAge the
	// time one may sit buffering while the network trickles: whichever
	// trips first journals the batch, so a slow uploader still sees
	// bounded acknowledgment latency.
	ingestFlushSize = 256
	ingestFlushAge  = 5 * time.Millisecond
	// ingestMaxErrors bounds the line-numbered errors echoed back; the
	// total is always reported in ErrorCount.
	ingestMaxErrors = 50
)

func (s *Server) handleInsertBatch(r *http.Request) (*response, *apiError) {
	e, aerr := s.entry(r)
	if aerr != nil {
		return nil, aerr
	}
	var req wire.BatchInsertRequest
	if aerr := decode(r, &req); aerr != nil {
		return nil, aerr
	}
	if len(req.Elements) == 0 {
		return nil, errBadRequest("empty batch")
	}
	if len(req.Keys) != 0 && len(req.Keys) != len(req.Elements) {
		return nil, errBadRequest("batch carries %d keys for %d elements", len(req.Keys), len(req.Elements))
	}
	ins := make([]relation.Insertion, len(req.Elements))
	for i, er := range req.Elements {
		var err error
		if ins[i], err = toInsertion(er); err != nil {
			return nil, errBadRequest("element %d: %s", i, err.Error())
		}
	}
	res, err := e.InsertBatch(r.Context(), ins, req.Keys, req.Atomic)
	if err != nil {
		return nil, mapError(err)
	}
	// A replayed batch that stored nothing new is a 200, not a 201.
	status := http.StatusCreated
	if res.Stored == 0 {
		status = http.StatusOK
	}
	return &response{
		status:  status,
		body:    batchBody(res),
		touched: res.Stored,
	}, nil
}

func batchBody(res catalog.BatchResult) wire.BatchInsertResponse {
	out := wire.BatchInsertResponse{
		Items:    make([]wire.BatchItem, len(res.Items)),
		Stored:   res.Stored,
		Deduped:  res.Deduped,
		Rejected: res.Rejected,
		Epoch:    res.Epoch,
	}
	for i, it := range res.Items {
		wi := wire.BatchItem{Status: it.Status.String(), Error: it.Err}
		if it.Elem != nil {
			el := wire.FromElement(it.Elem)
			wi.Element = &el
		}
		out.Items[i] = wi
	}
	return out
}

// handleIngestCSV streams ?relation=<name>'s body — header-driven CSV —
// into batches. Malformed rows cost one row each (line-numbered in the
// response); decode never aborts the stream. The body cap is
// Config.IngestMaxBytes, not the JSON cap.
func (s *Server) handleIngestCSV(r *http.Request) (*response, *apiError) {
	name := r.URL.Query().Get("relation")
	if name == "" {
		return nil, errBadRequest("need ?relation=<name>")
	}
	e, err := s.cat.Get(name)
	if err != nil {
		return nil, mapError(err)
	}
	rr, err := ingest.NewRowReader(r.Body)
	if err != nil {
		return nil, errBadRequest("%s", err.Error())
	}
	m, err := newCSVMapper(e.Schema(), rr.Header())
	if err != nil {
		return nil, errBadRequest("%s", err.Error())
	}

	out := wire.IngestResponse{Relation: name}
	addErr := func(msg string) {
		out.ErrorCount++
		if len(out.Errors) < ingestMaxErrors {
			out.Errors = append(out.Errors, msg)
		}
	}
	buf := make([]relation.Insertion, 0, ingestFlushSize)
	lines := make([]int, 0, ingestFlushSize)
	var batchStart time.Time
	flush := func(reason *atomic.Uint64) *apiError {
		if len(buf) == 0 {
			return nil
		}
		res, err := e.InsertBatch(r.Context(), buf, nil, false)
		if err != nil {
			return mapError(err)
		}
		for i, it := range res.Items {
			if it.Status == catalog.BatchRejected {
				out.Rejected++
				addErr(fmt.Sprintf("line %d: %s", lines[i], it.Err))
			}
		}
		out.Stored += res.Stored
		out.Batches++
		reason.Add(1)
		buf, lines = buf[:0], lines[:0]
		return nil
	}
	for {
		row, rerr := rr.Next()
		if rerr != nil {
			if errors.Is(rerr, io.EOF) {
				break
			}
			var re *ingest.RowError
			if errors.As(rerr, &re) {
				out.Lines++
				addErr(re.Error())
				continue
			}
			// A transport/scan failure mid-stream: already-journaled
			// batches stand (each was acknowledged durable); report what
			// landed alongside the failure.
			return nil, errBadRequest("%s (after %d lines, %d stored)", rerr.Error(), out.Lines, out.Stored)
		}
		out.Lines++
		ins, ierr := m.insertion(row)
		if ierr != nil {
			addErr(ierr.Error())
			continue
		}
		if len(buf) == 0 {
			batchStart = time.Now()
		}
		buf = append(buf, ins)
		lines = append(lines, row.Line)
		switch {
		case len(buf) >= ingestFlushSize:
			if aerr := flush(&s.ingFlushSize); aerr != nil {
				return nil, aerr
			}
		case time.Since(batchStart) >= ingestFlushAge:
			if aerr := flush(&s.ingFlushTime); aerr != nil {
				return nil, aerr
			}
		}
	}
	if aerr := flush(&s.ingFlushEOF); aerr != nil {
		return nil, aerr
	}
	return &response{status: http.StatusCreated, body: out, touched: out.Stored}, nil
}

// csvMapper binds a header to a relation schema: which field feeds the
// object surrogate, the valid time, each invariant/varying attribute,
// and each user-defined time. Every schema attribute must be covered —
// partial rows cannot build a valid insertion.
type csvMapper struct {
	schema relation.Schema
	roles  []csvRole
}

type csvRole struct {
	kind csvRoleKind
	idx  int               // attribute index for inv/vary/user
	typ  element.ValueKind // value type for inv/vary
}

type csvRoleKind uint8

const (
	roleOS csvRoleKind = iota
	roleVT
	roleVTStart
	roleVTEnd
	roleInvariant
	roleVarying
	roleUserTime
)

func newCSVMapper(schema relation.Schema, header []string) (*csvMapper, error) {
	m := &csvMapper{schema: schema, roles: make([]csvRole, len(header))}
	covered := make(map[string]bool, len(header))
	for i, h := range header {
		role, err := m.roleFor(h)
		if err != nil {
			return nil, err
		}
		m.roles[i] = role
		covered[h] = true
	}
	// Valid-time coverage matches the schema's stamp kind.
	if schema.ValidTime == element.EventStamp {
		if !covered["vt"] {
			return nil, fmt.Errorf("ingest: header misses \"vt\" (event relation)")
		}
	} else {
		if !covered["vt_start"] || !covered["vt_end"] {
			return nil, fmt.Errorf("ingest: header misses \"vt_start\"/\"vt_end\" (interval relation)")
		}
	}
	for _, c := range schema.Invariant {
		if !covered[c.Name] {
			return nil, fmt.Errorf("ingest: header misses invariant column %q", c.Name)
		}
	}
	for _, c := range schema.Varying {
		if !covered[c.Name] {
			return nil, fmt.Errorf("ingest: header misses varying column %q", c.Name)
		}
	}
	for _, u := range schema.UserTimes {
		if !covered[u] {
			return nil, fmt.Errorf("ingest: header misses user time %q", u)
		}
	}
	return m, nil
}

func (m *csvMapper) roleFor(h string) (csvRole, error) {
	switch h {
	case "os":
		return csvRole{kind: roleOS}, nil
	case "vt":
		if m.schema.ValidTime != element.EventStamp {
			return csvRole{}, fmt.Errorf("ingest: column \"vt\" on an interval relation (want vt_start/vt_end)")
		}
		return csvRole{kind: roleVT}, nil
	case "vt_start":
		if m.schema.ValidTime != element.IntervalStamp {
			return csvRole{}, fmt.Errorf("ingest: column \"vt_start\" on an event relation (want vt)")
		}
		return csvRole{kind: roleVTStart}, nil
	case "vt_end":
		if m.schema.ValidTime != element.IntervalStamp {
			return csvRole{}, fmt.Errorf("ingest: column \"vt_end\" on an event relation (want vt)")
		}
		return csvRole{kind: roleVTEnd}, nil
	}
	for i, c := range m.schema.Invariant {
		if c.Name == h {
			return csvRole{kind: roleInvariant, idx: i, typ: c.Type}, nil
		}
	}
	for i, c := range m.schema.Varying {
		if c.Name == h {
			return csvRole{kind: roleVarying, idx: i, typ: c.Type}, nil
		}
	}
	for i, u := range m.schema.UserTimes {
		if u == h {
			return csvRole{kind: roleUserTime, idx: i}, nil
		}
	}
	return csvRole{}, fmt.Errorf("ingest: header column %q matches no schema attribute of %q", h, m.schema.Name)
}

// insertion builds one staged insertion from a row; errors carry the
// row's line number.
func (m *csvMapper) insertion(row ingest.Row) (relation.Insertion, error) {
	fail := func(col int, err error) (relation.Insertion, error) {
		return relation.Insertion{}, fmt.Errorf("line %d: column %d: %v", row.Line, col+1, err)
	}
	var ins relation.Insertion
	if n := len(m.schema.Invariant); n > 0 {
		ins.Invariant = make([]element.Value, n)
	}
	if n := len(m.schema.Varying); n > 0 {
		ins.Varying = make([]element.Value, n)
	}
	if n := len(m.schema.UserTimes); n > 0 {
		ins.UserTimes = make([]chronon.Chronon, n)
	}
	var vtEvent, vtStart, vtEnd chronon.Chronon
	for i, f := range row.Fields {
		role := m.roles[i]
		switch role.kind {
		case roleOS:
			n, err := strconv.ParseUint(f, 10, 64)
			if err != nil || n == 0 {
				return fail(i, fmt.Errorf("bad object surrogate %q", f))
			}
			ins.Object = surrogate.Surrogate(n)
		case roleVT, roleVTStart, roleVTEnd, roleUserTime:
			c, err := ingest.Time(f)
			if err != nil {
				return fail(i, err)
			}
			switch role.kind {
			case roleVT:
				vtEvent = c
			case roleVTStart:
				vtStart = c
			case roleVTEnd:
				vtEnd = c
			default:
				ins.UserTimes[role.idx] = c
			}
		case roleInvariant, roleVarying:
			v, err := parseCSVValue(f, role.typ)
			if err != nil {
				return fail(i, err)
			}
			if role.kind == roleInvariant {
				ins.Invariant[role.idx] = v
			} else {
				ins.Varying[role.idx] = v
			}
		}
	}
	if m.schema.ValidTime == element.EventStamp {
		ins.VT = element.EventAt(vtEvent)
	} else {
		if vtEnd <= vtStart {
			return relation.Insertion{}, fmt.Errorf("line %d: empty or inverted interval [%v, %v)", row.Line, vtStart, vtEnd)
		}
		ins.VT = element.SpanOf(vtStart, vtEnd)
	}
	return ins, nil
}

// parseCSVValue converts one trimmed field per its schema type. Empty
// fields are SQL-ish nulls.
func parseCSVValue(f string, typ element.ValueKind) (element.Value, error) {
	if f == "" {
		return element.Null(), nil
	}
	switch typ {
	case element.KindString:
		return element.String_(f), nil
	case element.KindInt:
		n, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			return element.Value{}, fmt.Errorf("bad int %q", f)
		}
		return element.Int(n), nil
	case element.KindFloat:
		x, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return element.Value{}, fmt.Errorf("bad float %q", f)
		}
		return element.Float(x), nil
	case element.KindBool:
		b, err := strconv.ParseBool(f)
		if err != nil {
			return element.Value{}, fmt.Errorf("bad bool %q", f)
		}
		return element.Bool(b), nil
	case element.KindTime:
		c, err := ingest.Time(f)
		if err != nil {
			return element.Value{}, err
		}
		return element.Time(c), nil
	}
	return element.Value{}, fmt.Errorf("unsupported column type %v", typ)
}
