package server

// Integrity endpoints and the background scrubber: a relation's signed
// Merkle root, inclusion and consistency proofs a client verifies
// locally, an on-demand verify-and-repair pass, and the /metrics
// integrity section. The proofs and repairs themselves live in
// internal/integrity and internal/catalog; the handlers here only
// parse, encode, and map errors.

import (
	"context"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/catalog"
	"repro/internal/integrity"
	"repro/internal/wire"
)

// RunScrubber runs the background integrity scrub loop until ctx ends:
// one full pass over every sealed artifact per ScrubInterval, reads
// paced at ScrubRate. It returns immediately when the catalog has
// integrity tracking disabled or no interval is configured, so callers
// can always `go srv.RunScrubber(ctx)`.
func (s *Server) RunScrubber(ctx context.Context) {
	if s.scrubber == nil || s.cfg.ScrubInterval <= 0 {
		return
	}
	s.scrubber.Run(ctx, s.cfg.ScrubInterval, nil)
}

// Scrubber exposes the server's scrubber (nil when integrity tracking
// is disabled) so an operator process can drive passes directly.
func (s *Server) Scrubber() *integrity.Scrubber { return s.scrubber }

// signedRootInfo renders a signed root for the wire.
func signedRootInfo(sr integrity.SignedRoot) wire.SignedRootInfo {
	root := sr.Root
	return wire.SignedRootInfo{
		Rel: sr.Rel, Size: sr.Size, Root: root[:], Sig: sr.Sig, Key: sr.Key,
	}
}

// integrityProvenance stamps a relation's Merkle provenance onto its
// physical-design report: how many committed frames the tree covers,
// the current root, and the quarantine cause when degraded.
func integrityProvenance(out *wire.PhysicalInfo, e *catalog.Entry) {
	st := e.IntegrityState()
	if st.Tracked {
		root := st.Root
		out.MerkleSize = st.Size
		out.MerkleRoot = root[:]
	}
	out.Quarantined = st.Quarantined
}

// mapIntegrityErr classifies proof-endpoint failures: tracking disabled
// is an availability condition, everything else (index out of range,
// bad prefix size) is the caller's request.
func mapIntegrityErr(err error) *apiError {
	if strings.Contains(err.Error(), "disabled") {
		return errUnavailable("%s", err.Error())
	}
	return errBadRequest("%s", err.Error())
}

// handleIntegrity reports a relation's integrity state: the Merkle tree
// size, the current root, and a signature covering exactly that state
// (absent on followers, which serve unsigned roots).
func (s *Server) handleIntegrity(r *http.Request) (*response, *apiError) {
	e, aerr := s.entry(r)
	if aerr != nil {
		return nil, aerr
	}
	st := e.IntegrityState()
	out := wire.IntegrityResponse{
		Rel:         r.PathValue("name"),
		Tracked:     st.Tracked,
		Quarantined: st.Quarantined,
	}
	if st.Tracked {
		root := st.Root
		out.Size = st.Size
		out.Root = root[:]
		sri := signedRootInfo(st.Signed)
		out.Signed = &sri
	}
	return &response{body: out}, nil
}

// handleIntegrityProof serves an inclusion proof for the index-th
// committed frame, with a root signed over exactly the tree size the
// proof verifies against. The proof crosses the wire in its binary
// encoding so the client checks the bytes the server committed to.
func (s *Server) handleIntegrityProof(r *http.Request) (*response, *apiError) {
	e, aerr := s.entry(r)
	if aerr != nil {
		return nil, aerr
	}
	raw := r.URL.Query().Get("index")
	if raw == "" {
		return nil, errBadRequest("need ?index=I (the committed frame's position)")
	}
	idx, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return nil, errBadRequest("bad index %q", raw)
	}
	leaf, proof, signed, err := e.InclusionProof(idx)
	if err != nil {
		return nil, mapIntegrityErr(err)
	}
	enc, err := integrity.EncodeProof(proof)
	if err != nil {
		return nil, &apiError{http.StatusInternalServerError, wire.CodeInternal, err.Error()}
	}
	return &response{body: wire.ProofResponse{
		Rel:    r.PathValue("name"),
		Index:  idx,
		Leaf:   leaf[:],
		Proof:  enc,
		Signed: signedRootInfo(signed),
	}}, nil
}

// handleIntegrityConsistency proves the current tree extends its
// size-from prefix: history since the client's anchor was appended to,
// never rewritten.
func (s *Server) handleIntegrityConsistency(r *http.Request) (*response, *apiError) {
	e, aerr := s.entry(r)
	if aerr != nil {
		return nil, aerr
	}
	raw := r.URL.Query().Get("from")
	if raw == "" {
		return nil, errBadRequest("need ?from=M (the anchored tree size)")
	}
	from, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return nil, errBadRequest("bad from %q", raw)
	}
	proof, oldRoot, signed, err := e.ConsistencyProof(from)
	if err != nil {
		return nil, mapIntegrityErr(err)
	}
	enc, err := integrity.EncodeProof(proof)
	if err != nil {
		return nil, &apiError{http.StatusInternalServerError, wire.CodeInternal, err.Error()}
	}
	return &response{body: wire.ConsistencyResponse{
		Rel:     r.PathValue("name"),
		From:    from,
		OldRoot: oldRoot[:],
		Proof:   enc,
		Signed:  signedRootInfo(signed),
	}}, nil
}

// handleVerify synchronously verifies every artifact covering the
// relation — snapshot shard, frozen runs, sealed WAL segments — and
// repairs what it can, exactly as the background scrubber would.
func (s *Server) handleVerify(r *http.Request) (*response, *apiError) {
	name := r.PathValue("name")
	rep, err := s.cat.VerifyRelation(name)
	if err != nil {
		return nil, mapError(err)
	}
	return &response{body: wire.VerifyResponse{
		Rel:       rep.Rel,
		Artifacts: rep.Artifacts,
		Failures:  rep.Failures,
		Repaired:  rep.Repaired,
	}, touched: rep.Artifacts}, nil
}

// integrityMetrics builds the /metrics integrity section, or nil when
// the catalog runs without integrity tracking.
func (s *Server) integrityMetrics() *wire.IntegrityMetrics {
	st := s.cat.IntegrityStats()
	if !st.Enabled {
		return nil
	}
	out := &wire.IntegrityMetrics{
		Enabled:          true,
		TrackedRelations: st.Relations,
		Leaves:           st.Leaves,
		Detected:         st.Detected,
		Repaired:         st.Repaired,
		Quarantines:      st.Quarantines,
		Quarantined:      st.Quarantined,
	}
	if s.scrubber != nil {
		ss := s.scrubber.Stats()
		out.ScrubPasses = ss.Passes
		out.ScrubArtifacts = ss.Artifacts
		out.ScrubBytes = ss.Bytes
		out.ScrubFailures = ss.Failures
		out.LastScrubUnix = ss.LastPass
	}
	for _, ev := range s.cat.IntegrityEvents() {
		out.Events = append(out.Events, wire.IntegrityEventInfo{
			Unix:         ev.Unix,
			Kind:         ev.Kind,
			ArtifactKind: ev.ArtKind,
			Artifact:     ev.Artifact,
			Rel:          ev.Rel,
			Detail:       ev.Detail,
		})
	}
	return out
}
