package server_test

// End-to-end acceptance for the batch-execution surface: window
// aggregates over the wire report which engine served them, the
// conditional-GET select endpoint serves aggregates with epoch ETags (a
// replay is a 304, a mutation invalidates), and /metrics exposes the
// per-batch-operator counters and the columnar plan kind.

import (
	"context"
	"reflect"
	"strings"
	"testing"
)

func TestAggregateBatchOverTheWire(t *testing.T) {
	ctx := context.Background()
	cli, stop := bootServer(t, t.TempDir())
	defer stop()

	if _, err := cli.Create(ctx, empSchema()); err != nil {
		t.Fatalf("Create: %v", err)
	}
	// vt = 5i for i in [0, 40): two width-100 windows of 20 events each.
	for i := 0; i < 40; i++ {
		if _, err := cli.Insert(ctx, "emp", insertReq(int64(5*i), "w", int64(i))); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}

	const stmt = "select count(*), sum(salary) from emp group by window(100)"

	// The response names the engine that served it, and the two engines
	// agree on the payload.
	col, err := cli.Select(ctx, stmt+" using columnar")
	if err != nil {
		t.Fatalf("Select columnar: %v", err)
	}
	if col.Engine != "columnar" {
		t.Fatalf("engine = %q, want columnar", col.Engine)
	}
	row, err := cli.Select(ctx, stmt+" using row")
	if err != nil {
		t.Fatalf("Select row: %v", err)
	}
	if row.Engine != "row" {
		t.Fatalf("engine = %q, want row", row.Engine)
	}
	if !reflect.DeepEqual(col.Columns, row.Columns) || !reflect.DeepEqual(col.Rows, row.Rows) {
		t.Fatalf("engines disagree over the wire:\ncolumnar: %+v\nrow:      %+v", col, row)
	}
	if len(col.Rows) != 2 {
		t.Fatalf("%d windows, want 2", len(col.Rows))
	}
	if v := col.Rows[0][2]; v.Kind != "int" || v.Int != 20 {
		t.Fatalf("window [0,100) count = %+v, want 20", v)
	}
	if v := col.Rows[1][3]; v.Kind != "int" || v.Int != 590 {
		t.Fatalf("window [100,200) sum = %+v, want 590", v)
	}

	// EXPLAIN renders the aggregate operator chain.
	exp, err := cli.ExplainSelect(ctx, "explain "+stmt)
	if err != nil {
		t.Fatalf("ExplainSelect: %v", err)
	}
	if !strings.Contains(exp.Rendered, "window-aggregate") {
		t.Fatalf("EXPLAIN misses the aggregate operator:\n%s", exp.Rendered)
	}

	// The conditional-GET path: first read returns a body and an epoch
	// ETag, a replay is served 304 from the client cache, and a mutation
	// rotates the ETag and recomputes.
	c1, err := cli.SelectCached(ctx, "emp", stmt)
	if err != nil {
		t.Fatalf("SelectCached: %v", err)
	}
	if c1.NotModified || c1.ETag == "" {
		t.Fatalf("first cached read: notModified=%v etag=%q", c1.NotModified, c1.ETag)
	}
	if !reflect.DeepEqual(c1.Rows, col.Rows) {
		t.Fatalf("cached read differs from POST select:\n%+v\n%+v", c1.Rows, col.Rows)
	}
	c2, err := cli.SelectCached(ctx, "emp", stmt)
	if err != nil {
		t.Fatalf("SelectCached replay: %v", err)
	}
	if !c2.NotModified || c2.ETag != c1.ETag {
		t.Fatalf("replay not served 304: notModified=%v etag=%q vs %q", c2.NotModified, c2.ETag, c1.ETag)
	}
	if !reflect.DeepEqual(c2.Rows, c1.Rows) {
		t.Fatal("304 replay lost the cached body")
	}
	if _, err := cli.Insert(ctx, "emp", insertReq(7, "w", 1000)); err != nil {
		t.Fatalf("invalidating insert: %v", err)
	}
	c3, err := cli.SelectCached(ctx, "emp", stmt)
	if err != nil {
		t.Fatalf("SelectCached after insert: %v", err)
	}
	if c3.NotModified || c3.ETag == c1.ETag {
		t.Fatalf("mutation did not rotate the ETag: notModified=%v etag=%q", c3.NotModified, c3.ETag)
	}
	if v := c3.Rows[0][2]; v.Kind != "int" || v.Int != 21 {
		t.Fatalf("post-insert window [0,100) count = %+v, want 21", v)
	}

	// /metrics surfaces the batch-operator counters and the columnar plan
	// kind alongside the row picks.
	m, err := cli.Metrics(ctx)
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	if m.Batch == nil {
		t.Fatal("metrics missing the batch section after aggregate traffic")
	}
	if m.Batch.ColumnarPicks < 1 || m.Batch.RowPicks < 1 {
		t.Fatalf("batch picks = %+v, want both engines represented", m.Batch)
	}
	if m.Batch.Batches < 1 || m.Batch.Rows < 40 || m.Batch.MeanRowsPerBatch <= 0 {
		t.Fatalf("batch counters = %+v", m.Batch)
	}
	if _, ok := m.Plans["columnar-scan"]; !ok {
		t.Fatalf("plan metrics missing columnar-scan: %v", m.Plans)
	}
}
