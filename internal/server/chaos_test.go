package server_test

// Chaos acceptance for the resilience layer, end to end over the wire:
//
// Phase 1 — connection resets mid-traffic: a flaky transport drops every
// Nth successful insert response after the server has applied and acked
// it. The retrying client replays each dropped mutation under its
// idempotency key; every insert must eventually succeed and the relation
// must hold exactly one element per acked insert (dedup, not re-apply).
//
// Phase 2 — WAL poisoning under load: an injected I/O fault poisons the
// log. Mutations fail typed "read_only", reads keep serving, /healthz
// reports degraded, /readyz goes 503, /metrics exports the degraded
// gauge.
//
// Phase 3 — recovery: the process "restarts" (ErrFS drops unsynced
// bytes), the catalog reboots from the WAL alone, and the surviving
// history equals the acked set exactly — every acknowledged element
// present and current, nothing unacknowledged visible — and a replayed
// idempotency key still returns the original element.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/client"
	"repro/internal/catalog"
	"repro/internal/server"
	"repro/internal/tx"
	"repro/internal/wal"
	"repro/internal/wire"
)

// flakyTransport forwards requests and, when enabled, drops every Nth
// successful insert response on the floor — the server has applied and
// acked the mutation, but the client sees a connection reset.
type flakyTransport struct {
	rt    http.RoundTripper
	every int

	mu    sync.Mutex
	on    bool
	n     int
	drops int
}

func (f *flakyTransport) enable(on bool) {
	f.mu.Lock()
	f.on = on
	f.mu.Unlock()
}

func (f *flakyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := f.rt.RoundTrip(req)
	if err != nil || req.Method != http.MethodPost || !strings.HasSuffix(req.URL.Path, "/insert") {
		return resp, err
	}
	f.mu.Lock()
	drop := false
	if f.on && resp.StatusCode < 300 {
		f.n++
		drop = f.n%f.every == 0
		if drop {
			f.drops++
		}
	}
	f.mu.Unlock()
	if drop {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, fmt.Errorf("chaos: connection reset after server ack")
	}
	return resp, nil
}

// rawKeyedInsert issues an insert with an explicit idempotency key,
// bypassing the client's auto-generated keys so the test can replay the
// exact key later — including across the recovery reboot.
func rawKeyedInsert(t *testing.T, base, rel, key string, req client.InsertRequest) wire.Element {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	hr, err := http.NewRequest(http.MethodPost, base+"/v1/relations/"+rel+"/insert", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("build request: %v", err)
	}
	hr.Header.Set("Content-Type", "application/json")
	hr.Header.Set(wire.HeaderIdempotencyKey, key)
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatalf("keyed insert: %v", err)
	}
	defer resp.Body.Close()
	payload, _ := io.ReadAll(resp.Body)
	if resp.StatusCode >= 300 {
		t.Fatalf("keyed insert: http %d: %s", resp.StatusCode, payload)
	}
	var out wire.ElementResponse
	if err := json.Unmarshal(payload, &out); err != nil {
		t.Fatalf("keyed insert decode: %v", err)
	}
	return out.Element
}

func TestChaosIdempotentRetryPoisonAndRecovery(t *testing.T) {
	fs := wal.NewErrFS()
	newWAL := func() *wal.Log {
		t.Helper()
		w, err := wal.Open(wal.Options{FS: fs, Sync: wal.SyncAlways, SegmentBytes: 1 << 20})
		if err != nil {
			t.Fatalf("wal.Open: %v", err)
		}
		return w
	}
	newCat := func(w *wal.Log) *catalog.Catalog {
		t.Helper()
		c := catalog.New(catalog.Config{
			NewClock: func() tx.Clock { return tx.NewLogicalClock(0, 10) },
			WAL:      w,
		})
		if err := c.Open(); err != nil {
			t.Fatalf("catalog.Open: %v", err)
		}
		return c
	}

	boot := func(cat *catalog.Catalog) (string, *http.Server) {
		t.Helper()
		srv := server.New(server.Config{Catalog: cat})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		return "http://" + ln.Addr().String(), hs
	}

	w := newWAL()
	cat := newCat(w)
	base, hs := boot(cat)

	flaky := &flakyTransport{rt: http.DefaultTransport, every: 5}
	cli := client.New(base,
		client.WithHTTPClient(&http.Client{Transport: flaky, Timeout: 30 * time.Second}),
		client.WithRetry(client.RetryPolicy{
			MaxAttempts: 5,
			BaseBackoff: time.Millisecond,
			MaxBackoff:  10 * time.Millisecond,
			Budget:      10 * time.Second,
		}))
	ctx := context.Background()

	if _, err := cli.Create(ctx, empSchema()); err != nil {
		t.Fatalf("Create: %v", err)
	}

	// Phase 1: concurrent keyed inserts through connection resets.
	const workers, perWorker = 4, 25
	var mu sync.Mutex
	acked := make(map[uint64]int64) // ES -> vt
	flaky.enable(true)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				vt := int64(1000 + g*perWorker + i)
				el, err := cli.Insert(ctx, "emp", insertReq(vt, fmt.Sprintf("w%d-%d", g, i), vt))
				if err != nil {
					t.Errorf("worker %d insert %d: %v", g, i, err)
					return
				}
				mu.Lock()
				acked[el.ES] = vt
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	flaky.enable(false)
	if t.Failed() {
		t.FailNow()
	}
	if len(acked) != workers*perWorker {
		t.Fatalf("acked %d distinct elements, want %d (duplicate ES would mean re-apply)",
			len(acked), workers*perWorker)
	}
	flaky.mu.Lock()
	drops := flaky.drops
	flaky.mu.Unlock()
	if drops == 0 {
		t.Fatal("flaky transport dropped nothing; phase 1 exercised no retries")
	}

	// One insert under a caller-chosen key, replayed immediately: the
	// wire-level dedup must return the original element verbatim.
	manual := rawKeyedInsert(t, base, "emp", "chaos-manual-1", insertReq(5000, "manual", 1))
	replayed := rawKeyedInsert(t, base, "emp", "chaos-manual-1", insertReq(5000, "manual", 1))
	if replayed.ES != manual.ES || replayed.TTStart != manual.TTStart {
		t.Fatalf("wire replay returned %+v, want original %+v", replayed, manual)
	}
	acked[manual.ES] = 5000

	q, err := cli.Current(ctx, "emp")
	if err != nil {
		t.Fatalf("Current after phase 1: %v", err)
	}
	if len(q.Elements) != len(acked) {
		t.Fatalf("server holds %d current elements, want %d acked (retries must dedup)",
			len(q.Elements), len(acked))
	}

	// Phase 2: poison the WAL at the next file operation.
	fs.FailAt(1, wal.FaultError)
	if _, err := cli.Insert(ctx, "emp", insertReq(6000, "poison", 1)); err == nil {
		t.Fatal("poisoning insert succeeded")
	}
	if _, err := cli.Insert(ctx, "emp", insertReq(6001, "after", 1)); !client.IsReadOnly(err) {
		t.Fatalf("mutation on poisoned server = %v, want typed read_only", err)
	}
	if err := cli.Delete(ctx, "emp", manual.ES); !client.IsReadOnly(err) {
		t.Fatalf("delete on poisoned server = %v, want typed read_only", err)
	}
	q, err = cli.Current(ctx, "emp")
	if err != nil {
		t.Fatalf("degraded read: %v", err)
	}
	if len(q.Elements) != len(acked) {
		t.Fatalf("degraded read sees %d elements, want %d", len(q.Elements), len(acked))
	}
	h, err := cli.Health(ctx)
	if err != nil {
		t.Fatalf("Health degraded: %v", err)
	}
	if h.Status != "degraded" || !h.ReadOnly || h.WAL == "" {
		t.Fatalf("health = %+v, want degraded read-only with cause", h)
	}
	rr, err := cli.Ready(ctx)
	if err != nil {
		t.Fatalf("Ready degraded: %v", err)
	}
	if rr.Ready || rr.Status != "degraded" {
		t.Fatalf("ready = %+v, want not-ready degraded", rr)
	}
	m, err := cli.Metrics(ctx)
	if err != nil {
		t.Fatalf("Metrics degraded: %v", err)
	}
	if m.Degraded == nil || !m.Degraded.ReadOnly || m.Degraded.Cause == "" {
		t.Fatalf("metrics degraded gauge = %+v, want read-only with cause", m.Degraded)
	}

	// Phase 3: restart. The ErrFS reboot drops whatever was never
	// fsynced; recovery replays the WAL alone (no snapshots were taken).
	// Close the clients' pooled keep-alive connections first so Shutdown
	// does not wait on an idle-but-marked-active conn under load.
	http.DefaultClient.CloseIdleConnections()
	if tr, ok := flaky.rt.(*http.Transport); ok {
		tr.CloseIdleConnections()
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	fs.CrashRecover()
	w2 := newWAL()
	cat2 := newCat(w2)
	e2, err := cat2.Get("emp")
	if err != nil {
		t.Fatalf("Get after recovery: %v", err)
	}
	cur := e2.Current().Elements
	if len(cur) != len(acked) {
		t.Fatalf("recovered %d current elements, want %d acked", len(cur), len(acked))
	}
	for _, el := range cur {
		vt, ok := acked[uint64(el.ES)]
		if !ok {
			t.Fatalf("recovered element %v was never acked", el.ES)
		}
		if int64(el.VT.Start()) != vt {
			t.Fatalf("element %v recovered vt %v, want %v", el.ES, el.VT.Start(), vt)
		}
	}

	// The dedup window replayed with the history: the caller-chosen key
	// still returns the original element on the rebooted server.
	base2, hs2 := boot(cat2)
	defer func() {
		shutCtx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel2()
		hs2.Shutdown(shutCtx2)
	}()
	replayed2 := rawKeyedInsert(t, base2, "emp", "chaos-manual-1", insertReq(5000, "manual", 1))
	if replayed2.ES != manual.ES || replayed2.TTStart != manual.TTStart {
		t.Fatalf("post-recovery replay returned %+v, want original %+v", replayed2, manual)
	}
	cli2 := client.New(base2)
	q2, err := cli2.Current(ctx, "emp")
	if err != nil {
		t.Fatalf("Current after recovery: %v", err)
	}
	if len(q2.Elements) != len(acked) {
		t.Fatalf("post-recovery replay grew history to %d elements, want %d",
			len(q2.Elements), len(acked))
	}
}
