package server_test

// End-to-end acceptance for the firehose ingest path: batched inserts
// journaled as one WAL frame and published under one epoch, per-element
// idempotency replay, all-or-nothing (atomic) and per-item partial
// failure, streaming CSV bulk load with line-numbered row errors,
// WAL-replay durability across a restart, the auto-batching client
// Loader, and the batch counters surfacing in /metrics.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/client"
	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/wire"
)

// postJSON posts body to path on the client's server, decoding into out
// when the status is 2xx. It returns the HTTP status.
func postJSON(t *testing.T, cli *client.Client, path string, body, out any) int {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(cli.BaseURL()+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 300 && out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", path, err)
		}
	}
	return resp.StatusCode
}

func TestBatchInsertEndToEnd(t *testing.T) {
	ctx := context.Background()
	cli, stop := bootServer(t, t.TempDir())
	defer stop()

	if _, err := cli.Create(ctx, empSchema()); err != nil {
		t.Fatalf("Create: %v", err)
	}

	// A 3-element batch: one call, one epoch, three stored elements with
	// distinct transaction times from the relation clock.
	res, err := cli.InsertBatch(ctx, "emp", []client.InsertRequest{
		insertReq(5, "merrie", 27000),
		insertReq(15, "tom", 31000),
		insertReq(25, "lindy", 19000),
	}, false)
	if err != nil {
		t.Fatalf("InsertBatch: %v", err)
	}
	if res.Stored != 3 || res.Deduped != 0 || res.Rejected != 0 {
		t.Fatalf("batch = %d stored / %d deduped / %d rejected, want 3/0/0",
			res.Stored, res.Deduped, res.Rejected)
	}
	if len(res.Items) != 3 {
		t.Fatalf("batch items = %d, want 3", len(res.Items))
	}
	seen := map[int64]bool{}
	for i, it := range res.Items {
		if it.Status != "stored" || it.Element == nil {
			t.Fatalf("item %d = %+v, want stored with element", i, it)
		}
		if seen[it.Element.TTStart] {
			t.Fatalf("item %d reuses transaction time %d", i, it.Element.TTStart)
		}
		seen[it.Element.TTStart] = true
	}

	// A second batch publishes exactly one epoch later: the whole batch
	// rode a single readView publish.
	res2, err := cli.InsertBatch(ctx, "emp", []client.InsertRequest{
		insertReq(35, "eve", 22000),
		insertReq(45, "ada", 41000),
	}, false)
	if err != nil {
		t.Fatalf("InsertBatch 2: %v", err)
	}
	if res2.Epoch != res.Epoch+1 {
		t.Fatalf("epoch after second batch = %d, want %d (one publish per batch)",
			res2.Epoch, res.Epoch+1)
	}
	if q, err := cli.Current(ctx, "emp"); err != nil || len(q.Elements) != 5 {
		t.Fatalf("Current = %d elements, %v; want 5", len(q.Elements), err)
	}

	// Malformed batches are 400s before any staging.
	if code := postJSON(t, cli, "/v1/relations/emp/elements:batch",
		wire.BatchInsertRequest{}, nil); code != http.StatusBadRequest {
		t.Fatalf("empty batch status = %d, want 400", code)
	}
	if code := postJSON(t, cli, "/v1/relations/emp/elements:batch",
		wire.BatchInsertRequest{
			Elements: []wire.InsertRequest{insertReq(50, "x", 1)},
			Keys:     []string{"k1", "k2"},
		}, nil); code != http.StatusBadRequest {
		t.Fatalf("key-mismatch batch status = %d, want 400", code)
	}
}

func TestBatchInsertIdempotentReplay(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	cli, stop := bootServer(t, dir)

	if _, err := cli.Create(ctx, empSchema()); err != nil {
		t.Fatalf("Create: %v", err)
	}
	body := wire.BatchInsertRequest{
		Elements: []wire.InsertRequest{
			insertReq(5, "merrie", 27000),
			insertReq(15, "tom", 31000),
		},
		Keys: []string{"replay-key-a", "replay-key-b"},
	}
	var first wire.BatchInsertResponse
	if code := postJSON(t, cli, "/v1/relations/emp/elements:batch", body, &first); code != http.StatusCreated {
		t.Fatalf("first batch status = %d, want 201", code)
	}
	if first.Stored != 2 {
		t.Fatalf("first batch stored = %d, want 2", first.Stored)
	}

	// Same keys again: every element dedups to its original — no new
	// events in transaction time, same element surrogates back.
	var second wire.BatchInsertResponse
	if code := postJSON(t, cli, "/v1/relations/emp/elements:batch", body, &second); code != http.StatusOK {
		t.Fatalf("replay status = %d, want 200", code)
	}
	if second.Stored != 0 || second.Deduped != 2 {
		t.Fatalf("replay = %d stored / %d deduped, want 0/2", second.Stored, second.Deduped)
	}
	for i := range second.Items {
		if second.Items[i].Status != "deduped" ||
			second.Items[i].Element == nil ||
			second.Items[i].Element.ES != first.Items[i].Element.ES {
			t.Fatalf("replay item %d = %+v, want dedup of %+v", i, second.Items[i], first.Items[i])
		}
	}
	// A mixed batch — one known key, one fresh — dedups element-by-element.
	mixed := wire.BatchInsertRequest{
		Elements: []wire.InsertRequest{
			insertReq(5, "merrie", 27000),
			insertReq(25, "lindy", 19000),
		},
		Keys: []string{"replay-key-a", "replay-key-c"},
	}
	var third wire.BatchInsertResponse
	if code := postJSON(t, cli, "/v1/relations/emp/elements:batch", mixed, &third); code != http.StatusCreated {
		t.Fatalf("mixed batch status = %d, want 201", code)
	}
	if third.Stored != 1 || third.Deduped != 1 {
		t.Fatalf("mixed = %d stored / %d deduped, want 1/1", third.Stored, third.Deduped)
	}

	stop()

	// Restart: the batched elements are durable. (Crash-recovery replay
	// of the batch frame itself — including the rebuilt dedup window —
	// is proven at the catalog layer, where the WAL is the only source;
	// a graceful shutdown snapshots and truncates it.)
	cli2, stop2 := bootServer(t, dir)
	defer stop2()
	if q, err := cli2.Current(ctx, "emp"); err != nil || len(q.Elements) != 3 {
		t.Fatalf("restarted Current = %d elements, %v; want 3", len(q.Elements), err)
	}
}

func TestBatchInsertPartialAndAtomicFailure(t *testing.T) {
	ctx := context.Background()
	cli, stop := bootServer(t, t.TempDir())
	defer stop()

	if _, err := cli.Create(ctx, empSchema()); err != nil {
		t.Fatalf("Create: %v", err)
	}
	// Declare retroactive: vt must not exceed tt (10, 20, ... here).
	retro := mustDescriptor(t, constraint.Event{Spec: core.RetroactiveSpec()})
	if _, err := cli.Declare(ctx, "emp", retro); err != nil {
		t.Fatalf("Declare: %v", err)
	}

	// Partial mode: the violating element is rejected with its index;
	// the rest of the batch lands.
	res, err := cli.InsertBatch(ctx, "emp", []client.InsertRequest{
		insertReq(5, "merrie", 27000),
		insertReq(999999, "future", 1), // vt far beyond any tt: rejected
		insertReq(1, "tom", 31000),
	}, false)
	if err != nil {
		t.Fatalf("InsertBatch partial: %v", err)
	}
	if res.Stored != 2 || res.Rejected != 1 {
		t.Fatalf("partial = %d stored / %d rejected, want 2/1", res.Stored, res.Rejected)
	}
	if it := res.Items[1]; it.Status != "rejected" || it.Error == "" {
		t.Fatalf("violating item = %+v, want rejected with error", it)
	}
	if q, err := cli.Current(ctx, "emp"); err != nil || len(q.Elements) != 2 {
		t.Fatalf("Current after partial = %d elements, %v; want 2", len(q.Elements), err)
	}

	// Atomic mode: one violation fails the whole batch, nothing stored,
	// no epoch published.
	_, err = cli.InsertBatch(ctx, "emp", []client.InsertRequest{
		insertReq(2, "eve", 1000),
		insertReq(999999, "future", 1),
	}, true)
	if !client.IsRejected(err) {
		t.Fatalf("atomic batch err = %v, want rejected", err)
	}
	if q, err := cli.Current(ctx, "emp"); err != nil || len(q.Elements) != 2 {
		t.Fatalf("Current after atomic reject = %d elements, %v; want 2 (unchanged)", len(q.Elements), err)
	}
}

func TestIngestCSVEndToEnd(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	cli, stop := bootServer(t, dir)

	if _, err := cli.Create(ctx, empSchema()); err != nil {
		t.Fatalf("Create: %v", err)
	}

	// 600 clean rows exercise the size-capped flush (256 per batch);
	// three dirty rows — ragged, bad value, unknown time — each cost one
	// row and are reported with their line numbers.
	var csv strings.Builder
	csv.WriteString("# bulk load\nvt,name,salary\n")
	for i := 0; i < 600; i++ {
		fmt.Fprintf(&csv, "%d,emp%d,%d\n", i+1, i, 20000+i)
	}
	csv.WriteString("7000,ragged\n")              // 2 columns vs 3
	csv.WriteString("7001,badpay,not-a-number\n") // salary fails int parse
	csv.WriteString("not-a-time,eve,1\n")         // vt fails time parse

	res, err := cli.IngestCSV(ctx, "emp", strings.NewReader(csv.String()))
	if err != nil {
		t.Fatalf("IngestCSV: %v", err)
	}
	if res.Stored != 600 {
		t.Fatalf("ingest stored = %d, want 600", res.Stored)
	}
	if res.ErrorCount != 3 || len(res.Errors) != 3 {
		t.Fatalf("ingest errors = %d (%d reported): %v, want 3", res.ErrorCount, len(res.Errors), res.Errors)
	}
	// Errors carry the 1-based input line numbers (header is line 2).
	for i, wantLine := range []string{"line 603", "line 604", "line 605"} {
		if !strings.Contains(res.Errors[i], wantLine) {
			t.Fatalf("error %d = %q, want mention of %s", i, res.Errors[i], wantLine)
		}
	}
	if res.Batches < 3 {
		t.Fatalf("ingest batches = %d, want >= 3 (600 rows at <=256/batch)", res.Batches)
	}
	if q, err := cli.Current(ctx, "emp"); err != nil || len(q.Elements) != 600 {
		t.Fatalf("Current = %d elements, %v; want 600", len(q.Elements), err)
	}

	// Unknown relation and unmappable headers are clean 400s.
	if _, err := cli.IngestCSV(ctx, "nobody", strings.NewReader("vt,name,salary\n1,a,2\n")); !client.IsNotFound(err) {
		t.Fatalf("IngestCSV(nobody) err = %v, want not_found", err)
	}
	if _, err := cli.IngestCSV(ctx, "emp", strings.NewReader("vt,name\n1,a\n")); err == nil ||
		!strings.Contains(err.Error(), "salary") {
		t.Fatalf("IngestCSV with missing column err = %v, want mention of salary", err)
	}

	// The batch counters surface in /metrics: batches, batched elements,
	// mean batch size, and the flush-reason split.
	m, err := cli.Metrics(ctx)
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	if m.Ingest == nil {
		t.Fatal("metrics carry no ingest section after a bulk load")
	}
	if m.Ingest.Batches < 3 || m.Ingest.BatchedElements != 600 {
		t.Fatalf("ingest metrics = %d batches / %d elements, want >=3 / 600", m.Ingest.Batches, m.Ingest.BatchedElements)
	}
	if m.Ingest.MeanBatch < 2 {
		t.Fatalf("mean batch = %.1f, want >= 2", m.Ingest.MeanBatch)
	}
	// Every batch flushed for exactly one reason (usually size here, but a
	// slow scheduler may sneak in time flushes); the split must add up.
	if m.Ingest.FlushEOF < 1 || m.Ingest.FlushSize+m.Ingest.FlushTime+m.Ingest.FlushEOF != uint64(res.Batches) {
		t.Fatalf("flush reasons size/time/eof = %d/%d/%d, want >=1 eof flush summing to %d",
			m.Ingest.FlushSize, m.Ingest.FlushTime, m.Ingest.FlushEOF, res.Batches)
	}

	stop()

	// The load is durable: every batch frame replays on restart.
	cli2, stop2 := bootServer(t, dir)
	defer stop2()
	if q, err := cli2.Current(ctx, "emp"); err != nil || len(q.Elements) != 600 {
		t.Fatalf("restarted Current = %d elements, %v; want 600", len(q.Elements), err)
	}
}

func TestClientLoader(t *testing.T) {
	ctx := context.Background()
	cli, stop := bootServer(t, t.TempDir())
	defer stop()

	if _, err := cli.Create(ctx, empSchema()); err != nil {
		t.Fatalf("Create: %v", err)
	}
	ld := cli.NewLoader("emp", client.LoaderConfig{BatchSize: 50, FlushInterval: 5 * time.Millisecond})
	const n = 230
	for i := 0; i < n; i++ {
		if err := ld.Add(ctx, insertReq(int64(i+1), fmt.Sprintf("emp%d", i), 1000)); err != nil {
			t.Fatalf("Add %d: %v", i, err)
		}
	}
	// Flush is a barrier: everything added before it is on the server.
	if err := ld.Flush(ctx); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if q, err := cli.Current(ctx, "emp"); err != nil || len(q.Elements) != n {
		t.Fatalf("Current after flush = %d elements, %v; want %d", len(q.Elements), err, n)
	}
	if err := ld.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	st := ld.Stats()
	if st.Added != n || st.Stored != n || st.Failed != 0 {
		t.Fatalf("loader stats = %+v, want %d added and stored", st, n)
	}
	if st.Batches < 4 {
		t.Fatalf("loader batches = %d, want >= 4 (230 adds at <=50/batch)", st.Batches)
	}
	// Add after Close is a clean error, not a panic.
	if err := ld.Add(ctx, insertReq(999, "late", 1)); err == nil {
		t.Fatal("Add after Close succeeded")
	}
}
