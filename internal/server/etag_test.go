package server_test

// Conditional-read acceptance: the GET query endpoint publishes the
// relation's mutation epoch as an ETag, answers If-None-Match revalidation
// with 304 (no query runs, no body crosses the wire), and a mutation
// changes the validator so stale clients fetch fresh. The typed client's
// QueryCached drives the same protocol end to end, and /metrics exposes
// the result cache's counters.

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"testing"
	"time"

	"repro/client"
	"repro/internal/catalog"
	"repro/internal/server"
	"repro/internal/tx"
	"repro/internal/wire"
)

// bootCachedServer is bootServer with the query-result cache enabled.
func bootCachedServer(t *testing.T, dir string) (*client.Client, string, func()) {
	t.Helper()
	cat := catalog.New(catalog.Config{
		Dir:        dir,
		NewClock:   func() tx.Clock { return tx.NewLogicalClock(0, 10) },
		CacheBytes: 1 << 20,
	})
	if err := cat.Open(); err != nil {
		t.Fatalf("catalog.Open: %v", err)
	}
	srv := server.New(server.Config{Catalog: cat})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := cat.Close(); err != nil {
			t.Errorf("catalog.Close: %v", err)
		}
	}
	return client.New(base), base, stop
}

func getWithValidator(t *testing.T, url, inm string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatalf("building request: %v", err)
	}
	if inm != "" {
		req.Header.Set(wire.HeaderIfNoneMatch, inm)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return resp
}

func TestConditionalGetQuery(t *testing.T) {
	ctx := context.Background()
	c, base, stop := bootCachedServer(t, t.TempDir())
	defer stop()
	if _, err := c.Create(ctx, empSchema()); err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := c.Insert(ctx, "emp", insertReq(100, "merrie", 27000)); err != nil {
		t.Fatalf("Insert: %v", err)
	}

	url := base + "/v1/relations/emp/query?kind=timeslice&vt=100"
	resp := getWithValidator(t, url, "")
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET query = %d: %s", resp.StatusCode, body)
	}
	etag := resp.Header.Get(wire.HeaderETag)
	if etag == "" {
		t.Fatal("GET query carried no ETag")
	}
	if cl := resp.Header.Get("Content-Length"); cl == "" || cl == "0" {
		t.Fatalf("pooled encoder set Content-Length %q", cl)
	}
	var qr wire.QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatalf("decoding: %v", err)
	}
	if len(qr.Elements) != 1 || qr.Epoch == 0 {
		t.Fatalf("body = %d elements, epoch %d", len(qr.Elements), qr.Epoch)
	}

	// Revalidation against an unmutated relation: 304, empty body.
	resp = getWithValidator(t, url, etag)
	notModBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("revalidation = %d, want 304", resp.StatusCode)
	}
	if len(notModBody) != 0 {
		t.Fatalf("304 carried a body: %q", notModBody)
	}

	// A mutation changes the validator: the stale ETag fetches fresh.
	if _, err := c.Insert(ctx, "emp", insertReq(100, "tom", 31000)); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	resp = getWithValidator(t, url, etag)
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-mutation GET = %d", resp.StatusCode)
	}
	if newTag := resp.Header.Get(wire.HeaderETag); newTag == etag || newTag == "" {
		t.Fatalf("ETag did not change across mutation: %q", newTag)
	}
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatalf("decoding: %v", err)
	}
	if len(qr.Elements) != 2 {
		t.Fatalf("post-mutation body = %d elements, want 2", len(qr.Elements))
	}
}

func TestConditionalExplain(t *testing.T) {
	ctx := context.Background()
	c, base, stop := bootCachedServer(t, t.TempDir())
	defer stop()
	if _, err := c.Create(ctx, empSchema()); err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := c.Insert(ctx, "emp", insertReq(100, "merrie", 27000)); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	url := base + "/v1/relations/emp/explain?kind=current"
	resp := getWithValidator(t, url, "")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	etag := resp.Header.Get(wire.HeaderETag)
	if resp.StatusCode != http.StatusOK || etag == "" {
		t.Fatalf("explain = %d, etag %q", resp.StatusCode, etag)
	}
	resp = getWithValidator(t, url, etag)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("explain revalidation = %d, want 304", resp.StatusCode)
	}
}

func TestClientQueryCached(t *testing.T) {
	ctx := context.Background()
	c, _, stop := bootCachedServer(t, t.TempDir())
	defer stop()
	if _, err := c.Create(ctx, empSchema()); err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := c.Insert(ctx, "emp", insertReq(100, "merrie", 27000)); err != nil {
		t.Fatalf("Insert: %v", err)
	}

	req := client.QueryRequest{Kind: client.QueryTimeslice, VT: 100}
	first, err := c.QueryCached(ctx, "emp", req)
	if err != nil {
		t.Fatalf("QueryCached: %v", err)
	}
	if first.NotModified || len(first.Elements) != 1 || first.ETag == "" {
		t.Fatalf("first = %+v", first)
	}
	second, err := c.QueryCached(ctx, "emp", req)
	if err != nil {
		t.Fatalf("QueryCached: %v", err)
	}
	if !second.NotModified {
		t.Fatal("repeat QueryCached did not revalidate to 304")
	}
	if len(second.Elements) != 1 {
		t.Fatalf("304 body from local cache = %d elements", len(second.Elements))
	}

	if _, err := c.Insert(ctx, "emp", insertReq(100, "tom", 31000)); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	third, err := c.QueryCached(ctx, "emp", req)
	if err != nil {
		t.Fatalf("QueryCached: %v", err)
	}
	if third.NotModified || len(third.Elements) != 2 {
		t.Fatalf("post-mutation = %+v", third)
	}

	// The server's result cache shows up on /metrics.
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	if m.QueryCache == nil {
		t.Fatal("metrics carry no query_cache section")
	}
	if m.QueryCache.Capacity != 1<<20 {
		t.Fatalf("query_cache capacity = %d", m.QueryCache.Capacity)
	}
}
