package server_test

// Integrity acceptance, end to end over the wire:
//
// Proof round-trip — a client verifies inclusion and consistency proofs
// locally (key pinned on first contact) for event and interval
// relations, across a server restart: the rebooted tree must extend the
// anchored history or verification fails.
//
// Follower replay — a follower rebuilt from shipped frames serves the
// same root as the primary, unsigned; a verifier anchored against it
// still proves inclusion and append-only growth, and no shipped frame
// fails leaf verification.
//
// Verify-and-repair — a bit-flipped snapshot shard is detected by POST
// verify, quarantined, repaired in place, and the relation keeps
// serving; /metrics carries the detection, the repair, and the journal.
//
// Chaos — the follower is killed mid-scrub (cursor persisted), its
// shard rots while it is down, and the primary crash-reboots through
// the ErrFS seam; the restarted follower drops the corrupt shard at
// boot, re-fetches the relation's whole history from the feed, resumes
// the scrub from the cursor, and converges to exactly the primary's
// acked history — equal elements, equal Merkle root.

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/client"
	"repro/internal/catalog"
	"repro/internal/integrity"
	"repro/internal/server"
	"repro/internal/tx"
	"repro/internal/wal"
)

// listenAt binds addr ("" for an ephemeral port), retrying briefly so a
// restart can reclaim the port the previous server just released.
func listenAt(t *testing.T, addr string) net.Listener {
	t.Helper()
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	var ln net.Listener
	var err error
	for i := 0; i < 100; i++ {
		if ln, err = net.Listen("tcp", addr); err == nil {
			return ln
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("listen %s: %v", addr, err)
	return nil
}

// integNode is a WAL-backed, root-signing primary rooted at dir.
type integNode struct {
	addr string
	base string
	cat  *catalog.Catalog
	stop func()
}

// bootIntegPrimary starts (or restarts, when addr is reused) a signing
// primary whose WAL, data directory, and signing key all live under dir.
func bootIntegPrimary(t *testing.T, dir, addr string) *integNode {
	t.Helper()
	w, err := wal.Open(wal.Options{Dir: filepath.Join(dir, "wal"), Sync: wal.SyncGroup, SegmentBytes: 1 << 20})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	signer, err := integrity.LoadOrCreateSigner(filepath.Join(dir, "integrity.ed25519"))
	if err != nil {
		t.Fatalf("LoadOrCreateSigner: %v", err)
	}
	cat := catalog.New(catalog.Config{
		Dir:      filepath.Join(dir, "data"),
		NewClock: func() tx.Clock { return tx.NewLogicalClock(0, 10) },
		WAL:      w,
		Signer:   signer,
	})
	if err := cat.Open(); err != nil {
		t.Fatalf("catalog.Open: %v", err)
	}
	srv := server.New(server.Config{Catalog: cat})
	ln := listenAt(t, addr)
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	a := ln.Addr().String()
	stop := func() {
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = hs.Shutdown(sctx)
		if err := cat.Close(); err != nil {
			t.Errorf("catalog.Close: %v", err)
		}
		_ = w.Close()
	}
	return &integNode{addr: a, base: "http://" + a, cat: cat, stop: stop}
}

func TestIntegrityE2EProofRoundTripAndRestart(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	p := bootIntegPrimary(t, dir, "")
	cli := client.New(p.base)

	if _, err := cli.Create(ctx, empSchema()); err != nil {
		t.Fatalf("create emp: %v", err)
	}
	shift := empSchema()
	shift.Name, shift.ValidTime = "shift", "interval"
	if _, err := cli.Create(ctx, shift); err != nil {
		t.Fatalf("create shift: %v", err)
	}
	for i := 0; i < 10; i++ {
		if _, err := cli.Insert(ctx, "emp", insertReq(int64(1000+i), fmt.Sprintf("e%d", i), int64(i))); err != nil {
			t.Fatalf("insert emp %d: %v", i, err)
		}
	}
	for i := 0; i < 4; i++ {
		req := client.InsertRequest{
			VT:        client.SpanOf(int64(100+10*i), int64(105+10*i)),
			Invariant: []client.Value{client.String(fmt.Sprintf("s%d", i))},
			Varying:   []client.Value{client.Int(int64(i))},
		}
		if _, err := cli.Insert(ctx, "shift", req); err != nil {
			t.Fatalf("insert shift %d: %v", i, err)
		}
	}

	// Raw integrity state: signed over exactly (rel, size, root).
	ir, err := cli.Integrity(ctx, "emp")
	if err != nil {
		t.Fatalf("Integrity: %v", err)
	}
	if !ir.Tracked || ir.Size != 11 {
		t.Fatalf("integrity = tracked %v size %d, want tracked size 11 (create + 10 inserts)", ir.Tracked, ir.Size)
	}
	if ir.Signed == nil || len(ir.Signed.Sig) == 0 || len(ir.Signed.Key) == 0 {
		t.Fatalf("primary served an unsigned root: %+v", ir.Signed)
	}

	// Client-side verification: anchor, then prove a specific commit.
	hv := cli.HistoryVerifier("emp")
	if size, err := hv.Advance(ctx); err != nil || size != 11 {
		t.Fatalf("Advance = %d, %v; want 11", size, err)
	}
	leaf, err := hv.VerifyCommit(ctx, 3)
	if err != nil {
		t.Fatalf("VerifyCommit(3): %v", err)
	}
	if len(leaf) != integrity.HashSize {
		t.Fatalf("leaf hash is %d bytes, want %d", len(leaf), integrity.HashSize)
	}
	hvShift := cli.HistoryVerifier("shift")
	if size, err := hvShift.Advance(ctx); err != nil || size != 5 {
		t.Fatalf("shift Advance = %d, %v; want 5", size, err)
	}
	if _, err := hvShift.VerifyCommit(ctx, 2); err != nil {
		t.Fatalf("shift VerifyCommit(2): %v", err)
	}

	// Growth must come with a consistency proof from the anchor.
	for i := 0; i < 5; i++ {
		if _, err := cli.Insert(ctx, "emp", insertReq(int64(2000+i), fmt.Sprintf("g%d", i), int64(i))); err != nil {
			t.Fatalf("insert growth %d: %v", i, err)
		}
	}
	if size, err := hv.Advance(ctx); err != nil || size != 16 {
		t.Fatalf("Advance after growth = %d, %v; want 16", size, err)
	}

	// An index past the tree is the caller's error, not a served proof.
	if _, err := cli.IntegrityProof(ctx, "emp", 999); err == nil {
		t.Fatal("out-of-range proof request succeeded")
	}

	// Restart on the same address: the rebooted tree (seeded from the
	// snapshot, topped up by WAL replay) must extend the live anchor,
	// under the same pinned key.
	if _, err := cli.Snapshot(ctx); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	addr := p.addr
	p.stop()
	p2 := bootIntegPrimary(t, dir, addr)
	defer p2.stop()
	for i := 0; i < 3; i++ {
		if _, err := cli.Insert(ctx, "emp", insertReq(int64(3000+i), fmt.Sprintf("r%d", i), int64(i))); err != nil {
			t.Fatalf("insert after restart %d: %v", i, err)
		}
	}
	if size, err := hv.Advance(ctx); err != nil || size != 19 {
		t.Fatalf("Advance across restart = %d, %v; want 19", size, err)
	}
	if _, err := hv.VerifyCommit(ctx, 0); err != nil {
		t.Fatalf("VerifyCommit(0) across restart: %v", err)
	}
	// The interval relation did not grow: equal size must mean equal root.
	if size, err := hvShift.Advance(ctx); err != nil || size != 5 {
		t.Fatalf("shift Advance across restart = %d, %v; want 5", size, err)
	}
}

func TestIntegrityE2EFollowerReplayVerified(t *testing.T) {
	ctx := context.Background()
	p := bootIntegPrimary(t, t.TempDir(), "")
	defer p.stop()
	cli := client.New(p.base)

	if _, err := cli.Create(ctx, empSchema()); err != nil {
		t.Fatalf("create: %v", err)
	}
	for i := 0; i < 15; i++ {
		if _, err := cli.Insert(ctx, "emp", insertReq(int64(1000+i), fmt.Sprintf("e%d", i), int64(i))); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}

	fol := bootFollower(t, t.TempDir(), p.base)
	defer fol.stop()
	folCli := client.New(fol.url)
	waitUntil(t, "follower tree caught up", func() bool {
		ir, err := folCli.Integrity(ctx, "emp")
		return err == nil && ir.Tracked && ir.Size == 16
	})

	// Same history, same root — but the follower cannot sign it.
	pIr, err := cli.Integrity(ctx, "emp")
	if err != nil {
		t.Fatalf("primary Integrity: %v", err)
	}
	fIr, err := folCli.Integrity(ctx, "emp")
	if err != nil {
		t.Fatalf("follower Integrity: %v", err)
	}
	if !bytes.Equal(pIr.Root, fIr.Root) {
		t.Fatalf("follower root %x diverges from primary root %x", fIr.Root, pIr.Root)
	}
	if fIr.Signed == nil || len(fIr.Signed.Sig) != 0 {
		t.Fatalf("follower root should be unsigned, got %+v", fIr.Signed)
	}

	// Proofs served by the follower verify locally, and growth shipped
	// through replication still proves append-only.
	hvF := folCli.HistoryVerifier("emp")
	if size, err := hvF.Advance(ctx); err != nil || size != 16 {
		t.Fatalf("follower Advance = %d, %v; want 16", size, err)
	}
	if _, err := hvF.VerifyCommit(ctx, 7); err != nil {
		t.Fatalf("follower VerifyCommit(7): %v", err)
	}
	for i := 0; i < 5; i++ {
		if _, err := cli.Insert(ctx, "emp", insertReq(int64(2000+i), fmt.Sprintf("g%d", i), int64(i))); err != nil {
			t.Fatalf("insert growth %d: %v", i, err)
		}
	}
	waitUntil(t, "follower applied growth", func() bool {
		ir, err := folCli.Integrity(ctx, "emp")
		return err == nil && ir.Size == 21
	})
	if size, err := hvF.Advance(ctx); err != nil || size != 21 {
		t.Fatalf("follower Advance after growth = %d, %v; want 21", size, err)
	}

	// Every shipped frame passed leaf verification, and both sides
	// surface the integrity section.
	if n := fol.fol.Stats().LeafFailures; n != 0 {
		t.Fatalf("follower counted %d leaf failures on a clean feed", n)
	}
	m, err := folCli.Metrics(ctx)
	if err != nil {
		t.Fatalf("follower Metrics: %v", err)
	}
	if m.Integrity == nil || !m.Integrity.Enabled {
		t.Fatalf("follower metrics integrity section = %+v, want enabled", m.Integrity)
	}
	if m.Replication == nil || m.Replication.LeafFailures != 0 {
		t.Fatalf("follower replication metrics = %+v, want zero leaf failures", m.Replication)
	}
}

func TestIntegrityE2EVerifyRepairSnapshot(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	p := bootIntegPrimary(t, dir, "")
	defer p.stop()
	cli := client.New(p.base)

	if _, err := cli.Create(ctx, empSchema()); err != nil {
		t.Fatalf("create: %v", err)
	}
	for i := 0; i < 8; i++ {
		if _, err := cli.Insert(ctx, "emp", insertReq(int64(1000+i), fmt.Sprintf("e%d", i), int64(i))); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if _, err := cli.Snapshot(ctx); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}

	shard := filepath.Join(dir, "data", "emp.tsbl")
	data, err := os.ReadFile(shard)
	if err != nil {
		t.Fatalf("read shard: %v", err)
	}
	data[len(data)/2] ^= 0x10
	if err := os.WriteFile(shard, data, 0o644); err != nil {
		t.Fatalf("corrupt shard: %v", err)
	}

	vr, err := cli.Verify(ctx, "emp")
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if vr.Artifacts == 0 || len(vr.Failures) == 0 || vr.Repaired == 0 {
		t.Fatalf("verify = %+v, want a detected and repaired failure", vr)
	}

	// Quarantine lifted after repair; the relation never stopped serving.
	ir, err := cli.Integrity(ctx, "emp")
	if err != nil {
		t.Fatalf("Integrity after repair: %v", err)
	}
	if ir.Quarantined != "" {
		t.Fatalf("relation still quarantined after repair: %q", ir.Quarantined)
	}
	q, err := cli.Current(ctx, "emp")
	if err != nil {
		t.Fatalf("Current after repair: %v", err)
	}
	if len(q.Elements) != 8 {
		t.Fatalf("repair changed history: %d elements, want 8", len(q.Elements))
	}

	// Operators can alert on first detection: counters and journal.
	m, err := cli.Metrics(ctx)
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	ig := m.Integrity
	if ig == nil || ig.Detected == 0 || ig.Repaired == 0 || len(ig.Events) < 2 {
		t.Fatalf("metrics integrity section = %+v, want detection + repair + journal", ig)
	}

	// A second pass over the repaired shard is clean.
	vr2, err := cli.Verify(ctx, "emp")
	if err != nil {
		t.Fatalf("second Verify: %v", err)
	}
	if len(vr2.Failures) != 0 {
		t.Fatalf("repaired shard failed re-verification: %v", vr2.Failures)
	}
}

func TestIntegrityE2EFollowerChaosScrubRepair(t *testing.T) {
	ctx := context.Background()

	// Primary over the ErrFS seam: "acked" is precisely what ErrFS has
	// synced, and the mid-test crash loses exactly the rest.
	fs := wal.NewErrFS()
	newPrimary := func(addr string) (string, *catalog.Catalog, func()) {
		w, err := wal.Open(wal.Options{FS: fs, Sync: wal.SyncAlways, SegmentBytes: 1 << 20})
		if err != nil {
			t.Fatalf("wal.Open: %v", err)
		}
		cat := catalog.New(catalog.Config{
			NewClock: func() tx.Clock { return tx.NewLogicalClock(0, 10) },
			WAL:      w,
		})
		if err := cat.Open(); err != nil {
			t.Fatalf("catalog.Open: %v", err)
		}
		srv := server.New(server.Config{Catalog: cat})
		ln := listenAt(t, addr)
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		stop := func() {
			sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = hs.Shutdown(sctx)
			_ = w.Close()
		}
		return "http://" + ln.Addr().String(), cat, stop
	}
	base, _, pstop := newPrimary("")
	pcli := client.New(base)
	rels := []string{"emp", "dept", "proj"}
	for _, rel := range rels {
		if _, err := pcli.Create(ctx, namedSchema(rel)); err != nil {
			t.Fatalf("create %s: %v", rel, err)
		}
		for i := 0; i < 5; i++ {
			if _, err := pcli.Insert(ctx, rel, insertReq(int64(1000+i), fmt.Sprintf("%s%d", rel, i), int64(i))); err != nil {
				t.Fatalf("insert %s %d: %v", rel, i, err)
			}
		}
	}

	folDir := t.TempDir()
	fol := bootFollower(t, folDir, base)
	folCli := client.New(fol.url)
	waitUntil(t, "follower synced", func() bool {
		q, err := folCli.Current(ctx, "proj")
		return err == nil && len(q.Elements) == 5
	})
	if _, err := fol.cat.Snapshot(); err != nil {
		t.Fatalf("follower snapshot: %v", err)
	}

	// Kill the follower mid-scrub: the pass dies between artifacts with
	// the cursor persisted at the last completed one.
	arts, err := fol.cat.ScrubArtifacts()
	if err != nil {
		t.Fatalf("ScrubArtifacts: %v", err)
	}
	if len(arts) != 3 {
		t.Fatalf("follower lists %d artifacts, want 3 shards", len(arts))
	}
	cursorPath := filepath.Join(folDir, "scrub.cursor")
	scrubCtx, kill := context.WithCancel(ctx)
	n := 0
	sc := integrity.NewScrubber(integrity.ScrubberConfig{
		List: fol.cat.ScrubArtifacts,
		Verify: func(a integrity.Artifact) error {
			if n++; n == 2 {
				kill()
			}
			return fol.cat.VerifyArtifact(a)
		},
		OnCorrupt:  fol.cat.HandleCorrupt,
		CursorPath: cursorPath,
	})
	if _, _, err := sc.RunOnce(scrubCtx); err == nil {
		t.Fatal("interrupted scrub pass reported a completed walk")
	}
	if _, err := os.Stat(cursorPath); err != nil {
		t.Fatalf("no scrub cursor survived the kill: %v", err)
	}
	fol.stop()

	// The shard rots while the follower is down — the crash landed
	// before any repair finished.
	shard := filepath.Join(folDir, "emp.tsbl")
	data, err := os.ReadFile(shard)
	if err != nil {
		t.Fatalf("read shard: %v", err)
	}
	data[len(data)/2] ^= 0x04
	if err := os.WriteFile(shard, data, 0o644); err != nil {
		t.Fatalf("corrupt shard: %v", err)
	}

	// Meanwhile the primary keeps acking writes, then crash-reboots:
	// synced bytes survive, the poisoned tail does not.
	for i := 0; i < 3; i++ {
		if _, err := pcli.Insert(ctx, "emp", insertReq(int64(2000+i), fmt.Sprintf("late%d", i), int64(i))); err != nil {
			t.Fatalf("late insert %d: %v", i, err)
		}
	}
	fs.FailAt(1, wal.FaultCrash)
	if _, err := pcli.Insert(ctx, "emp", insertReq(9999, "lost", 1)); err == nil {
		t.Fatal("insert through a crashed WAL succeeded")
	}
	addr := base[len("http://"):]
	pstop()
	fs.CrashRecover()
	base2, pcat2, pstop2 := newPrimary(addr)
	defer pstop2()
	if base2 != base {
		t.Fatalf("primary rebooted at %s, want %s", base2, base)
	}

	// Restart the follower: boot quarantines the corrupt shard's bytes,
	// drops it, and re-fetches the relation's whole history from the
	// feed — the repair loop for shipped state.
	fol2 := bootFollower(t, folDir, base)
	defer fol2.stop()
	folCli2 := client.New(fol2.url)
	waitUntil(t, "restarted follower converged", func() bool {
		q, err := folCli2.Current(ctx, "emp")
		return err == nil && len(q.Elements) == 8
	})
	if _, err := os.Stat(filepath.Join(folDir, "quarantine", "emp.tsbl")); err != nil {
		t.Fatalf("no evidence copy of the dropped shard: %v", err)
	}
	events := fol2.cat.IntegrityEvents()
	var detected, repaired bool
	for _, ev := range events {
		if ev.Artifact == "emp.tsbl" && ev.Kind == "detect" {
			detected = true
		}
		if ev.Artifact == "emp.tsbl" && ev.Kind == "repair" {
			repaired = true
		}
	}
	if !detected || !repaired {
		t.Fatalf("boot journal lacks detect+repair for emp.tsbl: %+v", events)
	}

	// The scrub cursor resumes where the killed pass stopped: the two
	// completed artifacts are skipped, the pass finishes, and the next
	// one walks everything again.
	if _, err := fol2.cat.Snapshot(); err != nil {
		t.Fatalf("follower re-snapshot: %v", err)
	}
	sc2 := fol2.cat.NewScrubber(0)
	checked, failed, err := sc2.RunOnce(ctx)
	if err != nil {
		t.Fatalf("resumed scrub: %v", err)
	}
	if checked != 1 || failed != 0 {
		t.Fatalf("resumed scrub checked %d failed %d, want 1 checked (cursor skips completed artifacts), 0 failed", checked, failed)
	}
	if _, err := os.Stat(cursorPath); err == nil {
		t.Fatal("cursor file survived a completed pass")
	}
	checked, failed, err = sc2.RunOnce(ctx)
	if err != nil || checked != 3 || failed != 0 {
		t.Fatalf("full scrub after resume = %d checked %d failed %v, want 3 clean", checked, failed, err)
	}

	// Repaired state equals the primary's acked history exactly: the
	// same elements and the same Merkle root over the same history.
	for _, rel := range rels {
		pq, err := pcli.Query(ctx, rel, client.QueryRequest{Kind: client.QueryCurrent})
		if err != nil {
			t.Fatalf("primary current %s: %v", rel, err)
		}
		fq, err := folCli2.Query(ctx, rel, client.QueryRequest{Kind: client.QueryCurrent})
		if err != nil {
			t.Fatalf("follower current %s: %v", rel, err)
		}
		if len(pq.Elements) != len(fq.Elements) {
			t.Fatalf("%s: follower holds %d elements, primary %d", rel, len(fq.Elements), len(pq.Elements))
		}
		seen := make(map[uint64]bool, len(pq.Elements))
		for _, el := range pq.Elements {
			seen[el.ES] = true
		}
		for _, el := range fq.Elements {
			if !seen[el.ES] {
				t.Fatalf("%s: follower element %d was never acked by the primary", rel, el.ES)
			}
		}
		pe, err := pcat2.Get(rel)
		if err != nil {
			t.Fatalf("primary Get %s: %v", rel, err)
		}
		fe, err := fol2.cat.Get(rel)
		if err != nil {
			t.Fatalf("follower Get %s: %v", rel, err)
		}
		pst, fst := pe.IntegrityState(), fe.IntegrityState()
		if pst.Size != fst.Size || pst.Root != fst.Root {
			t.Fatalf("%s: follower tree (%d, %x) diverges from primary (%d, %x)",
				rel, fst.Size, fst.Root, pst.Size, pst.Root)
		}
	}
	if n := fol2.fol.Stats().LeafFailures; n != 0 {
		t.Fatalf("restarted follower counted %d leaf failures on a clean feed", n)
	}
}
