package server_test

// Cluster acceptance: one WAL-backed primary and two followers tailing
// its replication feed over real loopback HTTP. Writes land on the
// primary, show up on both followers with an explicit staleness bound,
// mutations against a follower fail typed, and the fan-out router pins
// each relation to a stable owner while serving multi-relation SELECTs
// concurrently. The chaos variant kills a follower mid-stream, keeps
// writing, and verifies the restarted follower converges — dedup window
// included — from its persisted watermarks.

import (
	"context"
	"net"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"repro/client"
	"repro/internal/catalog"
	"repro/internal/repl"
	"repro/internal/server"
	"repro/internal/tx"
	"repro/internal/wal"
	"repro/internal/wire"
)

// bootPrimary starts a WAL-backed server rooted at dir and returns its
// base URL alongside the catalog (for durable-LSN introspection).
func bootPrimary(t *testing.T, dir string) (string, *catalog.Catalog, func()) {
	t.Helper()
	w, err := wal.Open(wal.Options{Dir: filepath.Join(dir, "wal"), Sync: wal.SyncAlways})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	cat := catalog.New(catalog.Config{
		Dir:      filepath.Join(dir, "data"),
		NewClock: func() tx.Clock { return tx.NewLogicalClock(0, 10) },
		WAL:      w,
	})
	if err := cat.Open(); err != nil {
		t.Fatalf("catalog.Open: %v", err)
	}
	srv := server.New(server.Config{Catalog: cat})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = hs.Shutdown(ctx)
		if err := cat.Close(); err != nil {
			t.Errorf("primary catalog.Close: %v", err)
		}
	}
	return "http://" + ln.Addr().String(), cat, stop
}

// follower bundles one replica's moving parts for a test.
type follower struct {
	url  string
	cat  *catalog.Catalog
	fol  *repl.Follower
	stop func()
}

// bootFollower starts a read-only replica rooted at dir, tailing
// primary. Its catalog persists to dir so a restart resumes from the
// snapshotted watermarks, exactly as tsdbd -follow does.
func bootFollower(t *testing.T, dir, primary string) *follower {
	t.Helper()
	cat := catalog.New(catalog.Config{
		Dir:      dir,
		NewClock: func() tx.Clock { return tx.NewLogicalClock(0, 10) },
		Follower: true,
	})
	if err := cat.Open(); err != nil {
		t.Fatalf("follower catalog.Open: %v", err)
	}
	fol := repl.NewFollower(repl.FollowerConfig{
		Primary: primary, Catalog: cat,
		Wait: 25 * time.Millisecond, MaxBackoff: 50 * time.Millisecond,
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); fol.Run(ctx) }()
	srv := server.New(server.Config{Catalog: cat, Follower: fol})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	stop := func() {
		cancel()
		<-done
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer scancel()
		_ = hs.Shutdown(sctx)
		if err := cat.Close(); err != nil {
			t.Errorf("follower catalog.Close: %v", err)
		}
	}
	return &follower{url: "http://" + ln.Addr().String(), cat: cat, fol: fol, stop: stop}
}

func namedSchema(name string) client.Schema {
	s := empSchema()
	s.Name = name
	return s
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestClusterE2EReplicatedReadsAndRouting(t *testing.T) {
	ctx := context.Background()
	purl, pcat, pstop := bootPrimary(t, t.TempDir())
	defer pstop()
	pcli := client.New(purl)

	rels := []string{"emp", "dept", "proj"}
	for _, rel := range rels {
		if _, err := pcli.Create(ctx, namedSchema(rel)); err != nil {
			t.Fatalf("create %s: %v", rel, err)
		}
	}
	for i, rel := range rels {
		for j := 0; j <= i; j++ { // emp: 1 row, dept: 2, proj: 3
			if _, err := pcli.Insert(ctx, rel, insertReq(int64(100+10*j), "w", int64(1000*(j+1)))); err != nil {
				t.Fatalf("insert %s: %v", rel, err)
			}
		}
	}
	durable := pcat.WAL().DurableLSN()

	f1 := bootFollower(t, t.TempDir(), purl)
	defer f1.stop()
	f2 := bootFollower(t, t.TempDir(), purl)
	defer f2.stop()

	for _, f := range []*follower{f1, f2} {
		fcli := client.New(f.url)
		waitUntil(t, "follower ready", func() bool {
			r, err := fcli.Ready(ctx)
			return err == nil && r.Ready
		})
		waitUntil(t, "follower caught up", func() bool {
			return f.fol.Stats().AppliedLSN >= durable
		})

		// Every relation written on the primary is readable here, and the
		// response carries the explicit staleness bound.
		for i, rel := range rels {
			q, err := fcli.Current(ctx, rel)
			if err != nil {
				t.Fatalf("follower Current(%s): %v", rel, err)
			}
			if len(q.Elements) != i+1 {
				t.Fatalf("follower Current(%s) = %d elements, want %d", rel, len(q.Elements), i+1)
			}
		}
		resp, err := http.Get(f.url + "/healthz")
		if err != nil {
			t.Fatalf("follower healthz: %v", err)
		}
		resp.Body.Close()
		if resp.Header.Get(wire.HeaderStaleness) == "" {
			t.Fatalf("follower response carries no %s header", wire.HeaderStaleness)
		}
		h, err := fcli.Health(ctx)
		if err != nil {
			t.Fatalf("follower Health: %v", err)
		}
		if h.Role != "follower" || !h.ReadOnly {
			t.Fatalf("follower health = role %q read_only %v, want follower/true", h.Role, h.ReadOnly)
		}

		// Mutations are refused with the typed read-only error, both DML
		// and DDL.
		if _, err := fcli.Insert(ctx, "emp", insertReq(999, "x", 1)); !client.IsReadOnly(err) {
			t.Fatalf("follower insert err = %v, want read_only", err)
		}
		if _, err := fcli.Create(ctx, namedSchema("sneaky")); !client.IsReadOnly(err) {
			t.Fatalf("follower create err = %v, want read_only", err)
		}

		// Replication gauges are exposed.
		m, err := fcli.Metrics(ctx)
		if err != nil {
			t.Fatalf("follower Metrics: %v", err)
		}
		if m.Replication == nil || m.Replication.Role != "follower" || !m.Replication.Synced {
			t.Fatalf("follower metrics replication = %+v, want synced follower", m.Replication)
		}
	}

	if h, err := pcli.Health(ctx); err != nil || h.Role != "primary" {
		t.Fatalf("primary health role = %q (%v), want primary", h.Role, err)
	}
	if m, err := pcli.Metrics(ctx); err != nil || m.Replication == nil || m.Replication.TailRequests == 0 {
		t.Fatalf("primary metrics = %+v (%v), want tail traffic booked", m.Replication, err)
	}

	// Router: relation ownership is deterministic across instances, reads
	// pin to the owner, and a 3-relation fan-out merges in input order.
	r := client.NewRouter(purl, []string{f1.url, f2.url}, client.WithMaxStaleness(5*time.Second))
	r2 := client.NewRouter(purl, []string{f1.url, f2.url})
	nodes := map[string]bool{purl: true, f1.url: true, f2.url: true}
	for _, rel := range rels {
		own := r.Owner(rel)
		if !nodes[own] {
			t.Fatalf("Owner(%s) = %q, not a cluster node", rel, own)
		}
		if own != r2.Owner(rel) {
			t.Fatalf("Owner(%s) differs across router instances: %q vs %q", rel, own, r2.Owner(rel))
		}
	}
	queries := []string{
		"SELECT name FROM emp",
		"SELECT name FROM dept",
		"SELECT name FROM proj",
	}
	out, err := r.FanOut(ctx, queries)
	if err != nil {
		t.Fatalf("FanOut: %v", err)
	}
	for i := range queries {
		if len(out[i].Rows) != i+1 {
			t.Fatalf("FanOut[%d] = %d rows, want %d", i, len(out[i].Rows), i+1)
		}
	}
	// Routed single-relation reads and mutations work through the same
	// handle: the write goes to the primary, the read to the owner.
	if _, err := r.Insert(ctx, "emp", insertReq(500, "via-router", 9000)); err != nil {
		t.Fatalf("router Insert: %v", err)
	}
	waitUntil(t, "routed write visible", func() bool {
		q, err := r.Query(ctx, "emp", client.QueryRequest{Kind: client.QueryCurrent})
		return err == nil && len(q.Elements) == 2
	})
}

// TestChaosFollowerCatchUp kills a follower's tail loop mid-stream,
// keeps writing on the primary (including a keyed insert), then restarts
// the follower from its persisted snapshots and verifies it converges:
// same current rows as the acked primary state, the idempotency key
// present in the rebuilt dedup window, and no double-applied frames.
func TestChaosFollowerCatchUp(t *testing.T) {
	ctx := context.Background()
	purl, pcat, pstop := bootPrimary(t, t.TempDir())
	defer pstop()
	pcli := client.New(purl)

	if _, err := pcli.Create(ctx, empSchema()); err != nil {
		t.Fatalf("create: %v", err)
	}
	for _, vt := range []int64{100, 110, 120} {
		if _, err := pcli.Insert(ctx, "emp", insertReq(vt, "pre", 1000)); err != nil {
			t.Fatalf("insert vt=%d: %v", vt, err)
		}
	}

	fdir := t.TempDir()
	f := bootFollower(t, fdir, purl)
	waitUntil(t, "first catch-up", func() bool {
		return f.fol.Stats().AppliedLSN >= pcat.WAL().DurableLSN()
	})
	applied := f.fol.Stats().AppliedLSN

	// Kill the follower mid-stream: stop() cancels the tail loop and
	// Close snapshots the catalog — the crash-consistent state a real
	// follower flushes on SIGTERM (a kill -9 would just resume from the
	// last periodic snapshot's lower watermark; replay is idempotent
	// either way).
	f.stop()

	// The primary keeps going while the follower is down.
	const idemKey = "chaos-catchup-key"
	for _, vt := range []int64{200, 210} {
		if _, err := pcli.Insert(ctx, "emp", insertReq(vt, "during", 2000)); err != nil {
			t.Fatalf("insert vt=%d: %v", vt, err)
		}
	}
	keyed := rawKeyedInsert(t, purl, "emp", idemKey, insertReq(300, "keyed", 3000))
	// Retry of the same key on the primary dedups to the same element.
	if again := rawKeyedInsert(t, purl, "emp", idemKey, insertReq(300, "keyed", 3000)); again.ES != keyed.ES {
		t.Fatalf("primary keyed retry = es %d, want %d", again.ES, keyed.ES)
	}
	durable := pcat.WAL().DurableLSN()

	// Restart from the same directory: the tail resumes from the
	// persisted watermarks, not from zero.
	f = bootFollower(t, fdir, purl)
	defer f.stop()
	if resume := f.cat.ResumeLSN(); resume == 0 || resume > applied {
		t.Fatalf("restarted follower resume lsn = %d, want in (0, %d]", resume, applied)
	}
	waitUntil(t, "catch-up after restart", func() bool {
		return f.fol.Stats().AppliedLSN >= durable
	})

	fcli := client.New(f.url)
	pq, err := pcli.Current(ctx, "emp")
	if err != nil {
		t.Fatalf("primary Current: %v", err)
	}
	fq, err := fcli.Current(ctx, "emp")
	if err != nil {
		t.Fatalf("follower Current: %v", err)
	}
	if len(fq.Elements) != len(pq.Elements) {
		t.Fatalf("follower converged to %d current elements, primary has %d", len(fq.Elements), len(pq.Elements))
	}

	fe, err := f.cat.Get("emp")
	if err != nil {
		t.Fatalf("follower Get: %v", err)
	}
	if fe.AppliedLSN() != durable {
		t.Fatalf("follower applied lsn = %d, want %d", fe.AppliedLSN(), durable)
	}
	// The dedup window crossed the crash: the key shipped while the
	// follower was down is present after the restart, so a promoted
	// follower would still refuse the duplicate.
	if !fe.HasIdemKey(idemKey) {
		t.Fatal("restarted follower dedup window is missing the shipped idempotency key")
	}
}

// TestClusterE2EBatchFrameReplication proves the batched WAL frame ships
// to followers as-is: one walInsertBatch record per batch on the feed,
// applied all-or-nothing by the follower's shared replay path. Element
// surrogates and the per-element idempotency keys must match the
// primary's exactly — a promoted follower has to dedup the same retries
// the primary would. The second phase lands a batch while the follower
// is down and verifies catch-up replays it whole.
func TestClusterE2EBatchFrameReplication(t *testing.T) {
	ctx := context.Background()
	purl, pcat, pstop := bootPrimary(t, t.TempDir())
	defer pstop()
	pcli := client.New(purl)

	if _, err := pcli.Create(ctx, empSchema()); err != nil {
		t.Fatalf("create: %v", err)
	}

	fdir := t.TempDir()
	f := bootFollower(t, fdir, purl)
	waitUntil(t, "follower tailing", func() bool {
		return f.fol.Stats().AppliedLSN >= pcat.WAL().DurableLSN()
	})

	// A keyed batch and an interleaved single insert, shipped live.
	keys := []string{"bk-1", "bk-2", "bk-3"}
	var res wire.BatchInsertResponse
	if code := postJSON(t, pcli, "/v1/relations/emp/elements:batch", wire.BatchInsertRequest{
		Elements: []wire.InsertRequest{
			insertReq(100, "batch", 1000),
			insertReq(110, "batch", 2000),
			insertReq(120, "batch", 3000),
		},
		Keys: keys,
	}, &res); code != http.StatusCreated {
		t.Fatalf("batch insert: http %d", code)
	}
	if res.Stored != 3 {
		t.Fatalf("batch stored %d, want 3", res.Stored)
	}
	if _, err := pcli.Insert(ctx, "emp", insertReq(130, "single", 4000)); err != nil {
		t.Fatalf("single insert: %v", err)
	}
	durable := pcat.WAL().DurableLSN()
	waitUntil(t, "batch shipped", func() bool {
		return f.fol.Stats().AppliedLSN >= durable
	})

	fcli := client.New(f.url)
	pq, err := pcli.Current(ctx, "emp")
	if err != nil {
		t.Fatalf("primary Current: %v", err)
	}
	fq, err := fcli.Current(ctx, "emp")
	if err != nil {
		t.Fatalf("follower Current: %v", err)
	}
	if len(fq.Elements) != 4 || len(pq.Elements) != 4 {
		t.Fatalf("current = %d on follower / %d on primary, want 4/4", len(fq.Elements), len(pq.Elements))
	}
	ps := map[uint64]bool{}
	for _, el := range pq.Elements {
		ps[uint64(el.ES)] = true
	}
	for _, el := range fq.Elements {
		if !ps[uint64(el.ES)] {
			t.Fatalf("follower element es=%d not present on primary", el.ES)
		}
	}
	fe, err := f.cat.Get("emp")
	if err != nil {
		t.Fatalf("follower Get: %v", err)
	}
	for _, k := range keys {
		if !fe.HasIdemKey(k) {
			t.Fatalf("follower dedup window is missing batch key %q", k)
		}
	}

	// Phase two: batch lands while the follower is down; the restarted
	// tail replays the frame whole from its persisted watermark.
	f.stop()
	var res2 wire.BatchInsertResponse
	if code := postJSON(t, pcli, "/v1/relations/emp/elements:batch", wire.BatchInsertRequest{
		Elements: []wire.InsertRequest{
			insertReq(200, "down", 5000),
			insertReq(210, "down", 6000),
		},
		Keys: []string{"bk-down-1", "bk-down-2"},
	}, &res2); code != http.StatusCreated {
		t.Fatalf("offline batch: http %d", code)
	}
	durable = pcat.WAL().DurableLSN()

	f = bootFollower(t, fdir, purl)
	defer f.stop()
	waitUntil(t, "catch-up after restart", func() bool {
		return f.fol.Stats().AppliedLSN >= durable
	})
	fcli = client.New(f.url)
	fq, err = fcli.Current(ctx, "emp")
	if err != nil {
		t.Fatalf("follower Current after restart: %v", err)
	}
	if len(fq.Elements) != 6 {
		t.Fatalf("restarted follower sees %d current elements, want 6", len(fq.Elements))
	}
	fe, err = f.cat.Get("emp")
	if err != nil {
		t.Fatalf("follower Get after restart: %v", err)
	}
	for _, k := range []string{"bk-down-1", "bk-down-2"} {
		if !fe.HasIdemKey(k) {
			t.Fatalf("restarted follower dedup window is missing %q", k)
		}
	}
}
