package ingest

// RowReader is the header-driven CSV reader behind the server's
// streaming ingest endpoint. The first non-blank, non-comment line names
// the columns; every following data row must carry exactly that many
// fields. A ragged row — fewer or more columns than the header — is a
// *RowError naming the line, never silently truncated or padded, and the
// stream stays usable: the next call to Next continues at the following
// line, so one bad row costs one row.

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Row is one data row: its 1-based line number in the input and its
// fields, trimmed, one per header column.
type Row struct {
	Line   int
	Fields []string
}

// RowError reports one malformed data row. The reader remains usable;
// resuming with Next skips to the following line.
type RowError struct {
	Line int
	Msg  string
}

func (e *RowError) Error() string { return fmt.Sprintf("ingest: line %d: %s", e.Line, e.Msg) }

// RowReader streams header-described CSV rows.
type RowReader struct {
	sc     *bufio.Scanner
	header []string
	line   int
}

// NewRowReader reads the header line (the first non-blank, non-comment
// line) and validates it: no empty names, no duplicates.
func NewRowReader(r io.Reader) (*RowReader, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	rr := &RowReader{sc: sc}
	for sc.Scan() {
		rr.line++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rr.header = splitFields(line)
		seen := make(map[string]bool, len(rr.header))
		for _, h := range rr.header {
			if h == "" {
				return nil, fmt.Errorf("ingest: line %d: empty header column", rr.line)
			}
			if seen[h] {
				return nil, fmt.Errorf("ingest: line %d: duplicate header column %q", rr.line, h)
			}
			seen[h] = true
		}
		return rr, nil
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ingest: reading header: %w", err)
	}
	return nil, fmt.Errorf("ingest: empty input: no header line")
}

// Header returns the column names, in input order.
func (rr *RowReader) Header() []string { return rr.header }

// Next returns the next data row; io.EOF ends the stream. A row whose
// column count mismatches the header returns a *RowError with its line
// number — call Next again to continue past it.
func (rr *RowReader) Next() (Row, error) {
	for rr.sc.Scan() {
		rr.line++
		line := strings.TrimSpace(rr.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := splitFields(line)
		if len(fields) != len(rr.header) {
			return Row{}, &RowError{Line: rr.line, Msg: fmt.Sprintf(
				"row has %d columns, header has %d", len(fields), len(rr.header))}
		}
		return Row{Line: rr.line, Fields: fields}, nil
	}
	if err := rr.sc.Err(); err != nil {
		return Row{}, fmt.Errorf("ingest: line %d: %w", rr.line, err)
	}
	return Row{}, io.EOF
}

func splitFields(line string) []string {
	parts := strings.Split(line, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}
