package ingest

// Table-driven tests for the header-driven RowReader: header validation,
// ragged-row rejection with line numbers (never silent truncation or
// padding), and stream recovery after a bad row.

import (
	"errors"
	"io"
	"strings"
	"testing"
)

func TestRowReaderHeader(t *testing.T) {
	cases := []struct {
		name    string
		in      string
		header  []string
		wantErr string
	}{
		{
			name:   "plain header",
			in:     "vt,name,salary\n",
			header: []string{"vt", "name", "salary"},
		},
		{
			name:   "comments and blanks before header",
			in:     "# export 2026-08-07\n\n  \nvt, name , salary\n",
			header: []string{"vt", "name", "salary"},
		},
		{
			name:    "empty input",
			in:      "",
			wantErr: "no header",
		},
		{
			name:    "only comments",
			in:      "# nothing here\n\n",
			wantErr: "no header",
		},
		{
			name:    "empty column name",
			in:      "vt,,salary\n",
			wantErr: "empty header column",
		},
		{
			name:    "duplicate column name",
			in:      "vt,name,name\n",
			wantErr: `duplicate header column "name"`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rr, err := NewRowReader(strings.NewReader(tc.in))
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("NewRowReader err = %v, want containing %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("NewRowReader: %v", err)
			}
			got := rr.Header()
			if len(got) != len(tc.header) {
				t.Fatalf("header = %v, want %v", got, tc.header)
			}
			for i := range got {
				if got[i] != tc.header[i] {
					t.Fatalf("header = %v, want %v", got, tc.header)
				}
			}
		})
	}
}

func TestRowReaderRaggedRows(t *testing.T) {
	// Each case: input after the "a,b,c" header; expected sequence of
	// events where ok rows list their fields and bad rows their line
	// number. A ragged row must NOT be truncated or padded — it is an
	// error naming the line, and reading continues at the next row.
	type event struct {
		fields  []string // non-nil: a good row
		badLine int      // non-zero: *RowError with this line
	}
	cases := []struct {
		name string
		in   string
		want []event
	}{
		{
			name: "all square",
			in:   "1,2,3\n4,5,6\n",
			want: []event{{fields: []string{"1", "2", "3"}}, {fields: []string{"4", "5", "6"}}},
		},
		{
			name: "short row rejected not padded",
			in:   "1,2\n4,5,6\n",
			want: []event{{badLine: 2}, {fields: []string{"4", "5", "6"}}},
		},
		{
			name: "long row rejected not truncated",
			in:   "1,2,3,4\n4,5,6\n",
			want: []event{{badLine: 2}, {fields: []string{"4", "5", "6"}}},
		},
		{
			name: "bad rows interleaved, stream recovers",
			in:   "1,2,3\nx\n4,5,6\n7,8\n9,10,11\n",
			want: []event{
				{fields: []string{"1", "2", "3"}},
				{badLine: 3},
				{fields: []string{"4", "5", "6"}},
				{badLine: 5},
				{fields: []string{"9", "10", "11"}},
			},
		},
		{
			name: "comments and blanks keep line numbers honest",
			in:   "# comment\n1,2,3\n\nx,y\n4,5,6\n",
			want: []event{
				{fields: []string{"1", "2", "3"}},
				{badLine: 5},
				{fields: []string{"4", "5", "6"}},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rr, err := NewRowReader(strings.NewReader("a,b,c\n" + tc.in))
			if err != nil {
				t.Fatalf("NewRowReader: %v", err)
			}
			for i, want := range tc.want {
				row, err := rr.Next()
				if want.badLine != 0 {
					var re *RowError
					if !errors.As(err, &re) {
						t.Fatalf("event %d: err = %v, want *RowError", i, err)
					}
					if re.Line != want.badLine {
						t.Fatalf("event %d: RowError line = %d, want %d", i, re.Line, want.badLine)
					}
					continue
				}
				if err != nil {
					t.Fatalf("event %d: Next: %v", i, err)
				}
				if len(row.Fields) != len(want.fields) {
					t.Fatalf("event %d: fields = %v, want %v", i, row.Fields, want.fields)
				}
				for j := range row.Fields {
					if row.Fields[j] != want.fields[j] {
						t.Fatalf("event %d: fields = %v, want %v", i, row.Fields, want.fields)
					}
				}
			}
			if _, err := rr.Next(); !errors.Is(err, io.EOF) {
				t.Fatalf("after last event: err = %v, want io.EOF", err)
			}
		})
	}
}
