package ingest

import (
	"strings"
	"testing"

	"repro/internal/chronon"
)

func TestCSVEvents(t *testing.T) {
	in := `
# monitoring trace
100,95
200,190

300,280
`
	elems, parts, err := CSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(elems) != 3 {
		t.Fatalf("elements = %d", len(elems))
	}
	if elems[0].TTStart != 100 {
		t.Errorf("tt = %v", elems[0].TTStart)
	}
	if vt, ok := elems[0].VT.Event(); !ok || vt != 95 {
		t.Errorf("vt = %v, %v", vt, ok)
	}
	if len(parts) != 1 || len(parts[1]) != 3 {
		t.Errorf("partitions = %v", parts)
	}
	// Surrogates unique and sequential.
	for i, e := range elems {
		if int(e.ES) != i+1 {
			t.Errorf("es[%d] = %v", i, e.ES)
		}
		if !e.Current() {
			t.Errorf("element %d not current", i)
		}
	}
}

func TestCSVIntervalsAndPartitions(t *testing.T) {
	in := `os=7,100,0,50
os=8,200,50,100
os=7,300,50,100`
	elems, parts, err := CSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(elems) != 3 || len(parts) != 2 {
		t.Fatalf("elems %d, parts %d", len(elems), len(parts))
	}
	iv, ok := elems[0].VT.Interval()
	if !ok || iv.Start != 0 || iv.End != 50 {
		t.Errorf("interval = %v, %v", iv, ok)
	}
	if len(parts[7]) != 2 || len(parts[8]) != 1 {
		t.Errorf("partition sizes wrong")
	}
}

func TestCSVDateTimes(t *testing.T) {
	in := `1992-02-03,1992-02-03 00:00:30
1992-02-04,1992-02-03 23:59:00`
	elems, _, err := CSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if elems[0].TTStart != chronon.Date(1992, 2, 3) {
		t.Errorf("tt = %v", elems[0].TTStart)
	}
	if vt, _ := elems[0].VT.Event(); vt != chronon.DateTime(1992, 2, 3, 0, 0, 30) {
		t.Errorf("vt = %v", vt)
	}
}

func TestCSVErrors(t *testing.T) {
	bad := []string{
		"100",
		"100,200,300,400",
		"x,200",
		"100,y",
		"os=zero,100,200",
		"os=0,100,200",
		"100,50,50",
		"100,60,50",
		"1992-13-01,5",
	}
	for _, in := range bad {
		if _, _, err := CSV(strings.NewReader(in)); err == nil {
			t.Errorf("CSV(%q) succeeded", in)
		}
	}
}

func TestCSVEmptyInput(t *testing.T) {
	elems, parts, err := CSV(strings.NewReader("# only comments\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(elems) != 0 || len(parts) != 0 {
		t.Errorf("empty input produced %d elements", len(elems))
	}
}

func TestTimeParser(t *testing.T) {
	if c, err := Time("42"); err != nil || c != 42 {
		t.Errorf("Time(42) = %v, %v", c, err)
	}
	if c, err := Time("-42"); err != nil || c != -42 {
		t.Errorf("Time(-42) = %v, %v", c, err)
	}
	if c, err := Time("1970-01-02"); err != nil || c != 86400 {
		t.Errorf("Time(date) = %v, %v", c, err)
	}
	if _, err := Time("not-a-time"); err == nil {
		t.Error("garbage accepted")
	}
}
