// Package ingest parses external descriptions of relation extensions —
// the CSV format consumed by cmd/classify. One element per line:
//
//	tt,vt          an event element
//	tt,vts,vte     an interval element (half-open valid interval)
//
// Times are integer chronons or "YYYY-MM-DD[ HH:MM:SS]" date-times. Lines
// starting with '#' and blank lines are skipped. An optional leading
// "os=<n>" column assigns the element to an object partition.
package ingest

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/chronon"
	"repro/internal/element"
	"repro/internal/surrogate"
)

// CSV parses an extension. It returns the elements in input order and the
// per-surrogate partitioning.
func CSV(r io.Reader) ([]*element.Element, map[surrogate.Surrogate][]*element.Element, error) {
	sc := bufio.NewScanner(r)
	var elems []*element.Element
	parts := make(map[surrogate.Surrogate][]*element.Element)
	var es uint64
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		os := surrogate.Surrogate(1)
		if strings.HasPrefix(strings.TrimSpace(fields[0]), "os=") {
			n, err := strconv.ParseUint(strings.TrimPrefix(strings.TrimSpace(fields[0]), "os="), 10, 64)
			if err != nil || n == 0 {
				return nil, nil, fmt.Errorf("ingest: line %d: bad object surrogate %q", lineNo, fields[0])
			}
			os = surrogate.Surrogate(n)
			fields = fields[1:]
		}
		times := make([]chronon.Chronon, 0, 3)
		for _, f := range fields {
			c, err := Time(strings.TrimSpace(f))
			if err != nil {
				return nil, nil, fmt.Errorf("ingest: line %d: %v", lineNo, err)
			}
			times = append(times, c)
		}
		es++
		e := &element.Element{ES: surrogate.Surrogate(es), OS: os, TTEnd: chronon.Forever}
		switch len(times) {
		case 2:
			e.TTStart = times[0]
			e.VT = element.EventAt(times[1])
		case 3:
			if times[2] <= times[1] {
				return nil, nil, fmt.Errorf("ingest: line %d: empty or inverted interval [%v, %v)", lineNo, times[1], times[2])
			}
			e.TTStart = times[0]
			e.VT = element.SpanOf(times[1], times[2])
		default:
			return nil, nil, fmt.Errorf("ingest: line %d: want 2 or 3 time columns, got %d", lineNo, len(times))
		}
		elems = append(elems, e)
		parts[os] = append(parts[os], e)
	}
	return elems, parts, sc.Err()
}

// Time parses an integer chronon or a civil date-time.
func Time(s string) (chronon.Chronon, error) {
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return chronon.Chronon(n), nil
	}
	cv, err := chronon.ParseCivil(s)
	if err != nil {
		return 0, fmt.Errorf("bad time %q", s)
	}
	return cv.Chronon(), nil
}
