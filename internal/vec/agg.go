package vec

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/chronon"
	"repro/internal/element"
)

// AggKind enumerates the supported aggregate functions.
type AggKind uint8

const (
	AggCount AggKind = iota
	AggSum
	AggMin
	AggMax
)

func (k AggKind) String() string {
	switch k {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	}
	return fmt.Sprintf("AggKind(%d)", uint8(k))
}

// AggCall is one aggregate in a query's select list. Get extracts the
// aggregated column from an element; nil means COUNT(*).
type AggCall struct {
	Kind AggKind
	Col  string
	Get  func(*element.Element) element.Value
}

// WindowKind enumerates the GROUP BY WINDOW modes.
type WindowKind uint8

const (
	// Tumbling emits one row per non-empty fixed window.
	Tumbling WindowKind = iota
	// Rolling emits, for each base window in the populated span, the
	// aggregate over the K windows ending there.
	Rolling
	// Cumulative emits running state: each window's row aggregates
	// everything from the first populated window up to it.
	Cumulative
)

func (k WindowKind) String() string {
	switch k {
	case Tumbling:
		return "tumbling"
	case Rolling:
		return "rolling"
	case Cumulative:
		return "cumulative"
	}
	return fmt.Sprintf("WindowKind(%d)", uint8(k))
}

// MaxWindows bounds both a single element's window span and the emitted
// window range. Valid-time intervals may extend to Forever; without the
// bound a single open interval would fan out into 2^56 windows. Both
// engines enforce the identical bound so a guard trip is itself a
// deterministic, differential-testable answer.
const MaxWindows = 1 << 16

// MaxWidth bounds window widths; MaxRolling bounds the rolling extent.
const (
	MaxWidth   = int64(1) << 32
	MaxRolling = int64(1) << 16
)

// Spec is a fully-compiled window aggregation: the vectorizable filter,
// an optional residual row predicate (Allen clauses, WHERE), the window
// geometry, and the aggregate list. Both engines execute the same Spec,
// which is what makes their answers comparable bit for bit.
type Spec struct {
	Width  int64
	WKind  WindowKind
	K      int64 // rolling extent in windows; ignored otherwise
	Aggs   []AggCall
	Filter Filter
	// Residual is the row-at-a-time remainder of the selection; nil
	// when the Filter captures the whole predicate.
	Residual func(*element.Element) (bool, error)
}

// Validate checks the spec's geometry.
func (s *Spec) Validate() error {
	if s.Width < 1 || s.Width > MaxWidth {
		return fmt.Errorf("vec: window width %d out of range [1, %d]", s.Width, MaxWidth)
	}
	if s.WKind == Rolling && (s.K < 1 || s.K > MaxRolling) {
		return fmt.Errorf("vec: rolling extent %d out of range [1, %d]", s.K, MaxRolling)
	}
	if len(s.Aggs) == 0 {
		return fmt.Errorf("vec: no aggregate calls")
	}
	return nil
}

// AggResult is the computed windows in ascending window order. Window i
// covers valid time [Start[i], End[i]) and Vals[i] holds one value per
// AggCall.
type AggResult struct {
	Start []int64
	End   []int64
	Vals  [][]element.Value
}

const (
	sumNone uint8 = iota
	sumInt
	sumFloat
)

// cell is one (window, aggregate call) accumulator. Sum keeps separate
// int and float lanes so integer sums stay exact; min/max keep the
// current extreme in ext.
type cell struct {
	n    int64
	si   int64
	sf   float64
	mode uint8
	ext  element.Value
	has  bool
}

// updateCells folds one element into a window's accumulator row.
func updateCells(cells []cell, aggs []AggCall, e *element.Element) error {
	for ai := range aggs {
		a := &aggs[ai]
		c := &cells[ai]
		if a.Get == nil { // COUNT(*)
			c.n++
			continue
		}
		v := a.Get(e)
		if v.IsNull() {
			continue
		}
		switch a.Kind {
		case AggCount:
			c.n++
		case AggSum:
			switch v.Kind() {
			case element.KindInt:
				if c.mode == sumFloat {
					return fmt.Errorf("vec: sum(%s) over mixed int and float values", a.Col)
				}
				c.mode = sumInt
				i, _ := v.IntVal()
				c.si += i
			case element.KindFloat:
				if c.mode == sumInt {
					return fmt.Errorf("vec: sum(%s) over mixed int and float values", a.Col)
				}
				c.mode = sumFloat
				f, _ := v.FloatVal()
				c.sf += f
			default:
				return fmt.Errorf("vec: sum(%s) over %v values", a.Col, v.Kind())
			}
		case AggMin, AggMax:
			if !c.has {
				c.ext, c.has = v, true
				continue
			}
			if v.Kind() != c.ext.Kind() {
				return fmt.Errorf("vec: %s(%s) over mixed %v and %v values",
					a.Kind, a.Col, c.ext.Kind(), v.Kind())
			}
			if d := v.Compare(c.ext); (a.Kind == AggMin && d < 0) || (a.Kind == AggMax && d > 0) {
				c.ext = v
			}
		}
	}
	return nil
}

// mergeCells folds src into dst (same AggCall layout); used by the
// rolling and cumulative emitters.
func mergeCells(dst, src []cell, aggs []AggCall) error {
	for ai := range aggs {
		a := &aggs[ai]
		d, s := &dst[ai], &src[ai]
		d.n += s.n
		if s.mode != sumNone {
			if d.mode != sumNone && d.mode != s.mode {
				return fmt.Errorf("vec: sum(%s) over mixed int and float values", a.Col)
			}
			d.mode = s.mode
			d.si += s.si
			d.sf += s.sf
		}
		if s.has {
			if !d.has {
				d.ext, d.has = s.ext, true
			} else {
				if s.ext.Kind() != d.ext.Kind() {
					return fmt.Errorf("vec: %s(%s) over mixed %v and %v values",
						a.Kind, a.Col, d.ext.Kind(), s.ext.Kind())
				}
				if c := s.ext.Compare(d.ext); (a.Kind == AggMin && c < 0) || (a.Kind == AggMax && c > 0) {
					d.ext = s.ext
				}
			}
		}
	}
	return nil
}

// finalize converts an accumulator row into output values. Empty sums
// and unseeded extremes are SQL-style NULL; counts are 0.
func finalize(cells []cell, aggs []AggCall) []element.Value {
	out := make([]element.Value, len(aggs))
	for ai := range aggs {
		c := &cells[ai]
		switch aggs[ai].Kind {
		case AggCount:
			out[ai] = element.Int(c.n)
		case AggSum:
			switch c.mode {
			case sumInt:
				out[ai] = element.Int(c.si)
			case sumFloat:
				out[ai] = element.Float(c.sf)
			default:
				out[ai] = element.Null()
			}
		case AggMin, AggMax:
			if c.has {
				out[ai] = c.ext
			} else {
				out[ai] = element.Null()
			}
		}
	}
	return out
}

// floorDiv divides flooring toward minus infinity, so negative valid
// times land in the window that actually covers them.
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// accum is the shared accumulation state: one cell row per populated
// window index. The batch engine additionally memoizes the last window
// row — vt-ordered input lands runs of consecutive rows in the same
// window, turning most map lookups into a pointer compare.
type accum struct {
	spec  *Spec
	cells map[int64][]cell

	lastIdx  int64
	lastRow  []cell
	haveLast bool
}

func newAccum(spec *Spec) *accum {
	return &accum{spec: spec, cells: make(map[int64][]cell)}
}

func (ac *accum) row(wi int64) []cell {
	if ac.haveLast && wi == ac.lastIdx {
		return ac.lastRow
	}
	r, ok := ac.cells[wi]
	if !ok {
		r = make([]cell, len(ac.spec.Aggs))
		ac.cells[wi] = r
	}
	ac.lastIdx, ac.lastRow, ac.haveLast = wi, r, true
	return r
}

// add folds one element's valid extent [vtStart, vtEnd) into every
// window it overlaps, clamped to the filter window if one is set.
func (ac *accum) add(vtStart, vtEnd int64, e *element.Element) error {
	s, en := vtStart, vtEnd
	if ac.spec.Filter.HasVT {
		if s < ac.spec.Filter.VTLo {
			s = ac.spec.Filter.VTLo
		}
		if en > ac.spec.Filter.VTHi {
			en = ac.spec.Filter.VTHi
		}
	}
	if s >= en {
		return nil
	}
	w := ac.spec.Width
	wLo := floorDiv(s, w)
	wHi := floorDiv(en-1, w)
	if wHi-wLo+1 > MaxWindows {
		return fmt.Errorf("vec: element spans %d windows (max %d); narrow the window or add a WHEN clamp",
			wHi-wLo+1, MaxWindows)
	}
	for wi := wLo; wi <= wHi; wi++ {
		if err := updateCells(ac.row(wi), ac.spec.Aggs, e); err != nil {
			return err
		}
	}
	return nil
}

// emit materializes the populated windows into the result, applying the
// window mode. Both engines share it, so engine equality reduces to
// per-window cell equality.
func (ac *accum) emit() (*AggResult, error) {
	res := &AggResult{}
	if len(ac.cells) == 0 {
		return res, nil
	}
	idxs := make([]int64, 0, len(ac.cells))
	for wi := range ac.cells {
		idxs = append(idxs, wi)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	first, last := idxs[0], idxs[len(idxs)-1]
	if last-first+1 > MaxWindows {
		return nil, fmt.Errorf("vec: result spans %d windows (max %d); narrow the window or add a WHEN clamp",
			last-first+1, MaxWindows)
	}
	w := ac.spec.Width
	aggs := ac.spec.Aggs
	push := func(start, end int64, vals []element.Value) {
		res.Start = append(res.Start, start)
		res.End = append(res.End, end)
		res.Vals = append(res.Vals, vals)
	}
	switch ac.spec.WKind {
	case Tumbling:
		for _, wi := range idxs {
			push(wi*w, (wi+1)*w, finalize(ac.cells[wi], aggs))
		}
	case Rolling:
		// One row per base window in [first, last]; each aggregates the
		// K windows ending there, so the row's span is the extent.
		for wi := first; wi <= last; wi++ {
			merged := make([]cell, len(aggs))
			for k := wi - ac.spec.K + 1; k <= wi; k++ {
				if row, ok := ac.cells[k]; ok {
					if err := mergeCells(merged, row, aggs); err != nil {
						return nil, err
					}
				}
			}
			push((wi-ac.spec.K+1)*w, (wi+1)*w, finalize(merged, aggs))
		}
	case Cumulative:
		running := make([]cell, len(aggs))
		for wi := first; wi <= last; wi++ {
			if row, ok := ac.cells[wi]; ok {
				if err := mergeCells(running, row, aggs); err != nil {
					return nil, err
				}
			}
			push(first*w, (wi+1)*w, finalize(running, aggs))
		}
	default:
		return nil, fmt.Errorf("vec: unknown window kind %v", ac.spec.WKind)
	}
	return res, nil
}

// rowCheckEvery is how often the row engine polls for cancellation.
const rowCheckEvery = 1024

// RowAggregate is the reference engine: row-at-a-time over materialized
// elements in arrival order, using the elements' own predicate methods.
// The differential harness holds the columnar engine to its answers.
func RowAggregate(ctx context.Context, spec *Spec, elems []*element.Element) (*AggResult, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	ac := newAccum(spec)
	f := spec.Filter
	for i, e := range elems {
		if i%rowCheckEvery == rowCheckEvery-1 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if f.AsOf {
			if !e.PresentAt(chronon.Chronon(f.TT)) {
				continue
			}
		} else if !e.Current() {
			continue
		}
		vts, vte := validSpan(e)
		if f.HasVT && (vts >= f.VTHi || vte <= f.VTLo) {
			continue
		}
		if spec.Residual != nil {
			ok, err := spec.Residual(e)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		if err := ac.addUnmemoized(vts, vte, e); err != nil {
			return nil, err
		}
	}
	return ac.emit()
}

// addUnmemoized is add without the hot-window memo, keeping the row
// engine's per-contribution cost honest for benchmarking.
func (ac *accum) addUnmemoized(vtStart, vtEnd int64, e *element.Element) error {
	s, en := vtStart, vtEnd
	if ac.spec.Filter.HasVT {
		if s < ac.spec.Filter.VTLo {
			s = ac.spec.Filter.VTLo
		}
		if en > ac.spec.Filter.VTHi {
			en = ac.spec.Filter.VTHi
		}
	}
	if s >= en {
		return nil
	}
	w := ac.spec.Width
	wLo := floorDiv(s, w)
	wHi := floorDiv(en-1, w)
	if wHi-wLo+1 > MaxWindows {
		return fmt.Errorf("vec: element spans %d windows (max %d); narrow the window or add a WHEN clamp",
			wHi-wLo+1, MaxWindows)
	}
	for wi := wLo; wi <= wHi; wi++ {
		row, ok := ac.cells[wi]
		if !ok {
			row = make([]cell, len(ac.spec.Aggs))
			ac.cells[wi] = row
		}
		if err := updateCells(row, ac.spec.Aggs, e); err != nil {
			return err
		}
	}
	return nil
}

// ColAgg is the batch consumer: feed it batches, then Result.
type ColAgg struct {
	spec *Spec
	ac   *accum
	sel  []int32
	// starOnly marks a COUNT(*)-only aggregate list: the fold reads
	// nothing but the batch's timestamp columns, so sealed runs aggregate
	// without dereferencing a single element.
	starOnly bool
}

// NewColAgg builds the batch-at-a-time aggregation operator.
func NewColAgg(spec *Spec) (*ColAgg, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	starOnly := true
	for i := range spec.Aggs {
		if spec.Aggs[i].Get != nil {
			starOnly = false
			break
		}
	}
	return &ColAgg{spec: spec, ac: newAccum(spec), sel: make([]int32, 0, BatchSize), starOnly: starOnly}, nil
}

// Consume folds one batch into the aggregation state.
func (a *ColAgg) Consume(b *Batch, stats *ExecStats) error {
	stats.Batches++
	stats.Rows += int64(b.N)
	a.sel = a.spec.Filter.Apply(b, a.sel[:0])
	res := a.spec.Residual
	if a.starOnly && res == nil {
		return a.consumeCounts(b)
	}
	for _, i := range a.sel {
		e := b.Elems[i]
		if res != nil {
			ok, err := res(e)
			if err != nil {
				return err
			}
			if !ok {
				continue
			}
		}
		if err := a.ac.add(b.VTStart[i], b.VTEnd[i], e); err != nil {
			return err
		}
	}
	return nil
}

// consumeCounts is the vectorized COUNT(*) path: window indices come
// straight from the batch's valid-time columns. Semantics are exactly the
// generic path's — updateCells with a nil Get only increments each cell's
// count — but the per-row cost is two floor divisions and an increment,
// with no element access. Rows that span several windows (or trip the
// span guard) fall back to the shared add, so guard errors stay identical
// to the row engine's.
func (a *ColAgg) consumeCounts(b *Batch) error {
	w := a.spec.Width
	f := a.spec.Filter
	for _, i := range a.sel {
		s, en := b.VTStart[i], b.VTEnd[i]
		if f.HasVT {
			if s < f.VTLo {
				s = f.VTLo
			}
			if en > f.VTHi {
				en = f.VTHi
			}
			if s >= en {
				continue
			}
		}
		wi := floorDiv(s, w)
		if floorDiv(en-1, w) != wi {
			if err := a.ac.add(b.VTStart[i], b.VTEnd[i], nil); err != nil {
				return err
			}
			continue
		}
		row := a.ac.row(wi)
		for ci := range row {
			row[ci].n++
		}
	}
	return nil
}

// Result emits the aggregated windows.
func (a *ColAgg) Result() (*AggResult, error) { return a.ac.emit() }

// validSpan is the element's half-open valid extent: events are the
// single chronon [vt, vt+1), intervals their own [start, end).
func validSpan(e *element.Element) (int64, int64) {
	if c, ok := e.VT.Event(); ok {
		return int64(c), int64(c) + 1
	}
	return int64(e.VT.Start()), int64(e.VT.End())
}
