package vec

import (
	"context"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/chronon"
	"repro/internal/element"
	"repro/internal/surrogate"
)

// ev builds a current event element with one varying value.
func ev(i int, vt int64, v element.Value) *element.Element {
	return &element.Element{
		ES: surrogate.Surrogate(i + 1), OS: 1,
		TTStart: chronon.Chronon(10 * (i + 1)), TTEnd: chronon.Forever,
		VT:      element.EventAt(chronon.Chronon(vt)),
		Varying: []element.Value{v},
	}
}

// iv builds a current interval element with one varying value.
func iv(i int, lo, hi int64, v element.Value) *element.Element {
	e := ev(i, 0, v)
	e.VT = element.SpanOf(chronon.Chronon(lo), chronon.Chronon(hi))
	return e
}

func getVar(e *element.Element) element.Value { return e.Varying[0] }

func rowAgg(t *testing.T, spec *Spec, elems []*element.Element) *AggResult {
	t.Helper()
	res, err := RowAggregate(context.Background(), spec, elems)
	if err != nil {
		t.Fatalf("RowAggregate: %v", err)
	}
	return res
}

func TestFloorDiv(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{0, 10, 0}, {9, 10, 0}, {10, 10, 1}, {-1, 10, -1},
		{-10, 10, -1}, {-11, 10, -2}, {25, 7, 3}, {-25, 7, -4},
	}
	for _, c := range cases {
		if got := floorDiv(c.a, c.b); got != c.want {
			t.Errorf("floorDiv(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestTumblingCountSum(t *testing.T) {
	elems := []*element.Element{
		ev(0, 5, element.Int(1)),
		ev(1, 7, element.Int(2)),
		ev(2, 25, element.Int(4)),
		// Window [30, 40) stays empty: tumbling must skip it.
		ev(3, 45, element.Int(8)),
	}
	spec := &Spec{Width: 10, Aggs: []AggCall{
		{Kind: AggCount}, {Kind: AggSum, Col: "v", Get: getVar},
	}}
	res := rowAgg(t, spec, elems)
	wantStart := []int64{0, 20, 40}
	wantEnd := []int64{10, 30, 50}
	if !reflect.DeepEqual(res.Start, wantStart) || !reflect.DeepEqual(res.End, wantEnd) {
		t.Fatalf("windows [%v, %v), want [%v, %v)", res.Start, res.End, wantStart, wantEnd)
	}
	wantVals := [][]element.Value{
		{element.Int(2), element.Int(3)},
		{element.Int(1), element.Int(4)},
		{element.Int(1), element.Int(8)},
	}
	if !reflect.DeepEqual(res.Vals, wantVals) {
		t.Fatalf("vals %v, want %v", res.Vals, wantVals)
	}
}

func TestIntervalSpansWindows(t *testing.T) {
	// One interval [5, 25) overlaps windows 0, 1 and 2 and must count in
	// each; the exclusive end keeps [20, 30) the last window, not [30, 40).
	elems := []*element.Element{iv(0, 5, 25, element.Int(1))}
	spec := &Spec{Width: 10, Aggs: []AggCall{{Kind: AggCount}}}
	res := rowAgg(t, spec, elems)
	if want := []int64{0, 10, 20}; !reflect.DeepEqual(res.Start, want) {
		t.Fatalf("starts %v, want %v", res.Start, want)
	}
}

func TestRollingAndCumulative(t *testing.T) {
	elems := []*element.Element{
		ev(0, 5, element.Int(1)),
		ev(1, 15, element.Int(2)),
		ev(2, 35, element.Int(4)),
	}
	roll := &Spec{Width: 10, WKind: Rolling, K: 2, Aggs: []AggCall{{Kind: AggSum, Col: "v", Get: getVar}}}
	res := rowAgg(t, roll, elems)
	// Base windows 0..3; each row sums the 2 windows ending there.
	wantVals := [][]element.Value{
		{element.Int(1)}, {element.Int(3)}, {element.Int(2)}, {element.Int(4)},
	}
	if !reflect.DeepEqual(res.Vals, wantVals) {
		t.Fatalf("rolling vals %v, want %v", res.Vals, wantVals)
	}
	if res.Start[1] != 0 || res.End[1] != 20 {
		t.Fatalf("rolling span [%d, %d), want [0, 20)", res.Start[1], res.End[1])
	}

	cum := &Spec{Width: 10, WKind: Cumulative, Aggs: []AggCall{{Kind: AggSum, Col: "v", Get: getVar}}}
	res = rowAgg(t, cum, elems)
	wantVals = [][]element.Value{
		{element.Int(1)}, {element.Int(3)}, {element.Int(3)}, {element.Int(7)},
	}
	if !reflect.DeepEqual(res.Vals, wantVals) {
		t.Fatalf("cumulative vals %v, want %v", res.Vals, wantVals)
	}
	for i := range res.Start {
		if res.Start[i] != 0 {
			t.Fatalf("cumulative row %d starts at %d, want 0", i, res.Start[i])
		}
	}
}

func TestMinMaxAndNulls(t *testing.T) {
	elems := []*element.Element{
		ev(0, 5, element.Float(2.5)),
		ev(1, 6, element.Null()),
		ev(2, 7, element.Float(-1.5)),
	}
	spec := &Spec{Width: 10, Aggs: []AggCall{
		{Kind: AggMin, Col: "v", Get: getVar},
		{Kind: AggMax, Col: "v", Get: getVar},
		{Kind: AggCount, Col: "v", Get: getVar},
		{Kind: AggCount},
	}}
	res := rowAgg(t, spec, elems)
	want := []element.Value{element.Float(-1.5), element.Float(2.5), element.Int(2), element.Int(3)}
	if !reflect.DeepEqual(res.Vals[0], want) {
		t.Fatalf("vals %v, want %v", res.Vals[0], want)
	}
	// All-null column: sum and extremes are NULL, count(col) is 0.
	nulls := []*element.Element{ev(0, 5, element.Null())}
	spec = &Spec{Width: 10, Aggs: []AggCall{
		{Kind: AggSum, Col: "v", Get: getVar},
		{Kind: AggMin, Col: "v", Get: getVar},
		{Kind: AggCount, Col: "v", Get: getVar},
	}}
	res = rowAgg(t, spec, nulls)
	for i := 0; i < 2; i++ {
		if !res.Vals[0][i].IsNull() {
			t.Fatalf("val %d = %v, want NULL", i, res.Vals[0][i])
		}
	}
	if n, _ := res.Vals[0][2].IntVal(); n != 0 {
		t.Fatalf("count(v) = %d, want 0", n)
	}
}

func TestMixedSumRejected(t *testing.T) {
	elems := []*element.Element{
		ev(0, 5, element.Int(1)),
		ev(1, 6, element.Float(2.0)),
	}
	spec := &Spec{Width: 10, Aggs: []AggCall{{Kind: AggSum, Col: "v", Get: getVar}}}
	_, err := RowAggregate(context.Background(), spec, elems)
	if err == nil || !strings.Contains(err.Error(), "mixed int and float") {
		t.Fatalf("err = %v, want mixed-sum rejection", err)
	}
}

func TestMaxWindowsGuard(t *testing.T) {
	// A single interval spanning far more than MaxWindows windows trips
	// the guard with a deterministic error, not an OOM.
	wide := iv(0, 0, (MaxWindows+10)*10, element.Int(1))
	spec := &Spec{Width: 10, Aggs: []AggCall{{Kind: AggCount}}}
	_, err := RowAggregate(context.Background(), spec, []*element.Element{wide})
	if err == nil || !strings.Contains(err.Error(), "windows") {
		t.Fatalf("err = %v, want span guard", err)
	}
	agg, err := NewColAgg(spec)
	if err != nil {
		t.Fatal(err)
	}
	var b Batch
	fillOne(&b, wide)
	var stats ExecStats
	if err := agg.Consume(&b, &stats); err == nil || !strings.Contains(err.Error(), "windows") {
		t.Fatalf("columnar err = %v, want span guard", err)
	}
}

// fillOne loads a single element into a batch the way BatchReader does.
func fillOne(b *Batch, e *element.Element) {
	b.N = 1
	b.Elems = append(b.Elems[:0], e)
	b.TTStart[0], b.TTEnd[0] = int64(e.TTStart), int64(e.TTEnd)
	if c, ok := e.VT.Event(); ok {
		b.VTStart[0], b.VTEnd[0] = int64(c), int64(c)+1
	} else {
		b.VTStart[0], b.VTEnd[0] = int64(e.VT.Start()), int64(e.VT.End())
	}
}

func TestFilterApplyMatchesElementPredicates(t *testing.T) {
	open := ev(0, 5, element.Int(1))
	closed := ev(1, 6, element.Int(2))
	closed.TTEnd = 100

	check := func(f Filter, e *element.Element, want bool) {
		t.Helper()
		var b Batch
		fillOne(&b, e)
		got := len(f.Apply(&b, nil)) == 1
		if got != want {
			t.Errorf("filter %+v on %v: got %v, want %v", f, e, got, want)
		}
	}
	check(Filter{}, open, true)
	check(Filter{}, closed, false)
	for _, tt := range []int64{0, 20, 99, 100, 101} {
		f := Filter{AsOf: true, TT: tt}
		check(f, open, open.PresentAt(chronon.Chronon(tt)))
		check(f, closed, closed.PresentAt(chronon.Chronon(tt)))
	}
	check(Filter{HasVT: true, VTLo: 0, VTHi: 5}, open, false) // vt=5 is [5,6)
	check(Filter{HasVT: true, VTLo: 5, VTHi: 6}, open, true)
	check(Filter{HasVT: true, VTLo: 6, VTHi: 10}, open, false)
}

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{Width: 0, Aggs: []AggCall{{Kind: AggCount}}},
		{Width: MaxWidth + 1, Aggs: []AggCall{{Kind: AggCount}}},
		{Width: 10, WKind: Rolling, K: 0, Aggs: []AggCall{{Kind: AggCount}}},
		{Width: 10, WKind: Rolling, K: MaxRolling + 1, Aggs: []AggCall{{Kind: AggCount}}},
		{Width: 10},
	}
	for i := range bad {
		if err := bad[i].Validate(); err == nil {
			t.Errorf("spec %d validated, want error", i)
		}
	}
}

// TestConcurrentRowAggregate runs the row engine from many goroutines over
// one shared element slice; the engine must be read-only over its input
// (the -race build is the real assertion here).
func TestConcurrentRowAggregate(t *testing.T) {
	var elems []*element.Element
	for i := 0; i < 500; i++ {
		elems = append(elems, ev(i, int64(i%97), element.Int(int64(i))))
	}
	spec := &Spec{Width: 10, Aggs: []AggCall{{Kind: AggCount}, {Kind: AggSum, Col: "v", Get: getVar}}}
	ref := rowAgg(t, spec, elems)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := RowAggregate(context.Background(), spec, elems)
			if err != nil {
				t.Errorf("RowAggregate: %v", err)
				return
			}
			if !reflect.DeepEqual(res, ref) {
				t.Error("concurrent run diverged from reference")
			}
		}()
	}
	wg.Wait()
}
