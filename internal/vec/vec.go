// Package vec is the columnar batch layer of the execution engine. A
// Batch is a struct-of-arrays view over up to BatchSize stored elements:
// the four timestamp bounds live in flat int64 columns so temporal
// predicates run as tight loops over contiguous memory, while the
// originating elements stay reachable for value-column access and
// residual row predicates. BatchSize equals the storage compactor's run
// size, so one sealed delta-encoded run decodes into exactly one batch
// without re-chunking.
//
// The package deliberately depends only on element and chronon: storage
// produces batches, the planner decides when, and tsql/query consume
// them, so vec sits below all of them in the import graph.
package vec

import (
	"repro/internal/chronon"
	"repro/internal/element"
)

// BatchSize is the row capacity of one batch. It matches the storage
// run size (256) so sealed runs map 1:1 onto batches.
const BatchSize = 256

// Batch is a struct-of-arrays slice of a relation's extension. VTEnd is
// always the EXCLUSIVE valid end: event-stamped rows contribute
// VTStart+1, interval rows their interval end, so every operator sees
// valid time uniformly as the half-open [VTStart, VTEnd).
type Batch struct {
	N       int
	TTStart [BatchSize]int64
	TTEnd   [BatchSize]int64
	VTStart [BatchSize]int64
	VTEnd   [BatchSize]int64
	// Elems are the row origins: Elems[i] is the element behind column
	// row i, for value columns and residual predicates.
	Elems []*element.Element
}

// Filter is the vectorizable part of a query's selection: the
// transaction-time visibility rule and an optional valid-time clamp.
// Everything else (Allen predicates, WHERE on value columns) stays a
// residual row predicate.
type Filter struct {
	// AsOf selects rows present at transaction time TT; when false the
	// filter keeps current rows (TTEnd still open).
	AsOf bool
	TT   int64
	// HasVT clamps contributions to valid times in [VTLo, VTHi); rows
	// whose valid extent misses the clamp are dropped.
	HasVT bool
	VTLo  int64
	VTHi  int64
}

// Apply appends the indexes of b's rows that pass the filter to sel and
// returns it. Columns only — no element is touched.
func (f Filter) Apply(b *Batch, sel []int32) []int32 {
	forever := int64(chronon.Forever)
	for i := 0; i < b.N; i++ {
		if f.AsOf {
			// Same inequality as Element.PresentAt: an open element's
			// tt⊣ is Forever, which any realistic tt is below.
			if b.TTStart[i] > f.TT || f.TT >= b.TTEnd[i] {
				continue
			}
		} else if b.TTEnd[i] != forever {
			continue
		}
		if f.HasVT && (b.VTStart[i] >= f.VTHi || b.VTEnd[i] <= f.VTLo) {
			continue
		}
		sel = append(sel, int32(i))
	}
	return sel
}

// ExecStats counts what a batch execution did, for the per-operator
// observability counters.
type ExecStats struct {
	Batches int64 // batches consumed
	Rows    int64 // rows delivered across those batches
}
