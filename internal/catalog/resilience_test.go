package catalog

// Resilience behaviors: WAL poisoning flips the catalog into read-only
// degraded mode (reads serve, every mutation fails typed), idempotency
// keys dedup replayed mutations — in memory and across a WAL-replay
// reboot — and keyed WAL frames round-trip.

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/element"
	"repro/internal/relation"
	"repro/internal/surrogate"
	"repro/internal/tx"
	"repro/internal/wal"
)

// bootErrFS opens a SyncAlways WAL over fs and a catalog on it.
func bootErrFS(t *testing.T, fs *wal.ErrFS) (*wal.Log, *Catalog) {
	t.Helper()
	w, err := wal.Open(wal.Options{FS: fs, Sync: wal.SyncAlways, SegmentBytes: 1 << 20})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	c := New(Config{Dir: t.TempDir(), NewClock: func() tx.Clock { return tx.NewLogicalClock(0, 10) }, WAL: w})
	if err := c.Open(); err != nil {
		t.Fatalf("catalog.Open: %v", err)
	}
	return w, c
}

func TestWALPoisonFlipsReadOnly(t *testing.T) {
	fs := wal.NewErrFS()
	w, c := bootErrFS(t, fs)
	e, err := c.Create(eventSchema("emp"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	el, err := e.Insert(relation.Insertion{VT: element.EventAt(100)})
	if err != nil {
		t.Fatalf("healthy insert: %v", err)
	}

	// Fail the next file op: the insert's WAL append errors and the log
	// poisons fail-stop.
	fs.FailAt(1, wal.FaultError)
	if _, err := e.Insert(relation.Insertion{VT: element.EventAt(200)}); err == nil {
		t.Fatal("insert over injected fault succeeded")
	}
	if w.Err() == nil {
		t.Fatal("log did not poison")
	}

	// Every mutation path now fails typed ErrReadOnly.
	if _, err := e.Insert(relation.Insertion{VT: element.EventAt(300)}); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("insert on poisoned log = %v, want ErrReadOnly", err)
	}
	if err := e.Delete(el.ES); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("delete on poisoned log = %v, want ErrReadOnly", err)
	}
	if _, err := e.Modify(el.ES, element.EventAt(150), nil); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("modify on poisoned log = %v, want ErrReadOnly", err)
	}
	if _, err := c.Create(eventSchema("dept")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("create on poisoned log = %v, want ErrReadOnly", err)
	}
	if _, err := c.Snapshot(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("snapshot on poisoned log = %v, want ErrReadOnly", err)
	}
	if err := c.Degraded(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Degraded = %v, want ErrReadOnly", err)
	}

	// Reads keep serving the pre-poison state.
	if got := len(e.Current().Elements); got != 1 {
		t.Fatalf("degraded Current has %d elements, want 1", got)
	}

	// The failed and refused inserts must not be visible: only the acked
	// element exists.
	_ = e.Locked().View(func(r *relation.Relation) error {
		if r.Len() != 1 {
			t.Fatalf("relation holds %d versions, want 1 acked", r.Len())
		}
		return nil
	})
}

func TestIdempotencyKeyDedupsAndSurvivesReplay(t *testing.T) {
	fs := wal.NewErrFS()
	_, c := bootErrFS(t, fs)
	ctx := context.Background()
	e, err := c.Create(eventSchema("emp"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}

	el, err := e.InsertKeyed(ctx, relation.Insertion{VT: element.EventAt(100)}, "ins-1")
	if err != nil {
		t.Fatalf("keyed insert: %v", err)
	}
	// Replay with the same key: the original element, no second event.
	again, err := e.InsertKeyed(ctx, relation.Insertion{VT: element.EventAt(100)}, "ins-1")
	if err != nil {
		t.Fatalf("replayed insert: %v", err)
	}
	if again.ES != el.ES {
		t.Fatalf("replay returned ES %v, want original %v", again.ES, el.ES)
	}
	// Same key, different operation: typed reuse error.
	if err := e.DeleteKeyed(ctx, el.ES, "ins-1"); !errors.Is(err, ErrIdemReuse) {
		t.Fatalf("key reuse across ops = %v, want ErrIdemReuse", err)
	}

	victim, err := e.InsertKeyed(ctx, relation.Insertion{VT: element.EventAt(200)}, "ins-2")
	if err != nil {
		t.Fatalf("second insert: %v", err)
	}
	if err := e.DeleteKeyed(ctx, victim.ES, "del-1"); err != nil {
		t.Fatalf("keyed delete: %v", err)
	}
	ttEnd := mustByES(t, e, victim.ES).TTEnd
	// Replayed delete: acknowledged without touching the element again.
	if err := e.DeleteKeyed(ctx, victim.ES, "del-1"); err != nil {
		t.Fatalf("replayed delete: %v", err)
	}
	if got := mustByES(t, e, victim.ES).TTEnd; got != ttEnd {
		t.Fatalf("replayed delete moved TTEnd %v -> %v", ttEnd, got)
	}

	repl, err := e.ModifyKeyed(ctx, el.ES, element.EventAt(150), nil, "mod-1")
	if err != nil {
		t.Fatalf("keyed modify: %v", err)
	}
	replAgain, err := e.ModifyKeyed(ctx, el.ES, element.EventAt(150), nil, "mod-1")
	if err != nil {
		t.Fatalf("replayed modify: %v", err)
	}
	if replAgain.ES != repl.ES {
		t.Fatalf("replayed modify returned ES %v, want %v", replAgain.ES, repl.ES)
	}
	versions := lenOf(t, e)

	// Reboot from the WAL alone: the dedup window must replay with the
	// history, so a retry that straddles a crash still dedups.
	fs.CrashRecover()
	_, c2 := bootErrFS(t, fs)
	e2, err := c2.Get("emp")
	if err != nil {
		t.Fatalf("Get after reboot: %v", err)
	}
	if got := lenOf(t, e2); got != versions {
		t.Fatalf("recovered %d versions, want %d", got, versions)
	}
	again2, err := e2.InsertKeyed(ctx, relation.Insertion{VT: element.EventAt(100)}, "ins-1")
	if err != nil {
		t.Fatalf("post-reboot replayed insert: %v", err)
	}
	if again2.ES != el.ES {
		t.Fatalf("post-reboot replay returned ES %v, want original %v", again2.ES, el.ES)
	}
	if got := lenOf(t, e2); got != versions {
		t.Fatalf("post-reboot replay grew history to %d versions, want %d", got, versions)
	}
	if err := e2.DeleteKeyed(ctx, el.ES, "ins-1"); !errors.Is(err, ErrIdemReuse) {
		t.Fatalf("post-reboot key reuse = %v, want ErrIdemReuse", err)
	}
}

func TestIdempotencyKeyLimits(t *testing.T) {
	fs := wal.NewErrFS()
	_, c := bootErrFS(t, fs)
	e, err := c.Create(eventSchema("emp"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	long := strings.Repeat("k", maxIdemKeyLen+1)
	if _, err := e.InsertKeyed(context.Background(), relation.Insertion{VT: element.EventAt(1)}, long); err == nil {
		t.Fatal("oversized idempotency key accepted")
	}

	// The window is a FIFO of dedupWindowCap: an evicted key no longer
	// dedups (the retry window has passed), but never errors.
	w := newDedupWindow()
	for i := 0; i < dedupWindowCap+10; i++ {
		w.remember(string(rune('a'+i%26))+itoa(i), dedupInsert, nil)
	}
	if len(w.m) != dedupWindowCap || len(w.order) != dedupWindowCap {
		t.Fatalf("window holds %d/%d entries, want %d", len(w.m), len(w.order), dedupWindowCap)
	}
	if _, ok := w.lookup("a" + itoa(0)); ok {
		t.Fatal("oldest key survived eviction")
	}
}

func itoa(i int) string {
	return string(rune('0'+i/1000%10)) + string(rune('0'+i/100%10)) +
		string(rune('0'+i/10%10)) + string(rune('0'+i%10))
}

func mustByES(t *testing.T, e *Entry, es surrogate.Surrogate) *element.Element {
	t.Helper()
	var out *element.Element
	_ = e.Locked().View(func(r *relation.Relation) error {
		el, ok := r.ByES(es)
		if !ok {
			t.Fatalf("element %v not found", es)
		}
		out = el
		return nil
	})
	return out
}

func lenOf(t *testing.T, e *Entry) int {
	t.Helper()
	n := 0
	_ = e.Locked().View(func(r *relation.Relation) error {
		n = r.Len()
		return nil
	})
	return n
}
