package catalog

// Read-path tests: the epoch-stamped snapshot views, the plan-keyed result
// cache, and their interaction with every mutation kind. The stress test is
// the -race companion of the design: readers pin a published view and never
// block behind (or observe half of) a concurrent writer.

import (
	"context"
	"sync"
	"testing"

	"repro/internal/chronon"
	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/element"
	"repro/internal/relation"
	"repro/internal/tsql"
	"repro/internal/wal"
)

func cachedConfig(dir string) Config {
	cfg := testConfig(dir)
	cfg.CacheBytes = 1 << 20
	return cfg
}

func mustInsert(t *testing.T, e *Entry, vt int64) *element.Element {
	t.Helper()
	el, err := e.Insert(relation.Insertion{VT: element.EventAt(chronon.Chronon(vt))})
	if err != nil {
		t.Fatalf("insert: %v", err)
	}
	return el
}

func TestEpochAdvancesOnEveryMutationKind(t *testing.T) {
	c := New(cachedConfig(t.TempDir()))
	e, err := c.Create(eventSchema("emp"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	last := e.Epoch()
	if last == 0 {
		t.Fatal("fresh entry has epoch 0: no view published")
	}
	bump := func(op string) {
		t.Helper()
		if got := e.Epoch(); got <= last {
			t.Fatalf("%s: epoch %d did not advance past %d", op, got, last)
		} else {
			last = got
		}
	}

	el := mustInsert(t, e, 1)
	bump("insert")
	mustInsert(t, e, 2)
	bump("insert")
	if _, err := e.Modify(el.ES, element.EventAt(3), nil); err != nil {
		t.Fatalf("modify: %v", err)
	}
	bump("modify")
	el3 := mustInsert(t, e, 4)
	bump("insert")
	if err := e.Delete(el3.ES); err != nil {
		t.Fatalf("delete: %v", err)
	}
	bump("delete")
	retro := mustDescribe(t, constraint.Event{Spec: core.RetroactiveSpec()}, constraint.PerRelation)
	if err := e.Declare([]constraint.Descriptor{retro}); err != nil {
		t.Fatalf("declare: %v", err)
	}
	bump("declare")
	// A no-op vacuum (horizon below every closed TTEnd) publishes nothing:
	// reads keep their epoch and cache.
	if n, err := e.Vacuum(5); err != nil || n != 0 {
		t.Fatalf("no-op vacuum removed %d, err %v", n, err)
	}
	if got := e.Epoch(); got != last {
		t.Fatalf("no-op vacuum bumped epoch %d -> %d", last, got)
	}

	if n, err := e.Vacuum(chronon.Forever - 1); err != nil || n == 0 {
		t.Fatalf("vacuum removed %d, err %v", n, err)
	}
	bump("vacuum")
}

func TestQueryCacheHitsAndEpochInvalidation(t *testing.T) {
	c := New(cachedConfig(t.TempDir()))
	e, err := c.Create(eventSchema("emp"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	mustInsert(t, e, 5)
	ctx := context.Background()

	r1, err := e.TimesliceCtx(ctx, 5)
	if err != nil {
		t.Fatalf("timeslice: %v", err)
	}
	st0 := c.Cache().Stats()
	r2, err := e.TimesliceCtx(ctx, 5)
	if err != nil {
		t.Fatalf("timeslice: %v", err)
	}
	st1 := c.Cache().Stats()
	if st1.Hits != st0.Hits+1 {
		t.Fatalf("repeat timeslice was not a cache hit: %+v -> %+v", st0, st1)
	}
	if len(r2.Elements) != len(r1.Elements) || r2.Epoch != r1.Epoch {
		t.Fatalf("cached result diverged: %+v vs %+v", r2, r1)
	}
	// Per-plan-kind accounting must keep counting on hits.
	if r1.Node != nil {
		kind := r1.Node.Leaf().Kind.String()
		if got := e.PlanStats()[kind].Queries; got < 2 {
			t.Fatalf("plan kind %q counted %d queries, want >= 2", kind, got)
		}
	}

	// A mutation bumps the epoch: the same query misses and recomputes
	// against the new view.
	mustInsert(t, e, 5)
	r3, err := e.TimesliceCtx(ctx, 5)
	if err != nil {
		t.Fatalf("timeslice: %v", err)
	}
	if r3.Epoch <= r1.Epoch {
		t.Fatalf("epoch did not advance: %d -> %d", r1.Epoch, r3.Epoch)
	}
	if len(r3.Elements) != len(r1.Elements)+1 {
		t.Fatalf("post-mutation timeslice saw %d elements, want %d",
			len(r3.Elements), len(r1.Elements)+1)
	}
	st2 := c.Cache().Stats()
	if st2.Hits != st1.Hits {
		t.Fatalf("post-mutation query served stale cache: %+v", st2)
	}

	// Declare and vacuum invalidate the same way: fresh epoch, fresh miss.
	for _, step := range []struct {
		op  string
		run func() error
	}{
		{"declare", func() error {
			retro := mustDescribe(t, constraint.Event{Spec: core.RetroactiveSpec()}, constraint.PerRelation)
			return e.Declare([]constraint.Descriptor{retro})
		}},
		{"vacuum", func() error {
			el := mustInsert(t, e, 4)
			if err := e.Delete(el.ES); err != nil {
				return err
			}
			_, err := e.Vacuum(chronon.Forever - 1)
			return err
		}},
	} {
		before, _ := e.TimesliceCtx(ctx, 5)
		if err := step.run(); err != nil {
			t.Fatalf("%s: %v", step.op, err)
		}
		after, err := e.TimesliceCtx(ctx, 5)
		if err != nil {
			t.Fatalf("%s timeslice: %v", step.op, err)
		}
		if after.Epoch <= before.Epoch {
			t.Fatalf("%s did not invalidate: epoch %d -> %d", step.op, before.Epoch, after.Epoch)
		}
	}
}

func TestWALReplayPublishesFreshView(t *testing.T) {
	dir := t.TempDir()
	walDir := t.TempDir()
	wlog, err := wal.Open(wal.Options{Dir: walDir, Sync: wal.SyncGroup})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	cfg := cachedConfig(dir)
	cfg.WAL = wlog
	c := New(cfg)
	e, err := c.Create(eventSchema("emp"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	mustInsert(t, e, 1)
	el := mustInsert(t, e, 2)
	if err := e.Delete(el.ES); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if err := wlog.Close(); err != nil {
		t.Fatalf("wal close: %v", err)
	}

	// Reopen: replay rebuilds the relation, and the entry must publish a
	// view whose epoch reflects the replayed history — not a stale or
	// zero-epoch view of the empty relation.
	wlog2, err := wal.Open(wal.Options{Dir: walDir, Sync: wal.SyncGroup})
	if err != nil {
		t.Fatalf("wal reopen: %v", err)
	}
	defer wlog2.Close()
	cfg2 := cachedConfig(dir)
	cfg2.WAL = wlog2
	c2 := New(cfg2)
	if err := c2.Open(); err != nil {
		t.Fatalf("Open: %v", err)
	}
	e2, err := c2.Get("emp")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if e2.Epoch() == 0 {
		t.Fatal("replayed entry has epoch 0")
	}
	res, err := e2.CurrentCtx(context.Background())
	if err != nil {
		t.Fatalf("current: %v", err)
	}
	if len(res.Elements) != 1 {
		t.Fatalf("replayed current = %d elements, want 1", len(res.Elements))
	}
	if res.Epoch != e2.Epoch() {
		t.Fatalf("result epoch %d != entry epoch %d", res.Epoch, e2.Epoch())
	}
}

func TestLockedReadsCompatMatchesSnapshotReads(t *testing.T) {
	build := func(cfg Config) *Entry {
		c := New(cfg)
		e, err := c.Create(eventSchema("emp"))
		if err != nil {
			t.Fatalf("Create: %v", err)
		}
		for vt := int64(1); vt <= 5; vt++ {
			el, err := e.Insert(relation.Insertion{VT: element.EventAt(chronon.Chronon(vt))})
			if err != nil {
				t.Fatalf("insert: %v", err)
			}
			if vt == 3 {
				if err := e.Delete(el.ES); err != nil {
					t.Fatalf("delete: %v", err)
				}
			}
		}
		return e
	}
	locked := testConfig(t.TempDir())
	locked.LockedReads = true
	a := build(locked)
	b := build(cachedConfig(t.TempDir()))

	ctx := context.Background()
	for _, q := range []func(*Entry) (QueryResult, error){
		func(e *Entry) (QueryResult, error) { return e.CurrentCtx(ctx) },
		func(e *Entry) (QueryResult, error) { return e.TimesliceCtx(ctx, 2) },
		func(e *Entry) (QueryResult, error) { return e.RollbackCtx(ctx, 30) },
		func(e *Entry) (QueryResult, error) { return e.TimesliceAsOfCtx(ctx, 2, 30) },
	} {
		ra, err := q(a)
		if err != nil {
			t.Fatalf("locked query: %v", err)
		}
		rb, err := q(b)
		if err != nil {
			t.Fatalf("snapshot query: %v", err)
		}
		if len(ra.Elements) != len(rb.Elements) {
			t.Fatalf("locked %d elements, snapshot %d", len(ra.Elements), len(rb.Elements))
		}
		if ra.Plan != rb.Plan {
			t.Fatalf("locked plan %q, snapshot plan %q", ra.Plan, rb.Plan)
		}
	}
}

// TestSnapshotReadStress interleaves every mutation kind with every read
// kind. Run under -race; the assertions pin view consistency — a Current
// result from a pinned snapshot contains only elements open in that
// snapshot, even while writers concurrently close them.
func TestSnapshotReadStress(t *testing.T) {
	cfg := cachedConfig(t.TempDir())
	c := New(cfg)
	schema := eventSchema("stress")
	schema.Varying = []relation.Column{{Name: "v", Type: element.KindInt}}
	e, err := c.Create(schema)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	sel, err := tsql.Parse("SELECT v FROM stress WHEN VALID AT 3")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}

	const (
		writers = 2
		readers = 6
		perG    = 150
	)
	ctx := context.Background()
	var wg sync.WaitGroup

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var mine []*element.Element
			for i := 0; i < perG; i++ {
				switch i % 4 {
				case 0, 1:
					el, err := e.Insert(relation.Insertion{
						VT:      element.EventAt(chronon.Chronon(i % 7)),
						Varying: []element.Value{element.Int(int64(i))},
					})
					if err != nil {
						t.Errorf("insert: %v", err)
						return
					}
					mine = append(mine, el)
				case 2:
					if len(mine) > 0 {
						el := mine[0]
						mine = mine[1:]
						if err := e.Delete(el.ES); err != nil {
							t.Errorf("delete: %v", err)
							return
						}
					}
				case 3:
					if len(mine) > 0 {
						if _, err := e.Modify(mine[0].ES, element.EventAt(chronon.Chronon(i%7)),
							[]element.Value{element.Int(int64(-i))}); err != nil {
							t.Errorf("modify: %v", err)
							return
						}
						mine = mine[1:]
					}
				}
			}
		}(w)
	}

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				switch i % 6 {
				case 0:
					res, err := e.CurrentCtx(ctx)
					if err != nil {
						t.Errorf("current: %v", err)
						return
					}
					for _, el := range res.Elements {
						if !el.Current() {
							t.Errorf("pinned view returned a closed element (tt_end %d)", el.TTEnd)
							return
						}
					}
				case 1:
					if _, err := e.TimesliceCtx(ctx, chronon.Chronon(i%7)); err != nil {
						t.Errorf("timeslice: %v", err)
						return
					}
				case 2:
					if _, err := e.RollbackCtx(ctx, chronon.Chronon(10*i)); err != nil {
						t.Errorf("rollback: %v", err)
						return
					}
				case 3:
					if _, err := e.TimesliceAsOfCtx(ctx, chronon.Chronon(i%7), chronon.Chronon(10*i)); err != nil {
						t.Errorf("asof: %v", err)
						return
					}
				case 4:
					if _, _, _, err := e.SelectCtx(ctx, sel); err != nil {
						t.Errorf("select: %v", err)
						return
					}
				case 5:
					if n := e.Explain(sel); n == nil {
						t.Error("explain returned nil plan")
						return
					}
				}
			}
		}(r)
	}

	// A vacuum and a declare race the whole mix.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			if _, err := e.Vacuum(chronon.Chronon(100 * i)); err != nil {
				t.Errorf("vacuum: %v", err)
				return
			}
		}
	}()
	retro := mustDescribe(t, constraint.Event{Spec: core.RetroactiveSpec()}, constraint.PerRelation)
	wg.Add(1)
	go func() {
		defer wg.Done()
		// A concurrent writer may legitimately violate the declaration
		// mid-validation; rejection is fine, only races are bugs here.
		_ = e.Declare([]constraint.Descriptor{retro})
	}()

	wg.Wait()

	// The final view reconciles: live count equals inserts minus deletes.
	res, err := e.CurrentCtx(ctx)
	if err != nil {
		t.Fatalf("final current: %v", err)
	}
	for _, el := range res.Elements {
		if !el.Current() {
			t.Fatalf("final view holds closed element %v", el.ES)
		}
	}
	if len(res.Elements) == 0 {
		t.Fatal("final current empty")
	}
}
