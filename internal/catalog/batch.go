package catalog

// Batched ingest: one WAL frame, one group-commit entry, one Merkle
// leaf, and one published epoch for N insertions (DESIGN §14).
//
// The commit protocol follows ISSUE's three beats under a single
// exclusive-lock acquisition: stage every element (validation, guard
// checks, and transaction stamping against the relation as of the
// batch's start), journal ONE walInsertBatch frame carrying all staged
// records with their per-element idempotency keys, then apply — commit,
// tracker, dedup window, physical store — and publish a single new
// readView. The durability wait happens outside the lock, so concurrent
// batches on other relations share the group fsync exactly as single
// inserts do.
//
// Partial failure is per-element: a guard rejection or a key-reuse
// conflict marks that index rejected and the rest of the batch
// proceeds. With atomic set, the first rejection aborts the whole batch
// before anything is journaled — all-or-nothing. Either way the frame
// on disk only ever carries elements that were accepted, so replay (boot
// recovery and follower apply share the decoder) is all-or-nothing per
// frame: the CRC either admits the whole record or the torn tail drops
// it whole. A batch can never replay as a prefix of itself.

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/backlog"
	"repro/internal/element"
	"repro/internal/relation"
	"repro/internal/wal"
)

// ErrBatchRejected types an all-or-nothing batch aborted by one
// element's rejection; the error message names the offending index.
var ErrBatchRejected = errors.New("catalog: batch rejected")

// BatchItemStatus is one element's outcome inside a batch.
type BatchItemStatus uint8

const (
	// BatchStored: the element was journaled and applied by this call.
	BatchStored BatchItemStatus = iota
	// BatchDeduped: the element's idempotency key was already in the
	// window; the original element is returned, nothing new was logged.
	BatchDeduped
	// BatchRejected: a guard, validation, or key-reuse error refused the
	// element; Err carries the cause.
	BatchRejected
)

func (s BatchItemStatus) String() string {
	switch s {
	case BatchStored:
		return "stored"
	case BatchDeduped:
		return "deduped"
	case BatchRejected:
		return "rejected"
	}
	return "unknown"
}

// BatchItemResult is the per-index report of InsertBatch.
type BatchItemResult struct {
	Status BatchItemStatus
	Err    string // rejection cause, empty otherwise
	Elem   *element.Element
}

// BatchResult reports a whole batch: one entry per input index, the
// outcome tallies, and the epoch the single publish produced.
type BatchResult struct {
	Items    []BatchItemResult
	Stored   int
	Deduped  int
	Rejected int
	Epoch    uint64
}

// IngestStats reports the entry's lifetime batched-ingest counters.
type IngestStats struct {
	Batches  int64
	Elements int64
}

// IngestStats snapshots the batched-ingest counters.
func (e *Entry) IngestStats() IngestStats {
	return IngestStats{Batches: e.ingBatches.Load(), Elements: e.ingElems.Load()}
}

// InsertBatch stores up to len(ins) new elements as one journaled unit:
// one WAL frame, one epoch. keys, when non-empty, must parallel ins —
// one idempotency key per element, so a replayed batch dedups exactly
// like replayed single inserts. With atomic set, any rejection aborts
// the whole batch (ErrBatchRejected) before anything is journaled;
// otherwise rejected indexes are reported and the rest commit.
func (e *Entry) InsertBatch(ctx context.Context, ins []relation.Insertion, keys []string, atomic bool) (BatchResult, error) {
	if len(keys) != 0 && len(keys) != len(ins) {
		return BatchResult{}, fmt.Errorf("catalog: batch carries %d keys for %d elements", len(keys), len(ins))
	}
	for i, k := range keys {
		if len(k) > maxIdemKeyLen {
			return BatchResult{}, fmt.Errorf("catalog: batch item %d: idempotency key exceeds %d bytes", i, maxIdemKeyLen)
		}
	}
	if err := e.mutationGate(ctx, ""); err != nil {
		return BatchResult{}, err
	}
	res := BatchResult{Items: make([]BatchItemResult, len(ins))}
	var lsn uint64
	wrote := false
	err := e.locked.Exclusive(func(r *relation.Relation) error {
		type staged struct {
			idx int
			key string
			el  *element.Element
		}
		var acc []staged
		// seen guards against one key appearing twice inside the same
		// batch: the window only remembers keys at apply time, so without
		// it both occurrences would stage and mint two events.
		var seen map[string]bool
		reject := func(i int, cause error) error {
			if atomic {
				return fmt.Errorf("%w: item %d: %w", ErrBatchRejected, i, cause)
			}
			res.Items[i] = BatchItemResult{Status: BatchRejected, Err: cause.Error()}
			return nil
		}
		for i := range ins {
			key := ""
			if len(keys) > 0 {
				key = keys[i]
			}
			if key != "" {
				if hit, ok := e.dedup.lookup(key); ok {
					if hit.op != dedupInsert {
						if err := reject(i, fmt.Errorf("%w: %q first used for %s", ErrIdemReuse, key, hit.op)); err != nil {
							return err
						}
						continue
					}
					res.Items[i] = BatchItemResult{Status: BatchDeduped, Elem: hit.elem}
					res.Deduped++
					continue
				}
				if seen[key] {
					if err := reject(i, fmt.Errorf("%w: %q repeated within the batch", ErrIdemReuse, key)); err != nil {
						return err
					}
					continue
				}
				if seen == nil {
					seen = make(map[string]bool)
				}
				seen[key] = true
			}
			el, serr := r.StageInsert(ins[i])
			if serr != nil {
				if err := reject(i, serr); err != nil {
					return err
				}
				continue
			}
			acc = append(acc, staged{idx: i, key: key, el: el})
		}
		if len(acc) == 0 {
			// Nothing accepted: no frame, no epoch bump. Deduped hits are
			// already answered by their original acknowledgments.
			res.Epoch = e.Epoch()
			return nil
		}
		if e.wal != nil {
			bkeys := make([]string, len(acc))
			recs := make([]relation.LogRecord, len(acc))
			for j, s := range acc {
				bkeys[j] = s.key
				recs[j] = relation.LogRecord{Op: relation.OpInsert, TT: s.el.TTStart, Elem: s.el}
			}
			payload, perr := encodeInsertBatch(bkeys, recs)
			if perr != nil {
				return perr
			}
			l, werr := e.wal.Write(walInsertBatch, e.name, payload)
			if werr != nil {
				return e.walErr(werr)
			}
			lsn, wrote = l, true
			e.walLSN.Store(lsn)
			e.appendLeaf(lsn, walInsertBatch, payload)
		}
		for _, s := range acc {
			r.CommitInsert(s.el)
			e.tracker.Observe(s.el)
			if s.key != "" {
				e.dedup.remember(s.key, dedupInsert, s.el)
			}
			res.Items[s.idx] = BatchItemResult{Status: BatchStored, Elem: s.el}
			res.Stored++
			if serr := e.engine.Store().Insert(s.el); serr != nil {
				// An intra-batch ordering violation the pre-batch guards
				// could not see lands here: degrade to the general
				// organization rather than lose a journaled element.
				e.decls2general(r, serr)
			}
		}
		e.publish()
		e.dirty.Store(true)
		e.ingBatches.Add(1)
		e.ingElems.Add(int64(len(acc)))
		res.Epoch = e.Epoch()
		return nil
	})
	if err != nil {
		return BatchResult{}, err
	}
	for i := range res.Items {
		if res.Items[i].Status == BatchRejected {
			res.Rejected++
		}
	}
	if wrote {
		if err := e.waitDurable(lsn); err != nil {
			return BatchResult{}, err
		}
	}
	return res, nil
}

// encodeInsertBatch frames N keyed insert records into one WAL payload:
//
//	u32 count, then per element: u16 keyLen | key | u32 recLen | record
//
// The per-element key span is what lets follower and boot replay rebuild
// the dedup window from the single frame, and the whole payload rides
// one CRC frame so replay is all-or-nothing per batch.
func encodeInsertBatch(keys []string, recs []relation.LogRecord) ([]byte, error) {
	out := binary.LittleEndian.AppendUint32(nil, uint32(len(recs)))
	for i, rec := range recs {
		rb := backlog.EncodeRecord(rec)
		out = binary.LittleEndian.AppendUint16(out, uint16(len(keys[i])))
		out = append(out, keys[i]...)
		out = binary.LittleEndian.AppendUint32(out, uint32(len(rb)))
		out = append(out, rb...)
	}
	if len(out) > wal.MaxFrameBytes-64 {
		return nil, fmt.Errorf("catalog: batch payload %d bytes exceeds the WAL frame bound; split the batch", len(out))
	}
	return out, nil
}

// batchEntry is one decoded element of a batch frame.
type batchEntry struct {
	key string
	rec relation.LogRecord
}

// decodeInsertBatch parses a walInsertBatch payload. It never trusts
// the count ahead of the bytes backing it (fuzzed frames carry absurd
// counts), and rejects trailing garbage so a bit flip past the last
// record cannot hide.
func decodeInsertBatch(b []byte) ([]batchEntry, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("catalog: short batch payload")
	}
	count := int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	// Each element needs at least its two length prefixes; cap the
	// allocation by what the bytes can actually hold.
	if count < 0 || count > len(b)/6+1 {
		return nil, fmt.Errorf("catalog: batch count %d exceeds payload", count)
	}
	out := make([]batchEntry, 0, count)
	for i := 0; i < count; i++ {
		if len(b) < 2 {
			return nil, fmt.Errorf("catalog: batch item %d: truncated key length", i)
		}
		kn := int(binary.LittleEndian.Uint16(b))
		b = b[2:]
		if kn > maxIdemKeyLen {
			return nil, fmt.Errorf("catalog: batch item %d: key length %d exceeds %d", i, kn, maxIdemKeyLen)
		}
		if kn > len(b) {
			return nil, fmt.Errorf("catalog: batch item %d: truncated key", i)
		}
		key := string(b[:kn])
		b = b[kn:]
		if len(b) < 4 {
			return nil, fmt.Errorf("catalog: batch item %d: truncated record length", i)
		}
		rn := int(binary.LittleEndian.Uint32(b))
		b = b[4:]
		if rn < 0 || rn > len(b) {
			return nil, fmt.Errorf("catalog: batch item %d: record length %d exceeds payload", i, rn)
		}
		rec, err := backlog.DecodeRecord(b[:rn])
		if err != nil {
			return nil, fmt.Errorf("catalog: batch item %d: %w", i, err)
		}
		b = b[rn:]
		out = append(out, batchEntry{key: key, rec: rec})
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("catalog: trailing batch payload bytes")
	}
	return out, nil
}
