package catalog

// Tests for batched ingest: validation and per-item statuses, atomic
// all-or-nothing aborts, the no-op (all-deduped) batch publishing no
// epoch, WAL crash-replay of the single batch frame (including the
// rebuilt dedup window), and a -race stress of concurrent InsertBatch
// against snapshot readers, Compact, and Respecialize.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/chronon"
	"repro/internal/element"
	"repro/internal/relation"
	"repro/internal/surrogate"
	"repro/internal/tx"
	"repro/internal/wal"
)

func batchOf(vts ...chronon.Chronon) []relation.Insertion {
	ins := make([]relation.Insertion, len(vts))
	for i, vt := range vts {
		ins[i] = relation.Insertion{VT: element.EventAt(vt)}
	}
	return ins
}

func TestInsertBatchValidation(t *testing.T) {
	ctx := context.Background()
	_, c := bootErrFS(t, wal.NewErrFS())
	e, err := c.Create(eventSchema("emp"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}

	// Key slice must be empty or parallel to the insertions.
	if _, err := e.InsertBatch(ctx, batchOf(10, 20), []string{"only-one"}, false); err == nil {
		t.Fatal("mismatched key count accepted")
	}
	// Oversized keys are refused before anything stages.
	if _, err := e.InsertBatch(ctx, batchOf(10), []string{strings.Repeat("k", maxIdemKeyLen+1)}, false); err == nil {
		t.Fatal("oversized idempotency key accepted")
	}

	// A key repeated WITHIN one batch mints one element: the second
	// occurrence is rejected (it is neither a replay nor a fresh write).
	res, err := e.InsertBatch(ctx, batchOf(10, 20), []string{"dup", "dup"}, false)
	if err != nil {
		t.Fatalf("InsertBatch: %v", err)
	}
	if res.Stored != 1 || res.Rejected != 1 {
		t.Fatalf("in-batch dup = %d stored / %d rejected, want 1/1", res.Stored, res.Rejected)
	}
	if it := res.Items[1]; it.Status != BatchRejected || !strings.Contains(it.Err, "repeated within the batch") {
		t.Fatalf("dup item = %+v, want in-batch reuse rejection", it)
	}

	// The same repeat under atomic aborts the whole batch un-journaled.
	before := lenOf(t, e)
	if _, err := e.InsertBatch(ctx, batchOf(30, 40), []string{"dup2", "dup2"}, true); !errors.Is(err, ErrBatchRejected) {
		t.Fatalf("atomic dup err = %v, want ErrBatchRejected", err)
	}
	if got := lenOf(t, e); got != before {
		t.Fatalf("atomic abort left %d versions, want %d", got, before)
	}

	// An all-deduped batch writes no frame and publishes no epoch.
	epoch := e.Epoch()
	res, err = e.InsertBatch(ctx, batchOf(10), []string{"dup"}, false)
	if err != nil {
		t.Fatalf("replay batch: %v", err)
	}
	if res.Deduped != 1 || res.Stored != 0 {
		t.Fatalf("replay = %+v, want 1 deduped", res)
	}
	if e.Epoch() != epoch {
		t.Fatalf("all-deduped batch bumped epoch %d -> %d", epoch, e.Epoch())
	}
}

// TestInsertBatchSingleEpoch pins the tentpole invariant: N elements,
// one frame, ONE epoch publish.
func TestInsertBatchSingleEpoch(t *testing.T) {
	ctx := context.Background()
	w, c := bootErrFS(t, wal.NewErrFS())
	e, err := c.Create(eventSchema("emp"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	epoch := e.Epoch()
	appended := w.Stats().Appended
	res, err := e.InsertBatch(ctx, batchOf(10, 20, 30, 40, 50), nil, false)
	if err != nil {
		t.Fatalf("InsertBatch: %v", err)
	}
	if res.Stored != 5 {
		t.Fatalf("stored = %d, want 5", res.Stored)
	}
	if e.Epoch() != epoch+1 {
		t.Fatalf("epoch %d -> %d, want exactly one publish", epoch, e.Epoch())
	}
	if got := w.Stats().Appended - appended; got != 1 {
		t.Fatalf("batch cost %d WAL records, want 1", got)
	}
	st := e.IngestStats()
	if st.Batches != 1 || st.Elements != 5 {
		t.Fatalf("ingest stats = %+v, want 1 batch / 5 elements", st)
	}
}

// TestInsertBatchCrashReplay crashes after a keyed batch committed and
// reboots from the log alone: the batch replays whole and the dedup
// window is rebuilt from the frame's key spans, so a retry that
// straddles the crash still dedups element-by-element.
func TestInsertBatchCrashReplay(t *testing.T) {
	ctx := context.Background()
	fs := wal.NewErrFS()
	_, c := bootErrFS(t, fs)
	e, err := c.Create(eventSchema("emp"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	keys := []string{"ck-1", "ck-2", "ck-3"}
	res, err := e.InsertBatch(ctx, batchOf(100, 110, 120), keys, false)
	if err != nil {
		t.Fatalf("InsertBatch: %v", err)
	}
	orig := make([]surrogate.Surrogate, len(res.Items))
	for i, it := range res.Items {
		orig[i] = it.Elem.ES
	}

	fs.CrashRecover()
	_, c2 := bootErrFS(t, fs)
	e2, err := c2.Get("emp")
	if err != nil {
		t.Fatalf("Get after reboot: %v", err)
	}
	if got := lenOf(t, e2); got != 3 {
		t.Fatalf("recovered %d versions, want 3 (whole batch, never a prefix)", got)
	}
	for _, es := range orig {
		mustByES(t, e2, es)
	}
	again, err := e2.InsertBatch(ctx, batchOf(100, 110, 120), keys, false)
	if err != nil {
		t.Fatalf("post-reboot replay: %v", err)
	}
	if again.Deduped != 3 || again.Stored != 0 {
		t.Fatalf("post-reboot replay = %d deduped / %d stored, want 3/0", again.Deduped, again.Stored)
	}
	for i, it := range again.Items {
		if it.Status != BatchDeduped || it.Elem == nil || it.Elem.ES != orig[i] {
			t.Fatalf("replay item %d = %+v, want dedup of %v", i, it, orig[i])
		}
	}
	if got := lenOf(t, e2); got != 3 {
		t.Fatalf("replay grew the relation to %d versions", got)
	}
}

// TestInsertBatchRaceStress drives concurrent batched writers against
// snapshot readers and the physical-design loop (Compact/Respecialize).
// Run under -race; correctness here is "no race, no torn counts".
func TestInsertBatchRaceStress(t *testing.T) {
	ctx := context.Background()
	w, err := wal.Open(wal.Options{Dir: t.TempDir(), Sync: wal.SyncGroup, SegmentBytes: 1 << 20})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	defer w.Close()
	c := New(Config{Dir: t.TempDir(), NewClock: func() tx.Clock { return tx.NewLogicalClock(0, 10) }, WAL: w})
	if err := c.Open(); err != nil {
		t.Fatalf("catalog.Open: %v", err)
	}
	e, err := c.Create(eventSchema("emp"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}

	const (
		writers = 4
		batches = 10
		perB    = 8
	)
	var wg, bg sync.WaitGroup
	stop := make(chan struct{})
	// Snapshot readers: consistent views must never observe a torn batch
	// (counts only grow by whole batches between epochs — but interleaved
	// writers make exact multiples unobservable; the invariant here is
	// memory safety and monotonic growth).
	for i := 0; i < 3; i++ {
		bg.Add(1)
		go func() {
			defer bg.Done()
			last := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				n := lenOf(t, e)
				if n < last {
					t.Errorf("reader saw count shrink %d -> %d", last, n)
					return
				}
				last = n
				_ = e.Info()
			}
		}()
	}
	// The physical-design loop, racing the writers.
	bg.Add(1)
	go func() {
		defer bg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_, _, _ = e.Respecialize()
			_ = e.Compact()
		}
	}()
	for wi := 0; wi < writers; wi++ {
		wi := wi
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				ins := make([]relation.Insertion, perB)
				keys := make([]string, perB)
				for j := range ins {
					ins[j] = relation.Insertion{VT: element.EventAt(chronon.Chronon(1 + wi*10000 + b*100 + j))}
					keys[j] = fmt.Sprintf("w%d-b%d-e%d", wi, b, j)
				}
				res, err := e.InsertBatch(ctx, ins, keys, false)
				if err != nil {
					t.Errorf("writer %d batch %d: %v", wi, b, err)
					return
				}
				if res.Stored != perB {
					t.Errorf("writer %d batch %d stored %d, want %d: %+v", wi, b, res.Stored, perB, res.Items)
					return
				}
			}
		}()
	}
	wg.Wait()   // writers drain (or error out)
	close(stop) // then release the readers and the design loop
	bg.Wait()
	if t.Failed() {
		return
	}
	want := writers * batches * perB
	if got := lenOf(t, e); got != want {
		t.Fatalf("final count = %d, want %d", got, want)
	}
	st := e.IngestStats()
	if st.Batches != writers*batches || st.Elements != int64(want) {
		t.Fatalf("ingest stats = %+v, want %d batches / %d elements", st, writers*batches, want)
	}
}
