// Package catalog is the server's concurrent relation catalog: a sharded
// map of named relation.Locked instances, each carrying its declaration
// catalog and a query engine over the storage advisor's chosen physical
// organization. It is the layer that turns the single-user engine into a
// multi-relation, multi-client database: name resolution, per-relation
// locking, declaration-aware physical design, and durability.
//
// Durability follows the backlog model (§2's [JMRS90] representation): each
// relation persists as one checksummed backlog file with its declaration
// catalog (backlog.SaveWithDeclarations), written atomically via a
// temp-file rename. Snapshot saves every dirty relation; Open reloads the
// data directory on boot, replaying each backlog and re-attaching the
// persisted declarations as enforcers, so a restarted server validates new
// transactions exactly as the original did.
package catalog

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/backlog"
	"repro/internal/chronon"
	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/element"
	"repro/internal/integrity"
	"repro/internal/plan"
	"repro/internal/qcache"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/storage"
	"repro/internal/surrogate"
	"repro/internal/tsql"
	"repro/internal/tx"
	"repro/internal/wal"
)

// Catalog errors.
var (
	// ErrNotFound reports a lookup of a relation the catalog does not hold.
	ErrNotFound = fmt.Errorf("catalog: no such relation")
	// ErrExists reports a create of a name already in use.
	ErrExists = fmt.Errorf("catalog: relation already exists")
	// ErrBadName reports a relation name unusable as a catalog key (and
	// data-dir file name).
	ErrBadName = fmt.Errorf("catalog: invalid relation name")
	// ErrReadOnly reports a mutation refused because this process cannot
	// accept writes: either the write-ahead log has poisoned (fail-stop,
	// reads keep serving in degraded mode) or the catalog is a follower
	// replica (mutations belong on the primary). The wrapping error
	// carries which.
	ErrReadOnly = fmt.Errorf("catalog: read-only")
	// ErrIdemReuse reports an idempotency key reused across different
	// operation kinds — a client bug, not a retry.
	ErrIdemReuse = fmt.Errorf("catalog: idempotency key reused for a different operation")
)

// nameRE constrains relation names so they are safe as file names in the
// data directory and unambiguous in URLs.
var nameRE = regexp.MustCompile(`^[A-Za-z_][A-Za-z0-9_-]{0,63}$`)

// fileSuffix is the persisted-backlog file extension.
const fileSuffix = ".tsbl"

// shardCount is the number of independent locks the name map is split
// across. Lookups hash the name, so unrelated relations never contend.
const shardCount = 16

// Config parameterizes a catalog.
type Config struct {
	// Dir is the data directory for snapshots; empty disables persistence.
	Dir string
	// NewClock supplies the transaction-time source for each relation
	// (created or loaded). Nil defaults to tx.NewSystemClock.
	NewClock func() tx.Clock
	// WAL, when set, makes every mutation crash-safe: it is appended to
	// the log and made durable per the log's sync policy before the call
	// acknowledges. Open replays the log's recovered records over the
	// snapshots, and Snapshot truncates segments the sweep has covered.
	WAL *wal.Log
	// CacheBytes bounds the catalog-wide query-result cache; 0 disables
	// it. Results are keyed by (relation, fingerprint, mutation epoch), so
	// any mutation invalidates a relation's cached results for free.
	CacheBytes int64
	// LockedReads restores the pre-epoch read path: queries run under the
	// relation's shared lock against the live engine, with no published
	// snapshots and no result cache. It exists so the read-scaling
	// benchmark has an honest baseline; production has no reason to set it.
	LockedReads bool
	// Follower marks the catalog as a read-only replica: the only writer
	// is ApplyReplicated (replaying WAL frames shipped from a primary),
	// and every client mutation fails typed with ErrReadOnly — the same
	// degraded gate a poisoned WAL trips, so clients need one code path
	// for "this process cannot accept writes". Reads serve normally.
	Follower bool
	// DisableIntegrity turns off the per-relation Merkle accounting and
	// proof serving. Integrity is on by default wherever committed frames
	// exist (a WAL is attached or the catalog is a follower); the knob
	// exists for the write-path overhead baseline in benchmarks.
	DisableIntegrity bool
	// Signer signs sealed epoch roots (primaries). Nil — the follower
	// posture — serves unsigned roots; clients verify those against the
	// primary's key via consistency with a signed anchor.
	Signer *integrity.Signer
}

// WAL record kinds. These values are replayed from disk, so they must
// stay stable across releases. The keyed kinds frame an idempotency key
// ahead of the same payload their unkeyed counterpart carries
// (encodeKeyed); unkeyed kinds remain written for keyless mutations, so
// logs from either era replay on either side of this change.
const (
	walCreate      wal.Kind = 1
	walDeclare     wal.Kind = 2
	walInsert      wal.Kind = 3
	walDelete      wal.Kind = 4
	walModify      wal.Kind = 5
	walInsertKeyed wal.Kind = 6
	walDeleteKeyed wal.Kind = 7
	walModifyKeyed wal.Kind = 8
	// walRespecialize journals a physical-design change: the adopted
	// observed classes and the organization they licensed. Replaying it
	// (boot recovery and follower apply alike) restores the adoption, so
	// the migrated organization survives a crash and ships to replicas.
	walRespecialize wal.Kind = 9
	// walInsertBatch journals N insertions as one frame: u32 count, then
	// per element a keyed record span (batch.go). One group-commit entry
	// and one Merkle leaf per batch; replay is all-or-nothing per frame.
	walInsertBatch wal.Kind = 10
)

type shard struct {
	mu      sync.RWMutex
	entries map[string]*Entry
}

// Catalog is a concurrent set of named relations.
type Catalog struct {
	cfg    Config
	shards [shardCount]shard
	cache  *qcache.Cache

	// Integrity journal: a bounded ring of recent detection/repair events
	// (igMu also serializes appends to the on-disk journal) plus lifetime
	// counters, fed by the scrubber and the verify endpoint.
	igMu          sync.Mutex
	igRing        []IntegrityEvent
	igDetected    atomic.Uint64
	igRepaired    atomic.Uint64
	igQuarantines atomic.Uint64
	// igRefetch is set when a follower dropped a corrupt snapshot shard
	// at boot: the relation's history exists only on the primary now, so
	// the tail must resume from the beginning of the feed.
	igRefetch atomic.Bool
}

// New creates an empty catalog. Call Open to load the data directory.
func New(cfg Config) *Catalog {
	c := &Catalog{cfg: cfg, cache: qcache.New(cfg.CacheBytes)}
	for i := range c.shards {
		c.shards[i].entries = make(map[string]*Entry)
	}
	return c
}

// Cache exposes the catalog-wide query-result cache (nil when disabled),
// for the server's metrics endpoint and its EXPLAIN caching.
func (c *Catalog) Cache() *qcache.Cache { return c.cache }

func (c *Catalog) newClock() tx.Clock {
	if c.cfg.NewClock != nil {
		return c.cfg.NewClock()
	}
	return tx.NewSystemClock()
}

func (c *Catalog) shardFor(name string) *shard {
	h := fnv.New32a()
	h.Write([]byte(name))
	return &c.shards[h.Sum32()%shardCount]
}

// Open loads every persisted relation from the data directory, then
// replays the write-ahead log's recovered records over the snapshots.
// Missing directories are created; a corrupt backlog or log aborts the
// boot rather than serving partial state.
func (c *Catalog) Open() error {
	if c.cfg.Dir != "" {
		if err := os.MkdirAll(c.cfg.Dir, 0o755); err != nil {
			return fmt.Errorf("catalog: data dir: %w", err)
		}
		des, err := os.ReadDir(c.cfg.Dir)
		if err != nil {
			return fmt.Errorf("catalog: data dir: %w", err)
		}
		for _, de := range des {
			if de.IsDir() || !strings.HasSuffix(de.Name(), fileSuffix) {
				continue
			}
			name := strings.TrimSuffix(de.Name(), fileSuffix)
			path := filepath.Join(c.cfg.Dir, de.Name())
			r, decls, walLSN, phys, ig, err := backlog.LoadWithIntegrity(path, c.newClock())
			if err != nil {
				if c.cfg.Follower {
					// A follower's shard is derived state the primary's feed
					// can rebuild. Keep the evidence, drop the shard, and boot
					// without the relation; igRefetch forces the tail to
					// resume from the start of the feed, re-shipping the
					// relation's whole history (other relations skip the
					// duplicates — replay is idempotent).
					c.preserveEvidence(de.Name(), func() ([]byte, error) { return os.ReadFile(path) })
					_ = os.Remove(path)
					c.igDetected.Add(1)
					c.journalIntegrity(IntegrityEvent{
						Kind: "detect", ArtKind: "snapshot", Artifact: de.Name(), Rel: name,
						Detail: err.Error(),
					})
					c.journalIntegrity(IntegrityEvent{
						Kind: "repair", ArtKind: "snapshot", Artifact: de.Name(), Rel: name,
						Detail: "corrupt shard dropped at boot; re-fetching history from the primary feed",
					})
					c.igRepaired.Add(1)
					c.igRefetch.Store(true)
					continue
				}
				return fmt.Errorf("catalog: loading %s: %w", path, err)
			}
			if r.Schema().Name != name {
				return fmt.Errorf("catalog: %s holds relation %q, want %q", path, r.Schema().Name, name)
			}
			e := c.newEntry(name, relation.NewLocked(r), decls, phys)
			e.wal = c.cfg.WAL
			e.walLSN.Store(walLSN)
			e.seedIntegrity(ig)
			sh := c.shardFor(name)
			sh.mu.Lock()
			if _, dup := sh.entries[name]; dup {
				sh.mu.Unlock()
				return fmt.Errorf("catalog: duplicate relation %q in data dir", name)
			}
			sh.entries[name] = e
			sh.mu.Unlock()
		}
	}
	if w := c.cfg.WAL; w != nil {
		start := time.Now()
		touched := make(map[*Entry]bool)
		for _, rec := range w.TakeRecovered() {
			e, err := c.applyWALRecord(rec)
			if err != nil {
				return fmt.Errorf("catalog: wal replay, lsn %d: %w", rec.LSN, err)
			}
			if e != nil {
				touched[e] = true
			}
		}
		// One engine rebuild per touched relation, after all its records
		// landed — the store reload is O(versions), not O(versions²). The
		// publish bumps the epoch past the construction-time view, so any
		// result cached against a pre-replay epoch is dead on arrival.
		for e := range touched {
			_ = e.locked.Exclusive(func(r *relation.Relation) error {
				_ = e.rebuildEngine(r)
				e.publish()
				return nil
			})
			e.dirty.Store(true)
		}
		w.AddReplayDuration(time.Since(start))
	}
	return nil
}

// applyWALRecord redoes one recovered log record. Records a snapshot
// already covers (LSN at or below the relation's persisted watermark) are
// skipped, which is what makes replay idempotent across partially
// truncated logs. Returns the touched entry, or nil when skipped.
func (c *Catalog) applyWALRecord(rec wal.Record) (*Entry, error) {
	if rec.Kind == walCreate {
		schema, err := backlog.DecodeSchema(rec.Payload)
		if err != nil {
			return nil, err
		}
		if schema.Name != rec.Rel {
			return nil, fmt.Errorf("create record for %q holds schema %q", rec.Rel, schema.Name)
		}
		sh := c.shardFor(rec.Rel)
		sh.mu.Lock()
		defer sh.mu.Unlock()
		if _, dup := sh.entries[rec.Rel]; dup {
			return nil, nil // the snapshot file already restored it
		}
		e := c.newEntry(rec.Rel, relation.NewLocked(relation.New(schema, c.newClock())), nil, backlog.Physical{})
		e.wal = c.cfg.WAL
		e.walLSN.Store(rec.LSN)
		e.appendLeaf(rec.LSN, rec.Kind, rec.Payload)
		e.dirty.Store(true)
		sh.entries[rec.Rel] = e
		return e, nil
	}
	e, err := c.Get(rec.Rel)
	if err != nil {
		return nil, err
	}
	if rec.LSN <= e.walLSN.Load() {
		return nil, nil
	}
	// Keyed records carry "u16 keyLen, key, payload"; strip the frame and
	// fall through to the shared apply path, remembering the key so the
	// rebuilt dedup window covers retries that straddle a crash.
	kind, payload, key := rec.Kind, rec.Payload, ""
	switch rec.Kind {
	case walInsertKeyed, walDeleteKeyed, walModifyKeyed:
		var err error
		if key, payload, err = decodeKeyed(rec.Payload); err != nil {
			return nil, err
		}
		kind -= walInsertKeyed - walInsert
	}
	var applyErr error
	_ = e.locked.Exclusive(func(r *relation.Relation) error {
		remember := func(op dedupOp, el *element.Element) {
			if key != "" {
				e.dedup.remember(key, op, el)
			}
		}
		switch kind {
		case walInsert, walDelete:
			lrec, err := backlog.DecodeRecord(payload)
			if err != nil {
				applyErr = err
				return nil
			}
			if applyErr = r.ApplyLog(lrec); applyErr != nil {
				return nil
			}
			if lrec.Op == relation.OpInsert {
				el, _ := r.ByES(lrec.Elem.ES)
				remember(dedupInsert, el)
			} else {
				remember(dedupDelete, nil)
			}
		case walInsertBatch:
			// One frame, N insertions: the CRC admitted the whole record,
			// so replay applies every element or (on a decode error) none —
			// a torn prefix of a batch cannot exist.
			entries, err := decodeInsertBatch(payload)
			if err != nil {
				applyErr = err
				return nil
			}
			for _, be := range entries {
				if be.rec.Op != relation.OpInsert {
					applyErr = fmt.Errorf("batch frame carries op %d", be.rec.Op)
					return nil
				}
				if applyErr = r.ApplyLog(be.rec); applyErr != nil {
					return nil
				}
				if be.key != "" {
					el, _ := r.ByES(be.rec.Elem.ES)
					e.dedup.remember(be.key, dedupInsert, el)
				}
			}
		case walModify:
			del, ins, err := decodeModify(payload)
			if err != nil {
				applyErr = err
				return nil
			}
			if applyErr = r.ApplyLog(del); applyErr != nil {
				return nil
			}
			if applyErr = r.ApplyLog(ins); applyErr != nil {
				return nil
			}
			el, _ := r.ByES(ins.Elem.ES)
			remember(dedupModify, el)
		case walDeclare:
			descs, err := backlog.DecodeDeclarations(rec.Payload)
			if err != nil {
				applyErr = err
				return nil
			}
			byScope, err := constraint.BuildAll(descs)
			if err != nil {
				applyErr = err
				return nil
			}
			for scope, cs := range byScope {
				en := constraint.NewEnforcer(scope, cs...)
				// The history was validated when the declaration was first
				// accepted; warm the enforcer without re-checking.
				for _, brec := range r.Backlog() {
					en.Applied(r, brec.Op, brec.Elem, brec.TT)
				}
				r.AddGuard(en)
			}
			e.decls = append(e.decls, descs...)
		case walRespecialize:
			org, source, adopted, err := decodeRespecialize(rec.Payload)
			if err != nil {
				applyErr = err
				return nil
			}
			// Restore the adoption; the caller's per-touched-relation
			// rebuild re-derives the organization from it (and from the
			// replayed history), so primaries and followers land on the
			// same physical design as the journaling process.
			e.adopted = adopted
			e.migrations++
			e.history = append(e.history, Migration{
				Epoch: e.Epoch(), From: e.advice.Store, To: org, Source: source,
			})
		default:
			applyErr = fmt.Errorf("unknown record kind %d", rec.Kind)
		}
		return nil
	})
	if applyErr != nil {
		return nil, applyErr
	}
	e.walLSN.Store(rec.LSN)
	// The leaf hashes the frame exactly as logged — the keyed kind and
	// payload, not the stripped form applied above — so primaries,
	// boot-time replay, and follower apply agree on every leaf.
	e.appendLeaf(rec.LSN, rec.Kind, rec.Payload)
	return e, nil
}

// encodeModify frames a modification's delete and insert records (one
// transaction time) into a single WAL payload, so the pair replays
// atomically: recovery never sees the delete without the insert.
func encodeModify(del, ins relation.LogRecord) []byte {
	db := backlog.EncodeRecord(del)
	ib := backlog.EncodeRecord(ins)
	out := make([]byte, 0, 8+len(db)+len(ib))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(db)))
	out = append(out, db...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(ib)))
	return append(out, ib...)
}

func decodeModify(b []byte) (del, ins relation.LogRecord, err error) {
	next := func() (relation.LogRecord, error) {
		if len(b) < 4 {
			return relation.LogRecord{}, fmt.Errorf("short modify payload")
		}
		n := int(binary.LittleEndian.Uint32(b))
		b = b[4:]
		if n < 0 || n > len(b) {
			return relation.LogRecord{}, fmt.Errorf("bad modify payload framing")
		}
		rec, err := backlog.DecodeRecord(b[:n])
		b = b[n:]
		return rec, err
	}
	if del, err = next(); err != nil {
		return del, ins, err
	}
	if ins, err = next(); err != nil {
		return del, ins, err
	}
	if len(b) != 0 {
		return del, ins, fmt.Errorf("trailing modify payload bytes")
	}
	return del, ins, nil
}

// Migration records one physical-design change of a relation: the epoch it
// happened at, the organizations involved, the advice's provenance, and
// the advisor's reasons. Live migrations carry full detail; replayed ones
// carry what the WAL frame preserved.
type Migration struct {
	Epoch    uint64
	From, To storage.Kind
	Source   string
	Reasons  []string
}

// encodeRespecialize frames a physical-design change for the WAL: the
// target organization, the advice source, and the adopted observed
// classes. The classes are what replay needs — the organization and source
// are re-derived deterministically by rebuildEngine, but carrying them
// makes the frame self-describing for the migration history.
func encodeRespecialize(org storage.Kind, source string, adopted []core.Class) []byte {
	out := []byte{uint8(org)}
	out = append(out, uint8(len(source)))
	out = append(out, source...)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(adopted)))
	for _, c := range adopted {
		out = append(out, uint8(c))
	}
	return out
}

func decodeRespecialize(b []byte) (org storage.Kind, source string, adopted []core.Class, err error) {
	fail := func(msg string) (storage.Kind, string, []core.Class, error) {
		return 0, "", nil, fmt.Errorf("catalog: %s respecialize payload", msg)
	}
	if len(b) < 2 {
		return fail("short")
	}
	org = storage.Kind(b[0])
	sn := int(b[1])
	b = b[2:]
	if len(b) < sn+2 {
		return fail("short")
	}
	source = string(b[:sn])
	b = b[sn:]
	n := int(binary.LittleEndian.Uint16(b))
	b = b[2:]
	if len(b) != n {
		return fail("bad framing in")
	}
	for _, c := range b {
		adopted = append(adopted, core.Class(c))
	}
	return org, source, adopted, nil
}

// Create adds an empty relation under schema.Name. The name must satisfy
// the catalog's naming rule so it can double as the snapshot file name.
func (c *Catalog) Create(schema relation.Schema) (*Entry, error) {
	name := schema.Name
	if !nameRE.MatchString(name) {
		return nil, fmt.Errorf("%w: %q (want %s)", ErrBadName, name, nameRE)
	}
	if c.cfg.Follower {
		return nil, errFollowerReadOnly()
	}
	if err := c.Degraded(); err != nil {
		return nil, err
	}
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	r := relation.New(schema, c.newClock())
	e := c.newEntry(name, relation.NewLocked(r), nil, backlog.Physical{})
	e.wal = c.cfg.WAL
	e.dirty.Store(true) // persist even if never written to
	sh := c.shardFor(name)
	sh.mu.Lock()
	if _, dup := sh.entries[name]; dup {
		sh.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrExists, name)
	}
	var lsn uint64
	if w := c.cfg.WAL; w != nil {
		var werr error
		// Logged under the shard lock so the create's WAL position matches
		// its catalog visibility order; creates are rare.
		payload := backlog.EncodeSchema(schema)
		lsn, werr = w.Write(walCreate, name, payload)
		if werr != nil {
			sh.mu.Unlock()
			return nil, fmt.Errorf("catalog: wal: %w", werr)
		}
		e.walLSN.Store(lsn)
		e.appendLeaf(lsn, walCreate, payload)
	}
	sh.entries[name] = e
	sh.mu.Unlock()
	if w := c.cfg.WAL; w != nil {
		if err := w.WaitDurable(lsn); err != nil {
			return nil, fmt.Errorf("catalog: wal: %w", err)
		}
		e.sealRoot()
	}
	return e, nil
}

// WAL exposes the catalog's write-ahead log (nil when disabled), for the
// server's metrics endpoint.
func (c *Catalog) WAL() *wal.Log { return c.cfg.WAL }

// Degraded reports why the catalog is in read-only degraded mode, or nil
// while fully writable. The only degradation cause today is a poisoned
// WAL: its first I/O failure is sticky (fail-stop), reads keep serving
// from memory, and every mutation fails typed with ErrReadOnly until the
// operator restarts the server (recovering the durable prefix).
func (c *Catalog) Degraded() error {
	if w := c.cfg.WAL; w != nil {
		if err := w.Err(); err != nil {
			return fmt.Errorf("%w: %w", ErrReadOnly, err)
		}
	}
	return nil
}

// writable refuses mutations while the relation is quarantined by an
// integrity detection, the WAL is poisoned, or the catalog is a follower
// replica.
func (e *Entry) writable() error {
	if cause := e.quarCause.Load(); cause != nil {
		return fmt.Errorf("%w: integrity quarantine: %s", ErrReadOnly, *cause)
	}
	if e.follower {
		return errFollowerReadOnly()
	}
	if e.wal != nil {
		if err := e.wal.Err(); err != nil {
			return fmt.Errorf("%w: %w", ErrReadOnly, err)
		}
	}
	return nil
}

// Get resolves a relation by name.
func (c *Catalog) Get(name string) (*Entry, error) {
	sh := c.shardFor(name)
	sh.mu.RLock()
	e, ok := sh.entries[name]
	sh.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return e, nil
}

// Names lists the catalog's relation names in sorted order.
func (c *Catalog) Names() []string {
	var out []string
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		for n := range sh.entries {
			out = append(out, n)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// Len reports the number of relations.
func (c *Catalog) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		n += len(sh.entries)
		sh.mu.RUnlock()
	}
	return n
}

// Snapshot persists every dirty relation to the data directory, each
// written atomically (temp file + rename). It returns the number of
// relations saved. Writers to a relation block only while that relation is
// being serialized, not for the whole sweep.
//
// Truncation protocol: the sweep first reads the WAL's durable watermark.
// Every record at or below it was applied to memory before the sweep's
// per-relation locks were taken (the catalog appends and applies under one
// exclusive section), so after a fully successful sweep each such record
// is either inside a fresh snapshot or inside a file an earlier snapshot
// wrote and the relation has not dirtied since. Only then are segments
// wholly at or below the watermark deleted. A partially failed sweep
// truncates nothing.
func (c *Catalog) Snapshot() (int, error) {
	if c.cfg.Dir == "" {
		return 0, nil
	}
	w := c.cfg.WAL
	var cut uint64
	if w != nil {
		if err := w.Err(); err != nil {
			// The log is poisoned (fail-stop): a snapshot now could persist
			// writes that were never acknowledged. Refuse; the operator
			// restarts the server, which recovers the durable prefix.
			return 0, fmt.Errorf("%w: refusing snapshot: %w", ErrReadOnly, err)
		}
		cut = w.DurableLSN()
	}
	saved := 0
	for _, name := range c.Names() {
		e, err := c.Get(name)
		if err != nil {
			continue // dropped concurrently; nothing to save
		}
		ok, err := e.snapshotTo(filepath.Join(c.cfg.Dir, name+fileSuffix))
		if err != nil {
			return saved, fmt.Errorf("catalog: snapshot %q: %w", name, err)
		}
		if ok {
			saved++
		}
	}
	if w != nil {
		if _, err := w.TruncateBelow(cut); err != nil {
			return saved, fmt.Errorf("catalog: wal truncation: %w", err)
		}
	}
	return saved, nil
}

// Close flushes the catalog. The caller must have stopped serving first.
func (c *Catalog) Close() error {
	_, err := c.Snapshot()
	return err
}

// Entry is one named relation with its declaration catalog and the query
// engine over the advisor-chosen physical organization. All mutable state
// hangs off the relation's own reader-writer lock: writes and declaration
// changes run under the exclusive lock, queries and snapshots under the
// shared lock, so many readers proceed in parallel and writers serialize.
type Entry struct {
	name   string
	locked *relation.Locked

	// Guarded by locked's lock (mutated under Exclusive only):
	decls  []constraint.Descriptor
	engine *query.Engine
	advice storage.Advice

	// dirty marks unsaved changes; atomic so snapshots (shared lock) can
	// clear it while other readers run.
	dirty atomic.Bool

	// wal is the catalog's write-ahead log (nil when disabled). walLSN is
	// the LSN of the relation's latest logged mutation; snapshots persist
	// it so boot-time replay can skip records the snapshot covers.
	wal    *wal.Log
	walLSN atomic.Uint64

	// dedup is the relation's idempotency window (see dedup.go). Guarded
	// by locked's exclusive lock, like decls.
	dedup *dedupWindow

	// tracker incrementally observes the extension's timestamps (guarded
	// by locked's exclusive lock): the monotone class properties it still
	// holds are what the advisor may adopt without a declaration. Rebuilt
	// alongside the engine so it always reflects the live history.
	tracker *core.Tracker

	// adopted is the set of observed classes a journaled respecialize
	// committed to (guarded by the exclusive lock). rebuildEngine
	// intersects it with the tracker's current classes, so an adoption the
	// history later violates degrades back to the general organization
	// instead of serving a broken promise.
	adopted []core.Class

	// migrations counts journaled physical-design changes; history keeps
	// their in-memory detail (both guarded by the exclusive lock).
	migrations uint64
	history    []Migration

	// lastAdviseEpoch and lastAdviseBytes gate the background advisor's
	// re-advising thresholds (see advisor.go).
	lastAdviseEpoch atomic.Uint64
	lastAdviseBytes atomic.Int64

	// physical is the published physical-design snapshot, recomputed by
	// publish under the exclusive lock. Readers (the metrics endpoint is
	// a probe and must never queue behind a writer) load it atomically.
	physical atomic.Pointer[Physical]

	// plans counts queries and touched elements per plan kind over the
	// entry's lifetime. It lives here rather than on the engine because
	// declarations rebuild the engine; the counters must survive that.
	plans plan.Recorder

	// Batch-operator counters, recorded on the lock-free aggregate read
	// path (hence atomic): batches/batchRows count what the columnar
	// engine consumed; colPicks/rowPicks count the planner's engine
	// choice per executed aggregate (cache hits execute nothing).
	batches   atomic.Int64
	batchRows atomic.Int64
	colPicks  atomic.Int64
	rowPicks  atomic.Int64

	// Batched-ingest counters (batch.go): InsertBatch calls that wrote a
	// frame, and the elements those frames carried. Atomic so /metrics can
	// read them without queueing behind writers.
	ingBatches atomic.Int64
	ingElems   atomic.Int64

	// view is the published immutable read snapshot, swapped atomically by
	// publish under the exclusive lock on every mutation. Readers pin it
	// with one atomic load and then run entirely lock-free: the view's
	// store never mutates (copy-on-close deletes swap clones into the live
	// structures, leaving the pinned elements exactly as published). Never
	// nil after newEntry.
	view atomic.Pointer[readView]

	// cache is the catalog-wide result cache (nil-safe when disabled),
	// lockedReads the benchmarking compat mode, and follower the
	// read-only-replica gate; all copied from the catalog at entry
	// construction.
	cache       *qcache.Cache
	lockedReads bool
	follower    bool

	// Integrity state. tree is the relation's Merkle tree over committed
	// WAL frames, nil when integrity is off; it has its own mutex because
	// leaves are appended from paths holding different locks (the shard
	// lock for creates, the relation's exclusive lock elsewhere) while
	// proof serving reads it lock-free with respect to the relation.
	// sealedRoot holds the last signed epoch root; sealing keeps seals
	// from piling up behind one another; quarCause, when set, degrades
	// the relation to read-only until its artifacts are repaired.
	igMu       sync.Mutex
	tree       *integrity.Tree
	signer     *integrity.Signer
	sealedRoot atomic.Pointer[integrity.SignedRoot]
	sealing    atomic.Bool
	quarCause  atomic.Pointer[string]
}

// readView is one published epoch of a relation: a frozen store snapshot
// wrapped in its own engine, the elements in arrival (tt⊢) order for the
// scan paths, and the schema. A reader that pinned a view observes the
// relation exactly as of the epoch's publication no matter how many
// writers commit meanwhile.
type readView struct {
	epoch  uint64
	engine *query.Engine
	elems  []*element.Element
	schema relation.Schema
}

// publish stamps the next mutation epoch and swaps in a fresh immutable
// view of the engine's store. Caller holds the exclusive lock (epochs
// must be assigned in commit order).
func (e *Entry) publish() {
	ep := uint64(1)
	if old := e.view.Load(); old != nil {
		ep = old.epoch + 1
	}
	en := e.engine.Snapshot()
	e.view.Store(&readView{
		epoch:  ep,
		engine: en,
		elems:  storage.Elements(en.Store()),
		schema: e.locked.Schema(),
	})
	phys := e.physicalLocked()
	e.physical.Store(&phys)
}

// Epoch reports the relation's current mutation epoch — bumped by every
// insert, delete, modify, declare, vacuum, and boot-time replay. It is
// the validator the server hands out as an ETag and the cache keys
// results under.
func (e *Entry) Epoch() uint64 { return e.view.Load().epoch }

// classesToU8 and classesFromU8 convert between the engine's class enum
// and the backlog's persisted byte form.
func classesToU8(cs []core.Class) []uint8 {
	var out []uint8
	for _, c := range cs {
		out = append(out, uint8(c))
	}
	return out
}

func classesFromU8(bs []uint8) []core.Class {
	var out []core.Class
	for _, b := range bs {
		out = append(out, core.Class(b))
	}
	return out
}

// newEntry constructs an entry over the locked relation, seeding the
// persisted physical design (adopted observed classes and migration
// count) before the first engine rebuild so a restored relation adopts
// its migrated organization without WAL replay.
func (c *Catalog) newEntry(name string, l *relation.Locked, decls []constraint.Descriptor, phys backlog.Physical) *Entry {
	e := &Entry{
		name: name, locked: l, decls: decls, dedup: newDedupWindow(),
		cache: c.cache, lockedReads: c.cfg.LockedReads, follower: c.cfg.Follower,
		adopted: classesFromU8(phys.Adopted), migrations: phys.Migrations,
	}
	if c.integrityEnabled() {
		e.tree = integrity.NewTree()
		e.signer = c.cfg.Signer
	}
	_ = l.Exclusive(func(r *relation.Relation) error {
		// A bounds error here means a persisted declaration carries
		// inverted offsets; the engine still works, just without pushdown.
		_ = e.rebuildEngine(r)
		e.publish()
		return nil
	})
	return e
}

// Name returns the catalog key.
func (e *Entry) Name() string { return e.name }

// Schema returns the relation schema (immutable).
func (e *Entry) Schema() relation.Schema { return e.locked.Schema() }

// Locked exposes the underlying locked relation for callers (tests, the
// in-process shell) that need direct access.
func (e *Entry) Locked() *relation.Locked { return e.locked }

// perRelationClasses lists the classes declared with per-relation scope —
// the only ones that license a global physical ordering. A per-partition
// sequentiality says nothing about the interleaving of partitions, so it
// must not steer the advisor toward a globally vt-ordered store.
func perRelationClasses(decls []constraint.Descriptor) []core.Class {
	var out []core.Class
	for _, d := range decls {
		if d.Scope == constraint.PerRelation {
			out = append(out, d.Class)
		}
	}
	return out
}

// activeAdopted intersects the entry's adopted observed classes with what
// the tracker still holds: an adoption the history has since violated
// stops licensing anything, so the advisor degrades cleanly instead of
// serving a broken promise. Caller holds the exclusive lock.
func (e *Entry) activeAdopted() []core.Class {
	if len(e.adopted) == 0 || e.tracker == nil {
		return nil
	}
	held := make(map[core.Class]bool)
	for _, c := range e.tracker.Classes() {
		held[c] = true
	}
	var out []core.Class
	for _, c := range e.adopted {
		if held[c] {
			out = append(out, c)
		}
	}
	return out
}

// rebuildEngine reloads the advisor-chosen store from the relation's
// versions, rebuilding the extension tracker over the same walk. Caller
// holds the exclusive lock. The returned error reports only unusable
// declared offset bounds; the engine is valid either way (it just runs
// without the pushdown).
func (e *Entry) rebuildEngine(r *relation.Relation) error {
	schema := r.Schema()
	tr := core.NewTracker(schema.ValidTime, schema.Granularity)
	for _, el := range r.Versions() {
		tr.Observe(el)
	}
	e.tracker = tr
	classes := perRelationClasses(e.decls)
	advice := storage.AdviseAuto(classes, e.activeAdopted(), schema.ValidTime)
	st := advice.New()
	if ferr := fillStore(st, r); ferr != nil {
		// The history predates the ordering promise (or the promise is
		// unenforceable); fall back to the general organization, which
		// only assumes tt order.
		advice = storage.Advise(nil, schema.ValidTime)
		advice.Reasons = append(advice.Reasons,
			fmt.Sprintf("fell back: existing history violates the declared order (%v)", ferr))
		st = advice.New()
		if ferr := fillStore(st, r); ferr != nil {
			// Even transaction-time order does not hold — a clock that
			// restarted behind persisted stamps can commit tt out of order.
			// The heap assumes nothing, so every committed element stays
			// queryable; dropping one here would make an acknowledged write
			// invisible to reads.
			advice.Store, advice.Source = storage.Heap, storage.SourceDefault
			advice.Reasons = append(advice.Reasons,
				fmt.Sprintf("fell back: history violates transaction-time order (%v)", ferr))
			st = advice.New()
			_ = fillStore(st, r) // heap inserts cannot fail
		}
	}
	en := query.New(st, classes)
	e.engine, e.advice = en, advice
	// A declared two-sided fixed bound turns valid-time predicates into
	// transaction-time windows over the tt-ordered log (§3.1's query
	// strategies); enable the pushdown when a per-relation event
	// declaration carries one.
	if advice.Store == storage.TTOrdered && r.Schema().ValidTime == element.EventStamp {
		for _, d := range e.decls {
			if d.Scope != constraint.PerRelation || d.Kind != constraint.DescEvent {
				continue
			}
			c, err := d.Build()
			if err != nil {
				continue
			}
			ev, ok := c.(constraint.Event)
			if !ok {
				continue
			}
			if lo, hi, ok := ev.Spec.OffsetBounds(); ok {
				if err := en.UseVTOffsetBounds(lo, hi); err != nil {
					return fmt.Errorf("catalog: unusable offset bounds in declaration: %w", err)
				}
				break
			}
		}
	}
	return nil
}

// fillStore loads every version of r into st, stopping at the store's
// first refusal.
func fillStore(st storage.Store, r *relation.Relation) error {
	for _, el := range r.Versions() {
		if err := st.Insert(el); err != nil {
			return err
		}
	}
	return nil
}

// Insert stores a new element as one transaction and feeds it to the
// physical store, atomically with respect to queries.
func (e *Entry) Insert(ins relation.Insertion) (*element.Element, error) {
	return e.InsertKeyed(context.Background(), ins, "")
}

// InsertKeyed is Insert with resilience hooks: the context aborts before
// any work when the caller has already given up, and a non-empty
// idempotency key makes the transaction retry-safe — a key the relation's
// dedup window remembers returns the originally stored element with no
// new WAL record and no new event.
//
// With a WAL attached the transaction is write-ahead logged: it is staged
// (validated and transaction-stamped), framed into the log (keyed frame
// when an idempotency key rides along), and only then applied to memory,
// all under the relation's exclusive lock so the log's per-relation order
// is the commit order. The acknowledgment then waits for the record to be
// durable per the log's sync policy; a failed wait surfaces as an error
// and the log's fail-stop poisoning keeps the not-yet-durable tail out of
// every future snapshot.
func (e *Entry) InsertKeyed(ctx context.Context, ins relation.Insertion, key string) (*element.Element, error) {
	if err := e.mutationGate(ctx, key); err != nil {
		return nil, err
	}
	var out *element.Element
	var lsn uint64
	deduped := false
	err := e.locked.Exclusive(func(r *relation.Relation) error {
		if key != "" {
			if hit, ok := e.dedup.lookup(key); ok {
				if hit.op != dedupInsert {
					return fmt.Errorf("%w: %q first used for %s", ErrIdemReuse, key, hit.op)
				}
				out, deduped = hit.elem, true
				return nil
			}
		}
		el, err := r.StageInsert(ins)
		if err != nil {
			return err
		}
		if e.wal != nil {
			rec := relation.LogRecord{Op: relation.OpInsert, TT: el.TTStart, Elem: el}
			kind, payload := walInsert, backlog.EncodeRecord(rec)
			if key != "" {
				kind, payload = walInsertKeyed, encodeKeyed(key, payload)
			}
			l, werr := e.wal.Write(kind, e.name, payload)
			if werr != nil {
				return e.walErr(werr)
			}
			lsn = l
			e.walLSN.Store(lsn)
			e.appendLeaf(lsn, kind, payload)
		}
		r.CommitInsert(el)
		e.tracker.Observe(el)
		if key != "" {
			e.dedup.remember(key, dedupInsert, el)
		}
		out = el
		if serr := e.engine.Store().Insert(el); serr != nil {
			// Ordering promise broken despite enforcement (e.g. constraint
			// declared on a different endpoint); degrade to the general
			// organization rather than lose the committed element.
			e.decls2general(r, serr)
		}
		e.publish()
		e.dirty.Store(true)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if deduped {
		// The original acknowledgment already waited for durability.
		return out, nil
	}
	if err := e.waitDurable(lsn); err != nil {
		return nil, err
	}
	return out, nil
}

// mutationGate is every mutation's entry check: refuse in read-only
// degraded mode, refuse oversized idempotency keys before they reach the
// WAL frame, and stop before any work when the caller's context is done.
func (e *Entry) mutationGate(ctx context.Context, key string) error {
	if err := e.writable(); err != nil {
		return err
	}
	if len(key) > maxIdemKeyLen {
		return fmt.Errorf("catalog: idempotency key exceeds %d bytes", maxIdemKeyLen)
	}
	return ctx.Err()
}

// walErr classifies a WAL append/wait failure: once the log has poisoned
// the catalog is read-only, so the typed ErrReadOnly (with the cause)
// tells clients not to retry against this process.
func (e *Entry) walErr(err error) error {
	if e.wal != nil && e.wal.Err() != nil {
		return fmt.Errorf("%w: %w", ErrReadOnly, err)
	}
	return fmt.Errorf("catalog: wal: %w", err)
}

// waitDurable blocks until the entry's latest logged mutation is durable.
// Called outside the relation lock, so concurrent committers on other
// relations (and later ones on this relation) share the group fsync.
// Durability is also the integrity epoch boundary: the tree root covering
// everything committed so far is sealed (signed) here, batching one seal
// per group commit rather than one per mutation.
func (e *Entry) waitDurable(lsn uint64) error {
	if e.wal == nil {
		return nil
	}
	if err := e.wal.WaitDurable(lsn); err != nil {
		return e.walErr(err)
	}
	e.sealRoot()
	return nil
}

func (e *Entry) decls2general(r *relation.Relation, cause error) {
	saved := e.decls
	e.decls = nil
	_ = e.rebuildEngine(r) // nil decls: no bounds to reject
	e.decls = saved
	e.advice.Reasons = append(e.advice.Reasons,
		fmt.Sprintf("fell back: committed element violates the store order (%v)", cause))
}

// Delete logically removes an element. The physical stores share element
// pointers with the relation, so the tt⊣ update is visible to them without
// restructuring. Write-ahead logged like Insert.
func (e *Entry) Delete(es surrogate.Surrogate) error {
	return e.DeleteKeyed(context.Background(), es, "")
}

// DeleteKeyed is Delete with the resilience hooks of InsertKeyed. A
// remembered key means the logical delete already happened; the retry
// succeeds without a second tt⊣ update (which would fail as
// already-deleted and make retries look like conflicts).
func (e *Entry) DeleteKeyed(ctx context.Context, es surrogate.Surrogate, key string) error {
	if err := e.mutationGate(ctx, key); err != nil {
		return err
	}
	var lsn uint64
	deduped := false
	err := e.locked.Exclusive(func(r *relation.Relation) error {
		if key != "" {
			if hit, ok := e.dedup.lookup(key); ok {
				if hit.op != dedupDelete {
					return fmt.Errorf("%w: %q first used for %s", ErrIdemReuse, key, hit.op)
				}
				deduped = true
				return nil
			}
		}
		el, tt, err := r.StageDelete(es)
		if err != nil {
			return err
		}
		if e.wal != nil {
			// The element still carries tt⊣ = forever here; replay only needs
			// its surrogate and the record's transaction time.
			rec := relation.LogRecord{Op: relation.OpDelete, TT: tt, Elem: el}
			kind, payload := walDelete, backlog.EncodeRecord(rec)
			if key != "" {
				kind, payload = walDeleteKeyed, encodeKeyed(key, payload)
			}
			l, werr := e.wal.Write(kind, e.name, payload)
			if werr != nil {
				return e.walErr(werr)
			}
			lsn = l
			e.walLSN.Store(lsn)
			e.appendLeaf(lsn, kind, payload)
		}
		// The close lands on a clone (copy-on-close); swap it into the
		// physical store so the live engine sees the finalized tt⊣ while
		// pinned read views keep the open original.
		closed := r.CommitDelete(el, tt)
		e.engine.Store().Replace(el, closed)
		if key != "" {
			e.dedup.remember(key, dedupDelete, nil)
		}
		e.publish()
		e.dirty.Store(true)
		return nil
	})
	if err != nil {
		return err
	}
	if deduped {
		return nil
	}
	return e.waitDurable(lsn)
}

// Modify replaces an element's valid time and varying values (a logical
// delete plus an insert at one transaction time). The pair is logged as a
// single WAL record so recovery applies both or neither.
func (e *Entry) Modify(es surrogate.Surrogate, vt element.Timestamp, varying []element.Value) (*element.Element, error) {
	return e.ModifyKeyed(context.Background(), es, vt, varying, "")
}

// ModifyKeyed is Modify with the resilience hooks of InsertKeyed: a
// remembered key returns the replacement element the original transaction
// produced instead of chaining a second delete+insert onto it.
func (e *Entry) ModifyKeyed(ctx context.Context, es surrogate.Surrogate, vt element.Timestamp, varying []element.Value, key string) (*element.Element, error) {
	if err := e.mutationGate(ctx, key); err != nil {
		return nil, err
	}
	var out *element.Element
	var lsn uint64
	deduped := false
	err := e.locked.Exclusive(func(r *relation.Relation) error {
		if key != "" {
			if hit, ok := e.dedup.lookup(key); ok {
				if hit.op != dedupModify {
					return fmt.Errorf("%w: %q first used for %s", ErrIdemReuse, key, hit.op)
				}
				out, deduped = hit.elem, true
				return nil
			}
		}
		old, repl, tt, err := r.StageModify(es, vt, varying)
		if err != nil {
			return err
		}
		if e.wal != nil {
			payload := encodeModify(
				relation.LogRecord{Op: relation.OpDelete, TT: tt, Elem: old},
				relation.LogRecord{Op: relation.OpInsert, TT: tt, Elem: repl},
			)
			kind := walModify
			if key != "" {
				kind, payload = walModifyKeyed, encodeKeyed(key, payload)
			}
			l, werr := e.wal.Write(kind, e.name, payload)
			if werr != nil {
				return e.walErr(werr)
			}
			lsn = l
			e.walLSN.Store(lsn)
			e.appendLeaf(lsn, kind, payload)
		}
		closed := r.CommitDelete(old, tt)
		e.engine.Store().Replace(old, closed)
		r.CommitInsert(repl)
		e.tracker.Observe(repl)
		if key != "" {
			e.dedup.remember(key, dedupModify, repl)
		}
		out = repl
		if serr := e.engine.Store().Insert(repl); serr != nil {
			e.decls2general(r, serr)
		}
		e.publish()
		e.dirty.Store(true)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if deduped {
		return out, nil
	}
	if err := e.waitDurable(lsn); err != nil {
		return nil, err
	}
	return out, nil
}

// Declare attaches the descriptors' constraints as enforcers, one per
// scope. The existing extension is validated first: a declaration the
// stored history already violates is rejected whole, leaving the relation
// unguarded by it (the paper's intensional definition — all extensions of
// a typed schema must satisfy the type). On success the declaration
// catalog grows and the physical design is re-advised.
func (e *Entry) Declare(descs []constraint.Descriptor) error {
	if len(descs) == 0 {
		return fmt.Errorf("catalog: no constraints to declare")
	}
	if err := e.writable(); err != nil {
		return err
	}
	byScope, err := constraint.BuildAll(descs)
	if err != nil {
		return err
	}
	var lsn uint64
	err = e.locked.Exclusive(func(r *relation.Relation) error {
		var enforcers []*constraint.Enforcer
		for scope, cs := range byScope {
			en := constraint.NewEnforcer(scope, cs...)
			// Replay the backlog through the fresh enforcer, checking each
			// operation as if it were arriving now; the incremental
			// checkers end warm for the next live transaction.
			for _, rec := range r.Backlog() {
				switch rec.Op {
				case relation.OpInsert:
					if err := en.CheckInsert(r, rec.Elem); err != nil {
						return fmt.Errorf("catalog: existing extension violates declaration: %w", err)
					}
				case relation.OpDelete:
					if err := en.CheckDelete(r, rec.Elem, rec.TT); err != nil {
						return fmt.Errorf("catalog: existing extension violates declaration: %w", err)
					}
				}
				en.Applied(r, rec.Op, rec.Elem, rec.TT)
			}
			enforcers = append(enforcers, en)
		}
		if e.wal != nil {
			// Validation passed; log the declaration before attaching it.
			payload := backlog.EncodeDeclarations(descs)
			l, werr := e.wal.Write(walDeclare, e.name, payload)
			if werr != nil {
				return e.walErr(werr)
			}
			lsn = l
			e.walLSN.Store(lsn)
			e.appendLeaf(lsn, walDeclare, payload)
		}
		for _, en := range enforcers {
			r.AddGuard(en)
		}
		e.decls = append(e.decls, descs...)
		if err := e.rebuildEngine(r); err != nil {
			// The declaration stands (its enforcer is sound) but its bounds
			// cannot drive the pushdown; surface the bug to the caller.
			e.publish()
			e.dirty.Store(true)
			return err
		}
		e.publish()
		e.dirty.Store(true)
		return nil
	})
	if err != nil {
		return err
	}
	return e.waitDurable(lsn)
}

// QueryResult is a catalog query answer with its access-path accounting.
type QueryResult struct {
	Elements []*element.Element
	Plan     string
	// Node is the typed plan the engine executed; Plan is its rendering.
	Node    *plan.Node
	Touched int
	// Epoch is the mutation epoch the result was computed against — the
	// validator the server exposes as an ETag.
	Epoch uint64
}

func (e *Entry) toResult(res query.Result) QueryResult {
	if res.Node != nil {
		e.plans.Record(res.Node.Leaf().Kind, res.Touched)
	}
	return QueryResult{Elements: res.Elements, Plan: res.Plan, Node: res.Node, Touched: res.Touched}
}

// Current answers the conventional query.
func (e *Entry) Current() QueryResult {
	out, _ := e.CurrentCtx(context.Background())
	return out
}

// CurrentCtx is Current with caller cancellation.
func (e *Entry) CurrentCtx(ctx context.Context) (QueryResult, error) {
	return e.readCtx(ctx, "current", func(en *query.Engine) query.Result { return en.Current() })
}

// Timeslice answers the historical query at vt.
func (e *Entry) Timeslice(vt chronon.Chronon) QueryResult {
	out, _ := e.TimesliceCtx(context.Background(), vt)
	return out
}

// TimesliceCtx is Timeslice with caller cancellation.
func (e *Entry) TimesliceCtx(ctx context.Context, vt chronon.Chronon) (QueryResult, error) {
	return e.readCtx(ctx, "ts:"+strconv.FormatInt(int64(vt), 10),
		func(en *query.Engine) query.Result { return en.Timeslice(vt) })
}

// Rollback answers the rollback query at tt.
func (e *Entry) Rollback(tt chronon.Chronon) QueryResult {
	out, _ := e.RollbackCtx(context.Background(), tt)
	return out
}

// RollbackCtx is Rollback with caller cancellation.
func (e *Entry) RollbackCtx(ctx context.Context, tt chronon.Chronon) (QueryResult, error) {
	return e.readCtx(ctx, "rb:"+strconv.FormatInt(int64(tt), 10),
		func(en *query.Engine) query.Result { return en.Rollback(tt) })
}

// readCtx runs one engine query against the published read view: readers
// pin the view with a single atomic load and never touch the relation
// lock, so a steady writer cannot convoy them. Results are memoized in
// the catalog's cache under (relation, fingerprint, epoch); a hit is
// returned without any engine work and still counts on the per-plan-kind
// metrics (with zero touched — nothing was scanned).
//
// Compat: with Config.LockedReads the query runs under the shared lock
// against the live engine — the pre-epoch behavior, kept as the
// read-scaling baseline — checking the context both before queueing for
// the lock and after acquiring it (lock waits can outlast deadlines).
func (e *Entry) readCtx(ctx context.Context, fp string, run func(en *query.Engine) query.Result) (QueryResult, error) {
	if err := ctx.Err(); err != nil {
		return QueryResult{}, err
	}
	if e.lockedReads {
		var res query.Result
		err := e.locked.View(func(*relation.Relation) error {
			if err := ctx.Err(); err != nil {
				return err
			}
			res = run(e.engine)
			return nil
		})
		if err != nil {
			return QueryResult{}, err
		}
		out := e.toResult(res)
		out.Epoch = e.Epoch()
		return out, nil
	}
	v := e.view.Load()
	key := qcache.Key{Rel: e.name, Fingerprint: fp, Epoch: v.epoch}
	if hit, ok := e.cache.Get(key); ok {
		qr := hit.(QueryResult)
		e.plans.Record(qr.Node.Leaf().Kind, 0)
		return qr, nil
	}
	out := e.toResult(run(v.engine))
	out.Epoch = v.epoch
	e.cache.Put(key, out, resultSize(out))
	return out, nil
}

// resultSize approximates a cached result's resident bytes for the
// cache's byte budget: a fixed element overhead plus its value slices,
// plus the plan rendering. Precision doesn't matter — the budget only has
// to scale with the real footprint.
func resultSize(qr QueryResult) int64 {
	n := int64(len(qr.Plan)) + 64
	for _, el := range qr.Elements {
		n += 128 + 32*int64(len(el.Invariant)+len(el.Varying)+len(el.UserTimes))
	}
	return n
}

// TimesliceAsOf answers the bitemporal query: elements valid at vt as
// stored at tt. No physical organization indexes both dimensions — the
// planner prices it as the bitemporal full scan — so this scans the
// relation.
func (e *Entry) TimesliceAsOf(vt, tt chronon.Chronon) QueryResult {
	out, _ := e.TimesliceAsOfCtx(context.Background(), vt, tt)
	return out
}

// TimesliceAsOfCtx is TimesliceAsOf with caller cancellation. The
// bitemporal scan is the catalog's most expensive read, so the scan
// itself is cooperative: it re-checks the context periodically and stops
// mid-scan when the caller is gone. Like the other reads it runs against
// the pinned view — no physical organization indexes both time
// dimensions, so it scans the view's elements — and memoizes in the
// result cache, where repeat bitemporal traffic benefits the most.
func (e *Entry) TimesliceAsOfCtx(ctx context.Context, vt, tt chronon.Chronon) (QueryResult, error) {
	if err := ctx.Err(); err != nil {
		return QueryResult{}, err
	}
	if e.lockedReads {
		var out QueryResult
		err := e.locked.View(func(r *relation.Relation) error {
			node := e.engine.Plan(plan.Query{Kind: plan.QAsOf, VTLo: int64(vt), TT: int64(tt)})
			els, err := r.TimesliceAsOfCtx(ctx, vt, tt)
			if err != nil {
				return err
			}
			out.Elements = els
			out.Plan = node.String()
			out.Node = node
			out.Touched = r.Len()
			return nil
		})
		if err != nil {
			return QueryResult{}, err
		}
		out.Epoch = e.Epoch()
		e.plans.Record(out.Node.Leaf().Kind, out.Touched)
		return out, nil
	}
	v := e.view.Load()
	fp := "asof:" + strconv.FormatInt(int64(vt), 10) + ":" + strconv.FormatInt(int64(tt), 10)
	key := qcache.Key{Rel: e.name, Fingerprint: fp, Epoch: v.epoch}
	if hit, ok := e.cache.Get(key); ok {
		qr := hit.(QueryResult)
		e.plans.Record(qr.Node.Leaf().Kind, 0)
		return qr, nil
	}
	node := v.engine.Plan(plan.Query{Kind: plan.QAsOf, VTLo: int64(vt), TT: int64(tt)})
	els, err := asOfScan(ctx, v.elems, vt, tt)
	if err != nil {
		return QueryResult{}, err
	}
	out := QueryResult{
		Elements: els, Plan: node.String(), Node: node,
		Touched: len(v.elems), Epoch: v.epoch,
	}
	e.plans.Record(node.Leaf().Kind, out.Touched)
	e.cache.Put(key, out, resultSize(out))
	return out, nil
}

// asOfCheckEvery matches the relation layer's cooperative-scan cadence.
const asOfCheckEvery = 1024

// asOfScan is the bitemporal full scan over a pinned view's elements,
// cooperative like relation.TimesliceAsOfCtx.
func asOfScan(ctx context.Context, elems []*element.Element, vt, tt chronon.Chronon) ([]*element.Element, error) {
	var out []*element.Element
	for i, el := range elems {
		if i%asOfCheckEvery == asOfCheckEvery-1 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if el.PresentAt(tt) && el.ValidAt(vt) {
			out = append(out, el)
		}
	}
	return out, nil
}

// Select evaluates a parsed tsql query against the relation under the
// shared lock. The query's Rel must name this entry. The statement is
// compiled onto the engine's planned access path: when the plan's leaf is
// a specialized strategy (vt binary search, tt-window pushdown, index
// seek), the engine produces the candidate set and only it is evaluated;
// otherwise the relation's backlog is scanned as before. The returned
// node is the executed plan; touched is its access-path cost.
func (e *Entry) Select(q *tsql.Query) (*tsql.Result, *plan.Node, int, error) {
	return e.SelectCtx(context.Background(), q)
}

// selectScratch pools candidate slices for SELECTs that must re-sort an
// index seek's output into insertion order, so the hot path stops
// allocating a fresh slice per query.
var selectScratch = sync.Pool{New: func() any { return new([]*element.Element) }}

// esOrdered reports whether the candidates already carry ascending
// element surrogates. Surrogates are assigned in insertion order and the
// log organizations yield arrival order, so only the B-tree index seek
// (vt-key order over a heap) normally fails this and pays the sort.
func esOrdered(els []*element.Element) bool {
	for i := 1; i < len(els); i++ {
		if els[i].ES < els[i-1].ES {
			return false
		}
	}
	return true
}

// SelectCtx is Select with caller cancellation; the full-scan evaluation
// path is cooperative, re-checking the context periodically mid-scan.
// Like the engine reads it evaluates against the pinned view, lock-free
// (LockedReads restores the shared-lock path).
func (e *Entry) SelectCtx(ctx context.Context, q *tsql.Query) (*tsql.Result, *plan.Node, int, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, 0, err
	}
	if q.Group != nil {
		return e.selectAggregate(ctx, q)
	}
	var res *tsql.Result
	var node *plan.Node
	touched := 0
	eval := func(en *query.Engine, schema relation.Schema, versions []*element.Element) error {
		node = tsql.Compile(q, en.Access())
		var err error
		switch node.Leaf().Kind {
		case plan.VTBinarySearch, plan.TTWindowPushdown, plan.BTreeIndexSeek:
			pq := tsql.PlanQuery(q)
			qres := en.VTRange(chronon.Chronon(pq.VTLo), chronon.Chronon(pq.VTHi))
			touched = qres.Touched
			if esOrdered(qres.Elements) {
				// Already the backlog scan's row order; evaluate in place.
				res, err = tsql.EvalOnCtx(ctx, q, schema, qres.Elements)
				return err
			}
			// An ES sort restores the backlog scan's row order exactly;
			// sort a pooled scratch copy, never the store's slice.
			sp := selectScratch.Get().(*[]*element.Element)
			cands := append((*sp)[:0], qres.Elements...)
			sort.Slice(cands, func(i, j int) bool { return cands[i].ES < cands[j].ES })
			res, err = tsql.EvalOnCtx(ctx, q, schema, cands)
			clear(cands) // drop element references before pooling
			*sp = cands[:0]
			selectScratch.Put(sp)
			return err
		default:
			res, err = tsql.EvalOnCtx(ctx, q, schema, versions)
			touched = len(versions)
			return err
		}
	}
	var err error
	if e.lockedReads {
		err = e.locked.View(func(r *relation.Relation) error {
			if err := ctx.Err(); err != nil {
				return err
			}
			return eval(e.engine, r.Schema(), r.Versions())
		})
	} else {
		v := e.view.Load()
		err = eval(v.engine, v.schema, v.elems)
	}
	if err != nil {
		return nil, nil, 0, err
	}
	e.plans.Record(node.Leaf().Kind, touched)
	return res, node, touched, nil
}

// Explain compiles the plan a SELECT would execute, without running it.
// It reads the published view's engine — one atomic load, no relation
// lock — so planning traffic never queues behind writers.
func (e *Entry) Explain(q *tsql.Query) *plan.Node {
	return tsql.Compile(q, e.view.Load().engine.Access())
}

// PlanFor builds the plan for one of the engine's query shapes, without
// executing it. Lock-free like Explain.
func (e *Entry) PlanFor(pq plan.Query) *plan.Node {
	return e.view.Load().engine.Plan(pq)
}

// Vacuum physically removes versions dead at or before the horizon (see
// relation.Vacuum), rebuilds the physical store over the survivors, and
// publishes a fresh epoch so pinned views keep serving the pre-vacuum
// state and every cached result is invalidated. No-op horizons (nothing
// removed) publish nothing — reads keep their epoch and cache.
func (e *Entry) Vacuum(horizon chronon.Chronon) (int, error) {
	// Vacuum is not WAL-logged, so a follower must refuse it: a removal
	// the primary never shipped would silently diverge the replica.
	if err := e.writable(); err != nil {
		return 0, err
	}
	removed := 0
	err := e.locked.Exclusive(func(r *relation.Relation) error {
		n, err := r.Vacuum(horizon)
		if err != nil {
			return err
		}
		removed = n
		if n > 0 {
			_ = e.rebuildEngine(r)
			e.publish()
			e.dirty.Store(true)
		}
		return nil
	})
	return removed, err
}

// Respecialize re-advises the relation's physical design from its
// declarations and its observed extension, and migrates the live store
// when the advice differs from the current organization. The migration is
// journaled (walRespecialize) before the store is rebuilt, so the adopted
// design survives a crash and ships to followers; the rebuild happens
// under the exclusive lock but readers never block — they keep serving
// the previously published view until the fresh epoch is swapped in.
// Returns the migration record and whether one happened.
func (e *Entry) Respecialize() (Migration, bool, error) {
	if err := e.writable(); err != nil {
		return Migration{}, false, err
	}
	var mig Migration
	migrated := false
	var lsn uint64
	err := e.locked.Exclusive(func(r *relation.Relation) error {
		declared := perRelationClasses(e.decls)
		observed := e.tracker.Classes()
		cand := storage.AdviseAuto(declared, observed, r.Schema().ValidTime)
		if cand.Store == e.advice.Store {
			return nil // the live organization is already the advised one
		}
		if e.wal != nil {
			payload := encodeRespecialize(cand.Store, cand.Source, observed)
			l, werr := e.wal.Write(walRespecialize, e.name, payload)
			if werr != nil {
				return e.walErr(werr)
			}
			lsn = l
			e.walLSN.Store(lsn)
			e.appendLeaf(lsn, walRespecialize, payload)
		}
		from := e.advice.Store
		e.adopted = observed
		_ = e.rebuildEngine(r) // bounds errors only; the engine is valid
		e.migrations++
		mig = Migration{
			Epoch:   e.Epoch() + 1, // the epoch publish is about to stamp
			From:    from,
			To:      e.advice.Store,
			Source:  e.advice.Source,
			Reasons: append([]string(nil), e.advice.Reasons...),
		}
		e.history = append(e.history, mig)
		e.publish()
		e.dirty.Store(true)
		migrated = true
		return nil
	})
	if err != nil || !migrated {
		return mig, migrated, err
	}
	return mig, true, e.waitDurable(lsn)
}

// Compact seals frozen runs over the live store's stable prefix when the
// organization supports it, publishing a fresh epoch so subsequent reads
// see the run metadata. Returns how many elements were newly sealed.
// Deliberately not WAL-logged: runs are derived state, rebuilt by the
// advisor loop after a restart.
func (e *Entry) Compact() int {
	sealed := 0
	_ = e.locked.Exclusive(func(r *relation.Relation) error {
		c, ok := e.engine.Store().(storage.Compacter)
		if !ok {
			return nil
		}
		if sealed = c.Compact(); sealed > 0 {
			e.publish()
		}
		return nil
	})
	return sealed
}

// Physical is a consistent snapshot of the entry's physical design: the
// live organization with its provenance, the declared / inferred / adopted
// class sets, the migration history, and the compaction state.
type Physical struct {
	Org     storage.Kind
	Source  string
	Reasons []string
	// Declared are the per-relation declared classes; Inferred the monotone
	// classes the extension tracker currently holds; Adopted the observed
	// classes a journaled respecialize committed to.
	Declared   []core.Class
	Inferred   []core.Class
	Adopted    []core.Class
	Migrations uint64
	History    []Migration
	Compaction storage.CompactionStats
	StoreBytes int64
	Tracker    core.TrackerStats
}

// Physical reports the entry's current physical design. It reads the
// atomically published snapshot — one load, no relation lock — so probe
// traffic (the metrics endpoint) never queues behind writers.
func (e *Entry) Physical() Physical {
	return *e.physical.Load()
}

// physicalLocked builds the Physical snapshot; caller holds the lock.
func (e *Entry) physicalLocked() Physical {
	return Physical{
		Org:        e.advice.Store,
		Source:     e.advice.Source,
		Reasons:    append([]string(nil), e.advice.Reasons...),
		Declared:   perRelationClasses(e.decls),
		Inferred:   e.tracker.Classes(),
		Adopted:    append([]core.Class(nil), e.adopted...),
		Migrations: e.migrations,
		History:    append([]Migration(nil), e.history...),
		Compaction: storage.Compaction(e.engine.Store()),
		StoreBytes: storage.StoreBytes(e.engine.Store()),
		Tracker:    e.tracker.Stats(),
	}
}

// PlanStats reports the entry's lifetime per-plan-kind counters.
func (e *Entry) PlanStats() map[string]plan.KindStats { return e.plans.Snapshot() }

// Classify infers the extension's specializations under the insertion
// basis at the schema granularity.
func (e *Entry) Classify() (core.Report, error) {
	var rep core.Report
	err := e.locked.View(func(r *relation.Relation) error {
		if r.Len() == 0 {
			return fmt.Errorf("catalog: relation %q is empty", e.name)
		}
		rep = core.Classify(r.Versions(), core.TTInsertion, r.Schema().Granularity)
		return nil
	})
	return rep, err
}

// Info is a consistent snapshot of the entry's metadata.
type Info struct {
	Schema       relation.Schema
	Versions     int
	Declarations []constraint.Descriptor
	Advice       storage.Advice
	// Plans is the entry's lifetime query count per plan kind.
	Plans map[string]plan.KindStats
	// Physical is the relation's current physical design.
	Physical Physical
}

// Info reports the entry's schema, size, declarations, current advice,
// physical design, and per-plan-kind query counters.
func (e *Entry) Info() Info {
	var info Info
	_ = e.locked.View(func(r *relation.Relation) error {
		info = Info{
			Schema:       r.Schema(),
			Versions:     r.Len(),
			Declarations: append([]constraint.Descriptor(nil), e.decls...),
			Advice:       e.advice,
			Plans:        e.plans.Snapshot(),
			Physical:     e.physicalLocked(),
		}
		return nil
	})
	return info
}

// snapshotTo saves the relation if dirty; reports whether a save happened.
// The shared lock is held for the whole serialization, so the file is a
// consistent cut and writers simply queue behind it.
func (e *Entry) snapshotTo(path string) (bool, error) {
	saved := false
	err := e.locked.View(func(r *relation.Relation) error {
		if !e.dirty.Swap(false) {
			return nil
		}
		phys := backlog.Physical{
			Org:        uint8(e.advice.Store),
			Source:     e.advice.Source,
			Adopted:    classesToU8(e.adopted),
			Migrations: e.migrations,
		}
		// The shared lock excludes every leaf-appending path, so the tree
		// snapshot is the same cut as walLSN: replay past the watermark
		// appends each missing leaf exactly once.
		if err := backlog.SaveWithIntegrity(path, r, e.decls, e.walLSN.Load(), phys, e.integritySnapshot()); err != nil {
			e.dirty.Store(true) // retry on the next snapshot
			return err
		}
		saved = true
		return nil
	})
	return saved, err
}
