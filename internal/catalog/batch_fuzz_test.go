package catalog

// Fuzzing for the batch WAL frame codec: decodeInsertBatch must never
// panic or over-allocate on arbitrary bytes (the count prefix is
// attacker-controlled on a corrupt log), and whatever it accepts must
// survive a canonical re-encode/decode cycle with every key and record
// intact — replay and follower apply both trust this codec.

import (
	"testing"

	"repro/internal/chronon"
	"repro/internal/element"
	"repro/internal/relation"
)

func fuzzBatchSeed(f *testing.F, keys []string, vts ...int64) []byte {
	f.Helper()
	recs := make([]relation.LogRecord, len(vts))
	for i, vt := range vts {
		recs[i] = relation.LogRecord{
			Op: relation.OpInsert,
			TT: 10,
			Elem: &element.Element{
				ES: 1, OS: 1,
				VT:      element.EventAt(chronon.Chronon(vt)),
				TTStart: 10,
			},
		}
	}
	b, err := encodeInsertBatch(keys, recs)
	if err != nil {
		f.Fatalf("seed encode: %v", err)
	}
	return b
}

func FuzzDecodeBatchFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}) // absurd count, no bytes behind it
	f.Add(fuzzBatchSeed(f, []string{""}, 5))
	f.Add(fuzzBatchSeed(f, []string{"k-1", "k-2", "k-3"}, 5, 9, 12))
	corrupt := fuzzBatchSeed(f, []string{"k"}, 7)
	corrupt[len(corrupt)-1] ^= 0xff
	f.Add(corrupt)
	f.Add(append(fuzzBatchSeed(f, nil), 0x00)) // trailing garbage

	f.Fuzz(func(t *testing.T, b []byte) {
		entries, err := decodeInsertBatch(b)
		if err != nil {
			return
		}
		keys := make([]string, len(entries))
		recs := make([]relation.LogRecord, len(entries))
		for i, en := range entries {
			if len(en.key) > maxIdemKeyLen {
				t.Fatalf("entry %d: accepted %d-byte key (max %d)", i, len(en.key), maxIdemKeyLen)
			}
			if en.rec.Elem == nil {
				t.Fatalf("entry %d: accepted record without element", i)
			}
			keys[i], recs[i] = en.key, en.rec
		}
		// Canonical-form idempotence: re-encoding what was accepted must
		// decode back to the same keys and record identities. (Byte-level
		// equality is not required — event stamps carry a redundant end
		// field the decoder normalizes away.)
		out, err := encodeInsertBatch(keys, recs)
		if err != nil {
			return // accepted batch can exceed the frame bound only via absurd inputs
		}
		again, err := decodeInsertBatch(out)
		if err != nil {
			t.Fatalf("canonical re-encode rejected: %v", err)
		}
		if len(again) != len(entries) {
			t.Fatalf("re-decode count %d, want %d", len(again), len(entries))
		}
		for i := range again {
			if again[i].key != entries[i].key {
				t.Fatalf("entry %d key %q -> %q", i, entries[i].key, again[i].key)
			}
			got, want := again[i].rec, entries[i].rec
			if got.Op != want.Op || got.TT != want.TT || got.Elem.ES != want.Elem.ES {
				t.Fatalf("entry %d record drifted: %+v -> %+v", i, want, got)
			}
		}
	})
}
