package catalog

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/chronon"
	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/element"
	"repro/internal/relation"
	"repro/internal/surrogate"
	"repro/internal/tx"
	"repro/internal/wal"
)

// relModel is the acknowledged state of one relation: what a correct
// recovery must show, no more and no less.
type relModel struct {
	inserted []surrogate.Surrogate
	deleted  map[surrogate.Surrogate]bool
	decls    int
}

type walModel struct{ rels map[string]*relModel }

func newWALModel() *walModel { return &walModel{rels: make(map[string]*relModel)} }

func (m *walModel) rel(name string) *relModel {
	r, ok := m.rels[name]
	if !ok {
		r = &relModel{deleted: make(map[surrogate.Surrogate]bool)}
		m.rels[name] = r
	}
	return r
}

// walWorkload runs the scripted mutation sequence against c, updating the
// model only for acknowledged operations, and stops at the first error
// (the injected crash). It returns the number of acknowledged steps.
func walWorkload(t *testing.T, c *Catalog, m *walModel) (int, error) {
	t.Helper()
	steps := 0
	emp := func() *Entry {
		e, err := c.Get("emp")
		if err != nil {
			t.Fatalf("Get(emp) after acked create: %v", err)
		}
		return e
	}

	// Step 1: create emp.
	if _, err := c.Create(eventSchema("emp")); err != nil {
		return steps, err
	}
	m.rel("emp")
	steps++

	// Steps 2-4: three inserts (tt = 10, 20, 30; all predictive).
	for _, vt := range []chronon.Chronon{50, 60, 70} {
		el, err := emp().Insert(relation.Insertion{VT: element.EventAt(vt)})
		if err != nil {
			return steps, err
		}
		m.rel("emp").inserted = append(m.rel("emp").inserted, el.ES)
		steps++
	}

	// Step 5: delete the first element.
	first := m.rel("emp").inserted[0]
	if err := emp().Delete(first); err != nil {
		return steps, err
	}
	m.rel("emp").deleted[first] = true
	steps++

	// Step 6: modify the second element (logical delete + fresh insert).
	second := m.rel("emp").inserted[1]
	repl, err := emp().Modify(second, element.EventAt(80), nil)
	if err != nil {
		return steps, err
	}
	m.rel("emp").deleted[second] = true
	m.rel("emp").inserted = append(m.rel("emp").inserted, repl.ES)
	steps++

	// Step 7: a batched insert — three elements in ONE WAL frame. The
	// model adds all three only on acknowledgment: recovery after a
	// crash anywhere inside the batch must show all of them or none
	// (the CRC admits whole frames only), never a torn prefix.
	bres, err := emp().InsertBatch(context.Background(), []relation.Insertion{
		{VT: element.EventAt(90)},
		{VT: element.EventAt(95)},
		{VT: element.EventAt(99)},
	}, []string{"bk-1", "bk-2", "bk-3"}, false)
	if err != nil {
		return steps, err
	}
	for i, it := range bres.Items {
		if it.Status != BatchStored || it.Elem == nil {
			t.Fatalf("batch item %d = %+v, want stored", i, it)
		}
		m.rel("emp").inserted = append(m.rel("emp").inserted, it.Elem.ES)
	}
	steps++

	// Step 8: declare a constraint the surviving history satisfies.
	pred := constraint.Event{Spec: core.PredictiveSpec()}
	d, ok := constraint.Describe(pred, constraint.PerRelation)
	if !ok {
		t.Fatal("predictive constraint not describable")
	}
	if err := emp().Declare([]constraint.Descriptor{d}); err != nil {
		return steps, err
	}
	m.rel("emp").decls++
	steps++

	// Steps 9-10: a second relation with one retroactive insert.
	if _, err := c.Create(eventSchema("dept")); err != nil {
		return steps, err
	}
	m.rel("dept")
	steps++
	dept, err := c.Get("dept")
	if err != nil {
		t.Fatalf("Get(dept): %v", err)
	}
	el, err := dept.Insert(relation.Insertion{VT: element.EventAt(5)})
	if err != nil {
		return steps, err
	}
	m.rel("dept").inserted = append(m.rel("dept").inserted, el.ES)
	steps++
	return steps, nil
}

// verifyWALModel asserts the recovered catalog matches the acknowledged
// model exactly: every acked write present, nothing unacked visible.
func verifyWALModel(t *testing.T, k int, c *Catalog, m *walModel) {
	t.Helper()
	for name, rm := range m.rels {
		e, err := c.Get(name)
		if err != nil {
			t.Fatalf("k=%d: acked relation %q lost: %v", k, name, err)
		}
		_ = e.Locked().View(func(r *relation.Relation) error {
			if r.Len() != len(rm.inserted) {
				t.Fatalf("k=%d: %q has %d versions, want %d (acked)", k, name, r.Len(), len(rm.inserted))
			}
			for _, es := range rm.inserted {
				el, ok := r.ByES(es)
				if !ok {
					t.Fatalf("k=%d: %q lost acked element %v", k, name, es)
				}
				if el.Current() == rm.deleted[es] {
					t.Fatalf("k=%d: %q element %v: current=%v, want deleted=%v",
						k, name, es, el.Current(), rm.deleted[es])
				}
			}
			return nil
		})
		if got := len(e.Info().Declarations); got != rm.decls {
			t.Fatalf("k=%d: %q has %d declarations, want %d", k, name, got, rm.decls)
		}
	}
	if c.Len() != len(m.rels) {
		t.Fatalf("k=%d: catalog holds %d relations, want %d acked (%v)", k, c.Len(), len(m.rels), c.Names())
	}
}

// TestCatalogWALSnapshotTruncatesAndRecovers proves the truncation
// protocol on real files: a snapshot sweep truncates the segments it
// covered, an abrupt stop (no Close, no final flush) loses nothing, and
// the next boot recovers snapshot + log without replaying records twice.
func TestCatalogWALSnapshotTruncatesAndRecovers(t *testing.T) {
	root := t.TempDir()
	dataDir := filepath.Join(root, "data")
	walDir := filepath.Join(root, "wal")
	open := func() (*wal.Log, *Catalog) {
		t.Helper()
		w, err := wal.Open(wal.Options{Dir: walDir, Sync: wal.SyncGroup, SegmentBytes: 512})
		if err != nil {
			t.Fatalf("wal.Open: %v", err)
		}
		c := New(Config{Dir: dataDir, NewClock: func() tx.Clock { return tx.NewLogicalClock(0, 10) }, WAL: w})
		if err := c.Open(); err != nil {
			t.Fatalf("catalog.Open: %v", err)
		}
		return w, c
	}

	w, c := open()
	e, err := c.Create(eventSchema("emp"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	var acked []surrogate.Surrogate
	for i := 0; i < 30; i++ {
		el, err := e.Insert(relation.Insertion{VT: element.EventAt(chronon.Chronon(100 + i))})
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		acked = append(acked, el.ES)
	}
	if w.Stats().Segments < 2 {
		t.Fatal("test needs rolled segments before the snapshot")
	}
	if _, err := c.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if got := w.Stats().TruncatedSegments; got == 0 {
		t.Fatal("snapshot truncated no segments")
	}
	// Post-snapshot mutations live only in the log.
	for i := 30; i < 40; i++ {
		el, err := e.Insert(relation.Insertion{VT: element.EventAt(chronon.Chronon(100 + i))})
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		acked = append(acked, el.ES)
	}
	if err := e.Delete(acked[0]); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	// Abrupt stop: no Snapshot, no Close — the kill -9 path. The group
	// policy acknowledged every mutation only after its fsync, so the log
	// files already hold them.

	w2, c2 := open()
	if got := w2.Stats().Replayed; got == 0 {
		t.Fatal("second boot replayed nothing; post-snapshot writes lost")
	}
	e2, err := c2.Get("emp")
	if err != nil {
		t.Fatalf("Get after reboot: %v", err)
	}
	_ = e2.Locked().View(func(r *relation.Relation) error {
		if r.Len() != len(acked) {
			t.Fatalf("recovered %d versions, want %d", r.Len(), len(acked))
		}
		for i, es := range acked {
			el, ok := r.ByES(es)
			if !ok {
				t.Fatalf("acked element %d (%v) lost", i, es)
			}
			if (i == 0) == el.Current() {
				t.Fatalf("element %d: current=%v, want deleted=%v", i, el.Current(), i == 0)
			}
		}
		return nil
	})
	if err := c2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := w2.Close(); err != nil {
		t.Fatalf("wal Close: %v", err)
	}
}

// TestCatalogWALCrashPointMatrix is the fault-injection matrix: the
// scripted workload runs against an errfs-backed WAL that crashes at the
// k-th file operation, for every k up to the fault-free operation count.
// After each crash the catalog is rebooted from the log and must equal the
// acknowledged prefix exactly — no acked write lost, no unacked write
// visible.
func TestCatalogWALCrashPointMatrix(t *testing.T) {
	// Dry run: count the workload's file operations with no fault armed.
	run := func(fs *wal.ErrFS, k int) (*walModel, int, error) {
		w, err := wal.Open(wal.Options{FS: fs, Sync: wal.SyncAlways, SegmentBytes: 512})
		if err != nil {
			t.Fatalf("k=%d: fresh wal.Open: %v", k, err)
		}
		c := New(Config{NewClock: func() tx.Clock { return tx.NewLogicalClock(0, 10) }, WAL: w})
		if err := c.Open(); err != nil {
			t.Fatalf("k=%d: fresh catalog.Open: %v", k, err)
		}
		if k > 0 {
			fs.FailAt(k, wal.FaultCrash)
		}
		m := newWALModel()
		_, err = walWorkload(t, c, m)
		return m, fs.Ops(), err
	}

	fs := wal.NewErrFS()
	_, dryOps, err := run(fs, 0)
	if err != nil {
		t.Fatalf("fault-free workload failed: %v", err)
	}
	base := wal.NewErrFS()
	if _, err := wal.Open(wal.Options{FS: base, Sync: wal.SyncAlways, SegmentBytes: 512}); err != nil {
		t.Fatal(err)
	}
	preOps := base.Ops() // Open's own header write + sync
	n := dryOps - preOps
	if n < 10 {
		t.Fatalf("workload issues only %d file ops; matrix too thin", n)
	}
	if testing.Short() && n > 12 {
		n = 12
	}

	for k := 1; k <= n; k++ {
		k := k
		t.Run(fmt.Sprintf("crash-at-%02d", k), func(t *testing.T) {
			fs := wal.NewErrFS()
			m, _, err := run(fs, k)
			if err == nil {
				t.Fatalf("k=%d: workload finished despite armed crash", k)
			}
			if !errors.Is(err, wal.ErrCrashed) {
				t.Fatalf("k=%d: workload error = %v, want ErrCrashed", k, err)
			}
			if !fs.Crashed() {
				t.Fatalf("k=%d: fault never triggered", k)
			}

			// Reboot: unsynced bytes vanish, the log replays, and the
			// catalog must equal the acknowledged prefix.
			fs.CrashRecover()
			w, err := wal.Open(wal.Options{FS: fs, Sync: wal.SyncAlways, SegmentBytes: 512})
			if err != nil {
				t.Fatalf("k=%d: wal.Open after crash: %v", k, err)
			}
			c := New(Config{NewClock: func() tx.Clock { return tx.NewLogicalClock(0, 10) }, WAL: w})
			if err := c.Open(); err != nil {
				t.Fatalf("k=%d: catalog.Open after crash: %v", k, err)
			}
			verifyWALModel(t, k, c, m)

			// The rebooted catalog accepts new durable writes.
			if len(m.rels) > 0 {
				name := c.Names()[0]
				e, err := c.Get(name)
				if err != nil {
					t.Fatalf("k=%d: Get(%s): %v", k, name, err)
				}
				if _, err := e.Insert(relation.Insertion{VT: element.EventAt(10_000)}); err != nil {
					t.Fatalf("k=%d: post-recovery insert: %v", k, err)
				}
			}
		})
	}
}
