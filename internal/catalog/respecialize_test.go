package catalog

// Tests for the specialization feedback loop: observed-extension
// inference licensing a live store migration (Respecialize), the
// journaled walRespecialize frame carrying the design across restarts
// and to followers, adoption revoking cleanly when later history breaks
// the observed property, and class-scheduled compaction sealing frozen
// runs on the migrated append-only organization. The invariant every
// test leans on: migration may change plans and costs but never results.

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"testing"

	"repro/internal/chronon"
	"repro/internal/core"
	"repro/internal/element"
	"repro/internal/relation"
	"repro/internal/storage"
	"repro/internal/tx"
	"repro/internal/wal"
)

// degenerateInserts stores n elements whose valid time coincides with
// the transaction time the logical clock (origin 0, step 10) will issue:
// tt = vt = 10, 20, 30, ... — the paper's degenerate class, observed
// rather than declared.
func degenerateInserts(t testing.TB, e *Entry, n int) {
	t.Helper()
	for i := 1; i <= n; i++ {
		if _, err := e.Insert(relation.Insertion{VT: element.EventAt(chronon.Chronon(10 * i))}); err != nil {
			t.Fatalf("degenerate insert %d: %v", i, err)
		}
	}
}

// resultKey flattens a query result into a canonical, order-independent
// form so pre- and post-migration answers can be compared byte for byte.
func resultKey(res QueryResult) []string {
	keys := make([]string, len(res.Elements))
	for i, el := range res.Elements {
		keys[i] = fmt.Sprintf("%v|%v|%v|%v", el.ES, el.VT, el.TTStart, el.TTEnd)
	}
	sort.Strings(keys)
	return keys
}

func sameElements(t *testing.T, what string, a, b QueryResult) {
	t.Helper()
	ka, kb := resultKey(a), resultKey(b)
	if len(ka) != len(kb) {
		t.Fatalf("%s: %d elements before, %d after", what, len(ka), len(kb))
	}
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatalf("%s: element %d diverged:\n before %s\n after  %s", what, i, ka[i], kb[i])
		}
	}
}

func TestRespecializeInferredMigration(t *testing.T) {
	c := New(testConfig(t.TempDir()))
	e, err := c.Create(eventSchema("mon"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	const n = 48
	degenerateInserts(t, e, n)

	before := e.Physical()
	if before.Org == storage.VTOrdered {
		t.Fatalf("fresh relation already vt-ordered (org %v); inference must not change the org without a journaled migration", before.Org)
	}
	if got := before.Inferred; len(got) == 0 {
		t.Fatal("tracker inferred no classes from a degenerate extension")
	}

	ctx := context.Background()
	tsBefore, _ := e.TimesliceCtx(ctx, 250)
	rbBefore, _ := e.RollbackCtx(ctx, 250)
	curBefore, _ := e.CurrentCtx(ctx)

	rep, err := c.AdvisePass(DefaultAdvisorConfig())
	if err != nil {
		t.Fatalf("AdvisePass: %v", err)
	}
	if rep.Examined != 1 || len(rep.Migrations) != 1 {
		t.Fatalf("AdvisePass examined %d, migrated %d; want 1 and 1", rep.Examined, len(rep.Migrations))
	}
	mig := rep.Migrations[0]
	if mig.From != before.Org || mig.To != storage.VTOrdered || mig.Source != storage.SourceInferred {
		t.Fatalf("migration %v -> %v (%s); want %v -> %v (%s)",
			mig.From, mig.To, mig.Source, before.Org, storage.VTOrdered, storage.SourceInferred)
	}

	after := e.Physical()
	if after.Org != storage.VTOrdered || after.Source != storage.SourceInferred {
		t.Fatalf("post-migration org %v (%s); want %v (%s)",
			after.Org, after.Source, storage.VTOrdered, storage.SourceInferred)
	}
	if after.Migrations != 1 || len(after.History) != 1 {
		t.Fatalf("migrations %d, history %d; want 1 and 1", after.Migrations, len(after.History))
	}
	hasDegenerate := false
	for _, cl := range after.Adopted {
		if cl == core.Degenerate {
			hasDegenerate = true
		}
	}
	if !hasDegenerate {
		t.Fatalf("adopted classes %v lack Degenerate", after.Adopted)
	}

	tsAfter, _ := e.TimesliceCtx(ctx, 250)
	rbAfter, _ := e.RollbackCtx(ctx, 250)
	curAfter, _ := e.CurrentCtx(ctx)
	sameElements(t, "timeslice", tsBefore, tsAfter)
	sameElements(t, "rollback", rbBefore, rbAfter)
	sameElements(t, "current", curBefore, curAfter)

	// A second pass with nothing new observed is a no-op: the advice is
	// already adopted, so no further migration and no history growth.
	rep2, err := c.AdvisePass(AdvisorConfig{}) // zero thresholds: always look
	if err != nil {
		t.Fatalf("second AdvisePass: %v", err)
	}
	if len(rep2.Migrations) != 0 {
		t.Fatalf("second pass migrated again: %+v", rep2.Migrations)
	}
	if got := e.Physical().Migrations; got != 1 {
		t.Fatalf("migrations after no-op pass = %d, want 1", got)
	}
}

func TestAdvisePassThresholdsGateReexamination(t *testing.T) {
	c := New(testConfig(t.TempDir()))
	e, err := c.Create(eventSchema("mon"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	degenerateInserts(t, e, 8)

	cfg := AdvisorConfig{MinEpochDelta: 1 << 20, MinBytesDelta: 1 << 40}
	rep, err := c.AdvisePass(cfg)
	if err != nil {
		t.Fatalf("first pass: %v", err)
	}
	if rep.Examined != 1 {
		t.Fatalf("first look examined %d, want 1 (never-seen relations always qualify)", rep.Examined)
	}
	rep2, err := c.AdvisePass(cfg)
	if err != nil {
		t.Fatalf("second pass: %v", err)
	}
	if rep2.Examined != 0 {
		t.Fatalf("second look examined %d, want 0 (thresholds not reached)", rep2.Examined)
	}
}

func TestAdvisePassRefusedOnFollower(t *testing.T) {
	c := New(Config{
		NewClock: func() tx.Clock { return tx.NewLogicalClock(0, 10) },
		Follower: true,
	})
	if err := c.Open(); err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := c.AdvisePass(DefaultAdvisorConfig()); err == nil {
		t.Fatal("AdvisePass succeeded on a follower; designs must replicate from the primary")
	}
}

func TestRespecializeCompactionSealsRuns(t *testing.T) {
	c := New(testConfig(t.TempDir()))
	e, err := c.Create(eventSchema("mon"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	const n = 700 // > 2 full runs of 256
	degenerateInserts(t, e, n)

	ctx := context.Background()
	probeVT := chronon.Chronon(10 * (n / 3))
	tsBefore, _ := e.TimesliceCtx(ctx, probeVT)
	rbBefore, _ := e.RollbackCtx(ctx, probeVT)

	rep, err := c.AdvisePass(DefaultAdvisorConfig())
	if err != nil {
		t.Fatalf("AdvisePass: %v", err)
	}
	if len(rep.Migrations) != 1 {
		t.Fatalf("migrations %d, want 1", len(rep.Migrations))
	}
	if rep.Sealed == 0 {
		t.Fatal("class-scheduled compaction sealed nothing on a 700-element vt-ordered relation")
	}
	phys := e.Physical()
	if phys.Compaction.Runs == 0 || phys.Compaction.Sealed == 0 {
		t.Fatalf("compaction stats empty after sealing: %+v", phys.Compaction)
	}
	if phys.Compaction.PackedBytes <= 0 {
		t.Fatalf("sealed runs report no packed bytes: %+v", phys.Compaction)
	}

	tsAfter, _ := e.TimesliceCtx(ctx, probeVT)
	rbAfter, _ := e.RollbackCtx(ctx, probeVT)
	sameElements(t, "timeslice over sealed runs", tsBefore, tsAfter)
	sameElements(t, "rollback over sealed runs", rbBefore, rbAfter)

	// Inserts after sealing land in the mutable tail and stay queryable.
	degenerateInserts(t, e, 5)
	cur, _ := e.CurrentCtx(ctx)
	if len(cur.Elements) != n+5 {
		t.Fatalf("current after post-seal inserts = %d, want %d", len(cur.Elements), n+5)
	}
}

func TestRespecializeAdoptionRevokedByViolatingInsert(t *testing.T) {
	c := New(testConfig(t.TempDir()))
	e, err := c.Create(eventSchema("mon"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	degenerateInserts(t, e, 32)
	if _, err := c.AdvisePass(DefaultAdvisorConfig()); err != nil {
		t.Fatalf("AdvisePass: %v", err)
	}
	if got := e.Physical().Org; got != storage.VTOrdered {
		t.Fatalf("pre-violation org %v, want %v", got, storage.VTOrdered)
	}

	// A retroactive event (vt far below the issued tt) breaks both the
	// degenerate and the sequential property. The adoption was inferred,
	// not declared, so the insert must be ACCEPTED and the organization
	// degraded — never the element rejected.
	el, err := e.Insert(relation.Insertion{VT: element.EventAt(3)})
	if err != nil {
		t.Fatalf("violating insert rejected: %v", err)
	}
	phys := e.Physical()
	if phys.Org == storage.VTOrdered {
		t.Fatalf("org still %v after the observed order was violated", phys.Org)
	}
	cur, _ := e.CurrentCtx(context.Background())
	found := false
	for _, got := range cur.Elements {
		if got.ES == el.ES {
			found = true
		}
	}
	if !found || len(cur.Elements) != 33 {
		t.Fatalf("current = %d elements (violating present %v), want 33 and true", len(cur.Elements), found)
	}

	// Re-advising now finds the extension degenerate no more: the revoked
	// adoption stops licensing anything, and the advisor settles on a
	// general organization instead of flapping back.
	rep, err := c.AdvisePass(AdvisorConfig{})
	if err != nil {
		t.Fatalf("re-advise: %v", err)
	}
	for _, m := range rep.Migrations {
		if m.To == storage.VTOrdered {
			t.Fatalf("advisor migrated back to %v on a non-degenerate extension", m.To)
		}
	}
}

func TestRespecializeSurvivesWALReplay(t *testing.T) {
	dir := t.TempDir()
	walDir := t.TempDir()
	wlog, err := wal.Open(wal.Options{Dir: walDir, Sync: wal.SyncGroup})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	cfg := testConfig(dir)
	cfg.WAL = wlog
	c := New(cfg)
	e, err := c.Create(eventSchema("mon"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	degenerateInserts(t, e, 24)
	if _, err := c.AdvisePass(DefaultAdvisorConfig()); err != nil {
		t.Fatalf("AdvisePass: %v", err)
	}
	degenerateInserts(t, e, 4) // mutations after the migration frame
	want := e.Physical()
	curWant, _ := e.CurrentCtx(context.Background())
	if err := wlog.Close(); err != nil {
		t.Fatalf("wal close: %v", err)
	}

	// Crash-restart: nothing was snapshotted, so the org must come back
	// from the walRespecialize frame alone.
	wlog2, err := wal.Open(wal.Options{Dir: walDir, Sync: wal.SyncGroup})
	if err != nil {
		t.Fatalf("wal reopen: %v", err)
	}
	defer wlog2.Close()
	cfg2 := testConfig(dir)
	cfg2.WAL = wlog2
	c2 := New(cfg2)
	if err := c2.Open(); err != nil {
		t.Fatalf("Open: %v", err)
	}
	e2, err := c2.Get("mon")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	got := e2.Physical()
	if got.Org != want.Org || got.Source != want.Source {
		t.Fatalf("replayed org %v (%s), want %v (%s)", got.Org, got.Source, want.Org, want.Source)
	}
	if got.Migrations != want.Migrations {
		t.Fatalf("replayed migrations %d, want %d", got.Migrations, want.Migrations)
	}
	if len(got.Adopted) != len(want.Adopted) {
		t.Fatalf("replayed adopted %v, want %v", got.Adopted, want.Adopted)
	}
	cur, _ := e2.CurrentCtx(context.Background())
	sameElements(t, "current across replay", curWant, cur)
}

func TestRespecializeSurvivesSnapshot(t *testing.T) {
	dir := t.TempDir()
	walDir := t.TempDir()
	wlog, err := wal.Open(wal.Options{Dir: walDir, Sync: wal.SyncGroup})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	cfg := testConfig(dir)
	cfg.WAL = wlog
	c := New(cfg)
	e, err := c.Create(eventSchema("mon"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	degenerateInserts(t, e, 24)
	if _, err := c.AdvisePass(DefaultAdvisorConfig()); err != nil {
		t.Fatalf("AdvisePass: %v", err)
	}
	want := e.Physical()
	// Snapshot persists the physical design and truncates the WAL below
	// the covered watermark — the walRespecialize frame may be gone, so
	// the design must round-trip through the snapshot codec.
	if _, err := c.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if err := wlog.Close(); err != nil {
		t.Fatalf("wal close: %v", err)
	}

	wlog2, err := wal.Open(wal.Options{Dir: walDir, Sync: wal.SyncGroup})
	if err != nil {
		t.Fatalf("wal reopen: %v", err)
	}
	defer wlog2.Close()
	cfg2 := testConfig(dir)
	cfg2.WAL = wlog2
	c2 := New(cfg2)
	if err := c2.Open(); err != nil {
		t.Fatalf("Open: %v", err)
	}
	e2, err := c2.Get("mon")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	got := e2.Physical()
	if got.Org != want.Org || got.Source != want.Source || got.Migrations != want.Migrations {
		t.Fatalf("snapshot-loaded design org %v (%s) migrations %d, want %v (%s) %d",
			got.Org, got.Source, got.Migrations, want.Org, want.Source, want.Migrations)
	}
	if len(got.Adopted) != len(want.Adopted) {
		t.Fatalf("snapshot-loaded adopted %v, want %v", got.Adopted, want.Adopted)
	}
}

func TestFollowerAdoptsReplicatedRespecialize(t *testing.T) {
	walDir := t.TempDir()
	wlog, err := wal.Open(wal.Options{Dir: walDir, Sync: wal.SyncGroup})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	defer wlog.Close()
	cfg := testConfig(t.TempDir())
	cfg.WAL = wlog
	primary := New(cfg)
	e, err := primary.Create(eventSchema("mon"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	degenerateInserts(t, e, 24)
	if _, err := primary.AdvisePass(DefaultAdvisorConfig()); err != nil {
		t.Fatalf("AdvisePass: %v", err)
	}
	degenerateInserts(t, e, 4)
	want := e.Physical()
	curWant, _ := e.CurrentCtx(context.Background())

	recs, _, err := wlog.IterateFrom(1, 100_000)
	if err != nil {
		t.Fatalf("IterateFrom: %v", err)
	}
	sawRespecialize := false
	for _, rec := range recs {
		if rec.Kind == walRespecialize {
			sawRespecialize = true
		}
	}
	if !sawRespecialize {
		t.Fatal("primary WAL carries no walRespecialize frame")
	}

	follower := New(Config{
		NewClock: func() tx.Clock { return tx.NewLogicalClock(0, 10) },
		Follower: true,
	})
	if err := follower.Open(); err != nil {
		t.Fatalf("follower Open: %v", err)
	}
	if err := follower.ApplyReplicated(recs); err != nil {
		t.Fatalf("ApplyReplicated: %v", err)
	}
	fe, err := follower.Get("mon")
	if err != nil {
		t.Fatalf("follower Get: %v", err)
	}
	got := fe.Physical()
	if got.Org != want.Org || got.Source != want.Source || got.Migrations != want.Migrations {
		t.Fatalf("follower design org %v (%s) migrations %d, want %v (%s) %d",
			got.Org, got.Source, got.Migrations, want.Org, want.Source, want.Migrations)
	}
	cur, _ := fe.CurrentCtx(context.Background())
	sameElements(t, "follower current", curWant, cur)
}

// TestRespecializeConcurrentStress races live migrations and compaction
// against snapshot readers, writers, and vacuum. Run under -race; the
// assertions pin only the final count — the value is the interleavings.
func TestRespecializeConcurrentStress(t *testing.T) {
	c := New(testConfig(t.TempDir()))
	e, err := c.Create(eventSchema("mon"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	const seed = 64
	degenerateInserts(t, e, seed)

	const (
		writers   = 2
		readers   = 3
		perWriter = 80
		passes    = 40
	)
	ctx := context.Background()
	var mutators, observers sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		mutators.Add(1)
		go func(w int) {
			defer mutators.Done()
			for i := 0; i < perWriter; i++ {
				// Mostly large vt stamps (order-friendly), every 16th one
				// retroactive so adoptions get revoked mid-flight too.
				vt := chronon.Chronon(100_000 + 10*(w*perWriter+i))
				if i%16 == 15 {
					vt = chronon.Chronon(1 + i)
				}
				if _, err := e.Insert(relation.Insertion{VT: element.EventAt(vt)}); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		observers.Add(1)
		go func(r int) {
			defer observers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				switch i % 3 {
				case 0:
					if _, err := e.TimesliceCtx(ctx, chronon.Chronon(10*(i%seed+1))); err != nil {
						t.Errorf("reader %d timeslice: %v", r, err)
						return
					}
				case 1:
					if _, err := e.RollbackCtx(ctx, chronon.Chronon(10*(i%seed+1))); err != nil {
						t.Errorf("reader %d rollback: %v", r, err)
						return
					}
				default:
					if _, err := e.CurrentCtx(ctx); err != nil {
						t.Errorf("reader %d current: %v", r, err)
						return
					}
				}
				_ = e.Physical() // the lock-free probe, raced too
			}
		}(r)
	}
	mutators.Add(1)
	go func() { // the advisor, re-advising and compacting continuously
		defer mutators.Done()
		for i := 0; i < passes; i++ {
			if _, err := c.AdvisePass(AdvisorConfig{}); err != nil {
				t.Errorf("advise pass %d: %v", i, err)
				return
			}
			e.Compact()
		}
	}()
	mutators.Add(1)
	go func() { // vacuum racing the migrations
		defer mutators.Done()
		for i := 0; i < 10; i++ {
			if _, err := e.Vacuum(1); err != nil { // horizon below every tt: frees nothing
				t.Errorf("vacuum: %v", err)
				return
			}
		}
	}()

	mutators.Wait() // writers, advisor, vacuum all terminate on their own
	close(stop)     // then release the readers
	observers.Wait()

	cur, err := e.CurrentCtx(ctx)
	if err != nil {
		t.Fatalf("final current: %v", err)
	}
	if want := seed + writers*perWriter; len(cur.Elements) != want {
		t.Fatalf("final current = %d elements, want %d", len(cur.Elements), want)
	}
}

// noSeekClock hides any AdvanceTo the wrapped clock offers, modeling a
// transaction-time source that restarts at its origin after a reboot:
// replay cannot re-seed it, so the first post-restart stamp falls below
// transaction times already persisted.
type noSeekClock struct{ inner tx.Clock }

func (c noSeekClock) Next() chronon.Chronon { return c.inner.Next() }
func (c noSeekClock) Now() chronon.Chronon  { return c.inner.Now() }

// A clock that restarts behind persisted stamps commits tt out of order,
// which no ordered store accepts. The engine rebuild must then reach the
// assumption-free heap rather than silently dropping the committed
// element from the store — an acknowledged write must never be invisible
// to reads, whatever the organization costs.
func TestRespecializeBackwardClockKeepsCommittedElements(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Dir:      dir,
		NewClock: func() tx.Clock { return noSeekClock{tx.NewLogicalClock(0, 10)} },
	}
	c := New(cfg)
	e, err := c.Create(eventSchema("mon"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	const n = 20
	degenerateInserts(t, e, n)
	rep, err := c.AdvisePass(AdvisorConfig{})
	if err != nil {
		t.Fatalf("AdvisePass: %v", err)
	}
	if len(rep.Migrations) != 1 {
		t.Fatalf("migrations = %d, want 1", len(rep.Migrations))
	}
	if _, err := c.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen: the fresh clock restarts at origin 0, so the next stamp (10)
	// is far below the persisted maximum (10n) and replay cannot fix it.
	c2 := New(cfg)
	if err := c2.Open(); err != nil {
		t.Fatalf("Open: %v", err)
	}
	e2, err := c2.Get("mon")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if org := e2.Physical().Org; org != storage.VTOrdered {
		t.Fatalf("reloaded org = %v, want the adopted %v", org, storage.VTOrdered)
	}
	el, err := e2.Insert(relation.Insertion{VT: element.EventAt(chronon.Chronon(5))})
	if err != nil {
		t.Fatalf("post-restart insert refused: %v", err)
	}
	cur := e2.Current()
	if len(cur.Elements) != n+1 {
		t.Fatalf("current after acknowledged insert = %d elements, want %d", len(cur.Elements), n+1)
	}
	found := false
	for _, got := range cur.Elements {
		if got.ES == el.ES {
			found = true
		}
	}
	if !found {
		t.Fatal("acknowledged element missing from the current state")
	}
	phys := e2.Physical()
	if phys.Org != storage.Heap {
		t.Fatalf("org after out-of-order tt = %v, want %v (the only organization that can hold this history)", phys.Org, storage.Heap)
	}
	// The out-of-order element must also answer valid-time queries.
	ts, err := e2.TimesliceCtx(context.Background(), chronon.Chronon(5))
	if err != nil {
		t.Fatalf("Timeslice: %v", err)
	}
	if len(ts.Elements) != 1 {
		t.Fatalf("timeslice at the new element's vt = %d elements, want 1", len(ts.Elements))
	}
}
