package catalog

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/chronon"
	"repro/internal/element"
	"repro/internal/integrity"
	"repro/internal/relation"
	"repro/internal/storage"
	"repro/internal/tx"
	"repro/internal/wal"
)

// integOpen boots a signed, WAL-backed catalog over the given root,
// with small segments so tests exercise rolled (sealed) segments.
func integOpen(t *testing.T, root string) (*wal.Log, *Catalog) {
	t.Helper()
	w, err := wal.Open(wal.Options{Dir: filepath.Join(root, "wal"), Sync: wal.SyncGroup, SegmentBytes: 512})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	signer, err := integrity.LoadOrCreateSigner(filepath.Join(root, "integrity.ed25519"))
	if err != nil {
		t.Fatalf("LoadOrCreateSigner: %v", err)
	}
	c := New(Config{
		Dir:      filepath.Join(root, "data"),
		NewClock: func() tx.Clock { return tx.NewLogicalClock(0, 10) },
		WAL:      w, Signer: signer,
	})
	if err := c.Open(); err != nil {
		t.Fatalf("catalog.Open: %v", err)
	}
	return w, c
}

func integInsert(t *testing.T, e *Entry, n, base int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := e.Insert(relation.Insertion{VT: element.EventAt(chronon.Chronon(base + i))}); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
}

// TestIntegrityProofsAndRestartParity proves the write path, boot-time
// replay, and snapshot seeding all agree on the leaf sequence: proofs
// verify against signed roots, and an abrupt restart (snapshot covering
// part of the history, WAL replay the rest) reproduces the same tree.
func TestIntegrityProofsAndRestartParity(t *testing.T) {
	root := t.TempDir()
	w, c := integOpen(t, root)
	e, err := c.Create(eventSchema("emp"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	integInsert(t, e, 10, 100)

	st := e.IntegrityState()
	if !st.Tracked || st.Size != 11 { // create frame + 10 inserts
		t.Fatalf("state = %+v, want tracked size 11", st)
	}
	pub := c.cfg.Signer.Public()
	if !integrity.VerifyRoot(pub, st.Signed) {
		t.Fatal("signed root does not verify")
	}

	leaf, incl, signed, err := e.InclusionProof(3)
	if err != nil {
		t.Fatalf("InclusionProof: %v", err)
	}
	if !integrity.VerifyRoot(pub, signed) {
		t.Fatal("inclusion proof's signed root does not verify")
	}
	if !integrity.VerifyInclusion(leaf, 3, signed.Size, incl.Hashes, signed.Root) {
		t.Fatal("inclusion proof rejected")
	}
	if integrity.VerifyInclusion(leaf, 4, signed.Size, incl.Hashes, signed.Root) {
		t.Fatal("inclusion proof verified at the wrong index")
	}

	// Anchor the current (size, root), grow the history, and prove the new
	// tree extends the anchor: the append-only guarantee a client checks.
	anchorSize, anchorRoot := st.Size, st.Root
	integInsert(t, e, 5, 200)
	cons, _, signed2, err := e.ConsistencyProof(anchorSize)
	if err != nil {
		t.Fatalf("ConsistencyProof: %v", err)
	}
	if signed2.Size != anchorSize+5 {
		t.Fatalf("new size = %d, want %d", signed2.Size, anchorSize+5)
	}
	if !integrity.VerifyConsistency(anchorSize, signed2.Size, anchorRoot, signed2.Root, cons.Hashes) {
		t.Fatal("consistency proof rejected")
	}

	// Snapshot part of the history, mutate past it, then stop abruptly: the
	// reboot seeds the tree from the shard and replays the tail.
	if _, err := c.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	integInsert(t, e, 4, 300)
	want := e.IntegrityState()

	w2, c2 := integOpen(t, root)
	defer w2.Close()
	e2, err := c2.Get("emp")
	if err != nil {
		t.Fatalf("Get after reboot: %v", err)
	}
	got := e2.IntegrityState()
	if got.Size != want.Size || got.Root != want.Root {
		t.Fatalf("restart changed the tree: got (%d, %x), want (%d, %x)",
			got.Size, got.Root, want.Size, want.Root)
	}
	// A consistency proof across the restart still verifies against the
	// pre-restart anchor.
	cons2, _, signed3, err := e2.ConsistencyProof(anchorSize)
	if err != nil {
		t.Fatalf("ConsistencyProof after restart: %v", err)
	}
	if !integrity.VerifyConsistency(anchorSize, signed3.Size, anchorRoot, signed3.Root, cons2.Hashes) {
		t.Fatal("cross-restart consistency proof rejected")
	}
	_ = w.Close()
}

// TestIntegrityQuarantineScoping proves a quarantined relation refuses
// writes (typed ErrReadOnly), keeps serving reads, and leaves every
// other relation fully writable.
func TestIntegrityQuarantineScoping(t *testing.T) {
	root := t.TempDir()
	w, c := integOpen(t, root)
	defer w.Close()
	a, err := c.Create(eventSchema("a"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Create(eventSchema("b"))
	if err != nil {
		t.Fatal(err)
	}
	integInsert(t, a, 3, 100)

	a.Quarantine("test damage")
	if _, err := a.Insert(relation.Insertion{VT: element.EventAt(500)}); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("quarantined insert err = %v, want ErrReadOnly", err)
	}
	if got := len(a.Current().Elements); got != 3 {
		t.Fatalf("quarantined reads broke: %d elements, want 3", got)
	}
	if _, err := b.Insert(relation.Insertion{VT: element.EventAt(500)}); err != nil {
		t.Fatalf("unaffected relation refused a write: %v", err)
	}
	a.Unquarantine()
	if _, err := a.Insert(relation.Insertion{VT: element.EventAt(501)}); err != nil {
		t.Fatalf("unquarantined insert: %v", err)
	}
}

// TestIntegrityRepairRuns corrupts a frozen delta run in place and lets
// the scrub path repair it: detection quarantines the relation, the
// reseal rebuilds the run from the live elements, the quarantine lifts,
// and queries answer exactly as before the damage.
func TestIntegrityRepairRuns(t *testing.T) {
	root := t.TempDir()
	w, c := integOpen(t, root)
	defer w.Close()
	e, err := c.Create(eventSchema("emp"))
	if err != nil {
		t.Fatal(err)
	}
	integInsert(t, e, 700, 100)
	if e.Compact() == 0 {
		t.Fatal("nothing sealed; test needs frozen runs")
	}
	before := len(e.Current().Elements)

	corrupted := false
	_ = e.locked.Exclusive(func(*relation.Relation) error {
		corrupted = storage.CorruptRun(e.engine.Store(), 0, 9, 4)
		return nil
	})
	if !corrupted {
		t.Fatal("could not corrupt run 0")
	}

	rep, err := c.VerifyRelation("emp")
	if err != nil {
		t.Fatalf("VerifyRelation: %v", err)
	}
	if len(rep.Failures) == 0 {
		t.Fatal("corruption not detected")
	}
	if rep.Repaired == 0 {
		t.Fatalf("corruption not repaired: %+v", rep)
	}
	if cause := e.QuarantineCause(); cause != "" {
		t.Fatalf("quarantine not lifted after repair: %q", cause)
	}
	if got := len(e.Current().Elements); got != before {
		t.Fatalf("post-repair answers diverged: %d elements, want %d", got, before)
	}
	st := c.IntegrityStats()
	if st.Detected == 0 || st.Repaired == 0 {
		t.Fatalf("stats did not count the repair: %+v", st)
	}
	if evs := c.IntegrityEvents(); len(evs) < 3 { // detect, quarantine, repair
		t.Fatalf("journal too short: %+v", evs)
	}
}

// TestIntegrityRepairSnapshot flips one byte of a snapshot shard on
// disk: the scrub detects it (shard-level checksums), preserves the
// evidence, rewrites the shard from memory, and re-verifies it.
func TestIntegrityRepairSnapshot(t *testing.T) {
	root := t.TempDir()
	w, c := integOpen(t, root)
	defer w.Close()
	e, err := c.Create(eventSchema("emp"))
	if err != nil {
		t.Fatal(err)
	}
	integInsert(t, e, 8, 100)
	if _, err := c.Snapshot(); err != nil {
		t.Fatal(err)
	}

	shard := filepath.Join(root, "data", "emp"+fileSuffix)
	data, err := os.ReadFile(shard)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x10
	if err := os.WriteFile(shard, data, 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := c.VerifyRelation("emp")
	if err != nil {
		t.Fatalf("VerifyRelation: %v", err)
	}
	if len(rep.Failures) == 0 || rep.Repaired == 0 {
		t.Fatalf("shard damage not detected+repaired: %+v", rep)
	}
	if cause := e.QuarantineCause(); cause != "" {
		t.Fatalf("quarantine not lifted: %q", cause)
	}
	if err := c.verifySnapshotShard("emp"); err != nil {
		t.Fatalf("rewritten shard still damaged: %v", err)
	}
	if _, err := os.Stat(filepath.Join(root, "data", "quarantine", "emp"+fileSuffix)); err != nil {
		t.Fatalf("damaged shard not preserved as evidence: %v", err)
	}
	// The rewritten shard must boot.
	_ = w.Close()
	w2, c2 := integOpen(t, root)
	defer w2.Close()
	e2, err := c2.Get("emp")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(e2.Current().Elements); got != 8 {
		t.Fatalf("boot from repaired shard lost data: %d elements, want 8", got)
	}
}

// TestIntegrityRepairSegment flips one byte of a sealed WAL segment:
// detection quarantines every relation with history in the segment, the
// repair re-snapshots them from memory (the acked state) and truncates
// the damaged segment away, and the next boot is clean.
func TestIntegrityRepairSegment(t *testing.T) {
	root := t.TempDir()
	w, c := integOpen(t, root)
	e, err := c.Create(eventSchema("emp"))
	if err != nil {
		t.Fatal(err)
	}
	integInsert(t, e, 30, 100)
	segs := w.Segments()
	if len(segs) < 2 {
		t.Fatal("test needs a sealed segment")
	}
	victim := segs[0]
	if victim.Sealed != true {
		t.Fatal("oldest segment not sealed")
	}
	segPath := filepath.Join(root, "wal", victim.Name)
	data, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0x01
	if err := os.WriteFile(segPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	verr := c.VerifyArtifact(integrity.Artifact{Kind: "wal-segment", Name: victim.Name})
	if verr == nil {
		t.Fatal("segment damage not detected")
	}
	c.HandleCorrupt(integrity.Artifact{Kind: "wal-segment", Name: victim.Name}, verr)
	if isKnownSegment(w, victim.Name) {
		t.Fatal("damaged segment survived the repair")
	}
	if cause := e.QuarantineCause(); cause != "" {
		t.Fatalf("quarantine not lifted: %q", cause)
	}
	if w.Stats().VerifyFailures == 0 {
		t.Fatal("wal verify-failure counter did not move")
	}
	if _, err := e.Insert(relation.Insertion{VT: element.EventAt(900)}); err != nil {
		t.Fatalf("post-repair insert: %v", err)
	}
	_ = w.Close()

	w2, c2 := integOpen(t, root)
	defer w2.Close()
	e2, err := c2.Get("emp")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(e2.Current().Elements); got != 31 {
		t.Fatalf("boot after segment repair lost data: %d elements, want 31", got)
	}
}

// TestIntegrityScrubberEndToEnd runs the wired scrubber over a healthy
// catalog (no false positives), then over one with a corrupt frozen run
// (detected, repaired), then proves a second pass is clean again.
func TestIntegrityScrubberEndToEnd(t *testing.T) {
	root := t.TempDir()
	w, c := integOpen(t, root)
	defer w.Close()
	e, err := c.Create(eventSchema("emp"))
	if err != nil {
		t.Fatal(err)
	}
	integInsert(t, e, 700, 100)
	if e.Compact() == 0 {
		t.Fatal("nothing sealed")
	}
	if _, err := c.Snapshot(); err != nil {
		t.Fatal(err)
	}

	s := c.NewScrubber(0)
	checked, failed, err := s.RunOnce(context.Background())
	if err != nil || failed != 0 {
		t.Fatalf("clean pass: checked=%d failed=%d err=%v", checked, failed, err)
	}
	if checked == 0 {
		t.Fatal("scrubber found no artifacts")
	}

	_ = e.locked.Exclusive(func(*relation.Relation) error {
		storage.CorruptRun(e.engine.Store(), 0, 5, 1)
		return nil
	})
	_, failed, err = s.RunOnce(context.Background())
	if err != nil || failed != 1 {
		t.Fatalf("damage pass: failed=%d err=%v, want 1 failure", failed, err)
	}
	_, failed, err = s.RunOnce(context.Background())
	if err != nil || failed != 0 {
		t.Fatalf("post-repair pass: failed=%d err=%v", failed, err)
	}
}

// TestIntegrityScrubCursorResume kills a scrub mid-pass (context
// cancellation after the first artifact) and proves a fresh scrubber —
// the restart — resumes from the persisted cursor instead of starting
// over, then clears it after the completed pass.
func TestIntegrityScrubCursorResume(t *testing.T) {
	root := t.TempDir()
	w, c := integOpen(t, root)
	defer w.Close()
	for _, name := range []string{"a", "b", "c"} {
		e, err := c.Create(eventSchema(name))
		if err != nil {
			t.Fatal(err)
		}
		integInsert(t, e, 3, 100)
	}
	if _, err := c.Snapshot(); err != nil {
		t.Fatal(err)
	}
	arts, err := c.ScrubArtifacts()
	if err != nil || len(arts) < 3 {
		t.Fatalf("artifacts = %d err=%v, want >= 3", len(arts), err)
	}

	cursor := filepath.Join(root, "data", "scrub.cursor")
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	interrupted := integrity.NewScrubber(integrity.ScrubberConfig{
		List: c.ScrubArtifacts,
		Verify: func(a integrity.Artifact) error {
			if n++; n == 2 {
				cancel() // the kill lands mid-pass, after artifact 2 persists
			}
			return c.VerifyArtifact(a)
		},
		OnCorrupt:  c.HandleCorrupt,
		CursorPath: cursor,
	})
	if _, _, err := interrupted.RunOnce(ctx); err == nil {
		t.Fatal("interrupted pass reported success")
	}
	if _, err := os.Stat(cursor); err != nil {
		t.Fatalf("cursor not persisted across the kill: %v", err)
	}

	resumed := c.NewScrubber(0)
	checked, failed, err := resumed.RunOnce(context.Background())
	if err != nil || failed != 0 {
		t.Fatalf("resumed pass: checked=%d failed=%d err=%v", checked, failed, err)
	}
	if checked != len(arts)-2 {
		t.Fatalf("resumed pass checked %d artifacts, want %d (resume after cursor)", checked, len(arts)-2)
	}
	if _, err := os.Stat(cursor); !os.IsNotExist(err) {
		t.Fatalf("cursor not cleared after a full pass: %v", err)
	}
}
