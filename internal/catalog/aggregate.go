package catalog

import (
	"context"

	"repro/internal/element"
	"repro/internal/plan"
	"repro/internal/qcache"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/tsql"
	"repro/internal/vec"
)

// aggCacheEntry memoizes an executed window aggregate: the emitted result
// plus the plan that produced it, so cache hits replay the plan metrics
// exactly like the element-read cache does.
type aggCacheEntry struct {
	res     *tsql.Result
	node    *plan.Node
	touched int
}

// selectAggregate evaluates the GROUP BY WINDOW form of SELECT. The
// planner (or the statement's USING hint) chooses between the columnar
// batch engine and the row reference engine; both fold elements in
// arrival order, so the choice never changes the answer. Results are
// memoized under (relation, "agg:"+fingerprint, epoch) — an insert bumps
// the epoch, so cached windows can never serve stale aggregates.
func (e *Entry) selectAggregate(ctx context.Context, q *tsql.Query) (*tsql.Result, *plan.Node, int, error) {
	run := func(en *query.Engine, schema relation.Schema) (*tsql.Result, *plan.Node, int, error) {
		node := tsql.Compile(q, en.Access())
		spec, err := tsql.BuildAggSpec(q, schema)
		if err != nil {
			return nil, nil, 0, err
		}
		event := schema.ValidTime == element.EventStamp
		agg, stats, err := en.AggregateCtx(ctx, node, tsql.PlanQuery(q), spec, event)
		if err != nil {
			return nil, nil, 0, err
		}
		e.recordBatch(node.Leaf().Kind, stats)
		return tsql.AggToResult(q, agg), node, int(stats.Rows), nil
	}
	if e.lockedReads {
		var (
			res     *tsql.Result
			node    *plan.Node
			touched int
		)
		err := e.locked.View(func(r *relation.Relation) error {
			if err := ctx.Err(); err != nil {
				return err
			}
			var err error
			res, node, touched, err = run(e.engine, r.Schema())
			return err
		})
		if err != nil {
			return nil, nil, 0, err
		}
		e.plans.Record(node.Leaf().Kind, touched)
		return res, node, touched, nil
	}
	v := e.view.Load()
	key := qcache.Key{Rel: e.name, Fingerprint: "agg:" + q.Fingerprint(), Epoch: v.epoch}
	if hit, ok := e.cache.Get(key); ok {
		ce := hit.(aggCacheEntry)
		e.plans.Record(ce.node.Leaf().Kind, 0)
		return ce.res, ce.node, ce.touched, nil
	}
	res, node, touched, err := run(v.engine, v.schema)
	if err != nil {
		return nil, nil, 0, err
	}
	e.plans.Record(node.Leaf().Kind, touched)
	e.cache.Put(key, aggCacheEntry{res: res, node: node, touched: touched}, aggResultSize(res))
	return res, node, touched, nil
}

// aggResultSize approximates a cached aggregate's resident bytes, same
// contract as resultSize: scale with the footprint, precision optional.
func aggResultSize(res *tsql.Result) int64 {
	n := int64(96)
	for _, c := range res.Columns {
		n += int64(len(c)) + 16
	}
	for _, row := range res.Rows {
		n += 24 + 40*int64(len(row))
	}
	return n
}

// recordBatch accounts one aggregate execution on the entry's
// batch-operator counters.
func (e *Entry) recordBatch(leaf plan.NodeKind, st vec.ExecStats) {
	if leaf == plan.ColumnarScan {
		e.colPicks.Add(1)
		e.batches.Add(st.Batches)
		e.batchRows.Add(st.Rows)
	} else {
		e.rowPicks.Add(1)
	}
}

// BatchStats reports the entry's lifetime batch-operator counters:
// batches and rows consumed by the columnar engine, and how often the
// planner picked each engine for an executed aggregate.
type BatchStats struct {
	Batches       int64
	Rows          int64
	ColumnarPicks int64
	RowPicks      int64
}

// BatchStats snapshots the entry's batch-operator counters.
func (e *Entry) BatchStats() BatchStats {
	return BatchStats{
		Batches:       e.batches.Load(),
		Rows:          e.batchRows.Load(),
		ColumnarPicks: e.colPicks.Load(),
		RowPicks:      e.rowPicks.Load(),
	}
}
