package catalog

// Concurrency hammer for the sharded catalog: creates, lookups, writes,
// declarations, queries, and snapshots all interleaving. Run under
// `go test -race`; the assertions only pin the final counts, the value is
// in the interleavings themselves.

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/chronon"
	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/element"
	"repro/internal/relation"
)

func TestCatalogConcurrentLifecycle(t *testing.T) {
	dir := t.TempDir()
	c := New(testConfig(dir))
	const (
		relations = 8
		writers   = 4
		readers   = 4
		perG      = 60
	)
	relName := func(i int) string { return fmt.Sprintf("rel-%d", i%relations) }

	// Phase 0: concurrent creates, with collisions expected — exactly one
	// winner per name.
	var wg sync.WaitGroup
	var created sync.Map
	for g := 0; g < 2*relations; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if _, err := c.Create(eventSchema(relName(g))); err == nil {
				if _, dup := created.LoadOrStore(relName(g), true); dup {
					t.Errorf("relation %q created twice", relName(g))
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() != relations {
		t.Fatalf("Len = %d, want %d", c.Len(), relations)
	}

	// Phase 1: writers, readers, a declarer, and a snapshotter all at once.
	// Writers keep vt below every issued tt (clock starts at 10), so the
	// concurrently declared retroactive constraint accepts every insert.
	retro := mustDescribe(t, constraint.Event{Spec: core.RetroactiveSpec()}, constraint.PerRelation)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				e, err := c.Get(relName(w + i))
				if err != nil {
					t.Errorf("Get: %v", err)
					return
				}
				if _, err := e.Insert(relation.Insertion{VT: element.EventAt(chronon.Chronon(i % 5))}); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				e, err := c.Get(relName(r + i))
				if err != nil {
					t.Errorf("Get: %v", err)
					return
				}
				switch i % 4 {
				case 0:
					e.Current()
				case 1:
					e.Timeslice(chronon.Chronon(i % 5))
				case 2:
					e.Rollback(chronon.Chronon(i))
				case 3:
					e.Info()
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < relations; i++ {
			e, err := c.Get(relName(i))
			if err != nil {
				t.Errorf("Get: %v", err)
				return
			}
			// May reject if a concurrent insert races ahead of validation —
			// rejection is a correct outcome; only data races are bugs here.
			_ = e.Declare([]constraint.Descriptor{retro})
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if _, err := c.Snapshot(); err != nil {
				t.Errorf("Snapshot: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	// Every write landed exactly once.
	total := 0
	for _, name := range c.Names() {
		e, err := c.Get(name)
		if err != nil {
			t.Fatalf("Get(%q): %v", name, err)
		}
		total += e.Info().Versions
	}
	if want := writers * perG; total != want {
		t.Fatalf("total versions = %d, want %d", total, want)
	}

	// A final snapshot then reload sees the same state.
	if _, err := c.Snapshot(); err != nil {
		t.Fatalf("final Snapshot: %v", err)
	}
	c2 := New(testConfig(dir))
	if err := c2.Open(); err != nil {
		t.Fatalf("reload: %v", err)
	}
	total2 := 0
	for _, name := range c2.Names() {
		e, _ := c2.Get(name)
		total2 += e.Info().Versions
	}
	if total2 != total {
		t.Fatalf("reloaded versions = %d, want %d", total2, total)
	}
}
