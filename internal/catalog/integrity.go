package catalog

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/backlog"
	"repro/internal/integrity"
	"repro/internal/relation"
	"repro/internal/storage"
	"repro/internal/wal"
)

// This file is the catalog's integrity layer. Every committed WAL frame
// appends one leaf to its relation's Merkle tree (appendLeaf, called at
// each wal.Write site and during replay), group commits seal signed
// epoch roots (sealRoot), snapshots persist the tree alongside walLSN,
// and proofs are served from the same tree the write path maintains. The
// scrubber walks the on-disk artifacts — sealed WAL segments, snapshot
// shards, frozen delta runs — re-verifying each against its checksums;
// a detection quarantines the affected relations (read-only, reads keep
// serving) and kicks the matching repair.

// integrityEnabled reports whether the catalog maintains Merkle trees:
// on by default wherever committed frames exist (a WAL is attached or
// the catalog is a follower replaying shipped frames).
func (c *Catalog) integrityEnabled() bool {
	return !c.cfg.DisableIntegrity && (c.cfg.WAL != nil || c.cfg.Follower)
}

// IntegrityEnabled is integrityEnabled for the server's metrics.
func (c *Catalog) IntegrityEnabled() bool { return c.integrityEnabled() }

// appendLeaf hashes the frame exactly as the WAL framed it and appends
// the leaf to the relation's tree. Call it immediately after the
// walLSN.Store of a logged mutation, while still holding the lock that
// serialized the write, so leaf order is commit order.
func (e *Entry) appendLeaf(lsn uint64, kind wal.Kind, payload []byte) {
	if e.tree == nil {
		return
	}
	leaf := integrity.LeafHash(wal.FrameBody(lsn, kind, e.name, payload))
	e.igMu.Lock()
	e.tree.Append(leaf)
	e.igMu.Unlock()
}

// sealRoot signs the tree root covering everything committed so far.
// Called after a durable wait, so seals batch per group commit; the CAS
// keeps concurrent committers from queueing on the signature. Followers
// (no signer) never seal — they serve unsigned roots on demand.
func (e *Entry) sealRoot() {
	if e.tree == nil || e.signer == nil {
		return
	}
	if !e.sealing.CompareAndSwap(false, true) {
		return // a concurrent committer seals; the tail is signed on demand
	}
	defer e.sealing.Store(false)
	e.igMu.Lock()
	size, root := e.tree.Size(), e.tree.Root()
	e.igMu.Unlock()
	if cur := e.sealedRoot.Load(); cur != nil && cur.Size >= size {
		return
	}
	sr := e.signer.Sign(e.name, size, root)
	e.sealedRoot.Store(&sr)
}

// seedIntegrity restores the tree persisted with a snapshot shard. Boot
// replay then appends the leaves of records past the shard's walLSN —
// the same cut, so each leaf lands exactly once.
func (e *Entry) seedIntegrity(ig backlog.Integrity) {
	if e.tree == nil || !ig.Tracked {
		return
	}
	e.igMu.Lock()
	e.tree = integrity.NewTreeFromLeaves(ig.Leaves)
	e.igMu.Unlock()
	if ig.Root != nil {
		e.sealedRoot.Store(ig.Root)
	}
}

// integritySnapshot captures the tree for persistence. The caller holds
// the relation's shared lock, which excludes every leaf-appending path,
// so the leaves are consistent with the walLSN being saved.
func (e *Entry) integritySnapshot() backlog.Integrity {
	if e.tree == nil {
		return backlog.Integrity{}
	}
	e.igMu.Lock()
	leaves := e.tree.Leaves()
	e.igMu.Unlock()
	return backlog.Integrity{Tracked: true, Leaves: leaves, Root: e.sealedRoot.Load()}
}

// IntegrityState is a relation's integrity surface: the tree size and
// root with a signature covering exactly them, plus the quarantine
// cause when the relation is degraded.
type IntegrityState struct {
	Tracked     bool
	Size        uint64
	Root        integrity.Hash
	Signed      integrity.SignedRoot
	Quarantined string
}

// signedAt returns a SignedRoot over (size, root): signed by the
// relation's signer when it has one, unsigned (the follower posture)
// otherwise. Signing on demand covers the tail a group-commit seal has
// not reached yet.
func (e *Entry) signedAt(size uint64, root integrity.Hash) integrity.SignedRoot {
	if e.signer != nil {
		sr := e.signer.Sign(e.name, size, root)
		e.sealedRoot.Store(&sr)
		return sr
	}
	return integrity.SignedRoot{Rel: e.name, Size: size, Root: root}
}

// IntegrityState reports the relation's current integrity state.
func (e *Entry) IntegrityState() IntegrityState {
	out := IntegrityState{Quarantined: e.QuarantineCause()}
	if e.tree == nil {
		return out
	}
	e.igMu.Lock()
	size, root := e.tree.Size(), e.tree.Root()
	e.igMu.Unlock()
	out.Tracked, out.Size, out.Root = true, size, root
	out.Signed = e.signedAt(size, root)
	return out
}

// InclusionProof proves the i-th committed frame is under the current
// root: the leaf hash, the audit path, and a root signed over exactly
// the tree size the path verifies against.
func (e *Entry) InclusionProof(i uint64) (integrity.Hash, integrity.Proof, integrity.SignedRoot, error) {
	if e.tree == nil {
		return integrity.Hash{}, integrity.Proof{}, integrity.SignedRoot{},
			fmt.Errorf("catalog: integrity tracking is disabled for %q", e.name)
	}
	e.igMu.Lock()
	n := e.tree.Size()
	leaf, err := e.tree.Leaf(i)
	var hashes []integrity.Hash
	if err == nil {
		hashes, err = e.tree.InclusionProof(i, n)
	}
	root := e.tree.Root()
	e.igMu.Unlock()
	if err != nil {
		return integrity.Hash{}, integrity.Proof{}, integrity.SignedRoot{}, fmt.Errorf("catalog: %w", err)
	}
	p := integrity.Proof{Kind: integrity.ProofInclusion, Rel: e.name, A: i, N: n, Hashes: hashes}
	return leaf, p, e.signedAt(n, root), nil
}

// ConsistencyProof proves the current tree extends the size-m prefix a
// client anchored earlier: history was appended to, never rewritten.
// Returns the proof, the root at m (informational — verifiers use their
// own anchor), and a signed current root.
func (e *Entry) ConsistencyProof(m uint64) (integrity.Proof, integrity.Hash, integrity.SignedRoot, error) {
	if e.tree == nil {
		return integrity.Proof{}, integrity.Hash{}, integrity.SignedRoot{},
			fmt.Errorf("catalog: integrity tracking is disabled for %q", e.name)
	}
	e.igMu.Lock()
	n := e.tree.Size()
	oldRoot, err := e.tree.RootAt(m)
	var hashes []integrity.Hash
	if err == nil {
		hashes, err = e.tree.ConsistencyProof(m, n)
	}
	root := e.tree.Root()
	e.igMu.Unlock()
	if err != nil {
		return integrity.Proof{}, integrity.Hash{}, integrity.SignedRoot{}, fmt.Errorf("catalog: %w", err)
	}
	p := integrity.Proof{Kind: integrity.ProofConsistency, Rel: e.name, A: m, N: n, Hashes: hashes}
	return p, oldRoot, e.signedAt(n, root), nil
}

// Quarantine degrades the relation to read-only with the given cause;
// reads keep serving from memory. Unquarantine lifts it after a repair.
func (e *Entry) Quarantine(cause string) { e.quarCause.Store(&cause) }

// Unquarantine lifts the integrity quarantine.
func (e *Entry) Unquarantine() { e.quarCause.Store(nil) }

// QuarantineCause reports why the relation is quarantined ("" if not).
func (e *Entry) QuarantineCause() string {
	if p := e.quarCause.Load(); p != nil {
		return *p
	}
	return ""
}

// sealedBytes reports the store's frozen-run footprint (0 when the
// organization doesn't seal runs).
func (e *Entry) sealedBytes() int64 {
	var n int64
	_ = e.locked.View(func(*relation.Relation) error {
		n = storage.SealedBytes(e.engine.Store())
		return nil
	})
	return n
}

// verifyRuns checks every frozen run's checksum against its packed
// image under the shared lock.
func (e *Entry) verifyRuns() error {
	var bad []storage.RunVerifyError
	_ = e.locked.View(func(*relation.Relation) error {
		bad = storage.VerifyRuns(e.engine.Store())
		return nil
	})
	if len(bad) == 0 {
		return nil
	}
	return fmt.Errorf("catalog: relation %q: %d corrupt frozen runs (first: run %d %s)",
		e.name, len(bad), bad[0].Run, bad[0].Reason)
}

// IntegrityEvent is one journaled integrity action: a detection, a
// quarantine, or a repair (attempted or done).
type IntegrityEvent struct {
	Unix     int64  `json:"unix"`
	Kind     string `json:"kind"` // detect | quarantine | repair | repair-failed
	ArtKind  string `json:"artifact_kind"`
	Artifact string `json:"artifact"`
	Rel      string `json:"rel,omitempty"`
	Detail   string `json:"detail"`
}

// igRingMax bounds the in-memory event ring; the on-disk journal keeps
// everything.
const igRingMax = 64

// journalIntegrity records one event in the ring and, when the catalog
// persists, appends it as a JSON line to <dir>/integrity.log.
func (c *Catalog) journalIntegrity(ev IntegrityEvent) {
	ev.Unix = time.Now().Unix()
	c.igMu.Lock()
	defer c.igMu.Unlock()
	c.igRing = append(c.igRing, ev)
	if len(c.igRing) > igRingMax {
		c.igRing = c.igRing[len(c.igRing)-igRingMax:]
	}
	if c.cfg.Dir == "" {
		return
	}
	b, err := json.Marshal(ev)
	if err != nil {
		return
	}
	f, err := os.OpenFile(filepath.Join(c.cfg.Dir, "integrity.log"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return
	}
	_, _ = f.Write(append(b, '\n'))
	_ = f.Close()
}

// IntegrityEvents returns the recent event ring, oldest first.
func (c *Catalog) IntegrityEvents() []IntegrityEvent {
	c.igMu.Lock()
	defer c.igMu.Unlock()
	return append([]IntegrityEvent(nil), c.igRing...)
}

// IntegrityStats is the catalog-wide integrity summary for /metrics.
type IntegrityStats struct {
	Enabled     bool
	Relations   int    // relations with a tracked tree
	Leaves      uint64 // total committed frames under Merkle accounting
	Detected    uint64 // lifetime corruption detections
	Repaired    uint64 // lifetime successful repairs
	Quarantines uint64 // lifetime quarantine entries
	Quarantined []string
}

// IntegrityStats summarizes the catalog's integrity state.
func (c *Catalog) IntegrityStats() IntegrityStats {
	st := IntegrityStats{
		Enabled:     c.integrityEnabled(),
		Detected:    c.igDetected.Load(),
		Repaired:    c.igRepaired.Load(),
		Quarantines: c.igQuarantines.Load(),
	}
	for _, name := range c.Names() {
		e, err := c.Get(name)
		if err != nil {
			continue
		}
		if e.tree != nil {
			st.Relations++
			e.igMu.Lock()
			st.Leaves += e.tree.Size()
			e.igMu.Unlock()
		}
		if cause := e.QuarantineCause(); cause != "" {
			st.Quarantined = append(st.Quarantined, name)
		}
	}
	return st
}

// ScrubArtifacts lists every on-disk artifact the scrubber should walk,
// in a deterministic order so a persisted cursor resumes cleanly:
// sealed WAL segments, then per-relation snapshot shards and frozen
// runs in name order.
func (c *Catalog) ScrubArtifacts() ([]integrity.Artifact, error) {
	var out []integrity.Artifact
	if w := c.cfg.WAL; w != nil {
		for _, seg := range w.Segments() {
			if !seg.Sealed {
				continue
			}
			out = append(out, integrity.Artifact{
				Kind: "wal-segment", Name: seg.Name, Bytes: w.SegmentSize(seg.Name),
			})
		}
	}
	for _, name := range c.Names() {
		if c.cfg.Dir != "" {
			if fi, err := os.Stat(filepath.Join(c.cfg.Dir, name+fileSuffix)); err == nil {
				out = append(out, integrity.Artifact{
					Kind: "snapshot", Name: name + fileSuffix, Rel: name, Bytes: fi.Size(),
				})
			}
		}
		e, err := c.Get(name)
		if err != nil {
			continue
		}
		if n := e.sealedBytes(); n > 0 {
			out = append(out, integrity.Artifact{Kind: "runs", Name: name, Rel: name, Bytes: n})
		}
	}
	return out, nil
}

// VerifyArtifact re-verifies one artifact end to end, returning an
// error describing the damage (nil when clean or gone — artifacts can
// legitimately vanish between listing and verification).
func (c *Catalog) VerifyArtifact(a integrity.Artifact) error {
	switch a.Kind {
	case "wal-segment":
		if w := c.cfg.WAL; w != nil {
			err := w.ScrubSegment(a.Name)
			if err != nil && !isKnownSegment(c.cfg.WAL, a.Name) {
				return nil // truncated away since the listing
			}
			return err
		}
		return nil
	case "snapshot":
		return c.verifySnapshotShard(a.Rel)
	case "runs":
		e, err := c.Get(a.Rel)
		if err != nil {
			return nil // dropped since the listing
		}
		return e.verifyRuns()
	}
	return fmt.Errorf("catalog: unknown artifact kind %q", a.Kind)
}

func isKnownSegment(w *wal.Log, name string) bool {
	for _, s := range w.Segments() {
		if s.Name == name {
			return true
		}
	}
	return false
}

// verifySnapshotShard fully decodes the shard (every block is length-
// framed and CRC-checked) and cross-checks the persisted signed root
// against a tree rebuilt from the persisted leaves.
func (c *Catalog) verifySnapshotShard(name string) error {
	if c.cfg.Dir == "" {
		return nil
	}
	f, err := os.Open(filepath.Join(c.cfg.Dir, name+fileSuffix))
	if err != nil {
		if os.IsNotExist(err) {
			return nil // dropped or not yet snapshotted
		}
		return fmt.Errorf("catalog: snapshot %s: %w", name, err)
	}
	defer f.Close()
	_, _, _, _, _, ig, err := backlog.ReadWithIntegrity(f)
	if err != nil {
		return fmt.Errorf("catalog: snapshot %s: %w", name, err)
	}
	if ig.Tracked && ig.Root != nil && ig.Root.Size <= uint64(len(ig.Leaves)) {
		tr := integrity.NewTreeFromLeaves(ig.Leaves)
		r, err := tr.RootAt(ig.Root.Size)
		if err == nil && r != ig.Root.Root {
			return fmt.Errorf("catalog: snapshot %s: leaves disagree with the sealed root at size %d", name, ig.Root.Size)
		}
	}
	return nil
}

// HandleCorrupt is the scrubber's detection callback: journal the
// finding, quarantine what the artifact covers, and run the matching
// repair — frozen runs reseal from the elements, snapshot shards
// rewrite from memory, WAL segments are re-snapshotted over and
// truncated away. Successful repairs lift the quarantine.
func (c *Catalog) HandleCorrupt(a integrity.Artifact, verr error) {
	c.igDetected.Add(1)
	c.journalIntegrity(IntegrityEvent{
		Kind: "detect", ArtKind: a.Kind, Artifact: a.Name, Rel: a.Rel, Detail: verr.Error(),
	})
	switch a.Kind {
	case "runs":
		c.repairRuns(a)
	case "snapshot":
		c.repairSnapshot(a)
	case "wal-segment":
		c.repairSegment(a)
	}
}

// preserveEvidence copies a damaged artifact into <dir>/quarantine/
// before a repair overwrites or truncates it.
func (c *Catalog) preserveEvidence(name string, read func() ([]byte, error)) {
	if c.cfg.Dir == "" {
		return
	}
	data, err := read()
	if err != nil {
		return
	}
	qdir := filepath.Join(c.cfg.Dir, "quarantine")
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return
	}
	_ = os.WriteFile(filepath.Join(qdir, filepath.Base(name)), data, 0o644)
}

// repairRuns rebuilds a relation's corrupt frozen runs from the live
// elements — runs are derived state, the elements are ground truth.
func (c *Catalog) repairRuns(a integrity.Artifact) {
	e, err := c.Get(a.Rel)
	if err != nil {
		return
	}
	e.Quarantine(fmt.Sprintf("frozen runs of %q failed verification", a.Rel))
	c.igQuarantines.Add(1)
	c.journalIntegrity(IntegrityEvent{
		Kind: "quarantine", ArtKind: a.Kind, Artifact: a.Name, Rel: a.Rel,
		Detail: "relation degraded to read-only",
	})
	repaired, resealed := false, 0
	_ = e.locked.Exclusive(func(*relation.Relation) error {
		st := e.engine.Store()
		bad := storage.VerifyRuns(st)
		if len(bad) == 0 {
			repaired = true // damage was in a run a concurrent compaction replaced
			return nil
		}
		idx := make([]int, len(bad))
		for i, b := range bad {
			idx[i] = b.Run
		}
		resealed = storage.ResealRuns(st, idx)
		repaired = len(storage.VerifyRuns(st)) == 0
		if repaired {
			e.publish()
		}
		return nil
	})
	if repaired {
		e.Unquarantine()
		c.igRepaired.Add(1)
		c.journalIntegrity(IntegrityEvent{
			Kind: "repair", ArtKind: a.Kind, Artifact: a.Name, Rel: a.Rel,
			Detail: fmt.Sprintf("resealed %d runs from the live elements", resealed),
		})
		return
	}
	c.journalIntegrity(IntegrityEvent{
		Kind: "repair-failed", ArtKind: a.Kind, Artifact: a.Name, Rel: a.Rel,
		Detail: "damage survived reseal; relation stays quarantined",
	})
}

// repairSnapshot rewrites a corrupt snapshot shard from the in-memory
// relation — memory is the acked history, the shard is a copy.
func (c *Catalog) repairSnapshot(a integrity.Artifact) {
	e, err := c.Get(a.Rel)
	if err != nil {
		return
	}
	e.Quarantine(fmt.Sprintf("snapshot shard of %q failed verification", a.Rel))
	c.igQuarantines.Add(1)
	c.journalIntegrity(IntegrityEvent{
		Kind: "quarantine", ArtKind: a.Kind, Artifact: a.Name, Rel: a.Rel,
		Detail: "relation degraded to read-only",
	})
	path := filepath.Join(c.cfg.Dir, a.Rel+fileSuffix)
	c.preserveEvidence(a.Name, func() ([]byte, error) { return os.ReadFile(path) })
	e.dirty.Store(true)
	if _, err := e.snapshotTo(path); err == nil {
		err = c.verifySnapshotShard(a.Rel)
	}
	if err != nil {
		c.journalIntegrity(IntegrityEvent{
			Kind: "repair-failed", ArtKind: a.Kind, Artifact: a.Name, Rel: a.Rel, Detail: err.Error(),
		})
		return
	}
	e.Unquarantine()
	c.igRepaired.Add(1)
	c.journalIntegrity(IntegrityEvent{
		Kind: "repair", ArtKind: a.Kind, Artifact: a.Name, Rel: a.Rel,
		Detail: "shard rewritten from memory and re-verified",
	})
}

// repairSegment handles a corrupt sealed WAL segment: quarantine every
// relation with history in it, preserve the damaged bytes as evidence,
// then force fresh snapshots of those relations so the sweep's
// truncation drops the segment — memory holds the acked history; the
// on-disk copy is what rotted.
func (c *Catalog) repairSegment(a integrity.Artifact) {
	w := c.cfg.WAL
	if w == nil {
		return
	}
	rels := w.SegmentRelations(a.Name)
	var ents []*Entry
	for _, rel := range rels {
		e, err := c.Get(rel)
		if err != nil {
			continue
		}
		e.Quarantine(fmt.Sprintf("wal segment %s failed verification", a.Name))
		c.igQuarantines.Add(1)
		ents = append(ents, e)
	}
	c.journalIntegrity(IntegrityEvent{
		Kind: "quarantine", ArtKind: a.Kind, Artifact: a.Name,
		Detail: fmt.Sprintf("%d relations degraded to read-only", len(ents)),
	})
	c.preserveEvidence(a.Name, func() ([]byte, error) { return w.SegmentData(a.Name) })
	for _, e := range ents {
		e.dirty.Store(true)
	}
	if _, err := c.Snapshot(); err != nil {
		c.journalIntegrity(IntegrityEvent{
			Kind: "repair-failed", ArtKind: a.Kind, Artifact: a.Name, Detail: err.Error(),
		})
		return
	}
	if isKnownSegment(w, a.Name) {
		c.journalIntegrity(IntegrityEvent{
			Kind: "repair-failed", ArtKind: a.Kind, Artifact: a.Name,
			Detail: "segment still referenced after snapshot; relations stay quarantined",
		})
		return
	}
	for _, e := range ents {
		e.Unquarantine()
	}
	c.igRepaired.Add(1)
	c.journalIntegrity(IntegrityEvent{
		Kind: "repair", ArtKind: a.Kind, Artifact: a.Name,
		Detail: fmt.Sprintf("%d relations resnapshotted; damaged segment truncated", len(ents)),
	})
}

// NewScrubber builds the background scrubber over the catalog's
// artifacts, persisting its cursor in the data directory so a restart
// resumes mid-pass instead of starting over.
func (c *Catalog) NewScrubber(bytesPerSec int64) *integrity.Scrubber {
	cursor := ""
	if c.cfg.Dir != "" {
		cursor = filepath.Join(c.cfg.Dir, "scrub.cursor")
	}
	return integrity.NewScrubber(integrity.ScrubberConfig{
		List:        c.ScrubArtifacts,
		Verify:      c.VerifyArtifact,
		OnCorrupt:   c.HandleCorrupt,
		BytesPerSec: bytesPerSec,
		CursorPath:  cursor,
	})
}

// VerifyReport summarizes one on-demand relation verification.
type VerifyReport struct {
	Rel       string
	Artifacts int      // artifacts covering the relation that were checked
	Failures  []string // damage found, in detection order
	Repaired  int      // failures whose artifact re-verified clean after repair
}

// VerifyRelation synchronously verifies every artifact covering the
// named relation — its snapshot shard, its frozen runs, and each sealed
// WAL segment carrying its history — repairing what it can, exactly as
// the background scrubber would.
func (c *Catalog) VerifyRelation(name string) (VerifyReport, error) {
	if _, err := c.Get(name); err != nil {
		return VerifyReport{}, err
	}
	report := VerifyReport{Rel: name}
	arts, err := c.ScrubArtifacts()
	if err != nil {
		return report, err
	}
	for _, a := range arts {
		covers := a.Rel == name
		if a.Kind == "wal-segment" {
			for _, rel := range c.cfg.WAL.SegmentRelations(a.Name) {
				if rel == name {
					covers = true
					break
				}
			}
		}
		if !covers {
			continue
		}
		report.Artifacts++
		if verr := c.VerifyArtifact(a); verr != nil {
			report.Failures = append(report.Failures, verr.Error())
			c.HandleCorrupt(a, verr)
			if c.VerifyArtifact(a) == nil {
				report.Repaired++
			}
		}
	}
	return report, nil
}
