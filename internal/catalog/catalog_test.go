package catalog

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/chronon"
	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/element"
	"repro/internal/relation"
	"repro/internal/tx"
)

func testConfig(dir string) Config {
	return Config{
		Dir:      dir,
		NewClock: func() tx.Clock { return tx.NewLogicalClock(0, 10) },
	}
}

func eventSchema(name string) relation.Schema {
	return relation.Schema{
		Name:        name,
		ValidTime:   element.EventStamp,
		Granularity: chronon.Second,
	}
}

func mustDescribe(t *testing.T, c constraint.Constraint, scope constraint.Scope) constraint.Descriptor {
	t.Helper()
	d, ok := constraint.Describe(c, scope)
	if !ok {
		t.Fatalf("constraint %v not describable", c)
	}
	return d
}

func TestCatalogCreateGetNames(t *testing.T) {
	c := New(testConfig(t.TempDir()))
	if _, err := c.Create(eventSchema("emp")); err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := c.Create(eventSchema("emp")); err == nil {
		t.Fatal("duplicate Create succeeded")
	}
	for _, bad := range []string{"", "0emp", "a/b", "..", "emp.tsbl"} {
		if _, err := c.Create(eventSchema(bad)); err == nil {
			t.Errorf("Create(%q) succeeded, want bad-name error", bad)
		}
	}
	if _, err := c.Get("nobody"); err == nil {
		t.Fatal("Get(nobody) succeeded")
	}
	if _, err := c.Create(eventSchema("dept")); err != nil {
		t.Fatalf("Create dept: %v", err)
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "dept" || names[1] != "emp" {
		t.Fatalf("Names = %v", names)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestCatalogDeclareValidatesHistory(t *testing.T) {
	c := New(testConfig(t.TempDir()))
	e, err := c.Create(eventSchema("log"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	// tt=10 vt=50: a predictive (future-dated) event.
	if _, err := e.Insert(relation.Insertion{VT: element.EventAt(50)}); err != nil {
		t.Fatalf("insert: %v", err)
	}
	retro := mustDescribe(t, constraint.Event{Spec: core.RetroactiveSpec()}, constraint.PerRelation)
	if err := e.Declare([]constraint.Descriptor{retro}); err == nil {
		t.Fatal("Declare(retroactive) over a predictive history succeeded")
	}
	if len(e.Info().Declarations) != 0 {
		t.Fatal("rejected declaration left a catalog entry")
	}
	// A declaration the history satisfies is accepted and then enforced.
	pred := mustDescribe(t, constraint.Event{Spec: core.PredictiveSpec()}, constraint.PerRelation)
	if err := e.Declare([]constraint.Descriptor{pred}); err != nil {
		t.Fatalf("Declare(predictive): %v", err)
	}
	if _, err := e.Insert(relation.Insertion{VT: element.EventAt(3)}); err == nil {
		t.Fatal("retroactive insert accepted despite predictive declaration")
	}
}

func TestCatalogSnapshotAndReload(t *testing.T) {
	dir := t.TempDir()
	c := New(testConfig(dir))
	e, err := c.Create(eventSchema("emp"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	retro := mustDescribe(t, constraint.Event{Spec: core.RetroactiveSpec()}, constraint.PerRelation)
	if err := e.Declare([]constraint.Descriptor{retro}); err != nil {
		t.Fatalf("Declare: %v", err)
	}
	if _, err := e.Insert(relation.Insertion{VT: element.EventAt(5)}); err != nil {
		t.Fatalf("insert: %v", err)
	}
	n, err := c.Snapshot()
	if err != nil || n != 1 {
		t.Fatalf("Snapshot = %d, %v; want 1", n, err)
	}
	// A second snapshot with no changes writes nothing.
	if n, err := c.Snapshot(); err != nil || n != 0 {
		t.Fatalf("idle Snapshot = %d, %v; want 0", n, err)
	}

	c2 := New(testConfig(dir))
	if err := c2.Open(); err != nil {
		t.Fatalf("Open: %v", err)
	}
	e2, err := c2.Get("emp")
	if err != nil {
		t.Fatalf("Get after reload: %v", err)
	}
	info := e2.Info()
	if info.Versions != 1 || len(info.Declarations) != 1 {
		t.Fatalf("reloaded info = %+v", info)
	}
	// The persisted declaration is enforced again.
	if _, err := e2.Insert(relation.Insertion{VT: element.EventAt(10_000)}); err == nil {
		t.Fatal("future-dated insert accepted after reload of retroactive relation")
	}
}

func TestCatalogOpenRejectsMismatchedName(t *testing.T) {
	dir := t.TempDir()
	c := New(testConfig(dir))
	e, err := c.Create(eventSchema("emp"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := e.Insert(relation.Insertion{VT: element.EventAt(5)}); err != nil {
		t.Fatalf("insert: %v", err)
	}
	if _, err := c.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if err := os.Rename(filepath.Join(dir, "emp.tsbl"), filepath.Join(dir, "imp.tsbl")); err != nil {
		t.Fatalf("rename: %v", err)
	}
	c2 := New(testConfig(dir))
	if err := c2.Open(); err == nil {
		t.Fatal("Open accepted a backlog under the wrong file name")
	}
}

func TestCatalogQueryAccounting(t *testing.T) {
	c := New(testConfig(""))
	e, err := c.Create(eventSchema("m"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for i := 0; i < 5; i++ {
		if _, err := e.Insert(relation.Insertion{VT: element.EventAt(chronon.Chronon(i))}); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	res := e.Timeslice(2)
	if len(res.Elements) != 1 || res.Plan == "" || res.Touched == 0 {
		t.Fatalf("Timeslice = %+v", res)
	}
	res = e.TimesliceAsOf(2, 30)
	if len(res.Elements) != 1 || res.Touched != 5 {
		t.Fatalf("TimesliceAsOf = %d elements, touched %d", len(res.Elements), res.Touched)
	}
	if res := e.Current(); len(res.Elements) != 5 {
		t.Fatalf("Current = %d elements", len(res.Elements))
	}
	if res := e.Rollback(25); len(res.Elements) != 2 {
		t.Fatalf("Rollback(25) = %d elements", len(res.Elements))
	}
}

func TestCatalogAdvisorUsesPerRelationScopeOnly(t *testing.T) {
	c := New(testConfig(""))
	e, err := c.Create(eventSchema("s"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	// A per-partition sequentiality says nothing about the global
	// interleaving, so the advice must stay with the general organization.
	seqPart := mustDescribe(t, constraint.InterEvent{Spec: core.SequentialEventsSpec()}, constraint.PerPartition)
	if err := e.Declare([]constraint.Descriptor{seqPart}); err != nil {
		t.Fatalf("Declare per-partition: %v", err)
	}
	perPartAdvice := e.Info().Advice
	// The same class per-relation licenses a specialized organization.
	seqRel := mustDescribe(t, constraint.InterEvent{Spec: core.SequentialEventsSpec()}, constraint.PerRelation)
	if err := e.Declare([]constraint.Descriptor{seqRel}); err != nil {
		t.Fatalf("Declare per-relation: %v", err)
	}
	perRelAdvice := e.Info().Advice
	if perPartAdvice.Store == perRelAdvice.Store {
		t.Fatalf("advice ignored scope: per-partition %v, per-relation %v",
			perPartAdvice.Store, perRelAdvice.Store)
	}
}

func ExampleCatalog() {
	c := New(Config{NewClock: func() tx.Clock { return tx.NewLogicalClock(0, 10) }})
	e, _ := c.Create(relation.Schema{
		Name: "temps", ValidTime: element.EventStamp, Granularity: chronon.Second,
	})
	e.Insert(relation.Insertion{VT: element.EventAt(5)})
	res := e.Timeslice(5)
	fmt.Println(len(res.Elements))
	// Output: 1
}
