package catalog

// Follower-side apply path for WAL-shipping replication.
//
// A follower catalog is a read-only replica: its Config.Follower flag
// routes every client mutation into the same typed ErrReadOnly gate a
// poisoned WAL trips, and the only writer is ApplyReplicated, which
// replays batches of WAL records shipped from the primary through the
// exact code path boot-time recovery uses. That reuse is the correctness
// argument: replay is idempotent (records at or below a relation's
// persisted watermark are skipped per-relation), keyed frames rebuild the
// idempotency dedup window, and the per-batch engine rebuild publishes a
// fresh epoch — so a timeslice at epoch E on the follower is the same
// relation state the primary published at its epoch E' covering the same
// log prefix (transaction time is append-only; see DESIGN §9).

import (
	"fmt"

	"repro/internal/relation"
	"repro/internal/wal"
)

// errFollowerReadOnly types a mutation refused by a follower replica.
// Wraps ErrReadOnly so clients and the server's error mapper need one
// branch for "this process cannot accept writes".
func errFollowerReadOnly() error {
	return fmt.Errorf("%w: follower replica; route mutations to the primary", ErrReadOnly)
}

// Follower reports whether the catalog is a read-only replica.
func (c *Catalog) Follower() bool { return c.cfg.Follower }

// ApplyReplicated replays a batch of WAL records shipped from the
// primary, in LSN order, through the recovery apply path. Records a
// relation has already applied (LSN at or below its watermark) are
// skipped, which makes re-shipment after a reconnect or restart safe.
// Engines are rebuilt and fresh epochs published once per touched
// relation per batch, not per record, so catch-up cost is O(versions)
// per relation, not O(versions x records).
func (c *Catalog) ApplyReplicated(recs []wal.Record) error {
	if !c.cfg.Follower {
		return fmt.Errorf("catalog: ApplyReplicated on a non-follower catalog")
	}
	touched := make(map[*Entry]bool)
	for _, rec := range recs {
		e, err := c.applyWALRecord(rec)
		if err != nil {
			return fmt.Errorf("catalog: replicated apply, lsn %d: %w", rec.LSN, err)
		}
		if e != nil {
			touched[e] = true
		}
	}
	for e := range touched {
		_ = e.locked.Exclusive(func(r *relation.Relation) error {
			_ = e.rebuildEngine(r)
			e.publish()
			return nil
		})
		e.dirty.Store(true)
	}
	return nil
}

// ResumeLSN is the LSN the follower should resume tailing from after a
// restart: the minimum persisted watermark across relations. Relations
// ahead of it skip the re-shipped records (replay is idempotent), and
// no relation can miss one. Zero when the catalog is empty — tail from
// the beginning — or when boot dropped a corrupt shard, whose relation
// now exists only in the primary's feed.
func (c *Catalog) ResumeLSN() uint64 {
	if c.igRefetch.Load() {
		return 0
	}
	var min uint64
	first := true
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		for _, e := range sh.entries {
			if lsn := e.walLSN.Load(); first || lsn < min {
				min, first = lsn, false
			}
		}
		sh.mu.RUnlock()
	}
	return min
}

// MaxAppliedLSN is the highest WAL position any relation has applied —
// the follower's replication-lag gauge against the primary's durable
// watermark.
func (c *Catalog) MaxAppliedLSN() uint64 {
	var max uint64
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		for _, e := range sh.entries {
			if lsn := e.walLSN.Load(); lsn > max {
				max = lsn
			}
		}
		sh.mu.RUnlock()
	}
	return max
}

// AppliedLSN reports the relation's WAL watermark: the highest log
// position whose effects this entry has applied.
func (e *Entry) AppliedLSN() uint64 { return e.walLSN.Load() }

// HasIdemKey reports whether the relation's idempotency dedup window
// remembers key — exposed so tests can assert the window survives
// replication and restarts.
func (e *Entry) HasIdemKey(key string) bool {
	found := false
	_ = e.locked.View(func(r *relation.Relation) error {
		_, found = e.dedup.lookup(key)
		return nil
	})
	return found
}
