package catalog

// Idempotency dedup window. Transaction time is system-assigned and
// append-only, so a blind retry of an acknowledged mutation would mint a
// second event and silently break declared specializations (globally
// sequential ordering, for one). Mutations therefore may carry an
// idempotency key; the key is framed into the mutation's WAL record, and
// each relation remembers a bounded window of recently applied keys with
// the element the original transaction produced. A retry bearing a known
// key returns that element without logging or applying anything — the
// original acknowledgment already covered durability.
//
// The window is rebuilt from the WAL on boot (keyed records repopulate it
// during replay), so retries survive a crash between the original ack and
// the retry. Its lifetime is bounded twice over: FIFO-capped at
// dedupWindowCap keys per relation, and implicitly by WAL truncation — a
// snapshot that truncates the log also ends the window's crash
// recoverability for the truncated prefix. Clients whose retry horizon is
// seconds sit comfortably inside both bounds.

import (
	"encoding/binary"
	"fmt"

	"repro/internal/element"
)

// dedupWindowCap bounds remembered keys per relation.
const dedupWindowCap = 4096

// dedupOp tags which operation a key was first used for; a key reused
// across operation kinds is a client bug and is rejected.
type dedupOp uint8

const (
	dedupInsert dedupOp = iota
	dedupDelete
	dedupModify
)

func (o dedupOp) String() string {
	switch o {
	case dedupInsert:
		return "insert"
	case dedupDelete:
		return "delete"
	case dedupModify:
		return "modify"
	}
	return "unknown"
}

// dedupHit is what the window remembers per key: the operation kind and
// the element the original transaction returned (nil for deletes).
type dedupHit struct {
	op   dedupOp
	elem *element.Element
}

// dedupWindow is a FIFO-bounded key → original-result map. It is
// accessed only under the owning relation's exclusive lock (mutations
// and WAL replay both hold it), so it needs no lock of its own.
type dedupWindow struct {
	m     map[string]dedupHit
	order []string // FIFO eviction order
}

func newDedupWindow() *dedupWindow {
	return &dedupWindow{m: make(map[string]dedupHit)}
}

func (w *dedupWindow) lookup(key string) (dedupHit, bool) {
	h, ok := w.m[key]
	return h, ok
}

func (w *dedupWindow) remember(key string, op dedupOp, el *element.Element) {
	if _, dup := w.m[key]; !dup {
		w.order = append(w.order, key)
		if len(w.order) > dedupWindowCap {
			delete(w.m, w.order[0])
			w.order = w.order[1:]
		}
	}
	w.m[key] = dedupHit{op: op, elem: el}
}

// maxIdemKeyLen bounds a key at the protocol level; longer keys are
// rejected before they reach the WAL frame.
const maxIdemKeyLen = 255

// encodeKeyed frames an idempotency key ahead of a mutation's WAL
// payload: u16 key length, key bytes, then the original payload
// unchanged. Replay strips the frame and delegates to the unkeyed
// decoder, so keyed and legacy records share one apply path.
func encodeKeyed(key string, payload []byte) []byte {
	out := make([]byte, 0, 2+len(key)+len(payload))
	out = binary.LittleEndian.AppendUint16(out, uint16(len(key)))
	out = append(out, key...)
	return append(out, payload...)
}

// decodeKeyed splits a keyed WAL payload back into key and inner payload.
func decodeKeyed(b []byte) (key string, payload []byte, err error) {
	if len(b) < 2 {
		return "", nil, fmt.Errorf("catalog: short keyed payload")
	}
	n := int(binary.LittleEndian.Uint16(b))
	b = b[2:]
	if n > maxIdemKeyLen {
		return "", nil, fmt.Errorf("catalog: keyed payload key length %d exceeds %d", n, maxIdemKeyLen)
	}
	if n > len(b) {
		return "", nil, fmt.Errorf("catalog: keyed payload truncated key")
	}
	return string(b[:n]), b[n:], nil
}
