package catalog

// Microbenchmarks for the ingest path: single acked inserts against
// batched frames at 32 and 256 elements, all on a group-commit WAL.
// `make bench-smoke` runs these as a regression tripwire; the sustained
// throughput claim lives in cmd/benchrunner -exp S9. The reported
// elems/s metric is what S9's table normalizes to.

import (
	"context"
	"path/filepath"
	"testing"

	"repro/internal/chronon"
	"repro/internal/element"
	"repro/internal/relation"
	"repro/internal/tx"
	"repro/internal/wal"
)

func benchWALEntry(b *testing.B) *Entry {
	b.Helper()
	dir := b.TempDir()
	w, err := wal.Open(wal.Options{Dir: filepath.Join(dir, "wal"), Sync: wal.SyncGroup})
	if err != nil {
		b.Fatalf("wal.Open: %v", err)
	}
	b.Cleanup(func() { w.Close() })
	c := New(Config{
		Dir:      filepath.Join(dir, "data"),
		NewClock: func() tx.Clock { return tx.NewLogicalClock(0, 10) },
		WAL:      w,
	})
	if err := c.Open(); err != nil {
		b.Fatalf("catalog.Open: %v", err)
	}
	e, err := c.Create(relation.Schema{
		Name: "bench", ValidTime: element.EventStamp, Granularity: 1,
	})
	if err != nil {
		b.Fatalf("Create: %v", err)
	}
	return e
}

func benchInsertBatch(b *testing.B, batch int) {
	e := benchWALEntry(b)
	ctx := context.Background()
	ins := make([]relation.Insertion, batch)
	vt := int64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range ins {
			vt++
			ins[j] = relation.Insertion{VT: element.EventAt(chronon.Chronon(vt))}
		}
		res, err := e.InsertBatch(ctx, ins, nil, false)
		if err != nil {
			b.Fatalf("InsertBatch: %v", err)
		}
		if res.Stored != batch {
			b.Fatalf("stored %d, want %d", res.Stored, batch)
		}
	}
	b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "elems/s")
}

// BenchmarkInsertBatchSingle is the baseline the batches amortize: one
// acked WAL frame, one epoch publish, one Merkle leaf per element.
func BenchmarkInsertBatchSingle(b *testing.B) {
	e := benchWALEntry(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Insert(relation.Insertion{VT: element.EventAt(chronon.Chronon(i))}); err != nil {
			b.Fatalf("Insert: %v", err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "elems/s")
}

func BenchmarkInsertBatch32(b *testing.B)  { benchInsertBatch(b, 32) }
func BenchmarkInsertBatch256(b *testing.B) { benchInsertBatch(b, 256) }
