package catalog

// Fuzzing for the keyed WAL frame codec: decodeKeyed must never panic on
// arbitrary bytes, and whatever it accepts must re-encode to the exact
// input (the frame is replayed verbatim on recovery, so the codec has to
// be a bijection on its valid domain).

import (
	"bytes"
	"testing"
)

func FuzzDecodeKeyed(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0})
	f.Add(encodeKeyed("", nil))
	f.Add(encodeKeyed("k", []byte("payload")))
	f.Add(encodeKeyed("0123456789abcdef0123456789abcdef", []byte{0xff, 0x00}))
	f.Add([]byte{0xff, 0xff, 'x'}) // declared key length far past the buffer

	f.Fuzz(func(t *testing.T, b []byte) {
		key, payload, err := decodeKeyed(b)
		if err != nil {
			return
		}
		if len(key) > maxIdemKeyLen {
			t.Fatalf("decodeKeyed accepted %d-byte key (max %d)", len(key), maxIdemKeyLen)
		}
		if got := encodeKeyed(key, payload); !bytes.Equal(got, b) {
			t.Fatalf("re-encode mismatch:\n in  %x\n out %x", b, got)
		}
	})
}

func TestKeyedFrameRoundTrip(t *testing.T) {
	cases := []struct {
		key     string
		payload []byte
	}{
		{"", nil},
		{"k", nil},
		{"retry-abc123", []byte("body")},
		{string(bytes.Repeat([]byte{'x'}, maxIdemKeyLen)), []byte{0, 1, 2}},
	}
	for _, c := range cases {
		key, payload, err := decodeKeyed(encodeKeyed(c.key, c.payload))
		if err != nil {
			t.Fatalf("round trip %q: %v", c.key, err)
		}
		if key != c.key || !bytes.Equal(payload, c.payload) {
			t.Fatalf("round trip %q: got (%q, %x)", c.key, key, payload)
		}
	}
	if _, _, err := decodeKeyed([]byte{5}); err == nil {
		t.Fatal("short frame accepted")
	}
	if _, _, err := decodeKeyed([]byte{0xff, 0xff}); err == nil {
		t.Fatal("truncated key accepted")
	}
}
