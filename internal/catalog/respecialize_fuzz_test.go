package catalog

// Replay-equivalence fuzzing for the specialization loop: an arbitrary
// interleaving of inserts (order-friendly and order-breaking),
// respecializes, compactions, and deletes must leave a catalog that a
// crash-restart (WAL replay, no snapshot) reproduces exactly — same
// organization, same migration count, same extension. The codec fuzz
// below pins decodeRespecialize as a bijection on its valid domain, the
// same property the keyed-frame codec guarantees.

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/chronon"
	"repro/internal/core"
	"repro/internal/element"
	"repro/internal/relation"
	"repro/internal/storage"
	"repro/internal/tx"
	"repro/internal/wal"
)

func FuzzRespecializeReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 3})                      // degenerate run, then respecialize
	f.Add([]byte{0, 0, 3, 1, 3})                      // respecialize, violate, re-respecialize
	f.Add([]byte{0, 0, 0, 3, 4, 2, 0, 3})             // seal runs, delete, migrate again
	f.Add(bytes.Repeat([]byte{0, 0, 0, 0, 0, 3}, 12)) // repeated migrate attempts

	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 64 {
			ops = ops[:64] // bound per-iteration work
		}
		walDir := t.TempDir()
		wlog, err := wal.Open(wal.Options{Dir: walDir, Sync: wal.SyncGroup})
		if err != nil {
			t.Fatalf("wal.Open: %v", err)
		}
		c := New(Config{
			NewClock: func() tx.Clock { return tx.NewLogicalClock(0, 10) },
			WAL:      wlog,
		})
		e, err := c.Create(eventSchema("fz"))
		if err != nil {
			t.Fatalf("Create: %v", err)
		}

		var last *element.Element
		ticks := 0 // clock.Next calls so far: each insert and delete stamps one tt
		step := 0
		for _, op := range ops {
			step++
			switch op % 5 {
			case 0: // degenerate insert: vt equals the tt the clock will issue
				vt := chronon.Chronon(10 * (ticks + 1))
				el, err := e.Insert(relation.Insertion{VT: element.EventAt(vt)})
				if err == nil {
					last = el
					ticks++
				}
			case 1: // retroactive insert: breaks any adopted ordering
				el, err := e.Insert(relation.Insertion{VT: element.EventAt(chronon.Chronon(op))})
				if err == nil {
					last = el
					ticks++
				}
			case 2: // delete the most recent survivor
				if last != nil {
					if e.Delete(last.ES) == nil {
						ticks++
					}
					last = nil
				}
			case 3: // journaled migration when the advice changed
				if _, _, err := e.Respecialize(); err != nil {
					t.Fatalf("step %d: Respecialize: %v", step, err)
				}
			default: // derived-state compaction (never journaled)
				e.Compact()
			}
		}

		want := e.Physical()
		curWant, err := e.CurrentCtx(context.Background())
		if err != nil {
			t.Fatalf("current: %v", err)
		}
		if err := wlog.Close(); err != nil {
			t.Fatalf("wal close: %v", err)
		}

		wlog2, err := wal.Open(wal.Options{Dir: walDir, Sync: wal.SyncGroup})
		if err != nil {
			t.Fatalf("wal reopen: %v", err)
		}
		defer wlog2.Close()
		c2 := New(Config{
			NewClock: func() tx.Clock { return tx.NewLogicalClock(0, 10) },
			WAL:      wlog2,
		})
		if err := c2.Open(); err != nil {
			t.Fatalf("replay Open: %v", err)
		}
		e2, err := c2.Get("fz")
		if err != nil {
			t.Fatalf("replayed Get: %v", err)
		}
		got := e2.Physical()
		if got.Org != want.Org || got.Source != want.Source {
			t.Fatalf("replayed org %v (%s), want %v (%s)", got.Org, got.Source, want.Org, want.Source)
		}
		if got.Migrations != want.Migrations || len(got.History) != len(want.History) {
			t.Fatalf("replayed migrations %d/%d, want %d/%d",
				got.Migrations, len(got.History), want.Migrations, len(want.History))
		}
		if len(got.Adopted) != len(want.Adopted) {
			t.Fatalf("replayed adopted %v, want %v", got.Adopted, want.Adopted)
		}
		cur, err := e2.CurrentCtx(context.Background())
		if err != nil {
			t.Fatalf("replayed current: %v", err)
		}
		sameElementsFuzz(t, curWant, cur)
	})
}

func sameElementsFuzz(t *testing.T, a, b QueryResult) {
	t.Helper()
	ka, kb := resultKey(a), resultKey(b)
	if len(ka) != len(kb) {
		t.Fatalf("extension diverged across replay: %d elements before, %d after", len(ka), len(kb))
	}
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatalf("element %d diverged across replay:\n before %s\n after  %s", i, ka[i], kb[i])
		}
	}
}

func FuzzDecodeRespecialize(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeRespecialize(storage.VTOrdered, storage.SourceInferred, []core.Class{core.Degenerate}))
	f.Add(encodeRespecialize(storage.Heap, storage.SourceDefault, nil))
	f.Add([]byte{2, 0xff, 'x'}) // declared source length past the buffer

	f.Fuzz(func(t *testing.T, b []byte) {
		org, source, adopted, err := decodeRespecialize(b)
		if err != nil {
			return
		}
		if got := encodeRespecialize(org, source, adopted); !bytes.Equal(got, b) {
			t.Fatalf("re-encode mismatch:\n in  %x\n out %x", b, got)
		}
	})
}

func TestRespecializeFrameRoundTrip(t *testing.T) {
	cases := []struct {
		org     storage.Kind
		source  string
		adopted []core.Class
	}{
		{storage.VTOrdered, storage.SourceInferred, []core.Class{core.Degenerate}},
		{storage.VTOrdered, storage.SourceDeclared, []core.Class{core.GloballySequentialEvents, core.GloballyNonDecreasingEvents}},
		{storage.TTOrdered, storage.SourceDefault, nil},
	}
	for _, cse := range cases {
		org, source, adopted, err := decodeRespecialize(encodeRespecialize(cse.org, cse.source, cse.adopted))
		if err != nil {
			t.Fatalf("round trip %v/%s: %v", cse.org, cse.source, err)
		}
		if org != cse.org || source != cse.source || len(adopted) != len(cse.adopted) {
			t.Fatalf("round trip %v/%s: got %v/%s %v", cse.org, cse.source, org, source, adopted)
		}
		for i := range adopted {
			if adopted[i] != cse.adopted[i] {
				t.Fatalf("adopted[%d] = %v, want %v", i, adopted[i], cse.adopted[i])
			}
		}
	}
	if _, _, _, err := decodeRespecialize(nil); err == nil {
		t.Fatal("empty frame accepted")
	}
	if _, _, _, err := decodeRespecialize([]byte{1, 5, 'a'}); err == nil {
		t.Fatal("truncated source accepted")
	}
}
