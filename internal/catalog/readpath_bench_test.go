package catalog

// Microbenchmarks for the three read paths: the shared-lock baseline,
// epoch-stamped snapshot reads, and a cache hit. `make bench-smoke` runs
// these at -benchtime=100ms as a cheap regression tripwire; the full
// S4 experiment (cmd/benchrunner -exp S4) measures the concurrent story.

import (
	"context"
	"testing"

	"repro/internal/chronon"
	"repro/internal/element"
	"repro/internal/relation"
)

func benchEntry(b *testing.B, cfg Config, elements int) *Entry {
	b.Helper()
	cfg.Dir = b.TempDir()
	c := New(cfg)
	e, err := c.Create(relation.Schema{
		Name: "bench", ValidTime: element.EventStamp, Granularity: chronon.Second,
	})
	if err != nil {
		b.Fatalf("Create: %v", err)
	}
	for vt := 0; vt < elements; vt++ {
		if _, err := e.Insert(relation.Insertion{VT: element.EventAt(chronon.Chronon(vt))}); err != nil {
			b.Fatalf("Insert: %v", err)
		}
	}
	return e
}

func benchTimeslices(b *testing.B, e *Entry, elements int) {
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vt := chronon.Chronon((i * 7919) % elements)
		res, err := e.TimesliceCtx(ctx, vt)
		if err != nil {
			b.Fatalf("Timeslice: %v", err)
		}
		if len(res.Elements) == 0 {
			b.Fatalf("timeslice at %d found nothing", vt)
		}
	}
}

func BenchmarkReadPathLocked(b *testing.B) {
	const elements = 4096
	e := benchEntry(b, Config{LockedReads: true}, elements)
	benchTimeslices(b, e, elements)
}

func BenchmarkReadPathSnapshot(b *testing.B) {
	const elements = 4096
	e := benchEntry(b, Config{}, elements)
	benchTimeslices(b, e, elements)
}

func BenchmarkReadPathCacheHit(b *testing.B) {
	const elements = 4096
	e := benchEntry(b, Config{CacheBytes: 1 << 20}, elements)
	ctx := context.Background()
	fixed := chronon.Chronon(elements / 2)
	if _, err := e.TimesliceCtx(ctx, fixed); err != nil { // fill the cache
		b.Fatalf("warm: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.TimesliceCtx(ctx, fixed)
		if err != nil {
			b.Fatalf("Timeslice: %v", err)
		}
		if len(res.Elements) == 0 {
			b.Fatal("cache hit returned nothing")
		}
	}
}
