package catalog

// Differential equivalence harness for the window-aggregate engines: every
// generated (history, query) pair is evaluated twice through the public
// read path — once forced onto the row reference engine (USING ROW), once
// onto the columnar batch engine (USING COLUMNAR) — and the two results
// must be identical, errors included. Histories cover the temporal classes
// the specializer distinguishes (degenerate, sequential, vt-regular,
// violation-degraded, random), are reshaped by deletes and modifies, and
// are respecialized + compacted mid-build so queries cross sealed runs and
// unsealed tails. A -race companion repeats the comparison on pinned
// snapshot views while inserts, vacuum, compaction and respecialization
// churn the live entry.

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/chronon"
	"repro/internal/element"
	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/surrogate"
	"repro/internal/tsql"
)

func diffSchema(name string, stamp element.TimestampKind) relation.Schema {
	return relation.Schema{
		Name: name, ValidTime: stamp, Granularity: chronon.Second,
		Varying: []relation.Column{
			{Name: "v_int", Type: element.KindInt},
			{Name: "v_float", Type: element.KindFloat},
			{Name: "v_str", Type: element.KindString},
		},
	}
}

// diffValues draws one varying tuple; every column is nullable so the
// count(col)-vs-count(*) and null-skipping paths stay exercised.
func diffValues(rng *rand.Rand) []element.Value {
	vi := element.Int(rng.Int63n(200) - 50)
	if rng.Intn(10) == 0 {
		vi = element.Null()
	}
	// Multiples of 1/8 are exact in binary, so sums depend only on fold
	// order — which both engines fix to arrival order.
	vf := element.Float(float64(rng.Intn(4000))/8 - 100)
	if rng.Intn(10) == 0 {
		vf = element.Null()
	}
	vs := element.String_(string(rune('a' + rng.Intn(5))))
	if rng.Intn(10) == 0 {
		vs = element.Null()
	}
	return []element.Value{vi, vf, vs}
}

// classVT advances one history class's valid-time sequence.
func classVT(class string, rng *rand.Rand, i int, cur *int64) int64 {
	switch class {
	case "degenerate":
		// Tracks the logical transaction clock (start 0, step 10): valid
		// time equals transaction time, the degenerate class.
		return int64(10 * (i + 1))
	case "sequential":
		*cur += rng.Int63n(12)
		return *cur
	case "vtregular":
		return int64(7 * i)
	case "degraded":
		*cur += rng.Int63n(12)
		if rng.Intn(32) == 0 {
			return *cur - 40 - rng.Int63n(40) // rare order violation
		}
		return *cur
	default: // random
		return rng.Int63n(4000)
	}
}

// buildDiffRelation grows one relation through a class-shaped history:
// bulk inserts, a sprinkle of deletes and modifies, an advisor pass that
// respecializes and seals what the inferred class licenses, then a fresh
// tail past the sealed prefix. Returns the entry and the observed
// valid-time high-water mark.
func buildDiffRelation(t *testing.T, c *Catalog, name, class string, stamp element.TimestampKind, rng *rand.Rand) (*Entry, int64) {
	t.Helper()
	e, err := c.Create(diffSchema(name, stamp))
	if err != nil {
		t.Fatalf("Create(%s): %v", name, err)
	}
	var cur int64
	vtHi := int64(1)
	var esList []surrogate.Surrogate
	insert := func(i int) {
		lo := classVT(class, rng, i, &cur)
		var vt element.Timestamp
		if stamp == element.EventStamp {
			vt = element.EventAt(chronon.Chronon(lo))
			if lo+1 > vtHi {
				vtHi = lo + 1
			}
		} else {
			hi := lo + 1 + rng.Int63n(30)
			vt = element.SpanOf(chronon.Chronon(lo), chronon.Chronon(hi))
			if hi > vtHi {
				vtHi = hi
			}
		}
		el, err := e.Insert(relation.Insertion{VT: vt, Varying: diffValues(rng)})
		if err != nil {
			t.Fatalf("%s insert %d: %v", name, i, err)
		}
		esList = append(esList, el.ES)
	}
	const n = 520 // more than two sealable runs of 256
	for i := 0; i < n; i++ {
		insert(i)
	}
	// Deletes and history rewrites: repeats may hit already-closed
	// elements and fail — that is itself a legal history, so errors are
	// ignored; the surviving extension is what both engines must agree on.
	for i := 0; i < n/16; i++ {
		es := esList[rng.Intn(len(esList))]
		if rng.Intn(2) == 0 {
			_ = e.Delete(es)
		} else {
			lo := rng.Int63n(vtHi)
			vt := element.EventAt(chronon.Chronon(lo))
			if stamp == element.IntervalStamp {
				vt = element.SpanOf(chronon.Chronon(lo), chronon.Chronon(lo+5))
			}
			_, _ = e.Modify(es, vt, diffValues(rng))
		}
	}
	// Zero thresholds: examine (and respecialize + compact) everything.
	if _, err := c.AdvisePass(AdvisorConfig{}); err != nil {
		t.Fatalf("AdvisePass: %v", err)
	}
	for i := n; i < n+24; i++ { // unsealed tail past the compacted prefix
		insert(i)
	}
	return e, vtHi
}

// genAggQuery emits one random aggregate statement (without USING or
// LIMIT, which the runner appends) plus its LIMIT suffix.
func genAggQuery(rng *rand.Rand, rel string, interval bool, vtHi, ttHi int64) (base, lim string) {
	aggs := []string{
		"count(*)", "count(v_int)", "sum(v_int)", "sum(v_float)",
		"min(v_int)", "max(v_int)", "min(v_float)", "max(v_float)",
		"min(v_str)", "max(v_str)",
	}
	k := 1 + rng.Intn(3)
	parts := make([]string, 0, k+1)
	for i := 0; i < k; i++ {
		parts = append(parts, aggs[rng.Intn(len(aggs))])
	}
	if rng.Intn(16) == 0 {
		// Type errors must be errors in BOTH engines, with the same text.
		parts = append(parts, "sum(v_str)")
	}
	var b strings.Builder
	fmt.Fprintf(&b, "select %s from %s", strings.Join(parts, ", "), rel)
	if rng.Intn(10) < 3 {
		fmt.Fprintf(&b, " as of %d", rng.Int63n(ttHi+40))
	}
	switch rng.Intn(10) {
	case 0, 1:
		fmt.Fprintf(&b, " when valid at %d", rng.Int63n(vtHi+10))
	case 2, 3:
		lo := rng.Int63n(vtHi)
		fmt.Fprintf(&b, " when valid during [%d, %d)", lo, lo+1+rng.Int63n(vtHi))
	case 4:
		if interval {
			lo := rng.Int63n(vtHi)
			fmt.Fprintf(&b, " when overlaps [%d, %d)", lo, lo+1+rng.Int63n(40))
		}
	}
	switch rng.Intn(10) {
	case 0, 1:
		fmt.Fprintf(&b, " where v_int > %d", rng.Int63n(100)-50)
	case 2:
		fmt.Fprintf(&b, " where v_str == '%c'", 'a'+rune(rng.Intn(5)))
	}
	widths := []int64{7, 13, 50, 100, 256}
	w := widths[rng.Intn(len(widths))]
	switch rng.Intn(5) {
	case 0:
		fmt.Fprintf(&b, " group by window(%d, rolling %d)", w, 2+rng.Intn(4))
	case 1:
		fmt.Fprintf(&b, " group by window(%d, cumulative)", w)
	default:
		fmt.Fprintf(&b, " group by window(%d)", w)
	}
	if rng.Intn(4) == 0 {
		lim = fmt.Sprintf(" limit %d", 1+rng.Intn(6))
	}
	return b.String(), lim
}

// runDiff evaluates one statement under both engine hints through the
// public read path and requires identical results (or identical errors).
// Returns whether the statement evaluated successfully.
func runDiff(t *testing.T, e *Entry, base, lim string) bool {
	t.Helper()
	ctx := context.Background()
	parse := func(src string) *tsql.Query {
		q, err := tsql.Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		return q
	}
	qRow := parse(base + " using row" + lim)
	qCol := parse(base + " using columnar" + lim)
	rRes, rNode, _, rErr := e.SelectCtx(ctx, qRow)
	cRes, cNode, _, cErr := e.SelectCtx(ctx, qCol)
	if (rErr != nil) != (cErr != nil) {
		t.Fatalf("%q: engines disagree on failure: row err %v, columnar err %v", base+lim, rErr, cErr)
	}
	if rErr != nil {
		if rErr.Error() != cErr.Error() {
			t.Fatalf("%q: divergent errors:\n  row:      %v\n  columnar: %v", base+lim, rErr, cErr)
		}
		return false
	}
	if cNode.Leaf().Kind != plan.ColumnarScan {
		t.Fatalf("%q: USING COLUMNAR compiled to %v", base+lim, cNode.Leaf().Kind)
	}
	if rNode.Leaf().Kind == plan.ColumnarScan {
		t.Fatalf("%q: USING ROW compiled to a columnar scan", base+lim)
	}
	if !reflect.DeepEqual(rRes, cRes) {
		t.Fatalf("%q: engines diverge\nrow:      %+v\ncolumnar: %+v\nrow plan:\n%s\ncolumnar plan:\n%s",
			base+lim, rRes, cRes, rNode.Render(), cNode.Render())
	}
	return true
}

// TestDifferentialRowColumnar is the seeded sweep: every history class ×
// both valid-time kinds × a random query mix, row vs columnar.
func TestDifferentialRowColumnar(t *testing.T) {
	classes := []string{"degenerate", "sequential", "vtregular", "degraded", "random"}
	stamps := []struct {
		kind element.TimestampKind
		name string
	}{
		{element.EventStamp, "ev"},
		{element.IntervalStamp, "iv"},
	}
	for _, seed := range []int64{1, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			c := New(cachedConfig(t.TempDir()))
			rng := rand.New(rand.NewSource(seed))
			for _, st := range stamps {
				for _, class := range classes {
					name := fmt.Sprintf("d_%s_%s", class, st.name)
					e, vtHi := buildDiffRelation(t, c, name, class, st.kind, rng)
					ttHi := int64(10 * (520 + 60)) // logical clock: step 10 per transaction
					ok := 0
					for i := 0; i < 30; i++ {
						base, lim := genAggQuery(rng, name, st.kind == element.IntervalStamp, vtHi, ttHi)
						if runDiff(t, e, base, lim) {
							ok++
						}
					}
					if ok == 0 {
						t.Fatalf("%s: no generated query evaluated successfully", name)
					}
				}
			}
		})
	}
}

// TestDifferentialUnderConcurrentMutation repeats the row/columnar
// comparison on pinned snapshot views while writers churn the live entry
// with inserts, deletes, vacuum, compaction and respecialization. The
// pinned view makes the comparison deterministic; the -race build asserts
// the batch reader and both fold engines never touch mutating state.
func TestDifferentialUnderConcurrentMutation(t *testing.T) {
	c := New(testConfig(t.TempDir()))
	e, err := c.Create(diffSchema("churn", element.EventStamp))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	seedRng := rand.New(rand.NewSource(7))
	var mu sync.Mutex
	var esList []surrogate.Surrogate
	var vtCur int64
	insert := func(rng *rand.Rand) error {
		mu.Lock()
		vtCur += 7
		// Wrap rather than grow forever: an unpaused inserter on a fast
		// machine would otherwise push the vt extent past width*MaxWindows
		// and the live window(50) query would trip the result-size guard.
		if vtCur > 1<<20 {
			vtCur = 7
		}
		vt := vtCur
		mu.Unlock()
		el, err := e.Insert(relation.Insertion{
			VT:      element.EventAt(chronon.Chronon(vt)),
			Varying: diffValues(rng),
		})
		if err != nil {
			return err
		}
		mu.Lock()
		esList = append(esList, el.ES)
		mu.Unlock()
		return nil
	}
	for i := 0; i < 400; i++ {
		if err := insert(seedRng); err != nil {
			t.Fatalf("seed insert: %v", err)
		}
	}
	if _, err := c.AdvisePass(AdvisorConfig{}); err != nil {
		t.Fatalf("AdvisePass: %v", err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	spawn := func(seed int64, pause time.Duration, fn func(rng *rand.Rand)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				fn(rng)
				time.Sleep(pause)
			}
		}()
	}
	spawn(11, 0, func(rng *rand.Rand) { _ = insert(rng) })
	spawn(12, time.Millisecond, func(rng *rand.Rand) {
		mu.Lock()
		var es surrogate.Surrogate
		if len(esList) > 0 {
			es = esList[rng.Intn(len(esList))]
		}
		mu.Unlock()
		if es != 0 {
			_ = e.Delete(es) // repeats legitimately fail; the race detector is the assertion
		}
	})
	spawn(13, time.Millisecond, func(*rand.Rand) { e.Compact() })
	spawn(14, 2*time.Millisecond, func(*rand.Rand) { _, _, _ = e.Respecialize() })
	var horizon int64
	spawn(15, 2*time.Millisecond, func(*rand.Rand) {
		horizon += 10
		_, _ = e.Vacuum(chronon.Chronon(horizon))
	})

	bases := []string{
		"select count(*), sum(v_int) from churn group by window(50)",
		"select min(v_int), max(v_float) from churn when valid during [100, 2000) group by window(100)",
		"select count(v_str) from churn as of 1500 group by window(64, rolling 3)",
		"select sum(v_float) from churn where v_int > 0 group by window(128, cumulative)",
	}
	ctx := context.Background()
	for i := 0; i < 200; i++ {
		base := bases[i%len(bases)]
		qRow, err := tsql.Parse(base + " using row")
		if err != nil {
			t.Fatal(err)
		}
		qCol, err := tsql.Parse(base + " using columnar")
		if err != nil {
			t.Fatal(err)
		}
		// Pin one published view: both engines read the same snapshot no
		// matter what the writers do meanwhile.
		v := e.view.Load()
		event := v.schema.ValidTime == element.EventStamp
		specRow, err := tsql.BuildAggSpec(qRow, v.schema)
		if err != nil {
			t.Fatal(err)
		}
		specCol, err := tsql.BuildAggSpec(qCol, v.schema)
		if err != nil {
			t.Fatal(err)
		}
		nodeRow := tsql.Compile(qRow, v.engine.Access())
		nodeCol := tsql.Compile(qCol, v.engine.Access())
		rRes, _, rErr := v.engine.AggregateCtx(ctx, nodeRow, tsql.PlanQuery(qRow), specRow, event)
		cRes, _, cErr := v.engine.AggregateCtx(ctx, nodeCol, tsql.PlanQuery(qCol), specCol, event)
		if (rErr != nil) != (cErr != nil) || (rErr != nil && rErr.Error() != cErr.Error()) {
			t.Fatalf("iteration %d %q: row err %v, columnar err %v", i, base, rErr, cErr)
		}
		if rErr == nil && !reflect.DeepEqual(rRes, cRes) {
			t.Fatalf("iteration %d %q: engines diverge on a pinned view\nrow:      %+v\ncolumnar: %+v",
				i, base, rRes, cRes)
		}
		// Also drive the public read path under churn; epochs move between
		// the two calls, so only clean execution is asserted here.
		if i%8 == 0 {
			if _, _, _, err := e.SelectCtx(ctx, qRow); err != nil {
				t.Fatalf("live SelectCtx: %v", err)
			}
		}
	}
	close(stop)
	wg.Wait()
}
