package catalog

// Aggregate read-path tests: window-aggregate results are memoized under
// (relation, "agg:"+fingerprint, epoch), so a repeat SELECT hits the cache
// and any mutation's epoch bump invalidates it; the batch-operator
// counters account executed engines, not cache replays.

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/tsql"
)

func mustAggSelect(t *testing.T, e *Entry, src string) *tsql.Result {
	t.Helper()
	q, err := tsql.Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	res, _, _, err := e.SelectCtx(context.Background(), q)
	if err != nil {
		t.Fatalf("SelectCtx(%q): %v", src, err)
	}
	return res
}

func TestAggregateCacheEpochInvalidation(t *testing.T) {
	c := New(cachedConfig(t.TempDir()))
	e, err := c.Create(eventSchema("m"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for i := 0; i < 50; i++ {
		mustInsert(t, e, int64(i))
	}
	const src = "select count(*) from m group by window(10)"

	res1 := mustAggSelect(t, e, src)
	before := c.Cache().Stats()
	res2 := mustAggSelect(t, e, src)
	after := c.Cache().Stats()
	if after.Hits != before.Hits+1 {
		t.Fatalf("repeat aggregate missed the cache: hits %d -> %d", before.Hits, after.Hits)
	}
	if !reflect.DeepEqual(res1, res2) {
		t.Fatalf("cached replay differs:\nfirst:  %+v\nreplay: %+v", res1, res2)
	}
	if n, _ := res1.Rows[0][2].IntVal(); n != 10 {
		t.Fatalf("window [0,10) count = %d, want 10", n)
	}

	// A mutation bumps the epoch: the same statement re-executes and the
	// fresh result sees the new row — a stale cached window would not.
	ep := e.Epoch()
	mustInsert(t, e, 5)
	if e.Epoch() <= ep {
		t.Fatalf("insert did not bump the epoch past %d", ep)
	}
	res3 := mustAggSelect(t, e, src)
	if n, _ := res3.Rows[0][2].IntVal(); n != 11 {
		t.Fatalf("post-insert window [0,10) count = %d, want 11", n)
	}
	if c.Cache().Stats().Hits != after.Hits {
		t.Fatal("post-mutation aggregate served from the stale epoch's cache entry")
	}

	// Row- and columnar-hinted forms fingerprint (and therefore cache)
	// separately, but must agree.
	rowRes := mustAggSelect(t, e, src+" using row")
	colRes := mustAggSelect(t, e, src+" using columnar")
	if !reflect.DeepEqual(rowRes, colRes) {
		t.Fatalf("hinted engines disagree:\nrow:      %+v\ncolumnar: %+v", rowRes, colRes)
	}
}

func TestBatchStatsCounters(t *testing.T) {
	c := New(testConfig(t.TempDir()))
	e, err := c.Create(eventSchema("m"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for i := 0; i < 300; i++ {
		mustInsert(t, e, int64(i))
	}
	if st := e.BatchStats(); st != (BatchStats{}) {
		t.Fatalf("fresh entry has nonzero batch stats: %+v", st)
	}
	mustAggSelect(t, e, "select count(*) from m group by window(50) using columnar")
	st := e.BatchStats()
	if st.ColumnarPicks != 1 || st.RowPicks != 0 {
		t.Fatalf("picks after columnar run: %+v", st)
	}
	if st.Batches == 0 || st.Rows != 300 {
		t.Fatalf("columnar run consumed %d batches / %d rows, want >0 / 300", st.Batches, st.Rows)
	}
	mustAggSelect(t, e, "select count(*) from m group by window(50) using row")
	if st := e.BatchStats(); st.RowPicks != 1 {
		t.Fatalf("picks after row run: %+v", st)
	}
}
