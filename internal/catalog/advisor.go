package catalog

// Background physical-design advisor: the loop that closes the
// specialization feedback cycle. Each pass walks the catalog, re-advises
// any relation whose extension has grown past the re-advising thresholds
// since its last look, migrates the live store when the advice changed
// (Entry.Respecialize — journaled, so the design survives restarts and
// ships to followers), and seals frozen runs on relations whose adopted
// organization is the append-only vt-ordered log (class-scheduled
// compaction). Followers never run the loop: their physical design
// arrives through the replicated walRespecialize frames, keeping replica
// state a pure function of the primary's log.

import (
	"context"
	"fmt"
	"time"

	"repro/internal/relation"
	"repro/internal/storage"
)

// AdvisorConfig tunes the background advisor's re-advising thresholds. A
// relation is re-examined when its mutation epoch advanced by at least
// MinEpochDelta or its store footprint changed by at least MinBytesDelta
// since the advisor's previous look; a relation the advisor has never
// seen is always examined.
type AdvisorConfig struct {
	MinEpochDelta uint64
	MinBytesDelta int64
}

// DefaultAdvisorConfig is the tsdbd default: look again after 64 epochs
// or 64 KiB of timestamp-column growth, whichever comes first.
func DefaultAdvisorConfig() AdvisorConfig {
	return AdvisorConfig{MinEpochDelta: 64, MinBytesDelta: 64 << 10}
}

// AdvisorReport summarizes one advisor pass.
type AdvisorReport struct {
	Examined   int         // relations past their thresholds this pass
	Migrations []Migration // store migrations performed
	Sealed     int         // elements newly sealed into frozen runs
}

// AdvisePass runs one advisor sweep over the catalog. Exported so tests,
// benchmarks, and operators (via an eventual admin endpoint) can drive a
// pass deterministically without the ticker.
func (c *Catalog) AdvisePass(cfg AdvisorConfig) (AdvisorReport, error) {
	if c.cfg.Follower {
		return AdvisorReport{}, fmt.Errorf("catalog: advisor pass on a follower (designs replicate from the primary)")
	}
	var rep AdvisorReport
	for _, name := range c.Names() {
		e, err := c.Get(name)
		if err != nil {
			continue // dropped concurrently
		}
		if !e.pastAdviseThresholds(cfg) {
			continue
		}
		rep.Examined++
		mig, migrated, err := e.Respecialize()
		if err != nil {
			return rep, fmt.Errorf("catalog: respecialize %q: %w", name, err)
		}
		if migrated {
			rep.Migrations = append(rep.Migrations, mig)
		}
		// Class-scheduled compaction: only the vt-ordered log (the
		// append-only designs) seals runs; general relations keep today's
		// behavior. Entry.Compact is a no-op on non-sealing stores, but
		// gating here keeps the sweep from taking their exclusive locks.
		if e.adviceStore() == storage.VTOrdered {
			rep.Sealed += e.Compact()
		}
	}
	return rep, nil
}

// pastAdviseThresholds reports whether the relation changed enough since
// the advisor's previous look to warrant re-advising, and if so records
// the current epoch and byte footprint as the new baseline.
func (e *Entry) pastAdviseThresholds(cfg AdvisorConfig) bool {
	epoch := e.Epoch()
	bytes := e.storeBytes()
	lastE, lastB := e.lastAdviseEpoch.Load(), e.lastAdviseBytes.Load()
	if lastE != 0 {
		dE := epoch - lastE
		dB := bytes - lastB
		if dB < 0 {
			dB = -dB
		}
		if dE < cfg.MinEpochDelta && dB < cfg.MinBytesDelta {
			return false
		}
	}
	e.lastAdviseEpoch.Store(epoch)
	e.lastAdviseBytes.Store(bytes)
	return true
}

// storeBytes reads the live store's timestamp-column footprint.
func (e *Entry) storeBytes() int64 {
	var n int64
	_ = e.locked.View(func(*relation.Relation) error {
		n = storage.StoreBytes(e.engine.Store())
		return nil
	})
	return n
}

// adviceStore reads the live organization under the shared lock.
func (e *Entry) adviceStore() storage.Kind {
	var k storage.Kind
	_ = e.locked.View(func(*relation.Relation) error {
		k = e.advice.Store
		return nil
	})
	return k
}

// RunAdvisor runs AdvisePass every interval until ctx is canceled. Pass
// errors are reported through report (nil to discard); a failed pass does
// not stop the loop — the catalog may be transiently read-only (WAL
// poisoned) and recover.
func (c *Catalog) RunAdvisor(ctx context.Context, every time.Duration, cfg AdvisorConfig, report func(AdvisorReport, error)) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			rep, err := c.AdvisePass(cfg)
			if report != nil {
				report(rep, err)
			}
		}
	}
}
