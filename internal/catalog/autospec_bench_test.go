package catalog

// Microbenchmarks for the specialization loop: what one advisor pass
// costs, and what the migrated organization buys on the paper's query
// mix. `make bench-smoke` runs these at -benchtime=100ms; the full
// before/after experiment (per-class storage bytes and latencies) is
// cmd/benchrunner -exp S6.

import (
	"context"
	"testing"

	"repro/internal/chronon"
	"repro/internal/element"
	"repro/internal/relation"
	"repro/internal/storage"
)

// autoSpecEntry builds a relation with n degenerate elements (vt = tt),
// optionally running the advisor so the store has migrated to the
// inferred vt-ordered log before the measurement.
func autoSpecEntry(b *testing.B, n int, specialize bool) (*Catalog, *Entry) {
	b.Helper()
	cfg := testBenchConfig(b)
	c := New(cfg)
	e, err := c.Create(eventSchema("bench"))
	if err != nil {
		b.Fatalf("Create: %v", err)
	}
	for i := 1; i <= n; i++ {
		if _, err := e.Insert(relation.Insertion{VT: element.EventAt(chronon.Chronon(10 * i))}); err != nil {
			b.Fatalf("Insert: %v", err)
		}
	}
	if specialize {
		rep, err := c.AdvisePass(DefaultAdvisorConfig())
		if err != nil {
			b.Fatalf("AdvisePass: %v", err)
		}
		if len(rep.Migrations) != 1 {
			b.Fatalf("advisor migrated %d relations, want 1", len(rep.Migrations))
		}
		if got := e.Physical().Org; got != storage.VTOrdered {
			b.Fatalf("specialized org %v, want %v", got, storage.VTOrdered)
		}
	}
	return c, e
}

func testBenchConfig(b *testing.B) Config {
	cfg := testConfig(b.TempDir())
	return cfg
}

func autoSpecTimeslices(b *testing.B, e *Entry, n int) {
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vt := chronon.Chronon(10 * ((i*7919)%n + 1))
		res, err := e.TimesliceCtx(ctx, vt)
		if err != nil {
			b.Fatalf("Timeslice: %v", err)
		}
		if len(res.Elements) == 0 {
			b.Fatalf("timeslice at %d found nothing", vt)
		}
	}
}

// The before/after pair: the same degenerate workload queried on the
// default organization versus the advisor-migrated vt-ordered log.
func BenchmarkAutoSpecializeTimesliceBaseline(b *testing.B) {
	const n = 4096
	_, e := autoSpecEntry(b, n, false)
	autoSpecTimeslices(b, e, n)
}

func BenchmarkAutoSpecializeTimesliceMigrated(b *testing.B) {
	const n = 4096
	_, e := autoSpecEntry(b, n, true)
	autoSpecTimeslices(b, e, n)
}

// BenchmarkAutoSpecializePass prices one advisor sweep over an
// already-settled catalog — the steady-state cost the background loop
// pays per tick (thresholds disabled so every pass really examines).
func BenchmarkAutoSpecializePass(b *testing.B) {
	c, _ := autoSpecEntry(b, 2048, true)
	cfg := AdvisorConfig{} // zero thresholds: always look
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.AdvisePass(cfg); err != nil {
			b.Fatalf("AdvisePass: %v", err)
		}
	}
}
