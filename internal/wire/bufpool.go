package wire

import (
	"bytes"
	"sync"
)

// Response-body buffers are pooled so the hot read path (queries answered
// from the snapshot view or the result cache) allocates no encoding buffer
// per request. Buffers that grew past maxPooledBuffer are dropped instead
// of returned, so one giant rollback response does not pin a megabyte of
// heap in the pool forever.
const maxPooledBuffer = 1 << 20

var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// GetBuffer returns an empty buffer from the pool.
func GetBuffer() *bytes.Buffer {
	return bufPool.Get().(*bytes.Buffer)
}

// PutBuffer resets b and returns it to the pool (oversized buffers are
// dropped). Callers must not touch b afterwards.
func PutBuffer(b *bytes.Buffer) {
	if b == nil || b.Cap() > maxPooledBuffer {
		return
	}
	b.Reset()
	bufPool.Put(b)
}
