// Package wire defines the JSON vocabulary of the tsdbd network protocol:
// the request and response shapes exchanged between the server
// (internal/server) and the typed Go client (client). Every type here is a
// plain serializable struct with converters to and from the engine's
// internal representations, so the HTTP layer stays free of translation
// logic and the client package never imports engine internals beyond this
// package.
//
// Conventions:
//
//   - Chronons travel as int64 seconds (the engine's discrete time line).
//   - Attribute values are tagged unions discriminated by "kind".
//   - Specialization descriptors use the same numeric class/basis/endpoint
//     codes the binary catalog persists (internal/backlog), so a wire
//     descriptor and a persisted one never disagree; human-readable names
//     are attached by the server for display only.
//   - Errors are {"error":{"code":..., "message":...}} with an HTTP status.
package wire

import (
	"fmt"

	"repro/internal/chronon"
	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/element"
	"repro/internal/plan"
	"repro/internal/relation"
)

// Value is one attribute value as a tagged union. Kind selects which of
// the payload fields is meaningful; the others are ignored.
type Value struct {
	Kind  string  `json:"kind"` // "null", "string", "int", "float", "bool", "time"
	Str   string  `json:"str,omitempty"`
	Int   int64   `json:"int,omitempty"`
	Float float64 `json:"float,omitempty"`
	Bool  bool    `json:"bool,omitempty"`
	Time  int64   `json:"time,omitempty"`
}

// Value constructors for client code.
func Null() Value           { return Value{Kind: "null"} }
func String(s string) Value { return Value{Kind: "string", Str: s} }
func Int(i int64) Value     { return Value{Kind: "int", Int: i} }
func Float(f float64) Value { return Value{Kind: "float", Float: f} }
func Bool(b bool) Value     { return Value{Kind: "bool", Bool: b} }
func Time(c int64) Value    { return Value{Kind: "time", Time: c} }

// ToValue converts a wire value into an engine value.
func (v Value) ToValue() (element.Value, error) {
	switch v.Kind {
	case "null", "":
		return element.Null(), nil
	case "string":
		return element.String_(v.Str), nil
	case "int":
		return element.Int(v.Int), nil
	case "float":
		return element.Float(v.Float), nil
	case "bool":
		return element.Bool(v.Bool), nil
	case "time":
		return element.Time(chronon.Chronon(v.Time)), nil
	}
	return element.Value{}, fmt.Errorf("wire: unknown value kind %q", v.Kind)
}

// FromValue converts an engine value into its wire form.
func FromValue(v element.Value) Value {
	switch v.Kind() {
	case element.KindString:
		s, _ := v.Str()
		return String(s)
	case element.KindInt:
		i, _ := v.IntVal()
		return Int(i)
	case element.KindFloat:
		f, _ := v.FloatVal()
		return Float(f)
	case element.KindBool:
		b, _ := v.BoolVal()
		return Bool(b)
	case element.KindTime:
		c, _ := v.TimeVal()
		return Time(int64(c))
	}
	return Null()
}

// ToValues converts a slice of wire values.
func ToValues(vs []Value) ([]element.Value, error) {
	if len(vs) == 0 {
		return nil, nil
	}
	out := make([]element.Value, len(vs))
	for i, v := range vs {
		ev, err := v.ToValue()
		if err != nil {
			return nil, err
		}
		out[i] = ev
	}
	return out, nil
}

// FromValues converts a slice of engine values.
func FromValues(vs []element.Value) []Value {
	if len(vs) == 0 {
		return nil
	}
	out := make([]Value, len(vs))
	for i, v := range vs {
		out[i] = FromValue(v)
	}
	return out
}

// Timestamp is a valid time-stamp: exactly one of Event (an event chronon)
// or Start/End (a half-open interval) is set.
type Timestamp struct {
	Event *int64 `json:"event,omitempty"`
	Start *int64 `json:"start,omitempty"`
	End   *int64 `json:"end,omitempty"`
}

// EventAt builds an event wire time-stamp.
func EventAt(c int64) Timestamp { return Timestamp{Event: &c} }

// SpanOf builds an interval wire time-stamp [start, end).
func SpanOf(start, end int64) Timestamp { return Timestamp{Start: &start, End: &end} }

// ToTimestamp converts a wire time-stamp into an engine time-stamp.
func (t Timestamp) ToTimestamp() (element.Timestamp, error) {
	switch {
	case t.Event != nil && t.Start == nil && t.End == nil:
		return element.EventAt(chronon.Chronon(*t.Event)), nil
	case t.Event == nil && t.Start != nil && t.End != nil:
		if *t.End <= *t.Start {
			return element.Timestamp{}, fmt.Errorf("wire: empty or inverted interval [%d,%d)", *t.Start, *t.End)
		}
		return element.SpanOf(chronon.Chronon(*t.Start), chronon.Chronon(*t.End)), nil
	}
	return element.Timestamp{}, fmt.Errorf("wire: timestamp needs either event or start+end")
}

// FromTimestamp converts an engine time-stamp into its wire form.
func FromTimestamp(ts element.Timestamp) Timestamp {
	if c, ok := ts.Event(); ok {
		return EventAt(int64(c))
	}
	iv, _ := ts.Interval()
	return SpanOf(int64(iv.Start), int64(iv.End))
}

// Element is one stored element version.
type Element struct {
	ES        uint64    `json:"es"`
	OS        uint64    `json:"os"`
	TTStart   int64     `json:"tt_start"`
	TTEnd     int64     `json:"tt_end"` // chronon.Forever while current
	Current   bool      `json:"current"`
	VT        Timestamp `json:"vt"`
	Invariant []Value   `json:"invariant,omitempty"`
	Varying   []Value   `json:"varying,omitempty"`
	UserTimes []int64   `json:"user_times,omitempty"`
}

// FromElement converts an engine element into its wire form.
func FromElement(e *element.Element) Element {
	var uts []int64
	if len(e.UserTimes) > 0 {
		uts = make([]int64, len(e.UserTimes))
		for i, c := range e.UserTimes {
			uts[i] = int64(c)
		}
	}
	return Element{
		ES:        uint64(e.ES),
		OS:        uint64(e.OS),
		TTStart:   int64(e.TTStart),
		TTEnd:     int64(e.TTEnd),
		Current:   e.Current(),
		VT:        FromTimestamp(e.VT),
		Invariant: FromValues(e.Invariant),
		Varying:   FromValues(e.Varying),
		UserTimes: uts,
	}
}

// FromElements converts a result set.
func FromElements(es []*element.Element) []Element {
	out := make([]Element, len(es))
	for i, e := range es {
		out[i] = FromElement(e)
	}
	return out
}

// Column describes one schema attribute.
type Column struct {
	Name string `json:"name"`
	Type string `json:"type"` // element.ValueKind name: "string", "int", ...
}

// Schema describes a relation.
type Schema struct {
	Name        string   `json:"name"`
	ValidTime   string   `json:"valid_time"`  // "event" or "interval"
	Granularity int64    `json:"granularity"` // tick length in seconds
	Invariant   []Column `json:"invariant,omitempty"`
	Varying     []Column `json:"varying,omitempty"`
	UserTimes   []string `json:"user_times,omitempty"`
}

func parseKind(s string) (element.ValueKind, error) {
	for _, k := range []element.ValueKind{
		element.KindNull, element.KindString, element.KindInt,
		element.KindFloat, element.KindBool, element.KindTime,
	} {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("wire: unknown column type %q", s)
}

func toColumns(cols []Column) ([]relation.Column, error) {
	if len(cols) == 0 {
		return nil, nil
	}
	out := make([]relation.Column, len(cols))
	for i, c := range cols {
		k, err := parseKind(c.Type)
		if err != nil {
			return nil, err
		}
		out[i] = relation.Column{Name: c.Name, Type: k}
	}
	return out, nil
}

func fromColumns(cols []relation.Column) []Column {
	if len(cols) == 0 {
		return nil
	}
	out := make([]Column, len(cols))
	for i, c := range cols {
		out[i] = Column{Name: c.Name, Type: c.Type.String()}
	}
	return out
}

// ToSchema converts a wire schema into an engine schema and validates it.
func (s Schema) ToSchema() (relation.Schema, error) {
	var kind element.TimestampKind
	switch s.ValidTime {
	case "event":
		kind = element.EventStamp
	case "interval":
		kind = element.IntervalStamp
	default:
		return relation.Schema{}, fmt.Errorf("wire: unknown valid_time %q (want \"event\" or \"interval\")", s.ValidTime)
	}
	g := chronon.Granularity(s.Granularity)
	if !g.Valid() {
		return relation.Schema{}, fmt.Errorf("wire: invalid granularity %d", s.Granularity)
	}
	inv, err := toColumns(s.Invariant)
	if err != nil {
		return relation.Schema{}, err
	}
	vary, err := toColumns(s.Varying)
	if err != nil {
		return relation.Schema{}, err
	}
	schema := relation.Schema{
		Name:        s.Name,
		ValidTime:   kind,
		Granularity: g,
		Invariant:   inv,
		Varying:     vary,
		UserTimes:   s.UserTimes,
	}
	if err := schema.Validate(); err != nil {
		return relation.Schema{}, err
	}
	return schema, nil
}

// FromSchema converts an engine schema into its wire form.
func FromSchema(s relation.Schema) Schema {
	vt := "event"
	if s.ValidTime == element.IntervalStamp {
		vt = "interval"
	}
	return Schema{
		Name:        s.Name,
		ValidTime:   vt,
		Granularity: int64(s.Granularity),
		Invariant:   fromColumns(s.Invariant),
		Varying:     fromColumns(s.Varying),
		UserTimes:   s.UserTimes,
	}
}

// Duration is a specialization bound: a fixed number of seconds plus a
// calendric number of months.
type Duration struct {
	Seconds int64 `json:"seconds,omitempty"`
	Months  int64 `json:"months,omitempty"`
}

// Descriptor is one declared specialization in wire form. Kind, Class,
// Scope, Basis, and Endpoint carry the same numeric codes the binary
// catalog persists; Name is filled by the server on responses for display.
type Descriptor struct {
	Kind        uint8      `json:"kind"`
	Class       uint8      `json:"class"`
	Scope       uint8      `json:"scope"` // 0 per-relation, 1 per-partition
	Basis       uint8      `json:"basis,omitempty"`
	Endpoint    uint8      `json:"endpoint,omitempty"`
	Bounds      []Duration `json:"bounds,omitempty"`
	Granularity int64      `json:"granularity,omitempty"` // degenerate class only
	Name        string     `json:"name,omitempty"`        // display only, server-filled
}

// ToDescriptor converts a wire descriptor into a constraint descriptor and
// verifies it reconstructs, so malformed declarations fail at the protocol
// boundary rather than at the first transaction.
func (d Descriptor) ToDescriptor() (constraint.Descriptor, error) {
	out := constraint.Descriptor{
		Kind:        constraint.DescriptorKind(d.Kind),
		Class:       core.Class(d.Class),
		Scope:       constraint.Scope(d.Scope),
		Basis:       core.TTBasis(d.Basis),
		Endpoint:    core.VTEndpoint(d.Endpoint),
		Granularity: chronon.Granularity(d.Granularity),
	}
	if d.Scope > uint8(constraint.PerPartition) {
		return constraint.Descriptor{}, fmt.Errorf("wire: unknown scope %d", d.Scope)
	}
	for _, b := range d.Bounds {
		out.Bounds = append(out.Bounds, chronon.Duration{Seconds: b.Seconds, Months: b.Months})
	}
	if _, err := out.Build(); err != nil {
		return constraint.Descriptor{}, err
	}
	return out, nil
}

// FromDescriptor converts a constraint descriptor into its wire form,
// naming it for display.
func FromDescriptor(d constraint.Descriptor) Descriptor {
	out := Descriptor{
		Kind:        uint8(d.Kind),
		Class:       uint8(d.Class),
		Scope:       uint8(d.Scope),
		Basis:       uint8(d.Basis),
		Endpoint:    uint8(d.Endpoint),
		Granularity: int64(d.Granularity),
		Name:        d.String(),
	}
	for _, b := range d.Bounds {
		out.Bounds = append(out.Bounds, Duration{Seconds: b.Seconds, Months: b.Months})
	}
	return out
}

// FromDescriptors converts a declaration catalog.
func FromDescriptors(ds []constraint.Descriptor) []Descriptor {
	if len(ds) == 0 {
		return nil
	}
	out := make([]Descriptor, len(ds))
	for i, d := range ds {
		out[i] = FromDescriptor(d)
	}
	return out
}

// ToDescriptors converts and validates a wire declaration list.
func ToDescriptors(ds []Descriptor) ([]constraint.Descriptor, error) {
	out := make([]constraint.Descriptor, 0, len(ds))
	for i, d := range ds {
		cd, err := d.ToDescriptor()
		if err != nil {
			return nil, fmt.Errorf("constraint %d: %w", i, err)
		}
		out = append(out, cd)
	}
	return out, nil
}

// CreateRequest asks the server to create a relation.
type CreateRequest struct {
	Schema Schema `json:"schema"`
}

// DeclareRequest attaches specializations to a relation. All descriptors
// must share one scope per request (the engine enforces one enforcer per
// scope); mixed scopes are split by the server.
type DeclareRequest struct {
	Constraints []Descriptor `json:"constraints"`
}

// DeclareResponse reports the relation's full declaration catalog after
// the new constraints were attached.
type DeclareResponse struct {
	Declared     int          `json:"declared"`
	Declarations []Descriptor `json:"declarations"`
}

// InsertRequest stores one new element.
type InsertRequest struct {
	Object    uint64    `json:"object,omitempty"` // 0 allocates a new object surrogate
	VT        Timestamp `json:"vt"`
	Invariant []Value   `json:"invariant,omitempty"`
	Varying   []Value   `json:"varying,omitempty"`
	UserTimes []int64   `json:"user_times,omitempty"`
}

// BatchInsertRequest stores many elements as one journaled unit: one
// WAL frame, one group-commit entry, one published epoch. Keys, when
// present, parallels Elements — one idempotency key per element, so a
// replayed batch dedups element-by-element exactly like replayed single
// inserts. Atomic makes the batch all-or-nothing: any rejection aborts
// it before anything is journaled.
type BatchInsertRequest struct {
	Elements []InsertRequest `json:"elements"`
	Keys     []string        `json:"keys,omitempty"`
	Atomic   bool            `json:"atomic,omitempty"`
}

// BatchItem is one element's outcome inside a batch response.
type BatchItem struct {
	Status  string   `json:"status"` // "stored", "deduped", "rejected"
	Error   string   `json:"error,omitempty"`
	Element *Element `json:"element,omitempty"`
}

// BatchInsertResponse reports a batch per-index plus the tallies and the
// epoch the single publish produced.
type BatchInsertResponse struct {
	Items    []BatchItem `json:"items"`
	Stored   int         `json:"stored"`
	Deduped  int         `json:"deduped"`
	Rejected int         `json:"rejected"`
	Epoch    uint64      `json:"epoch,omitempty"`
}

// IngestResponse is POST /v1/ingest/csv: how many data lines streamed
// in, what was stored or rejected, and how many batches carried them.
// Errors holds the first line-numbered failures (decode errors and
// per-element rejections); ErrorCount is the total, which may exceed
// len(Errors).
type IngestResponse struct {
	Relation   string   `json:"relation"`
	Lines      int      `json:"lines"`
	Stored     int      `json:"stored"`
	Rejected   int      `json:"rejected"`
	Batches    int      `json:"batches"`
	Errors     []string `json:"errors,omitempty"`
	ErrorCount int      `json:"error_count,omitempty"`
}

// DeleteRequest logically deletes one element.
type DeleteRequest struct {
	ES uint64 `json:"es"`
}

// ModifyRequest replaces an element's valid time and varying values.
type ModifyRequest struct {
	ES      uint64    `json:"es"`
	VT      Timestamp `json:"vt"`
	Varying []Value   `json:"varying,omitempty"`
}

// ElementResponse returns the element a transaction stored.
type ElementResponse struct {
	Element Element `json:"element"`
}

// Query kinds accepted by QueryRequest.
const (
	QueryCurrent   = "current"
	QueryTimeslice = "timeslice"
	QueryRollback  = "rollback"
	QueryAsOf      = "asof" // bitemporal: valid at VT as stored at TT
)

// QueryRequest runs one of the engine's query kinds.
type QueryRequest struct {
	Kind string `json:"kind"`
	VT   int64  `json:"vt,omitempty"`
	TT   int64  `json:"tt,omitempty"`
}

// QueryResponse carries the result set with the access-path accounting the
// storage advisor's organization produced. Plan is the legacy one-line
// rendering; PlanNode is the structured tree it renders.
type QueryResponse struct {
	Elements []Element `json:"elements"`
	Plan     string    `json:"plan,omitempty"`
	PlanNode *PlanNode `json:"plan_node,omitempty"`
	Touched  int       `json:"touched"`
	// Epoch is the relation's mutation epoch the result was computed at —
	// the value the server hands back as the ETag validator on GET queries.
	Epoch uint64 `json:"epoch,omitempty"`
}

// PlanNode is the structured form of a typed query plan: one access-path
// leaf under zero or more decorators, innermost via Input.
type PlanNode struct {
	Kind string `json:"kind"` // plan.NodeKind slug, e.g. "vt-binary-search"
	// Org is the organization an access-path leaf reads ("heap",
	// "tt-ordered log", "vt-ordered log", or "bitemporal" for the
	// two-dimension scan).
	Org string `json:"org,omitempty"`
	// WinLo, WinHi carry a tt-window pushdown's inclusive window.
	WinLo *int64 `json:"win_lo,omitempty"`
	WinHi *int64 `json:"win_hi,omitempty"`
	// Note annotates filter decorators; Count is a limit's row cap.
	Note  string `json:"note,omitempty"`
	Count int    `json:"count,omitempty"`
	// Est is the planner's estimated touched count.
	Est   int       `json:"est"`
	Input *PlanNode `json:"input,omitempty"`
}

// FromPlanNode converts a typed plan tree for the wire.
func FromPlanNode(n *plan.Node) *PlanNode {
	if n == nil {
		return nil
	}
	out := &PlanNode{
		Kind:  n.Kind.String(),
		Note:  n.Note,
		Count: n.Count,
		Est:   n.Est,
		Input: FromPlanNode(n.Input),
	}
	if n.Input == nil { // access-path leaf
		if n.Bitemporal {
			out.Org = "bitemporal"
		} else {
			out.Org = n.Org.String()
		}
	}
	if n.Kind == plan.TTWindowPushdown {
		lo, hi := n.WinLo, n.WinHi
		out.WinLo, out.WinHi = &lo, &hi
	}
	return out
}

// Leaf walks to the access-path leaf.
func (n *PlanNode) Leaf() *PlanNode {
	for n.Input != nil {
		n = n.Input
	}
	return n
}

// ExplainResponse is a structured plan for a statement or query kind,
// returned without executing it.
type ExplainResponse struct {
	Relation string `json:"relation"`
	// Query echoes the statement (or synthesized kind) that was planned.
	Query string `json:"query"`
	// Store is the advisor-chosen physical organization the plan targets;
	// StoreSource is its provenance — "declared" when a constraint
	// licensed it, "inferred" when the observed extension did, "default"
	// otherwise.
	Store       string    `json:"store"`
	StoreSource string    `json:"store_source,omitempty"`
	Plan        *PlanNode `json:"plan"`
	// Rendered is the human-readable tree (one line per node).
	Rendered string `json:"rendered"`
}

// SelectRequest runs a raw tsql SELECT statement.
type SelectRequest struct {
	Query string `json:"query"`
}

// SelectResponse is a tabular query result with the executed plan.
type SelectResponse struct {
	Columns []string  `json:"columns"`
	Rows    [][]Value `json:"rows"`
	Plan    *PlanNode `json:"plan,omitempty"`
	Touched int       `json:"touched"`
	// Engine reports which execution engine served an aggregate query:
	// "columnar" (batch-at-a-time over sealed runs) or "row" (the
	// reference fold). Empty for non-aggregate statements.
	Engine string `json:"engine,omitempty"`
}

// RelationSummary is one row of the relation listing.
type RelationSummary struct {
	Name         string `json:"name"`
	ValidTime    string `json:"valid_time"`
	Versions     int    `json:"versions"`
	Declarations int    `json:"declarations"`
}

// ListResponse lists the catalog.
type ListResponse struct {
	Relations []RelationSummary `json:"relations"`
}

// Advice is the storage advisor's recommendation.
type Advice struct {
	Store   string   `json:"store"`
	Reasons []string `json:"reasons,omitempty"`
	// Source is the advice's provenance: "declared" (a constraint
	// licensed it), "inferred" (the observed extension licensed it —
	// revocable), or "default".
	Source string `json:"source,omitempty"`
}

// MigrationInfo is one physical-design change of a relation.
type MigrationInfo struct {
	Epoch   uint64   `json:"epoch"`
	From    string   `json:"from"`
	To      string   `json:"to"`
	Source  string   `json:"source,omitempty"`
	Reasons []string `json:"reasons,omitempty"`
}

// TrackerInfo reports the extension tracker's observed statistics: what
// the inference machinery has seen and how the history has (or has not)
// violated the monotone class properties.
type TrackerInfo struct {
	Elements     int    `json:"elements"`
	TTViolations uint64 `json:"tt_violations,omitempty"`
	VTViolations uint64 `json:"vt_violations,omitempty"`
	Overlaps     uint64 `json:"overlaps,omitempty"`
	OffsetLo     int64  `json:"offset_lo,omitempty"`
	OffsetHi     int64  `json:"offset_hi,omitempty"`
	VTUnit       int64  `json:"vt_unit,omitempty"`
}

// PhysicalInfo describes a relation's live physical design: the
// organization with its provenance, the declared / inferred / adopted
// specialization classes, the migration history, and the compaction and
// footprint gauges.
type PhysicalInfo struct {
	Org        string          `json:"org"`
	Source     string          `json:"source"` // "declared", "inferred", or "default"
	Reasons    []string        `json:"reasons,omitempty"`
	Declared   []string        `json:"declared,omitempty"`
	Inferred   []string        `json:"inferred,omitempty"`
	Adopted    []string        `json:"adopted,omitempty"`
	Migrations uint64          `json:"migrations,omitempty"`
	History    []MigrationInfo `json:"history,omitempty"`
	StoreBytes int64           `json:"store_bytes"`
	// SealedRuns/SealedElements/PackedBytes report class-scheduled
	// compaction: how much of the store is sealed into frozen runs and
	// the delta-encoded size of their timestamp columns.
	SealedRuns     int          `json:"sealed_runs,omitempty"`
	SealedElements int          `json:"sealed_elements,omitempty"`
	PackedBytes    int64        `json:"packed_bytes,omitempty"`
	Tracker        *TrackerInfo `json:"tracker,omitempty"`
	// MerkleSize/MerkleRoot/Quarantined are the integrity provenance:
	// how many committed WAL frames the relation's Merkle tree covers,
	// its current root, and the quarantine cause when a scrub detection
	// degraded the relation to read-only.
	MerkleSize  uint64 `json:"merkle_size,omitempty"`
	MerkleRoot  []byte `json:"merkle_root,omitempty"`
	Quarantined string `json:"quarantined,omitempty"`
}

// RelationInfo describes one relation in full.
type RelationInfo struct {
	Schema       Schema                 `json:"schema"`
	Versions     int                    `json:"versions"`
	Declarations []Descriptor           `json:"declarations,omitempty"`
	Advice       Advice                 `json:"advice"`
	Plans        map[string]PlanMetrics `json:"plans,omitempty"`
	Physical     *PhysicalInfo          `json:"physical,omitempty"`
}

// ClassifyResponse reports the inferred specializations of an extension.
type ClassifyResponse struct {
	Findings     []string `json:"findings"`
	MostSpecific []string `json:"most_specific"`
}

// SnapshotResponse reports a catalog flush.
type SnapshotResponse struct {
	Saved int `json:"saved"`
}

// HealthResponse is the liveness probe body. Status is "ok" while the
// server is fully serving, "degraded" when the WAL has poisoned (reads
// serve, mutations return read_only), and "draining" during graceful
// shutdown. The extra fields are omitted when healthy, so pre-existing
// consumers of the original shape keep working.
type HealthResponse struct {
	Status        string `json:"status"`
	Relations     int    `json:"relations"`
	UptimeSeconds int64  `json:"uptime_seconds"`
	// WAL carries the poison cause when the log has failed.
	WAL string `json:"wal,omitempty"`
	// Draining reports graceful shutdown in progress.
	Draining bool `json:"draining,omitempty"`
	// ReadOnly reports that mutations are being refused.
	ReadOnly bool `json:"read_only,omitempty"`
	// Role is "primary" or "follower" when replication is configured;
	// empty for a standalone server.
	Role string `json:"role,omitempty"`
}

// ReadyResponse is the readiness probe body (GET /readyz). Unlike
// /healthz (liveness), readiness turns false when the server should stop
// receiving new traffic: WAL poisoned, draining, or an admission queue
// saturated.
type ReadyResponse struct {
	Ready   bool     `json:"ready"`
	Status  string   `json:"status"` // "ok", "degraded", "draining", "saturated"
	Reasons []string `json:"reasons,omitempty"`
}

// ErrorBody is the uniform error envelope.
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail carries a machine-readable code and a human message.
type ErrorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Error codes used by the server.
const (
	CodeBadRequest = "bad_request"
	CodeNotFound   = "not_found"
	CodeConflict   = "conflict"
	CodeRejected   = "rejected" // transaction rejected by a declared specialization
	CodeTooLarge   = "too_large"
	CodeInternal   = "internal"
	// CodeOverloaded: the request's admission queue is full (429). The
	// request was never admitted; retrying after Retry-After is safe.
	CodeOverloaded = "overloaded"
	// CodeUnavailable: the request could not be served in its deadline
	// budget, or the server is draining (503). The request may or may not
	// have executed; only idempotent requests should be retried blindly.
	CodeUnavailable = "unavailable"
	// CodeReadOnly: the catalog is serving in read-only mode and refuses
	// mutations (503) — either the WAL has poisoned (restart recovers) or
	// the process is a follower replica (mutations go to the primary).
	CodeReadOnly = "read_only"
	// CodeTruncated: a replication read asked for an LSN the primary's
	// log no longer retains (410). The follower must be reseeded from a
	// snapshot of the primary's data directory.
	CodeTruncated = "truncated"
)

// Resilience headers shared by client and server.
const (
	// HeaderDeadline carries the client's remaining deadline budget in
	// milliseconds; the server shrinks the request context to it.
	HeaderDeadline = "X-Tsdbd-Deadline-Ms"
	// HeaderIdempotencyKey carries a mutation's idempotency key. A retry
	// bearing the same key returns the originally stored element instead
	// of appending a second one.
	HeaderIdempotencyKey = "Idempotency-Key"
	// HeaderRetryAfter is the standard backoff hint set on 429/503 sheds.
	HeaderRetryAfter = "Retry-After"
	// HeaderETag / HeaderIfNoneMatch implement conditional GET queries:
	// the server's validator is the relation's mutation epoch, so a 304
	// means "no mutation since your copy" and costs no query execution.
	HeaderETag        = "ETag"
	HeaderIfNoneMatch = "If-None-Match"
	// HeaderStaleness, set by follower replicas on every response, bounds
	// how far the node's applied state may trail the primary, in
	// milliseconds. It is computed from the last moment the follower
	// observed itself caught up to the primary's durable LSN, so a value
	// of S means "every mutation durable on the primary more than S ms
	// ago is visible here". Absent on primaries and on followers that
	// have never completed an initial sync.
	HeaderStaleness = "X-Tsdbd-Staleness-Ms"
)

// ReplSegment describes one live WAL segment on the primary.
type ReplSegment struct {
	Name   string `json:"name"`
	Base   uint64 `json:"base"` // LSN of the first record
	Last   uint64 `json:"last"` // LSN of the last record; base-1 while empty
	Sealed bool   `json:"sealed"`
}

// ReplSegmentsResponse enumerates the primary's retained WAL segments,
// oldest first, with the LSN bounds a follower needs to plan a catch-up:
// anything below OldestLSN is gone (reseed from a snapshot), anything up
// to DurableLSN is fetchable.
type ReplSegmentsResponse struct {
	Segments   []ReplSegment `json:"segments"`
	OldestLSN  uint64        `json:"oldest_lsn"`
	DurableLSN uint64        `json:"durable_lsn"`
}

// ReplFrame is one WAL record in wire form. Payload is the raw record
// payload the catalog framed (base64 over JSON); the follower replays it
// through the same decoder the primary's boot-time recovery uses.
type ReplFrame struct {
	LSN     uint64 `json:"lsn"`
	Kind    uint8  `json:"kind"`
	Rel     string `json:"rel"`
	Payload []byte `json:"payload,omitempty"`
	// Leaf is the frame's integrity leaf hash — SHA-256(0x00 ‖ frame
	// body) — shipped so the follower can recompute it from the frame it
	// received and refuse a batch that was corrupted in flight or on the
	// primary's disk, re-fetching instead of applying damage. Absent when
	// the primary runs with integrity disabled.
	Leaf []byte `json:"leaf,omitempty"`
}

// ReplTailResponse is one batch of the tailing feed: frames in LSN order
// starting at the requested from_lsn, never past the primary's
// durability watermark (the follower-safety invariant — a replica never
// applies state the primary could lose in a crash). DurableLSN is the
// watermark the batch was bounded by; a follower whose applied LSN
// reaches it is caught up as of this response.
type ReplTailResponse struct {
	Frames     []ReplFrame `json:"frames,omitempty"`
	DurableLSN uint64      `json:"durable_lsn"`
	OldestLSN  uint64      `json:"oldest_lsn"`
}

// ReplicationMetrics is the /metrics replication section. Role selects
// which gauges are meaningful: a primary reports the shipping side
// (tail requests served, frames shipped), a follower the applying side
// (applied LSN vs the primary's durable LSN, staleness, reconnects).
type ReplicationMetrics struct {
	Role              string `json:"role"` // "primary" or "follower"
	TailRequests      uint64 `json:"tail_requests,omitempty"`
	FramesShipped     uint64 `json:"frames_shipped,omitempty"`
	Primary           string `json:"primary,omitempty"`
	AppliedLSN        uint64 `json:"applied_lsn,omitempty"`
	PrimaryDurableLSN uint64 `json:"primary_durable_lsn,omitempty"`
	Synced            bool   `json:"synced,omitempty"`
	StalenessMs       int64  `json:"staleness_ms,omitempty"`
	FramesApplied     uint64 `json:"frames_applied,omitempty"`
	Reconnects        uint64 `json:"reconnects,omitempty"`
	// LeafFailures counts shipped frames whose integrity leaf hash did
	// not match the frame body; each one dropped its batch for re-fetch.
	LeafFailures uint64 `json:"leaf_failures,omitempty"`
	LastError    string `json:"last_error,omitempty"`
}

// EndpointMetrics aggregates one endpoint's request accounting.
type EndpointMetrics struct {
	Requests  uint64 `json:"requests"`
	Errors    uint64 `json:"errors"`
	LatencyUS int64  `json:"latency_total_us"`
	MinUS     int64  `json:"latency_min_us"`
	MaxUS     int64  `json:"latency_max_us"`
	MeanUS    int64  `json:"latency_mean_us"`
	Touched   uint64 `json:"elements_touched"`
}

// PlanMetrics aggregates one plan kind's query accounting.
type PlanMetrics struct {
	Requests uint64 `json:"requests"`
	Touched  uint64 `json:"elements_touched"`
}

// WALMetrics reports the write-ahead log's lifetime counters: append and
// fsync volume (whose ratio is the group-commit batching factor), boot-time
// replay accounting, and the current segment/LSN watermarks.
type WALMetrics struct {
	AppendedRecords   uint64  `json:"appended_records"`
	Fsyncs            uint64  `json:"fsyncs"`
	MeanBatch         float64 `json:"mean_batch"`
	MaxBatch          uint64  `json:"max_batch"`
	ReplayedRecords   uint64  `json:"replayed_records"`
	LastReplayUS      int64   `json:"last_replay_us"`
	Segments          int     `json:"segments"`
	LastLSN           uint64  `json:"last_lsn"`
	DurableLSN        uint64  `json:"durable_lsn"`
	TruncatedSegments uint64  `json:"truncated_segments"`
	// VerifyFailures counts segment verifications that found damage
	// (scrub re-reads, not live appends).
	VerifyFailures uint64 `json:"verify_failures,omitempty"`
}

// ClassAdmissionMetrics reports one admission class's gate: its
// configured limit, current occupancy and queue depth, lifetime admit
// and shed counters (split by cause), and queue-wait quantiles.
type ClassAdmissionMetrics struct {
	Limit         int    `json:"limit"`
	Inflight      int    `json:"inflight"`
	Admitted      uint64 `json:"admitted"`
	ShedOverload  uint64 `json:"shed_overload"` // queue full on arrival
	ShedTimeout   uint64 `json:"shed_timeout"`  // max queue wait expired
	ShedCanceled  uint64 `json:"shed_canceled"` // caller deadline/cancel while queued
	QueueDepth    int    `json:"queue_depth"`
	MaxQueueDepth int    `json:"max_queue_depth"`
	WaitP50US     int64  `json:"wait_p50_us"`
	WaitP95US     int64  `json:"wait_p95_us"`
	WaitP99US     int64  `json:"wait_p99_us"`
}

// QueryCacheMetrics reports the catalog's plan-keyed result cache: hit
// and miss counters, LRU evictions, and resident size against capacity.
type QueryCacheMetrics struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
	Capacity  int64  `json:"capacity"`
}

// BatchMetrics reports the batch-execution counters summed over the
// catalog: batches and rows the columnar engine consumed, and how often
// the planner picked each engine for an executed window aggregate.
type BatchMetrics struct {
	Batches          int64   `json:"batches"`
	Rows             int64   `json:"rows"`
	MeanRowsPerBatch float64 `json:"mean_rows_per_batch"`
	ColumnarPicks    int64   `json:"columnar_picks"`
	RowPicks         int64   `json:"row_picks"`
}

// IngestMetrics reports the batched-ingest counters summed over the
// catalog — batches journaled, elements they carried, mean batch size —
// plus the CSV streaming endpoint's flush-reason split: how many batches
// flushed on the size cap, the time cap, or end of stream.
type IngestMetrics struct {
	Batches         int64   `json:"batches"`
	BatchedElements int64   `json:"batched_elements"`
	MeanBatch       float64 `json:"mean_batch"`
	FlushSize       uint64  `json:"flush_size,omitempty"`
	FlushTime       uint64  `json:"flush_time,omitempty"`
	FlushEOF        uint64  `json:"flush_eof,omitempty"`
}

// DegradedMetrics reports the catalog's degraded-mode gauge.
type DegradedMetrics struct {
	ReadOnly bool   `json:"read_only"`
	Cause    string `json:"cause,omitempty"`
}

// MetricsResponse is the /metrics body: per-endpoint request counts,
// latency summaries, elements-touched counters, the per-plan-kind
// breakdown of query work (keyed by plan.NodeKind slugs), the
// write-ahead log gauges when durability is enabled, per-class admission
// accounting, and the degraded-mode gauge when the catalog is read-only.
type MetricsResponse struct {
	UptimeSeconds int64                            `json:"uptime_seconds"`
	Requests      uint64                           `json:"requests"`
	Errors        uint64                           `json:"errors"`
	Endpoints     map[string]EndpointMetrics       `json:"endpoints"`
	Plans         map[string]PlanMetrics           `json:"plans,omitempty"`
	WAL           *WALMetrics                      `json:"wal,omitempty"`
	Admission     map[string]ClassAdmissionMetrics `json:"admission,omitempty"`
	Degraded      *DegradedMetrics                 `json:"degraded,omitempty"`
	QueryCache    *QueryCacheMetrics               `json:"query_cache,omitempty"`
	Batch         *BatchMetrics                    `json:"batch,omitempty"`
	Ingest        *IngestMetrics                   `json:"ingest,omitempty"`
	Replication   *ReplicationMetrics              `json:"replication,omitempty"`
	// Physical reports each relation's live physical design: its
	// organization, the advice provenance, migration count, and the
	// inferred classes the extension tracker currently holds.
	Physical map[string]PhysicalInfo `json:"physical,omitempty"`
	// Integrity reports the corruption-detection subsystem: Merkle
	// accounting coverage, scrubber progress, and detection/repair
	// counters.
	Integrity *IntegrityMetrics `json:"integrity,omitempty"`
}

// SignedRootInfo is a relation's Merkle root in wire form: the tree
// size it covers, the root hash, and — on primaries — an Ed25519
// signature over the domain-separated (rel, size, root) statement with
// the signing public key. Followers serve unsigned roots; clients
// verify those by consistency against an anchor signed by the primary.
type SignedRootInfo struct {
	Rel  string `json:"rel"`
	Size uint64 `json:"size"`
	Root []byte `json:"root"`
	Sig  []byte `json:"sig,omitempty"`
	Key  []byte `json:"key,omitempty"`
}

// IntegrityResponse is GET /v1/relations/{rel}/integrity: the
// relation's current tree size and root, signed over exactly that
// state, plus the quarantine cause when the relation is degraded.
type IntegrityResponse struct {
	Rel         string          `json:"rel"`
	Tracked     bool            `json:"tracked"`
	Size        uint64          `json:"size"`
	Root        []byte          `json:"root,omitempty"`
	Signed      *SignedRootInfo `json:"signed,omitempty"`
	Quarantined string          `json:"quarantined,omitempty"`
}

// ProofResponse is GET /v1/relations/{rel}/integrity/proof?index=I: an
// inclusion proof that the I-th committed frame is under the signed
// root. Proof is the TSPF binary encoding (integrity.EncodeProof); the
// client decodes and verifies it locally without trusting the server.
type ProofResponse struct {
	Rel    string         `json:"rel"`
	Index  uint64         `json:"index"`
	Leaf   []byte         `json:"leaf"`
	Proof  []byte         `json:"proof"`
	Signed SignedRootInfo `json:"signed"`
}

// ConsistencyResponse is GET
// /v1/relations/{rel}/integrity/consistency?from=M: a proof that the
// current tree extends the size-M prefix — history was appended to,
// never rewritten. OldRoot is the server's root at M (informational);
// verifiers check against their own anchored root.
type ConsistencyResponse struct {
	Rel     string         `json:"rel"`
	From    uint64         `json:"from"`
	OldRoot []byte         `json:"old_root"`
	Proof   []byte         `json:"proof"`
	Signed  SignedRootInfo `json:"signed"`
}

// VerifyResponse is POST /v1/relations/{rel}/verify: a synchronous
// scrub of every artifact covering the relation, with the damage found
// and how much of it was repaired in place.
type VerifyResponse struct {
	Rel       string   `json:"rel"`
	Artifacts int      `json:"artifacts"`
	Failures  []string `json:"failures,omitempty"`
	Repaired  int      `json:"repaired"`
}

// IntegrityEventInfo is one journaled integrity action in wire form.
type IntegrityEventInfo struct {
	Unix         int64  `json:"unix"`
	Kind         string `json:"kind"` // detect | quarantine | repair | repair-failed
	ArtifactKind string `json:"artifact_kind"`
	Artifact     string `json:"artifact"`
	Rel          string `json:"rel,omitempty"`
	Detail       string `json:"detail"`
}

// IntegrityMetrics is the /metrics integrity section: Merkle coverage,
// lifetime detection/repair counters, current quarantines, scrubber
// progress, and the recent event journal.
type IntegrityMetrics struct {
	Enabled          bool                 `json:"enabled"`
	TrackedRelations int                  `json:"tracked_relations"`
	Leaves           uint64               `json:"leaves"`
	Detected         uint64               `json:"detected"`
	Repaired         uint64               `json:"repaired"`
	Quarantines      uint64               `json:"quarantines"`
	Quarantined      []string             `json:"quarantined,omitempty"`
	ScrubPasses      uint64               `json:"scrub_passes"`
	ScrubArtifacts   uint64               `json:"scrub_artifacts"`
	ScrubBytes       uint64               `json:"scrub_bytes"`
	ScrubFailures    uint64               `json:"scrub_failures"`
	LastScrubUnix    int64                `json:"last_scrub_unix,omitempty"`
	Events           []IntegrityEventInfo `json:"events,omitempty"`
}
