package interval

import "fmt"

// Relation is one of Allen's thirteen qualitative relations between two
// intervals [All83], as enumerated in §3.4 of the paper: "before, meets,
// overlaps, during, starts, finishes, equal, and the inverse relationships
// for all but equal".
//
// The relations here are defined over non-empty half-open intervals. With
// half-open intervals, a Meets b means a.End == b.Start (the end of one
// element coincides with the start of the next — the paper's "globally
// contiguous" property).
type Relation uint8

// The thirteen relations. The first six have inverses obtained by adding
// the inverse offset; Equal is its own inverse.
const (
	Before   Relation = iota // a entirely precedes b, with a gap
	Meets                    // a ends exactly where b starts
	Overlaps                 // a starts first, they overlap, b ends last
	Starts                   // same start, a ends first
	During                   // a strictly inside b
	Finishes                 // same end, a starts last
	Equal                    // identical endpoints

	After        // inverse of Before
	MetBy        // inverse of Meets
	OverlappedBy // inverse of Overlaps
	StartedBy    // inverse of Starts
	Contains     // inverse of During
	FinishedBy   // inverse of Finishes

	NumRelations = 13
)

var relationNames = [NumRelations]string{
	"before", "meets", "overlaps", "starts", "during", "finishes", "equal",
	"after", "met-by", "overlapped-by", "started-by", "contains", "finished-by",
}

// String names the relation as in the paper ("before", "meets", ..., with
// the inverses hyphenated: "met-by", "overlapped-by", ...).
func (r Relation) String() string {
	if r >= NumRelations {
		return fmt.Sprintf("Relation(%d)", uint8(r))
	}
	return relationNames[r]
}

// ParseRelation parses a relation name as produced by String. The paper's
// "inverse X" phrasing ("inverse before") is also accepted.
func ParseRelation(s string) (Relation, error) {
	for r, name := range relationNames {
		if s == name {
			return Relation(r), nil
		}
	}
	if len(s) > 8 && s[:8] == "inverse " {
		base, err := ParseRelation(s[8:])
		if err == nil {
			return base.Inverse(), nil
		}
	}
	return 0, fmt.Errorf("interval: unknown Allen relation %q", s)
}

// Inverse returns the converse relation: a R b iff b R.Inverse() a.
func (r Relation) Inverse() Relation {
	switch {
	case r == Equal:
		return Equal
	case r < Equal:
		return r + 7
	default:
		return r - 7
	}
}

// Relations lists all thirteen relations in enumeration order.
func Relations() []Relation {
	rs := make([]Relation, NumRelations)
	for i := range rs {
		rs[i] = Relation(i)
	}
	return rs
}

// Relate classifies the pair (a, b) into exactly one of the thirteen
// relations. Both intervals must be non-empty; Relate panics otherwise,
// since Allen's algebra is undefined for empty intervals.
func Relate(a, b Interval) Relation {
	if a.Empty() || b.Empty() {
		panic("interval: Relate on empty interval")
	}
	switch {
	case a.End < b.Start:
		return Before
	case a.End == b.Start:
		return Meets
	case b.End < a.Start:
		return After
	case b.End == a.Start:
		return MetBy
	}
	// The intervals share at least one chronon.
	ss := a.Start.Compare(b.Start)
	ee := a.End.Compare(b.End)
	switch {
	case ss == 0 && ee == 0:
		return Equal
	case ss == 0 && ee < 0:
		return Starts
	case ss == 0: // ee > 0
		return StartedBy
	case ee == 0 && ss > 0:
		return Finishes
	case ee == 0: // ss < 0
		return FinishedBy
	case ss > 0 && ee < 0:
		return During
	case ss < 0 && ee > 0:
		return Contains
	case ss < 0: // ee < 0, overlapping
		return Overlaps
	default: // ss > 0, ee > 0
		return OverlappedBy
	}
}

// Holds reports whether a r b.
func Holds(r Relation, a, b Interval) bool { return Relate(a, b) == r }

// RelationSet is a bit set of Allen relations, used for composition results
// (composing two relations generally yields a disjunction of relations).
type RelationSet uint16

// SetOf builds a set from individual relations.
func SetOf(rs ...Relation) RelationSet {
	var s RelationSet
	for _, r := range rs {
		s |= 1 << r
	}
	return s
}

// FullSet is the set of all thirteen relations.
const FullSet RelationSet = 1<<NumRelations - 1

// Has reports whether the set contains r.
func (s RelationSet) Has(r Relation) bool { return s&(1<<r) != 0 }

// Add returns the set with r included.
func (s RelationSet) Add(r Relation) RelationSet { return s | 1<<r }

// Union returns the union of the two sets.
func (s RelationSet) Union(t RelationSet) RelationSet { return s | t }

// Intersect returns the intersection of the two sets.
func (s RelationSet) Intersect(t RelationSet) RelationSet { return s & t }

// Len returns the number of relations in the set.
func (s RelationSet) Len() int {
	n := 0
	for r := Relation(0); r < NumRelations; r++ {
		if s.Has(r) {
			n++
		}
	}
	return n
}

// Inverse returns the set of inverses of the members of s.
func (s RelationSet) Inverse() RelationSet {
	var out RelationSet
	for r := Relation(0); r < NumRelations; r++ {
		if s.Has(r) {
			out = out.Add(r.Inverse())
		}
	}
	return out
}

// Members lists the relations in the set in enumeration order.
func (s RelationSet) Members() []Relation {
	var out []Relation
	for r := Relation(0); r < NumRelations; r++ {
		if s.Has(r) {
			out = append(out, r)
		}
	}
	return out
}

// String renders the set as "{before, meets}".
func (s RelationSet) String() string {
	out := "{"
	for i, r := range s.Members() {
		if i > 0 {
			out += ", "
		}
		out += r.String()
	}
	return out + "}"
}
