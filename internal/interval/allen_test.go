package interval

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// The canonical examples for each of the thirteen relations, with a = the
// first interval and b = the second.
var relationExamples = []struct {
	r    Relation
	a, b Interval
}{
	{Before, Of(0, 2), Of(4, 6)},
	{Meets, Of(0, 4), Of(4, 6)},
	{Overlaps, Of(0, 4), Of(2, 6)},
	{Starts, Of(0, 2), Of(0, 6)},
	{During, Of(2, 4), Of(0, 6)},
	{Finishes, Of(4, 6), Of(0, 6)},
	{Equal, Of(0, 6), Of(0, 6)},
	{After, Of(4, 6), Of(0, 2)},
	{MetBy, Of(4, 6), Of(0, 4)},
	{OverlappedBy, Of(2, 6), Of(0, 4)},
	{StartedBy, Of(0, 6), Of(0, 2)},
	{Contains, Of(0, 6), Of(2, 4)},
	{FinishedBy, Of(0, 6), Of(4, 6)},
}

func TestRelateExamples(t *testing.T) {
	for _, ex := range relationExamples {
		if got := Relate(ex.a, ex.b); got != ex.r {
			t.Errorf("Relate(%v, %v) = %v, want %v", ex.a, ex.b, got, ex.r)
		}
		if !Holds(ex.r, ex.a, ex.b) {
			t.Errorf("Holds(%v, %v, %v) = false", ex.r, ex.a, ex.b)
		}
	}
}

func TestRelateIsTotalAndExclusive(t *testing.T) {
	// Every pair of non-empty intervals satisfies exactly one relation.
	const points = 8
	for as := int64(0); as < points; as++ {
		for ae := as + 1; ae <= points; ae++ {
			for bs := int64(0); bs < points; bs++ {
				for be := bs + 1; be <= points; be++ {
					a, b := Of(as, ae), Of(bs, be)
					r := Relate(a, b)
					count := 0
					for _, s := range Relations() {
						if Holds(s, a, b) {
							count++
						}
					}
					if count != 1 {
						t.Fatalf("Relate(%v, %v): %d relations hold, want 1 (%v)", a, b, count, r)
					}
				}
			}
		}
	}
}

func TestInverseInvolution(t *testing.T) {
	for _, r := range Relations() {
		if got := r.Inverse().Inverse(); got != r {
			t.Errorf("%v.Inverse().Inverse() = %v", r, got)
		}
	}
	if Equal.Inverse() != Equal {
		t.Error("Equal must be its own inverse")
	}
	pairs := map[Relation]Relation{
		Before: After, Meets: MetBy, Overlaps: OverlappedBy,
		Starts: StartedBy, During: Contains, Finishes: FinishedBy,
	}
	for r, inv := range pairs {
		if r.Inverse() != inv {
			t.Errorf("%v.Inverse() = %v, want %v", r, r.Inverse(), inv)
		}
	}
}

func TestRelateInverseProperty(t *testing.T) {
	f := func(as, al, bs, bl uint8) bool {
		a := Of(int64(as), int64(as)+int64(al%32)+1)
		b := Of(int64(bs), int64(bs)+int64(bl%32)+1)
		return Relate(a, b).Inverse() == Relate(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRelateEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Relate on empty interval should panic")
		}
	}()
	Relate(Of(1, 1), Of(0, 5))
}

func TestRelationString(t *testing.T) {
	cases := map[Relation]string{
		Before: "before", Meets: "meets", OverlappedBy: "overlapped-by",
		Equal: "equal", FinishedBy: "finished-by",
	}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", r, got, want)
		}
	}
	if got := Relation(42).String(); got != "Relation(42)" {
		t.Errorf("out-of-range String = %q", got)
	}
}

func TestParseRelation(t *testing.T) {
	for _, r := range Relations() {
		got, err := ParseRelation(r.String())
		if err != nil || got != r {
			t.Errorf("ParseRelation(%q) = %v, %v", r.String(), got, err)
		}
	}
	// The paper's "inverse X" phrasing.
	if got, err := ParseRelation("inverse before"); err != nil || got != After {
		t.Errorf("ParseRelation(inverse before) = %v, %v", got, err)
	}
	if got, err := ParseRelation("inverse finishes"); err != nil || got != FinishedBy {
		t.Errorf("ParseRelation(inverse finishes) = %v, %v", got, err)
	}
	if _, err := ParseRelation("sideways"); err == nil {
		t.Error("ParseRelation(sideways) should fail")
	}
}

func TestRelationSetOps(t *testing.T) {
	s := SetOf(Before, Meets)
	if !s.Has(Before) || !s.Has(Meets) || s.Has(After) {
		t.Error("SetOf membership wrong")
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
	s2 := s.Add(After)
	if !s2.Has(After) || s2.Len() != 3 {
		t.Error("Add failed")
	}
	if got := s.Union(SetOf(After)); got != s2 {
		t.Error("Union failed")
	}
	if got := s2.Intersect(SetOf(After, Equal)); got != SetOf(After) {
		t.Error("Intersect failed")
	}
	if got := SetOf(Before, Starts).Inverse(); got != SetOf(After, StartedBy) {
		t.Errorf("set Inverse = %v", got)
	}
	if FullSet.Len() != NumRelations {
		t.Errorf("FullSet.Len() = %d", FullSet.Len())
	}
	if got := SetOf(Before, Meets).String(); got != "{before, meets}" {
		t.Errorf("set String = %q", got)
	}
	members := SetOf(Equal, Before).Members()
	if len(members) != 2 || members[0] != Before || members[1] != Equal {
		t.Errorf("Members = %v", members)
	}
}

func TestComposeIdentity(t *testing.T) {
	// Equal is the identity of the algebra: compose(Equal, r) = {r}.
	for _, r := range Relations() {
		if got := Compose(Equal, r); got != SetOf(r) {
			t.Errorf("Compose(equal, %v) = %v, want {%v}", r, got, r)
		}
		if got := Compose(r, Equal); got != SetOf(r) {
			t.Errorf("Compose(%v, equal) = %v, want {%v}", r, got, r)
		}
	}
}

func TestComposeKnownEntries(t *testing.T) {
	// Classic entries from Allen's table.
	if got := Compose(Before, Before); got != SetOf(Before) {
		t.Errorf("before;before = %v", got)
	}
	if got := Compose(Meets, Meets); got != SetOf(Before) {
		t.Errorf("meets;meets = %v", got)
	}
	if got := Compose(During, During); got != SetOf(During) {
		t.Errorf("during;during = %v", got)
	}
	if got := Compose(Before, After); got != FullSet {
		t.Errorf("before;after = %v, want full set", got)
	}
	if got := Compose(Overlaps, Overlaps); got != SetOf(Before, Meets, Overlaps) {
		t.Errorf("overlaps;overlaps = %v", got)
	}
	if got := Compose(Meets, During); got != SetOf(Overlaps, Starts, During) {
		t.Errorf("meets;during = %v", got)
	}
}

func TestComposeSoundAndComplete(t *testing.T) {
	// Soundness: for random triples with a r b and b s c, Relate(a, c) must
	// be in Compose(r, s). Completeness over a domain is established by
	// construction (the table is built by enumeration); this test guards the
	// construction with an independent random check on a wider domain.
	rng := rand.New(rand.NewSource(7))
	iv := func() Interval {
		s := int64(rng.Intn(100))
		return Of(s, s+1+int64(rng.Intn(40)))
	}
	for i := 0; i < 20000; i++ {
		a, b, c := iv(), iv(), iv()
		r, s := Relate(a, b), Relate(b, c)
		if !Compose(r, s).Has(Relate(a, c)) {
			t.Fatalf("compose unsound: a=%v b=%v c=%v r=%v s=%v rel(a,c)=%v set=%v",
				a, b, c, r, s, Relate(a, c), Compose(r, s))
		}
	}
}

func TestComposeInverseLaw(t *testing.T) {
	// inv(r ; s) == inv(s) ; inv(r)
	for _, r := range Relations() {
		for _, s := range Relations() {
			if got, want := Compose(r, s).Inverse(), Compose(s.Inverse(), r.Inverse()); got != want {
				t.Errorf("inverse law fails for (%v, %v): %v vs %v", r, s, got, want)
			}
		}
	}
}

func TestComposeNonEmpty(t *testing.T) {
	for _, r := range Relations() {
		for _, s := range Relations() {
			if Compose(r, s) == 0 {
				t.Errorf("Compose(%v, %v) is empty", r, s)
			}
		}
	}
}
