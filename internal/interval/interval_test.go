package interval

import (
	"testing"

	"repro/internal/chronon"
)

func TestMakePanicsOnInverted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Make(5, 3) should panic")
		}
	}()
	Of(5, 3)
}

func TestEmptyAndValid(t *testing.T) {
	if !Of(3, 3).Empty() {
		t.Error("[3,3) should be empty")
	}
	if Of(3, 4).Empty() {
		t.Error("[3,4) should be non-empty")
	}
	if !Of(3, 3).Valid() || !Of(3, 9).Valid() {
		t.Error("well-formed intervals reported invalid")
	}
	if (Interval{Start: 5, End: 3}).Valid() {
		t.Error("inverted interval reported valid")
	}
}

func TestDuration(t *testing.T) {
	if got := Of(10, 40).Duration(); got != 30 {
		t.Errorf("Duration = %d, want 30", got)
	}
	if got := Of(10, 10).Duration(); got != 0 {
		t.Errorf("Duration = %d, want 0", got)
	}
}

func TestContains(t *testing.T) {
	iv := Of(10, 20)
	cases := []struct {
		c    chronon.Chronon
		want bool
	}{
		{9, false}, {10, true}, {15, true}, {19, true}, {20, false}, {21, false},
	}
	for _, c := range cases {
		if got := iv.Contains(c.c); got != c.want {
			t.Errorf("Contains(%d) = %v, want %v", c.c, got, c.want)
		}
	}
}

func TestOverlapsIntersectHull(t *testing.T) {
	a := Of(0, 10)
	b := Of(5, 15)
	c := Of(10, 20)
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("a and b should overlap")
	}
	if a.Overlaps(c) {
		t.Error("half-open adjacency is not overlap")
	}
	if got, ok := a.Intersect(b); !ok || got != Of(5, 10) {
		t.Errorf("Intersect = %v, %v", got, ok)
	}
	if _, ok := a.Intersect(c); ok {
		t.Error("adjacent intervals should not intersect")
	}
	if got := a.Hull(c); got != Of(0, 20) {
		t.Errorf("Hull = %v", got)
	}
	if !a.Equal(Of(0, 10)) || a.Equal(b) {
		t.Error("Equal misbehaves")
	}
}

func TestAt(t *testing.T) {
	iv := At(7)
	if iv.Empty() || !iv.Contains(7) || iv.Contains(8) {
		t.Errorf("At(7) = %v", iv)
	}
}

func TestStringFormat(t *testing.T) {
	got := Of(0, 86400).String()
	want := "[1970-01-01 00:00:00, 1970-01-02 00:00:00)"
	if got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}
